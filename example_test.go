package fade_test

import (
	"fmt"

	"fade"
)

// Running a built-in monitor over a benchmark and reading the headline
// numbers.
func ExampleRun() {
	cfg := fade.DefaultConfig("AddrCheck")
	cfg.Instrs = 50_000
	res, err := fade.Run("astar", cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Filter.FilterRatio() > 0.9)
	fmt.Println(res.Slowdown >= 1.0)
	// Output:
	// true
	// true
}

// Driving the accelerator directly: program a clean-check rule, push
// events, observe filtering.
func ExampleNewFilteringUnit() {
	md := fade.NewMetadataState()
	fu, evq, ufq := fade.NewFilteringUnit(false, md)

	fu.Inv.Set(0, 0) // invariant: "clean" metadata is zero
	fu.Table.Set(1, fade.Entry{
		S1: fade.OperandRule{Valid: true, Mem: true, MDBytes: 1, Mask: 0xFF, INVid: 0},
		CC: true,
	})

	md.Mem.Store(0x2000, 1) // one dirty word
	evq.Push(fade.Event{ID: 1, Addr: 0x1000, Seq: 0})
	evq.Push(fade.Event{ID: 1, Addr: 0x2000, Seq: 1})
	for i := 0; i < 60; i++ {
		fu.Tick(uint64(i))
	}

	fmt.Println("filtered:", fu.Stats().Filtered())
	u, _ := ufq.Pop()
	fmt.Println("software sees seq:", u.Ev.Seq)
	// Output:
	// filtered: 1
	// software sees seq: 1
}

// Characterizing a workload's monitoring load (the Section 3 methodology).
func ExampleRunQueueStudy() {
	qs, err := fade.RunQueueStudy("mcf", "AddrCheck", fade.OoO4, fade.UnboundedQueue, 1, 50_000)
	if err != nil {
		panic(err)
	}
	// mcf is memory bound: its monitored IPC is far below one event per
	// cycle, so a single-issue accelerator keeps up easily.
	fmt.Println(qs.MonitoredIPC < 0.5)
	// Output:
	// true
}
