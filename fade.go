// Package fade is a simulation-backed reproduction of FADE, the
// programmable filtering accelerator for instruction-grain monitoring of
// Fytraki et al. (HPCA 2014). It provides:
//
//   - the accelerator microarchitecture itself (event table, invariant
//     register file, filter logic, MD cache and M-TLB, stack-update unit,
//     and the non-blocking extensions: MD update logic and filter store
//     queue),
//   - five instruction-grain monitors (AddrCheck, MemCheck, TaintCheck,
//     MemLeak, AtomCheck) with functional metadata semantics, detection
//     reports, and software cost models,
//   - a deterministic cycle-level simulation substrate: application/monitor
//     core timing models (in-order, 2-way OoO, 4-way OoO, dual-threaded
//     SMT), a cache hierarchy, bounded event queues, and calibrated
//     synthetic workloads standing in for SPEC CPU2006 / SPLASH-2 / PARSEC,
//   - the full experiment harness regenerating every table and figure of
//     the paper's evaluation, and
//   - a 40nm area/power model reproducing the Section 7.6 estimates.
//
// # Quick start
//
//	cfg := fade.DefaultConfig("MemLeak")
//	res, err := fade.Run("astar", cfg)
//	if err != nil { ... }
//	fmt.Printf("slowdown %.2fx, filter ratio %.1f%%\n",
//	    res.Slowdown, 100*res.Filter.FilterRatio())
//
// See examples/ for runnable programs and DESIGN.md for the experiment
// index.
package fade

import (
	"context"
	"fmt"
	"io"

	"fade/internal/core"
	"fade/internal/cpu"
	"fade/internal/experiments"
	"fade/internal/fault"
	"fade/internal/isa"
	"fade/internal/metadata"
	"fade/internal/monitor"
	"fade/internal/obs"
	"fade/internal/queue"
	"fade/internal/rcache"
	"fade/internal/runspec"
	"fade/internal/sim"
	"fade/internal/spans"
	"fade/internal/synth"
	"fade/internal/system"
	"fade/internal/trace"
)

// System construction and simulation.
type (
	// Config describes one simulated monitoring system.
	Config = system.Config
	// Result is the outcome of one simulation.
	Result = system.Result
	// QueueStudy is the Section 3 characterization result (monitored load
	// and queue occupancy under an ideal 1-event/cycle drain).
	QueueStudy = system.QueueStudy
	// Topology describes the CMP organization: application cores, monitor
	// cores (or SMT threads), and the monitor-to-core assignment.
	Topology = system.Topology
	// CoreResult is one application core's sub-result of a CMP run.
	CoreResult = system.CoreResult
	// Accel selects unaccelerated, blocking-FADE, or non-blocking FADE.
	Accel = system.Accel
	// CoreKind selects the core microarchitecture.
	CoreKind = cpu.Kind
)

// Topologies (Fig. 8). These are variables only because Topology is now a
// struct description (struct values cannot be constants); do not reassign.
var (
	SingleCoreSMT = system.SingleCoreSMT
	TwoCore       = system.TwoCore
)

// CMP returns the scaled-out CMP topology: n application cores, each paired
// with a dedicated monitor core and its own filtering unit (Section 7).
// CMP(1) == TwoCore.
func CMP(appCores int) Topology { return system.CMP(appCores) }

// Acceleration modes.
const (
	Unaccelerated   = system.Unaccelerated
	FADEBlocking    = system.FADEBlocking
	FADENonBlocking = system.FADENonBlocking
)

// Core microarchitectures (Table 1).
const (
	InOrder = cpu.InOrder
	OoO2    = cpu.OoO2
	OoO4    = cpu.OoO4
)

// UnboundedQueue requests an effectively infinite event queue in
// RunQueueStudy (the Section 3.2 analysis).
const UnboundedQueue = queue.Unbounded

// DefaultConfig returns the paper's evaluation configuration for the named
// monitor: non-blocking FADE on a single dual-threaded 4-way OoO core with
// 32/16-entry queues.
func DefaultConfig(monitorName string) Config { return system.DefaultConfig(monitorName) }

// Run simulates benchmark bench under cfg.
func Run(bench string, cfg Config) (*Result, error) { return system.Run(bench, cfg) }

// RunContext is Run with a cancellation context: the simulation polls ctx at
// checkpoint intervals and aborts with an error wrapping ErrCanceled, the
// partial metrics snapshot intact in the returned Result.
func RunContext(ctx context.Context, bench string, cfg Config) (*Result, error) {
	return system.RunContext(ctx, bench, cfg)
}

// RunQueueStudy characterizes monitored load and event-queue occupancy for
// one (benchmark, monitor) pair with an ideal 1-event/cycle consumer.
func RunQueueStudy(bench, mon string, kind CoreKind, queueCap int, seed, instrs uint64) (*QueueStudy, error) {
	return system.RunQueueStudy(bench, mon, kind, queueCap, seed, instrs)
}

// RunQueueStudyContext is RunQueueStudy with a cancellation context.
func RunQueueStudyContext(ctx context.Context, bench, mon string, kind CoreKind, queueCap int, seed, instrs uint64) (*QueueStudy, error) {
	return system.RunQueueStudyContext(ctx, bench, mon, kind, queueCap, seed, instrs)
}

// Execution hardening: limits, structured abort reasons, and deterministic
// fault injection. A Run that does not complete returns the partial Result
// alongside an error wrapping exactly one of the sentinel errors below.
type (
	// RunLimits bounds a run's execution (cycle cap, wall-clock watchdog).
	RunLimits = system.RunLimits
	// FaultPlan configures deterministic fault injection (Config.Faults).
	FaultPlan = fault.Plan
	// FaultStall parameterizes monitor stall-burst injection.
	FaultStall = fault.Stall
	// FaultPressure parameterizes queue-capacity pressure injection.
	FaultPressure = fault.Pressure
	// FaultDrop parameterizes event-drop probes.
	FaultDrop = fault.Drop
	// FaultCorrupt parameterizes metadata-corruption probes.
	FaultCorrupt = fault.Corrupt
	// InvariantError names the violated invariant, the cycle, and detail; it
	// unwraps to ErrInvariantViolated.
	InvariantError = sim.InvariantError
)

// Abort sentinels, matchable with errors.Is.
var (
	// ErrCanceled: the run's context was canceled (or its wall-clock limit
	// expired) and the scheduler stopped at a checkpoint.
	ErrCanceled = sim.ErrCanceled
	// ErrCycleCapExceeded: the run hit its cycle cap before completing.
	ErrCycleCapExceeded = sim.ErrCycleCapExceeded
	// ErrInvariantViolated: the invariant checker (Config.CheckInvariants)
	// observed a broken microarchitectural invariant.
	ErrInvariantViolated = sim.ErrInvariantViolated
)

// StallSeverity returns the named monitor-stall fault plan ("none", "mild",
// "moderate", "severe"); ok is false for unknown names.
func StallSeverity(name string) (*FaultPlan, bool) { return fault.StallSeverity(name) }

// StallSeverities lists the stall severity names in increasing order.
func StallSeverities() []string { return fault.StallSeverities() }

// ValidateConfig reports whether cfg is runnable, as an error naming the
// offending field. Run and RunContext validate implicitly; no configuration
// error escapes the API as a panic.
func ValidateConfig(cfg Config) error { return cfg.Validate() }

// Monitors and workloads.
type (
	// Monitor is an instruction-grain monitoring tool. The five built-in
	// monitors are available through NewMonitor; custom monitors implement
	// this interface and run through RunWithMonitor (see
	// examples/watchpoint for a complete user-defined monitor).
	Monitor = monitor.Monitor
	// MonitorKind distinguishes memory-tracking from propagation-tracking
	// analyses.
	MonitorKind = monitor.Kind
	// HandleCtx carries execution context into a software handler.
	HandleCtx = monitor.HandleCtx
	// HandleResult is the outcome of one software handler execution.
	HandleResult = monitor.HandleResult
	// HandlerClass categorizes a handler's path (clean check, redundant
	// update, complex, stack, high-level).
	HandlerClass = monitor.Class
	// Report is one detection raised by a monitor.
	Report = monitor.Report
	// Profile parameterizes a synthetic benchmark.
	Profile = trace.Profile
	// Inject configures deliberate bugs for demonstration programs.
	Inject = trace.Inject
)

// Monitor kinds.
const (
	MemoryTracking      = monitor.MemoryTracking
	PropagationTracking = monitor.PropagationTracking
)

// Handler classes for HandleResult.Class.
const (
	ClassCC    = monitor.ClassCC
	ClassRU    = monitor.ClassRU
	ClassSlow  = monitor.ClassSlow
	ClassStack = monitor.ClassStack
	ClassHigh  = monitor.ClassHigh
)

// RunWithMonitor simulates a benchmark under a caller-supplied (custom)
// monitor. The monitor must be fresh: its internal state is mutated.
func RunWithMonitor(bench string, cfg Config, mon Monitor) (*Result, error) {
	return system.RunWithMonitor(bench, cfg, mon)
}

// RunWithMonitorContext is RunWithMonitor with a cancellation context.
func RunWithMonitorContext(ctx context.Context, bench string, cfg Config, mon Monitor) (*Result, error) {
	return system.RunWithMonitorContext(ctx, bench, cfg, mon)
}

// NewMonitor constructs one of the built-in monitors: "AddrCheck",
// "MemCheck", "TaintCheck", "MemLeak", or "AtomCheck" (threads matters only
// for AtomCheck).
func NewMonitor(name string, threads int) (Monitor, error) { return monitor.New(name, threads) }

// MonitorNames lists the built-in monitors in the paper's order.
func MonitorNames() []string { return monitor.Names() }

// Benchmarks lists the serial (SPEC-style) benchmark profile names.
func Benchmarks() []string { return trace.SerialNames() }

// ParallelBenchmarks lists the multithreaded benchmark profile names.
func ParallelBenchmarks() []string { return trace.ParallelNames() }

// TaintBenchmarks lists the taint-propagating benchmarks used by TaintCheck.
func TaintBenchmarks() []string { return trace.TaintNames() }

// LookupProfile returns a registered benchmark profile.
func LookupProfile(name string) (*Profile, bool) { return trace.Lookup(name) }

// TraceSource yields a synthetic dynamic instruction stream.
type TraceSource = trace.Source

// NewTraceSource builds a deterministic instruction stream for the profile
// (limit 0 means unbounded).
func NewTraceSource(prof *Profile, seed, limit uint64) TraceSource {
	return trace.New(prof, seed, limit)
}

// TraceReader replays a recorded trace file as a TraceSource.
type TraceReader = trace.Reader

// RecordTrace generates instrs instructions of the named profile and writes
// them to w in the compact binary trace format, returning the record count.
func RecordTrace(w io.Writer, profileName string, seed, instrs uint64) (uint64, error) {
	prof, ok := trace.Lookup(profileName)
	if !ok {
		return 0, fmt.Errorf("fade: unknown profile %q", profileName)
	}
	return trace.Record(w, prof.Name, trace.New(prof, seed, instrs), 0)
}

// OpenTrace parses a recorded trace for replay.
func OpenTrace(r io.Reader) (*TraceReader, error) { return trace.NewReader(r) }

// Accelerator-level API, for users who want to program the filtering unit
// directly rather than run whole-system simulations.
type (
	// Entry is one event-table entry (Fig. 6b).
	Entry = core.Entry
	// OperandRule is the per-operand portion of an entry.
	OperandRule = core.OperandRule
	// FilteringUnit is the FADE accelerator.
	FilteringUnit = core.FilteringUnit
	// Unfiltered is an event forwarded to software.
	Unfiltered = core.Unfiltered
	// Programmer is the configuration surface for installing filter rules.
	Programmer = core.Programmer
	// Event is the record the application enqueues per monitored event.
	Event = isa.Event
	// Instr is one dynamic instruction.
	Instr = isa.Instr
	// MetadataState bundles the shadow memory and register metadata.
	MetadataState = metadata.State
)

// NewMetadataState returns empty metadata state.
func NewMetadataState() *MetadataState { return metadata.NewState() }

// Instruction/event vocabulary, for custom monitors and trace consumers.
type (
	// Op classifies a dynamic instruction.
	Op = isa.Op
	// EventKind distinguishes instruction, stack-update, and high-level
	// events.
	EventKind = isa.EventKind
	// Reg names an architectural integer register.
	Reg = isa.Reg
	// RUOp selects the redundant-update composition of an event-table
	// entry.
	RUOp = core.RUOp
	// NBKind selects the MD-update rule applied to unfilterable events.
	NBKind = core.NBKind
)

// Operation classes.
const (
	OpNop      = isa.OpNop
	OpALU      = isa.OpALU
	OpFPALU    = isa.OpFPALU
	OpLoad     = isa.OpLoad
	OpStore    = isa.OpStore
	OpBranch   = isa.OpBranch
	OpJmpReg   = isa.OpJmpReg
	OpCall     = isa.OpCall
	OpRet      = isa.OpRet
	OpMalloc   = isa.OpMalloc
	OpFree     = isa.OpFree
	OpTaintSrc = isa.OpTaintSrc
)

// Event kinds.
const (
	EvInstr     = isa.EvInstr
	EvStackCall = isa.EvStackCall
	EvStackRet  = isa.EvStackRet
	EvHighLevel = isa.EvHighLevel
)

// RegNone marks an absent operand; NumRegs is the integer register count.
const (
	RegNone = isa.RegNone
	NumRegs = isa.NumRegs
)

// Redundant-update compositions.
const (
	RUNone   = core.RUNone
	RUDirect = core.RUDirect
	RUOr     = core.RUOr
	RUAnd    = core.RUAnd
)

// MD-update rules for non-blocking filtering.
const (
	NBNone          = core.NBNone
	NBPropS1        = core.NBPropS1
	NBPropS2        = core.NBPropS2
	NBOr            = core.NBOr
	NBAnd           = core.NBAnd
	NBConst         = core.NBConst
	NBCondConstOr   = core.NBCondConstOr
	NBCondPropConst = core.NBCondPropConst
	NBCondDestProp  = core.NBCondDestProp
)

// NewFilteringUnit builds a FADE accelerator in the given mode
// ("non-blocking" unless blocking is true) over md, with fresh 32/16-entry
// queues. It returns the unit together with its event and unfiltered
// queues.
func NewFilteringUnit(blocking bool, md *MetadataState) (*FilteringUnit, *EventQueue, *UnfilteredQueue) {
	mode := core.NonBlocking
	if blocking {
		mode = core.Blocking
	}
	evq := queue.NewBounded[isa.Event](32)
	ufq := queue.NewBounded[core.Unfiltered](16)
	fu := core.New(core.DefaultConfig(mode), md, evq, ufq, nil)
	return fu, evq, ufq
}

// Queue types used by the accelerator-level API.
type (
	// EventQueue decouples the application from the accelerator.
	EventQueue = queue.Bounded[isa.Event]
	// UnfilteredQueue decouples the accelerator from the monitor.
	UnfilteredQueue = queue.Bounded[core.Unfiltered]
)

// Experiments and reporting.
type (
	// ExperimentTable is one regenerated figure or table.
	ExperimentTable = experiments.Table
	// ExperimentOptions control simulation scale.
	ExperimentOptions = experiments.Options
	// ExperimentCell is one enumerated cell of an experiment: its table
	// label and the canonical spec that simulates it.
	ExperimentCell = experiments.Cell
)

// Canonical run identity and the content-addressed result store.
type (
	// RunSpec is the canonical, JSON-round-trippable description of one
	// simulation. Equal runs — however they were spelled — normalize to
	// equal specs, and RunSpec.Hash() is the identity results are cached
	// under.
	RunSpec = runspec.Spec
	// ResultCache memoizes completed runs by spec hash: a bounded memory
	// LRU, optionally backed by a crash-safe on-disk store that fadebench
	// sweeps and fadeserve daemons can share.
	ResultCache = rcache.Cache
)

// SpecOf returns the canonical spec of one (benchmark, config) run —
// the identity Run's result is cached under when an ExperimentOptions
// or serve cache is in play.
func SpecOf(bench string, cfg Config) RunSpec { return system.SpecFromConfig(bench, cfg) }

// OpenResultCache opens a result cache holding up to memEntries recent
// results in memory (0 selects the default), persisted under dir; an
// empty dir keeps the cache purely in memory. The directory's contents
// survive crashes and are shared safely by concurrent processes.
func OpenResultCache(dir string, memEntries int) (*ResultCache, error) {
	return rcache.New(rcache.Options{MemEntries: memEntries, Dir: dir})
}

// ExperimentCells enumerates the experiment's cells — every (label,
// spec) pair it would simulate — without running anything.
func ExperimentCells(id string, o ExperimentOptions) ([]ExperimentCell, error) {
	return experiments.CellsFor(id, o)
}

// PrimeExperiment executes the experiment's cells whose spec hash falls
// in shard (of count hash-partitioned shards), populating o.Cache but
// building no table. Shards are disjoint and cover the cell set, so
// count workers priming one shard each simulate every cell exactly
// once; a subsequent RunExperiment over the shared cache is a pure
// read. It returns how many cells this shard ran out of the
// experiment's total.
func PrimeExperiment(id string, o ExperimentOptions, shard, count int) (ran, total int, err error) {
	return experiments.Prime(id, o, shard, count)
}

// Observability: every simulation run carries a metrics registry whose
// end-of-run snapshot (and optional cycle-sampled timeline) is exported
// through these types. docs/METRICS.md documents the metric name space.
type (
	// MetricsSnapshot is a flattened, name-sorted view of a run's metrics
	// registry.
	MetricsSnapshot = obs.Snapshot
	// MetricValue is one exported sample of a snapshot.
	MetricValue = obs.Value
	// LabeledSnapshot pairs a snapshot with exposition labels for
	// WriteMetrics.
	LabeledSnapshot = obs.LabeledSnapshot
	// MetricLabel is one exposition label (key="value").
	MetricLabel = obs.Label
	// CellMetrics is one experiment cell's telemetry, attached to
	// ExperimentTable.Cells.
	CellMetrics = experiments.CellMetrics
)

// WriteMetrics renders labeled snapshots in the Prometheus text exposition
// format. Output is byte-deterministic for a given input.
func WriteMetrics(w io.Writer, snaps []LabeledSnapshot) error {
	return obs.WritePrometheus(w, snaps)
}

// WriteTimeline emits cycle-sampled snapshots as JSONL, one object per
// sample, tagged with the given cell identifier.
func WriteTimeline(w io.Writer, cell string, points []*MetricsSnapshot) error {
	return obs.WriteTimeline(w, cell, points)
}

// Trace is a per-run span trace (see docs/TRACING.md): a fixed-capacity
// ring of wall-clock spans (serving and CLI path) and cycle-domain spans
// (emitted inside the simulator when the run's context carries the trace).
// A nil *Trace is inert — every method is a no-op — so tracing costs one
// nil check when disabled.
type Trace = spans.Trace

// NewTrace builds a trace with the given id and ring capacity (<= 0 selects
// the default). Pass it to RunContext via TraceContext, then export with
// WriteChromeTrace or WriteTraceJSONL.
func NewTrace(id string, capacity int) *Trace { return spans.New(id, capacity) }

// TraceContext returns ctx carrying tr. RunContext detects the trace and
// emits cycle-domain spans into it: fast-forward jumps, fault bursts, queue
// full/drain episodes, monitor-behind intervals, and checkpoint polls.
// Cycle-domain emission is deterministic per (seed, config, flags).
func TraceContext(ctx context.Context, tr *Trace) context.Context {
	return spans.NewContext(ctx, tr)
}

// WriteChromeTrace exports tr as Chrome trace-event JSON, loadable directly
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Cycle-domain tracks
// map one simulated cycle to one microsecond.
func WriteChromeTrace(w io.Writer, tr *Trace) error { return spans.WriteChromeJSON(w, tr) }

// WriteTraceJSONL exports tr as one span per line, for jq-style analysis.
func WriteTraceJSONL(w io.Writer, tr *Trace) error { return spans.WriteJSONL(w, tr) }

// RunExperiment regenerates one paper artifact by id (see ExperimentIDs).
func RunExperiment(id string, o ExperimentOptions) (*ExperimentTable, error) {
	return experiments.ByID(id, o)
}

// RunAllExperiments regenerates every paper artifact in order.
func RunAllExperiments(o ExperimentOptions) ([]*ExperimentTable, error) {
	return experiments.All(o)
}

// ExperimentIDs lists the regenerable artifacts.
func ExperimentIDs() []string { return experiments.IDs() }

// SynthReport renders the Section 7.6 area/power estimate.
func SynthReport() string { return synth.Report() }
