package fade

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (DESIGN.md §3 maps experiment ids to paper
// artifacts). Each benchmark regenerates its artifact at a reduced
// simulation scale and reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. cmd/fadebench prints the full tables at
// publication scale.

import (
	"strconv"
	"testing"
)

// benchInstrs keeps individual benchmark iterations tractable; the shapes
// (who wins, by what factor) are stable at this scale.
const benchInstrs = 60_000

func benchOpts() ExperimentOptions {
	return ExperimentOptions{Instrs: benchInstrs, Seed: 1}
}

func parseCell(b *testing.B, cell string) float64 {
	b.Helper()
	cell = trimPct(cell)
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		b.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func trimPct(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '%' || s[len(s)-1] == 'x') {
		s = s[:len(s)-1]
	}
	return s
}

// BenchmarkFig2MonitoredIPC regenerates Fig. 2(a): per-monitor monitored
// IPC on the aggressive 4-way OoO core.
func BenchmarkFig2MonitoredIPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := RunExperiment("fig2a", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range tbl.Rows {
			b.ReportMetric(parseCell(b, row[2]), row[0]+"_monIPC")
		}
	}
}

// BenchmarkFig2PerBenchmark regenerates Fig. 2(b,c).
func BenchmarkFig2PerBenchmark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment("fig2bc", benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3QueueOccupancy regenerates Fig. 3(a,b): infinite event
// queue occupancy CDFs.
func BenchmarkFig3QueueOccupancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment("fig3ab", benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3QueueSize regenerates Fig. 3(c): slowdown vs event-queue
// size for MemLeak.
func BenchmarkFig3QueueSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := RunExperiment("fig3c", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := tbl.Rows[len(tbl.Rows)-1] // gmean row
		b.ReportMetric(parseCell(b, last[1]), "gmean_32K")
		b.ReportMetric(parseCell(b, last[2]), "gmean_32")
	}
}

// BenchmarkFig4Breakdown regenerates Fig. 4(a): monitor execution-time
// breakdown into CC/RU/stack-update handling.
func BenchmarkFig4Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment("fig4a", benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Distance regenerates Fig. 4(b): the CDF of distances
// between unfiltered events under MemLeak.
func BenchmarkFig4Distance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment("fig4b", benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Bursts regenerates Fig. 4(c): unfiltered burst sizes.
func BenchmarkFig4Bursts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment("fig4c", benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2FilteringEfficiency regenerates Table 2: the fraction of
// instruction event handlers FADE elides, per monitor.
func BenchmarkTable2FilteringEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := RunExperiment("table2", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range tbl.Rows {
			b.ReportMetric(parseCell(b, row[1]), row[0]+"_filter_pct")
		}
	}
}

// BenchmarkFig9Slowdown regenerates Fig. 9: FADE vs unaccelerated
// slowdowns on the single-core dual-threaded 4-way OoO system.
func BenchmarkFig9Slowdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := RunExperiment("fig9", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := tbl.Rows[len(tbl.Rows)-1] // overall mean
		b.ReportMetric(parseCell(b, last[2]), "unaccelerated_avg")
		b.ReportMetric(parseCell(b, last[3]), "fade_avg")
	}
}

// BenchmarkFig10CoreTypes regenerates Fig. 10: sensitivity to the core
// microarchitecture (in-order / 2-way / 4-way OoO).
func BenchmarkFig10CoreTypes(b *testing.B) {
	o := benchOpts()
	o.Instrs = 25_000 // 5 monitors x 3 cores x 2 systems x full suites
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment("fig10", o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11SingleVsTwoCore regenerates Fig. 11(a).
func BenchmarkFig11SingleVsTwoCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment("fig11a", benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Utilization regenerates Fig. 11(b): two-core utilization
// breakdown.
func BenchmarkFig11Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment("fig11b", benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11NonBlocking regenerates Fig. 11(c): blocking vs
// non-blocking FADE.
func BenchmarkFig11NonBlocking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := RunExperiment("fig11c", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range tbl.Rows {
			b.ReportMetric(parseCell(b, row[3]), row[0]+"_NB_benefit")
		}
	}
}

// BenchmarkSynthArea regenerates the Section 7.6 area/power estimates.
func BenchmarkSynthArea(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := RunExperiment("synth", ExperimentOptions{})
		if err != nil {
			b.Fatal(err)
		}
		_ = tbl
	}
}

// Microbenchmarks of the simulation substrate itself.

// BenchmarkFilteringUnitThroughput measures raw accelerator throughput on
// an all-filterable event stream (the design's peak of one event/cycle).
func BenchmarkFilteringUnitThroughput(b *testing.B) {
	md := NewMetadataState()
	fu, evq, _ := NewFilteringUnit(false, md)
	fu.Inv.Set(0, 0)
	fu.Table.Set(1, Entry{
		S1: OperandRule{Valid: true, Mem: true, MDBytes: 1, Mask: 0xFF, INVid: 0},
		CC: true,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evq.Push(Event{ID: 1, Addr: 0x1000, Seq: uint64(i)})
		fu.Tick(uint64(i))
	}
	b.ReportMetric(float64(fu.Stats().Filtered())/float64(b.N), "filtered_per_event")
}

// BenchmarkTraceGeneration measures synthetic workload generation speed.
func BenchmarkTraceGeneration(b *testing.B) {
	prof, _ := LookupProfile("gcc")
	g := NewTraceSource(prof, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("unbounded source ended")
		}
	}
}

// BenchmarkEndToEndSimulation measures whole-system simulation speed in
// application instructions per wall-clock operation.
func BenchmarkEndToEndSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig("MemLeak")
		cfg.Instrs = 20_000
		cfg.Seed = uint64(i + 1)
		if _, err := Run("astar", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFastForward measures the event-driven skip-ahead win on a
// quiescence-heavy workload: blocking FADE with a raised completion-signal
// latency parks the application core for hundreds of cycles per monitored
// event, so nearly all simulated time is quiescent span. The exact/fast
// pair shares one configuration; results are byte-identical (the system
// differential tests pin that), so the ratio of their ns/op is pure
// simulator speedup. cycles_per_us reports simulated throughput directly.
func BenchmarkFastForward(b *testing.B) {
	for _, mode := range []struct {
		name string
		ff   bool
	}{{"exact", false}, {"fast", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig("MemLeak")
				cfg.Accel = FADEBlocking
				cfg.Instrs = 100_000
				cfg.BlockingSignalCycles = 500
				cfg.MaxCycles = 500_000_000
				cfg.FastForward = mode.ff
				r, err := Run("astar", cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles += r.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(b.Elapsed().Microseconds()+1), "cycles_per_us")
		})
	}
}

// BenchmarkSystemRunAllocs guards the hot-path allocation diet: one fixed
// system.Run with allocation reporting. The fixed seed means the baseline
// simulation is cached after the first iteration, so allocs/op converges on
// the monitored run's own footprint — the event path from AppCore through
// the FilteringUnit to the monitor core, plus per-run setup.
func BenchmarkSystemRunAllocs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig("MemLeak")
		cfg.Instrs = 20_000
		cfg.Seed = 12345
		if _, err := Run("astar", cfg); err != nil {
			b.Fatal(err)
		}
	}
}
