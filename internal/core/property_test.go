package core

import (
	"testing"
	"testing/quick"

	"fade/internal/isa"
	"fade/internal/queue"
)

// TestFUEventConservation: every instruction event the accelerator consumes
// is accounted for exactly once — filtered (CC or RU), partially filtered,
// or sent to software — regardless of the event/metadata mix.
func TestFUEventConservation(t *testing.T) {
	err := quick.Check(func(seeds []uint16, mode bool) bool {
		m := NonBlocking
		if mode {
			m = Blocking
		}
		fu, evq, ufq, md := newTestFU(m)
		fu.Inv.Set(0, 0)
		fu.Table.Set(1, ccEntry(NBPropS1))
		// Scatter some pointer metadata so both outcomes occur.
		for i, s := range seeds {
			if s%3 == 0 {
				md.Mem.Store(uint32(s)*4, 1)
			}
			_ = i
		}
		var pushed uint64
		for i, s := range seeds {
			ev := loadEvent(1, uint32(s)*4, isa.Reg(1+i%30), uint64(i))
			for !evq.Push(ev) {
				fu.Tick(0)
				drain(fu, ufq)
			}
			pushed++
		}
		for cyc := 0; !evq.Empty() || fu.Busy(); cyc++ {
			fu.Tick(0)
			drain(fu, ufq)
			if cyc > len(seeds)*100+1000 {
				return false // wedged
			}
		}
		st := fu.Stats()
		instr := st.FilteredCC + st.FilteredRU + st.PartialShort +
			(st.UnfilteredSent - st.HighLevelEvents)
		return st.InstrEvents == pushed && instr == pushed && fu.fsq.Len() == 0
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

func drain(fu *FilteringUnit, ufq *queue.Bounded[Unfiltered]) {
	for {
		u, ok := ufq.Pop()
		if !ok {
			return
		}
		fu.Complete(u.Ev.Seq)
	}
}

// TestFUFSQNeverExceedsOutstanding: the FSQ holds at most one entry per
// outstanding unfiltered event, and completing all events empties it.
func TestFUFSQNeverExceedsOutstanding(t *testing.T) {
	fu, evq, ufq, md := newTestFU(NonBlocking)
	fu.Inv.Set(0, 0)
	store := Entry{
		S1: OperandRule{Valid: true, MDBytes: 1, Mask: 0xFF, INVid: 0},
		D:  OperandRule{Valid: true, Mem: true, MDBytes: 1, Mask: 0xFF, INVid: 0},
		CC: true, NB: NBPropS1, HandlerPC: 0x9100,
	}
	fu.Table.Set(2, store)
	md.Regs.Store(5, 1)

	var popped []Unfiltered
	tick := 0
	for i := 0; i < 200; i++ {
		ev := isa.Event{ID: 2, Addr: uint32(0x3000 + i*4), Src1: 5, Src2: isa.RegNone,
			Dest: isa.RegNone, Kind: isa.EvInstr, Op: isa.OpStore, Seq: uint64(i)}
		for !evq.Push(ev) {
			fu.Tick(0)
			tick++
			if u, ok := ufq.Pop(); ok {
				popped = append(popped, u)
			}
			// Lagging consumer: complete slowly so the FSQ stays busy
			// but the system keeps draining.
			if len(popped) > 0 && tick%3 == 0 {
				fu.Complete(popped[0].Ev.Seq)
				popped = popped[1:]
			}
			if fu.fsq.Len() > fu.Outstanding() {
				t.Fatalf("FSQ %d entries > %d outstanding", fu.fsq.Len(), fu.Outstanding())
			}
		}
	}
	for cyc := 0; !evq.Empty() || fu.Busy(); cyc++ {
		fu.Tick(0)
		if u, ok := ufq.Pop(); ok {
			popped = append(popped, u)
		}
		if fu.fsq.Len() > fu.Outstanding() {
			t.Fatalf("FSQ %d entries > %d outstanding", fu.fsq.Len(), fu.Outstanding())
		}
		if len(popped) > 0 && cyc%3 == 0 {
			fu.Complete(popped[0].Ev.Seq)
			popped = popped[1:]
		}
		if cyc > 100_000 {
			t.Fatal("wedged")
		}
	}
	for _, u := range popped {
		fu.Complete(u.Ev.Seq)
	}
	if fu.fsq.Len() != 0 {
		t.Fatalf("FSQ retained %d entries after all completions", fu.fsq.Len())
	}
	if fu.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", fu.Outstanding())
	}
}

// TestFUQueueOrderPreserved: unfiltered events reach software in program
// order (the in-order processing the paper's dependency argument requires).
func TestFUQueueOrderPreserved(t *testing.T) {
	fu, evq, ufq, md := newTestFU(NonBlocking)
	fu.Inv.Set(0, 0)
	fu.Table.Set(1, ccEntry(NBPropS1))
	md.Mem.Store(0x9000, 1)

	var got []uint64
	seq := uint64(0)
	for i := 0; i < 300; i++ {
		addr := uint32(0x100)
		if i%3 == 0 {
			addr = 0x9000 // unfilterable
		}
		ev := loadEvent(1, addr, isa.Reg(1+i%7), seq)
		seq++
		for !evq.Push(ev) {
			fu.Tick(0)
			if u, ok := ufq.Pop(); ok {
				got = append(got, u.Ev.Seq)
				fu.Complete(u.Ev.Seq)
			}
		}
	}
	for !evq.Empty() || fu.Busy() {
		fu.Tick(0)
		if u, ok := ufq.Pop(); ok {
			got = append(got, u.Ev.Seq)
			fu.Complete(u.Ev.Seq)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("out-of-order delivery: %d after %d", got[i], got[i-1])
		}
	}
	if len(got) == 0 {
		t.Fatal("no unfiltered events delivered")
	}
}
