package core

// FSQEntries is the filter store queue capacity. The FSQ holds one entry
// per in-flight unfiltered event with a memory destination, so it is sized
// like the unfiltered event queue (16 entries, Section 6).
const FSQEntries = 16

// fsqEntry is one filter store queue entry: the critical metadata value the
// MD update logic computed for an unfiltered event's memory destination,
// tagged with the event's sequence number so it can be discarded when the
// software handler completes (Section 5.2).
type fsqEntry struct {
	mdAddr uint32 // metadata byte address (appAddr >> 2)
	value  byte
	seq    uint64
	valid  bool
}

// FSQ is the filter store queue. Lookups search newest-to-oldest so a
// dependent event observes the most recent pending update, mirroring the
// associative search performed in parallel with the MD cache access.
type FSQ struct {
	entries [FSQEntries]fsqEntry
	order   []int // indices in allocation order, oldest first
}

// Full reports whether no entry is free.
func (q *FSQ) Full() bool { return len(q.order) >= FSQEntries }

// Len returns the number of live entries.
func (q *FSQ) Len() int { return len(q.order) }

// Insert records a pending critical-metadata update. It returns false when
// the queue is full (the filtering unit must stall).
func (q *FSQ) Insert(mdAddr uint32, value byte, seq uint64) bool {
	if q.Full() {
		return false
	}
	for i := range q.entries {
		if !q.entries[i].valid {
			q.entries[i] = fsqEntry{mdAddr: mdAddr, value: value, seq: seq, valid: true}
			q.order = append(q.order, i)
			return true
		}
	}
	return false
}

// Lookup returns the newest pending value for mdAddr, if any. A hit
// satisfies the dependence instead of the MD cache (Section 5.2).
func (q *FSQ) Lookup(mdAddr uint32) (byte, bool) {
	for i := len(q.order) - 1; i >= 0; i-- {
		e := &q.entries[q.order[i]]
		if e.valid && e.mdAddr == mdAddr {
			return e.value, true
		}
	}
	return 0, false
}

// Complete discards all entries belonging to the event with the given
// sequence number; the MD cache now holds the handler-written value.
func (q *FSQ) Complete(seq uint64) int {
	removed := 0
	keep := q.order[:0]
	for _, idx := range q.order {
		if q.entries[idx].seq == seq {
			q.entries[idx].valid = false
			removed++
			continue
		}
		keep = append(keep, idx)
	}
	q.order = keep
	return removed
}

// Reset discards every entry.
func (q *FSQ) Reset() {
	for i := range q.entries {
		q.entries[i].valid = false
	}
	q.order = q.order[:0]
}
