package core

import (
	"testing"
	"testing/quick"

	"fade/internal/sim"
)

// randomTable fills an EventTable and InvariantFile from a deterministic bit
// stream: raw packed entries (covering the whole 96-bit encode space, not
// just shapes the monitors program) with a sprinkling of unprogrammed holes.
func randomTable(rng *sim.RNG) (*EventTable, *InvariantFile) {
	var t EventTable
	var inv InvariantFile
	for id := 0; id < EventTableEntries; id++ {
		if rng.Uint64()%8 == 0 {
			continue // leave unprogrammed
		}
		t.SetRaw(id, Packed{Lo: rng.Uint64(), Hi: rng.Uint32()})
	}
	for i := 0; i < InvRegs; i++ {
		inv.Set(i, byte(rng.Uint64()))
	}
	inv.SetStack(int(rng.Uint64()%InvRegs), int(rng.Uint64()%InvRegs))
	return &t, &inv
}

// TestCompiledRowsMatchFilterCheck: for random tables, INV files, and
// operand values, every compiled row must make exactly the decision the
// interpreted Filter-stage path makes — filter verdict, CC/RU attribution,
// chain continuation, partial short-handler PC, and the metadata-read gate.
func TestCompiledRowsMatchFilterCheck(t *testing.T) {
	rng := sim.NewRNG(7)
	for trial := 0; trial < 40; trial++ {
		tbl, inv := randomTable(rng)
		var p program
		p.compile(tbl, inv)
		for id := 0; id < EventTableEntries; id++ {
			e, programmed := tbl.Get(id)
			r := &p.rows[id]
			if !programmed {
				if r.kind != rowUnprogrammed {
					t.Fatalf("trial %d entry %d: unprogrammed entry compiled to kind %d", trial, id, r.kind)
				}
				continue
			}
			if r.kind == rowUnprogrammed {
				t.Fatalf("trial %d entry %d: programmed entry compiled to rowUnprogrammed", trial, id)
			}
			wantMem := e.S1.Valid && e.S1.Mem || e.S2.Valid && e.S2.Mem || e.D.Valid && e.D.Mem
			if r.hasMem != wantMem {
				t.Fatalf("trial %d entry %d: hasMem = %v, want %v", trial, id, r.hasMem, wantMem)
			}
			if r.ms != e.MS || r.next != e.Next&(EventTableEntries-1) || r.partial != e.Partial {
				t.Fatalf("trial %d entry %d: continuation row %+v != entry %+v", trial, id, r, e)
			}
			if e.Partial {
				short, _ := tbl.Get(int(e.Next))
				if r.shortPC != short.HandlerPC {
					t.Fatalf("trial %d entry %d: shortPC = %d, want %d", trial, id, r.shortPC, short.HandlerPC)
				}
			}
			for probe := 0; probe < 64; probe++ {
				ops := Operands{S1: byte(rng.Uint64()), S2: byte(rng.Uint64()), D: byte(rng.Uint64())}
				want := filterCheck(e, ops, inv)
				if got := r.filter(ops); got != want {
					t.Fatalf("trial %d entry %d ops %+v: compiled %v, interpreted %v (entry %+v)",
						trial, id, ops, got, want, e)
				}
				// The CC/RU counter attribution in stepInstr keys off the row
				// kind; when the check passes it must match the entry's mode
				// under filterCheck's CC-before-RU precedence.
				if want {
					if e.CC != (r.kind == rowClean) {
						t.Fatalf("trial %d entry %d: passing row kind %d mismatches entry CC=%v", trial, id, r.kind, e.CC)
					}
				}
			}
		}
	}
}

// TestCompiledRowsMatchFilterCheckQuick is the testing/quick angle on the
// same property, driving entry bits and operands from the fuzzer's
// generator rather than a fixed stream.
func TestCompiledRowsMatchFilterCheckQuick(t *testing.T) {
	err := quick.Check(func(lo uint64, hi uint32, regs [InvRegs]byte, s1, s2, d byte) bool {
		var tbl EventTable
		var inv InvariantFile
		tbl.SetRaw(3, Packed{Lo: lo, Hi: hi})
		for i, v := range regs {
			inv.Set(i, v)
		}
		var p program
		p.compile(&tbl, &inv)
		e, _ := tbl.Get(3)
		ops := Operands{S1: s1, S2: s2, D: d}
		return p.rows[3].filter(ops) == filterCheck(e, ops, &inv)
	}, &quick.Config{MaxCount: 4000})
	if err != nil {
		t.Fatal(err)
	}
}

// TestProgramStaleness: any write to the event table or INV RF — direct,
// raw (MMIO), or via the stack selector — must invalidate a compiled
// program; recompiling refreshes it.
func TestProgramStaleness(t *testing.T) {
	rng := sim.NewRNG(11)
	tbl, inv := randomTable(rng)
	var p program
	if !p.stale(tbl, inv) {
		t.Fatal("zero-value program claims freshness")
	}
	p.compile(tbl, inv)
	if p.stale(tbl, inv) {
		t.Fatal("freshly compiled program is stale")
	}
	touch := []struct {
		name string
		do   func()
	}{
		{"table.Set", func() { tbl.Set(5, Entry{CC: true, S1: OperandRule{Valid: true, Mask: 0xFF}}) }},
		{"table.SetRaw", func() { tbl.SetRaw(6, Packed{Lo: 1}) }},
		{"inv.Set", func() { inv.Set(2, 0xAB) }},
		{"inv.SetStack", func() { inv.SetStack(1, 2) }},
	}
	for _, tc := range touch {
		tc.do()
		if !p.stale(tbl, inv) {
			t.Fatalf("%s did not invalidate the compiled program", tc.name)
		}
		p.compile(tbl, inv)
		if p.stale(tbl, inv) {
			t.Fatalf("recompile after %s left the program stale", tc.name)
		}
	}
}

// TestFURecompilesAfterMMIOReprogram: reprogramming a live filtering unit
// through its MMIO window must change filtering behavior on the very next
// event — the generation counters, not construction order, drive
// compilation.
func TestFURecompilesAfterMMIOReprogram(t *testing.T) {
	fu, evq, ufq, md := newTestFU(NonBlocking)
	fu.Inv.Set(0, 0)
	fu.Table.Set(1, ccEntry(NBNone))
	md.Mem.Store(0x40, 0) // clean: matches INV[0]=0

	evq.Push(loadEvent(1, 0x40, 2, 1))
	for !evq.Empty() || fu.Busy() {
		fu.Tick(0)
		drain(fu, ufq)
	}
	if fu.Stats().FilteredCC != 1 {
		t.Fatalf("pre-reprogram: FilteredCC = %d, want 1", fu.Stats().FilteredCC)
	}

	// Flip INV[0] through MMIO: the same event is no longer clean.
	if err := NewMMIO(fu).Write32(MMIOInvBase+0, 0xFF); err != nil {
		t.Fatal(err)
	}
	evq.Push(loadEvent(1, 0x40, 2, 2))
	for !evq.Empty() || fu.Busy() {
		fu.Tick(0)
		drain(fu, ufq)
	}
	st := fu.Stats()
	if st.FilteredCC != 1 || st.UnfilteredSent != 1 {
		t.Fatalf("post-reprogram: FilteredCC = %d, UnfilteredSent = %d; want 1, 1 (stale compiled table?)",
			st.FilteredCC, st.UnfilteredSent)
	}
}

// BenchmarkFilterDecision measures the Filter-stage decision path: the
// compiled row walk against the interpreted Get+filterCheck it replaced.
func BenchmarkFilterDecision(b *testing.B) {
	rng := sim.NewRNG(3)
	tbl, inv := randomTable(rng)
	ops := make([]Operands, 256)
	ids := make([]uint8, 256)
	for i := range ops {
		ops[i] = Operands{S1: byte(rng.Uint64()), S2: byte(rng.Uint64()), D: byte(rng.Uint64())}
		ids[i] = uint8(rng.Uint64() % EventTableEntries)
	}
	b.Run("interpreted", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			e, programmed := tbl.Get(int(ids[i%256]))
			if programmed && filterCheck(e, ops[i%256], inv) {
				n++
			}
		}
		sinkInt = n
	})
	b.Run("compiled", func(b *testing.B) {
		var p program
		p.compile(tbl, inv)
		n := 0
		for i := 0; i < b.N; i++ {
			if p.stale(tbl, inv) {
				p.compile(tbl, inv)
			}
			r := &p.rows[ids[i%256]]
			if r.kind != rowUnprogrammed && r.filter(ops[i%256]) {
				n++
			}
		}
		sinkInt = n
	})
}

var sinkInt int
