package core

import (
	"testing"

	"fade/internal/isa"
	"fade/internal/metadata"
	"fade/internal/queue"
)

// newTestFU builds a filtering unit over fresh queues and metadata. Miss
// penalties are zeroed so behavioural tests are cycle-exact; the timing of
// misses is exercised by TestFUMDCacheMissStall with the real config.
func newTestFU(mode Mode) (*FilteringUnit, *queue.Bounded[isa.Event], *queue.Bounded[Unfiltered], *metadata.State) {
	md := metadata.NewState()
	evq := queue.NewBounded[isa.Event](32)
	ufq := queue.NewBounded[Unfiltered](16)
	cfg := DefaultConfig(mode)
	cfg.MDMissLatency = 0
	cfg.MTLBMissPenalty = 0
	cfg.BlockingSignalLatency = 0
	fu := New(cfg, md, evq, ufq, nil)
	return fu, evq, ufq, md
}

func TestFUBlockingSignalLatency(t *testing.T) {
	md := metadata.NewState()
	evq := queue.NewBounded[isa.Event](32)
	ufq := queue.NewBounded[Unfiltered](16)
	cfg := DefaultConfig(Blocking)
	cfg.MDMissLatency = 0
	cfg.MTLBMissPenalty = 0
	cfg.BlockingSignalLatency = 10
	fu := New(cfg, md, evq, ufq, nil)
	fu.Inv.Set(0, 0)
	fu.Table.Set(1, ccEntry(NBNone))
	md.Mem.Store(0x1000, 1)

	evq.Push(loadEvent(1, 0x1000, 3, 0))
	evq.Push(loadEvent(1, 0x2000, 4, 1))
	run(fu, 5)
	u, _ := ufq.Pop()
	fu.Complete(u.Ev.Seq)
	// The doorbell round trip delays the resume by the signal latency.
	run(fu, 5)
	if fu.Stats().Filtered() != 0 {
		t.Fatal("FU resumed before the completion signal arrived")
	}
	run(fu, 10)
	if fu.Stats().Filtered() != 1 {
		t.Fatal("FU did not resume after the signal latency")
	}
}

// ccEntry is a clean-check entry comparing the memory operand s1 and the
// register operand d to INV[0].
func ccEntry(nb NBKind) Entry {
	return Entry{
		S1:        OperandRule{Valid: true, Mem: true, MDBytes: 1, Mask: 0xFF, INVid: 0},
		D:         OperandRule{Valid: true, MDBytes: 1, Mask: 0xFF, INVid: 0},
		CC:        true,
		NB:        nb,
		HandlerPC: 0x9000,
	}
}

func loadEvent(id uint8, addr uint32, dest isa.Reg, seq uint64) isa.Event {
	return isa.Event{
		ID: id, Addr: addr, PC: 0x100, Src1: isa.RegNone, Src2: isa.RegNone,
		Dest: dest, Kind: isa.EvInstr, Op: isa.OpLoad, Seq: seq,
	}
}

// run ticks the FU n cycles.
func run(fu *FilteringUnit, n int) {
	for i := 0; i < n; i++ {
		fu.Tick(uint64(i))
	}
}

func TestFUFiltersCleanEvent(t *testing.T) {
	fu, evq, ufq, _ := newTestFU(NonBlocking)
	fu.Inv.Set(0, 0)
	fu.Table.Set(1, ccEntry(NBPropS1))

	evq.Push(loadEvent(1, 0x1000, 3, 0))
	run(fu, 3)
	if got := fu.Stats().FilteredCC; got != 1 {
		t.Fatalf("filtered CC = %d", got)
	}
	if !ufq.Empty() {
		t.Fatal("filtered event reached software")
	}
	if fu.Stats().InstrEvents != 1 {
		t.Fatalf("instr events = %d", fu.Stats().InstrEvents)
	}
}

func TestFUUnfilteredCarriesSnapshotAndAppliesNBUpdate(t *testing.T) {
	fu, evq, ufq, md := newTestFU(NonBlocking)
	fu.Inv.Set(0, 0)
	fu.Table.Set(1, ccEntry(NBPropS1))
	md.Mem.Store(0x1000, 1) // source word is a pointer: CC fails

	evq.Push(loadEvent(1, 0x1000, 3, 5))
	run(fu, 3)

	u, ok := ufq.Pop()
	if !ok {
		t.Fatal("unfiltered event not forwarded")
	}
	if u.Ev.Seq != 5 || u.HandlerPC != 0x9000 || u.Short {
		t.Fatalf("unfiltered = %+v", u)
	}
	if !u.MDValid || u.MD.S1 != 1 || u.MD.D != 0 {
		t.Fatalf("snapshot = %+v", u.MD)
	}
	// The MD update logic propagated s1 to the destination register.
	if md.Regs.Load(3) != 1 {
		t.Fatalf("MD RF dest = %d, want 1", md.Regs.Load(3))
	}
	if fu.Stats().NBRegWrites != 1 {
		t.Fatalf("NB reg writes = %d", fu.Stats().NBRegWrites)
	}
}

func TestFUNonBlockingContinuesPastUnfiltered(t *testing.T) {
	fu, evq, ufq, md := newTestFU(NonBlocking)
	fu.Inv.Set(0, 0)
	fu.Table.Set(1, ccEntry(NBPropS1))
	md.Mem.Store(0x1000, 1)

	evq.Push(loadEvent(1, 0x1000, 3, 0)) // unfiltered
	evq.Push(loadEvent(1, 0x2000, 4, 1)) // independent, filterable
	run(fu, 6)
	if fu.Stats().Filtered() != 1 {
		t.Fatalf("non-blocking FU did not continue filtering: %+v", fu.Stats())
	}
	if ufq.Len() != 1 {
		t.Fatalf("unfiltered count = %d", ufq.Len())
	}
}

func TestFUBlockingStallsUntilComplete(t *testing.T) {
	fu, evq, ufq, md := newTestFU(Blocking)
	fu.Inv.Set(0, 0)
	fu.Table.Set(1, ccEntry(NBNone))
	md.Mem.Store(0x1000, 1)

	evq.Push(loadEvent(1, 0x1000, 3, 0))
	evq.Push(loadEvent(1, 0x2000, 4, 1))
	run(fu, 10)
	if fu.Stats().Filtered() != 0 {
		t.Fatal("blocking FU filtered past an unfiltered event")
	}
	if fu.Stats().BlockedCycles == 0 {
		t.Fatal("blocked cycles not counted")
	}
	u, _ := ufq.Pop()
	fu.Complete(u.Ev.Seq)
	run(fu, 5)
	if fu.Stats().Filtered() != 1 {
		t.Fatal("blocking FU did not resume after completion")
	}
}

func TestFUDependentEventReadsFSQ(t *testing.T) {
	fu, evq, ufq, md := newTestFU(NonBlocking)
	fu.Inv.Set(0, 0)
	// Store-style entry: s1 is a register, destination is memory.
	store := Entry{
		S1:        OperandRule{Valid: true, MDBytes: 1, Mask: 0xFF, INVid: 0},
		D:         OperandRule{Valid: true, Mem: true, MDBytes: 1, Mask: 0xFF, INVid: 0},
		CC:        true,
		NB:        NBPropS1,
		HandlerPC: 0x9100,
	}
	fu.Table.Set(2, store)
	fu.Table.Set(1, ccEntry(NBPropS1))
	md.Regs.Store(5, 1) // register holds a pointer

	// Store r5 -> 0x3000: unfiltered; the FSQ now holds md[0x3000]=1.
	evq.Push(isa.Event{ID: 2, Addr: 0x3000, Src1: 5, Src2: isa.RegNone,
		Dest: isa.RegNone, Kind: isa.EvInstr, Op: isa.OpStore, Seq: 0})
	// Dependent load from 0x3000 must see the pending value (pointer) and
	// therefore be unfiltered too — even though main metadata still says 0.
	evq.Push(loadEvent(1, 0x3000, 6, 1))
	run(fu, 8)

	if got := ufq.Len(); got != 2 {
		t.Fatalf("expected both events unfiltered, queue holds %d", got)
	}
	if md.Mem.Load(0x3000) != 0 {
		t.Fatal("FSQ value leaked into main metadata before handler completion")
	}
	if fu.Stats().NBMemWrites != 1 {
		t.Fatalf("NB mem writes = %d", fu.Stats().NBMemWrites)
	}
	// After completion the FSQ entry is discarded.
	fu.Complete(0)
	fu.Complete(1)
	if fu.fsq.Len() != 0 {
		t.Fatalf("FSQ not drained: %d", fu.fsq.Len())
	}
}

func TestFUPartialFiltering(t *testing.T) {
	fu, evq, ufq, md := newTestFU(NonBlocking)
	fu.Inv.Set(4, 0x80) // thread-0 owner byte
	short := Entry{HandlerPC: 0x5100}
	fu.Table.Set(16, short)
	partial := Entry{
		D:         OperandRule{Valid: true, Mem: true, MDBytes: 1, Mask: 0xFF, INVid: 4},
		CC:        true,
		Partial:   true,
		Next:      16,
		NB:        NBConst,
		NBInv:     4,
		HandlerPC: 0x5000,
	}
	fu.Table.Set(1, partial)

	// Pass case: word owned by thread 0.
	md.Mem.Store(0x4000, 0x80)
	evq.Push(loadEvent(1, 0x4000, 3, 0))
	run(fu, 3)
	u, ok := ufq.Pop()
	if !ok || !u.Short || u.HandlerPC != 0x5100 {
		t.Fatalf("partial pass dispatch = %+v", u)
	}
	if fu.Stats().PartialShort != 1 {
		t.Fatalf("partial short count = %d", fu.Stats().PartialShort)
	}
	fu.Complete(0)

	// Fail case: word owned by nobody -> complex handler + NB const update.
	evq.Push(loadEvent(1, 0x5000, 3, 1))
	run(fu, 3)
	u, ok = ufq.Pop()
	if !ok || u.Short || u.HandlerPC != 0x5000 {
		t.Fatalf("partial fail dispatch = %+v", u)
	}
	if v, hit := fu.fsq.Lookup(metadata.MDAddr(0x5000)); !hit || v != 0x80 {
		t.Fatalf("FSQ owner update = %#x,%v", v, hit)
	}
	fu.Complete(1)
}

func TestFUMultiShotChain(t *testing.T) {
	fu, evq, ufq, md := newTestFU(NonBlocking)
	fu.Inv.Set(0, 3)
	first := ccEntry(NBPropS1)
	first.S1.INVid = 0
	first.D.INVid = 0
	first.MS = true
	first.Next = 20
	second := Entry{
		S1: OperandRule{Valid: true, Mem: true, MDBytes: 1, Mask: 0xFF},
		D:  OperandRule{Valid: true, MDBytes: 1, Mask: 0xFF},
		RU: RUDirect, NB: NBPropS1, HandlerPC: 0x9000,
	}
	fu.Table.Set(1, first)
	fu.Table.Set(20, second)

	// s1 = d = 1: the CC against 3 fails, the chained RU (s1==d) passes.
	md.Mem.Store(0x1000, 1)
	md.Regs.Store(3, 1)
	evq.Push(loadEvent(1, 0x1000, 3, 0))
	run(fu, 5)

	if fu.Stats().FilteredRU != 1 {
		t.Fatalf("chained RU not taken: %+v", fu.Stats())
	}
	if fu.Stats().ChainCycles != 1 {
		t.Fatalf("chain cycles = %d", fu.Stats().ChainCycles)
	}
	if !ufq.Empty() {
		t.Fatal("chained-filtered event reached software")
	}
}

func TestFUStackUpdateDrivesSUU(t *testing.T) {
	fu, evq, ufq, md := newTestFU(NonBlocking)
	fu.Inv.Set(0, 0)
	fu.Inv.Set(1, 9)
	fu.Inv.SetStack(1, 0) // call value 9, return value 0

	evq.Push(isa.Event{Kind: isa.EvStackCall, Addr: 0x8000, Size: 256, Seq: 0})
	run(fu, 10)
	for a := uint32(0x8000); a < 0x8100; a += 4 {
		if md.Mem.Load(a) != 9 {
			t.Fatalf("frame word %#x = %d", a, md.Mem.Load(a))
		}
	}
	if fu.Stats().StackEvents != 1 {
		t.Fatalf("stack events = %d", fu.Stats().StackEvents)
	}
	if !ufq.Empty() {
		t.Fatal("stack event reached software")
	}
	if fu.Stats().SUUCycles == 0 {
		t.Fatal("SUU cycles not counted")
	}
}

func TestFUStackWaitsForQueueDrain(t *testing.T) {
	fu, evq, ufq, md := newTestFU(NonBlocking)
	fu.Inv.Set(0, 0)
	fu.Inv.Set(1, 9)
	fu.Inv.SetStack(1, 0)
	fu.Table.Set(1, ccEntry(NBPropS1))
	md.Mem.Store(0x1000, 1)

	evq.Push(loadEvent(1, 0x1000, 3, 0)) // unfiltered, parks in ufq
	evq.Push(isa.Event{Kind: isa.EvStackCall, Addr: 0x8000, Size: 64, Seq: 1})
	run(fu, 6)
	if fu.Stats().StackEvents != 0 {
		t.Fatal("stack update proceeded with a non-empty unfiltered queue")
	}
	if fu.Stats().DrainCycles == 0 {
		t.Fatal("drain cycles not counted")
	}
	// Consumer drains the queue; the stack update may proceed.
	ufq.Pop()
	run(fu, 6)
	if fu.Stats().StackEvents != 1 {
		t.Fatal("stack update did not proceed after drain")
	}
	fu.Complete(0)
}

func TestFUStackWithoutStackValuesIsNoOp(t *testing.T) {
	fu, evq, _, md := newTestFU(NonBlocking)
	evq.Push(isa.Event{Kind: isa.EvStackCall, Addr: 0x8000, Size: 64, Seq: 0})
	run(fu, 5)
	if md.Mem.Load(0x8000) != 0 {
		t.Fatal("untracked stack update wrote metadata")
	}
	if fu.Stats().StackEvents != 1 {
		t.Fatal("stack event not consumed")
	}
}

func TestFUHighLevelBlocksUntilComplete(t *testing.T) {
	fu, evq, ufq, _ := newTestFU(NonBlocking)
	fu.Inv.Set(0, 0)
	fu.Table.Set(1, ccEntry(NBPropS1))

	evq.Push(isa.Event{Kind: isa.EvHighLevel, Op: isa.OpMalloc, Addr: 0x4000_0000, Size: 64, Seq: 0})
	evq.Push(loadEvent(1, 0x2000, 3, 1))
	run(fu, 8)
	if fu.Stats().HighLevelEvents != 1 {
		t.Fatal("high-level event not forwarded")
	}
	if fu.Stats().Filtered() != 0 {
		t.Fatal("FU filtered past an incomplete high-level event")
	}
	u, _ := ufq.Pop()
	if u.MDValid {
		t.Fatal("high-level event carries an operand snapshot")
	}
	fu.Complete(0)
	run(fu, 5)
	if fu.Stats().Filtered() != 1 {
		t.Fatal("FU did not resume after high-level completion")
	}
}

func TestFUUnprogrammedEventGoesToSoftware(t *testing.T) {
	fu, evq, ufq, _ := newTestFU(NonBlocking)
	evq.Push(loadEvent(99, 0x1000, 3, 0))
	run(fu, 3)
	u, ok := ufq.Pop()
	if !ok || u.HandlerPC != 0 {
		t.Fatalf("unprogrammed dispatch = %+v, %v", u, ok)
	}
	fu.Complete(0)
}

func TestFUEnqueueStallRetries(t *testing.T) {
	fu, evq, ufq, md := newTestFU(NonBlocking)
	fu.Inv.Set(0, 0)
	fu.Table.Set(1, ccEntry(NBPropS1))
	md.Mem.Store(0x1000, 1)

	// Fill the unfiltered queue.
	for i := 0; i < 16; i++ {
		ufq.Push(Unfiltered{Ev: isa.Event{Seq: uint64(100 + i)}})
	}
	evq.Push(loadEvent(1, 0x1000, 3, 0))
	run(fu, 5)
	if fu.Stats().UnfilteredSent != 0 {
		t.Fatal("event forwarded despite full queue")
	}
	if fu.Stats().EnqueueStalls == 0 {
		t.Fatal("enqueue stalls not counted")
	}
	ufq.Pop()
	run(fu, 3)
	if fu.Stats().UnfilteredSent != 1 {
		t.Fatal("event not forwarded after space freed")
	}
}

func TestFUMDCacheMissStall(t *testing.T) {
	md := metadata.NewState()
	evq := queue.NewBounded[isa.Event](32)
	ufq := queue.NewBounded[Unfiltered](16)
	fu := New(DefaultConfig(NonBlocking), md, evq, ufq, nil)
	fu.Inv.Set(0, 0)
	fu.Table.Set(1, ccEntry(NBPropS1))

	evq.Push(loadEvent(1, 0x1000, 3, 0))
	run(fu, 1) // pop + charge miss -> stall
	if fu.Stats().Filtered() != 0 {
		t.Fatal("event completed during MD-cache miss stall")
	}
	if fu.Stats().MDCacheStalls == 0 {
		t.Fatal("MD-cache stall not counted")
	}
	run(fu, 30)
	if fu.Stats().Filtered() != 1 {
		t.Fatal("event never completed after stall")
	}
	// A second access to the same block hits and completes quickly.
	evq.Push(loadEvent(1, 0x1004, 4, 1))
	run(fu, 2)
	if fu.Stats().Filtered() != 2 {
		t.Fatal("MD-cache hit event was slow")
	}
}

func TestFUDistanceAndBurstStats(t *testing.T) {
	fu, evq, ufq, md := newTestFU(NonBlocking)
	fu.Inv.Set(0, 0)
	fu.Table.Set(1, ccEntry(NBPropS1))
	md.Mem.Store(0x7000, 1) // unfilterable address

	seq := uint64(0)
	push := func(addr uint32) {
		// Distinct destination registers: the unfilterable events' MD
		// updates must not poison the filler loads' destinations.
		dest := isa.Reg(3)
		if addr == 0x7000 {
			dest = 9
		}
		evq.Push(loadEvent(1, addr, dest, seq))
		seq++
	}
	// 3 filterable, unfiltered, 2 filterable, unfiltered (distance 2 <= 16:
	// same burst), 20 filterable, unfiltered (distance 20: new burst).
	for i := 0; i < 3; i++ {
		push(0x100)
	}
	push(0x7000)
	for i := 0; i < 2; i++ {
		push(0x100)
	}
	push(0x7000)
	for i := 0; i < 20; i++ {
		push(0x100)
	}
	push(0x7000)
	run(fu, 80)
	for !ufq.Empty() {
		u, _ := ufq.Pop()
		fu.Complete(u.Ev.Seq)
	}
	fu.FlushBurst()

	st := fu.Stats()
	if st.UnfilteredSent != 3 {
		t.Fatalf("unfiltered sent = %d", st.UnfilteredSent)
	}
	dist := st.UnfilteredDistance
	if dist.Total() != 3 {
		t.Fatalf("distance samples = %d", dist.Total())
	}
	if dist.Maximum() != 20 {
		t.Fatalf("max distance = %d", dist.Maximum())
	}
	bursts := st.BurstSizes
	if bursts.Total() != 2 {
		t.Fatalf("burst count = %d (%v)", bursts.Total(), bursts)
	}
	if bursts.Maximum() != 2 {
		t.Fatalf("max burst = %d", bursts.Maximum())
	}
	_ = ufq
}

func TestFUFilterRatio(t *testing.T) {
	s := Stats{InstrEvents: 100, FilteredCC: 50, FilteredRU: 30, PartialShort: 10}
	if r := s.FilterRatio(); r != 0.9 {
		t.Fatalf("filter ratio = %v", r)
	}
	var empty Stats
	if empty.FilterRatio() != 0 {
		t.Fatal("empty ratio not 0")
	}
}

func TestFUBusy(t *testing.T) {
	fu, evq, _, md := newTestFU(Blocking)
	fu.Inv.Set(0, 0)
	fu.Table.Set(1, ccEntry(NBNone))
	if fu.Busy() {
		t.Fatal("fresh FU busy")
	}
	md.Mem.Store(0x1000, 1)
	evq.Push(loadEvent(1, 0x1000, 3, 0))
	run(fu, 30)
	if !fu.Busy() {
		t.Fatal("blocked FU not busy")
	}
	fu.Complete(0)
	run(fu, 2)
	if fu.Busy() {
		t.Fatal("idle FU busy")
	}
}

func TestFUModeAccessor(t *testing.T) {
	fu, _, _, _ := newTestFU(Blocking)
	if fu.Mode() != Blocking {
		t.Fatal("mode accessor wrong")
	}
}

func TestFUMalformedChainLoopTerminates(t *testing.T) {
	fu, evq, ufq, _ := newTestFU(NonBlocking)
	fu.Inv.Set(0, 0)
	// Entry 1 chains to itself with a check that never passes: the
	// visited bound must force the event to software instead of wedging
	// the accelerator.
	e := ccEntry(NBNone)
	e.S1.INVid = 1 // INV[1] unset (0) but metadata will be 1
	e.MS = true
	e.Next = 1
	fu.Inv.Set(1, 9) // never matches
	fu.Table.Set(1, e)

	evq.Push(loadEvent(1, 0x1000, 3, 0))
	run(fu, EventTableEntries*2+16)
	u, ok := ufq.Pop()
	if !ok {
		t.Fatal("looping chain wedged the accelerator")
	}
	fu.Complete(u.Ev.Seq)
	if fu.Stats().ChainCycles == 0 {
		t.Fatal("chain cycles not counted")
	}
}

func TestFUStackEventWhileSUUBusy(t *testing.T) {
	fu, evq, _, md := newTestFU(NonBlocking)
	fu.Inv.Set(0, 0)
	fu.Inv.Set(1, 5)
	fu.Inv.SetStack(1, 0)

	// Two back-to-back frames: the second must wait for the SUU.
	evq.Push(isa.Event{Kind: isa.EvStackCall, Addr: 0x8000, Size: 1024, Seq: 0})
	evq.Push(isa.Event{Kind: isa.EvStackCall, Addr: 0x9000, Size: 256, Seq: 1})
	run(fu, 40)
	if fu.Stats().StackEvents != 2 {
		t.Fatalf("stack events = %d", fu.Stats().StackEvents)
	}
	if md.Mem.Load(0x8000) != 5 || md.Mem.Load(0x9000) != 5 {
		t.Fatal("frames not both covered")
	}
}

func TestFUMTLBSharing(t *testing.T) {
	md := metadata.NewState()
	evq := queue.NewBounded[isa.Event](32)
	ufq := queue.NewBounded[Unfiltered](16)
	cfg := DefaultConfig(NonBlocking)
	cfg.MDMissLatency = 0 // isolate the M-TLB effect
	fu := New(cfg, md, evq, ufq, nil)
	fu.Inv.Set(0, 0)
	fu.Table.Set(1, ccEntry(NBPropS1))

	// Two addresses in the same 128KB slab: one translation suffices.
	evq.Push(loadEvent(1, 0x10000, 3, 0))
	evq.Push(loadEvent(1, 0x10800, 4, 1))
	run(fu, 60)
	if fu.MTLB().Misses() != 1 {
		t.Fatalf("M-TLB misses = %d, want 1 (same slab)", fu.MTLB().Misses())
	}
	// A distant address needs a new translation.
	evq.Push(loadEvent(1, 0x90000000, 5, 2))
	run(fu, 60)
	if fu.MTLB().Misses() != 2 {
		t.Fatalf("M-TLB misses = %d, want 2", fu.MTLB().Misses())
	}
}

func TestFURegisterOnlyEventsSkipMDCache(t *testing.T) {
	fu, evq, _, _ := newTestFU(NonBlocking)
	fu.Inv.Set(0, 0)
	alu := Entry{
		S1: OperandRule{Valid: true, MDBytes: 1, Mask: 0xFF, INVid: 0},
		S2: OperandRule{Valid: true, MDBytes: 1, Mask: 0xFF, INVid: 0},
		D:  OperandRule{Valid: true, MDBytes: 1, Mask: 0xFF, INVid: 0},
		CC: true,
	}
	fu.Table.Set(3, alu)
	for i := 0; i < 10; i++ {
		evq.Push(isa.Event{ID: 3, Kind: isa.EvInstr, Op: isa.OpALU,
			Src1: 1, Src2: 2, Dest: 3, Seq: uint64(i)})
	}
	run(fu, 20)
	if fu.Stats().Filtered() != 10 {
		t.Fatalf("filtered = %d", fu.Stats().Filtered())
	}
	if got := fu.MDCache().Hits() + fu.MDCache().Misses(); got != 0 {
		t.Fatalf("register-only events touched the MD cache %d times", got)
	}
}
