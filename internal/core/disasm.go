package core

import (
	"fmt"
	"strings"
)

// String renders an operand rule compactly, e.g. "mem[1B&ff~INV2]".
func (r OperandRule) String() string {
	if !r.Valid {
		return "-"
	}
	loc := "reg"
	if r.Mem {
		loc = "mem"
	}
	return fmt.Sprintf("%s[%dB&%02x~INV%d]", loc, r.MDBytes, r.Mask, r.INVid)
}

// String disassembles an event-table entry into a human-readable rule
// description — the debugging view of the 96-bit encoding of Fig. 6(b).
func (e Entry) String() string {
	var parts []string
	parts = append(parts, fmt.Sprintf("s1=%s s2=%s d=%s", e.S1, e.S2, e.D))
	if e.CC {
		parts = append(parts, "CC")
	}
	if e.RU != RUNone {
		parts = append(parts, "RU:"+e.RU.String())
	}
	if e.Partial {
		parts = append(parts, fmt.Sprintf("partial->%d", e.Next))
	} else if e.MS {
		parts = append(parts, fmt.Sprintf("ms->%d", e.Next))
	}
	if e.NB != NBNone {
		nb := "nb:" + e.NB.String()
		switch e.NB {
		case NBConst, NBCondConstOr, NBCondPropConst, NBCondDestProp:
			nb += fmt.Sprintf("(INV%d)", e.NBInv)
		}
		parts = append(parts, nb)
	}
	parts = append(parts, fmt.Sprintf("handler=%#x", e.HandlerPC))
	return strings.Join(parts, " ")
}

// Dump renders the programmed portion of an event table, one entry per
// line, for debugging monitor configurations.
func (t *EventTable) Dump() string {
	var b strings.Builder
	for id := 0; id < EventTableEntries; id++ {
		if !t.set[id] {
			continue
		}
		e, _ := t.Get(id)
		fmt.Fprintf(&b, "%3d: %s\n", id, e)
	}
	return b.String()
}
