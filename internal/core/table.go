package core

// The compiled filter decision table. filterCheck (filter.go) is the
// reference semantics of the Filter stage: per entry it re-reads operand
// rules, chases INV register indirections, and branches on CC/RU mode.
// That chained evaluation runs once per event on the accelerator's hot
// path — and multi-shot chains re-dispatch through it every cycle. Since
// the event table and INV RF only change on (rare) configuration writes,
// the unit instead compiles them into a flat array of decision rows, one
// per event-table entry, indexed by entry id: a Moore-style machine whose
// state is the row index, whose input is the operand metadata, and whose
// transitions are the precompiled chain continuations. A clean check
// becomes three mask/match compares against baked-in expected bytes (an
// invalid operand compiles to mask 0 == expected 0, which always passes,
// so the common case is branch-free); a redundant update becomes a
// compose-and-compare with precompiled masks; chained checks follow the
// row's next index without re-reading the table.
//
// Compilation is a pure software optimization of the simulator: every
// decision the row path takes is bit-identical to filterCheck on the live
// table (the property tests in table_test.go exercise the equivalence
// exhaustively), and the modeled timing — one cycle per chain hop, the
// metadata-read stalls — is unchanged.

// rowKind classifies a decision row's filtering condition.
type rowKind uint8

const (
	// rowUnprogrammed marks an entry never written: the event bypasses
	// the filter pipeline and goes to software raw.
	rowUnprogrammed rowKind = iota
	// rowClean filters via the clean check (masked compare against baked
	// INV values).
	rowClean
	// rowRedundant filters via the redundant-update check.
	rowRedundant
	// rowNever has no filtering condition (or no valid operand): the
	// check always fails and the event is forwarded.
	rowNever
)

// row is one compiled decision-table entry.
type row struct {
	kind rowKind

	// Clean check: ops.X & mask == want, per operand. Invalid operands
	// compile to mask 0 / want 0 (always true).
	s1Mask, s2Mask, dMask byte
	s1Want, s2Want, dWant byte

	// Redundant update: compose(ops) & ruDMask == ops.D & ruDMask.
	ru                 RUOp
	ruS1Mask, ruS2Mask byte
	ruDMask            byte

	// Chain continuation (the Moore transition on a failed check) and
	// partial-filtering dispatch.
	ms      bool
	next    uint8
	partial bool
	shortPC uint32 // HandlerPC of entry next, for partial dispatch

	// hasMem gates the metadata-read timing charge.
	hasMem bool

	// entry retains the decoded entry for the functional metadata read
	// and the MD update logic, which consult live state (FSQ, MD RF, INV
	// RF) and are not compiled.
	entry Entry
}

// filter evaluates the row's filtering condition — the compiled equivalent
// of filterCheck(entry, ops, inv).
func (r *row) filter(ops Operands) bool {
	switch r.kind {
	case rowClean:
		return ops.S1&r.s1Mask == r.s1Want &&
			ops.S2&r.s2Mask == r.s2Want &&
			ops.D&r.dMask == r.dWant
	case rowRedundant:
		var src byte
		switch r.ru {
		case RUOr:
			src = ops.S1&r.ruS1Mask | ops.S2&r.ruS2Mask
		case RUAnd:
			src = ops.S1 & r.ruS1Mask & (ops.S2 & r.ruS2Mask)
		default:
			src = ops.S1 & r.ruS1Mask
		}
		return src&r.ruDMask == ops.D&r.ruDMask
	default:
		return false
	}
}

// program is the compiled form of one (event table, INV RF) configuration,
// cached on the filtering unit and invalidated by generation counters.
type program struct {
	rows     [EventTableEntries]row
	tableGen uint64
	invGen   uint64
	valid    bool
}

// stale reports whether the cached program no longer matches the live
// configuration state.
func (p *program) stale(t *EventTable, inv *InvariantFile) bool {
	return !p.valid || p.tableGen != t.Gen() || p.invGen != inv.Gen()
}

// compile rebuilds every row from the live table and INV RF.
func (p *program) compile(t *EventTable, inv *InvariantFile) {
	for id := range p.rows {
		e, ok := t.Get(id)
		p.rows[id] = compileRow(e, ok, t, inv)
	}
	p.tableGen = t.Gen()
	p.invGen = inv.Gen()
	p.valid = true
}

// compileRow flattens one entry into its decision row.
func compileRow(e Entry, programmed bool, t *EventTable, inv *InvariantFile) row {
	if !programmed {
		return row{kind: rowUnprogrammed}
	}
	r := row{
		ms:      e.MS,
		next:    e.Next & (EventTableEntries - 1),
		partial: e.Partial,
		hasMem:  e.S1.Valid && e.S1.Mem || e.S2.Valid && e.S2.Mem || e.D.Valid && e.D.Mem,
		entry:   e,
	}
	if short, _ := t.Get(int(e.Next)); e.Partial {
		r.shortPC = short.HandlerPC
	}
	switch {
	case e.CC:
		if !e.S1.Valid && !e.S2.Valid && !e.D.Valid {
			// An entry with no valid operands filters nothing.
			r.kind = rowNever
			return r
		}
		r.kind = rowClean
		if e.S1.Valid {
			r.s1Mask = e.S1.Mask
			r.s1Want = inv.Get(e.S1.INVid) & e.S1.Mask
		}
		if e.S2.Valid {
			r.s2Mask = e.S2.Mask
			r.s2Want = inv.Get(e.S2.INVid) & e.S2.Mask
		}
		if e.D.Valid {
			r.dMask = e.D.Mask
			r.dWant = inv.Get(e.D.INVid) & e.D.Mask
		}
	case e.RU != RUNone:
		r.kind = rowRedundant
		r.ru = e.RU
		r.ruS1Mask = e.S1.Mask
		r.ruS2Mask = e.S2.Mask
		r.ruDMask = e.D.Mask
	default:
		r.kind = rowNever
	}
	return r
}
