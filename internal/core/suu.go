package core

import (
	"fade/internal/mem"
	"fade/internal/metadata"
)

// SUU is the Stack-Update Unit (Section 4.2): a finite state machine that
// takes a stack frame's starting address and length and sets the covered
// metadata block range to a predefined value from the INV RF — one value on
// function calls, another on returns. It issues one MD-cache block write
// per cycle.
type SUU struct {
	md      *metadata.Memory
	mdCache *mem.Cache

	// FSM state.
	active   bool
	nextAddr uint32 // next application address to cover
	endAddr  uint32 // one past the last application address
	value    byte

	busyCycles  uint64
	rangesTotal uint64
}

// NewSUU returns a stack-update unit writing through the given metadata
// memory and MD cache.
func NewSUU(md *metadata.Memory, mdCache *mem.Cache) *SUU {
	return &SUU{md: md, mdCache: mdCache}
}

// Start begins a bulk update covering the frame [base, base+size). It must
// not be called while the unit is busy.
func (s *SUU) Start(base, size uint32, value byte) {
	if s.active {
		panic("core: SUU started while busy")
	}
	if size == 0 {
		return
	}
	s.active = true
	s.nextAddr = base
	s.endAddr = base + size
	s.value = value
	s.rangesTotal++
}

// Busy reports whether a bulk update is in progress.
func (s *SUU) Busy() bool { return s.active }

// Tick advances the FSM by one cycle: one metadata cache block (64 B of
// metadata, covering 256 B of application stack) is written per cycle.
func (s *SUU) Tick() {
	if !s.active {
		return
	}
	s.busyCycles++
	blockApp := uint32(s.mdCache.BlockBytes()) * metadata.WordBytes
	// Cover up to the end of the current metadata block.
	blockEnd := (s.nextAddr/blockApp + 1) * blockApp
	end := s.endAddr
	if blockEnd < end {
		end = blockEnd
	}
	s.md.SetRange(s.nextAddr, end-s.nextAddr, s.value)
	s.mdCache.Access(metadata.MDAddr(s.nextAddr))
	s.nextAddr = end
	if s.nextAddr >= s.endAddr {
		s.active = false
	}
}

// BusyCycles returns the total cycles the unit has been active.
func (s *SUU) BusyCycles() uint64 { return s.busyCycles }

// Ranges returns the number of bulk updates performed.
func (s *SUU) Ranges() uint64 { return s.rangesTotal }
