package core

import "fmt"

// The event table and INV RF are memory-mapped and programmed on a
// per-application basis (Section 4.1). This file implements that interface:
// 32-bit stores into a fixed register window. The layout places each
// 96-bit event-table entry in four word slots (the fourth is reserved) and
// the INV RF behind them.
const (
	// MMIOBase is the base offset of the accelerator's register window.
	MMIOBase uint32 = 0x0
	// mmioEntryWords is the stride of one event-table entry in words.
	mmioEntryWords = 4
	// MMIOInvBase is the word offset of the INV RF.
	MMIOInvBase uint32 = EventTableEntries * mmioEntryWords
	// MMIOStackSel is the word offset of the stack-value selector: low
	// byte = call INV index, next byte = return INV index.
	MMIOStackSel uint32 = MMIOInvBase + InvRegs
	// MMIOWords is the total window size in words.
	MMIOWords = MMIOStackSel + 1
)

// MMIO provides word-granular programming access to a filtering unit's
// configuration state.
type MMIO struct {
	fu *FilteringUnit
}

// NewMMIO returns the register window of fu.
func NewMMIO(fu *FilteringUnit) *MMIO { return &MMIO{fu: fu} }

// Write32 stores a configuration word at the given word offset.
func (m *MMIO) Write32(wordOff uint32, v uint32) error {
	switch {
	case wordOff < MMIOInvBase:
		id := int(wordOff / mmioEntryWords)
		slot := wordOff % mmioEntryWords
		p := m.fu.Table.Raw(id)
		switch slot {
		case 0:
			p.Lo = p.Lo&^uint64(0xFFFF_FFFF) | uint64(v)
		case 1:
			p.Lo = p.Lo&(0xFFFF_FFFF) | uint64(v)<<32
		case 2:
			p.Hi = v
		case 3:
			return fmt.Errorf("core: reserved MMIO slot %d", wordOff)
		}
		m.fu.Table.SetRaw(id, p)
		return nil
	case wordOff < MMIOStackSel:
		return m.fu.Inv.Set(int(wordOff-MMIOInvBase), byte(v))
	case wordOff == MMIOStackSel:
		return m.fu.Inv.SetStack(int(v&0xFF), int(v>>8&0xFF))
	default:
		return fmt.Errorf("core: MMIO word offset %d out of range", wordOff)
	}
}

// Read32 loads a configuration word.
func (m *MMIO) Read32(wordOff uint32) (uint32, error) {
	switch {
	case wordOff < MMIOInvBase:
		id := int(wordOff / mmioEntryWords)
		p := m.fu.Table.Raw(id)
		switch wordOff % mmioEntryWords {
		case 0:
			return uint32(p.Lo), nil
		case 1:
			return uint32(p.Lo >> 32), nil
		case 2:
			return p.Hi, nil
		default:
			return 0, fmt.Errorf("core: reserved MMIO slot %d", wordOff)
		}
	case wordOff < MMIOStackSel:
		return uint32(m.fu.Inv.Get(uint8(wordOff - MMIOInvBase))), nil
	case wordOff == MMIOStackSel:
		call, ret, ok := m.fu.Inv.StackValues()
		if !ok {
			return 0, nil
		}
		_ = call
		_ = ret
		return uint32(m.fu.Inv.callIdx) | uint32(m.fu.Inv.retIdx)<<8, nil
	default:
		return 0, fmt.Errorf("core: MMIO word offset %d out of range", wordOff)
	}
}

// ProgramEntry writes entry id through the MMIO window (three word stores),
// exactly as the monitor's setup code would.
func (m *MMIO) ProgramEntry(id int, e Entry) error {
	if id < 0 || id >= EventTableEntries {
		return fmt.Errorf("core: event-table index %d out of range", id)
	}
	p := e.Pack()
	base := uint32(id * mmioEntryWords)
	if err := m.Write32(base, uint32(p.Lo)); err != nil {
		return err
	}
	if err := m.Write32(base+1, uint32(p.Lo>>32)); err != nil {
		return err
	}
	return m.Write32(base+2, p.Hi)
}

// Programmer is the configuration surface monitors use to install their
// filtering rules.
type Programmer interface {
	// SetEntry programs one event-table entry.
	SetEntry(id int, e Entry) error
	// SetInvariant programs one INV register.
	SetInvariant(id int, v byte) error
	// SetStackInvariants selects the INV registers holding the SUU's
	// call and return values.
	SetStackInvariants(callIdx, retIdx int) error
}

// direct implements Programmer straight against the structures.
type direct struct{ fu *FilteringUnit }

// ProgrammerFor returns a Programmer for fu.
func ProgrammerFor(fu *FilteringUnit) Programmer { return direct{fu} }

func (d direct) SetEntry(id int, e Entry) error    { return d.fu.Table.Set(id, e) }
func (d direct) SetInvariant(id int, v byte) error { return d.fu.Inv.Set(id, v) }
func (d direct) SetStackInvariants(c, r int) error { return d.fu.Inv.SetStack(c, r) }

// mmioProgrammer implements Programmer through the memory-mapped register
// window — the path a real monitor's setup code takes (32-bit stores into
// the accelerator's MMIO region).
type mmioProgrammer struct{ m *MMIO }

// MMIOProgrammer returns a Programmer that issues every configuration write
// through fu's MMIO window.
func MMIOProgrammer(fu *FilteringUnit) Programmer {
	return mmioProgrammer{m: NewMMIO(fu)}
}

func (p mmioProgrammer) SetEntry(id int, e Entry) error {
	return p.m.ProgramEntry(id, e)
}

func (p mmioProgrammer) SetInvariant(id int, v byte) error {
	if id < 0 || id >= InvRegs {
		return fmt.Errorf("core: INV register %d out of range", id)
	}
	return p.m.Write32(MMIOInvBase+uint32(id), uint32(v))
}

func (p mmioProgrammer) SetStackInvariants(callIdx, retIdx int) error {
	if callIdx < 0 || callIdx >= InvRegs || retIdx < 0 || retIdx >= InvRegs {
		return fmt.Errorf("core: stack INV indices (%d,%d) out of range", callIdx, retIdx)
	}
	return p.m.Write32(MMIOStackSel, uint32(callIdx)|uint32(retIdx)<<8)
}
