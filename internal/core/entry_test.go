package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleEntry() Entry {
	return Entry{
		S1: OperandRule{Valid: true, Mem: true, MDBytes: 1, Mask: 0xFF, INVid: 2},
		S2: OperandRule{Valid: true, MDBytes: 2, Mask: 0x80, INVid: 5},
		D:  OperandRule{Valid: true, MDBytes: 4, Mask: 0x7F, INVid: 1},
		CC: true, RU: RUOr, MS: true, Next: 0x5A, Partial: true,
		NB: NBCondConstOr, NBInv: 3, HandlerPC: 0xDEADBEEF,
	}
}

func TestEntryPackRoundTrip(t *testing.T) {
	e := sampleEntry()
	got := Unpack(e.Pack())
	if got != e {
		t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", e, got)
	}
}

func TestEntryPackFitsBits(t *testing.T) {
	// The 96-bit budget: Hi is a full 32-bit PC; Lo must not depend on
	// anything beyond bit 63 (trivially true) and all fields must survive.
	e := Entry{
		S1: OperandRule{Valid: true, Mem: true, MDBytes: 4, Mask: 0xFF, INVid: 7},
		S2: OperandRule{Valid: true, Mem: true, MDBytes: 4, Mask: 0xFF, INVid: 7},
		D:  OperandRule{Valid: true, Mem: true, MDBytes: 4, Mask: 0xFF, INVid: 7},
		CC: true, RU: RUAnd, MS: true, Next: 0x7F, Partial: true,
		NB: NBCondDestProp, NBInv: 7, HandlerPC: 0xFFFFFFFF,
	}
	if got := Unpack(e.Pack()); got != e {
		t.Fatalf("max-field entry did not survive: %+v", got)
	}
}

// canonical clamps randomly generated entries to representable field ranges.
func canonical(e Entry) Entry {
	clamp := func(r OperandRule) OperandRule {
		switch r.MDBytes {
		case 1, 2, 4:
		default:
			r.MDBytes = 1
		}
		r.INVid &= 7
		if !r.Valid {
			// Invalid operands carry no INV id in hardware; normalize.
		}
		return r
	}
	e.S1 = clamp(e.S1)
	e.S2 = clamp(e.S2)
	e.D = clamp(e.D)
	e.RU &= 3
	e.Next &= 0x7F
	if e.NB > NBCondDestProp {
		e.NB = NBNone
	}
	e.NBInv &= 7
	return e
}

func TestEntryPackRoundTripProperty(t *testing.T) {
	err := quick.Check(func(e Entry) bool {
		c := canonical(e)
		return Unpack(c.Pack()) == c
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMDBytesEncoding(t *testing.T) {
	for _, n := range []uint8{1, 2, 4} {
		if got := decodeMDBytes(encodeMDBytes(n)); got != n {
			t.Errorf("MDBytes %d -> %d", n, got)
		}
	}
	if decodeMDBytes(encodeMDBytes(3)) != 1 {
		t.Error("invalid MDBytes not normalized to 1")
	}
}

func TestEventTableSetGet(t *testing.T) {
	var tbl EventTable
	if _, ok := tbl.Get(5); ok {
		t.Fatal("unprogrammed entry reported as set")
	}
	e := sampleEntry()
	if err := tbl.Set(5, e); err != nil {
		t.Fatal(err)
	}
	got, ok := tbl.Get(5)
	if !ok || got != e {
		t.Fatalf("get = %+v, %v", got, ok)
	}
}

func TestEventTableBounds(t *testing.T) {
	var tbl EventTable
	if err := tbl.Set(-1, Entry{}); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := tbl.Set(EventTableEntries, Entry{}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, ok := tbl.Get(EventTableEntries); ok {
		t.Fatal("out-of-range get succeeded")
	}
}

func TestInvariantFile(t *testing.T) {
	var inv InvariantFile
	if err := inv.Set(3, 0xAB); err != nil {
		t.Fatal(err)
	}
	if inv.Get(3) != 0xAB {
		t.Fatal("invariant not stored")
	}
	if err := inv.Set(InvRegs, 0); err == nil {
		t.Fatal("out-of-range invariant accepted")
	}
	if err := inv.Set(-1, 0); err == nil {
		t.Fatal("negative invariant index accepted")
	}
}

func TestInvariantStackValues(t *testing.T) {
	var inv InvariantFile
	if _, _, ok := inv.StackValues(); ok {
		t.Fatal("stack values configured before SetStack")
	}
	inv.Set(1, 0x11)
	inv.Set(2, 0x22)
	if err := inv.SetStack(1, 2); err != nil {
		t.Fatal(err)
	}
	call, ret, ok := inv.StackValues()
	if !ok || call != 0x11 || ret != 0x22 {
		t.Fatalf("stack values = %#x,%#x,%v", call, ret, ok)
	}
	if err := inv.SetStack(9, 0); err == nil {
		t.Fatal("out-of-range stack index accepted")
	}
}

func TestEntryString(t *testing.T) {
	e := sampleEntry()
	s := e.String()
	for _, want := range []string{"CC", "RU:or", "partial->90", "nb:cond-const-or(INV3)", "handler=0xdeadbeef"} {
		if !contains(s, want) {
			t.Errorf("disassembly %q missing %q", s, want)
		}
	}
	if (Entry{}).String() == "" {
		t.Error("zero entry has empty disassembly")
	}
}

func TestEventTableDump(t *testing.T) {
	var tbl EventTable
	tbl.Set(3, sampleEntry())
	tbl.Set(7, Entry{CC: true, S1: allOp(0)})
	d := tbl.Dump()
	if !contains(d, "  3: ") || !contains(d, "  7: ") {
		t.Fatalf("dump missing entries:\n%s", d)
	}
	if contains(d, "  4: ") {
		t.Fatal("dump shows unprogrammed entry")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}
