package core

import "testing"

// FuzzEntryPack checks that any 96-bit pattern decodes to an entry that
// re-encodes to the same bits — the event table never corrupts rules no
// matter what software programs into it.
func FuzzEntryPack(f *testing.F) {
	f.Add(uint64(0), uint32(0))
	f.Add(^uint64(0), ^uint32(0))
	f.Add(sampleEntry().Pack().Lo, sampleEntry().Pack().Hi)
	f.Fuzz(func(t *testing.T, lo uint64, hi uint32) {
		e := Unpack(Packed{Lo: lo, Hi: hi})
		p2 := e.Pack()
		e2 := Unpack(p2)
		if e2 != e {
			t.Fatalf("decode(encode(decode(x))) != decode(x): %+v vs %+v", e, e2)
		}
		// Encoding is also stable: re-encoding yields identical bits.
		if p3 := e2.Pack(); p3 != p2 {
			t.Fatalf("encode not stable: %+v vs %+v", p2, p3)
		}
	})
}

// FuzzFilterCheck verifies filter logic is total: any entry/operand/INV
// combination evaluates without panicking and filtering is deterministic.
func FuzzFilterCheck(f *testing.F) {
	f.Add(uint64(0), uint32(0), byte(0), byte(0), byte(0), byte(0))
	f.Fuzz(func(t *testing.T, lo uint64, hi uint32, s1, s2, d, invVal byte) {
		e := Unpack(Packed{Lo: lo, Hi: hi})
		var inv InvariantFile
		for i := 0; i < InvRegs; i++ {
			inv.Set(i, invVal+byte(i))
		}
		ops := Operands{S1: s1, S2: s2, D: d}
		a := filterCheck(e, ops, &inv)
		b := filterCheck(e, ops, &inv)
		if a != b {
			t.Fatal("filter decision not deterministic")
		}
		v1, ok1 := mdUpdate(e, ops, &inv)
		v2, ok2 := mdUpdate(e, ops, &inv)
		if v1 != v2 || ok1 != ok2 {
			t.Fatal("MD update not deterministic")
		}
	})
}
