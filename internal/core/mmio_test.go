package core

import (
	"testing"
	"testing/quick"
)

func TestMMIOProgramEntryEqualsDirect(t *testing.T) {
	fuA, _, _, _ := newTestFU(NonBlocking)
	fuB, _, _, _ := newTestFU(NonBlocking)
	e := sampleEntry()

	if err := NewMMIO(fuA).ProgramEntry(7, e); err != nil {
		t.Fatal(err)
	}
	if err := fuB.Table.Set(7, e); err != nil {
		t.Fatal(err)
	}
	a, _ := fuA.Table.Get(7)
	b, _ := fuB.Table.Get(7)
	if a != b {
		t.Fatalf("MMIO programming diverged:\n  mmio   %+v\n  direct %+v", a, b)
	}
}

func TestMMIOReadBack(t *testing.T) {
	fu, _, _, _ := newTestFU(NonBlocking)
	m := NewMMIO(fu)
	e := sampleEntry()
	if err := m.ProgramEntry(3, e); err != nil {
		t.Fatal(err)
	}
	p := e.Pack()
	base := uint32(3 * mmioEntryWords)
	for slot, want := range []uint32{uint32(p.Lo), uint32(p.Lo >> 32), p.Hi} {
		got, err := m.Read32(base + uint32(slot))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("slot %d = %#x, want %#x", slot, got, want)
		}
	}
}

func TestMMIOInvariants(t *testing.T) {
	fu, _, _, _ := newTestFU(NonBlocking)
	m := NewMMIO(fu)
	if err := m.Write32(MMIOInvBase+2, 0x7F); err != nil {
		t.Fatal(err)
	}
	if fu.Inv.Get(2) != 0x7F {
		t.Fatalf("invariant = %#x", fu.Inv.Get(2))
	}
	v, err := m.Read32(MMIOInvBase + 2)
	if err != nil || v != 0x7F {
		t.Fatalf("read back = %#x, %v", v, err)
	}
}

func TestMMIOStackSelector(t *testing.T) {
	fu, _, _, _ := newTestFU(NonBlocking)
	m := NewMMIO(fu)
	m.Write32(MMIOInvBase+1, 0x11)
	m.Write32(MMIOInvBase+2, 0x22)
	if err := m.Write32(MMIOStackSel, 1|2<<8); err != nil {
		t.Fatal(err)
	}
	call, ret, ok := fu.Inv.StackValues()
	if !ok || call != 0x11 || ret != 0x22 {
		t.Fatalf("stack values via MMIO = %#x,%#x,%v", call, ret, ok)
	}
	sel, err := m.Read32(MMIOStackSel)
	if err != nil || sel != 1|2<<8 {
		t.Fatalf("selector read back = %#x, %v", sel, err)
	}
}

func TestMMIOErrors(t *testing.T) {
	fu, _, _, _ := newTestFU(NonBlocking)
	m := NewMMIO(fu)
	if err := m.Write32(3, 0); err == nil { // reserved slot of entry 0
		t.Fatal("reserved slot write accepted")
	}
	if err := m.Write32(MMIOWords, 0); err == nil {
		t.Fatal("out-of-window write accepted")
	}
	if _, err := m.Read32(MMIOWords); err == nil {
		t.Fatal("out-of-window read accepted")
	}
	if err := m.ProgramEntry(-1, Entry{}); err == nil {
		t.Fatal("negative entry accepted")
	}
	if err := m.ProgramEntry(EventTableEntries, Entry{}); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
}

func TestMMIORoundTripProperty(t *testing.T) {
	fu, _, _, _ := newTestFU(NonBlocking)
	m := NewMMIO(fu)
	err := quick.Check(func(raw Entry, id8 uint8) bool {
		id := int(id8) % EventTableEntries
		e := canonical(raw)
		if err := m.ProgramEntry(id, e); err != nil {
			return false
		}
		got, ok := fu.Table.Get(id)
		return ok && got == e
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProgrammerFor(t *testing.T) {
	fu, _, _, _ := newTestFU(NonBlocking)
	p := ProgrammerFor(fu)
	if err := p.SetEntry(1, sampleEntry()); err != nil {
		t.Fatal(err)
	}
	if err := p.SetInvariant(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.SetStackInvariants(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := fu.Table.Get(1); !ok {
		t.Fatal("programmer did not write the table")
	}
	if fu.Inv.Get(1) != 5 {
		t.Fatal("programmer did not write the INV RF")
	}
}
