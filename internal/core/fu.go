package core

import (
	"fade/internal/isa"
	"fade/internal/mem"
	"fade/internal/metadata"
	"fade/internal/obs"
	"fade/internal/queue"
	"fade/internal/stats"
)

// Mode selects between the baseline accelerator, which stalls filtering
// whenever software processes an event (Section 4), and Non-Blocking FADE
// (Section 5).
type Mode int

const (
	// Blocking is baseline FADE: the filtering unit stalls on every event
	// that requires software until its handler completes.
	Blocking Mode = iota
	// NonBlocking is FADE with the Metadata Write stage, MD update logic,
	// and filter store queue: filtering continues past unfiltered events.
	NonBlocking
)

func (m Mode) String() string {
	if m == NonBlocking {
		return "non-blocking"
	}
	return "blocking"
}

// Unfiltered is an event the accelerator hands to the software monitor.
// For instruction events it carries the operand metadata read in the
// Metadata Read stage: the handler must base its decisions on these values,
// because by the time it runs, a non-blocking accelerator may already have
// applied critical-metadata updates for younger events.
type Unfiltered struct {
	Ev        isa.Event
	HandlerPC uint32
	// Short marks a partially filtered event: the hardware check
	// succeeded and only the short handler runs (Section 4.1).
	Short bool
	// MD is the operand metadata snapshot (valid for instruction events).
	MD      Operands
	MDValid bool
}

// Config parameterizes a filtering unit. Zero values select the paper's
// configuration via DefaultConfig.
type Config struct {
	Mode        Mode
	MDCache     mem.CacheConfig
	MTLBEntries int
	// MDMissLatency is the *effective* added stall when an MD cache
	// access misses. The L2 round trip is 10 cycles (Table 1), but the
	// four-stage filtering pipeline overlaps a miss with the in-flight
	// stages and the event queue keeps the front end fed, so only the
	// unoverlapped tail stalls the accelerator.
	MDMissLatency int
	// MTLBMissPenalty is the software M-TLB miss service cost.
	MTLBMissPenalty int
	// UnfilteredBurstGap is the maximum number of filterable events
	// between two unfiltered events for them to belong to one burst
	// (16, Section 3.4).
	UnfilteredBurstGap int
	// BlockingSignalLatency is the completion-notification round trip a
	// *blocking* accelerator pays per software-processed event: the
	// monitor core signals handler completion through a memory-mapped
	// doorbell that the stalled accelerator observes cycles later.
	// Non-blocking FADE never waits, so it never pays this.
	BlockingSignalLatency int
}

// DefaultConfig returns the Section 6 configuration.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:                  mode,
		MDCache:               mem.MDCacheConfig,
		MTLBEntries:           mem.MTLBEntries,
		MDMissLatency:         4,
		MTLBMissPenalty:       mem.MTLBMissPenalty,
		UnfilteredBurstGap:    16,
		BlockingSignalLatency: 14,
	}
}

// Stats aggregates the filtering unit's counters.
type Stats struct {
	InstrEvents     uint64 // instruction events processed
	StackEvents     uint64 // stack-update events processed
	HighLevelEvents uint64 // high-level events forwarded

	FilteredCC     uint64 // filtered by clean check
	FilteredRU     uint64 // filtered by redundant update
	PartialShort   uint64 // partial filtering: hardware check passed
	UnfilteredSent uint64 // events sent to software (incl. partial)

	ChainCycles   uint64 // extra cycles spent on multi-shot chains
	MDCacheStalls uint64 // cycles stalled on MD cache misses
	MTLBStalls    uint64 // cycles stalled on M-TLB software service
	BlockedCycles uint64 // cycles stalled waiting for handler completion
	DrainCycles   uint64 // cycles waiting for unfiltered-queue drain
	SUUCycles     uint64 // cycles the SUU occupied the accelerator
	EnqueueStalls uint64 // cycles stalled on a full unfiltered queue
	FSQStalls     uint64 // cycles stalled on a full FSQ
	IdleCycles    uint64 // cycles with no event available
	BusyCycles    uint64 // cycles doing useful filtering work
	NBRegWrites   uint64 // critical register metadata writes by MD update logic
	NBMemWrites   uint64 // critical memory metadata writes into the FSQ

	// UnfilteredDistance is the distribution of distances (in monitored
	// events) between consecutive software-bound events (Fig. 4b).
	UnfilteredDistance *stats.Histogram
	// BurstSizes is the distribution of unfiltered burst sizes (Fig. 4c).
	BurstSizes *stats.Histogram
}

// Filtered returns the number of instruction events fully handled in
// hardware.
func (s *Stats) Filtered() uint64 { return s.FilteredCC + s.FilteredRU }

// FilterRatio returns the fraction of instruction event handlers elided by
// the accelerator — Table 2's filtering efficiency. Partially filtered
// events count: their (complex) handler was elided even though a short
// handler still runs.
func (s *Stats) FilterRatio() float64 {
	return stats.Ratio(s.Filtered()+s.PartialShort, s.InstrEvents)
}

// FilteringUnit is the FADE accelerator: event table, INV RF, filter logic,
// MD cache + M-TLB, Stack-Update Unit, and — in non-blocking mode — the MD
// update logic and filter store queue. It consumes the event queue and
// produces into the unfiltered event queue.
type FilteringUnit struct {
	cfg   Config
	Table EventTable
	Inv   InvariantFile

	md      *metadata.State
	mdCache *mem.Cache
	mtlb    *mem.TLB
	l2      *mem.Cache // shared L2 backing the MD cache; may be nil
	fsq     FSQ
	suu     *SUU

	evq *queue.Bounded[isa.Event]
	ufq *queue.Bounded[Unfiltered]

	// Execution state. cur points into curBuf while an event occupies the
	// accelerator (nil otherwise): reusing the one buffer keeps the
	// per-event path allocation-free instead of heap-allocating an
	// inflight record for every event popped from the queue.
	stall       int
	cur         *inflight
	curBuf      inflight
	waiting     bool
	waitSeq     uint64
	outstanding int // unfiltered events issued but not yet completed

	// Burst tracking.
	sinceUnfiltered int
	burstLen        int

	// prog is the compiled decision table (table.go): the event table and
	// INV RF flattened into per-entry rows, rebuilt lazily whenever either
	// store's generation counter moves.
	prog program

	st Stats
}

// inflight is the event currently occupying the accelerator.
type inflight struct {
	ev      isa.Event
	entryID uint8
	visited int // chain hops taken, to bound malformed chains
	// Metadata read state.
	readCharged bool
	ops         Operands
	destMDAddr  uint32
	destIsMem   bool
}

// New creates a filtering unit over the given metadata state and queues.
// l2 may be nil, in which case MD cache misses cost cfg.MDMissLatency flat.
func New(cfg Config, md *metadata.State, evq *queue.Bounded[isa.Event], ufq *queue.Bounded[Unfiltered], l2 *mem.Cache) *FilteringUnit {
	if cfg.MDCache.SizeBytes == 0 {
		cfg = DefaultConfig(cfg.Mode)
	}
	fu := &FilteringUnit{
		cfg:     cfg,
		md:      md,
		mdCache: mem.NewCache(cfg.MDCache),
		mtlb:    mem.NewTLB(cfg.MTLBEntries),
		l2:      l2,
		evq:     evq,
		ufq:     ufq,
	}
	fu.suu = NewSUU(md.Mem, fu.mdCache)
	fu.st.UnfilteredDistance = stats.NewHistogram()
	fu.st.BurstSizes = stats.NewHistogram()
	return fu
}

// Stats returns the accumulated counters.
func (fu *FilteringUnit) Stats() *Stats { return &fu.st }

// MDCache exposes the metadata cache (for experiment reporting).
func (fu *FilteringUnit) MDCache() *mem.Cache { return fu.mdCache }

// MTLB exposes the metadata TLB.
func (fu *FilteringUnit) MTLB() *mem.TLB { return fu.mtlb }

// Outstanding returns the number of unfiltered events not yet completed.
func (fu *FilteringUnit) Outstanding() int { return fu.outstanding }

// UFQ exposes the unfiltered event queue for system-level wiring: the fault
// injector throttles its effective capacity and the invariant checker reads
// its occupancy.
func (fu *FilteringUnit) UFQ() *queue.Bounded[Unfiltered] { return fu.ufq }

// Complete signals that the software handler for the unfiltered event with
// the given sequence number has finished: its FSQ entries are discarded and
// a blocked accelerator resumes (Section 5.2).
func (fu *FilteringUnit) Complete(seq uint64) {
	fu.outstanding--
	fu.fsq.Complete(seq)
	if fu.waiting && fu.waitSeq == seq {
		fu.waiting = false
		fu.stall += fu.cfg.BlockingSignalLatency
	}
}

// Tick advances the accelerator by one cycle.
func (fu *FilteringUnit) Tick(cycle uint64) {
	fu.ufq.SampleOccupancy()
	switch {
	case fu.suu.Busy():
		// The SUU occupies the accelerator; filtering is stopped while
		// stack-frame metadata is set (Section 5.2).
		fu.suu.Tick()
		fu.st.SUUCycles++
	case fu.stall > 0:
		fu.stall--
	case fu.waiting:
		fu.st.BlockedCycles++
	default:
		fu.step()
	}
}

// quietForever mirrors sim.QuietForever structurally (the core package
// implements sim's quiescence contracts without importing the kernel).
const quietForever = ^uint64(0)

// QuietTicks implements sim.UnitSleeper. The accelerator is quiescent
// while it counts down a metadata-read stall, while it is blocked waiting
// for a software handler to complete (the wake is the monitor core's
// Complete call — an external act), and while it is idle on an empty event
// queue. SUU activity and any cycle that pops, filters, or forwards an
// event executes exactly.
func (fu *FilteringUnit) QuietTicks() uint64 {
	switch {
	case fu.suu.Busy():
		return 0
	case fu.stall > 0:
		return uint64(fu.stall)
	case fu.waiting:
		return quietForever
	case fu.cur == nil && fu.evq.Empty():
		return quietForever
	default:
		return 0
	}
}

// SkipTicks implements sim.UnitSleeper. Every tick — quiet or not —
// samples the unfiltered queue's occupancy, so the bulk path replays those
// samples (the occupancy is frozen across a quiescent span) alongside the
// stall/blocked/idle accounting.
func (fu *FilteringUnit) SkipTicks(n uint64) {
	if n == 0 {
		return
	}
	fu.ufq.SampleOccupancyN(n)
	switch {
	case fu.stall > 0:
		fu.stall -= int(n)
	case fu.waiting:
		fu.st.BlockedCycles += n
	default:
		fu.st.IdleCycles += n
	}
}

// step performs one cycle of event processing.
func (fu *FilteringUnit) step() {
	if fu.cur == nil {
		ev, ok := fu.evq.Pop()
		if !ok {
			fu.st.IdleCycles++
			return
		}
		fu.curBuf = inflight{ev: ev, entryID: ev.ID}
		fu.cur = &fu.curBuf
	}
	fu.st.BusyCycles++

	switch fu.cur.ev.Kind {
	case isa.EvStackCall, isa.EvStackRet:
		fu.stepStack()
	case isa.EvHighLevel:
		fu.stepHighLevel()
	default:
		fu.stepInstr()
	}
}

// stepStack handles a stack-update event: wait for the unfiltered event
// queue to drain (pending events may reference frame metadata; Section
// 5.2), then hand the frame range to the SUU. Events already dispatched to
// the consumer have performed their metadata reads, so only queued events
// gate the stack update.
func (fu *FilteringUnit) stepStack() {
	if !fu.ufq.Empty() {
		fu.st.DrainCycles++
		return
	}
	ev := fu.cur.ev
	callV, retV, ok := fu.Inv.StackValues()
	if !ok {
		// The monitor does not track stack state; nothing to do.
		fu.finishEvent(false)
		fu.st.StackEvents++
		return
	}
	v := callV
	if ev.Kind == isa.EvStackRet {
		v = retV
	}
	fu.suu.Start(ev.Addr, ev.Size, v)
	fu.st.StackEvents++
	fu.finishEvent(false)
}

// stepHighLevel forwards a high-level event (malloc/free/taint source) to
// software. Its handler performs bulk metadata updates that cannot ride the
// FSQ, so the accelerator waits for queue drain before issuing it and for
// handler completion before resuming — in both modes.
func (fu *FilteringUnit) stepHighLevel() {
	if fu.outstanding > 0 {
		fu.st.DrainCycles++
		return
	}
	if !fu.ufq.Push(Unfiltered{Ev: fu.cur.ev}) {
		fu.st.EnqueueStalls++
		return
	}
	fu.outstanding++
	fu.st.HighLevelEvents++
	fu.st.UnfilteredSent++
	fu.noteUnfiltered()
	fu.waiting = true
	fu.waitSeq = fu.cur.ev.Seq
	fu.cur = nil
}

// row returns the compiled decision row for entry id, recompiling the
// program first if the event table or INV RF changed since the last build.
func (fu *FilteringUnit) row(id uint8) *row {
	if fu.prog.stale(&fu.Table, &fu.Inv) {
		fu.prog.compile(&fu.Table, &fu.Inv)
	}
	return &fu.prog.rows[id&(EventTableEntries-1)]
}

// stepInstr runs the filtering pipeline for an instruction event: Event
// Table Read, Control, Metadata Read (with MD cache and M-TLB timing),
// Filter, and — for unfilterable events in non-blocking mode — Metadata
// Write. The Event Table Read + Control + Filter stages walk the compiled
// decision table (table.go) instead of re-decoding the entry and
// re-dispatching through filterCheck; the modeled timing is identical.
func (fu *FilteringUnit) stepInstr() {
	cur := fu.cur
	r := fu.row(cur.entryID)
	if r.kind == rowUnprogrammed {
		// Unprogrammed event: everything goes to software, with no
		// metadata-read cost model (the monitor sees the raw event).
		fu.sendToSoftware(Unfiltered{Ev: cur.ev}, Entry{}, false)
		return
	}

	if !cur.readCharged {
		cur.readCharged = true
		if r.hasMem {
			if stallCycles := fu.chargeMetadataRead(cur); stallCycles > 0 {
				fu.stall = stallCycles
				return
			}
		}
	}
	fu.readOperands(cur, r.entry)

	if r.filter(cur.ops) {
		if r.partial {
			// Hardware check passed: dispatch the short handler found
			// via the Next pointer. Critical metadata is unchanged, so
			// filtering may continue even in blocking mode once the
			// event is enqueued.
			fu.enqueuePartial(Unfiltered{
				Ev: cur.ev, HandlerPC: r.shortPC, Short: true,
				MD: cur.ops, MDValid: true,
			})
			return
		}
		if r.kind == rowClean {
			fu.st.FilteredCC++
		} else {
			fu.st.FilteredRU++
		}
		fu.st.InstrEvents++
		fu.finishEvent(true)
		return
	}

	// Check failed. Multi-shot chains try the next entry next cycle.
	if r.ms && cur.visited < EventTableEntries {
		cur.visited++
		cur.entryID = r.next
		fu.st.ChainCycles++
		return
	}

	fu.sendToSoftware(Unfiltered{
		Ev: cur.ev, HandlerPC: r.entry.HandlerPC, MD: cur.ops, MDValid: true,
	}, r.entry, true)
}

// chargeMetadataRead models the Metadata Read stage's MD cache and M-TLB
// timing for the event's memory operands (the caller gates on the row's
// precompiled has-memory-operand bit). It returns extra stall cycles.
func (fu *FilteringUnit) chargeMetadataRead(cur *inflight) int {
	// All memory operands of an event share one address (the event
	// carries a single application address, Fig. 6a).
	extra := 0
	if !fu.mtlb.Lookup(metadata.MTLBSlab(cur.ev.Addr)) {
		extra += fu.cfg.MTLBMissPenalty
		fu.st.MTLBStalls += uint64(fu.cfg.MTLBMissPenalty)
	}
	if !fu.mdCache.Access(metadata.MDAddr(cur.ev.Addr)) {
		miss := fu.cfg.MDMissLatency
		if fu.l2 != nil && !fu.l2.Access(metadata.MDAddr(cur.ev.Addr)) {
			// Metadata absent even from the shared L2: the DRAM tail
			// cannot be hidden.
			miss += mem.DRAMLatency / 2
		}
		extra += miss
		fu.st.MDCacheStalls += uint64(miss)
	}
	return extra
}

// readOperands performs the functional Metadata Read: register operands
// from the MD RF, memory operands from the FSQ (newest pending update) or
// the metadata memory.
func (fu *FilteringUnit) readOperands(cur *inflight, e Entry) {
	ev := cur.ev
	read := func(r OperandRule, reg isa.Reg) byte {
		if !r.Valid {
			return 0
		}
		if r.Mem {
			if v, hit := fu.fsq.Lookup(metadata.MDAddr(ev.Addr)); hit {
				return v
			}
			return fu.md.Mem.Load(ev.Addr)
		}
		return fu.md.Regs.Load(reg)
	}
	cur.ops = Operands{
		S1: read(e.S1, ev.Src1),
		S2: read(e.S2, ev.Src2),
		D:  read(e.D, ev.Dest),
	}
	cur.destIsMem = e.D.Valid && e.D.Mem
	cur.destMDAddr = metadata.MDAddr(ev.Addr)
}

// enqueuePartial pushes a partially filtered event; on success the
// accelerator moves on immediately (no critical-metadata change).
func (fu *FilteringUnit) enqueuePartial(u Unfiltered) {
	if !fu.ufq.Push(u) {
		fu.st.EnqueueStalls++
		return // head-of-line stall; retry next cycle
	}
	fu.outstanding++
	fu.st.PartialShort++
	fu.st.InstrEvents++
	fu.st.UnfilteredSent++
	// Partially filtered events count as filterable for the burst and
	// distance statistics: the hardware check succeeded and the expensive
	// handler was elided (Fig. 4 measures truly unfilterable activity).
	fu.sinceUnfiltered++
	if fu.cfg.Mode == Blocking {
		fu.waiting = true
		fu.waitSeq = u.Ev.Seq
	}
	fu.cur = nil
}

// sendToSoftware pushes an unfiltered instruction event, applying the MD
// update logic in non-blocking mode (Metadata Write stage).
func (fu *FilteringUnit) sendToSoftware(u Unfiltered, e Entry, counted bool) {
	if fu.ufq.Full() {
		fu.st.EnqueueStalls++
		return // retry next cycle
	}
	// Compute the critical-metadata update before enqueueing so FSQ
	// capacity can veto the whole step atomically.
	if fu.cfg.Mode == NonBlocking {
		if v, ok := mdUpdate(e, fu.cur.ops, &fu.Inv); ok {
			if fu.cur.destIsMem {
				if !fu.fsq.Insert(fu.cur.destMDAddr, v, u.Ev.Seq) {
					fu.st.FSQStalls++
					return // FSQ full; retry next cycle
				}
				fu.st.NBMemWrites++
			} else if u.Ev.Dest != isa.RegNone {
				fu.md.Regs.Store(u.Ev.Dest, v)
				fu.st.NBRegWrites++
			}
		}
	}
	if !fu.ufq.Push(u) {
		panic("core: unfiltered queue rejected push after Full check")
	}
	fu.outstanding++
	if counted {
		fu.st.InstrEvents++
	}
	fu.st.UnfilteredSent++
	fu.noteUnfiltered()
	if fu.cfg.Mode == Blocking {
		fu.waiting = true
		fu.waitSeq = u.Ev.Seq
	}
	fu.cur = nil
}

// finishEvent retires the current event without software involvement.
func (fu *FilteringUnit) finishEvent(filterable bool) {
	if filterable {
		fu.sinceUnfiltered++
	}
	fu.cur = nil
}

// noteUnfiltered updates the inter-unfiltered distance and burst stats.
func (fu *FilteringUnit) noteUnfiltered() {
	fu.st.UnfilteredDistance.Add(fu.sinceUnfiltered)
	if fu.burstLen > 0 && fu.sinceUnfiltered > fu.cfg.UnfilteredBurstGap {
		fu.st.BurstSizes.Add(fu.burstLen)
		fu.burstLen = 0
	}
	fu.burstLen++
	fu.sinceUnfiltered = 0
}

// FlushBurst closes the in-progress unfiltered burst (called at end of
// simulation so the last burst is recorded).
func (fu *FilteringUnit) FlushBurst() {
	if fu.burstLen > 0 {
		fu.st.BurstSizes.Add(fu.burstLen)
		fu.burstLen = 0
	}
}

// Busy reports whether the accelerator holds in-flight work (used by
// drain-to-completion logic at simulation end).
func (fu *FilteringUnit) Busy() bool {
	return fu.cur != nil || fu.suu.Busy() || fu.stall > 0 || fu.waiting
}

// SUUnit exposes the stack-update unit for reporting.
func (fu *FilteringUnit) SUUnit() *SUU { return fu.suu }

// CollectMetrics exposes the accelerator's counters under the "fu." name
// space (see docs/METRICS.md). It implements obs.Collector; the per-event
// hot path above keeps incrementing plain Stats fields and this pull
// happens only at snapshot points.
func (fu *FilteringUnit) CollectMetrics(s obs.Sink) {
	fu.MetricsCollector("fu", "fsq", "queue.ufq").CollectMetrics(s)
}

// MetricsCollector returns a collector emitting the accelerator's counters
// under the given prefixes for the unit itself, its filter store queue, and
// its unfiltered event queue ("fu"/"fsq"/"queue.ufq" for a single-core
// system; "fu.3"/"fsq.3"/"queue.ufq.3" for core 3 of a CMP).
func (fu *FilteringUnit) MetricsCollector(prefix, fsqPrefix, ufqPrefix string) obs.Collector {
	return obs.CollectorFunc(func(s obs.Sink) {
		st := &fu.st
		s.Counter(prefix+".events.instr", st.InstrEvents)
		s.Counter(prefix+".events.stack", st.StackEvents)
		s.Counter(prefix+".events.high_level", st.HighLevelEvents)
		s.Counter(prefix+".filtered.clean_check", st.FilteredCC)
		s.Counter(prefix+".filtered.redundant_update", st.FilteredRU)
		s.Counter(prefix+".filtered.partial_short", st.PartialShort)
		s.Counter(prefix+".unfiltered.sent", st.UnfilteredSent)
		s.Gauge(prefix+".filter_ratio", st.FilterRatio())
		s.Counter(prefix+".cycles.busy", st.BusyCycles)
		s.Counter(prefix+".cycles.idle", st.IdleCycles)
		s.Counter(prefix+".cycles.chain", st.ChainCycles)
		s.Counter(prefix+".cycles.suu", st.SUUCycles)
		s.Counter(prefix+".stall.mdcache", st.MDCacheStalls)
		s.Counter(prefix+".stall.mtlb", st.MTLBStalls)
		s.Counter(prefix+".stall.blocked", st.BlockedCycles)
		s.Counter(prefix+".stall.drain", st.DrainCycles)
		s.Counter(prefix+".stall.enqueue", st.EnqueueStalls)
		s.Counter(prefix+".stall.fsq", st.FSQStalls)
		s.Counter(prefix+".nb.reg_writes", st.NBRegWrites)
		s.Counter(prefix+".nb.mem_writes", st.NBMemWrites)
		s.Histogram(prefix+".unfiltered_distance", st.UnfilteredDistance)
		s.Histogram(prefix+".burst_size", st.BurstSizes)
		s.Gauge(fsqPrefix+".occupancy", float64(fu.fsq.Len()))
		fu.mdCache.MetricsCollector(prefix + ".mdcache").CollectMetrics(s)
		fu.mtlb.MetricsCollector(prefix + ".mtlb").CollectMetrics(s)
		// The unfiltered event queue is owned by the accelerator, which
		// produces into it; its consumer-side counters ride along here.
		fu.ufq.MetricsCollector(ufqPrefix).CollectMetrics(s)
	})
}

// Mode returns the configured filtering mode.
func (fu *FilteringUnit) Mode() Mode { return fu.cfg.Mode }
