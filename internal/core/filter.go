package core

// Operands carries the metadata values read for an event in the Metadata
// Read stage: up to three operand metadata bytes (s1, s2, d), each
// accompanied by its operand rule from the event-table entry.
type Operands struct {
	S1, S2, D byte
}

// filterCheck evaluates one event-table entry's filtering condition against
// the operand metadata — the Filter stage's combinational logic (Fig. 7).
// The three comparison blocks (f1, f2, f3) each compare one operand to an
// invariant (clean check) or the composed source metadata to the
// destination metadata (redundant update).
//
// It returns true when the filtering condition is satisfied.
func filterCheck(e Entry, ops Operands, inv *InvariantFile) bool {
	if e.CC {
		return cleanCheck(e, ops, inv)
	}
	if e.RU != RUNone {
		return redundantUpdate(e, ops)
	}
	return false
}

// cleanCheck compares every valid operand's masked metadata to its INV
// register. The most complex single-shot condition compares each of the
// three operands to a different invariant in one cycle (Section 4.1).
func cleanCheck(e Entry, ops Operands, inv *InvariantFile) bool {
	if e.S1.Valid && ops.S1&e.S1.Mask != inv.Get(e.S1.INVid)&e.S1.Mask {
		return false
	}
	if e.S2.Valid && ops.S2&e.S2.Mask != inv.Get(e.S2.INVid)&e.S2.Mask {
		return false
	}
	if e.D.Valid && ops.D&e.D.Mask != inv.Get(e.D.INVid)&e.D.Mask {
		return false
	}
	// An entry with no valid operands filters nothing.
	return e.S1.Valid || e.S2.Valid || e.D.Valid
}

// redundantUpdate compares the (possibly composed) source metadata to the
// destination metadata; equal means the handler would leave the metadata
// unchanged and the event is filterable.
func redundantUpdate(e Entry, ops Operands) bool {
	src := composeRU(e, ops)
	return src&e.D.Mask == ops.D&e.D.Mask
}

// composeRU produces the new destination metadata value implied by the
// event: the single source, or the OR/AND of the two sources.
func composeRU(e Entry, ops Operands) byte {
	switch e.RU {
	case RUOr:
		return (ops.S1 & e.S1.Mask) | (ops.S2 & e.S2.Mask)
	case RUAnd:
		return (ops.S1 & e.S1.Mask) & (ops.S2 & e.S2.Mask)
	default:
		return ops.S1 & e.S1.Mask
	}
}

// mdUpdate computes the new critical-metadata value for an unfilterable
// event — the MD update logic of Non-Blocking FADE (Section 5.2). The
// result is written to the MD RF (register destination) or the FSQ (memory
// destination) in the Metadata Write stage, and is discarded when the
// filtering condition evaluated true.
//
// ok is false when the entry has no update rule (NBNone), in which case the
// destination metadata is left untouched and — in non-blocking mode — any
// dependent event will read the pre-handler value. Monitors must therefore
// program a rule for every event whose handler changes critical metadata.
func mdUpdate(e Entry, ops Operands, inv *InvariantFile) (v byte, ok bool) {
	switch e.NB {
	case NBPropS1:
		return ops.S1 & e.S1.Mask, true
	case NBPropS2:
		return ops.S2 & e.S2.Mask, true
	case NBOr:
		return (ops.S1 & e.S1.Mask) | (ops.S2 & e.S2.Mask), true
	case NBAnd:
		return (ops.S1 & e.S1.Mask) & (ops.S2 & e.S2.Mask), true
	case NBConst:
		return inv.Get(e.NBInv), true
	case NBCondConstOr:
		if ops.S1&e.S1.Mask == ops.S2&e.S2.Mask {
			return inv.Get(e.NBInv), true
		}
		return (ops.S1 & e.S1.Mask) | (ops.S2 & e.S2.Mask), true
	case NBCondPropConst:
		if ops.S1&e.S1.Mask == inv.Get(e.NBInv) {
			return ops.S1 & e.S1.Mask, true
		}
		return inv.Get(e.NBInv), true
	case NBCondDestProp:
		if ops.D&e.D.Mask == inv.Get(e.NBInv)&e.D.Mask {
			return ops.D, true // unchanged
		}
		return ops.S1 & e.S1.Mask, true
	default:
		return 0, false
	}
}
