package core

import "fmt"

// Event-table geometry (Section 6): 128 entries of 96 bits each, covering
// the heavily used subset of the modeled ISA.
const (
	EventTableEntries = 128
	EntryBits         = 96
)

// InvRegs is the number of invariant registers in the INV RF. Entry fields
// reference invariants with 3-bit ids.
const InvRegs = 8

// OperandRule is the per-operand portion of an event-table entry
// (Fig. 6b): whether the operand is evaluated, whether its metadata comes
// from memory (MD cache) or from the MD RF, how many metadata bytes to
// evaluate, and the mask extracting the relevant bits.
type OperandRule struct {
	Valid   bool
	Mem     bool
	MDBytes uint8 // 1, 2, or 4 metadata bytes (this model evaluates 1)
	Mask    byte
	INVid   uint8 // invariant register compared against on a clean check
}

// RUOp encodes the redundant-update composition (Section 4.1, Stage 1):
// with one source the source metadata is compared directly to the
// destination metadata; with two sources they are composed with OR or AND
// first.
type RUOp uint8

const (
	RUNone RUOp = iota
	RUDirect
	RUOr
	RUAnd
)

func (o RUOp) String() string {
	switch o {
	case RUNone:
		return "none"
	case RUDirect:
		return "direct"
	case RUOr:
		return "or"
	case RUAnd:
		return "and"
	}
	return fmt.Sprintf("ru(%d)", uint8(o))
}

// NBKind encodes the metadata-update rule executed by the MD update logic
// for unfilterable events (Section 5.2): propagate a source, compose the
// sources with OR/AND, set a constant from an INV register, or do so
// conditionally after comparing the sources.
type NBKind uint8

const (
	NBNone   NBKind = iota
	NBPropS1        // dest <- s1 metadata (rule 1)
	NBPropS2        // dest <- s2 metadata (rule 1)
	NBOr            // dest <- s1 | s2 (rule 2)
	NBAnd           // dest <- s1 & s2 (rule 2)
	NBConst         // dest <- INV[id] (rule 3)
	// NBCondConstOr: if s1 == s2, dest <- INV[id], else dest <- s1|s2
	// (rule 4: conditional action after comparing the source operands).
	NBCondConstOr
	// NBCondPropConst: if s1 == INV[id], dest <- s1, else dest <- INV[id]
	// (rule 4 variant comparing a source to a constant).
	NBCondPropConst
	// NBCondDestProp: if dest == INV[id], dest is left unchanged, else
	// dest <- s1 (rule 4 variant comparing the destination to a
	// constant). MemCheck uses this for stores: a store to unallocated
	// memory must not make the location addressable.
	NBCondDestProp
)

func (k NBKind) String() string {
	switch k {
	case NBNone:
		return "none"
	case NBPropS1:
		return "prop-s1"
	case NBPropS2:
		return "prop-s2"
	case NBOr:
		return "or"
	case NBAnd:
		return "and"
	case NBConst:
		return "const"
	case NBCondConstOr:
		return "cond-const-or"
	case NBCondPropConst:
		return "cond-prop-const"
	case NBCondDestProp:
		return "cond-dest-prop"
	}
	return fmt.Sprintf("nb(%d)", uint8(k))
}

// Entry is one event-table entry (Fig. 6b). The 96-bit hardware layout is
// defined by Pack/Unpack below.
type Entry struct {
	S1, S2, D OperandRule

	// CC enables clean-check filtering: every valid operand's masked
	// metadata must equal its INV register's value.
	CC bool
	// RU enables redundant-update filtering: composed source metadata
	// must equal the destination metadata.
	RU RUOp
	// MS chains this entry with Next: if this entry's check does not
	// filter the event, evaluation continues at Next in the following
	// cycle, and the event is filtered if any chained check passes.
	MS   bool
	Next uint8
	// Partial marks partial filtering: the event always requires software,
	// but a successful hardware check dispatches the short handler at
	// entry Next's HandlerPC instead of this entry's (complex) HandlerPC.
	Partial bool
	// NB is the metadata-update rule for unfilterable events
	// (Non-Blocking FADE); NBInv names the INV register for constant and
	// conditional rules.
	NB    NBKind
	NBInv uint8

	// HandlerPC is the software handler invoked for unfiltered events.
	HandlerPC uint32
}

// Packed is the 96-bit wire representation of an Entry, stored as 1.5
// 64-bit words: Lo holds bits 0-63, Hi holds bits 64-95 in its low half.
type Packed struct {
	Lo uint64
	Hi uint32
}

// Bit layout (this implementation's RTL):
//
//	[ 0:11] S1 rule   valid(1) mem(1) mdbytes(2) mask(8)
//	[12:23] S2 rule
//	[24:35] D  rule
//	[36]    CC
//	[37:39] S1 INV id
//	[40:42] S2 INV id
//	[43:45] D  INV id
//	[46:47] RU op
//	[48]    MS
//	[49:55] next entry
//	[56]    P (partial)
//	[57:59] NB kind (low 3 bits)
//	[60]    NB kind (high bit)
//	[61:63] NB INV id
//	[64:95] handler PC
func packRule(r OperandRule) uint64 {
	var v uint64
	if r.Valid {
		v |= 1
	}
	if r.Mem {
		v |= 1 << 1
	}
	v |= uint64(encodeMDBytes(r.MDBytes)) << 2
	v |= uint64(r.Mask) << 4
	return v
}

func unpackRule(v uint64, inv uint8) OperandRule {
	return OperandRule{
		Valid:   v&1 != 0,
		Mem:     v&2 != 0,
		MDBytes: decodeMDBytes(uint8(v >> 2 & 3)),
		Mask:    byte(v >> 4),
		INVid:   inv,
	}
}

func encodeMDBytes(n uint8) uint8 {
	switch n {
	case 2:
		return 1
	case 4:
		return 2
	default:
		return 0 // 1 byte
	}
}

func decodeMDBytes(code uint8) uint8 {
	switch code {
	case 1:
		return 2
	case 2:
		return 4
	default:
		return 1
	}
}

// Pack encodes the entry into its 96-bit representation.
func (e Entry) Pack() Packed {
	var lo uint64
	lo |= packRule(e.S1)
	lo |= packRule(e.S2) << 12
	lo |= packRule(e.D) << 24
	if e.CC {
		lo |= 1 << 36
	}
	lo |= uint64(e.S1.INVid&7) << 37
	lo |= uint64(e.S2.INVid&7) << 40
	lo |= uint64(e.D.INVid&7) << 43
	lo |= uint64(e.RU&3) << 46
	if e.MS {
		lo |= 1 << 48
	}
	lo |= uint64(e.Next&0x7F) << 49
	if e.Partial {
		lo |= 1 << 56
	}
	lo |= uint64(e.NB&7) << 57
	lo |= uint64(e.NB>>3&1) << 60
	lo |= uint64(e.NBInv&7) << 61
	return Packed{Lo: lo, Hi: e.HandlerPC}
}

// Unpack decodes a 96-bit representation into an Entry.
func Unpack(p Packed) Entry {
	lo := p.Lo
	e := Entry{
		S1:        unpackRule(lo, uint8(lo>>37&7)),
		S2:        unpackRule(lo>>12, uint8(lo>>40&7)),
		D:         unpackRule(lo>>24, uint8(lo>>43&7)),
		CC:        lo>>36&1 != 0,
		RU:        RUOp(lo >> 46 & 3),
		MS:        lo>>48&1 != 0,
		Next:      uint8(lo >> 49 & 0x7F),
		Partial:   lo>>56&1 != 0,
		NB:        NBKind(lo>>57&7 | lo>>60&1<<3),
		NBInv:     uint8(lo >> 61 & 7),
		HandlerPC: p.Hi,
	}
	return e
}

// EventTable is the 128-entry programmable rule store, read in the Event
// Table Read pipeline stage. Entries are stored packed, as the hardware
// does, and unpacked on read.
type EventTable struct {
	entries [EventTableEntries]Packed
	set     [EventTableEntries]bool
	// gen counts writes. The filtering unit compiles the table (together
	// with the INV RF) into a flat decision table and uses the generation
	// to invalidate that cache on reprogramming — the hardware analogue is
	// a configuration write flushing the filter pipeline.
	gen uint64
}

// Gen returns the write generation (bumped by Set/SetRaw).
func (t *EventTable) Gen() uint64 { return t.gen }

// Set programs entry id.
func (t *EventTable) Set(id int, e Entry) error {
	if id < 0 || id >= EventTableEntries {
		return fmt.Errorf("core: event-table index %d out of range", id)
	}
	t.entries[id] = e.Pack()
	t.set[id] = true
	t.gen++
	return nil
}

// Get reads entry id. ok reports whether the entry was ever programmed.
func (t *EventTable) Get(id int) (Entry, bool) {
	if id < 0 || id >= EventTableEntries {
		return Entry{}, false
	}
	return Unpack(t.entries[id]), t.set[id]
}

// Raw returns the packed words of entry id (for the MMIO interface).
func (t *EventTable) Raw(id int) Packed { return t.entries[id] }

// SetRaw stores packed words directly (for the MMIO interface).
func (t *EventTable) SetRaw(id int, p Packed) {
	t.entries[id] = p
	t.set[id] = true
	t.gen++
}

// InvariantFile is the INV RF: monitor-specific invariant values such as
// the unallocated/allocated/initialized states of MemCheck (Section 4.1).
// Two additional architected indices hold the values the Stack-Update Unit
// writes on calls and returns.
type InvariantFile struct {
	regs     [InvRegs]byte
	callIdx  uint8
	retIdx   uint8
	hasStack bool
	// gen counts writes, for the same compiled-table invalidation as
	// EventTable.gen: clean-check rows bake INV values into their expected
	// operands, so an INV write must recompile.
	gen uint64
}

// Gen returns the write generation (bumped by Set/SetStack).
func (f *InvariantFile) Gen() uint64 { return f.gen }

// Set programs invariant register id.
func (f *InvariantFile) Set(id int, v byte) error {
	if id < 0 || id >= InvRegs {
		return fmt.Errorf("core: INV register %d out of range", id)
	}
	f.regs[id] = v
	f.gen++
	return nil
}

// Get reads invariant register id.
func (f *InvariantFile) Get(id uint8) byte {
	return f.regs[id&(InvRegs-1)]
}

// SetStack selects which INV registers hold the stack-update values for
// calls and returns (Section 4.2).
func (f *InvariantFile) SetStack(callIdx, retIdx int) error {
	if callIdx < 0 || callIdx >= InvRegs || retIdx < 0 || retIdx >= InvRegs {
		return fmt.Errorf("core: stack INV indices (%d,%d) out of range", callIdx, retIdx)
	}
	f.callIdx, f.retIdx = uint8(callIdx), uint8(retIdx)
	f.hasStack = true
	f.gen++
	return nil
}

// StackValues returns the metadata bytes written on frame allocation and
// deallocation, and whether they were configured.
func (f *InvariantFile) StackValues() (call, ret byte, ok bool) {
	return f.regs[f.callIdx], f.regs[f.retIdx], f.hasStack
}
