// Package core implements the paper's contribution: the FADE filtering
// accelerator. It contains the programmable event table (Fig. 6), the
// invariant register file, the three-block filter logic (Fig. 7), the
// filtering-unit pipeline (Fig. 5) with its dedicated metadata cache and
// M-TLB, the Stack-Update Unit (Section 4.2), and the Non-Blocking
// extensions — metadata-update logic, filter store queue, and the Metadata
// Write stage (Section 5).
//
// # Structure
//
//   - Entry and OperandRule describe one event-table row; Programmer is the
//     configuration surface monitors use to install their filtering rules.
//   - FilteringUnit is the accelerator proper: Tick advances the pipeline
//     one cycle, consuming events from the event queue and emitting
//     Unfiltered records for software.
//   - The Stack-Update Unit (suu.go) filters call/return events; the
//     non-blocking metadata-update logic and filter store queue (nonblock.go)
//     let the unit update critical metadata without software round trips.
//
// # Observability
//
// FilteringUnit implements obs.Collector: it exports the fu.* metric name
// space (event mix, filter verdicts, stall breakdown, burst statistics)
// plus the queues and caches it owns (queue.ufq.*, fu.mdcache.*,
// fu.mtlb.*, fsq.occupancy). See docs/METRICS.md for the full list.
package core
