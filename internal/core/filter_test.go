package core

import "testing"

func invFile(vals ...byte) *InvariantFile {
	var inv InvariantFile
	for i, v := range vals {
		if err := inv.Set(i, v); err != nil {
			panic(err)
		}
	}
	return &inv
}

func allOp(invID uint8) OperandRule {
	return OperandRule{Valid: true, MDBytes: 1, Mask: 0xFF, INVid: invID}
}

func TestCleanCheckAllOperandsMustMatch(t *testing.T) {
	inv := invFile(0) // INV[0] = 0
	e := Entry{S1: allOp(0), S2: allOp(0), D: allOp(0), CC: true}
	if !filterCheck(e, Operands{0, 0, 0}, inv) {
		t.Fatal("all-zero operands failed clean check")
	}
	for _, ops := range []Operands{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}} {
		if filterCheck(e, ops, inv) {
			t.Fatalf("operands %+v passed clean check", ops)
		}
	}
}

func TestCleanCheckPerOperandInvariants(t *testing.T) {
	inv := invFile(0x11, 0x22, 0x33)
	e := Entry{
		S1: allOp(0), S2: allOp(1), D: allOp(2),
		CC: true,
	}
	if !filterCheck(e, Operands{0x11, 0x22, 0x33}, inv) {
		t.Fatal("distinct invariants per operand not honoured")
	}
	if filterCheck(e, Operands{0x22, 0x11, 0x33}, inv) {
		t.Fatal("swapped operands passed")
	}
}

func TestCleanCheckSkipsInvalidOperands(t *testing.T) {
	inv := invFile(0)
	e := Entry{S1: allOp(0), CC: true} // only s1 evaluated
	if !filterCheck(e, Operands{0, 0xFF, 0xFF}, inv) {
		t.Fatal("invalid operands were evaluated")
	}
}

func TestCleanCheckNoValidOperandsFiltersNothing(t *testing.T) {
	inv := invFile(0)
	e := Entry{CC: true}
	if filterCheck(e, Operands{}, inv) {
		t.Fatal("entry with no operands filtered an event")
	}
}

func TestCleanCheckMask(t *testing.T) {
	inv := invFile(0x80)
	e := Entry{S1: OperandRule{Valid: true, MDBytes: 1, Mask: 0x80, INVid: 0}, CC: true}
	// Low bits differ but are masked out.
	if !filterCheck(e, Operands{S1: 0x85}, inv) {
		t.Fatal("masked compare failed")
	}
	if filterCheck(e, Operands{S1: 0x05}, inv) {
		t.Fatal("masked compare passed on differing masked bits")
	}
}

func TestRedundantUpdateDirect(t *testing.T) {
	inv := invFile()
	e := Entry{S1: allOp(0), D: allOp(0), RU: RUDirect}
	if !filterCheck(e, Operands{S1: 7, D: 7}, inv) {
		t.Fatal("equal source/dest not redundant")
	}
	if filterCheck(e, Operands{S1: 7, D: 6}, inv) {
		t.Fatal("unequal source/dest redundant")
	}
}

func TestRedundantUpdateOrAnd(t *testing.T) {
	inv := invFile()
	or := Entry{S1: allOp(0), S2: allOp(0), D: allOp(0), RU: RUOr}
	if !filterCheck(or, Operands{S1: 1, S2: 2, D: 3}, inv) {
		t.Fatal("OR-composed redundancy failed")
	}
	if filterCheck(or, Operands{S1: 1, S2: 2, D: 1}, inv) {
		t.Fatal("OR-composed non-redundancy passed")
	}
	and := Entry{S1: allOp(0), S2: allOp(0), D: allOp(0), RU: RUAnd}
	if !filterCheck(and, Operands{S1: 3, S2: 1, D: 1}, inv) {
		t.Fatal("AND-composed redundancy failed")
	}
}

func TestFilterNeitherCCNorRU(t *testing.T) {
	inv := invFile()
	e := Entry{S1: allOp(0)}
	if filterCheck(e, Operands{}, inv) {
		t.Fatal("entry with no filtering action filtered an event")
	}
}

func TestMDUpdateRules(t *testing.T) {
	inv := invFile(0xAA, 0xBB)
	ops := Operands{S1: 0x0F, S2: 0xF0, D: 0x33}
	cases := []struct {
		kind NBKind
		nbi  uint8
		want byte
		ok   bool
	}{
		{NBNone, 0, 0, false},
		{NBPropS1, 0, 0x0F, true},
		{NBPropS2, 0, 0xF0, true},
		{NBOr, 0, 0xFF, true},
		{NBAnd, 0, 0x00, true},
		{NBConst, 1, 0xBB, true},
	}
	for _, c := range cases {
		e := Entry{S1: allOp(0), S2: allOp(0), D: allOp(0), NB: c.kind, NBInv: c.nbi}
		v, ok := mdUpdate(e, ops, inv)
		if ok != c.ok || (ok && v != c.want) {
			t.Errorf("%v: got %#x,%v want %#x,%v", c.kind, v, ok, c.want, c.ok)
		}
	}
}

func TestMDUpdateConditionalRules(t *testing.T) {
	inv := invFile(0x00, 0x55)
	// NBCondConstOr: equal sources -> constant, else OR.
	e := Entry{S1: allOp(0), S2: allOp(0), D: allOp(0), NB: NBCondConstOr, NBInv: 1}
	if v, _ := mdUpdate(e, Operands{S1: 3, S2: 3}, inv); v != 0x55 {
		t.Fatalf("cond-const-or equal case = %#x", v)
	}
	if v, _ := mdUpdate(e, Operands{S1: 1, S2: 2}, inv); v != 3 {
		t.Fatalf("cond-const-or unequal case = %#x", v)
	}
	// NBCondPropConst: s1 == INV -> propagate, else constant.
	e = Entry{S1: allOp(0), NB: NBCondPropConst, NBInv: 1}
	if v, _ := mdUpdate(e, Operands{S1: 0x55}, inv); v != 0x55 {
		t.Fatalf("cond-prop-const match case = %#x", v)
	}
	if v, _ := mdUpdate(e, Operands{S1: 0x01}, inv); v != 0x55 {
		t.Fatalf("cond-prop-const mismatch case = %#x", v)
	}
	// NBCondDestProp: dest == INV -> unchanged, else propagate s1.
	e = Entry{S1: allOp(0), D: allOp(0), NB: NBCondDestProp, NBInv: 0}
	if v, _ := mdUpdate(e, Operands{S1: 9, D: 0}, inv); v != 0 {
		t.Fatalf("cond-dest-prop protected case = %#x", v)
	}
	if v, _ := mdUpdate(e, Operands{S1: 9, D: 3}, inv); v != 9 {
		t.Fatalf("cond-dest-prop propagate case = %#x", v)
	}
}

func TestRUOpStrings(t *testing.T) {
	for _, o := range []RUOp{RUNone, RUDirect, RUOr, RUAnd} {
		if o.String() == "" {
			t.Errorf("RUOp %d empty name", o)
		}
	}
}

func TestNBKindStrings(t *testing.T) {
	for k := NBNone; k <= NBCondDestProp; k++ {
		if k.String() == "" {
			t.Errorf("NBKind %d empty name", k)
		}
	}
}

func TestModeStrings(t *testing.T) {
	if Blocking.String() != "blocking" || NonBlocking.String() != "non-blocking" {
		t.Fatal("mode names wrong")
	}
}
