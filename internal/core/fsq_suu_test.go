package core

import (
	"testing"

	"fade/internal/mem"
	"fade/internal/metadata"
)

func TestFSQInsertLookup(t *testing.T) {
	var q FSQ
	if _, hit := q.Lookup(10); hit {
		t.Fatal("empty FSQ hit")
	}
	if !q.Insert(10, 0xAA, 1) {
		t.Fatal("insert rejected")
	}
	v, hit := q.Lookup(10)
	if !hit || v != 0xAA {
		t.Fatalf("lookup = %#x,%v", v, hit)
	}
}

func TestFSQNewestWins(t *testing.T) {
	var q FSQ
	q.Insert(10, 0x01, 1)
	q.Insert(10, 0x02, 2)
	if v, _ := q.Lookup(10); v != 0x02 {
		t.Fatalf("lookup returned stale value %#x", v)
	}
	// Completing the newer event exposes the older pending value.
	q.Complete(2)
	if v, _ := q.Lookup(10); v != 0x01 {
		t.Fatalf("after completing newest, lookup = %#x", v)
	}
}

func TestFSQCompleteDiscardsAllForSeq(t *testing.T) {
	var q FSQ
	q.Insert(10, 1, 7)
	q.Insert(20, 2, 7)
	q.Insert(30, 3, 8)
	if n := q.Complete(7); n != 2 {
		t.Fatalf("complete removed %d entries", n)
	}
	if _, hit := q.Lookup(10); hit {
		t.Fatal("completed entry still visible")
	}
	if _, hit := q.Lookup(30); !hit {
		t.Fatal("unrelated entry discarded")
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d", q.Len())
	}
}

func TestFSQCapacity(t *testing.T) {
	var q FSQ
	for i := 0; i < FSQEntries; i++ {
		if !q.Insert(uint32(i), byte(i), uint64(i)) {
			t.Fatalf("insert %d rejected below capacity", i)
		}
	}
	if !q.Full() {
		t.Fatal("Full() false at capacity")
	}
	if q.Insert(99, 9, 99) {
		t.Fatal("insert beyond capacity accepted")
	}
	q.Complete(0)
	if !q.Insert(99, 9, 99) {
		t.Fatal("insert after free rejected")
	}
}

func TestFSQReset(t *testing.T) {
	var q FSQ
	q.Insert(1, 1, 1)
	q.Reset()
	if q.Len() != 0 {
		t.Fatal("reset did not clear")
	}
	if _, hit := q.Lookup(1); hit {
		t.Fatal("reset entry still visible")
	}
}

func TestSUUCoversRange(t *testing.T) {
	md := metadata.NewMemory()
	cache := mem.NewCache(mem.MDCacheConfig)
	suu := NewSUU(md, cache)

	base, size := uint32(0x1000), uint32(512)
	suu.Start(base, size, 7)
	cycles := 0
	for suu.Busy() {
		suu.Tick()
		cycles++
		if cycles > 100 {
			t.Fatal("SUU did not finish")
		}
	}
	for a := base; a < base+size; a += 4 {
		if md.Load(a) != 7 {
			t.Fatalf("addr %#x not covered", a)
		}
	}
	if md.Load(base-4) != 0 || md.Load(base+size) != 0 {
		t.Fatal("SUU overflowed the frame")
	}
	// One MD-cache block (64B of metadata = 256B of stack) per cycle.
	wantCycles := int((size + 255) / 256)
	if cycles < wantCycles || cycles > wantCycles+1 {
		t.Fatalf("SUU took %d cycles for %dB, want ~%d", cycles, size, wantCycles)
	}
}

func TestSUUZeroSizeNoOp(t *testing.T) {
	suu := NewSUU(metadata.NewMemory(), mem.NewCache(mem.MDCacheConfig))
	suu.Start(0x100, 0, 1)
	if suu.Busy() {
		t.Fatal("zero-size range made the SUU busy")
	}
}

func TestSUUStartWhileBusyPanics(t *testing.T) {
	suu := NewSUU(metadata.NewMemory(), mem.NewCache(mem.MDCacheConfig))
	suu.Start(0x100, 1024, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Start while busy did not panic")
		}
	}()
	suu.Start(0x200, 64, 2)
}

func TestSUUUnalignedRange(t *testing.T) {
	md := metadata.NewMemory()
	suu := NewSUU(md, mem.NewCache(mem.MDCacheConfig))
	// Range starting mid-block.
	base, size := uint32(0x10F0), uint32(48)
	suu.Start(base, size, 3)
	for suu.Busy() {
		suu.Tick()
	}
	for a := base; a < base+size; a += 4 {
		if md.Load(a) != 3 {
			t.Fatalf("unaligned addr %#x not covered", a)
		}
	}
	if suu.Ranges() != 1 {
		t.Fatalf("ranges = %d", suu.Ranges())
	}
	if suu.BusyCycles() == 0 {
		t.Fatal("busy cycles not counted")
	}
}
