package isa

import "fmt"

// Reg names an architectural integer register. The modeled machine has 32
// integer registers; RegNone marks an absent operand.
type Reg = uint8

// RegNone marks an unused operand slot.
const RegNone Reg = 0xFF

// NumRegs is the number of architectural integer registers.
const NumRegs = 32

// Op classifies a dynamic instruction.
type Op uint8

// Operation classes. OpMalloc, OpFree, and OpTaintSrc are high-level events
// observed via library interposition rather than single retired
// instructions; they appear in the dynamic stream at the point the wrapped
// call returns.
const (
	OpNop      Op = iota
	OpALU         // integer arithmetic/logic
	OpFPALU       // floating-point arithmetic
	OpLoad        // memory load
	OpStore       // memory store
	OpBranch      // conditional/unconditional branch
	OpJmpReg      // register-indirect jump (monitored by TaintCheck)
	OpCall        // function call: allocates a stack frame
	OpRet         // function return: deallocates a stack frame
	OpMalloc      // heap allocation (high-level event)
	OpFree        // heap deallocation (high-level event)
	OpTaintSrc    // external input arrives in a buffer (high-level event)
	NumOps
)

var opNames = [NumOps]string{
	"nop", "alu", "fpalu", "load", "store", "branch", "jmpreg",
	"call", "ret", "malloc", "free", "taintsrc",
}

// String returns the lower-case mnemonic of the operation class.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMem reports whether the op accesses application memory with a single
// effective address (loads and stores).
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// IsStackUpdate reports whether the op allocates or deallocates a stack
// frame; these generate the stack-update events handled by FADE's
// Stack-Update Unit.
func (o Op) IsStackUpdate() bool { return o == OpCall || o == OpRet }

// IsHighLevel reports whether the op is a high-level event (malloc, free,
// taint source). The filtering accelerator does not target these; they are
// always delivered to the software monitor.
func (o Op) IsHighLevel() bool {
	return o == OpMalloc || o == OpFree || o == OpTaintSrc
}

// Instr is one dynamic (retired) instruction.
type Instr struct {
	PC     uint32 // program counter
	Op     Op
	Src1   Reg    // first source operand (RegNone if absent)
	Src2   Reg    // second source operand (RegNone if absent)
	Dest   Reg    // destination operand (RegNone if absent)
	Addr   uint32 // effective address (mem ops), frame base (call/ret), region base (high-level)
	Size   uint32 // access size, frame size, or allocation size in bytes
	Thread uint8  // hardware thread that retired the instruction
	Stack  bool   // memory op whose address falls in the current stack frame
}

func (in Instr) String() string {
	switch {
	case in.Op.IsMem():
		return fmt.Sprintf("%s pc=%#x addr=%#x r%d,r%d->r%d", in.Op, in.PC, in.Addr, in.Src1, in.Src2, in.Dest)
	case in.Op.IsStackUpdate():
		return fmt.Sprintf("%s pc=%#x frame=%#x+%d", in.Op, in.PC, in.Addr, in.Size)
	case in.Op.IsHighLevel():
		return fmt.Sprintf("%s base=%#x size=%d", in.Op, in.Addr, in.Size)
	default:
		return fmt.Sprintf("%s pc=%#x r%d,r%d->r%d", in.Op, in.PC, in.Src1, in.Src2, in.Dest)
	}
}

// EventKind distinguishes the three event classes the monitoring system
// transports (Section 3.3): instruction events, stack-update events, and
// high-level events.
type EventKind uint8

const (
	// EvInstr is an instruction event: metadata access/check/update.
	EvInstr EventKind = iota
	// EvStackCall is a stack-update event for frame allocation.
	EvStackCall
	// EvStackRet is a stack-update event for frame deallocation.
	EvStackRet
	// EvHighLevel is a high-level event (malloc/free/taint source).
	EvHighLevel
)

func (k EventKind) String() string {
	switch k {
	case EvInstr:
		return "instr"
	case EvStackCall:
		return "stack-call"
	case EvStackRet:
		return "stack-ret"
	case EvHighLevel:
		return "high-level"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is the record the application core enqueues for each monitored
// event. The hardware wire format is the 85-bit record of Fig. 6(a):
// event ID (6b), application address (32b), application PC (32b), and three
// 5-bit register specifiers. Kind, Op, Size, Thread, and Seq carry
// simulation-side context that real hardware derives from the event ID and
// dedicated stack/high-level event encodings.
type Event struct {
	ID   uint8  // event-table index (6-bit in hardware)
	Addr uint32 // application address
	PC   uint32 // application PC
	Src1 Reg
	Src2 Reg
	Dest Reg

	Kind   EventKind
	Op     Op
	Size   uint32 // frame or allocation size for stack/high-level events
	Thread uint8
	Seq    uint64 // position in the monitored-event stream
}

func (e Event) String() string {
	return fmt.Sprintf("ev{%s id=%d pc=%#x addr=%#x r%d,r%d->r%d seq=%d}",
		e.Kind, e.ID, e.PC, e.Addr, e.Src1, e.Src2, e.Dest, e.Seq)
}
