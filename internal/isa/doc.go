// Package isa defines the instruction and event vocabulary shared by the
// synthetic workload generator, the core timing models, the monitors, and
// the filtering accelerator. The modeled ISA is SPARC-v9-flavoured (the
// paper's evaluation ISA) reduced to the operation classes that matter for
// instruction-grain monitoring: integer/FP computation, loads and stores,
// control flow, function calls and returns, plus the high-level pseudo-events
// (malloc, free, taint sources) that monitors intercept through library
// wrappers.
//
// Instr is one dynamic instruction as retired by the application core;
// Event is the record enqueued for the monitoring system when an
// instruction (or stack/high-level action) is monitored. Both are plain
// value types so the simulation hot path allocates nothing per instruction.
package isa
