package isa

import (
	"strings"
	"testing"
)

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op        Op
		mem       bool
		stack     bool
		highLevel bool
	}{
		{OpNop, false, false, false},
		{OpALU, false, false, false},
		{OpFPALU, false, false, false},
		{OpLoad, true, false, false},
		{OpStore, true, false, false},
		{OpBranch, false, false, false},
		{OpJmpReg, false, false, false},
		{OpCall, false, true, false},
		{OpRet, false, true, false},
		{OpMalloc, false, false, true},
		{OpFree, false, false, true},
		{OpTaintSrc, false, false, true},
	}
	for _, c := range cases {
		if c.op.IsMem() != c.mem {
			t.Errorf("%v IsMem = %v", c.op, c.op.IsMem())
		}
		if c.op.IsStackUpdate() != c.stack {
			t.Errorf("%v IsStackUpdate = %v", c.op, c.op.IsStackUpdate())
		}
		if c.op.IsHighLevel() != c.highLevel {
			t.Errorf("%v IsHighLevel = %v", c.op, c.op.IsHighLevel())
		}
	}
}

func TestOpStrings(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no name: %q", op, s)
		}
	}
	if s := Op(200).String(); !strings.HasPrefix(s, "op(") {
		t.Errorf("unknown op string %q", s)
	}
}

func TestEventKindStrings(t *testing.T) {
	for _, k := range []EventKind{EvInstr, EvStackCall, EvStackRet, EvHighLevel} {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if s := EventKind(99).String(); !strings.HasPrefix(s, "kind(") {
		t.Errorf("unknown kind string %q", s)
	}
}

func TestInstrString(t *testing.T) {
	cases := []Instr{
		{Op: OpLoad, PC: 0x1000, Addr: 0x2000, Dest: 3},
		{Op: OpCall, PC: 0x1000, Addr: 0xF0000000, Size: 64},
		{Op: OpMalloc, Addr: 0x40000000, Size: 128},
		{Op: OpALU, PC: 0x1000, Src1: 1, Src2: 2, Dest: 3},
	}
	for _, in := range cases {
		if in.String() == "" {
			t.Errorf("empty String for %v op", in.Op)
		}
	}
}

func TestEventString(t *testing.T) {
	ev := Event{ID: 3, Addr: 0x1234, PC: 0x5678, Src1: 1, Src2: 2, Dest: 3, Kind: EvInstr, Seq: 7}
	s := ev.String()
	if !strings.Contains(s, "seq=7") || !strings.Contains(s, "instr") {
		t.Errorf("event string %q missing fields", s)
	}
}

func TestRegNoneOutsideRange(t *testing.T) {
	if RegNone < NumRegs {
		t.Fatal("RegNone collides with an architectural register")
	}
}
