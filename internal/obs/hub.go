package obs

import "sync"

// Hub shares per-run telemetry across concurrent runs. Every simulation run
// owns a private Registry (snapshots of one run must not race with another
// run's component mutation), so a long-running process that executes many
// runs concurrently — the fadeserve daemon — cannot expose a single live
// registry for all of them. The Hub is the sharing point: each run
// publishes its (labeled) snapshot when it completes or aborts, and an
// exposition endpoint renders the Hub's contents alongside the process's
// own registry in one Prometheus page.
//
// The Hub is bounded: it keeps the most recent capacity entries, evicting
// the oldest on overflow, so a daemon's /metrics page stays O(capacity)
// regardless of how many runs it has served. Re-publishing an existing key
// replaces that entry in place (a run that aborts and is retried under the
// same id does not duplicate series).
//
// All methods are safe for concurrent use.
type Hub struct {
	mu  sync.Mutex
	cap int
	// entries is insertion-ordered, oldest first, so Snapshots — and the
	// Prometheus exposition built from it — is deterministic for a given
	// publish history.
	entries []hubEntry
}

type hubEntry struct {
	key    string
	labels []Label
	snap   *Snapshot
}

// NewHub returns a hub retaining at most capacity published snapshots.
// capacity <= 0 disables retention: Publish becomes a no-op and Snapshots
// is always empty.
func NewHub(capacity int) *Hub {
	return &Hub{cap: capacity}
}

// Publish stores snap under key with the given exposition labels,
// replacing any existing entry with the same key (keeping its original
// position) and evicting the oldest entry when the hub is full. A nil snap
// removes the key.
func (h *Hub) Publish(key string, labels []Label, snap *Snapshot) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cap <= 0 {
		return
	}
	for i := range h.entries {
		if h.entries[i].key != key {
			continue
		}
		if snap == nil {
			h.entries = append(h.entries[:i], h.entries[i+1:]...)
		} else {
			h.entries[i].labels = labels
			h.entries[i].snap = snap
		}
		return
	}
	if snap == nil {
		return
	}
	h.entries = append(h.entries, hubEntry{key: key, labels: labels, snap: snap})
	if len(h.entries) > h.cap {
		h.entries = append(h.entries[:0], h.entries[len(h.entries)-h.cap:]...)
	}
}

// Len returns the number of retained snapshots.
func (h *Hub) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.entries)
}

// Snapshots returns the retained snapshots oldest-first, ready for
// WritePrometheus. The returned slice is a copy; the snapshots themselves
// are shared (snapshots are immutable once taken).
func (h *Hub) Snapshots() []LabeledSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]LabeledSnapshot, len(h.entries))
	for i, e := range h.entries {
		out[i] = LabeledSnapshot{Labels: e.labels, Snap: e.snap}
	}
	return out
}
