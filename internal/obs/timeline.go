package obs

import (
	"bytes"
	"io"
	"strconv"
)

// Timeline accumulates cycle-sampled registry snapshots for time-series
// analysis (queue depth over time, filter ratio over time, ...). It is
// inert when nil or when Every is zero, so the simulation loop's only cost
// without a timeline is a nil check.
type Timeline struct {
	// Every is the sampling interval in cycles.
	Every uint64
	// Points holds the samples in cycle order.
	Points []*Snapshot
}

// MaybeSample snapshots the registry when cycle falls on the sampling
// interval. Safe to call on a nil timeline.
func (t *Timeline) MaybeSample(cycle uint64, r *Registry) {
	if t == nil || t.Every == 0 || cycle%t.Every != 0 {
		return
	}
	s := r.Snapshot()
	s.Cycle = cycle
	t.Points = append(t.Points, s)
}

// WriteTimeline emits the points as JSONL: one
// {"cell":...,"cycle":N,"metrics":{...}} object per line. cell identifies
// the simulation the points came from ("" omits the field). Output is
// byte-deterministic for a given point list.
func WriteTimeline(w io.Writer, cell string, points []*Snapshot) error {
	var b bytes.Buffer
	for _, p := range points {
		b.Reset()
		b.WriteByte('{')
		if cell != "" {
			b.WriteString(`"cell":`)
			b.WriteString(strconv.Quote(cell))
			b.WriteByte(',')
		}
		js, err := p.MarshalJSON()
		if err != nil {
			return err
		}
		b.Write(js[1:]) // splice: drop the snapshot's own '{'
		b.WriteByte('\n')
		if _, err := w.Write(b.Bytes()); err != nil {
			return err
		}
	}
	return nil
}
