package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"fade/internal/stats"
)

// Kind classifies a metric for exposition: counters are monotone event
// counts, gauges are point-in-time levels or ratios.
type Kind uint8

const (
	// KindCounter is a monotonically increasing event count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous level, fraction, or derived statistic.
	KindGauge
)

// String returns the Prometheus type name for the kind.
func (k Kind) String() string {
	if k == KindGauge {
		return "gauge"
	}
	return "counter"
}

// ValidName reports whether name is a well-formed metric name: non-empty,
// lowercase dotted, matching ^[a-z0-9_.]+$.
func ValidName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' && c != '.' {
			return false
		}
	}
	return true
}

// MustValidName panics when name is not a well-formed metric name. Metric
// names are compile-time constants in practice, so a bad name is a
// programming error, not a runtime condition.
func MustValidName(name string) {
	if !ValidName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q (want ^[a-z0-9_.]+$)", name))
	}
}

// Counter is a registry-owned monotone counter. It is safe for concurrent
// use; an increment is a single atomic add with no allocation.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d.
func (c *Counter) Add(d uint64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a registry-owned instantaneous value. It is safe for concurrent
// use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (negative d subtracts), making the gauge usable as an
// up/down level — queue depths, in-flight counts — shared between
// concurrent writers. The update is a CAS loop, so concurrent Adds never
// lose increments.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Sink receives metrics from a Collector during a snapshot. Implementations
// are provided by the registry; components only call these methods.
type Sink interface {
	// Counter reports a monotone event count.
	Counter(name string, v uint64)
	// Gauge reports an instantaneous level or derived ratio.
	Gauge(name string, v float64)
	// Histogram reports a distribution; it is expanded into derived
	// scalar series (name.count, name.mean, name.max, name.p50, name.p99).
	Histogram(name string, h *stats.Histogram)
}

// Collector is implemented by simulated components that expose their
// internal counters under stable dotted names. CollectMetrics is called
// only at snapshot points — never on the simulation hot path — so
// components keep plain, allocation-free struct fields and read them out
// here.
type Collector interface {
	CollectMetrics(s Sink)
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(Sink)

// CollectMetrics calls f.
func (f CollectorFunc) CollectMetrics(s Sink) { f(s) }

// Registry holds a simulation run's metrics: registry-owned counters and
// gauges, plus registered component collectors that are pulled at snapshot
// time. Registration and registry-owned metric updates are safe for
// concurrent use; Snapshot must not race with component mutation (take it
// when the simulated system is quiescent, e.g. between cycles or at end of
// run).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the registry-owned counter with the given name, creating
// it on first use. Concurrent callers with the same name receive the same
// counter.
func (r *Registry) Counter(name string) *Counter {
	MustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the registry-owned gauge with the given name, creating it
// on first use.
func (r *Registry) Gauge(name string) *Gauge {
	MustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Register adds a component collector. Collectors are pulled in
// registration order at each snapshot; a later emit of the same name
// overwrites an earlier one.
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// Snapshot pulls every collector and registry-owned metric and returns the
// flattened, name-sorted result. Two snapshots of identical simulation
// state are identical.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	cs := collectSink{values: make(map[string]Value)}
	for name, c := range r.counters {
		cs.Counter(name, c.Value())
	}
	for name, g := range r.gauges {
		cs.Gauge(name, g.Value())
	}
	for _, col := range r.collectors {
		col.CollectMetrics(&cs)
	}
	snap := &Snapshot{Values: make([]Value, 0, len(cs.values))}
	for _, v := range cs.values {
		snap.Values = append(snap.Values, v)
	}
	sort.Slice(snap.Values, func(i, j int) bool { return snap.Values[i].Name < snap.Values[j].Name })
	return snap
}
