package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func snapOf(name string, v uint64) *Snapshot {
	return &Snapshot{Values: []Value{{Name: name, Kind: KindCounter, Num: float64(v), Count: v}}}
}

func TestHubPublishReplaceEvict(t *testing.T) {
	h := NewHub(2)
	h.Publish("a", nil, snapOf("sim.cycles", 1))
	h.Publish("b", nil, snapOf("sim.cycles", 2))
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
	// Replacement keeps position and count.
	h.Publish("a", nil, snapOf("sim.cycles", 10))
	if h.Len() != 2 {
		t.Fatalf("Len after replace = %d, want 2", h.Len())
	}
	if got := h.Snapshots()[0].Snap.Counter("sim.cycles"); got != 10 {
		t.Fatalf("replaced entry = %d, want 10", got)
	}
	// Overflow evicts the oldest ("a", still in first position).
	h.Publish("c", nil, snapOf("sim.cycles", 3))
	snaps := h.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("Len after evict = %d, want 2", len(snaps))
	}
	if got := snaps[0].Snap.Counter("sim.cycles"); got != 2 {
		t.Fatalf("oldest after evict = %d, want 2 (entry b)", got)
	}
	// Nil snap removes.
	h.Publish("b", nil, nil)
	if h.Len() != 1 {
		t.Fatalf("Len after remove = %d, want 1", h.Len())
	}
}

func TestHubDisabled(t *testing.T) {
	h := NewHub(0)
	h.Publish("a", nil, snapOf("sim.cycles", 1))
	if h.Len() != 0 {
		t.Fatalf("disabled hub retained %d entries", h.Len())
	}
}

// TestHubConcurrent exercises Publish/Snapshots from many goroutines; run
// under -race this is the registry-sharing contract for concurrent runs.
func TestHubConcurrent(t *testing.T) {
	h := NewHub(8)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				h.Publish(fmt.Sprintf("run-%d", i), []Label{{Key: "run", Value: fmt.Sprint(i)}}, snapOf("sim.cycles", uint64(j)))
				_ = h.Snapshots()
			}
		}(i)
	}
	wg.Wait()
	if h.Len() > 8 {
		t.Fatalf("hub over capacity: %d", h.Len())
	}
	var b bytes.Buffer
	if err := WritePrometheus(&b, h.Snapshots()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "fade_sim_cycles") {
		t.Fatalf("exposition missing published series:\n%s", b.String())
	}
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
			g.Add(2)
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 16 {
		t.Fatalf("Gauge.Add lost updates: %v, want 16", got)
	}
}
