// Package obs is the simulator's observability layer: a metrics registry
// with stable dotted names, pull-based component collectors, and export
// sinks. It is the uniform surface through which every measured quantity of
// the paper's evaluation (event rates, filtering ratios, queue occupancies,
// stall breakdowns — FADE, HPCA 2014, §6) leaves a simulation.
//
// # Model
//
// A Registry is created per simulation run. Components either ask the
// registry for registry-owned metrics (Counter, Gauge — safe for concurrent
// use) or, for the common case of a component that already keeps its own
// plain counter fields on the simulation hot path, register a Collector.
// A Collector is pulled only when a snapshot is taken, so instrumentation
// adds zero allocations and zero atomic traffic to the per-cycle path: the
// hot path keeps incrementing ordinary struct fields, and the registry
// reads them out through CollectMetrics at sampling points.
//
// Snapshot flattens everything into a deterministic, name-sorted list of
// values. Histograms are expanded into derived series (.count, .mean, .max,
// .p50, .p99) so every exported quantity is a scalar.
//
// # Names
//
// Metric names are stable, dotted, and match ^[a-z0-9_.]+$ (enforced by
// MustValidName and the registry). The full name space is documented in
// docs/METRICS.md; internal/obs tests assert the two stay in sync.
//
// # Sinks
//
// Two sinks are provided: WritePrometheus renders one or more labeled
// snapshots in the Prometheus text exposition format (dots become
// underscores, names gain a "fade_" prefix), and WriteTimeline emits one
// JSON object per sampled cycle (JSONL) for time-series plots of queue
// depth, filter ratio, and any other registered series. Both sinks are
// byte-deterministic: two runs with the same seed produce identical output.
//
// Key types: Registry, Collector, Sink, Snapshot, Timeline.
package obs
