package obs_test

// End-to-end tests of the observability layer against real simulation
// runs: the metric name space is well-formed and documented, and metric
// dumps are byte-deterministic for a given seed.

import (
	"bytes"
	"os"
	"regexp"
	"strings"
	"testing"

	"fade/internal/obs"
	"fade/internal/system"
)

func runSnap(t *testing.T, mutate func(*system.Config)) *system.Result {
	t.Helper()
	cfg := system.DefaultConfig("MemLeak")
	cfg.Instrs = 20_000
	cfg.Seed = 1
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := system.Run("astar", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("run produced no metrics snapshot")
	}
	return res
}

// TestMetricNamesValidAndDocumented runs both a FADE-accelerated and an
// unaccelerated system and checks that every emitted metric name matches
// the naming grammar and appears in docs/METRICS.md.
func TestMetricNamesValidAndDocumented(t *testing.T) {
	docBytes, err := os.ReadFile("../../docs/METRICS.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(docBytes)
	nameRE := regexp.MustCompile(`^[a-z0-9_.]+$`)

	names := map[string]bool{}
	fadeRun := runSnap(t, nil)
	for _, v := range fadeRun.Metrics.Values {
		names[v.Name] = true
	}
	unacc := runSnap(t, func(c *system.Config) { c.Accel = system.Unaccelerated })
	for _, v := range unacc.Metrics.Values {
		names[v.Name] = true
	}
	if len(names) < 40 {
		t.Fatalf("only %d distinct metrics emitted; expected the full fu/app/moncore/queue/sim name space", len(names))
	}
	for name := range names {
		if !nameRE.MatchString(name) {
			t.Errorf("metric name %q does not match %s", name, nameRE)
		}
		if !strings.Contains(doc, "`"+name+"`") && !strings.Contains(doc, name) {
			t.Errorf("metric %q is not documented in docs/METRICS.md", name)
		}
	}
}

// TestSnapshotDeterminism checks that two runs with identical (benchmark,
// config, seed) produce byte-identical Prometheus expositions and
// timelines.
func TestSnapshotDeterminism(t *testing.T) {
	dump := func() (string, string) {
		res := runSnap(t, func(c *system.Config) { c.TimelineEvery = 5_000 })
		var prom, tl bytes.Buffer
		err := obs.WritePrometheus(&prom, []obs.LabeledSnapshot{
			{Labels: []obs.Label{{Key: "cell", Value: "astar/MemLeak"}}, Snap: res.Metrics},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Timeline) == 0 {
			t.Fatal("TimelineEvery set but no timeline points recorded")
		}
		if err := obs.WriteTimeline(&tl, "astar/MemLeak", res.Timeline); err != nil {
			t.Fatal(err)
		}
		return prom.String(), tl.String()
	}
	prom1, tl1 := dump()
	prom2, tl2 := dump()
	if prom1 != prom2 {
		t.Errorf("same-seed Prometheus dumps differ:\n--- first\n%s\n--- second\n%s", prom1, prom2)
	}
	if tl1 != tl2 {
		t.Error("same-seed timeline dumps differ")
	}
}

// TestSnapshotInternallyConsistent cross-checks the snapshot against the
// run's typed result fields: the registry is the same data, not a second
// bookkeeping path that can drift.
func TestSnapshotInternallyConsistent(t *testing.T) {
	res := runSnap(t, nil)
	snap := res.Metrics

	if got := snap.Counter("sim.cycles"); got != res.Cycles {
		t.Errorf("sim.cycles = %d, want Result.Cycles = %d", got, res.Cycles)
	}
	if got := snap.Counter("app.instrs"); got != res.Instrs {
		t.Errorf("app.instrs = %d, want Result.Instrs = %d", got, res.Instrs)
	}
	slow, ok := snap.Get("sim.slowdown")
	if !ok || slow != res.Slowdown {
		t.Errorf("sim.slowdown = %v (ok=%v), want %v", slow, ok, res.Slowdown)
	}

	// Filter ratio must be recomputable from raw counters within rounding.
	f := res.Filter
	if f == nil {
		t.Fatal("FADE run has no filter stats")
	}
	instr := snap.Counter("fu.events.instr")
	filtered := snap.Counter("fu.filtered.clean_check") + snap.Counter("fu.filtered.redundant_update")
	if instr == 0 {
		t.Fatal("fu.events.instr = 0")
	}
	recomputed := float64(filtered) / float64(instr)
	ratio, _ := snap.Get("fu.filter_ratio")
	if diff := recomputed - ratio; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("fu.filter_ratio = %v but filtered/instr = %v", ratio, recomputed)
	}
}
