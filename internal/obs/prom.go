package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Label is one exposition label (e.g. {exp="fig9", cell="MemLeak/astar"}).
type Label struct {
	Key   string
	Value string
}

// LabeledSnapshot pairs a snapshot with the labels identifying its source
// (experiment, cell, benchmark ...). An empty label set is valid.
type LabeledSnapshot struct {
	Labels []Label
	Snap   *Snapshot
}

// PromName converts a dotted metric name to its Prometheus exposition form:
// dots become underscores and the name gains a "fade_" prefix.
func PromName(name string) string {
	return "fade_" + strings.ReplaceAll(name, ".", "_")
}

// WritePrometheus renders the snapshots in the Prometheus text exposition
// format, grouping all samples of one metric under a single # TYPE line.
// Metrics are ordered by name and samples by input snapshot order, so the
// output is byte-deterministic.
func WritePrometheus(w io.Writer, snaps []LabeledSnapshot) error {
	type sample struct {
		labels []Label
		val    Value
	}
	kinds := make(map[string]Kind)
	bySeries := make(map[string][]sample)
	for _, ls := range snaps {
		if ls.Snap == nil {
			continue
		}
		for _, v := range ls.Snap.Values {
			kinds[v.Name] = v.Kind
			bySeries[v.Name] = append(bySeries[v.Name], sample{labels: ls.Labels, val: v})
		}
	}
	names := make([]string, 0, len(bySeries))
	for name := range bySeries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", pn, kinds[name]); err != nil {
			return err
		}
		for _, s := range bySeries[name] {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", pn, formatLabels(s.labels), s.val.Format()); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatLabels renders {k1="v1",k2="v2"} ("" for no labels). Label values
// are escaped per the exposition format.
func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
