package obs

import (
	"bytes"
	"strconv"

	"fade/internal/stats"
)

// Value is one exported metric sample.
type Value struct {
	Name string
	Kind Kind
	// Num holds the sample. Counters store an exact uint64 in Count and
	// mirror it here for uniform consumption.
	Num   float64
	Count uint64
}

// Format renders the sample deterministically: counters as integers,
// gauges in the shortest float representation.
func (v Value) Format() string {
	if v.Kind == KindCounter {
		return strconv.FormatUint(v.Count, 10)
	}
	return strconv.FormatFloat(v.Num, 'g', -1, 64)
}

// Snapshot is a flattened, name-sorted view of a registry at one point in
// (simulated) time. Cycle is the sampling cycle for timeline points and 0
// for end-of-run snapshots.
type Snapshot struct {
	Cycle  uint64
	Values []Value
}

// Get returns the sample with the given name.
func (s *Snapshot) Get(name string) (float64, bool) {
	for _, v := range s.Values {
		if v.Name == name {
			return v.Num, true
		}
	}
	return 0, false
}

// Counter returns the exact count of the named counter (0 when absent or
// not a counter).
func (s *Snapshot) Counter(name string) uint64 {
	for _, v := range s.Values {
		if v.Name == name && v.Kind == KindCounter {
			return v.Count
		}
	}
	return 0
}

// MarshalJSON renders the snapshot as {"cycle":N,"metrics":{name:value}}
// with names in sorted order, so the encoding is byte-deterministic.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteString(`{"cycle":`)
	b.WriteString(strconv.FormatUint(s.Cycle, 10))
	b.WriteString(`,"metrics":{`)
	for i, v := range s.Values {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(v.Name))
		b.WriteByte(':')
		b.WriteString(v.Format())
	}
	b.WriteString("}}")
	return b.Bytes(), nil
}

// collectSink accumulates emitted metrics into a name-keyed map, expanding
// histograms into derived scalar series.
type collectSink struct {
	values map[string]Value
}

func (c *collectSink) Counter(name string, v uint64) {
	MustValidName(name)
	c.values[name] = Value{Name: name, Kind: KindCounter, Num: float64(v), Count: v}
}

func (c *collectSink) Gauge(name string, v float64) {
	MustValidName(name)
	c.values[name] = Value{Name: name, Kind: KindGauge, Num: v}
}

func (c *collectSink) Histogram(name string, h *stats.Histogram) {
	MustValidName(name)
	c.Counter(name+".count", h.Total())
	c.Gauge(name+".mean", h.Mean())
	c.Gauge(name+".max", float64(h.Maximum()))
	if h.Total() > 0 {
		c.Gauge(name+".p50", float64(h.Percentile(0.50)))
		c.Gauge(name+".p99", float64(h.Percentile(0.99)))
	} else {
		c.Gauge(name+".p50", 0)
		c.Gauge(name+".p99", 0)
	}
}

// HistogramSuffixes lists the derived series a histogram expands into;
// docs/METRICS.md documents each expanded name explicitly and the obs tests
// use this list to keep the two in sync.
var HistogramSuffixes = []string{".count", ".mean", ".max", ".p50", ".p99"}
