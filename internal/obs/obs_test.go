package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"fade/internal/stats"
)

func TestValidName(t *testing.T) {
	valid := []string{"a", "fu.filtered.clean_check", "queue.meq.occupancy_dist.p99", "x0_9"}
	for _, n := range valid {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	invalid := []string{"", "Fu.events", "fu-events", "fu events", "fu.événement", "a/b"}
	for _, n := range invalid {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

// TestRegistryConcurrent hammers registration, counter increments, gauge
// stores, and snapshots from many goroutines; run under -race it proves
// the registry's concurrency contract.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 1000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			shared := r.Counter("test.shared")
			own := r.Counter("test.own_" + string(rune('a'+g)))
			gauge := r.Gauge("test.level")
			for i := 0; i < perG; i++ {
				shared.Inc()
				own.Add(2)
				gauge.Set(float64(i))
			}
			r.Register(CollectorFunc(func(s Sink) {
				s.Counter("test.collected_"+string(rune('a'+g)), uint64(g))
			}))
		}(g)
	}
	// Snapshots race registration and registry-owned updates by design.
	for i := 0; i < 20; i++ {
		_ = r.Snapshot()
	}
	wg.Wait()

	snap := r.Snapshot()
	if got := snap.Counter("test.shared"); got != goroutines*perG {
		t.Errorf("test.shared = %d, want %d", got, goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		name := "test.own_" + string(rune('a'+g))
		if got := snap.Counter(name); got != 2*perG {
			t.Errorf("%s = %d, want %d", name, got, 2*perG)
		}
		if got := snap.Counter("test.collected_" + string(rune('a'+g))); got != uint64(g) {
			t.Errorf("test.collected_%c = %d, want %d", 'a'+g, got, g)
		}
	}
	if v, ok := snap.Get("test.level"); !ok || v != perG-1 {
		t.Errorf("test.level = %v, %v; want %d, true", v, ok, perG-1)
	}
}

func TestSnapshotSortedAndHistogramExpansion(t *testing.T) {
	r := NewRegistry()
	h := stats.NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Add(i)
	}
	r.Register(CollectorFunc(func(s Sink) {
		s.Histogram("test.dist", h)
		s.Counter("test.b", 2)
		s.Counter("test.a", 1)
	}))
	snap := r.Snapshot()
	for i := 1; i < len(snap.Values); i++ {
		if snap.Values[i-1].Name >= snap.Values[i].Name {
			t.Fatalf("snapshot not strictly name-sorted at %d: %q >= %q",
				i, snap.Values[i-1].Name, snap.Values[i].Name)
		}
	}
	for _, suffix := range HistogramSuffixes {
		if _, ok := snap.Get("test.dist" + suffix); !ok {
			t.Errorf("histogram series test.dist%s missing from snapshot", suffix)
		}
	}
	if got := snap.Counter("test.dist.count"); got != 100 {
		t.Errorf("test.dist.count = %d, want 100", got)
	}
}

func TestWritePrometheusShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("test.events").Add(7)
	r.Gauge("test.ratio").Set(0.5)
	snap := r.Snapshot()
	var b bytes.Buffer
	err := WritePrometheus(&b, []LabeledSnapshot{
		{Labels: []Label{{Key: "cell", Value: `a"b\c`}}, Snap: snap},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE fade_test_events counter\n",
		"fade_test_events{cell=\"a\\\"b\\\\c\"} 7\n",
		"# TYPE fade_test_ratio gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteTimelineShape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.ticks")
	tl := &Timeline{Every: 10}
	for cycle := uint64(0); cycle < 25; cycle++ {
		c.Inc()
		tl.MaybeSample(cycle, r)
	}
	if len(tl.Points) != 3 {
		t.Fatalf("got %d points, want 3 (cycles 0, 10, 20)", len(tl.Points))
	}
	var b bytes.Buffer
	if err := WriteTimeline(&b, "unit/test", tl.Points); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	if want := `{"cell":"unit/test","cycle":10,"metrics":{"test.ticks":11}}`; lines[1] != want {
		t.Errorf("line 1 = %s, want %s", lines[1], want)
	}

	// Nil and disabled timelines are inert.
	var nilTL *Timeline
	nilTL.MaybeSample(0, r)
	(&Timeline{}).MaybeSample(0, r)
}
