package mem

import (
	"fade/internal/obs"
	"fade/internal/stats"
)

// TLB is a fully-associative, true-LRU translation buffer keyed by page
// number. The M-TLB instance (16 entries, Section 6) translates application
// virtual pages to the physical pages holding their metadata; its misses are
// serviced in software, which the filtering unit models as a fixed stall
// plus monitor-core occupancy.
type TLB struct {
	entries []tlbEntry
	stamp   uint64
	hits    stats.Counter
	misses  stats.Counter
}

type tlbEntry struct {
	page  uint32
	valid bool
	lru   uint64
}

// MTLBEntries is the metadata-TLB size from Section 6.
const MTLBEntries = 16

// MTLBMissPenalty is the cycle cost of the software M-TLB miss handler. The
// paper services M-TLB misses in software (Section 4.1, Stage 3) without
// quoting a number; a short trap-and-fill handler on the monitor core is on
// the order of a few tens of cycles.
const MTLBMissPenalty = 20

// NewTLB returns a TLB with n entries.
func NewTLB(n int) *TLB {
	if n <= 0 {
		panic("mem: TLB size must be positive")
	}
	return &TLB{entries: make([]tlbEntry, n)}
}

// Lookup translates page, reporting whether it hit. On a miss the entry is
// filled (after the software handler would have run).
func (t *TLB) Lookup(page uint32) bool {
	t.stamp++
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.page == page {
			e.lru = t.stamp
			t.hits.Inc()
			return true
		}
		if !e.valid {
			victim = i
		} else if t.entries[victim].valid && e.lru < t.entries[victim].lru {
			victim = i
		}
	}
	t.entries[victim] = tlbEntry{page: page, valid: true, lru: t.stamp}
	t.misses.Inc()
	return false
}

// Hits returns the number of TLB hits.
func (t *TLB) Hits() uint64 { return t.hits.Value() }

// Misses returns the number of TLB misses.
func (t *TLB) Misses() uint64 { return t.misses.Value() }

// MissRate returns misses / lookups (0 when unused).
func (t *TLB) MissRate() float64 {
	return stats.Ratio(t.misses.Value(), t.hits.Value()+t.misses.Value())
}

// MetricsCollector returns an obs.Collector exposing the TLB's hit/miss
// counters under the given dotted prefix (e.g. "fu.mtlb").
func (t *TLB) MetricsCollector(prefix string) obs.Collector {
	return obs.CollectorFunc(func(s obs.Sink) {
		s.Counter(prefix+".hits", t.Hits())
		s.Counter(prefix+".misses", t.Misses())
		s.Gauge(prefix+".miss_rate", t.MissRate())
	})
}
