package mem

import (
	"fmt"

	"fade/internal/obs"
	"fade/internal/stats"
)

// CacheConfig describes a set-associative cache.
type CacheConfig struct {
	Name       string
	SizeBytes  int
	Assoc      int
	BlockBytes int
	// HitLatency is the access latency in cycles on a hit.
	HitLatency int
}

// Validate rejects geometries NewCache cannot build: non-positive
// dimensions, a non-power-of-two block size, or a size/associativity/block
// combination whose set count is not a positive power of two. Callers that
// accept user-supplied geometry (system.Config.Validate) pre-check with it
// so the NewCache panic marks an internal bug, never a user error.
func (c CacheConfig) Validate() error {
	if c.BlockBytes <= 0 || c.Assoc <= 0 || c.SizeBytes <= 0 {
		return fmt.Errorf("mem: %s cache geometry must be positive (size %d, assoc %d, block %d)", c.Name, c.SizeBytes, c.Assoc, c.BlockBytes)
	}
	if c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("mem: %s cache block size must be a power of two, got %d", c.Name, c.BlockBytes)
	}
	numSets := c.SizeBytes / (c.BlockBytes * c.Assoc)
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		return fmt.Errorf("mem: %s cache set count must be a positive power of two, got %d (size %d / assoc %d / block %d)", c.Name, numSets, c.SizeBytes, c.Assoc, c.BlockBytes)
	}
	return nil
}

// Standard configurations from Table 1 and Section 6.
var (
	L1Config = CacheConfig{Name: "L1", SizeBytes: 32 << 10, Assoc: 2, BlockBytes: 64, HitLatency: 2}
	L2Config = CacheConfig{Name: "L2", SizeBytes: 2 << 20, Assoc: 16, BlockBytes: 64, HitLatency: 10}
	// MDCacheConfig is the dedicated metadata cache: 4 KB, two-way,
	// one-cycle access latency (Section 6).
	MDCacheConfig = CacheConfig{Name: "MD$", SizeBytes: 4 << 10, Assoc: 2, BlockBytes: 64, HitLatency: 1}
)

// DRAMLatency is the DRAM access latency in cycles (Table 1).
const DRAMLatency = 90

type line struct {
	tag   uint32
	valid bool
	lru   uint64 // last-use stamp
}

// Cache is a set-associative, true-LRU, timing-only cache model.
type Cache struct {
	cfg        CacheConfig
	sets       [][]line
	setMask    uint32
	blockShift uint
	stamp      uint64

	hits   stats.Counter
	misses stats.Counter
}

// NewCache builds a cache from cfg. It panics on a non-power-of-two
// geometry, which would indicate a configuration bug.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.BlockBytes <= 0 || cfg.Assoc <= 0 || cfg.SizeBytes <= 0 {
		panic("mem: invalid cache geometry")
	}
	numSets := cfg.SizeBytes / (cfg.BlockBytes * cfg.Assoc)
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic("mem: number of sets must be a power of two")
	}
	if cfg.BlockBytes&(cfg.BlockBytes-1) != 0 {
		panic("mem: block size must be a power of two")
	}
	sets := make([][]line, numSets)
	backing := make([]line, numSets*cfg.Assoc)
	for i := range sets {
		sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	shift := uint(0)
	for 1<<shift < cfg.BlockBytes {
		shift++
	}
	return &Cache{cfg: cfg, sets: sets, setMask: uint32(numSets - 1), blockShift: shift}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Access looks up addr, updating LRU state, and reports whether it hit.
// On a miss the block is installed (allocate-on-miss for both reads and
// writes; all modeled caches are write-allocate).
func (c *Cache) Access(addr uint32) bool {
	c.stamp++
	blk := addr >> c.blockShift
	set := c.sets[blk&c.setMask]
	tag := blk >> 0
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.stamp
			c.hits.Inc()
			return true
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = line{tag: tag, valid: true, lru: c.stamp}
	c.misses.Inc()
	return false
}

// Probe reports whether addr is present without updating any state.
func (c *Cache) Probe(addr uint32) bool {
	blk := addr >> c.blockShift
	set := c.sets[blk&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == blk {
			return true
		}
	}
	return false
}

// Hits returns the number of hits observed.
func (c *Cache) Hits() uint64 { return c.hits.Value() }

// Misses returns the number of misses observed.
func (c *Cache) Misses() uint64 { return c.misses.Value() }

// MissRate returns misses / accesses (0 when unused).
func (c *Cache) MissRate() float64 {
	return stats.Ratio(c.misses.Value(), c.hits.Value()+c.misses.Value())
}

// BlockBytes returns the cache block size.
func (c *Cache) BlockBytes() int { return c.cfg.BlockBytes }

// MetricsCollector returns an obs.Collector exposing the cache's hit/miss
// counters under the given dotted prefix (e.g. "fu.mdcache").
func (c *Cache) MetricsCollector(prefix string) obs.Collector {
	return obs.CollectorFunc(func(s obs.Sink) {
		s.Counter(prefix+".hits", c.Hits())
		s.Counter(prefix+".misses", c.Misses())
		s.Gauge(prefix+".miss_rate", c.MissRate())
	})
}

// PrefetchLatency is the exposed latency of an L1 miss covered by the
// next-line stream prefetcher: the block is (mostly) in flight already.
const PrefetchLatency = 4

// Hierarchy bundles a private L1, a shared L2, DRAM, and a next-line
// stream prefetcher into a latency oracle for a core's memory accesses.
// The prefetcher matters for calibration: sequential streams (libquantum,
// ocean) run near L1 speed despite missing, while random pointer chases
// (mcf) pay full memory latency.
type Hierarchy struct {
	L1 *Cache
	L2 *Cache

	lastMissBlock uint32
	prefetchHits  stats.Counter
}

// NewHierarchy builds the Table 1 two-level hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{L1: NewCache(L1Config), L2: NewCache(L2Config)}
}

// AccessLatency runs addr through the hierarchy and returns the total
// latency in cycles: L1 hit, prefetched miss, L2 hit, or DRAM.
func (h *Hierarchy) AccessLatency(addr uint32) int {
	if h.L1.Access(addr) {
		return h.L1.cfg.HitLatency
	}
	block := addr >> h.L1.blockShift
	sequential := block == h.lastMissBlock+1
	h.lastMissBlock = block
	l2Hit := h.L2.Access(addr) // the line moves through L2 either way
	if sequential {
		h.prefetchHits.Inc()
		return h.L1.cfg.HitLatency + PrefetchLatency
	}
	if l2Hit {
		return h.L1.cfg.HitLatency + h.L2.cfg.HitLatency
	}
	return h.L1.cfg.HitLatency + h.L2.cfg.HitLatency + DRAMLatency
}

// PrefetchHits returns the number of misses covered by the prefetcher.
func (h *Hierarchy) PrefetchHits() uint64 { return h.prefetchHits.Value() }

// MetricsCollector returns an obs.Collector exposing the hierarchy's L1/L2
// hit/miss counters and prefetcher coverage under the given dotted prefix
// (e.g. "app.mem").
func (h *Hierarchy) MetricsCollector(prefix string) obs.Collector {
	return obs.CollectorFunc(func(s obs.Sink) {
		h.L1.MetricsCollector(prefix + ".l1").CollectMetrics(s)
		h.L2.MetricsCollector(prefix + ".l2").CollectMetrics(s)
		s.Counter(prefix+".prefetch_hits", h.PrefetchHits())
	})
}
