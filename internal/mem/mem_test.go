package mem

import (
	"testing"
	"testing/quick"
)

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(L1Config)
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x103F) {
		t.Fatal("same block missed")
	}
	if c.Access(0x1040) {
		t.Fatal("next block hit while cold")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Tiny direct-mapped-ish cache: 2 sets x 2 ways x 64B = 256B.
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 256, Assoc: 2, BlockBytes: 64, HitLatency: 1})
	// Three blocks mapping to set 0 (addresses 0, 128, 256 with 2 sets).
	c.Access(0)
	c.Access(128)
	if !c.Access(0) {
		t.Fatal("resident block missed")
	}
	c.Access(256) // evicts 128 (LRU), not 0
	if !c.Access(0) {
		t.Fatal("MRU block evicted")
	}
	if c.Access(128) {
		t.Fatal("LRU block not evicted")
	}
}

func TestCacheProbe(t *testing.T) {
	c := NewCache(L1Config)
	c.Access(0x40)
	if !c.Probe(0x40) {
		t.Fatal("probe missed resident block")
	}
	if c.Probe(0x1000000) {
		t.Fatal("probe hit absent block")
	}
	// Probe must not disturb state: still one miss recorded.
	if c.Misses() != 1 {
		t.Fatalf("probe changed miss count: %d", c.Misses())
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	bad := []CacheConfig{
		{SizeBytes: 0, Assoc: 2, BlockBytes: 64},
		{SizeBytes: 4096, Assoc: 0, BlockBytes: 64},
		{SizeBytes: 4096, Assoc: 2, BlockBytes: 0},
		{SizeBytes: 3000, Assoc: 2, BlockBytes: 64}, // non-power-of-two sets
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			NewCache(cfg)
		}()
	}
}

func TestCacheMissRate(t *testing.T) {
	c := NewCache(L1Config)
	if c.MissRate() != 0 {
		t.Fatal("unused cache has nonzero miss rate")
	}
	c.Access(0)
	c.Access(0)
	if c.MissRate() != 0.5 {
		t.Fatalf("miss rate = %v", c.MissRate())
	}
}

func TestCacheFullCoverage(t *testing.T) {
	// Filling the cache exactly should keep everything resident.
	cfg := CacheConfig{Name: "t", SizeBytes: 1024, Assoc: 2, BlockBytes: 64, HitLatency: 1}
	c := NewCache(cfg)
	for a := uint32(0); a < 1024; a += 64 {
		c.Access(a)
	}
	for a := uint32(0); a < 1024; a += 64 {
		if !c.Access(a) {
			t.Fatalf("block %#x evicted from exactly-full cache", a)
		}
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy()
	// Cold non-sequential access: L1 miss + L2 miss -> DRAM.
	lat := h.AccessLatency(0x10000)
	want := L1Config.HitLatency + L2Config.HitLatency + DRAMLatency
	if lat != want {
		t.Fatalf("cold latency = %d, want %d", lat, want)
	}
	// Now resident in L1.
	if lat := h.AccessLatency(0x10000); lat != L1Config.HitLatency {
		t.Fatalf("L1 hit latency = %d", lat)
	}
}

func TestHierarchyPrefetcher(t *testing.T) {
	h := NewHierarchy()
	h.AccessLatency(0x100000) // cold miss establishes the stream
	lat := h.AccessLatency(0x100040)
	if lat != L1Config.HitLatency+PrefetchLatency {
		t.Fatalf("sequential miss latency = %d, want prefetched %d", lat, L1Config.HitLatency+PrefetchLatency)
	}
	if h.PrefetchHits() != 1 {
		t.Fatalf("prefetch hits = %d", h.PrefetchHits())
	}
	// A random jump is not prefetched.
	lat = h.AccessLatency(0x900000)
	if lat <= L1Config.HitLatency+PrefetchLatency {
		t.Fatalf("random miss latency = %d unexpectedly low", lat)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := NewHierarchy()
	h.AccessLatency(0x20000)
	// Evict from tiny L1 by filling its set; L1 is 32KB 2-way so two more
	// blocks mapping to the same set suffice.
	h.AccessLatency(0x20000 + 16<<10)
	h.AccessLatency(0x20000 + 32<<10)
	lat := h.AccessLatency(0x20000) // L1 miss (evicted), L2 hit, not sequential
	want := L1Config.HitLatency + L2Config.HitLatency
	if lat != want {
		t.Fatalf("L2 hit latency = %d, want %d", lat, want)
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(2)
	if tlb.Lookup(1) {
		t.Fatal("cold TLB hit")
	}
	if !tlb.Lookup(1) {
		t.Fatal("TLB missed resident page")
	}
	tlb.Lookup(2)
	tlb.Lookup(3) // evicts 1 (LRU)
	if tlb.Lookup(1) {
		t.Fatal("evicted page hit")
	}
	if !tlb.Lookup(3) {
		t.Fatal("recent page missed")
	}
}

func TestTLBSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TLB size 0 did not panic")
		}
	}()
	NewTLB(0)
}

func TestTLBMissRate(t *testing.T) {
	tlb := NewTLB(4)
	if tlb.MissRate() != 0 {
		t.Fatal("unused TLB nonzero miss rate")
	}
	tlb.Lookup(1)
	tlb.Lookup(1)
	if tlb.MissRate() != 0.5 {
		t.Fatalf("miss rate = %v", tlb.MissRate())
	}
	if tlb.Hits() != 1 || tlb.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", tlb.Hits(), tlb.Misses())
	}
}

// Property: after accessing an address, an immediate repeat always hits,
// regardless of history.
func TestCacheRepeatAlwaysHits(t *testing.T) {
	c := NewCache(MDCacheConfig)
	err := quick.Check(func(addrs []uint32) bool {
		for _, a := range addrs {
			c.Access(a)
			if !c.Access(a) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConfigAccessors(t *testing.T) {
	c := NewCache(MDCacheConfig)
	if c.Config().SizeBytes != 4<<10 {
		t.Fatalf("config size = %d", c.Config().SizeBytes)
	}
	if c.BlockBytes() != 64 {
		t.Fatalf("block bytes = %d", c.BlockBytes())
	}
}
