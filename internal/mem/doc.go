// Package mem models the memory-system timing components of the evaluated
// systems (Table 1): set-associative L1 caches (32 KB, 2-way, 64 B blocks,
// 2-cycle), a shared L2 (2 MB, 16-way, 10-cycle), a 90-cycle DRAM, the
// dedicated 4 KB two-way metadata cache (MD cache), and the TLBs — including
// the 16-entry metadata TLB (M-TLB) whose misses are serviced in software.
//
// The models are timing-only: they track presence and recency, not data.
// Functional metadata state lives in internal/metadata.
//
// # Observability
//
// Cache, Hierarchy, and TLB expose MetricsCollector(prefix) factories
// returning obs.Collectors that export hit/miss counters and miss-rate
// gauges under the caller's prefix (e.g. app.mem.l1.*, fu.mdcache.*,
// fu.mtlb.*). See docs/METRICS.md.
package mem
