// Package stats provides the statistics primitives used by the simulator and
// the experiment harness: streaming counters, histograms with CDF extraction,
// arithmetic and geometric means, and utilization breakdowns.
//
// Histogram doubles as the sample type behind the metrics registry's
// distribution series: internal/obs expands a histogram into derived
// .count/.mean/.max/.p50/.p99 scalar metrics at snapshot time.
package stats
