package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatal("empty mean not 0")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		m.Add(v)
	}
	if m.Value() != 2.5 || m.N() != 4 {
		t.Fatalf("mean = %v n = %d", m.Value(), m.N())
	}
}

func TestGMean(t *testing.T) {
	if g := GMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("gmean(2,8) = %v", g)
	}
	if g := GMean(nil); g != 0 {
		t.Fatalf("gmean(nil) = %v", g)
	}
	// Non-positive entries are ignored.
	if g := GMean([]float64{0, -1, 4}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("gmean with non-positives = %v", g)
	}
}

func TestGMeanLeqAMean(t *testing.T) {
	err := quick.Check(func(a, b, c uint8) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		return GMean(xs) <= AMean(xs)+1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestAMeanMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if AMean(xs) != 2 {
		t.Fatalf("amean = %v", AMean(xs))
	}
	if Max(xs) != 3 {
		t.Fatalf("max = %v", Max(xs))
	}
	if AMean(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty amean/max not 0")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{1, 1, 2, 5, 5, 5} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Maximum() != 5 {
		t.Fatalf("max = %d", h.Maximum())
	}
	if math.Abs(h.Mean()-19.0/6) > 1e-9 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram()
	for v := 1; v <= 10; v++ {
		h.Add(v)
	}
	if f := h.CDFAt(5); math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("CDFAt(5) = %v", f)
	}
	if f := h.CDFAt(0); f != 0 {
		t.Fatalf("CDFAt(0) = %v", f)
	}
	if f := h.CDFAt(100); f != 1 {
		t.Fatalf("CDFAt(100) = %v", f)
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram()
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	if p := h.Percentile(0.5); p != 50 {
		t.Fatalf("p50 = %d", p)
	}
	if p := h.Percentile(0.99); p != 99 {
		t.Fatalf("p99 = %d", p)
	}
	if p := h.Percentile(1.0); p != 100 {
		t.Fatalf("p100 = %d", p)
	}
}

func TestHistogramPercentileEmpty(t *testing.T) {
	if p := NewHistogram().Percentile(0.5); p != 0 {
		t.Fatalf("empty percentile = %d", p)
	}
}

func TestHistogramCDFAtPointsMonotone(t *testing.T) {
	h := NewHistogram()
	rngvals := []int{3, 3, 7, 1, 0, 12, 7, 7, 2}
	for _, v := range rngvals {
		h.Add(v)
	}
	pts := h.CDFAtPoints([]int{0, 1, 2, 4, 8, 16})
	prev := -1.0
	for _, p := range pts {
		if p.Frac < prev {
			t.Fatalf("CDF not monotone at %d: %v < %v", p.Value, p.Frac, prev)
		}
		prev = p.Frac
	}
	if last := pts[len(pts)-1]; last.Frac != 1 {
		t.Fatalf("CDF at 16 = %v, want 1", last.Frac)
	}
}

func TestHistogramCDFProperty(t *testing.T) {
	err := quick.Check(func(vals []uint8) bool {
		h := NewHistogram()
		for _, v := range vals {
			h.Add(int(v))
		}
		if len(vals) == 0 {
			return h.CDFAt(255) == 0
		}
		return h.CDFAt(255) == 1 && h.CDFAt(-1) == 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUtilization(t *testing.T) {
	u := NewUtilization("a", "b", "c")
	u.Record(0)
	u.Record(0)
	u.Record(1)
	u.Record(2)
	if u.Total() != 4 {
		t.Fatalf("total = %d", u.Total())
	}
	if f := u.Fraction(0); f != 0.5 {
		t.Fatalf("fraction(0) = %v", f)
	}
	if names := u.Names(); len(names) != 3 || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestUtilizationEmpty(t *testing.T) {
	u := NewUtilization("x")
	if u.Fraction(0) != 0 {
		t.Fatal("empty utilization fraction not 0")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio(1,0) != 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Fatalf("Ratio(3,4) = %v", Ratio(3, 4))
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.Add(2)
	if s := h.String(); s == "" {
		t.Fatal("empty String()")
	}
}
