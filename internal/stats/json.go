package stats

import (
	"encoding/json"
	"fmt"
)

// histWire is Histogram's JSON form: the summary scalars plus every
// occupied bucket, sorted ascending by value. The incremental float sum is
// carried explicitly (float64 JSON round-trips exactly via Go's
// shortest-representation encoding) rather than recomputed from the
// buckets, whose summation order would differ from Add's and perturb the
// low bits — decode must reproduce the encoder's state bit-for-bit so
// cached results stay byte-identical to fresh ones.
type histWire struct {
	Total   uint64    `json:"total"`
	Sum     float64   `json:"sum"`
	Max     int       `json:"max"`
	Buckets []histBkt `json:"buckets,omitempty"`
}

type histBkt struct {
	V int    `json:"v"`
	N uint64 `json:"n"`
}

// MarshalJSON encodes the histogram deterministically (buckets ascending).
func (h *Histogram) MarshalJSON() ([]byte, error) {
	w := histWire{Total: h.total, Sum: h.sum, Max: h.max}
	for _, v := range h.sortedKeys() {
		w.Buckets = append(w.Buckets, histBkt{V: v, N: h.count(v)})
	}
	return json.Marshal(w)
}

// UnmarshalJSON restores a histogram from its wire form, setting the
// internal fields directly so the float sum (and therefore every derived
// mean) matches the encoder's exactly.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		return nil
	}
	var w histWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("stats: histogram: %w", err)
	}
	*h = Histogram{total: w.Total, sum: w.Sum, max: w.Max}
	var bucketTotal uint64
	for _, b := range w.Buckets {
		if b.V >= 0 && b.V < maxDense {
			if b.V >= len(h.dense) {
				h.growDense(b.V)
			}
			h.dense[b.V] = b.N
		} else {
			if h.sparse == nil {
				h.sparse = make(map[int]uint64)
			}
			h.sparse[b.V] = b.N
		}
		bucketTotal += b.N
	}
	if bucketTotal != w.Total {
		return fmt.Errorf("stats: histogram: bucket counts sum to %d, header says %d", bucketTotal, w.Total)
	}
	return nil
}
