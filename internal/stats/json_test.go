package stats

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := &Histogram{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10_000; i++ {
		h.Add(rng.Intn(128))
	}
	// Sparse territory, including negatives.
	h.Add(maxDense + 17)
	h.Add(-3)
	h.AddN(maxDense+1000, 5)

	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var got Histogram
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.total != h.total || got.sum != h.sum || got.max != h.max {
		t.Fatalf("scalars differ: got {%d %v %d} want {%d %v %d}",
			got.total, got.sum, got.max, h.total, h.sum, h.max)
	}
	for _, v := range h.sortedKeys() {
		if got.count(v) != h.count(v) {
			t.Fatalf("count(%d) = %d, want %d", v, got.count(v), h.count(v))
		}
	}
	if !reflect.DeepEqual(got.sortedKeys(), h.sortedKeys()) {
		t.Fatal("occupied buckets differ after round trip")
	}
	// Derived statistics must be bit-identical (cached results must
	// render exactly like fresh ones).
	if got.Mean() != h.Mean() || got.Percentile(0.99) != h.Percentile(0.99) || got.CDFAt(64) != h.CDFAt(64) {
		t.Fatal("derived statistics differ after round trip")
	}
	// And the encoding itself is deterministic.
	b2, _ := json.Marshal(&got)
	if string(b) != string(b2) {
		t.Fatal("re-encoding differs")
	}
}

func TestHistogramJSONEmptyAndNull(t *testing.T) {
	var h Histogram
	b, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var got Histogram
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Total() != 0 || got.Maximum() != 0 {
		t.Fatalf("empty round trip: %+v", got)
	}
	if err := json.Unmarshal([]byte("null"), &got); err != nil {
		t.Fatalf("null: %v", err)
	}
}

func TestHistogramJSONRejectsInconsistentTotal(t *testing.T) {
	var h Histogram
	err := json.Unmarshal([]byte(`{"total":5,"sum":2,"max":2,"buckets":[{"v":2,"n":1}]}`), &h)
	if err == nil {
		t.Fatal("inconsistent bucket total accepted")
	}
}
