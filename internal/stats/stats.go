package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a simple named event counter.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Mean accumulates a running arithmetic mean.
type Mean struct {
	sum float64
	n   uint64
}

// Add records one sample.
func (m *Mean) Add(x float64) {
	m.sum += x
	m.n++
}

// Value returns the mean of the samples recorded so far (0 when empty).
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// N returns the number of samples.
func (m *Mean) N() uint64 { return m.n }

// GMean returns the geometric mean of xs, ignoring non-positive entries.
// The paper reports per-benchmark slowdowns summarized by gmean.
func GMean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// AMean returns the arithmetic mean of xs (0 when empty).
func AMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs (0 when empty).
func Max(xs []float64) float64 {
	max := 0.0
	for i, x := range xs {
		if i == 0 || x > max {
			max = x
		}
	}
	return max
}

// Histogram counts integer-valued samples (e.g. queue occupancies, burst
// sizes, inter-event distances). Buckets are exact values. Small
// non-negative values — the overwhelming majority: queue occupancies and
// event distances cluster near zero — live in a dense slice so the
// per-cycle Add on the simulator's hot path is an array increment with no
// map hashing; rare large or negative values fall back to a sparse map.
type Histogram struct {
	dense  []uint64       // counts for values in [0, len(dense))
	sparse map[int]uint64 // lazily allocated overflow buckets
	total  uint64
	sum    float64
	max    int
}

// maxDense bounds the dense bucket array; values at or beyond it (or
// negative) go to the sparse map. 64K entries cover the deepest occupancy
// the experiments probe (32K) with one 512 KB array worst-case, and the
// array only grows to the largest value actually seen.
const maxDense = 1 << 16

// NewHistogram returns an empty histogram. No storage is allocated until
// the first sample.
func NewHistogram() *Histogram {
	return &Histogram{}
}

// Add records one sample of value v.
func (h *Histogram) Add(v int) {
	if v >= 0 && v < maxDense {
		if v >= len(h.dense) {
			h.growDense(v)
		}
		h.dense[v]++
	} else {
		if h.sparse == nil {
			h.sparse = make(map[int]uint64)
		}
		h.sparse[v]++
	}
	h.total++
	h.sum += float64(v)
	if v > h.max {
		h.max = v
	}
}

// AddN records n samples of value v in one step. It is exactly equivalent
// to calling Add(v) n times — counts are integral and the running sum only
// ever accumulates integer-valued terms, so the bulk update is bit-exact —
// and exists so the fast-forward kernel can account a span of quiescent
// cycles without walking them (see internal/sim).
func (h *Histogram) AddN(v int, n uint64) {
	if n == 0 {
		return
	}
	if v >= 0 && v < maxDense {
		if v >= len(h.dense) {
			h.growDense(v)
		}
		h.dense[v] += n
	} else {
		if h.sparse == nil {
			h.sparse = make(map[int]uint64)
		}
		h.sparse[v] += n
	}
	h.total += n
	h.sum += float64(v) * float64(n)
	if v > h.max {
		h.max = v
	}
}

// growDense extends the dense array to cover v (amortized: capacity
// doubles, starting at 64).
func (h *Histogram) growDense(v int) {
	n := len(h.dense) * 2
	if n < 64 {
		n = 64
	}
	for n <= v {
		n *= 2
	}
	if n > maxDense {
		n = maxDense
	}
	bigger := make([]uint64, n)
	copy(bigger, h.dense)
	h.dense = bigger
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() uint64 { return h.total }

// Maximum returns the largest sample seen (0 when empty).
func (h *Histogram) Maximum() int { return h.max }

// Mean returns the mean sample value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// count returns the number of samples recorded with exact value v.
func (h *Histogram) count(v int) uint64 {
	if v >= 0 && v < len(h.dense) {
		return h.dense[v]
	}
	return h.sparse[v]
}

// CDFAt returns the fraction of samples with value <= v.
func (h *Histogram) CDFAt(v int) float64 {
	if h.total == 0 {
		return 0
	}
	var cum uint64
	for i := 0; i < len(h.dense) && i <= v; i++ {
		cum += h.dense[i]
	}
	for val, n := range h.sparse {
		if val <= v {
			cum += n
		}
	}
	return float64(cum) / float64(h.total)
}

// Percentile returns the smallest value v such that CDFAt(v) >= p, for
// p in (0, 1].
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	keys := h.sortedKeys()
	target := uint64(math.Ceil(p * float64(h.total)))
	var cum uint64
	for _, k := range keys {
		cum += h.count(k)
		if cum >= target {
			return k
		}
	}
	return keys[len(keys)-1]
}

// CDF returns (value, cumulative fraction) pairs at the given probe points.
type CDFPoint struct {
	Value int
	Frac  float64
}

// CDFAtPoints evaluates the CDF at each probe value, in order.
func (h *Histogram) CDFAtPoints(points []int) []CDFPoint {
	out := make([]CDFPoint, 0, len(points))
	keys := h.sortedKeys()
	for _, p := range points {
		var cum uint64
		for _, k := range keys {
			if k > p {
				break
			}
			cum += h.count(k)
		}
		frac := 0.0
		if h.total > 0 {
			frac = float64(cum) / float64(h.total)
		}
		out = append(out, CDFPoint{Value: p, Frac: frac})
	}
	return out
}

// sortedKeys returns every value with a nonzero count, ascending: the
// occupied dense indices merged with the sparse keys.
func (h *Histogram) sortedKeys() []int {
	keys := make([]int, 0, len(h.sparse))
	for k := range h.sparse {
		keys = append(keys, k)
	}
	for v, n := range h.dense {
		if n > 0 {
			keys = append(keys, v)
		}
	}
	sort.Ints(keys)
	return keys
}

// String renders the histogram compactly for debugging.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hist{n=%d mean=%.2f max=%d}", h.total, h.Mean(), h.max)
	return b.String()
}

// Utilization tracks how simulated cycles split across a fixed set of
// mutually exclusive states (e.g. app-idle / monitor-idle / both-busy).
type Utilization struct {
	names  []string
	counts []uint64
	total  uint64
}

// NewUtilization creates a tracker over the given state names.
func NewUtilization(names ...string) *Utilization {
	return &Utilization{names: names, counts: make([]uint64, len(names))}
}

// Record attributes one cycle to state index i.
func (u *Utilization) Record(i int) {
	u.counts[i]++
	u.total++
}

// RecordN attributes n cycles to state index i in one step — the bulk
// counterpart of Record used when the fast-forward kernel skips a span of
// cycles whose state classification is frozen.
func (u *Utilization) RecordN(i int, n uint64) {
	u.counts[i] += n
	u.total += n
}

// Fraction returns the share of cycles spent in state i (0 when no cycles).
func (u *Utilization) Fraction(i int) float64 {
	if u.total == 0 {
		return 0
	}
	return float64(u.counts[i]) / float64(u.total)
}

// Names returns the state names in index order.
func (u *Utilization) Names() []string { return u.names }

// Total returns the number of recorded cycles.
func (u *Utilization) Total() uint64 { return u.total }

// Ratio is a convenience for safe division: a/b, or 0 when b == 0.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
