package spans

import (
	"bytes"
	"io"
	"strconv"
)

// WriteJSONL writes the trace one span per line, in emission order, in the
// same spirit as obs.WriteTimeline: a self-describing stream that line-
// oriented tools (jq, grep, sort) can consume without loading the whole
// trace. Field order is fixed and serialization is hand-rolled, so the
// output is byte-deterministic for a deterministic span stream.
//
// Line shape:
//
//	{"trace":"r-000001","domain":"cycle","track":"app0","name":"queue.meq.full","kind":"span","start":812,"dur":40,"args":{"occupancy":32}}
func WriteJSONL(w io.Writer, t *Trace) error {
	var buf bytes.Buffer
	tracks := t.Tracks()
	id := t.ID()
	for _, s := range t.Spans() {
		buf.Reset()
		buf.WriteString(`{"trace":`)
		appendJSONString(&buf, id)
		buf.WriteString(`,"domain":`)
		appendJSONString(&buf, s.Domain.String())
		buf.WriteString(`,"track":`)
		trackName := "wall"
		if int(s.Track) < len(tracks) {
			trackName = tracks[s.Track]
		}
		appendJSONString(&buf, trackName)
		buf.WriteString(`,"name":`)
		appendJSONString(&buf, s.Name)
		buf.WriteString(`,"kind":`)
		if s.Kind == KindInstant {
			buf.WriteString(`"instant"`)
		} else {
			buf.WriteString(`"span"`)
		}
		buf.WriteString(`,"start":`)
		buf.WriteString(strconv.FormatUint(s.Start, 10))
		buf.WriteString(`,"dur":`)
		buf.WriteString(strconv.FormatUint(s.Dur, 10))
		buf.WriteString(`,"args":{`)
		wrote := false
		for _, a := range s.Args {
			if a.Key == "" {
				continue
			}
			if wrote {
				buf.WriteByte(',')
			}
			wrote = true
			appendJSONString(&buf, a.Key)
			buf.WriteByte(':')
			if a.Str != "" {
				appendJSONString(&buf, a.Str)
			} else {
				buf.WriteString(strconv.FormatUint(a.Num, 10))
			}
		}
		buf.WriteString("}}\n")
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}
