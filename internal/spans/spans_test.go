package spans

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"fade/internal/obs"
)

func TestRingRetainsNewestAndCountsDrops(t *testing.T) {
	tr := New("t", 4)
	track := tr.NewTrack("c0")
	for i := 0; i < 10; i++ {
		tr.CycleInstant(track, NameCheckpoint, uint64(i), None, None)
	}
	if got := tr.Emitted(); got != 10 {
		t.Fatalf("Emitted = %d, want 10", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	ss := tr.Spans()
	for i, s := range ss {
		if want := uint64(6 + i); s.Start != want {
			t.Fatalf("span %d start = %d, want %d (oldest-first, newest retained)", i, s.Start, want)
		}
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	tr.Wall(NameServeAdmit, time.Now(), time.Now(), None, None)
	tr.WallInstant(NameServeCacheHit, time.Now(), None, None)
	tr.CycleSpan(tr.NewTrack("x"), NameFFJump, 0, 10, None, None)
	tr.CycleInstant(0, NameCheckpoint, 5, None, None)
	if tr.ID() != "" || tr.Len() != 0 || tr.Cap() != 0 || tr.Emitted() != 0 || tr.Dropped() != 0 {
		t.Fatalf("nil trace leaked state: id=%q len=%d", tr.ID(), tr.Len())
	}
	if tr.Spans() != nil || tr.Tracks() != nil {
		t.Fatalf("nil trace returned spans/tracks")
	}
	var buf bytes.Buffer
	if err := WriteChromeJSON(&buf, tr); err != nil {
		t.Fatalf("WriteChromeJSON(nil): %v", err)
	}
	if err := ValidateChromeJSON(buf.Bytes()); err != nil {
		t.Fatalf("empty trace export invalid: %v", err)
	}
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatalf("WriteJSONL(nil): %v", err)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(empty) = %v, want nil", got)
	}
	if got := FromContext(nil); got != nil { //nolint:staticcheck // nil ctx tolerated by contract
		t.Fatalf("FromContext(nil) = %v, want nil", got)
	}
	tr := New("r-000001", 0)
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext returned %v, want the installed trace", got)
	}
	if ctx2 := NewContext(context.Background(), nil); FromContext(ctx2) != nil {
		t.Fatalf("NewContext(nil trace) installed a value")
	}
}

func buildSample() *Trace {
	tr := New("r-000042", 16)
	sched := tr.NewTrack("sim/sched")
	core := tr.NewTrack("sim/app0")
	epoch := tr.Epoch()
	tr.Wall(NameServeAdmit, epoch, epoch.Add(120*time.Microsecond), Str("tenant", "acme"), None)
	tr.WallInstant(NameServeCacheHit, epoch.Add(200*time.Microsecond), None, None)
	tr.CycleSpan(sched, NameFFJump, 100, 180, Str("reason", "wake"), Num("sleeper", 3))
	tr.CycleSpan(core, NameMEQFull, 812, 852, Num("occupancy", 32), None)
	tr.CycleInstant(core, NameFaultDrop, 900, None, None)
	tr.CycleSpan(sched, NameRun, 0, 1000, Num("cores", 1), None)
	return tr
}

func TestChromeExportDeterministicAndValid(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChromeJSON(&a, buildSample()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeJSON(&b, buildSample()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same span stream exported differently:\n%s\n---\n%s", a.Bytes(), b.Bytes())
	}
	if err := ValidateChromeJSON(a.Bytes()); err != nil {
		t.Fatalf("export failed its own validator: %v", err)
	}
	out := a.String()
	for _, want := range []string{
		`"name":"process_name"`, `"sim/sched"`, `"sim/app0"`,
		`"ph":"X"`, `"ph":"i"`, `"reason":"wake"`, `"sleeper":3`,
		`"traceId":"r-000042"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %s:\n%s", want, out)
		}
	}
}

func TestJSONLExportDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteJSONL(&a, buildSample()); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, buildSample()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same span stream exported differently")
	}
	lines := strings.Split(strings.TrimSuffix(a.String(), "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6:\n%s", len(lines), a.String())
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, `{"trace":"r-000042","domain":`) {
			t.Fatalf("line missing trace/domain prefix: %s", l)
		}
	}
	if !strings.Contains(a.String(), `"track":"sim/app0","name":"queue.meq.full","kind":"span","start":812,"dur":40,"args":{"occupancy":32}`) {
		t.Fatalf("JSONL line shape drifted:\n%s", a.String())
	}
}

func TestValidatorRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"traceEvents":[`,
		"no array":      `{"events":[]}`,
		"missing name":  `{"traceEvents":[{"ph":"X","ts":1,"dur":1,"pid":1,"tid":1}]}`,
		"bad phase":     `{"traceEvents":[{"name":"x","ph":"Q","ts":1,"pid":1,"tid":1}]}`,
		"missing ts":    `{"traceEvents":[{"name":"x","ph":"i","pid":1,"tid":1}]}`,
		"missing dur":   `{"traceEvents":[{"name":"x","ph":"X","ts":1,"pid":1,"tid":1}]}`,
		"missing pid":   `{"traceEvents":[{"name":"x","ph":"X","ts":1,"dur":1,"tid":1}]}`,
		"negative time": `{"traceEvents":[{"name":"x","ph":"i","ts":-5,"pid":1,"tid":1}]}`,
	}
	for label, doc := range cases {
		if err := ValidateChromeJSON([]byte(doc)); err == nil {
			t.Errorf("%s: validator accepted %s", label, doc)
		}
	}
	if err := ValidateChromeJSON([]byte(`{"traceEvents":[]}`)); err != nil {
		t.Errorf("empty event list rejected: %v", err)
	}
}

func TestCollectorMetrics(t *testing.T) {
	tr := New("t", 2)
	tr.CycleInstant(0, NameCheckpoint, 1, None, None)
	tr.CycleInstant(0, NameCheckpoint, 2, None, None)
	tr.CycleInstant(0, NameCheckpoint, 3, None, None)
	reg := obs.NewRegistry()
	reg.Register(tr.Collector())
	snap := reg.Snapshot()
	want := map[string]float64{
		"spans.emitted":        3,
		"spans.dropped":        1,
		"spans.ring.occupancy": 2,
		"spans.ring.capacity":  2,
	}
	for k, v := range want {
		got, ok := snap.Get(k)
		if !ok || got != v {
			t.Errorf("%s = %v (present=%v), want %v", k, got, ok, v)
		}
	}
}

func TestConcurrentEmission(t *testing.T) {
	tr := New("t", 128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			track := tr.NewTrack("g")
			for i := 0; i < 1000; i++ {
				tr.CycleInstant(track, NameCheckpoint, uint64(i), None, None)
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Emitted(); got != 8000 {
		t.Fatalf("Emitted = %d, want 8000", got)
	}
	if got := tr.Len(); got != 128 {
		t.Fatalf("Len = %d, want 128", got)
	}
}

func TestKnownNames(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range Names {
		if seen[n] {
			t.Errorf("duplicate registered name %q", n)
		}
		seen[n] = true
		if !Known(n) {
			t.Errorf("Known(%q) = false", n)
		}
		if !obs.ValidName(n) {
			t.Errorf("span name %q violates the obs name grammar", n)
		}
	}
	if Known("no.such.span") {
		t.Errorf("Known accepted an unregistered name")
	}
}
