package spans

// Documentation coverage: docs/TRACING.md must document every registered
// span name — the names are the tracing contract, so an undocumented name
// is a missing piece of the contract (mirroring the SERVING.md and
// METRICS.md coverage tests).

import (
	"os"
	"strings"
	"testing"
)

func TestTracingDocsCoverage(t *testing.T) {
	docBytes, err := os.ReadFile("../../docs/TRACING.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(docBytes)

	for _, name := range Names {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("span name %q is not documented in docs/TRACING.md", name)
		}
	}
	for _, metric := range []string{"spans.emitted", "spans.dropped", "spans.ring.occupancy", "spans.ring.capacity"} {
		if !strings.Contains(doc, "`"+metric+"`") {
			t.Errorf("metric %q is not documented in docs/TRACING.md", metric)
		}
	}
}
