package spans

import (
	"bytes"
	"io"
	"strconv"
)

// Chrome trace-event export. The serialization is hand-rolled the same way
// as obs.Snapshot.MarshalJSON: fixed field order, strconv formatting, no
// map iteration — so a given trace always exports to the same bytes, which
// is what the golden fixtures pin.
//
// Track mapping: track i becomes pid i+1 (the trace-event format groups by
// process, and separate pids render as separate top-level swimlanes in
// Perfetto). The wall domain is pid 1; each cycle-domain track — one per
// simulated core plus one for the scheduler — gets its own pid, named by a
// process_name metadata event. Cycle stamps map 1 cycle -> 1 µs, the
// trace-event time unit, so cycle-domain durations read directly as cycle
// counts in the viewer.

// WriteChromeJSON writes the trace as a Chrome trace-event JSON object
// ({"traceEvents":[...]}), loadable in Perfetto or chrome://tracing.
func WriteChromeJSON(w io.Writer, t *Trace) error {
	var buf bytes.Buffer
	buf.WriteString(`{"traceEvents":[`)
	first := true
	sep := func() {
		if !first {
			buf.WriteByte(',')
		}
		first = false
	}
	for i, name := range t.Tracks() {
		sep()
		buf.WriteString(`{"name":"process_name","ph":"M","pid":`)
		buf.WriteString(strconv.Itoa(i + 1))
		buf.WriteString(`,"tid":1,"args":{"name":`)
		appendJSONString(&buf, name)
		buf.WriteString(`}}`)
	}
	for _, s := range t.Spans() {
		sep()
		buf.WriteString(`{"name":`)
		appendJSONString(&buf, s.Name)
		if s.Kind == KindInstant {
			buf.WriteString(`,"ph":"i","s":"t"`)
		} else {
			buf.WriteString(`,"ph":"X"`)
		}
		buf.WriteString(`,"ts":`)
		buf.WriteString(strconv.FormatUint(s.Start, 10))
		if s.Kind == KindSpan {
			buf.WriteString(`,"dur":`)
			buf.WriteString(strconv.FormatUint(s.Dur, 10))
		}
		buf.WriteString(`,"pid":`)
		buf.WriteString(strconv.Itoa(int(s.Track) + 1))
		buf.WriteString(`,"tid":1,"args":{"domain":`)
		appendJSONString(&buf, s.Domain.String())
		for _, a := range s.Args {
			if a.Key == "" {
				continue
			}
			buf.WriteByte(',')
			appendJSONString(&buf, a.Key)
			buf.WriteByte(':')
			if a.Str != "" {
				appendJSONString(&buf, a.Str)
			} else {
				buf.WriteString(strconv.FormatUint(a.Num, 10))
			}
		}
		buf.WriteString(`}}`)
	}
	buf.WriteString(`],"otherData":{"traceId":`)
	appendJSONString(&buf, t.ID())
	buf.WriteString(`}}`)
	buf.WriteByte('\n')
	_, err := w.Write(buf.Bytes())
	return err
}

// appendJSONString writes s as a JSON string literal. Escaping is minimal
// and explicit (quote, backslash, control characters) so the output never
// depends on encoder internals.
func appendJSONString(buf *bytes.Buffer, s string) {
	const hex = "0123456789abcdef"
	buf.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf.WriteByte('\\')
			buf.WriteByte(c)
		case c < 0x20:
			buf.WriteString(`\u00`)
			buf.WriteByte(hex[c>>4])
			buf.WriteByte(hex[c&0xf])
		default:
			buf.WriteByte(c)
		}
	}
	buf.WriteByte('"')
}
