package spans

// Span names are part of the tracing contract: stable, dotted, lowercase,
// matching the obs metric-name grammar (^[a-z0-9_.]+$). Every emitter in
// the repository uses one of the constants below, the name-coverage test
// asserts each is documented in docs/TRACING.md, and the golden trace
// tests assert emitted traces use only registered names. Per-core identity
// is carried by the span's track, never folded into the name.
const (
	// NameRun — cycle domain, scheduler track: the whole simulated run,
	// cycle 0 to the cycle the termination predicate held (or the run
	// aborted).
	NameRun = "sim.run"
	// NameFFJump — cycle domain, scheduler track: one event-driven
	// fast-forward jump over a quiescent span. Args: "reason" (why the
	// jump ended where it did: "wake", "cap", or "timeline") and "sleeper"
	// (registration index of the earliest-waking component).
	NameFFJump = "sim.ff.jump"
	// NameCheckpoint — cycle domain, scheduler track, instant: a
	// cancellation-checkpoint poll (emitted only when a context or
	// wall-clock deadline is armed, mirroring when polls happen).
	NameCheckpoint = "sim.checkpoint"
	// NameWarmBoundary — cycle domain, scheduler track, instant: the first
	// cycle at which the warm-up predicate held.
	NameWarmBoundary = "sim.warm_boundary"
	// NameAbort — cycle domain, scheduler track, instant: the run aborted.
	// Arg "reason" is "canceled", "cycle_cap", or "invariant".
	NameAbort = "sim.abort"

	// NameFaultStall — cycle domain, core track: one monitor-stall burst
	// (the injected freeze interval of the core's monitor thread).
	NameFaultStall = "fault.stall"
	// NameFaultMEQThrottle — cycle domain, core track: one MEQ-pressure
	// burst shrinking the event queue's effective capacity.
	NameFaultMEQThrottle = "fault.meq_throttle"
	// NameFaultUFQThrottle — cycle domain, core track: one UFQ-pressure
	// burst.
	NameFaultUFQThrottle = "fault.ufq_throttle"
	// NameFaultDrop — cycle domain, core track, instant: the drop probe
	// discarded one monitored event in flight.
	NameFaultDrop = "fault.drop"
	// NameFaultCorrupt — cycle domain, core track, instant: the corruption
	// probe flipped metadata bits.
	NameFaultCorrupt = "fault.corrupt"

	// NameMEQFull — cycle domain, core track: a full episode of the
	// monitored event queue — the interval during which pushes are
	// rejected and the application core backpressures. Arg "occupancy" is
	// the queue depth at episode start.
	NameMEQFull = "queue.meq.full"
	// NameMEQDrain — cycle domain, core track: the drain phase after a
	// full episode, from the first free slot until the queue next empties.
	NameMEQDrain = "queue.meq.drain"
	// NameUFQFull — cycle domain, core track: a full episode of the
	// unfiltered event queue.
	NameUFQFull = "queue.ufq.full"
	// NameUFQDrain — cycle domain, core track: the UFQ's post-full drain
	// phase.
	NameUFQDrain = "queue.ufq.drain"
	// NameMonBehind — cycle domain, core track: a monitor catch-up
	// interval — the application core has retired its last instruction
	// but events are still queued or in flight on the monitoring side.
	NameMonBehind = "mon.behind"

	// NameServeAdmit — wall domain: request parse, validation, and
	// admission of one submission. Arg "tenant".
	NameServeAdmit = "serve.admit"
	// NameServeQueueWait — wall domain: the run's time in the fair
	// admission queue, submission to dequeue.
	NameServeQueueWait = "serve.queue.wait"
	// NameServeSchedule — wall domain: dequeue to execution start (the
	// wait for a worker-pool slot).
	NameServeSchedule = "serve.schedule"
	// NameServeExecute — wall domain: the simulation itself (or the cache
	// lookup that replaced it). Args "cached" (0/1).
	NameServeExecute = "serve.execute"
	// NameServeEncode — wall domain: result-view encoding and cache store.
	NameServeEncode = "serve.encode"
	// NameServeCacheHit — wall domain, instant: the result cache served
	// this run.
	NameServeCacheHit = "serve.cache.hit"

	// NameCLIRun — wall domain: a CLI invocation's end-to-end span
	// (fadesim's single run, fadebench's whole sweep).
	NameCLIRun = "cli.run"
	// NameBenchExperiment — wall domain: one fadebench experiment. Arg
	// "exp" is the experiment id.
	NameBenchExperiment = "bench.experiment"
	// NameParCell — wall domain: one parallel sweep cell executing on a
	// par worker. Arg "cell" is the cell index.
	NameParCell = "par.cell"
)

// Names lists every registered span name; docs/TRACING.md documents each
// and the golden trace tests admit no others.
var Names = []string{
	NameRun, NameFFJump, NameCheckpoint, NameWarmBoundary, NameAbort,
	NameFaultStall, NameFaultMEQThrottle, NameFaultUFQThrottle,
	NameFaultDrop, NameFaultCorrupt,
	NameMEQFull, NameMEQDrain, NameUFQFull, NameUFQDrain, NameMonBehind,
	NameServeAdmit, NameServeQueueWait, NameServeSchedule,
	NameServeExecute, NameServeEncode, NameServeCacheHit,
	NameCLIRun, NameBenchExperiment, NameParCell,
}

// Known reports whether name is a registered span name.
func Known(name string) bool {
	for _, n := range Names {
		if n == name {
			return true
		}
	}
	return false
}
