package spans

import (
	"encoding/json"
	"fmt"
)

// ValidateChromeJSON checks that data is a well-formed Chrome trace-event
// JSON object of the dialect WriteChromeJSON emits: a traceEvents array
// whose every event has a non-empty name, a known phase ("X", "i", or
// "M"), integer pid/tid, a timestamp on duration and instant events, and a
// duration on "X" events. The CI trace-smoke job (scripts/tracecheck) and
// the exporter tests share this as the single definition of "loadable".
func ValidateChromeJSON(data []byte) error {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("trace: missing traceEvents array")
	}
	for i, raw := range doc.TraceEvents {
		var ev struct {
			Name *string  `json:"name"`
			Ph   *string  `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  *float64 `json:"pid"`
			Tid  *float64 `json:"tid"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		if ev.Name == nil || *ev.Name == "" {
			return fmt.Errorf("trace: event %d: missing name", i)
		}
		if ev.Ph == nil {
			return fmt.Errorf("trace: event %d (%s): missing ph", i, *ev.Name)
		}
		switch *ev.Ph {
		case "X", "i", "M":
		default:
			return fmt.Errorf("trace: event %d (%s): unknown phase %q", i, *ev.Name, *ev.Ph)
		}
		if ev.Pid == nil || ev.Tid == nil {
			return fmt.Errorf("trace: event %d (%s): missing pid/tid", i, *ev.Name)
		}
		if *ev.Ph != "M" {
			if ev.Ts == nil || *ev.Ts < 0 {
				return fmt.Errorf("trace: event %d (%s): missing or negative ts", i, *ev.Name)
			}
		}
		if *ev.Ph == "X" {
			if ev.Dur == nil || *ev.Dur < 0 {
				return fmt.Errorf("trace: event %d (%s): missing or negative dur", i, *ev.Name)
			}
		}
	}
	return nil
}
