package spans

import (
	"context"
	"sync"
	"time"

	"fade/internal/obs"
)

// DefaultCapacity is the ring size selected when New is given a
// non-positive capacity: large enough to hold every span of a typical run,
// small enough that a per-run trace costs well under a megabyte.
const DefaultCapacity = 8192

// Domain is a span's clock domain.
type Domain uint8

const (
	// Wall spans are stamped in microseconds since the trace epoch.
	Wall Domain = iota
	// Cycle spans are stamped in simulated cycles.
	Cycle
)

// String returns the domain's wire name.
func (d Domain) String() string {
	if d == Cycle {
		return "cycle"
	}
	return "wall"
}

// Kind distinguishes duration spans from point events.
type Kind uint8

const (
	// KindSpan is a complete interval [Start, Start+Dur).
	KindSpan Kind = iota
	// KindInstant is a point event at Start (Dur is zero).
	KindInstant
)

// Arg is one key-value span annotation. A zero Arg (empty Key) is absent;
// Str empty means the value is the number Num.
type Arg struct {
	Key string
	Str string
	Num uint64
}

// Num returns a numeric argument.
func Num(key string, v uint64) Arg { return Arg{Key: key, Num: v} }

// Str returns a string argument.
func Str(key, v string) Arg { return Arg{Key: key, Str: v} }

// None is the absent argument.
var None Arg

// Span is one trace entry. The struct is flat and pointer-free so the ring
// is a single allocation for the life of the trace.
type Span struct {
	Name   string
	Domain Domain
	Kind   Kind
	// Track is the swimlane index: WallTrack for wall-clock spans, a
	// NewTrack index for cycle-domain spans (one per simulated core plus
	// one for the scheduler).
	Track int32
	// Start is microseconds since the trace epoch (wall domain) or the
	// starting cycle (cycle domain).
	Start uint64
	// Dur is the span length in the domain's unit; 0 for instants.
	Dur uint64
	// Args holds up to two annotations; unused slots have an empty Key.
	Args [2]Arg
}

// End returns the first stamp past the span.
func (s *Span) End() uint64 { return s.Start + s.Dur }

// WallTrack is the track index of the wall-clock domain. Cycle-domain
// emitters allocate their tracks with NewTrack.
const WallTrack int32 = 0

// Trace is a bounded, run-scoped span ring. All methods are safe for
// concurrent use and safe on a nil receiver (a nil trace records nothing),
// so emitters guard with a single nil check.
type Trace struct {
	id    string
	epoch time.Time

	mu      sync.Mutex
	buf     []Span
	head    int // index of the oldest retained span
	size    int
	emitted uint64
	dropped uint64
	tracks  []string
}

// New returns an empty trace identified by id holding at most capacity
// spans (capacity <= 0 selects DefaultCapacity). The wall-clock epoch is
// the construction time.
func New(id string, capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Trace{
		id:     id,
		epoch:  time.Now(),
		buf:    make([]Span, capacity),
		tracks: []string{"wall"},
	}
}

// ID returns the trace identifier (the run ID on the serving path).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Epoch returns the trace's wall-clock zero point.
func (t *Trace) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// NewTrack registers a named cycle-domain swimlane and returns its index.
// Track registration order must be deterministic for a deterministic
// export; the simulator registers its tracks at run setup, in core order.
func (t *Trace) NewTrack(name string) int32 {
	if t == nil {
		return WallTrack
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tracks = append(t.tracks, name)
	return int32(len(t.tracks) - 1)
}

// Tracks returns the track names, index-aligned (index 0 is the wall
// track).
func (t *Trace) Tracks() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.tracks))
	copy(out, t.tracks)
	return out
}

// push appends one span, overwriting the oldest on overflow.
func (t *Trace) push(s Span) {
	t.mu.Lock()
	t.emitted++
	if t.size == len(t.buf) {
		t.buf[t.head] = s
		t.head = (t.head + 1) % len(t.buf)
		t.dropped++
	} else {
		t.buf[(t.head+t.size)%len(t.buf)] = s
		t.size++
	}
	t.mu.Unlock()
}

// Wall records a wall-clock span from start to end. Ends before starts (or
// stamps before the epoch) clamp to zero-length rather than underflowing.
func (t *Trace) Wall(name string, start, end time.Time, a0, a1 Arg) {
	if t == nil {
		return
	}
	us := t.wallUS(start)
	durUS := uint64(0)
	if end.After(start) {
		durUS = uint64(end.Sub(start).Microseconds())
	}
	t.push(Span{Name: name, Domain: Wall, Kind: KindSpan, Track: WallTrack,
		Start: us, Dur: durUS, Args: [2]Arg{a0, a1}})
}

// WallInstant records a wall-clock point event.
func (t *Trace) WallInstant(name string, at time.Time, a0, a1 Arg) {
	if t == nil {
		return
	}
	t.push(Span{Name: name, Domain: Wall, Kind: KindInstant, Track: WallTrack,
		Start: t.wallUS(at), Args: [2]Arg{a0, a1}})
}

func (t *Trace) wallUS(at time.Time) uint64 {
	if !at.After(t.epoch) {
		return 0
	}
	return uint64(at.Sub(t.epoch).Microseconds())
}

// CycleSpan records a cycle-domain span covering cycles [from, to) on the
// given track. A to <= from records a zero-length span at from.
func (t *Trace) CycleSpan(track int32, name string, from, to uint64, a0, a1 Arg) {
	if t == nil {
		return
	}
	dur := uint64(0)
	if to > from {
		dur = to - from
	}
	t.push(Span{Name: name, Domain: Cycle, Kind: KindSpan, Track: track,
		Start: from, Dur: dur, Args: [2]Arg{a0, a1}})
}

// CycleInstant records a cycle-domain point event at the given cycle.
func (t *Trace) CycleInstant(track int32, name string, at uint64, a0, a1 Arg) {
	if t == nil {
		return
	}
	t.push(Span{Name: name, Domain: Cycle, Kind: KindInstant, Track: track,
		Start: at, Args: [2]Arg{a0, a1}})
}

// Spans returns the retained spans in emission order (oldest first).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, t.size)
	for i := 0; i < t.size; i++ {
		out[i] = t.buf[(t.head+i)%len(t.buf)]
	}
	return out
}

// Len returns the number of retained spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.size
}

// Cap returns the ring capacity.
func (t *Trace) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Emitted returns the lifetime span count, including dropped spans.
func (t *Trace) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitted
}

// Dropped returns how many spans the ring overwrote.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Collector exposes the trace's accounting under the spans.* name space
// (see docs/METRICS.md): spans.emitted, spans.dropped, and the ring's
// occupancy and capacity.
func (t *Trace) Collector() obs.Collector {
	return obs.CollectorFunc(func(s obs.Sink) {
		t.mu.Lock()
		emitted, dropped, size := t.emitted, t.dropped, t.size
		t.mu.Unlock()
		s.Counter("spans.emitted", emitted)
		s.Counter("spans.dropped", dropped)
		s.Gauge("spans.ring.occupancy", float64(size))
		s.Gauge("spans.ring.capacity", float64(len(t.buf)))
	})
}

// ctxKey is the context key type for trace propagation.
type ctxKey struct{}

// NewContext returns ctx carrying the trace. The trace rides the ordinary
// cancellation context from the serving layer through the worker pool into
// the simulator, so every layer of one run annotates the same timeline.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. The nil return is
// directly usable: every Trace method no-ops on a nil receiver.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// WithoutTrace shadows any trace carried by ctx: FromContext on the result
// returns nil while cancellation still flows. Layers that fan one traced
// request out into many sub-runs use it to keep the shared ring from being
// flooded (e.g. a sweep keeps its trace wall-domain by stripping it before
// each cell's simulator).
func WithoutTrace(ctx context.Context) context.Context {
	return context.WithValue(ctx, ctxKey{}, (*Trace)(nil))
}
