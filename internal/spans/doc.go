// Package spans is the run-scoped span tracer behind docs/TRACING.md: a
// zero-cost-when-disabled, byte-deterministic timeline of *episodes* — the
// when-and-why counterpart to internal/obs's how-much counters.
//
// A Trace is a fixed-capacity ring of spans in two clock domains:
//
//   - Wall-clock spans cover the serving path (admission, tenant-queue
//     wait, scheduling, execution, result encoding) and are stamped in
//     microseconds since the trace's epoch.
//   - Cycle-domain spans are emitted from inside the simulator —
//     fast-forward quiescence jumps, fault-injection bursts, queue
//     full/drain episodes, monitor catch-up intervals — and are stamped in
//     simulated cycles. For a fixed (seed, config) pair the cycle-domain
//     span stream is byte-identical run over run, pinned by golden
//     testdata in internal/system.
//
// Both domains share one trace ID, propagated through context.Context
// (NewContext/FromContext) from the serving layer through the worker pool
// into the simulator, so a single exported file tells the whole story of
// one run. Traces export as Chrome trace-event JSON (WriteChromeJSON),
// loadable in Perfetto or chrome://tracing — the cycle domain maps cycles
// to microseconds on one synthetic process track per core, so a CMP run
// renders as per-core swimlanes — and as JSONL (WriteJSONL), one span per
// line, consistent with the obs timeline sink.
//
// Hot-path discipline matches internal/obs: emission appends into a
// preallocated ring (no allocation), nothing is emitted per cycle — only
// per episode boundary — and a simulation run without a trace in its
// context pays exactly one nil check. Ring overflow drops the oldest span
// and counts the drop; the spans.* metrics (see docs/METRICS.md) expose
// emitted/dropped counts and ring occupancy through Collector.
package spans
