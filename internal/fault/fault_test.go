package fault

import (
	"testing"
)

func TestPlanEmpty(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Fatal("nil plan not empty")
	}
	if !(&Plan{Seed: 7}).Empty() {
		t.Fatal("seed-only plan not empty")
	}
	if (&Plan{EventDrop: &Drop{Rate: 0.1}}).Empty() {
		t.Fatal("plan with an injector reported empty")
	}
}

func TestPlanValidate(t *testing.T) {
	good := []*Plan{
		nil,
		{},
		{MonitorStall: &Stall{MeanGap: 1000, MeanDuration: 100}},
		{MEQPressure: &Pressure{MeanGap: 100, MeanDuration: 10, CapFactor: 0.5}},
		{EventDrop: &Drop{Rate: 0}},
		{EventDrop: &Drop{Rate: 1}},
		{MDCorruption: &Corrupt{MeanGap: 1}},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("good plan %d rejected: %v", i, err)
		}
	}
	bad := []*Plan{
		{MonitorStall: &Stall{MeanGap: 0, MeanDuration: 100}},
		{MonitorStall: &Stall{MeanGap: 100, MeanDuration: 0.5}},
		{MEQPressure: &Pressure{MeanGap: 100, MeanDuration: 10, CapFactor: 0}},
		{UFQPressure: &Pressure{MeanGap: 100, MeanDuration: 10, CapFactor: 1.5}},
		{UFQPressure: &Pressure{MeanGap: 0, MeanDuration: 10, CapFactor: 0.5}},
		{EventDrop: &Drop{Rate: -0.1}},
		{EventDrop: &Drop{Rate: 1.1}},
		{MDCorruption: &Corrupt{MeanGap: 0}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestStallSeverities(t *testing.T) {
	levels := StallSeverities()
	if len(levels) != 4 || levels[0] != "none" || levels[3] != "severe" {
		t.Fatalf("severity levels = %v", levels)
	}
	var prevDuty float64 = -1
	for _, level := range levels {
		p, ok := StallSeverity(level)
		if !ok {
			t.Fatalf("severity %q unknown", level)
		}
		duty := 0.0
		if p != nil {
			if err := p.Validate(); err != nil {
				t.Fatalf("severity %q invalid: %v", level, err)
			}
			s := p.MonitorStall
			duty = s.MeanDuration / (s.MeanGap + s.MeanDuration)
		}
		if duty <= prevDuty && level != "none" {
			t.Fatalf("severity %q duty cycle %v not increasing", level, duty)
		}
		prevDuty = duty
	}
	if _, ok := StallSeverity("apocalyptic"); ok {
		t.Fatal("unknown severity accepted")
	}
}

func TestNilEngineInjectsNothing(t *testing.T) {
	var e *Engine
	e.Tick(0)
	if e.MonStalled() || e.MEQCap() != 0 || e.UFQCap() != 0 || e.DropEvent() || e.Dropped() != 0 {
		t.Fatal("nil engine injected a fault")
	}
	if _, _, ok := e.TakeCorruption(); ok {
		t.Fatal("nil engine produced a corruption")
	}
	if NewEngine(nil, 1, 32, 16) != nil {
		t.Fatal("empty plan produced a live engine")
	}
	if NewEngine(&Plan{Seed: 9}, 1, 32, 16) != nil {
		t.Fatal("seed-only plan produced a live engine")
	}
}

// TestEngineDeterminism: the same (plan, seed) pair replays the exact same
// per-cycle fault schedule — the foundation of the byte-identical-metrics
// guarantee under injection.
func TestEngineDeterminism(t *testing.T) {
	plan := &Plan{
		MonitorStall: &Stall{MeanGap: 200, MeanDuration: 50},
		MEQPressure:  &Pressure{MeanGap: 300, MeanDuration: 40, CapFactor: 0.25},
		UFQPressure:  &Pressure{MeanGap: 250, MeanDuration: 30, CapFactor: 0.5},
		EventDrop:    &Drop{Rate: 0.01},
		MDCorruption: &Corrupt{MeanGap: 500},
	}
	type cycleState struct {
		stalled  bool
		meq, ufq int
		drop     bool
		corrOff  uint32
		corrMask byte
		corrOK   bool
	}
	run := func() []cycleState {
		e := NewEngine(plan, 42, 32, 16)
		var out []cycleState
		for c := uint64(0); c < 5000; c++ {
			e.Tick(c)
			st := cycleState{stalled: e.MonStalled(), meq: e.MEQCap(), ufq: e.UFQCap(), drop: e.DropEvent()}
			st.corrOff, st.corrMask, st.corrOK = e.TakeCorruption()
			out = append(out, st)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverged at cycle %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestEngineSeedsDecorrelate: different seeds produce different schedules.
func TestEngineSeedsDecorrelate(t *testing.T) {
	plan := &Plan{MonitorStall: &Stall{MeanGap: 100, MeanDuration: 20}}
	schedule := func(seed uint64) []bool {
		e := NewEngine(plan, seed, 32, 16)
		var out []bool
		for c := uint64(0); c < 2000; c++ {
			e.Tick(c)
			out = append(out, e.MonStalled())
		}
		return out
	}
	a, b := schedule(1), schedule(2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical stall schedules")
	}
}

// TestStreamSeparation: adding the drop injector must not perturb the stall
// schedule — each injector draws from its own RNG stream.
func TestStreamSeparation(t *testing.T) {
	stallOnly := &Plan{MonitorStall: &Stall{MeanGap: 100, MeanDuration: 20}}
	combined := &Plan{MonitorStall: &Stall{MeanGap: 100, MeanDuration: 20}, EventDrop: &Drop{Rate: 0.5}}
	schedule := func(p *Plan) []bool {
		e := NewEngine(p, 7, 32, 16)
		var out []bool
		for c := uint64(0); c < 2000; c++ {
			e.Tick(c)
			out = append(out, e.MonStalled())
			e.DropEvent() // draw from the drop stream when present
		}
		return out
	}
	a, b := schedule(stallOnly), schedule(combined)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("enabling the drop injector perturbed the stall schedule at cycle %d", i)
		}
	}
}

func TestThrottledCapFloorsAtOne(t *testing.T) {
	e := NewEngine(&Plan{MEQPressure: &Pressure{MeanGap: 1, MeanDuration: 1e9, CapFactor: 0.001}}, 3, 32, 16)
	for c := uint64(0); c < 100; c++ {
		e.Tick(c)
		if cap := e.MEQCap(); cap != 0 && cap < 1 {
			t.Fatalf("throttled cap %d below 1", cap)
		}
	}
}

func TestDropEventRespectsStartAndCounts(t *testing.T) {
	e := NewEngine(&Plan{EventDrop: &Drop{Rate: 1, Start: 10}}, 5, 32, 16)
	e.Tick(5)
	if e.DropEvent() {
		t.Fatal("drop fired before Start")
	}
	e.Tick(10)
	if !e.DropEvent() || !e.DropEvent() {
		t.Fatal("rate-1 drop did not fire after Start")
	}
	if e.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", e.Dropped())
	}
}

func TestTakeCorruptionConsumesAndNeverZeroMask(t *testing.T) {
	e := NewEngine(&Plan{MDCorruption: &Corrupt{MeanGap: 1}}, 11, 32, 16)
	fired := 0
	for c := uint64(0); c < 200; c++ {
		e.Tick(c)
		if _, mask, ok := e.TakeCorruption(); ok {
			fired++
			if mask == 0 {
				t.Fatal("corruption with zero mask (a no-op flip)")
			}
			if _, _, again := e.TakeCorruption(); again {
				t.Fatal("TakeCorruption did not consume the pending corruption")
			}
		}
	}
	if fired == 0 {
		t.Fatal("mean-gap-1 corruption never fired in 200 cycles")
	}
}

func TestFoldSeed(t *testing.T) {
	if FoldSeed(nil, 5, 0) != 5 {
		t.Fatal("nil plan did not borrow the run seed")
	}
	if FoldSeed(&Plan{Seed: 9}, 5, 0) != 9 {
		t.Fatal("plan seed did not take precedence")
	}
	if FoldSeed(nil, 5, 1) == FoldSeed(nil, 5, 2) {
		t.Fatal("cores 1 and 2 share an injector seed")
	}
}
