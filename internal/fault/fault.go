package fault

import "fmt"

// Plan describes the faults to inject into one run. A nil *Plan (or the
// zero Plan) injects nothing. Plans are pure descriptions — they carry no
// state and may be shared between runs and goroutines; each run derives its
// own Engine (and RNG streams) from the plan, so the same (seed, Plan) pair
// always reproduces the same perturbation schedule.
type Plan struct {
	// Seed seeds the injector RNG streams. 0 borrows the run's own seed,
	// so a default plan still decorrelates across experiment seeds.
	Seed uint64

	// MonitorStall freezes the monitor thread in bursts: the thread
	// receives no cycles while a burst is active (a slow or descheduled
	// software monitor), so unfiltered events back up through the UFQ into
	// the accelerator and, eventually, the application core.
	MonitorStall *Stall

	// MEQPressure temporarily shrinks the effective capacity of the
	// monitored event queue (bursty co-runners stealing queue SRAM,
	// paper §queue sizing stress).
	MEQPressure *Pressure

	// UFQPressure does the same for the unfiltered event queue.
	UFQPressure *Pressure

	// EventDrop silently discards monitored events at the MEQ boundary
	// with the given probability. The system must detect the loss: drops
	// are counted, surfaced under fault.*, and reconciled by the invariant
	// checker's event-conservation check.
	EventDrop *Drop

	// MDCorruption flips bits in shadow metadata at random intervals,
	// probing whether monitors and the checker observe perturbed state
	// rather than silently absorbing it.
	MDCorruption *Corrupt
}

// Stall parameterizes monitor-stall bursts. Inter-arrival gaps and burst
// durations are geometrically distributed around their means, matching the
// burst model used elsewhere in the trace generator.
type Stall struct {
	// MeanGap is the mean number of cycles between bursts (>= 1).
	MeanGap float64
	// MeanDuration is the mean burst length in cycles (>= 1).
	MeanDuration float64
	// Start is the first cycle at which a burst may begin.
	Start uint64
}

// Pressure parameterizes queue-capacity pressure bursts.
type Pressure struct {
	// MeanGap is the mean number of cycles between pressure bursts (>= 1).
	MeanGap float64
	// MeanDuration is the mean burst length in cycles (>= 1).
	MeanDuration float64
	// CapFactor scales the queue's effective capacity during a burst,
	// in (0, 1]; the result is floored at one entry so forward progress
	// remains possible.
	CapFactor float64
	// Start is the first cycle at which a burst may begin.
	Start uint64
}

// Drop parameterizes the event-drop probe.
type Drop struct {
	// Rate is the per-event drop probability in [0, 1].
	Rate float64
	// Start is the first cycle at which events may be dropped.
	Start uint64
}

// Corrupt parameterizes the metadata-corruption probe.
type Corrupt struct {
	// MeanGap is the mean number of cycles between corruptions (>= 1).
	MeanGap float64
	// Start is the first cycle at which a corruption may fire.
	Start uint64
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (p.MonitorStall == nil && p.MEQPressure == nil &&
		p.UFQPressure == nil && p.EventDrop == nil && p.MDCorruption == nil)
}

// Validate rejects plans the engine cannot execute deterministically.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if s := p.MonitorStall; s != nil {
		if s.MeanGap < 1 || s.MeanDuration < 1 {
			return fmt.Errorf("fault: monitor-stall gap/duration means must be >= 1 cycle, got %g/%g", s.MeanGap, s.MeanDuration)
		}
	}
	for _, q := range []struct {
		name string
		pr   *Pressure
	}{{"meq", p.MEQPressure}, {"ufq", p.UFQPressure}} {
		if q.pr == nil {
			continue
		}
		if q.pr.MeanGap < 1 || q.pr.MeanDuration < 1 {
			return fmt.Errorf("fault: %s-pressure gap/duration means must be >= 1 cycle, got %g/%g", q.name, q.pr.MeanGap, q.pr.MeanDuration)
		}
		if q.pr.CapFactor <= 0 || q.pr.CapFactor > 1 {
			return fmt.Errorf("fault: %s-pressure capacity factor must be in (0, 1], got %g", q.name, q.pr.CapFactor)
		}
	}
	if d := p.EventDrop; d != nil {
		if d.Rate < 0 || d.Rate > 1 {
			return fmt.Errorf("fault: event-drop rate must be in [0, 1], got %g", d.Rate)
		}
	}
	if c := p.MDCorruption; c != nil {
		if c.MeanGap < 1 {
			return fmt.Errorf("fault: md-corruption mean gap must be >= 1 cycle, got %g", c.MeanGap)
		}
	}
	return nil
}

// StallSeverity returns a monitor-stall plan at one of the named severity
// levels used by the fault-sweep experiment ("none", "mild", "moderate",
// "severe"). It returns nil for "none" and false for an unknown level.
func StallSeverity(level string) (*Plan, bool) {
	switch level {
	case "none":
		return nil, true
	case "mild":
		return &Plan{MonitorStall: &Stall{MeanGap: 4096, MeanDuration: 64}}, true
	case "moderate":
		return &Plan{MonitorStall: &Stall{MeanGap: 2048, MeanDuration: 256}}, true
	case "severe":
		return &Plan{MonitorStall: &Stall{MeanGap: 1024, MeanDuration: 1024}}, true
	}
	return nil, false
}

// StallSeverities lists the sweep levels in increasing severity order.
func StallSeverities() []string { return []string{"none", "mild", "moderate", "severe"} }
