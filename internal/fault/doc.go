// Package fault is the deterministic fault-injection framework: it perturbs
// a running simulated system — freezing the monitor thread, shrinking the
// effective capacity of the event queues, dropping monitored events,
// corrupting shadow metadata — without breaking reproducibility. Every
// injector draws from its own sim.RNG stream derived from the plan seed, so
// a (config, seed, Plan) triple always produces byte-identical metrics.
//
// A Plan describes what to inject; an Engine executes one core group's plan
// cycle by cycle. The engine is a passive oracle: it is ticked first each
// cycle (before any consumer or producer), advances its burst state
// machines, and the system layer consults it — the arbiter skips the
// monitor thread's tick while MonStalled reports true, the queues are
// throttled to MEQCap/UFQCap, the MEQ's drop hook asks DropEvent, and a
// per-group probe applies CorruptByte to the metadata memory. The engine
// never mutates simulated components itself, which keeps the dependency
// graph a straight line: fault depends only on sim and obs.
//
// Faults exist to be *detected*, not absorbed: every injection increments a
// counter under the fault.* metric namespace (see docs/METRICS.md), and the
// system layer's invariant checker accounts for them explicitly — a dropped
// event that the accounting cannot explain is an invariant violation, not a
// statistic.
package fault
