package fault

import (
	"fade/internal/obs"
	"fade/internal/sim"
	"fade/internal/spans"
)

// Stream-separation constants: each injector draws from its own RNG stream
// derived from the plan seed, so enabling one injector never perturbs the
// draw sequence (and thus the schedule) of another.
const (
	streamStall   = 0x6d6f6e2d7374616c // "mon-stal"
	streamMEQ     = 0x6d65712d70726573 // "meq-pres"
	streamUFQ     = 0x7566712d70726573 // "ufq-pres"
	streamDrop    = 0x65762d64726f7000 // "ev-drop"
	streamCorrupt = 0x6d642d636f727275 // "md-corru"
)

// burst is a two-state (idle/active) renewal process with geometric gaps
// and durations. It advances once per cycle.
type burst struct {
	rng      *sim.RNG
	meanGap  float64
	meanDur  float64
	active   bool
	left     int
	nextAt   uint64
	bursts   uint64
	actCycle uint64
}

func newBurst(rng *sim.RNG, meanGap, meanDur float64, start uint64) *burst {
	b := &burst{rng: rng, meanGap: meanGap, meanDur: meanDur}
	b.nextAt = start + uint64(rng.Geometric(meanGap))
	return b
}

// tick advances the process to the given cycle and reports whether the
// burst is active for it.
func (b *burst) tick(cycle uint64) bool {
	if b == nil {
		return false
	}
	if b.active {
		b.left--
		if b.left <= 0 {
			b.active = false
			b.nextAt = cycle + uint64(b.rng.Geometric(b.meanGap))
			return false
		}
		b.actCycle++
		return true
	}
	if cycle >= b.nextAt {
		b.active = true
		b.left = b.rng.Geometric(b.meanDur)
		b.bursts++
		b.actCycle++
		return true
	}
	return false
}

// Engine executes one core group's fault plan. It implements sim.Component
// and must be registered on the clock *before* every component that
// consults it, so the cycle's fault state is decided at the top of the
// cycle. All methods are single-threaded, like the simulation itself; every
// method is safe on a nil receiver (a nil engine injects nothing).
type Engine struct {
	plan  *Plan
	cycle uint64

	stall *burst
	meqP  *burst
	ufqP  *burst

	meqCap, ufqCap int

	dropRNG    *sim.RNG
	corruptRNG *sim.RNG
	corruptAt  uint64
	corruptHit bool

	stalled   bool
	meqActive bool
	ufqActive bool

	drops       uint64
	corruptions uint64

	trace      *spans.Trace
	track      int32
	stallSince uint64
	meqSince   uint64
	ufqSince   uint64
}

// NewEngine derives an engine from plan for a run whose queues have the
// given base capacities. seed is the effective injector seed (the plan seed
// already folded with the run/core seed by the caller). A nil or empty plan
// yields a nil engine, which is valid and injects nothing.
func NewEngine(plan *Plan, seed uint64, meqCap, ufqCap int) *Engine {
	if plan.Empty() {
		return nil
	}
	e := &Engine{plan: plan, meqCap: meqCap, ufqCap: ufqCap}
	if s := plan.MonitorStall; s != nil {
		e.stall = newBurst(sim.NewRNG(seed^streamStall), s.MeanGap, s.MeanDuration, s.Start)
	}
	if p := plan.MEQPressure; p != nil {
		e.meqP = newBurst(sim.NewRNG(seed^streamMEQ), p.MeanGap, p.MeanDuration, p.Start)
	}
	if p := plan.UFQPressure; p != nil {
		e.ufqP = newBurst(sim.NewRNG(seed^streamUFQ), p.MeanGap, p.MeanDuration, p.Start)
	}
	if plan.EventDrop != nil {
		e.dropRNG = sim.NewRNG(seed ^ streamDrop)
	}
	if c := plan.MDCorruption; c != nil {
		e.corruptRNG = sim.NewRNG(seed ^ streamCorrupt)
		e.corruptAt = c.Start + uint64(e.corruptRNG.Geometric(c.MeanGap))
	}
	return e
}

// SetTrace points the engine at the run's trace: burst activations become
// cycle-domain spans on the given track (emitted at the deactivation edge,
// never per cycle), drops and corruptions become instants. A nil trace
// restores the untraced behavior.
func (e *Engine) SetTrace(t *spans.Trace, track int32) {
	if e == nil {
		return
	}
	e.trace = t
	e.track = track
}

// Tick implements sim.Component: it advances every injector's state machine
// and freezes the cycle's fault decisions.
func (e *Engine) Tick(cycle uint64) {
	if e == nil {
		return
	}
	e.cycle = cycle
	wasStall, wasMEQ, wasUFQ := e.stalled, e.meqActive, e.ufqActive
	e.stalled = e.stall.tick(cycle)
	e.meqActive = e.meqP.tick(cycle)
	e.ufqActive = e.ufqP.tick(cycle)
	if e.trace != nil {
		e.edge(wasStall, e.stalled, &e.stallSince, spans.NameFaultStall, cycle)
		e.edge(wasMEQ, e.meqActive, &e.meqSince, spans.NameFaultMEQThrottle, cycle)
		e.edge(wasUFQ, e.ufqActive, &e.ufqSince, spans.NameFaultUFQThrottle, cycle)
	}
	if e.corruptRNG != nil && cycle >= e.corruptAt {
		e.corruptHit = true
		e.corruptAt = cycle + uint64(e.corruptRNG.Geometric(e.plan.MDCorruption.MeanGap))
		e.trace.CycleInstant(e.track, spans.NameFaultCorrupt, cycle, spans.None, spans.None)
	}
}

// edge records a burst activation boundary (onset remembered, span emitted
// when the burst deactivates; the span covers exactly the active cycles).
func (e *Engine) edge(was, is bool, since *uint64, name string, cycle uint64) {
	switch {
	case is && !was:
		*since = cycle
	case was && !is:
		e.trace.CycleSpan(e.track, name, *since, cycle, spans.None, spans.None)
	}
}

// FlushTrace closes any burst still active when the run terminated at the
// given end cycle. Callers invoke it once after the scheduler returns.
func (e *Engine) FlushTrace(end uint64) {
	if e == nil || e.trace == nil {
		return
	}
	if e.stalled {
		e.trace.CycleSpan(e.track, spans.NameFaultStall, e.stallSince, end, spans.None, spans.None)
	}
	if e.meqActive {
		e.trace.CycleSpan(e.track, spans.NameFaultMEQThrottle, e.meqSince, end, spans.None, spans.None)
	}
	if e.ufqActive {
		e.trace.CycleSpan(e.track, spans.NameFaultUFQThrottle, e.ufqSince, end, spans.None, spans.None)
	}
}

// MonStalled reports whether the monitor thread is frozen this cycle.
func (e *Engine) MonStalled() bool { return e != nil && e.stalled }

// MEQCap returns the MEQ's effective capacity this cycle (0 = unthrottled).
func (e *Engine) MEQCap() int {
	if e == nil || !e.meqActive {
		return 0
	}
	return throttledCap(e.meqCap, e.plan.MEQPressure.CapFactor)
}

// UFQCap returns the UFQ's effective capacity this cycle (0 = unthrottled).
func (e *Engine) UFQCap() int {
	if e == nil || !e.ufqActive {
		return 0
	}
	return throttledCap(e.ufqCap, e.plan.UFQPressure.CapFactor)
}

func throttledCap(base int, factor float64) int {
	c := int(float64(base) * factor)
	if c < 1 {
		c = 1
	}
	return c
}

// DropEvent decides whether the monitored event being pushed this instant
// is discarded, and counts the drop. It is consulted by the MEQ's drop
// hook, so its RNG draws are per-event (deterministic for a fixed workload
// and plan).
func (e *Engine) DropEvent() bool {
	if e == nil || e.dropRNG == nil || e.cycle < e.plan.EventDrop.Start {
		return false
	}
	if !e.dropRNG.Bool(e.plan.EventDrop.Rate) {
		return false
	}
	e.drops++
	e.trace.CycleInstant(e.track, spans.NameFaultDrop, e.cycle, spans.None, spans.None)
	return true
}

// TakeCorruption returns the pending metadata corruption, if one fired this
// cycle: a non-zero XOR mask and a raw offset draw the caller maps into its
// address space. It consumes the pending corruption.
func (e *Engine) TakeCorruption() (offset uint32, mask byte, ok bool) {
	if e == nil || !e.corruptHit {
		return 0, 0, false
	}
	e.corruptHit = false
	e.corruptions++
	offset = e.corruptRNG.Uint32()
	mask = byte(e.corruptRNG.Uint64())
	if mask == 0 {
		mask = 1
	}
	return offset, mask, true
}

// Dropped returns the number of events discarded by the drop probe; the
// invariant checker reconciles event conservation against it.
func (e *Engine) Dropped() uint64 {
	if e == nil {
		return 0
	}
	return e.drops
}

// Collector exposes the engine's injection counters under the given dotted
// prefix ("fault" for a single-core run, "fault.3" for core 3 of a CMP; see
// docs/METRICS.md). Counters for injectors absent from the plan are still
// emitted (as zero) so a plan's metric shape is stable.
func (e *Engine) Collector(prefix string) obs.Collector {
	return obs.CollectorFunc(func(s obs.Sink) {
		var stallBursts, stallCycles, meqCycles, ufqCycles uint64
		if e.stall != nil {
			stallBursts, stallCycles = e.stall.bursts, e.stall.actCycle
		}
		if e.meqP != nil {
			meqCycles = e.meqP.actCycle
		}
		if e.ufqP != nil {
			ufqCycles = e.ufqP.actCycle
		}
		s.Counter(prefix+".mon_stall.bursts", stallBursts)
		s.Counter(prefix+".mon_stall.cycles", stallCycles)
		s.Counter(prefix+".meq_pressure.cycles", meqCycles)
		s.Counter(prefix+".ufq_pressure.cycles", ufqCycles)
		s.Counter(prefix+".events_dropped", e.drops)
		s.Counter(prefix+".md_corruptions", e.corruptions)
	})
}

// FoldSeed derives the effective injector seed for core idx from the plan
// and run seeds: the plan seed wins when set, and each core gets a
// decorrelated stream (the same splitmix fold used for per-core trace
// seeds).
func FoldSeed(plan *Plan, runSeed uint64, idx int) uint64 {
	seed := runSeed
	if plan != nil && plan.Seed != 0 {
		seed = plan.Seed
	}
	return seed + uint64(idx)*0x9E3779B97F4A7C15
}
