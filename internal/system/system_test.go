package system

import (
	"strings"
	"testing"

	"fade/internal/cpu"
	"fade/internal/queue"
	"fade/internal/trace"
)

func smallCfg(mon string) Config {
	cfg := DefaultConfig(mon)
	cfg.Instrs = 60_000
	return cfg
}

func TestRunUnknownBenchmark(t *testing.T) {
	if _, err := Run("nope", smallCfg("MemLeak")); err == nil || !strings.Contains(err.Error(), "unknown benchmark") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunUnknownMonitor(t *testing.T) {
	cfg := smallCfg("Nope")
	if _, err := Run("astar", cfg); err == nil {
		t.Fatal("unknown monitor accepted")
	}
}

func TestRunResultConsistency(t *testing.T) {
	r, err := Run("astar", smallCfg("MemLeak"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Instrs != 60_000 {
		t.Fatalf("instrs = %d", r.Instrs)
	}
	if r.Cycles == 0 || r.BaselineCycles == 0 {
		t.Fatal("zero cycle counts")
	}
	if r.Slowdown < 1.0 {
		t.Fatalf("monitored run faster than baseline: %v", r.Slowdown)
	}
	if r.MonitoredEvents == 0 || r.HandlersRun == 0 {
		t.Fatal("no monitoring activity")
	}
	if r.Filter == nil {
		t.Fatal("FADE run returned no filter stats")
	}
	total := r.Filter.Filtered() + r.Filter.PartialShort + r.Filter.UnfilteredSent
	if total == 0 {
		t.Fatal("no events processed by the accelerator")
	}
	if sum := r.AppIdleFrac + r.MonIdleFrac + r.BothBusyFrac; sum < 0 || sum > 1.001 {
		t.Fatalf("utilization fractions sum to %v", sum)
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run("gcc", smallCfg("MemCheck"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("gcc", smallCfg("MemCheck"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.HandlersRun != b.HandlersRun {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d cycles/handlers",
			a.Cycles, a.HandlersRun, b.Cycles, b.HandlersRun)
	}
}

func TestUnacceleratedHasNoFilterStats(t *testing.T) {
	cfg := smallCfg("AddrCheck")
	cfg.Accel = Unaccelerated
	r, err := Run("astar", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Filter != nil {
		t.Fatal("unaccelerated run produced filter stats")
	}
	if r.HandlersRun != r.MonitoredEvents {
		t.Fatalf("unaccelerated system handled %d of %d events", r.HandlersRun, r.MonitoredEvents)
	}
}

func TestFADEReducesSlowdown(t *testing.T) {
	for _, mon := range []string{"AddrCheck", "MemLeak", "MemCheck"} {
		cfg := smallCfg(mon)
		cfg.Accel = Unaccelerated
		u, err := Run("astar", cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Accel = FADENonBlocking
		f, err := Run("astar", cfg)
		if err != nil {
			t.Fatal(err)
		}
		if f.Slowdown >= u.Slowdown {
			t.Errorf("%s: FADE %.2f not faster than unaccelerated %.2f", mon, f.Slowdown, u.Slowdown)
		}
	}
}

func TestNonBlockingBeatsBlocking(t *testing.T) {
	// The benefit concentrates in low-filter-ratio monitors (Fig. 11c).
	// gcc and astar under MemLeak have scale-stable pointer densities;
	// taint ramps too slowly for short-run assertions.
	for _, c := range []struct{ mon, bench string }{
		{"MemLeak", "astar"}, {"MemLeak", "gcc"},
	} {
		cfg := smallCfg(c.mon)
		cfg.Accel = FADEBlocking
		b, err := Run(c.bench, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Accel = FADENonBlocking
		n, err := Run(c.bench, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if n.Slowdown >= b.Slowdown {
			t.Errorf("%s/%s: non-blocking %.2f not faster than blocking %.2f",
				c.mon, c.bench, n.Slowdown, b.Slowdown)
		}
		if b.Slowdown/n.Slowdown < 1.2 {
			t.Errorf("%s/%s: non-blocking benefit only %.2fx", c.mon, c.bench, b.Slowdown/n.Slowdown)
		}
	}
}

func TestTwoCoreNotSlowerThanSingle(t *testing.T) {
	for _, mon := range []string{"MemLeak", "AtomCheck"} {
		bench := "astar"
		if mon == "AtomCheck" {
			bench = "streamc"
		}
		cfg := smallCfg(mon)
		s, err := Run(bench, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Topology = TwoCore
		d, err := Run(bench, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d.Slowdown > s.Slowdown*1.02 {
			t.Errorf("%s: two-core %.2f slower than single-core %.2f", mon, d.Slowdown, s.Slowdown)
		}
	}
}

func TestDetectionsSurviveAcceleration(t *testing.T) {
	inject := &trace.Inject{LeakFrac: 0.4}
	cfg := smallCfg("MemLeak")
	cfg.Inject = inject
	cfg.Instrs = 100_000

	cfg.Accel = Unaccelerated
	sw, err := Run("omnet", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Accel = FADENonBlocking
	hw, err := Run("omnet", cfg)
	if err != nil {
		t.Fatal(err)
	}
	swLeaks, hwLeaks := 0, 0
	for _, r := range sw.Reports {
		if r.Kind == "memory-leak" {
			swLeaks++
		}
	}
	for _, r := range hw.Reports {
		if r.Kind == "memory-leak" {
			hwLeaks++
		}
	}
	if swLeaks == 0 {
		t.Fatal("injection produced no leaks")
	}
	if swLeaks != hwLeaks {
		t.Fatalf("acceleration changed detections: sw %d, hw %d", swLeaks, hwLeaks)
	}
}

func TestQueueStudyBasics(t *testing.T) {
	qs, err := RunQueueStudy("astar", "AddrCheck", cpu.OoO4, queue.Unbounded, 1, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if qs.MonitoredIPC <= 0 || qs.AppIPC <= qs.MonitoredIPC {
		t.Fatalf("IPC split wrong: app %.2f monitored %.2f", qs.AppIPC, qs.MonitoredIPC)
	}
	if qs.Slowdown < 1.0 {
		t.Fatalf("ideal-drain slowdown %v below 1", qs.Slowdown)
	}
	// AddrCheck's monitored IPC is far below 1: an infinite queue stays
	// nearly empty (Fig. 3a).
	if qs.MaxOccupancy > 64 {
		t.Fatalf("AddrCheck queue occupancy %d unexpectedly deep", qs.MaxOccupancy)
	}
}

func TestQueueStudyBzipOverflows(t *testing.T) {
	// bzip's monitored IPC exceeds 1.0 under MemLeak: the infinite queue
	// grows without bound (Section 3.2).
	qs, err := RunQueueStudy("bzip", "MemLeak", cpu.OoO4, queue.Unbounded, 1, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	if qs.MonitoredIPC <= 1.0 {
		t.Fatalf("bzip monitored IPC %.2f not above 1", qs.MonitoredIPC)
	}
	if qs.MaxOccupancy < 1000 {
		t.Fatalf("bzip queue occupancy %d did not blow up", qs.MaxOccupancy)
	}
}

func TestQueueStudyFiniteQueueSlower(t *testing.T) {
	big, err := RunQueueStudy("gobmk", "MemLeak", cpu.OoO4, 32*1024, 1, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	small, err := RunQueueStudy("gobmk", "MemLeak", cpu.OoO4, 32, 1, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if small.Slowdown < big.Slowdown-1e-9 {
		t.Fatalf("32-entry queue faster (%.3f) than 32K (%.3f)", small.Slowdown, big.Slowdown)
	}
}

func TestQueueStudyUnknownInputs(t *testing.T) {
	if _, err := RunQueueStudy("nope", "MemLeak", cpu.OoO4, 32, 1, 1000); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := RunQueueStudy("astar", "Nope", cpu.OoO4, 32, 1, 1000); err == nil {
		t.Fatal("unknown monitor accepted")
	}
}

func TestTopologyAndAccelStrings(t *testing.T) {
	if SingleCoreSMT.String() == "" || TwoCore.String() == "" {
		t.Fatal("topology names empty")
	}
	for _, a := range []Accel{Unaccelerated, FADEBlocking, FADENonBlocking} {
		if a.String() == "" {
			t.Fatal("accel name empty")
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig("MemLeak")
	if cfg.EventQueueCap != 32 || cfg.UnfilteredCap != 16 {
		t.Fatalf("queue capacities %d/%d", cfg.EventQueueCap, cfg.UnfilteredCap)
	}
	if cfg.Core != cpu.OoO4 || cfg.Accel != FADENonBlocking || cfg.Topology != SingleCoreSMT {
		t.Fatal("default config wrong")
	}
}

func TestParallelBenchmarkRuns(t *testing.T) {
	cfg := smallCfg("AtomCheck")
	r, err := Run("water", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Filter.PartialShort == 0 {
		t.Fatal("AtomCheck produced no partially filtered events")
	}
}

func TestWarmupWindow(t *testing.T) {
	cfg := smallCfg("MemLeak")
	full, err := Run("astar", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WarmupInstrs = 20_000
	warm, err := Run("astar", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Slowdown <= 0 {
		t.Fatalf("warmed slowdown = %v", warm.Slowdown)
	}
	// The measured window excludes cold-start effects; the two metrics
	// agree within a modest factor on a steady-state workload.
	ratio := warm.Slowdown / full.Slowdown
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("warmed %.2f vs full %.2f: implausible divergence", warm.Slowdown, full.Slowdown)
	}
}

func TestWarmupBeyondRunIsIgnored(t *testing.T) {
	cfg := smallCfg("AddrCheck")
	cfg.WarmupInstrs = cfg.Instrs * 2 // never reached: falls back to full-run slowdown
	r, err := Run("astar", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Slowdown <= 0 {
		t.Fatalf("slowdown = %v", r.Slowdown)
	}
}

func TestUnboundedEventQueueNoBackpressure(t *testing.T) {
	cfg := smallCfg("MemLeak")
	cfg.EventQueueCap = queue.Unbounded
	r, err := Run("bzip", cfg) // bzip overflows any finite queue
	if err != nil {
		t.Fatal(err)
	}
	if r.AppStallCycles != 0 {
		t.Fatalf("unbounded queue produced %d backpressure cycles", r.AppStallCycles)
	}
	if r.EvqMax < 1000 {
		t.Fatalf("bzip occupancy %d did not grow", r.EvqMax)
	}
}

func TestMDCacheSizeMonotonic(t *testing.T) {
	// A bigger MD cache never makes FADE slower on a miss-heavy workload.
	cfg := smallCfg("MemCheck")
	cfg.MDCacheBytes = 1 << 10
	small, err := Run("mcf", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MDCacheBytes = 32 << 10
	big, err := Run("mcf", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if big.Slowdown > small.Slowdown*1.02 {
		t.Fatalf("32KB MD cache (%.2f) slower than 1KB (%.2f)", big.Slowdown, small.Slowdown)
	}
	if big.MDCacheMissRate >= small.MDCacheMissRate {
		t.Fatalf("miss rate did not drop: %.3f -> %.3f", small.MDCacheMissRate, big.MDCacheMissRate)
	}
}
