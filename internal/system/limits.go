package system

import (
	"fmt"
	"time"

	"fade/internal/mem"
	"fade/internal/monitor"
)

// RunLimits bounds one run's resource consumption. The zero value imposes
// only the legacy Config.MaxCycles safety net.
type RunLimits struct {
	// MaxCycles caps simulated time. When non-zero it overrides
	// Config.MaxCycles; a run that reaches the cap aborts with
	// sim.ErrCycleCapExceeded instead of completing.
	MaxCycles uint64
	// WallClock caps real time across the whole run, unmonitored baselines
	// included. A run past the watchdog aborts with sim.ErrCanceled at the
	// next scheduler checkpoint. 0 disables the watchdog.
	WallClock time.Duration
}

// validate rejects nonsensical limits (a defensive hook: the zero value and
// any positive values are fine, so today this cannot fail — it exists so
// future fields inherit a validation point).
func (l RunLimits) validate() error { return nil }

// deadline converts the wall-clock budget into an absolute deadline.
func (l RunLimits) deadline(now time.Time) time.Time {
	if l.WallClock <= 0 {
		return time.Time{}
	}
	return now.Add(l.WallClock)
}

// Validate reports whether cfg describes a runnable system, checking
// everything the constructors would otherwise panic on: topology shape,
// queue capacities, metadata-cache geometry, the monitor name, the fault
// plan, and the run limits. Run and RunQueueStudy validate internally;
// callers assembling configs interactively can call it early for a
// structured error instead of a late one.
//
// Zero values that select documented defaults (queue capacities,
// instruction budget, cycle cap) are valid.
func (cfg Config) Validate() error {
	if err := cfg.Topology.normalize().validate(); err != nil {
		return err
	}
	if cfg.EventQueueCap < 0 {
		return fmt.Errorf("system: event queue capacity must be positive (or 0 for the default 32), got %d", cfg.EventQueueCap)
	}
	if cfg.UnfilteredCap < 0 {
		return fmt.Errorf("system: unfiltered queue capacity must be positive (or 0 for the default 16), got %d", cfg.UnfilteredCap)
	}
	if cfg.MDCacheBytes < 0 {
		return fmt.Errorf("system: metadata cache size must be positive (or 0 for the default 4 KB), got %d", cfg.MDCacheBytes)
	}
	if cfg.MDCacheBytes > 0 {
		geom := mem.MDCacheConfig
		geom.SizeBytes = cfg.MDCacheBytes
		if err := geom.Validate(); err != nil {
			return err
		}
	}
	if cfg.BlockingSignalCycles < -1 {
		return fmt.Errorf("system: blocking signal latency must be >= -1, got %d", cfg.BlockingSignalCycles)
	}
	if cfg.Monitor != "" {
		if _, err := monitor.New(cfg.Monitor, 1); err != nil {
			return err
		}
	}
	if err := cfg.Faults.Validate(); err != nil {
		return err
	}
	return cfg.Limits.validate()
}

// validateQueueCap rejects capacities queue.NewBounded would panic on; used
// by entry points whose capacity has no zero-default (RunQueueStudy).
// queue.Unbounded is a large positive value and passes.
func validateQueueCap(name string, cap int) error {
	if cap <= 0 {
		return fmt.Errorf("system: %s capacity must be positive or queue.Unbounded, got %d", name, cap)
	}
	return nil
}
