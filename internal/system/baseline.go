package system

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"fade/internal/cpu"
	"fade/internal/rcache"
	"fade/internal/runspec"
	"fade/internal/sim"
	"fade/internal/trace"
)

// The baseline store memoizes unmonitored runs: every monitored
// configuration of the same (profile, core, seed, length) shares one
// baseline. It is an rcache instance keyed by the canonical KindBaseline
// spec hash, which buys the semantics the old hand-rolled LRU implemented
// by hand: single-flight (when the parallel experiment runner fans out N
// cells sharing a baseline, one worker simulates it and the rest wait),
// failure-not-cached (a canceled or timed-out baseline is retried by the
// next caller with a live context), and LRU bounding (a long-lived process
// sweeping many keys holds a fixed number of entries).

// baselineCacheCap bounds the store. 64 comfortably covers one full
// experiment sweep (19 profiles x a handful of (seed, instrs, warmup)
// variants) while capping resident entries.
const baselineCacheCap = 64

var baselineStore = rcache.NewMem(baselineCacheCap)

// baselineSims counts actual baseline simulations (not cache hits); the
// thundering-herd regression test asserts it stays at one per key under
// concurrency.
var baselineSims atomic.Uint64

type baselineVal struct {
	cycles   uint64
	boundary uint64 // cycle at which WarmupInstrs instructions had retired
}

// baselineSpec is the canonical identity of one unmonitored baseline run.
// Deliberately excluded, preserving the old cache-key semantics: MaxCycles
// and the wall-clock deadline (execution budgets — a completed baseline is
// the same under any), and FastForward (results are byte-identical either
// way, so both modes share an entry).
func baselineSpec(prof *trace.Profile, cfg Config) runspec.Spec {
	s := runspec.Spec{
		Kind:         runspec.KindBaseline,
		Benchmark:    prof.Name,
		Core:         CoreName(cfg.Core),
		Seed:         cfg.Seed,
		Instrs:       cfg.Instrs,
		WarmupInstrs: cfg.WarmupInstrs,
	}
	if prof.Inject != (trace.Inject{}) {
		inj := prof.Inject
		s.Inject = &inj
	}
	return s
}

// baselineVal round-trips through the store as 16 bytes, little-endian.
func encodeBaselineVal(v baselineVal) []byte {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], v.cycles)
	binary.LittleEndian.PutUint64(b[8:], v.boundary)
	return b[:]
}

func decodeBaselineVal(b []byte) (baselineVal, error) {
	if len(b) != 16 {
		return baselineVal{}, fmt.Errorf("system: baseline cache entry is %d bytes, want 16", len(b))
	}
	return baselineVal{
		cycles:   binary.LittleEndian.Uint64(b[:8]),
		boundary: binary.LittleEndian.Uint64(b[8:]),
	}, nil
}

// ResetBaselineCache empties the baseline store. It is a test hook: cache
// contents never affect results (entries are deterministic functions of
// their keys), only how often the unmonitored simulation re-runs.
func ResetBaselineCache() { baselineStore.Reset() }

// baselineCacheLen reports the live entry count (test hook).
func baselineCacheLen() int { return baselineStore.Len() }

// runBaseline measures the unmonitored application-only execution time that
// slowdowns are normalized to, and the warm-up boundary cycle. ctx and
// deadline bound the computation but are not part of the cache key: a
// canceled or timed-out baseline fails without being cached, so a later
// caller with a live context recomputes it.
func runBaseline(ctx context.Context, prof *trace.Profile, cfg Config, deadline time.Time) (baselineVal, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	b, _, err := baselineStore.Do(ctx, baselineSpec(prof, cfg).Hash(), func(ctx context.Context) ([]byte, error) {
		val, err := simulateBaseline(ctx, prof, cfg, deadline)
		if err != nil {
			return nil, err
		}
		return encodeBaselineVal(val), nil
	})
	if err != nil {
		return baselineVal{}, err
	}
	return decodeBaselineVal(b)
}

// simulateBaseline performs the actual unmonitored run on the sim kernel:
// one component (the application core at full share), terminating at
// end-of-stream.
func simulateBaseline(ctx context.Context, prof *trace.Profile, cfg Config, deadline time.Time) (baselineVal, error) {
	baselineSims.Add(1)
	gen := trace.New(prof, cfg.Seed, cfg.Instrs)
	app := cpu.NewAppCore(cfg.Core, prof, gen, nil, nil)
	clock := sim.NewClock()
	clock.Register(app)
	sched := &sim.Scheduler{Clock: clock, MaxCycles: cfg.MaxCycles,
		Done: func(uint64) bool { return app.Done() }, Deadline: deadline,
		FastForward: cfg.FastForward}
	if ctx != nil && ctx != context.Background() {
		sched.Ctx = ctx
	}
	if cfg.WarmupInstrs > 0 {
		sched.Warmed = func() bool { return app.Instrs() >= cfg.WarmupInstrs }
	}
	out := sched.Run()
	if !out.Completed {
		return baselineVal{boundary: out.WarmBoundary}, fmt.Errorf("system: baseline for %s aborted: %w", prof.Name, out.Err)
	}
	return baselineVal{cycles: out.Cycles, boundary: out.WarmBoundary}, nil
}
