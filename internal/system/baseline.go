package system

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fade/internal/cpu"
	"fade/internal/sim"
	"fade/internal/trace"
)

// The baseline cache memoizes unmonitored runs: every monitored
// configuration of the same (profile, core, seed, length) shares one
// baseline. Entries are single-flight: when the parallel experiment runner
// fans out N cells that share a baseline, one worker simulates it and the
// rest block on its sync.Once instead of each re-running the full
// unmonitored simulation. The cache is LRU-bounded so a long-lived process
// sweeping many (profile, seed, instrs) keys — a seed-sensitivity study, a
// service regenerating experiments on demand — holds a fixed number of
// entries rather than growing without limit.

// baselineCacheCap bounds the cache. 64 comfortably covers one full
// experiment sweep (19 profiles x a handful of (seed, instrs, warmup)
// variants) while capping resident entries.
const baselineCacheCap = 64

var baselineCache = struct {
	mu      sync.Mutex
	entries map[baselineKey]*list.Element // values are *baselineNode
	order   *list.List                    // front = most recently used
}{
	entries: make(map[baselineKey]*list.Element),
	order:   list.New(),
}

// baselineSims counts actual baseline simulations (not cache hits); the
// thundering-herd regression test asserts it stays at one per key under
// concurrency.
var baselineSims atomic.Uint64

type baselineKey struct {
	prof   string
	core   cpu.Kind
	seed   uint64
	instrs uint64
	warmup uint64
	inject trace.Inject
}

type baselineVal struct {
	cycles   uint64
	boundary uint64 // cycle at which WarmupInstrs instructions had retired
}

type baselineEntry struct {
	once sync.Once
	val  baselineVal
	err  error
}

type baselineNode struct {
	key   baselineKey
	entry *baselineEntry
}

// lookupBaseline returns the single-flight entry for key, creating it (and
// evicting the least recently used entry past the cap) as needed. The
// returned entry is stable even if the key is later evicted: evicted
// in-flight computations still complete for their waiters, they just stop
// being shared.
func lookupBaseline(key baselineKey) *baselineEntry {
	baselineCache.mu.Lock()
	defer baselineCache.mu.Unlock()
	if el, ok := baselineCache.entries[key]; ok {
		baselineCache.order.MoveToFront(el)
		return el.Value.(*baselineNode).entry
	}
	entry := &baselineEntry{}
	baselineCache.entries[key] = baselineCache.order.PushFront(&baselineNode{key: key, entry: entry})
	for baselineCache.order.Len() > baselineCacheCap {
		oldest := baselineCache.order.Back()
		baselineCache.order.Remove(oldest)
		delete(baselineCache.entries, oldest.Value.(*baselineNode).key)
	}
	return entry
}

// dropBaseline removes key from the cache if it still maps to entry (a
// failed computation must not evict a concurrent successful replacement).
func dropBaseline(key baselineKey, entry *baselineEntry) {
	baselineCache.mu.Lock()
	defer baselineCache.mu.Unlock()
	if el, ok := baselineCache.entries[key]; ok && el.Value.(*baselineNode).entry == entry {
		baselineCache.order.Remove(el)
		delete(baselineCache.entries, key)
	}
}

// ResetBaselineCache empties the baseline cache. It is a test hook: cache
// contents never affect results (entries are deterministic functions of
// their keys), only how often the unmonitored simulation re-runs.
func ResetBaselineCache() {
	baselineCache.mu.Lock()
	defer baselineCache.mu.Unlock()
	baselineCache.entries = make(map[baselineKey]*list.Element)
	baselineCache.order = list.New()
}

// baselineCacheLen reports the live entry count (test hook).
func baselineCacheLen() int {
	baselineCache.mu.Lock()
	defer baselineCache.mu.Unlock()
	return baselineCache.order.Len()
}

// runBaseline measures the unmonitored application-only execution time that
// slowdowns are normalized to, and the warm-up boundary cycle. ctx and
// deadline bound the computation but are not part of the cache key: a
// canceled or timed-out baseline fails without being cached, so a later
// caller with a live context recomputes it.
func runBaseline(ctx context.Context, prof *trace.Profile, cfg Config, deadline time.Time) (baselineVal, error) {
	key := baselineKey{prof: prof.Name, core: cfg.Core, seed: cfg.Seed,
		instrs: cfg.Instrs, warmup: cfg.WarmupInstrs, inject: prof.Inject}
	entry := lookupBaseline(key)
	entry.once.Do(func() {
		entry.val, entry.err = simulateBaseline(ctx, prof, cfg, deadline)
	})
	if entry.err != nil {
		// Don't cache failures: a later caller with a higher MaxCycles, a
		// live context, or a fresh wall-clock budget may succeed.
		dropBaseline(key, entry)
	}
	return entry.val, entry.err
}

// simulateBaseline performs the actual unmonitored run on the sim kernel:
// one component (the application core at full share), terminating at
// end-of-stream.
func simulateBaseline(ctx context.Context, prof *trace.Profile, cfg Config, deadline time.Time) (baselineVal, error) {
	baselineSims.Add(1)
	gen := trace.New(prof, cfg.Seed, cfg.Instrs)
	app := cpu.NewAppCore(cfg.Core, prof, gen, nil, nil)
	clock := sim.NewClock()
	clock.Register(app)
	sched := &sim.Scheduler{Clock: clock, MaxCycles: cfg.MaxCycles,
		Done: func(uint64) bool { return app.Done() }, Deadline: deadline,
		FastForward: cfg.FastForward}
	if ctx != nil && ctx != context.Background() {
		sched.Ctx = ctx
	}
	if cfg.WarmupInstrs > 0 {
		sched.Warmed = func() bool { return app.Instrs() >= cfg.WarmupInstrs }
	}
	out := sched.Run()
	if !out.Completed {
		return baselineVal{boundary: out.WarmBoundary}, fmt.Errorf("system: baseline for %s aborted: %w", prof.Name, out.Err)
	}
	return baselineVal{cycles: out.Cycles, boundary: out.WarmBoundary}, nil
}
