package system

import (
	"testing"

	"fade/internal/cpu"
	"fade/internal/runspec"
	"fade/internal/trace"
)

// TestBaselineSpecIdentity pins what is — and is not — part of a
// baseline's cache identity. The excluded knobs (MaxCycles, FastForward,
// wall-clock budgets) are execution strategy, not run identity: a
// completed baseline is the same under any of them, so they must share a
// cache entry like they did under the old hand-rolled key.
func TestBaselineSpecIdentity(t *testing.T) {
	prof, ok := trace.Lookup("astar")
	if !ok {
		t.Fatal("astar profile missing")
	}
	base := Config{Core: cpu.OoO4, Seed: 1, Instrs: 10_000}
	want := baselineSpec(prof, base).Hash()

	same := base
	same.MaxCycles = 123
	same.FastForward = true
	same.Monitor = "MemLeak"
	same.Accel = FADEBlocking
	same.EventQueueCap = 64
	if baselineSpec(prof, same).Hash() != want {
		t.Error("monitoring-side/execution knobs changed the baseline identity")
	}

	for name, mut := range map[string]func(*Config){
		"core":   func(c *Config) { c.Core = cpu.InOrder },
		"seed":   func(c *Config) { c.Seed = 2 },
		"instrs": func(c *Config) { c.Instrs = 20_000 },
		"warmup": func(c *Config) { c.WarmupInstrs = 1_000 },
	} {
		cfg := base
		mut(&cfg)
		if baselineSpec(prof, cfg).Hash() == want {
			t.Errorf("%s change did not change the baseline identity", name)
		}
	}

	injected := *prof
	injected.Inject = trace.Inject{LeakFrac: 0.5}
	if baselineSpec(&injected, base).Hash() == want {
		t.Error("profile injection did not change the baseline identity")
	}
	if s := baselineSpec(prof, base); s.Kind != runspec.KindBaseline {
		t.Errorf("baseline spec kind = %q", s.Kind)
	}
}

func TestBaselineValCodec(t *testing.T) {
	v := baselineVal{cycles: 123_456_789, boundary: 42}
	got, err := decodeBaselineVal(encodeBaselineVal(v))
	if err != nil || got != v {
		t.Fatalf("round trip = %+v, %v", got, err)
	}
	if _, err := decodeBaselineVal([]byte{1, 2, 3}); err == nil {
		t.Fatal("short entry accepted")
	}
}

// TestResetBaselineCacheForcesResimulation checks the test hook end to end:
// after a reset, the same config re-runs the baseline simulation instead of
// hitting the cache.
func TestResetBaselineCacheForcesResimulation(t *testing.T) {
	ResetBaselineCache()
	defer ResetBaselineCache()

	cfg := DefaultConfig("MemLeak")
	cfg.Instrs = 5_000
	if _, err := Run("astar", cfg); err != nil {
		t.Fatal(err)
	}
	sims := baselineSims.Load()
	if n := baselineCacheLen(); n == 0 {
		t.Fatal("baseline store empty after a run")
	}
	if _, err := Run("astar", cfg); err != nil {
		t.Fatal(err)
	}
	if got := baselineSims.Load(); got != sims {
		t.Fatalf("cached rerun simulated baseline again (%d -> %d)", sims, got)
	}
	ResetBaselineCache()
	if _, err := Run("astar", cfg); err != nil {
		t.Fatal(err)
	}
	if got := baselineSims.Load(); got != sims+1 {
		t.Fatalf("post-reset run simulated %d baselines, want 1", got-sims)
	}
}
