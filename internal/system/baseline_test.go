package system

import (
	"fmt"
	"testing"
)

func synthKey(i int) baselineKey {
	return baselineKey{prof: fmt.Sprintf("synthetic-%d", i), seed: 1, instrs: 1}
}

// TestBaselineCacheLRU drives the cache with synthetic keys and checks the
// bound, eviction order, and recency promotion.
func TestBaselineCacheLRU(t *testing.T) {
	ResetBaselineCache()
	defer ResetBaselineCache()

	for i := 0; i < baselineCacheCap; i++ {
		lookupBaseline(synthKey(i))
	}
	if n := baselineCacheLen(); n != baselineCacheCap {
		t.Fatalf("cache len = %d, want %d", n, baselineCacheCap)
	}
	first := lookupBaseline(synthKey(0)) // promote key 0 to MRU

	// Overflow by one: the LRU victim is key 1 (key 0 was just touched).
	lookupBaseline(synthKey(baselineCacheCap))
	if n := baselineCacheLen(); n != baselineCacheCap {
		t.Fatalf("cache len after overflow = %d, want %d", n, baselineCacheCap)
	}
	if again := lookupBaseline(synthKey(0)); again != first {
		t.Error("recently used key 0 was evicted")
	}
	// Key 1 was evicted, so looking it up creates a fresh entry — and evicts
	// the next victim to stay at the cap.
	before := baselineCacheLen()
	e1 := lookupBaseline(synthKey(1))
	e1b := lookupBaseline(synthKey(1))
	if e1 != e1b {
		t.Error("re-inserted key 1 not cached")
	}
	if n := baselineCacheLen(); n != before {
		t.Fatalf("cache len drifted to %d", n)
	}
}

// TestBaselineCacheDropOnlySameEntry checks the failure path: dropBaseline
// must not remove a newer entry that replaced the failed one.
func TestBaselineCacheDropOnlySameEntry(t *testing.T) {
	ResetBaselineCache()
	defer ResetBaselineCache()

	key := synthKey(0)
	stale := lookupBaseline(key)
	dropBaseline(key, stale)
	if n := baselineCacheLen(); n != 0 {
		t.Fatalf("cache len after drop = %d", n)
	}
	fresh := lookupBaseline(key)
	dropBaseline(key, stale) // stale pointer: must be a no-op now
	if lookupBaseline(key) != fresh {
		t.Error("dropBaseline with a stale entry removed the live one")
	}
}

// TestResetBaselineCacheForcesResimulation checks the test hook end to end:
// after a reset, the same config re-runs the baseline simulation instead of
// hitting the cache.
func TestResetBaselineCacheForcesResimulation(t *testing.T) {
	ResetBaselineCache()
	defer ResetBaselineCache()

	cfg := DefaultConfig("MemLeak")
	cfg.Instrs = 5_000
	if _, err := Run("astar", cfg); err != nil {
		t.Fatal(err)
	}
	sims := baselineSims.Load()
	if _, err := Run("astar", cfg); err != nil {
		t.Fatal(err)
	}
	if got := baselineSims.Load(); got != sims {
		t.Fatalf("cached rerun simulated baseline again (%d -> %d)", sims, got)
	}
	ResetBaselineCache()
	if _, err := Run("astar", cfg); err != nil {
		t.Fatal(err)
	}
	if got := baselineSims.Load(); got != sims+1 {
		t.Fatalf("post-reset run simulated %d baselines, want 1", got-sims)
	}
}
