package system

import (
	"context"
	"fmt"
	"time"

	"fade/internal/cpu"
	"fade/internal/isa"
	"fade/internal/monitor"
	"fade/internal/obs"
	"fade/internal/queue"
	"fade/internal/sim"
	"fade/internal/stats"
	"fade/internal/trace"
)

// QueueStudy reproduces the Section 3 characterization methodology: the
// application core produces monitored events into an event queue that is
// drained by an idealized filtering accelerator consuming exactly one event
// per cycle (Section 3.2's "filtering accelerator that processes one event
// per cycle", with an infinite or finite queue). It reports the monitored
// load (Fig. 2) and queue occupancy distribution (Fig. 3).
type QueueStudy struct {
	Benchmark string
	Monitor   string

	Cycles          uint64
	BaselineCycles  uint64
	Slowdown        float64 // vs. the unmonitored baseline (Fig. 3c)
	Instrs          uint64
	MonitoredEvents uint64
	AppIPC          float64 // total application IPC (Fig. 2 bar height)
	MonitoredIPC    float64 // monitored instructions per cycle (Fig. 2 dark bar)
	Occupancy       *stats.Histogram
	MaxOccupancy    int

	// Metrics is the end-of-run registry snapshot (app.* and queue.meq.*
	// name spaces plus the sim.* run summary; see docs/METRICS.md).
	Metrics *obs.Snapshot
}

// RunQueueStudy simulates bench under the named monitor with an ideal
// 1-event/cycle drain and the given event-queue capacity (queue.Unbounded
// for the infinite-queue analysis). It is RunQueueStudyContext without
// cancellation.
func RunQueueStudy(bench, monName string, coreKind cpu.Kind, queueCap int, seed, instrs uint64) (*QueueStudy, error) {
	return RunQueueStudyContext(context.Background(), bench, monName, coreKind, queueCap, seed, instrs)
}

// RunQueueStudyContext is RunQueueStudy under a context: the run aborts
// with an error wrapping sim.ErrCanceled within one scheduler checkpoint
// interval of ctx being canceled.
func RunQueueStudyContext(ctx context.Context, bench, monName string, coreKind cpu.Kind, queueCap int, seed, instrs uint64) (*QueueStudy, error) {
	prof, ok := trace.Lookup(bench)
	if !ok {
		return nil, fmt.Errorf("system: unknown benchmark %q", bench)
	}
	if err := validateQueueCap("event queue", queueCap); err != nil {
		return nil, err
	}
	threads := 1
	if prof.Parallel {
		threads = prof.Threads
	}
	mon, err := monitor.New(monName, threads)
	if err != nil {
		return nil, err
	}
	if instrs == 0 {
		instrs = 400_000
	}
	maxCycles := instrs * 100

	baseline, err := runBaseline(ctx, prof, Config{Core: coreKind, Seed: seed, Instrs: instrs, MaxCycles: maxCycles}, time.Time{})
	if err != nil {
		return nil, err
	}

	gen := trace.New(prof, seed, instrs)
	evq := queue.NewBounded[isa.Event](queueCap)
	app := cpu.NewAppCore(coreKind, prof, gen, mon, evq)

	reg := obs.NewRegistry()
	reg.Register(app)
	reg.Register(evq.MetricsCollector("queue.meq"))
	clock := sim.NewClock()
	reg.Register(obs.CollectorFunc(func(s obs.Sink) {
		s.Counter("sim.cycles", clock.Cycle())
		s.Counter("sim.baseline_cycles", baseline.cycles)
	}))
	// Consumer before producer: the ideal accelerator drains one event per
	// cycle ahead of the core's enqueues.
	clock.Register(sim.ComponentFunc(func(uint64) { evq.Pop() }))
	clock.Register(app)
	sched := &sim.Scheduler{Clock: clock, MaxCycles: maxCycles,
		Done:   func(uint64) bool { return app.Done() && evq.Empty() },
		Sample: func(uint64) { evq.SampleOccupancy() },
	}
	if ctx != nil && ctx != context.Background() {
		sched.Ctx = ctx
	}
	out := sched.Run()
	if !out.Completed {
		return nil, fmt.Errorf("system: queue study for %s/%s aborted after %d cycles: %w", bench, monName, out.Cycles, out.Err)
	}
	cycles := out.Cycles

	qs := &QueueStudy{
		Benchmark:       bench,
		Monitor:         monName,
		Cycles:          cycles,
		BaselineCycles:  baseline.cycles,
		Slowdown:        stats.Ratio(cycles, baseline.cycles),
		Instrs:          app.Instrs(),
		MonitoredEvents: app.MonitoredEvents(),
		AppIPC:          stats.Ratio(app.Instrs(), baseline.cycles),
		MonitoredIPC:    stats.Ratio(app.MonitoredEvents(), baseline.cycles),
		Occupancy:       evq.Occupancy(),
		MaxOccupancy:    evq.MaxLen(),
	}
	reg.Gauge("sim.slowdown").Set(qs.Slowdown)
	reg.Gauge("sim.app_ipc").Set(qs.AppIPC)
	reg.Gauge("sim.monitored_ipc").Set(qs.MonitoredIPC)
	qs.Metrics = reg.Snapshot()
	return qs, nil
}
