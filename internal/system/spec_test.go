package system

import (
	"context"
	"reflect"
	"testing"

	"fade/internal/cpu"
	"fade/internal/fault"
	"fade/internal/rcache"
	"fade/internal/runspec"
	"fade/internal/trace"
)

// TestSpecConfigRoundTrip: Config -> Spec -> Config preserves every run-
// identity field, and both directions agree on the enum vocabularies.
func TestSpecConfigRoundTrip(t *testing.T) {
	cfg := DefaultConfig("MemLeak")
	cfg.Instrs = 50_000
	cfg.Seed = 7
	cfg.Core = cpu.OoO2
	cfg.Accel = FADEBlocking
	cfg.BlockingSignalCycles = 14
	cfg.MDCacheBytes = 2048
	cfg.WarmupInstrs = 5_000
	cfg.TimelineEvery = 10_000
	cfg.FastForward = true
	cfg.Faults = &fault.Plan{Seed: 3, EventDrop: &fault.Drop{Rate: 0.01}}

	spec := SpecFromConfig("astar", cfg)
	if spec.Benchmark != "astar" || spec.Accel != runspec.AccelBlocking || spec.Core != runspec.Core2Way {
		t.Fatalf("spec = %+v", spec)
	}
	back, err := ConfigFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The topology normalizes (SingleCoreSMT spelled explicitly), which is
	// the same system.
	cfg.Topology = cfg.Topology.normalize()
	if !reflect.DeepEqual(back, cfg) {
		t.Fatalf("round trip changed the config:\n got %+v\nwant %+v", back, cfg)
	}
}

// TestSpecLimitsMapping: spec MaxCycles/WallClockMS become RunLimits.
func TestSpecLimitsMapping(t *testing.T) {
	s := runspec.Spec{Benchmark: "astar", Monitor: "MemLeak", MaxCycles: 9999, WallClockMS: 1500}
	cfg, err := ConfigFromSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Limits.MaxCycles != 9999 || cfg.Limits.WallClock.Milliseconds() != 1500 {
		t.Fatalf("limits = %+v", cfg.Limits)
	}
	back := SpecFromConfig("astar", cfg)
	if back.MaxCycles != 9999 || back.WallClockMS != 1500 {
		t.Fatalf("spec = %+v", back)
	}
}

// TestExecSpecMatchesDirectRun: executing a spec produces the identical
// Result as the legacy Config entry point.
func TestExecSpecMatchesDirectRun(t *testing.T) {
	ResetBaselineCache()
	cfg := DefaultConfig("AddrCheck")
	cfg.Instrs = 10_000
	direct, err := Run("astar", cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ExecSpec(context.Background(), SpecFromConfig("astar", cfg))
	if err != nil {
		t.Fatal(err)
	}
	if out.Result == nil {
		t.Fatal("run spec produced no Result")
	}
	if !reflect.DeepEqual(out.Result, direct) {
		t.Fatal("ExecSpec result differs from direct Run")
	}
}

func TestExecSpecStudy(t *testing.T) {
	direct, err := RunQueueStudy("astar", "MemLeak", cpu.OoO4, 32, 1, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ExecSpec(context.Background(), runspec.Spec{
		Kind: runspec.KindStudy, Benchmark: "astar", Monitor: "MemLeak",
		EventQueueCap: 32, Seed: 1, Instrs: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Study == nil || !reflect.DeepEqual(out.Study, direct) {
		t.Fatal("study spec result differs from direct RunQueueStudy")
	}
}

func TestExecSpecBaselineAndCoreModel(t *testing.T) {
	out, err := ExecSpec(context.Background(), runspec.Spec{
		Kind: runspec.KindBaseline, Benchmark: "astar", Seed: 1, Instrs: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Baseline == nil || out.Baseline.Cycles == 0 {
		t.Fatalf("baseline outcome = %+v", out.Baseline)
	}
	cm, err := ExecSpec(context.Background(), runspec.Spec{
		Kind: runspec.KindCoreModel, Benchmark: "astar", Seed: 1, Instrs: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cm.CoreModel == nil || cm.CoreModel.Rate <= 0 || cm.CoreModel.Detailed <= 0 || cm.CoreModel.InOrder <= 0 {
		t.Fatalf("core model outcome = %+v", cm.CoreModel)
	}
}

func TestExecSpecRejectsBadSpecs(t *testing.T) {
	for _, s := range []runspec.Spec{
		{Benchmark: "astar", Monitor: "MemLeak", Kind: "nope"},
		{Benchmark: "no-such-bench", Monitor: "MemLeak"},
		{Benchmark: "astar", Monitor: "MemLeak", Accel: "turbo"},
	} {
		if _, err := ExecSpec(context.Background(), s); err == nil {
			t.Errorf("bad spec accepted: %+v", s)
		}
	}
}

// TestOutcomeCodecRoundTrip: a full Result (metrics, timeline, histograms,
// reports) survives the cache codec exactly.
func TestOutcomeCodecRoundTrip(t *testing.T) {
	cfg := DefaultConfig("MemLeak")
	cfg.Instrs = 50_000
	cfg.TimelineEvery = 100_000
	cfg.Inject = &trace.Inject{LeakFrac: 0.4}
	res, err := Run("omnet", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil || len(res.Timeline) == 0 || len(res.Reports) == 0 {
		t.Fatalf("want a result with metrics, timeline, and reports; got %d timeline points, %d reports",
			len(res.Timeline), len(res.Reports))
	}
	orig := &Outcome{Result: res}
	b, err := EncodeOutcome(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeOutcome(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Fatal("outcome changed across the codec")
	}
	// Determinism: encoding the decoded outcome reproduces the bytes.
	b2, err := EncodeOutcome(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatal("re-encoding differs")
	}
	// Encoding must not have mutated the original in place.
	if orig.Result.Metrics == nil || len(orig.Result.Timeline) == 0 {
		t.Fatal("EncodeOutcome stripped the original's snapshots")
	}
}

func TestOutcomeCodecStudy(t *testing.T) {
	qs, err := RunQueueStudy("astar", "AddrCheck", cpu.OoO4, 32, 1, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	orig := &Outcome{Study: qs}
	b, err := EncodeOutcome(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeOutcome(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Fatal("study outcome changed across the codec")
	}
}

func TestDecodeOutcomeRejectsVersionMismatch(t *testing.T) {
	if _, err := DecodeOutcome([]byte(`{"v":999}`)); err == nil {
		t.Fatal("future codec version accepted")
	}
	if _, err := DecodeOutcome([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestExecSpecCachedDifferential: with a cache, the first call simulates
// and the second decodes — and both return the same outcome as the
// uncached path, byte for byte under the codec.
func TestExecSpecCachedDifferential(t *testing.T) {
	spec := SpecFromConfig("astar", Config{Monitor: "MemLeak", Instrs: 10_000, Seed: 1})
	plain, err := ExecSpec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	c := rcache.NewMem(8)
	first, src1, err := ExecSpecCached(context.Background(), c, spec)
	if err != nil {
		t.Fatal(err)
	}
	if src1 != rcache.SourceMiss {
		t.Fatalf("first cached call source = %v", src1)
	}
	second, src2, err := ExecSpecCached(context.Background(), c, spec)
	if err != nil {
		t.Fatal(err)
	}
	if src2 != rcache.SourceMem {
		t.Fatalf("second cached call source = %v", src2)
	}
	if !reflect.DeepEqual(first, plain) || !reflect.DeepEqual(second, plain) {
		t.Fatal("cached outcomes differ from the uncached run")
	}
}
