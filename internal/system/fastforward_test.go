package system

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fade/internal/fault"
	"fade/internal/monitor"
)

// stripFF removes the sim.ff.* lines from a Prometheus dump. Fast-forward
// accounting is observability of the simulator, not of the simulated
// hardware, so it is the one permitted difference between an exact run and
// a skip-ahead run.
func stripFF(dump []byte) []byte {
	var out []byte
	for _, line := range bytes.SplitAfter(dump, []byte("\n")) {
		if bytes.Contains(line, []byte("sim.ff.")) || bytes.Contains(line, []byte("sim_ff_")) {
			continue
		}
		out = append(out, line...)
	}
	return out
}

// TestFastForwardDifferential is the tentpole's correctness gate: for every
// monitor, every topology, with and without fault injection, a fast-forward
// run must be byte-identical (modulo the sim.ff.* namespace) to the
// cycle-exact run it replaces, down to the full Prometheus dump and every
// headline Result field.
func TestFastForwardDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("full monitor x topology x fault sweep")
	}
	topos := []struct {
		name string
		topo Topology
	}{
		{"single-smt", SingleCoreSMT},
		{"two-core", TwoCore},
		{"cmp4", CMP(4)},
	}
	plans := []struct {
		name string
		plan *fault.Plan
	}{
		{"no-fault", nil},
		{"faults", fullPlan()},
	}
	for _, mon := range monitor.Names() {
		for _, tc := range topos {
			for _, pc := range plans {
				mon, tc, pc := mon, tc, pc
				t.Run(mon+"/"+tc.name+"/"+pc.name, func(t *testing.T) {
					run := func(ff bool) (*Result, []byte) {
						// The baseline cache key ignores FastForward by design
						// (the flag cannot change results); reset it so each
						// arm simulates its own baseline rather than proving
						// only that the cache works.
						ResetBaselineCache()
						cfg := DefaultConfig(mon)
						cfg.Topology = tc.topo
						cfg.Instrs = 30_000
						cfg.Faults = pc.plan
						cfg.FastForward = ff
						r, err := Run("astar", cfg)
						if err != nil {
							t.Fatalf("ff=%v: %v", ff, err)
						}
						return r, stripFF(promDump(t, r))
					}
					exact, exactDump := run(false)
					fast, fastDump := run(true)
					if !bytes.Equal(exactDump, fastDump) {
						t.Fatalf("metric dumps differ (%d vs %d bytes)", len(exactDump), len(fastDump))
					}
					if exact.Cycles != fast.Cycles || exact.Slowdown != fast.Slowdown ||
						exact.HandlersRun != fast.HandlersRun || exact.Instrs != fast.Instrs ||
						len(exact.Reports) != len(fast.Reports) {
						t.Fatalf("results diverged: exact {cyc %d slow %.4f hnd %d ins %d rep %d}, ff {cyc %d slow %.4f hnd %d ins %d rep %d}",
							exact.Cycles, exact.Slowdown, exact.HandlersRun, exact.Instrs, len(exact.Reports),
							fast.Cycles, fast.Slowdown, fast.HandlersRun, fast.Instrs, len(fast.Reports))
					}
					if pc.plan != nil {
						// Fault engines are deliberately not Sleepers: an
						// injected run must pin itself cycle-exact.
						if v, ok := fast.Metrics.Get("sim.ff.pinned.component"); !ok || v != 1 {
							t.Fatalf("fault-injected run not pinned to cycle-exact (pinned.component = %v, %v)", v, ok)
						}
					}
				})
			}
		}
	}
}

// TestGoldenMetricsFastForward re-runs the committed golden configurations
// with skip-ahead enabled: after stripping the sim.ff.* namespace the dumps
// must match the cycle-exact testdata byte for byte. This ties fast-forward
// correctness to the same files that pin tick order for everyone else.
func TestGoldenMetricsFastForward(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"single-smt-fade", func(c *Config) {}},
		{"two-core-fade", func(c *Config) { c.Topology = TwoCore }},
		{"single-smt-unaccel", func(c *Config) { c.Accel = Unaccelerated }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ResetBaselineCache()
			cfg := DefaultConfig("MemLeak")
			cfg.FastForward = true
			tc.mutate(&cfg)
			r, err := Run("astar", cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := stripFF(promDump(t, r))
			want, err := os.ReadFile(filepath.Join("testdata", tc.name+".prom"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("fast-forward dump differs from the cycle-exact golden (%d vs %d bytes)", len(got), len(want))
			}
			ResetBaselineCache()
		})
	}
}

// TestFastForwardInvariantCheckedUnderInjection: requesting fast-forward,
// full fault injection, and the invariant checker together must degrade
// gracefully — the run pins itself cycle-exact (Check has no bulk
// equivalent) and the checker stays clean.
func TestFastForwardInvariantCheckedUnderInjection(t *testing.T) {
	ResetBaselineCache()
	defer ResetBaselineCache()
	cfg := DefaultConfig("MemLeak")
	cfg.Instrs = 30_000
	cfg.Faults = fullPlan()
	cfg.CheckInvariants = true
	cfg.FastForward = true
	r, err := Run("astar", cfg)
	if err != nil {
		t.Fatalf("invariant checker rejected a fast-forward-requested run: %v", err)
	}
	if v, ok := r.Metrics.Get("sim.ff.pinned.check"); !ok || v != 1 {
		t.Fatalf("checked run not pinned (pinned.check = %v, %v)", v, ok)
	}
	if v, _ := r.Metrics.Get("sim.ff.active"); v != 0 {
		t.Fatalf("pinned run reports sim.ff.active = %v, want 0", v)
	}
	if n := r.Metrics.Counter("sim.ff.jumps"); n != 0 {
		t.Fatalf("pinned run took %d jumps", n)
	}
}
