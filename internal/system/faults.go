package system

import (
	"fade/internal/cpu"
	"fade/internal/fault"
	"fade/internal/metadata"
	"fade/internal/trace"
)

// Fault wiring. Each core group gets its own fault.Engine (seeded per core,
// so a CMP's injectors are decorrelated exactly like its workload copies)
// registered on the clock ahead of every component that consults it,
// followed by a faultProbe that applies the cycle's decisions: queue
// throttles and metadata corruption. The monitor-stall decision is applied
// at the scheduling boundary instead, by wrapping the monitor thread in a
// stallGate — the engine itself never touches simulated components.

// stallGate freezes a monitor thread while its group's engine holds a
// monitor-stall burst: TickShare is swallowed, so the thread makes no
// progress, while Busy still reports pending work — the frozen thread
// occupies its hardware-thread slot (and, on a shared monitor core, its
// round-robin turn), so backpressure builds behind it rather than the
// stall being scheduled around.
type stallGate struct {
	mc  *cpu.MonitorCore
	eng *fault.Engine
}

func (s stallGate) TickShare(share float64) {
	if s.eng.MonStalled() {
		return
	}
	s.mc.TickShare(share)
}

func (s stallGate) Busy() bool { return s.mc.Busy() }

// faultProbe applies one group's per-cycle fault decisions. It ticks
// immediately after its engine, before any consumer or producer, so a
// cycle's throttles are in place before anyone tests queue fullness.
type faultProbe struct {
	eng *fault.Engine
	g   *coreGroup
}

// Tick implements sim.Component.
func (p *faultProbe) Tick(uint64) {
	p.g.evq.Throttle(p.eng.MEQCap())
	if p.g.fu != nil {
		p.g.fu.UFQ().Throttle(p.eng.UFQCap())
	}
	if off, mask, ok := p.eng.TakeCorruption(); ok {
		corruptMetadata(p.g.md, off, mask)
	}
}

// corruptMetadata flips bits in the shadow of the globals region — the one
// statically-known address range every monitor shadows — mapping the
// engine's raw offset draw into it. The corruption is applied through the
// ordinary metadata store path, so monitors observe perturbed state exactly
// as they would observe a real soft error in the metadata SRAM.
func corruptMetadata(md *metadata.State, off uint32, mask byte) {
	addr := trace.GlobalBase + off%trace.GlobalSize
	md.Mem.Store(addr, md.Mem.Load(addr)^mask)
}
