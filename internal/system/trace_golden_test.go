package system

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"fade/internal/fault"
	"fade/internal/spans"
)

// traceRun executes one traced run and returns its exports.
func traceRun(t *testing.T, cfg Config) (chrome, jsonl []byte, tr *spans.Trace) {
	t.Helper()
	tr = spans.New("golden", 0)
	ctx := spans.NewContext(context.Background(), tr)
	if _, err := RunContext(ctx, "astar", cfg); err != nil {
		t.Fatal(err)
	}
	var cb, jb bytes.Buffer
	if err := spans.WriteChromeJSON(&cb, tr); err != nil {
		t.Fatal(err)
	}
	if err := spans.WriteJSONL(&jb, tr); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb.Bytes(), tr
}

// TestGoldenTraces pins the cycle-domain trace of representative runs: one
// fault-injected SMT run (stall/throttle/drop/corrupt spans, queue
// episodes) and one fault-free CMP4 run under fast-forward (ff.jump spans,
// per-core tracks). Cycle-domain emission is a pure function of (seed,
// config, flags), so same-seed reruns must export byte-identical files —
// asserted directly here and pinned against the committed goldens.
// Regenerate with `go test ./internal/system -run TestGoldenTraces -update`
// only when a deliberate behavior change moves episode boundaries.
func TestGoldenTraces(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"trace-smt-faults", func(c *Config) {
			c.Instrs = 12_000
			c.Faults = &fault.Plan{
				Seed:         7,
				MonitorStall: &fault.Stall{MeanGap: 2048, MeanDuration: 256},
				MEQPressure:  &fault.Pressure{MeanGap: 4096, MeanDuration: 128, CapFactor: 0.25},
				UFQPressure:  &fault.Pressure{MeanGap: 4096, MeanDuration: 128, CapFactor: 0.5},
				EventDrop:    &fault.Drop{Rate: 0.0005},
				MDCorruption: &fault.Corrupt{MeanGap: 20_000},
			}
		}},
		{"trace-cmp4-ff", func(c *Config) {
			c.Instrs = 4_000
			c.Topology = CMP(4)
			c.FastForward = true
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig("MemLeak")
			tc.mutate(&cfg)
			chrome, jsonl, tr := traceRun(t, cfg)
			chrome2, jsonl2, _ := traceRun(t, cfg)
			if !bytes.Equal(chrome, chrome2) || !bytes.Equal(jsonl, jsonl2) {
				t.Fatalf("same-seed reruns exported different traces")
			}
			if err := spans.ValidateChromeJSON(chrome); err != nil {
				t.Fatalf("export failed the Chrome validator: %v", err)
			}
			if tr.Len() == 0 {
				t.Fatal("traced run emitted no spans")
			}
			if tr.Dropped() != 0 {
				t.Fatalf("golden run overflowed the default ring (%d dropped); grow the capacity or shrink the run", tr.Dropped())
			}
			for _, s := range tr.Spans() {
				if !spans.Known(s.Name) {
					t.Fatalf("emitted span %q is not a registered spans.Name", s.Name)
				}
				if s.Domain != spans.Cycle {
					t.Fatalf("system run emitted a non-cycle span %q", s.Name)
				}
			}
			for ext, got := range map[string][]byte{".trace.json": chrome, ".trace.jsonl": jsonl} {
				path := filepath.Join("testdata", tc.name+ext)
				if *updateGolden {
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update to create): %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("trace differs from %s (%d vs %d bytes); an episode boundary moved", path, len(got), len(want))
				}
			}
		})
	}
}

// TestTraceEpisodesFFInvariant: queue full/drain episodes and monitor-
// behind intervals must be identical with fast-forward on or off. The
// trace probe does not pin fast-forward (it is a Sleeper), which is only
// sound if jumps can never skip an episode boundary — queue state is
// frozen across a quiescent span, so boundaries fall on executed cycles.
// Scheduler-track spans (ff jumps, checkpoints) legitimately differ and
// are excluded.
func TestTraceEpisodesFFInvariant(t *testing.T) {
	episodes := func(ff bool) []spans.Span {
		cfg := DefaultConfig("MemLeak")
		cfg.Instrs = 20_000
		cfg.Topology = CMP(2)
		cfg.FastForward = ff
		tr := spans.New("diff", 1<<16)
		if _, err := RunContext(spans.NewContext(context.Background(), tr), "astar", cfg); err != nil {
			t.Fatal(err)
		}
		var out []spans.Span
		for _, s := range tr.Spans() {
			switch s.Name {
			case spans.NameMEQFull, spans.NameMEQDrain, spans.NameUFQFull,
				spans.NameUFQDrain, spans.NameMonBehind:
				out = append(out, s)
			}
		}
		return out
	}
	on, off := episodes(true), episodes(false)
	if len(on) == 0 {
		t.Fatal("no episode spans emitted")
	}
	if len(on) != len(off) {
		t.Fatalf("episode count differs: ff-on %d, ff-off %d", len(on), len(off))
	}
	for i := range on {
		if on[i] != off[i] {
			t.Fatalf("episode %d differs: ff-on %+v, ff-off %+v", i, on[i], off[i])
		}
	}
}

// TestTraceZeroWhenAbsent: a run without a trace in its context must not
// emit spans.* metrics (shape-stability, like sim.ff.*) — implicitly
// covered by TestGoldenMetrics — and a traced run must register them.
func TestTraceMetricsRegisteredOnlyWhenTracing(t *testing.T) {
	cfg := DefaultConfig("MemLeak")
	cfg.Instrs = 20_000
	r, err := Run("astar", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Metrics.Get("spans.emitted"); ok {
		t.Fatal("untraced run exposed spans.* metrics")
	}
	tr := spans.New("t", 0)
	r2, err := RunContext(spans.NewContext(context.Background(), tr), "astar", cfg)
	if err != nil {
		t.Fatal(err)
	}
	emitted, ok := r2.Metrics.Get("spans.emitted")
	if !ok || emitted == 0 {
		t.Fatalf("traced run spans.emitted = %v (present=%v), want > 0", emitted, ok)
	}
	if emitted != float64(tr.Emitted()) {
		t.Fatalf("spans.emitted metric %v != trace accounting %d", emitted, tr.Emitted())
	}
}
