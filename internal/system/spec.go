package system

import (
	"context"
	"fmt"
	"time"

	"fade/internal/cpu"
	"fade/internal/runspec"
	"fade/internal/sim"
	"fade/internal/stats"
	"fade/internal/trace"
)

// AccelName maps an Accel onto the runspec / serving-API vocabulary.
func AccelName(a Accel) string {
	switch a {
	case FADEBlocking:
		return runspec.AccelBlocking
	case FADENonBlocking:
		return runspec.AccelFADE
	default:
		return runspec.AccelNone
	}
}

// AccelFromName is the inverse of AccelName ("" selects the default,
// non-blocking FADE).
func AccelFromName(name string) (Accel, error) {
	switch name {
	case "", runspec.AccelFADE:
		return FADENonBlocking, nil
	case runspec.AccelBlocking:
		return FADEBlocking, nil
	case runspec.AccelNone:
		return Unaccelerated, nil
	default:
		return 0, fmt.Errorf("system: unknown accel %q (want none|blocking|fade)", name)
	}
}

// CoreName maps a cpu.Kind onto the runspec vocabulary.
func CoreName(k cpu.Kind) string {
	switch k {
	case cpu.InOrder:
		return runspec.CoreInOrder
	case cpu.OoO2:
		return runspec.Core2Way
	default:
		return runspec.Core4Way
	}
}

// CoreFromName is the inverse of CoreName ("" selects the default 4-way
// OoO core).
func CoreFromName(name string) (cpu.Kind, error) {
	switch name {
	case "", runspec.Core4Way:
		return cpu.OoO4, nil
	case runspec.Core2Way:
		return cpu.OoO2, nil
	case runspec.CoreInOrder:
		return cpu.InOrder, nil
	default:
		return 0, fmt.Errorf("system: unknown core %q (want inorder|2way|4way)", name)
	}
}

// ConfigFromSpec maps a canonical run spec onto a runnable Config. The
// spec's MaxCycles and WallClockMS become RunLimits (MaxCycles as a hard
// cap, WallClockMS as the real-time watchdog); everything else maps
// field-for-field. It rejects only unknown enum names — Config.Validate
// covers the rest.
func ConfigFromSpec(s runspec.Spec) (Config, error) {
	var zero Config
	accel, err := AccelFromName(s.Accel)
	if err != nil {
		return zero, err
	}
	core, err := CoreFromName(s.Core)
	if err != nil {
		return zero, err
	}
	cfg := Config{
		Core:                 core,
		Topology:             Topology{AppCores: s.AppCores, MonCores: s.MonCores, SMT: s.SMT},
		Accel:                accel,
		Monitor:              s.Monitor,
		EventQueueCap:        s.EventQueueCap,
		UnfilteredCap:        s.UnfilteredCap,
		MDCacheBytes:         s.MDCacheBytes,
		BlockingSignalCycles: s.BlockingSignalCycles,
		Seed:                 s.Seed,
		Instrs:               s.Instrs,
		WarmupInstrs:         s.WarmupInstrs,
		Inject:               s.Inject,
		TimelineEvery:        s.TimelineEvery,
		Faults:               s.Faults,
		CheckInvariants:      s.CheckInvariants,
		FastForward:          s.FastForward,
	}
	cfg.Limits = RunLimits{
		MaxCycles: s.MaxCycles,
		WallClock: time.Duration(s.WallClockMS) * time.Millisecond,
	}
	return cfg, nil
}

// SpecFromConfig is the inverse of ConfigFromSpec: the canonical spec of
// running bench under cfg. ConfigFromSpec(SpecFromConfig(b, cfg)) describes
// the same run (normalized: zero-value defaults fold onto their documented
// values).
func SpecFromConfig(bench string, cfg Config) runspec.Spec {
	topo := cfg.Topology.normalize()
	s := runspec.Spec{
		Benchmark:            bench,
		Monitor:              cfg.Monitor,
		Accel:                AccelName(cfg.Accel),
		Core:                 CoreName(cfg.Core),
		AppCores:             topo.AppCores,
		MonCores:             topo.MonCores,
		SMT:                  topo.SMT,
		Seed:                 cfg.Seed,
		Instrs:               cfg.Instrs,
		WarmupInstrs:         cfg.WarmupInstrs,
		EventQueueCap:        cfg.EventQueueCap,
		UnfilteredCap:        cfg.UnfilteredCap,
		MDCacheBytes:         cfg.MDCacheBytes,
		BlockingSignalCycles: cfg.BlockingSignalCycles,
		TimelineEvery:        cfg.TimelineEvery,
		CheckInvariants:      cfg.CheckInvariants,
		FastForward:          cfg.FastForward,
		MaxCycles:            cfg.MaxCycles,
		WallClockMS:          cfg.Limits.WallClock.Milliseconds(),
		Faults:               cfg.Faults,
		Inject:               cfg.Inject,
	}
	if cfg.Limits.MaxCycles != 0 {
		s.MaxCycles = cfg.Limits.MaxCycles
	}
	return s
}

// CoreModelIPC is the outcome of one core-model cross-validation cell
// (the ablation-coremodel experiment): the same workload's baseline IPC
// under the calibrated rate-based timing model and the dependency-driven
// detailed model (4-way OoO and in-order).
type CoreModelIPC struct {
	Rate     float64 `json:"rate"`
	Detailed float64 `json:"detailed"`
	InOrder  float64 `json:"inorder"`
}

// RunCoreModelStudy runs the core-model cross-validation for one
// benchmark: the rate model on the sim kernel, then the detailed model
// 4-way and in-order, all over the same generated workload.
func RunCoreModelStudy(ctx context.Context, bench string, seed, instrs uint64) (*CoreModelIPC, error) {
	prof, ok := trace.Lookup(bench)
	if !ok {
		return nil, fmt.Errorf("system: unknown benchmark %q", bench)
	}
	if instrs == 0 {
		instrs = 400_000
	}
	gen := trace.New(prof, seed, instrs)
	app := cpu.NewAppCore(cpu.OoO4, prof, gen, nil, nil)
	clock := sim.NewClock()
	clock.Register(app)
	sched := &sim.Scheduler{Clock: clock, MaxCycles: instrs * 200,
		Done: func(uint64) bool { return app.Done() }}
	if ctx != nil && ctx != context.Background() {
		sched.Ctx = ctx
	}
	out := sched.Run()
	if !out.Completed {
		return nil, fmt.Errorf("system: rate model for %s: %w", bench, out.Err)
	}
	rate := stats.Ratio(app.Instrs(), out.Cycles)
	c4, r4, err := cpu.RunDetailed(cpu.OoO4, trace.New(prof, seed, instrs), seed, instrs*200)
	if err != nil {
		return nil, fmt.Errorf("system: detailed model for %s: %w", bench, err)
	}
	ci, ri, err := cpu.RunDetailed(cpu.InOrder, trace.New(prof, seed, instrs), seed, instrs*200)
	if err != nil {
		return nil, fmt.Errorf("system: in-order detailed model for %s: %w", bench, err)
	}
	return &CoreModelIPC{Rate: rate, Detailed: stats.Ratio(r4, c4), InOrder: stats.Ratio(ri, ci)}, nil
}

// Outcome is the result of executing one runspec.Spec: exactly one field
// is set, matching the spec's kind. It is the unit the result cache
// stores.
type Outcome struct {
	// Result is set for KindRun specs.
	Result *Result `json:"result,omitempty"`
	// Study is set for KindStudy specs.
	Study *QueueStudy `json:"study,omitempty"`
	// CoreModel is set for KindCoreModel specs.
	CoreModel *CoreModelIPC `json:"core_model,omitempty"`
	// Baseline is set for KindBaseline specs: the unmonitored cycle count
	// and warm-up boundary cycle.
	Baseline *BaselineOutcome `json:"baseline,omitempty"`
}

// BaselineOutcome is the KindBaseline result: the denominator of every
// slowdown.
type BaselineOutcome struct {
	Cycles       uint64 `json:"cycles"`
	WarmBoundary uint64 `json:"warm_boundary"`
}

// ExecSpec executes a canonical run spec, dispatching on its kind. The
// spec is normalized and validated first, so an incomplete spec executes
// exactly like its explicit-defaults equivalent (and hashes the same).
func ExecSpec(ctx context.Context, s runspec.Spec) (*Outcome, error) {
	s = s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case runspec.KindRun:
		cfg, err := ConfigFromSpec(s)
		if err != nil {
			return nil, err
		}
		res, err := RunContext(ctx, s.Benchmark, cfg)
		if err != nil {
			return nil, err
		}
		return &Outcome{Result: res}, nil
	case runspec.KindStudy:
		core, err := CoreFromName(s.Core)
		if err != nil {
			return nil, err
		}
		qs, err := RunQueueStudyContext(ctx, s.Benchmark, s.Monitor, core, s.EventQueueCap, s.Seed, s.Instrs)
		if err != nil {
			return nil, err
		}
		return &Outcome{Study: qs}, nil
	case runspec.KindCoreModel:
		cm, err := RunCoreModelStudy(ctx, s.Benchmark, s.Seed, s.Instrs)
		if err != nil {
			return nil, err
		}
		return &Outcome{CoreModel: cm}, nil
	case runspec.KindBaseline:
		prof, ok := trace.Lookup(s.Benchmark)
		if !ok {
			return nil, fmt.Errorf("system: unknown benchmark %q", s.Benchmark)
		}
		if s.Inject != nil {
			p := *prof
			p.Inject = *s.Inject
			prof = &p
		}
		core, err := CoreFromName(s.Core)
		if err != nil {
			return nil, err
		}
		cfg := Config{Core: core, Seed: s.Seed, Instrs: s.Instrs,
			MaxCycles: s.MaxCycles, WarmupInstrs: s.WarmupInstrs}
		if cfg.MaxCycles == 0 {
			cfg.MaxCycles = cfg.Instrs * 100
		}
		val, err := simulateBaseline(ctx, prof, cfg, time.Time{})
		if err != nil {
			return nil, err
		}
		return &Outcome{Baseline: &BaselineOutcome{Cycles: val.cycles, WarmBoundary: val.boundary}}, nil
	default:
		return nil, fmt.Errorf("system: unknown spec kind %q", s.Kind)
	}
}
