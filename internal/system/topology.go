package system

import "fmt"

// Topology describes the system organization as a CMP of identical
// application cores, each with its own private filtering unit and event
// queues (the paper's Fig. 8 scaled out per Section 7: FADE is a per-core
// block). Monitoring software runs either in the second hardware thread of
// each application core (SMT, Fig. 8b) or on dedicated monitor cores
// (Fig. 8a), with monitor threads assigned to monitor cores round-robin.
//
// Topology is comparable: the two historical organizations are the package
// variables SingleCoreSMT and TwoCore, and configs may be compared against
// them with ==.
type Topology struct {
	// AppCores is the number of application cores. 0 normalizes to 1.
	AppCores int
	// MonCores is the number of dedicated monitor cores; it must be 0 when
	// SMT is set and between 1 and AppCores otherwise. A monitor core
	// serving several application cores is fine-grained multithreaded
	// between their monitor threads.
	MonCores int
	// SMT runs each monitor thread in the second hardware thread of its
	// application core instead of on a dedicated core.
	SMT bool
}

// The two historical organizations of Fig. 8. These are variables only
// because struct values cannot be constants; do not reassign them.
var (
	// SingleCoreSMT runs application and monitor in dedicated hardware
	// threads of one fine-grained dual-threaded core (Fig. 8b).
	SingleCoreSMT = Topology{AppCores: 1, SMT: true}
	// TwoCore runs them on separate cores (Fig. 8a).
	TwoCore = Topology{AppCores: 1, MonCores: 1}
)

// CMP returns the scaled-out evaluation topology: n application cores, each
// paired with a dedicated monitor core (Fig. 8a replicated n times, the
// organization of the Section 7 scalability discussion). CMP(1) == TwoCore.
func CMP(appCores int) Topology {
	return Topology{AppCores: appCores, MonCores: appCores}
}

func (t Topology) String() string {
	switch t.normalize() {
	case SingleCoreSMT:
		return "single-core"
	case TwoCore:
		return "two-core"
	}
	if t.SMT {
		return fmt.Sprintf("%d-core-smt", t.AppCores)
	}
	return fmt.Sprintf("%d+%d-core", t.AppCores, t.MonCores)
}

// normalize maps the zero value to the historical default (SingleCoreSMT —
// Topology was once an enum whose zero value selected it) and defaults
// AppCores to 1.
func (t Topology) normalize() Topology {
	if t == (Topology{}) {
		return SingleCoreSMT
	}
	if t.AppCores == 0 {
		t.AppCores = 1
	}
	return t
}

// validate rejects organizations the system layer cannot wire.
func (t Topology) validate() error {
	if t.AppCores < 1 {
		return fmt.Errorf("system: topology needs at least one application core, got %d", t.AppCores)
	}
	if t.SMT {
		if t.MonCores != 0 {
			return fmt.Errorf("system: SMT topology hosts monitor threads on the application cores; MonCores must be 0, got %d", t.MonCores)
		}
		return nil
	}
	if t.MonCores < 1 {
		return fmt.Errorf("system: non-SMT topology needs at least one monitor core")
	}
	if t.MonCores > t.AppCores {
		return fmt.Errorf("system: %d monitor cores for %d application cores; extra monitor cores would sit idle", t.MonCores, t.AppCores)
	}
	return nil
}

// monCoreOf returns the dedicated monitor core serving application core i
// (round-robin; meaningless under SMT).
func (t Topology) monCoreOf(i int) int {
	return i % t.MonCores
}

// coreSeed derives application core i's trace seed from the config seed.
// Core 0 uses the seed unchanged, so a 1-core topology reproduces the
// single-core instruction stream exactly; higher cores perturb it with a
// splitmix-style odd constant so the multiprogrammed copies decorrelate.
func coreSeed(seed uint64, i int) uint64 {
	return seed + uint64(i)*0x9E3779B97F4A7C15
}
