package system

import (
	"strings"
	"testing"
)

func multiConfig(t Topology) Config {
	c := DefaultConfig("MemLeak")
	c.Instrs = 20_000
	c.Topology = t
	return c
}

// TestCMPCoreZeroMatchesTwoCore pins the CMP generalization to the historical
// two-core system: core 0 of a CMP(2) run is wired identically to a TwoCore
// run (same seed, same private group), so its per-core sub-result must equal
// the TwoCore aggregate exactly.
func TestCMPCoreZeroMatchesTwoCore(t *testing.T) {
	ref, err := Run("astar", multiConfig(TwoCore))
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Run("astar", multiConfig(CMP(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Cores) != 2 {
		t.Fatalf("CMP(2) has %d core results", len(cmp.Cores))
	}
	c0 := cmp.Cores[0]
	if c0.Cycles != ref.Cycles {
		t.Errorf("core 0 cycles = %d, TwoCore = %d", c0.Cycles, ref.Cycles)
	}
	if c0.BaselineCycles != ref.BaselineCycles {
		t.Errorf("core 0 baseline = %d, TwoCore = %d", c0.BaselineCycles, ref.BaselineCycles)
	}
	if c0.Instrs != ref.Instrs {
		t.Errorf("core 0 instrs = %d, TwoCore = %d", c0.Instrs, ref.Instrs)
	}
	if c0.MonitoredEvents != ref.MonitoredEvents {
		t.Errorf("core 0 events = %d, TwoCore = %d", c0.MonitoredEvents, ref.MonitoredEvents)
	}
	if c0.HandlersRun != ref.HandlersRun {
		t.Errorf("core 0 handlers = %d, TwoCore = %d", c0.HandlersRun, ref.HandlersRun)
	}
	if c0.Slowdown != ref.Slowdown {
		t.Errorf("core 0 slowdown = %v, TwoCore = %v", c0.Slowdown, ref.Slowdown)
	}
	// Core 1 runs a decorrelated trace: it must differ from core 0.
	if cmp.Cores[1].Seed == c0.Seed {
		t.Error("core 1 did not derive a distinct seed")
	}
	// Aggregate invariants.
	if cmp.Instrs != c0.Instrs+cmp.Cores[1].Instrs {
		t.Errorf("aggregate instrs %d != sum of cores", cmp.Instrs)
	}
	if cmp.Cycles < c0.Cycles || cmp.Cycles < cmp.Cores[1].Cycles {
		t.Errorf("CMP cycles %d below a member core's", cmp.Cycles)
	}
}

func TestTopologyValidation(t *testing.T) {
	bad := []Topology{
		{AppCores: 2, SMT: true, MonCores: 1}, // SMT with dedicated cores
		{AppCores: 2, MonCores: 3},            // more monitor cores than apps
		{AppCores: 2},                         // non-SMT without monitor cores
		{AppCores: -1, MonCores: 1},           // negative
	}
	for _, topo := range bad {
		if _, err := Run("astar", multiConfig(topo)); err == nil {
			t.Errorf("topology %+v accepted", topo)
		}
	}
}

func TestTopologyString(t *testing.T) {
	cases := map[string]Topology{
		"single-core": SingleCoreSMT,
		"two-core":    TwoCore,
		"4+4-core":    CMP(4),
		"2-core-smt":  {AppCores: 2, SMT: true},
		"4+2-core":    {AppCores: 4, MonCores: 2},
	}
	for want, topo := range cases {
		if got := topo.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", topo, got, want)
		}
	}
	if (Topology{}).String() != "single-core" {
		t.Error("zero topology does not normalize to single-core")
	}
	if CMP(1) != TwoCore {
		t.Error("CMP(1) != TwoCore")
	}
}

// TestMulticoreSMT exercises N SMT cores, each time-sharing its application
// and monitor threads.
func TestMulticoreSMT(t *testing.T) {
	res, err := Run("astar", multiConfig(Topology{AppCores: 2, SMT: true}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 2 {
		t.Fatalf("%d core results", len(res.Cores))
	}
	for i, c := range res.Cores {
		if c.Cycles == 0 || c.HandlersRun == 0 {
			t.Errorf("core %d: cycles=%d handlers=%d", i, c.Cycles, c.HandlersRun)
		}
	}
	if res.Slowdown < 1 {
		t.Errorf("slowdown %v < 1", res.Slowdown)
	}
}

// TestSharedMonitorCore exercises MonCores < AppCores: one monitor core
// fine-grained-multithreads the monitor threads of several groups.
func TestSharedMonitorCore(t *testing.T) {
	res, err := Run("astar", multiConfig(Topology{AppCores: 2, MonCores: 1}))
	if err != nil {
		t.Fatal(err)
	}
	var handlers uint64
	for _, c := range res.Cores {
		handlers += c.HandlersRun
	}
	if handlers == 0 {
		t.Fatal("shared monitor core ran no handlers")
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles simulated")
	}
}

func TestRunWithMonitorRejectsMulticore(t *testing.T) {
	_, err := RunWithMonitor("astar", multiConfig(CMP(2)), nil)
	if err == nil || !strings.Contains(err.Error(), "single-app-core") {
		t.Fatalf("err = %v, want single-app-core rejection", err)
	}
}

// TestMulticoreMetricNamespaces checks the per-core metric grammar: a CMP
// run indexes every component namespace (app.0.*, fu.1.*, ...) and drops the
// un-indexed single-core names; a single-core run keeps the legacy names.
func TestMulticoreMetricNamespaces(t *testing.T) {
	multi, err := Run("astar", multiConfig(CMP(2)))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"app.0.instrs", "app.1.instrs", "moncore.1.handlers_run",
		"queue.meq.0.max_occupancy", "fu.1.events.instr",
		"sim.core.0.slowdown", "sim.core.1.cycles", "sim.core.1.baseline_cycles",
	} {
		if _, ok := multi.Metrics.Get(name); !ok {
			t.Errorf("CMP(2) metrics missing %s", name)
		}
	}
	for _, name := range []string{"app.instrs", "fu.events.instr", "moncore.handlers_run"} {
		if _, ok := multi.Metrics.Get(name); ok {
			t.Errorf("CMP(2) metrics contain un-indexed %s", name)
		}
	}
	single, err := Run("astar", multiConfig(TwoCore))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"app.instrs", "fu.events.instr", "moncore.handlers_run"} {
		if _, ok := single.Metrics.Get(name); !ok {
			t.Errorf("single-core metrics missing legacy %s", name)
		}
	}
	if _, ok := single.Metrics.Get("app.0.instrs"); ok {
		t.Error("single-core metrics contain indexed app.0.instrs")
	}
}
