package system

import (
	"strconv"

	"fade/internal/queue"
	"fade/internal/sim"
	"fade/internal/spans"
)

// Trace wiring for runSystem. A run traces exactly when its context
// carries a spans.Trace (spans.FromContext); otherwise every hook below is
// nil and the simulation's hot path is unchanged — the same arming pattern
// as the sim.ff.* counters. Cycle-domain spans are deterministic per
// (seed, config, flags): every emitter fires on component state
// transitions, which a fixed seed reproduces exactly (the golden trace
// tests pin this byte-for-byte).

// traceProbe is the per-run episode observer: it watches each core group's
// queue extremes (MEQ/UFQ full and drain episodes) and monitor-behind
// intervals against post-tick state, which it sees by being registered
// LAST on the clock.
//
// The probe implements sim.Sleeper as the identity sleeper — never needing
// an exact tick, nothing to replay — so it does not pin fast-forward. That
// is sound, not just convenient: a fast-forward jump only covers cycles
// where every component is quiescent, i.e. where queue occupancies and
// drain state are frozen, so an episode boundary can only occur on an
// executed cycle, which the probe always observes. Traced episodes are
// therefore identical with fast-forward on or off.
type traceProbe struct {
	tr     *spans.Trace
	groups []*coreGroup
	tracks []int32
	meq    []*queue.EpisodeTracer
	ufq    []*queue.EpisodeTracer

	behind      []bool
	behindDone  []bool
	behindSince []uint64
}

// newTraceProbe allocates one cycle-domain track per core group (in core
// order, so track allocation is deterministic) and wires the queue episode
// tracers. It returns nil when tr is nil.
func newTraceProbe(tr *spans.Trace, groups []*coreGroup, single bool) *traceProbe {
	if tr == nil {
		return nil
	}
	p := &traceProbe{
		tr:          tr,
		groups:      groups,
		tracks:      make([]int32, len(groups)),
		meq:         make([]*queue.EpisodeTracer, len(groups)),
		ufq:         make([]*queue.EpisodeTracer, len(groups)),
		behind:      make([]bool, len(groups)),
		behindDone:  make([]bool, len(groups)),
		behindSince: make([]uint64, len(groups)),
	}
	for i, g := range groups {
		name := "sim/core"
		if !single {
			name = "sim/app" + strconv.Itoa(g.idx)
		}
		p.tracks[i] = tr.NewTrack(name)
		g.eng.SetTrace(tr, p.tracks[i])
		p.meq[i] = queue.NewEpisodeTracer(g.evq, tr, p.tracks[i], spans.NameMEQFull, spans.NameMEQDrain)
		if g.fu != nil {
			p.ufq[i] = queue.NewEpisodeTracer(g.fu.UFQ(), tr, p.tracks[i], spans.NameUFQFull, spans.NameUFQDrain)
		}
	}
	return p
}

// Tick implements sim.Component, observing the cycle's post-tick state.
func (p *traceProbe) Tick(cycle uint64) {
	for i, g := range p.groups {
		p.meq[i].Observe(cycle)
		p.ufq[i].Observe(cycle)
		if p.behindDone[i] {
			continue
		}
		switch {
		case p.behind[i]:
			if g.drained() {
				p.tr.CycleSpan(p.tracks[i], spans.NameMonBehind, p.behindSince[i], cycle,
					spans.None, spans.None)
				p.behind[i] = false
				p.behindDone[i] = true
			}
		case g.app.Done() && !g.drained():
			p.behind[i] = true
			p.behindSince[i] = cycle
		}
	}
}

// NextWake implements sim.Sleeper: the probe never needs an exact tick of
// its own (see the type comment for why skipping it is sound).
func (p *traceProbe) NextWake(uint64) uint64 { return sim.NeverWake }

// FastForward implements sim.Sleeper: state is frozen across a skipped
// span, so there is nothing to observe or replay.
func (p *traceProbe) FastForward(uint64, uint64) {}

// flush closes every episode still open when the run stopped at end —
// including aborted runs, whose partial traces are still exported.
func (p *traceProbe) flush(end uint64) {
	if p == nil {
		return
	}
	for i, g := range p.groups {
		p.meq[i].Flush(end)
		p.ufq[i].Flush(end)
		if p.behind[i] {
			p.tr.CycleSpan(p.tracks[i], spans.NameMonBehind, p.behindSince[i], end,
				spans.None, spans.None)
			p.behind[i] = false
		}
		g.eng.FlushTrace(end)
	}
}
