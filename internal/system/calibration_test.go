package system

import (
	"testing"

	"fade/internal/cpu"
	"fade/internal/queue"
	"fade/internal/stats"
	"fade/internal/trace"
)

// Calibration tests pin the simulated systems to the paper's reported
// statistics (DESIGN.md §5). Bands are deliberately loose: the claim is
// shape, not cycle-exactness. These are the guardrails that keep future
// changes from silently drifting away from the reproduced results.

func benchesFor(mon string) []string {
	switch mon {
	case "AtomCheck":
		return trace.ParallelNames()
	case "TaintCheck":
		return trace.TaintNames()
	default:
		return trace.SerialNames()
	}
}

func suiteAverages(t *testing.T, mon string, accel Accel, instrs uint64) (slow float64, filter float64) {
	t.Helper()
	var slows, filters []float64
	for _, bench := range benchesFor(mon) {
		cfg := DefaultConfig(mon)
		cfg.Accel = accel
		cfg.Instrs = instrs
		r, err := Run(bench, cfg)
		if err != nil {
			t.Fatalf("%s/%s: %v", mon, bench, err)
		}
		slows = append(slows, r.Slowdown)
		if r.Filter != nil {
			filters = append(filters, r.Filter.FilterRatio())
		}
	}
	return stats.AMean(slows), stats.AMean(filters)
}

// TestCalibrationTable2 pins the filtering efficiencies of Table 2:
// AddrCheck 99.5%, AtomCheck 85.5%, MemCheck 98%, MemLeak 87%, TaintCheck
// 84% — all within the paper's 84-99% span.
func TestCalibrationTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are slow")
	}
	bands := map[string][2]float64{
		"AddrCheck":  {0.97, 1.001},
		"AtomCheck":  {0.72, 0.93},
		"MemCheck":   {0.94, 1.001},
		"MemLeak":    {0.80, 0.95},
		"TaintCheck": {0.75, 0.96}, // taint density ramps with run length; 0.90 at 300K instrs
	}
	for mon, band := range bands {
		_, filter := suiteAverages(t, mon, FADENonBlocking, 120_000)
		if filter < band[0] || filter > band[1] {
			t.Errorf("%s filter ratio %.3f outside [%v,%v] (paper Table 2)", mon, filter, band[0], band[1])
		}
	}
}

// TestCalibrationFig9 pins the headline slowdowns: unaccelerated 1.6-7.4x
// per monitor averaging ~4.1x; FADE 1.2-1.8x averaging ~1.5x.
func TestCalibrationFig9(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are slow")
	}
	type band struct{ lo, hi float64 }
	unaccBands := map[string]band{
		"AddrCheck":  {1.2, 2.4},
		"AtomCheck":  {2.7, 5.5},
		"MemCheck":   {4.0, 8.0},
		"MemLeak":    {5.5, 10.0},
		"TaintCheck": {4.0, 8.5},
	}
	fadeBands := map[string]band{
		"AddrCheck":  {1.0, 1.5},
		"AtomCheck":  {1.4, 3.2},
		"MemCheck":   {1.1, 2.2},
		"MemLeak":    {1.5, 3.2},
		"TaintCheck": {1.4, 3.4},
	}
	var unaccAll, fadeAll []float64
	for mon, b := range unaccBands {
		slow, _ := suiteAverages(t, mon, Unaccelerated, 120_000)
		unaccAll = append(unaccAll, slow)
		if slow < b.lo || slow > b.hi {
			t.Errorf("%s unaccelerated slowdown %.2f outside [%v,%v]", mon, slow, b.lo, b.hi)
		}
		fb := fadeBands[mon]
		fslow, _ := suiteAverages(t, mon, FADENonBlocking, 120_000)
		fadeAll = append(fadeAll, fslow)
		if fslow < fb.lo || fslow > fb.hi {
			t.Errorf("%s FADE slowdown %.2f outside [%v,%v]", mon, fslow, fb.lo, fb.hi)
		}
	}
	if avg := stats.AMean(unaccAll); avg < 3.2 || avg > 6.5 {
		t.Errorf("overall unaccelerated average %.2f (paper ~4.1x)", avg)
	}
	if avg := stats.AMean(fadeAll); avg < 1.2 || avg > 2.6 {
		t.Errorf("overall FADE average %.2f (paper ~1.5x)", avg)
	}
}

// TestCalibrationMonitoredIPC pins Fig. 2: AddrCheck's monitored IPC
// averages ~0.24 and stays well below 1.0; MemLeak averages ~0.68 with
// bzip above 1.0 and mcf at ~0.2.
func TestCalibrationMonitoredIPC(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are slow")
	}
	var addr, leak []float64
	perBench := map[string]float64{}
	for _, bench := range trace.SerialNames() {
		a, err := RunQueueStudy(bench, "AddrCheck", cpu.OoO4, queue.Unbounded, 1, 120_000)
		if err != nil {
			t.Fatal(err)
		}
		m, err := RunQueueStudy(bench, "MemLeak", cpu.OoO4, queue.Unbounded, 1, 120_000)
		if err != nil {
			t.Fatal(err)
		}
		addr = append(addr, a.MonitoredIPC)
		leak = append(leak, m.MonitoredIPC)
		perBench[bench] = m.MonitoredIPC
	}
	if avg := stats.AMean(addr); avg < 0.12 || avg > 0.45 {
		t.Errorf("AddrCheck monitored IPC avg %.2f (paper ~0.24)", avg)
	}
	if avg := stats.AMean(leak); avg < 0.45 || avg > 0.95 {
		t.Errorf("MemLeak monitored IPC avg %.2f (paper ~0.68)", avg)
	}
	if perBench["bzip"] <= 1.0 {
		t.Errorf("bzip monitored IPC %.2f not above 1.0 (paper ~1.2)", perBench["bzip"])
	}
	if perBench["mcf"] > 0.45 {
		t.Errorf("mcf monitored IPC %.2f too high (paper ~0.2)", perBench["mcf"])
	}
	for bench, v := range perBench {
		if bench != "bzip" && v > 1.0 {
			t.Errorf("%s monitored IPC %.2f above 1.0; only bzip exceeds 1.0 in the paper", bench, v)
		}
	}
}

// TestCalibrationBurstiness pins Fig. 3's occupancy story: omnetpp needs
// thousands of entries, mcf only tens.
func TestCalibrationBurstiness(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are slow")
	}
	om, err := RunQueueStudy("omnet", "MemLeak", cpu.OoO4, queue.Unbounded, 1, 250_000)
	if err != nil {
		t.Fatal(err)
	}
	if om.MaxOccupancy < 500 {
		t.Errorf("omnet max occupancy %d; paper needs ~8K entries", om.MaxOccupancy)
	}
	mc, err := RunQueueStudy("mcf", "MemLeak", cpu.OoO4, queue.Unbounded, 1, 250_000)
	if err != nil {
		t.Fatal(err)
	}
	if mc.MaxOccupancy > 256 {
		t.Errorf("mcf max occupancy %d; paper fits in ~128 entries", mc.MaxOccupancy)
	}
}

// TestCalibrationUnfilteredBursts pins Fig. 4(b,c): unfiltered events come
// in short bursts separated by mostly-filterable stretches.
func TestCalibrationUnfilteredBursts(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are slow")
	}
	cfg := DefaultConfig("MemLeak")
	cfg.Instrs = 120_000
	r, err := Run("gobmk", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Filter.BurstSizes.Total() == 0 {
		t.Fatal("no bursts recorded")
	}
	if mean := r.Filter.BurstSizes.Mean(); mean > 64 {
		t.Errorf("mean burst size %.1f; paper reports <=16 for most pairs", mean)
	}
}
