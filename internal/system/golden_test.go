package system

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"fade/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden testdata files")

// TestGoldenMetrics pins the exact Prometheus dump of representative runs:
// the simulation is deterministic, so any change to component tick order,
// arbitration, or metric naming shows up as a byte-level diff against the
// committed testdata. Regenerate with `go test ./internal/system -run
// TestGoldenMetrics -update` — but only when a behavior change is intended.
func TestGoldenMetrics(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"single-smt-fade", func(c *Config) {}},
		{"two-core-fade", func(c *Config) { c.Topology = TwoCore }},
		{"single-smt-unaccel", func(c *Config) { c.Accel = Unaccelerated }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig("MemLeak")
			tc.mutate(&cfg)
			r, err := Run("astar", cfg)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := obs.WritePrometheus(&buf, []obs.LabeledSnapshot{{Snap: r.Metrics}}); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.name+".prom")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("metrics dump differs from %s (%d vs %d bytes); a tick-order or naming change leaked into existing topologies", path, buf.Len(), len(want))
			}
		})
	}
}
