// Package system assembles complete monitoring systems and runs them: the
// single-core dual-threaded and two-core topologies of Fig. 8, each either
// unaccelerated or FADE-enabled (blocking or non-blocking), over the
// calibrated benchmark profiles. It produces the slowdown, filtering, queue
// and utilization statistics behind every figure and table of the paper's
// evaluation.
//
// # Observability
//
// Every run owns an obs.Registry: the assembled components (application
// core, monitor core, filtering unit, queues) register as collectors, and
// the run loop adds the sim.* counters and end-of-run summary gauges
// (sim.slowdown, IPCs, utilization fractions). The final snapshot lands in
// Result.Metrics; setting Config.TimelineEvery additionally records a
// cycle-sampled timeline in Result.Timeline. The typed Result fields are
// conveniences over this uniform metric surface — docs/METRICS.md is the
// reference for the name space.
package system
