package system

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fade/internal/core"
	"fade/internal/cpu"
	"fade/internal/isa"
	"fade/internal/metadata"
	"fade/internal/monitor"
	"fade/internal/obs"
	"fade/internal/queue"
	"fade/internal/stats"
	"fade/internal/trace"
)

// Topology selects the system organization of Fig. 8.
type Topology int

const (
	// SingleCoreSMT runs application and monitor in dedicated hardware
	// threads of one fine-grained dual-threaded core (Fig. 8b).
	SingleCoreSMT Topology = iota
	// TwoCore runs them on separate cores (Fig. 8a).
	TwoCore
)

func (t Topology) String() string {
	if t == TwoCore {
		return "two-core"
	}
	return "single-core"
}

// Accel selects the acceleration mode.
type Accel int

const (
	// Unaccelerated sends every monitored event to software through a
	// single queue.
	Unaccelerated Accel = iota
	// FADEBlocking is baseline FADE (Section 4).
	FADEBlocking
	// FADENonBlocking is FADE with Non-Blocking Filtering (Section 5).
	FADENonBlocking
)

func (a Accel) String() string {
	switch a {
	case FADEBlocking:
		return "FADE-blocking"
	case FADENonBlocking:
		return "FADE"
	default:
		return "unaccelerated"
	}
}

// Config describes one simulated system.
type Config struct {
	Core     cpu.Kind
	Topology Topology
	Accel    Accel
	Monitor  string

	// EventQueueCap is the event queue capacity (Section 6: 32).
	// queue.Unbounded models the infinite queue of Section 3.2.
	EventQueueCap int
	// UnfilteredCap is the unfiltered event queue capacity (16).
	UnfilteredCap int
	// MDCacheBytes overrides the metadata cache size (0 selects the
	// paper's 4 KB). Used by the sensitivity/ablation experiments.
	MDCacheBytes int
	// BlockingSignalCycles overrides the blocking accelerator's
	// completion-notification latency: 0 keeps the default, -1 selects
	// zero latency (an idealized doorbell). Ablation experiments only.
	BlockingSignalCycles int

	Seed   uint64
	Instrs uint64 // application instructions to simulate
	// MaxCycles caps the simulation (a safety net; 0 derives it from
	// Instrs).
	MaxCycles uint64
	// WarmupInstrs excludes the first N application instructions from the
	// slowdown measurement (SMARTS-style: caches, metadata, and queues
	// warm up before the measured window). 0 measures everything.
	WarmupInstrs uint64

	// Inject overrides the profile's bug injection (examples only).
	Inject *trace.Inject

	// TimelineEvery enables cycle-sampled telemetry: every N cycles the
	// run's metrics registry is snapshotted into Result.Timeline. 0
	// disables sampling (the default; the per-cycle cost is then a single
	// nil check).
	TimelineEvery uint64
}

// DefaultConfig returns the paper's evaluation configuration: non-blocking
// FADE on a single dual-threaded 4-way OoO core with 32/16-entry queues
// (Sections 6 and 7.2).
func DefaultConfig(monitorName string) Config {
	return Config{
		Core:          cpu.OoO4,
		Topology:      SingleCoreSMT,
		Accel:         FADENonBlocking,
		Monitor:       monitorName,
		EventQueueCap: 32,
		UnfilteredCap: 16,
		Seed:          1,
		Instrs:        400_000,
	}
}

// Result is the outcome of one simulation.
type Result struct {
	Benchmark string
	Config    Config

	Cycles         uint64
	BaselineCycles uint64
	Slowdown       float64

	Instrs          uint64
	MonitoredEvents uint64
	AppIPC          float64 // monitored-run application IPC
	BaselineIPC     float64
	MonitoredIPC    float64 // monitored events per cycle (baseline-rate view)

	Filter *core.Stats // nil when unaccelerated

	EvqOccupancy    *stats.Histogram
	EvqMax          int
	AppStallCycles  uint64
	HandlersRun     uint64
	ClassInstr      map[monitor.Class]float64
	Reports         []monitor.Report
	MDCacheMissRate float64
	MTLBMissRate    float64

	// Utilization fractions (Fig. 11b): cycles where the application is
	// stalled on a full queue, the monitor side is idle, or both make
	// progress.
	AppIdleFrac  float64
	MonIdleFrac  float64
	BothBusyFrac float64

	// Metrics is the end-of-run snapshot of the run's metrics registry:
	// every component counter under its stable dotted name (see
	// docs/METRICS.md). The typed fields above are conveniences derived
	// from the same underlying counters.
	Metrics *obs.Snapshot
	// Timeline holds cycle-sampled snapshots when Config.TimelineEvery is
	// set (nil otherwise).
	Timeline []*obs.Snapshot
}

// Run simulates benchmark bench under cfg, constructing the named built-in
// monitor, and returns the result.
func Run(bench string, cfg Config) (*Result, error) {
	prof, ok := trace.Lookup(bench)
	if !ok {
		return nil, fmt.Errorf("system: unknown benchmark %q", bench)
	}
	threads := 1
	if prof.Parallel {
		threads = prof.Threads
	}
	mon, err := monitor.New(cfg.Monitor, threads)
	if err != nil {
		return nil, err
	}
	return RunWithMonitor(bench, cfg, mon)
}

// RunWithMonitor simulates benchmark bench under cfg with a caller-supplied
// monitor — the extension point for user-defined monitoring tools. The
// monitor must be fresh (its non-critical state is mutated by the run).
func RunWithMonitor(bench string, cfg Config, mon monitor.Monitor) (*Result, error) {
	prof, ok := trace.Lookup(bench)
	if !ok {
		return nil, fmt.Errorf("system: unknown benchmark %q", bench)
	}
	if cfg.Inject != nil {
		p := *prof
		p.Inject = *cfg.Inject
		prof = &p
	}
	if cfg.EventQueueCap == 0 {
		cfg.EventQueueCap = 32
	}
	if cfg.UnfilteredCap == 0 {
		cfg.UnfilteredCap = 16
	}
	if cfg.Instrs == 0 {
		cfg.Instrs = 400_000
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = cfg.Instrs * 100
	}

	baseline, err := runBaseline(prof, cfg)
	if err != nil {
		return nil, err
	}

	res := &Result{Benchmark: bench, Config: cfg, BaselineCycles: baseline.cycles}
	md := metadata.NewState()
	mon.Init(md)
	gen := trace.New(prof, cfg.Seed, cfg.Instrs)
	app, monCore, fu, evq, err := build(prof, cfg, gen, mon, md)
	if err != nil {
		return nil, err
	}

	// Every run carries a metrics registry; components expose their
	// counters through obs.Collector and the end-of-run snapshot lands in
	// Result.Metrics. Collection is pull-based, so the simulation loop
	// pays nothing for it.
	var cycles, warmBoundary uint64
	reg := obs.NewRegistry()
	reg.Register(app)
	reg.Register(monCore)
	reg.Register(evq.MetricsCollector("queue.meq"))
	if fu != nil {
		reg.Register(fu)
	}
	reg.Register(obs.CollectorFunc(func(s obs.Sink) {
		s.Counter("sim.cycles", cycles)
		s.Counter("sim.baseline_cycles", baseline.cycles)
	}))
	var tl *obs.Timeline
	if cfg.TimelineEvery > 0 {
		tl = &obs.Timeline{Every: cfg.TimelineEvery}
	}

	util := stats.NewUtilization("app-idle", "mon-idle", "both-busy", "other")
	for cycles = 0; cycles < cfg.MaxCycles; cycles++ {
		if app.Done() && evq.Empty() && !monCore.Busy() && (fu == nil || !fu.Busy()) {
			break
		}
		if cfg.WarmupInstrs > 0 && warmBoundary == 0 && app.Instrs() >= cfg.WarmupInstrs {
			warmBoundary = cycles
		}
		evq.SampleOccupancy()
		tl.MaybeSample(cycles, reg)

		appStalled := app.Stalled()
		// The accelerator is a dedicated block; only the monitor *thread*
		// competes with the application for core resources under SMT.
		monBusy := monCore.Busy()
		appShare, monShare := 1.0, 1.0
		if cfg.Topology == SingleCoreSMT {
			if monBusy && !appStalled && !app.Done() {
				appShare, monShare = 0.5, 0.5
			} else if app.Done() || appStalled {
				appShare = 0
			} else {
				monShare = 0 // nothing for the monitor thread to do
			}
		}

		// Consumer before accelerator before producer: a value leaving a
		// queue this cycle frees space visible next cycle.
		monCore.TickShare(monShare)
		if fu != nil {
			fu.Tick(cycles)
		}
		app.TickShare(appShare)

		if !app.Done() {
			switch {
			case appStalled && monBusy:
				util.Record(0)
			case !monBusy:
				util.Record(1)
			case !appStalled:
				util.Record(2)
			default:
				util.Record(3)
			}
		}
	}
	if cycles >= cfg.MaxCycles {
		return nil, fmt.Errorf("system: %s/%s/%s exceeded cycle cap %d", bench, cfg.Monitor, cfg.Accel, cfg.MaxCycles)
	}
	if fu != nil {
		fu.FlushBurst()
	}

	res.Cycles = cycles
	res.Slowdown = float64(cycles) / float64(baseline.cycles)
	if cfg.WarmupInstrs > 0 && warmBoundary > 0 && baseline.boundary > 0 &&
		cycles > warmBoundary && baseline.cycles > baseline.boundary {
		// Measured-window slowdown: exclude the warm-up region from both
		// the monitored and baseline runs.
		res.Slowdown = float64(cycles-warmBoundary) / float64(baseline.cycles-baseline.boundary)
	}
	res.Instrs = app.Instrs()
	res.MonitoredEvents = app.MonitoredEvents()
	res.AppIPC = stats.Ratio(app.Instrs(), cycles)
	res.BaselineIPC = stats.Ratio(app.Instrs(), baseline.cycles)
	res.MonitoredIPC = stats.Ratio(app.MonitoredEvents(), baseline.cycles)
	res.EvqOccupancy = evq.Occupancy()
	res.EvqMax = evq.MaxLen()
	res.AppStallCycles = app.BackpressureCycles()
	res.HandlersRun = monCore.Handled()
	res.ClassInstr = monCore.ClassInstr()
	res.Reports = append(monCore.Reports(), monCore.Finalize()...)
	if fu != nil {
		res.Filter = fu.Stats()
		res.MDCacheMissRate = fu.MDCache().MissRate()
		res.MTLBMissRate = fu.MTLB().MissRate()
	}
	total := util.Total()
	if total > 0 {
		res.AppIdleFrac = util.Fraction(0)
		res.MonIdleFrac = util.Fraction(1)
		res.BothBusyFrac = util.Fraction(2)
	}

	// End-of-run derived gauges, then the final snapshot. These gauges are
	// only meaningful once the run has completed, so timeline points do not
	// carry them.
	reg.Gauge("sim.slowdown").Set(res.Slowdown)
	reg.Gauge("sim.app_ipc").Set(res.AppIPC)
	reg.Gauge("sim.baseline_ipc").Set(res.BaselineIPC)
	reg.Gauge("sim.monitored_ipc").Set(res.MonitoredIPC)
	reg.Gauge("sim.util.app_idle").Set(res.AppIdleFrac)
	reg.Gauge("sim.util.mon_idle").Set(res.MonIdleFrac)
	reg.Gauge("sim.util.both_busy").Set(res.BothBusyFrac)
	res.Metrics = reg.Snapshot()
	if tl != nil {
		res.Timeline = tl.Points
	}
	return res, nil
}

// baselineCache memoizes unmonitored runs: every monitored configuration of
// the same (profile, core, seed, length) shares one baseline. Entries are
// single-flight: when the parallel experiment runner fans out N cells that
// share a baseline, one worker simulates it and the rest block on its
// sync.Once instead of each re-running the full unmonitored simulation.
var baselineCache sync.Map // baselineKey -> *baselineEntry

// baselineSims counts actual baseline simulations (not cache hits); the
// thundering-herd regression test asserts it stays at one per key under
// concurrency.
var baselineSims atomic.Uint64

type baselineKey struct {
	prof   string
	core   cpu.Kind
	seed   uint64
	instrs uint64
	warmup uint64
	inject trace.Inject
}

type baselineVal struct {
	cycles   uint64
	boundary uint64 // cycle at which WarmupInstrs instructions had retired
}

type baselineEntry struct {
	once sync.Once
	val  baselineVal
	err  error
}

// runBaseline measures the unmonitored application-only execution time that
// slowdowns are normalized to, and the warm-up boundary cycle.
func runBaseline(prof *trace.Profile, cfg Config) (baselineVal, error) {
	key := baselineKey{prof: prof.Name, core: cfg.Core, seed: cfg.Seed,
		instrs: cfg.Instrs, warmup: cfg.WarmupInstrs, inject: prof.Inject}
	e, _ := baselineCache.LoadOrStore(key, &baselineEntry{})
	entry := e.(*baselineEntry)
	entry.once.Do(func() {
		entry.val, entry.err = simulateBaseline(prof, cfg)
	})
	if entry.err != nil {
		// Don't cache failures: a later caller with a higher MaxCycles (the
		// only config field outside the key that affects the outcome) may
		// succeed.
		baselineCache.CompareAndDelete(key, e)
	}
	return entry.val, entry.err
}

// simulateBaseline performs the actual unmonitored run.
func simulateBaseline(prof *trace.Profile, cfg Config) (baselineVal, error) {
	baselineSims.Add(1)
	gen := trace.New(prof, cfg.Seed, cfg.Instrs)
	app := cpu.NewAppCore(cfg.Core, prof, gen, nil, nil)
	var val baselineVal
	var cycles uint64
	for cycles = 0; cycles < cfg.MaxCycles && !app.Done(); cycles++ {
		if cfg.WarmupInstrs > 0 && val.boundary == 0 && app.Instrs() >= cfg.WarmupInstrs {
			val.boundary = cycles
		}
		app.TickShare(1.0)
	}
	if !app.Done() {
		return val, fmt.Errorf("system: baseline for %s exceeded cycle cap", prof.Name)
	}
	val.cycles = cycles
	return val, nil
}

// build wires the monitored system's components.
func build(prof *trace.Profile, cfg Config, gen *trace.Generator, mon monitor.Monitor, md *metadata.State) (*cpu.AppCore, *cpu.MonitorCore, *core.FilteringUnit, *queue.Bounded[isa.Event], error) {
	evq := queue.NewBounded[isa.Event](cfg.EventQueueCap)
	app := cpu.NewAppCore(cfg.Core, prof, gen, mon, evq)

	if cfg.Accel == Unaccelerated {
		monCore := cpu.NewMonitorCoreDirect(cfg.Core, mon, md, evq)
		return app, monCore, nil, evq, nil
	}

	mode := core.NonBlocking
	if cfg.Accel == FADEBlocking {
		mode = core.Blocking
	}
	ufq := queue.NewBounded[core.Unfiltered](cfg.UnfilteredCap)
	coreCfg := core.DefaultConfig(mode)
	if cfg.MDCacheBytes > 0 {
		coreCfg.MDCache.SizeBytes = cfg.MDCacheBytes
	}
	switch {
	case cfg.BlockingSignalCycles > 0:
		coreCfg.BlockingSignalLatency = cfg.BlockingSignalCycles
	case cfg.BlockingSignalCycles == -1:
		coreCfg.BlockingSignalLatency = 0
	}
	fu := core.New(coreCfg, md, evq, ufq, nil)
	// Monitors program the accelerator through its memory-mapped window,
	// as their real setup code would (Section 4.1).
	if err := mon.Program(core.MMIOProgrammer(fu)); err != nil {
		return nil, nil, nil, nil, err
	}
	critRegs := mode == core.Blocking
	monCore := cpu.NewMonitorCoreFADE(cfg.Core, mon, md, ufq, fu, critRegs)
	return app, monCore, fu, evq, nil
}
