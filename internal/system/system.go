package system

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"fade/internal/core"
	"fade/internal/cpu"
	"fade/internal/fault"
	"fade/internal/isa"
	"fade/internal/metadata"
	"fade/internal/monitor"
	"fade/internal/obs"
	"fade/internal/queue"
	"fade/internal/sim"
	"fade/internal/spans"
	"fade/internal/stats"
	"fade/internal/trace"
)

// Accel selects the acceleration mode.
type Accel int

const (
	// Unaccelerated sends every monitored event to software through a
	// single queue.
	Unaccelerated Accel = iota
	// FADEBlocking is baseline FADE (Section 4).
	FADEBlocking
	// FADENonBlocking is FADE with Non-Blocking Filtering (Section 5).
	FADENonBlocking
)

func (a Accel) String() string {
	switch a {
	case FADEBlocking:
		return "FADE-blocking"
	case FADENonBlocking:
		return "FADE"
	default:
		return "unaccelerated"
	}
}

// Config describes one simulated system.
type Config struct {
	Core     cpu.Kind
	Topology Topology
	Accel    Accel
	Monitor  string

	// EventQueueCap is the event queue capacity (Section 6: 32).
	// queue.Unbounded models the infinite queue of Section 3.2.
	EventQueueCap int
	// UnfilteredCap is the unfiltered event queue capacity (16).
	UnfilteredCap int
	// MDCacheBytes overrides the metadata cache size (0 selects the
	// paper's 4 KB). Used by the sensitivity/ablation experiments.
	MDCacheBytes int
	// BlockingSignalCycles overrides the blocking accelerator's
	// completion-notification latency: 0 keeps the default, -1 selects
	// zero latency (an idealized doorbell). Ablation experiments only.
	BlockingSignalCycles int

	Seed   uint64
	Instrs uint64 // application instructions to simulate, per core
	// MaxCycles caps the simulation (a safety net; 0 derives it from
	// Instrs).
	MaxCycles uint64
	// WarmupInstrs excludes the first N application instructions from the
	// slowdown measurement (SMARTS-style: caches, metadata, and queues
	// warm up before the measured window). 0 measures everything; only
	// single-app-core topologies honor it.
	WarmupInstrs uint64

	// Inject overrides the profile's bug injection (examples only).
	Inject *trace.Inject

	// TimelineEvery enables cycle-sampled telemetry: every N cycles the
	// run's metrics registry is snapshotted into Result.Timeline. 0
	// disables sampling (the default; the per-cycle cost is then a single
	// nil check).
	TimelineEvery uint64

	// Faults, when non-nil and non-empty, injects the described faults
	// (monitor stalls, queue pressure, event drops, metadata corruption)
	// deterministically: the same (Config, Seed, Faults) triple reproduces
	// the same perturbation schedule and byte-identical metrics. Each
	// application core runs its own decorrelated injector. Injection
	// counters appear under the fault.* metric name space.
	Faults *fault.Plan
	// Limits bounds the run: Limits.MaxCycles overrides MaxCycles, and
	// Limits.WallClock arms a real-time watchdog covering the baselines
	// too. See RunLimits.
	Limits RunLimits
	// CheckInvariants asserts the backpressure contract (queue capacities,
	// event conservation, outstanding-event accounting, full-queue retire
	// exclusion) after every cycle, aborting the run with
	// sim.ErrInvariantViolated on the first breach. Checking is pure
	// observation: it never changes a run's metrics, only whether a broken
	// run is allowed to finish.
	CheckInvariants bool
	// FastForward arms the scheduler's event-driven skip-ahead
	// (sim.Scheduler.FastForward): when every component reports quiescence,
	// the clock jumps to the earliest next-interesting cycle instead of
	// ticking through stall and idle spans one cycle at a time. The mode is
	// an execution strategy, not a model change — a completed run produces
	// byte-identical Result fields and component metrics with the flag on or
	// off (the system differential tests assert this for every monitor,
	// topology, and fault plan) — but runs dominated by credit-recovery,
	// backpressure, or handler-crunching spans complete many times faster.
	// Fast-forward accounting appears under the sim.ff.* metric name space
	// (registered only when the flag is set, so default metric dumps keep
	// their historical shape). CheckInvariants and fault injection pin the
	// run back to cycle-exact execution automatically.
	FastForward bool
}

// DefaultConfig returns the paper's evaluation configuration: non-blocking
// FADE on a single dual-threaded 4-way OoO core with 32/16-entry queues
// (Sections 6 and 7.2).
func DefaultConfig(monitorName string) Config {
	return Config{
		Core:          cpu.OoO4,
		Topology:      SingleCoreSMT,
		Accel:         FADENonBlocking,
		Monitor:       monitorName,
		EventQueueCap: 32,
		UnfilteredCap: 16,
		Seed:          1,
		Instrs:        400_000,
	}
}

// CoreResult is one application core's view of a run: its private
// (application core, event queue, filtering unit, monitor thread) group
// measured against its own unmonitored baseline. A single-core run has
// exactly one; a CMP run has Topology.AppCores of them.
type CoreResult struct {
	Core int    // core index
	Seed uint64 // trace seed of this core's workload copy

	Cycles         uint64 // cycle at which this core's group drained
	BaselineCycles uint64
	Slowdown       float64 // raw per-core slowdown (no warm-up windowing)

	Instrs          uint64
	MonitoredEvents uint64
	AppIPC          float64

	EvqMax         int
	AppStallCycles uint64
	HandlersRun    uint64
	FilterRatio    float64 // 0 when unaccelerated

	Reports []monitor.Report
}

// Result is the outcome of one simulation. For multicore topologies the
// top-level fields aggregate across cores — counts sum, Cycles covers the
// whole CMP (the slowest core), Slowdown normalizes total cycles to the
// slowest baseline — and Cores carries the per-core sub-results. The
// representative distribution fields (EvqOccupancy, Filter, cache miss
// rates) come from core 0; the cores run identically-configured hardware
// over decorrelated copies of the same workload, so core 0 is
// representative.
type Result struct {
	Benchmark string
	Config    Config

	Cycles         uint64
	BaselineCycles uint64
	Slowdown       float64

	Instrs          uint64
	MonitoredEvents uint64
	AppIPC          float64 // monitored-run application IPC
	BaselineIPC     float64
	MonitoredIPC    float64 // monitored events per cycle (baseline-rate view)

	Filter *core.Stats // nil when unaccelerated; core 0's unit

	EvqOccupancy    *stats.Histogram
	EvqMax          int
	AppStallCycles  uint64
	HandlersRun     uint64
	ClassInstr      map[monitor.Class]float64
	Reports         []monitor.Report
	MDCacheMissRate float64
	MTLBMissRate    float64

	// Cores holds the per-core sub-results in core order.
	Cores []CoreResult

	// Utilization fractions (Fig. 11b): cycles where the application is
	// stalled on a full queue, the monitor side is idle, or both make
	// progress.
	AppIdleFrac  float64
	MonIdleFrac  float64
	BothBusyFrac float64

	// Metrics is the end-of-run snapshot of the run's metrics registry:
	// every component counter under its stable dotted name (see
	// docs/METRICS.md). The typed fields above are conveniences derived
	// from the same underlying counters.
	Metrics *obs.Snapshot
	// Timeline holds cycle-sampled snapshots when Config.TimelineEvery is
	// set (nil otherwise).
	Timeline []*obs.Snapshot
}

// Run simulates benchmark bench under cfg, constructing one fresh instance
// of the named built-in monitor per application core, and returns the
// result. It is RunContext without cancellation.
func Run(bench string, cfg Config) (*Result, error) {
	return RunContext(context.Background(), bench, cfg)
}

// RunContext is Run under a context: the run aborts with an error wrapping
// sim.ErrCanceled within one scheduler checkpoint interval of ctx being
// canceled (or of cfg.Limits.WallClock elapsing). An aborted run returns
// its partial Result alongside the error — Result.Metrics snapshots
// whatever the simulation had counted, with the run.aborted gauge set — so
// callers can flush partial telemetry.
func RunContext(ctx context.Context, bench string, cfg Config) (*Result, error) {
	prof, ok := trace.Lookup(bench)
	if !ok {
		return nil, fmt.Errorf("system: unknown benchmark %q", bench)
	}
	threads := 1
	if prof.Parallel {
		threads = prof.Threads
	}
	topo := cfg.Topology.normalize()
	if err := topo.validate(); err != nil {
		return nil, err
	}
	mons := make([]monitor.Monitor, topo.AppCores)
	for i := range mons {
		mon, err := monitor.New(cfg.Monitor, threads)
		if err != nil {
			return nil, err
		}
		mons[i] = mon
	}
	return runSystem(ctx, bench, cfg, mons)
}

// RunWithMonitor simulates benchmark bench under cfg with a caller-supplied
// monitor — the extension point for user-defined monitoring tools. The
// monitor must be fresh (its non-critical state is mutated by the run), and
// the topology must have a single application core: each core needs its own
// monitor instance, which only Run can construct.
func RunWithMonitor(bench string, cfg Config, mon monitor.Monitor) (*Result, error) {
	return RunWithMonitorContext(context.Background(), bench, cfg, mon)
}

// RunWithMonitorContext is RunWithMonitor under a context, with the same
// cancellation contract as RunContext.
func RunWithMonitorContext(ctx context.Context, bench string, cfg Config, mon monitor.Monitor) (*Result, error) {
	topo := cfg.Topology.normalize()
	if err := topo.validate(); err != nil {
		return nil, err
	}
	if topo.AppCores > 1 {
		return nil, fmt.Errorf("system: RunWithMonitor supports single-app-core topologies only (one monitor instance cannot serve %d cores); use Run", topo.AppCores)
	}
	return runSystem(ctx, bench, cfg, []monitor.Monitor{mon})
}

// coreGroup is one application core's private slice of the system: the core
// itself, its event queue, its filtering unit (nil when unaccelerated), and
// the monitor thread draining its software-bound events.
type coreGroup struct {
	idx      int
	seed     uint64
	baseline baselineVal

	app     *cpu.AppCore
	monCore *cpu.MonitorCore
	fu      *core.FilteringUnit
	evq     *queue.Bounded[isa.Event]
	md      *metadata.State

	// eng is the group's fault injector; nil when the run injects nothing.
	eng *fault.Engine

	finished bool
	doneAt   uint64
}

// drained reports that the group has no work left anywhere in its pipeline.
func (g *coreGroup) drained() bool {
	return g.app.Done() && g.evq.Empty() && !g.monCore.Busy() && (g.fu == nil || !g.fu.Busy())
}

// runSystem wires cfg's topology into core groups — one monitor per
// application core — and drives them on the sim scheduler.
func runSystem(ctx context.Context, bench string, cfg Config, mons []monitor.Monitor) (*Result, error) {
	prof, ok := trace.Lookup(bench)
	if !ok {
		return nil, fmt.Errorf("system: unknown benchmark %q", bench)
	}
	if cfg.Inject != nil {
		p := *prof
		p.Inject = *cfg.Inject
		prof = &p
	}
	if cfg.EventQueueCap == 0 {
		cfg.EventQueueCap = 32
	}
	if cfg.UnfilteredCap == 0 {
		cfg.UnfilteredCap = 16
	}
	if cfg.Instrs == 0 {
		cfg.Instrs = 400_000
	}
	if cfg.Limits.MaxCycles > 0 {
		cfg.MaxCycles = cfg.Limits.MaxCycles
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = cfg.Instrs * 100
	}
	cfg.Topology = cfg.Topology.normalize()
	topo := cfg.Topology
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(mons) != topo.AppCores {
		return nil, fmt.Errorf("system: %d monitors for %d application cores", len(mons), topo.AppCores)
	}
	single := topo.AppCores == 1
	deadline := cfg.Limits.deadline(time.Now())

	// One group per application core: a decorrelated copy of the workload,
	// its own metadata domain, monitor instance, and fault injector,
	// measured against its own unmonitored baseline.
	groups := make([]*coreGroup, topo.AppCores)
	var maxBaseline uint64
	for i := range groups {
		ccfg := cfg
		ccfg.Seed = coreSeed(cfg.Seed, i)
		baseline, err := runBaseline(ctx, prof, ccfg, deadline)
		if err != nil {
			return nil, err
		}
		if baseline.cycles > maxBaseline {
			maxBaseline = baseline.cycles
		}
		md := metadata.NewState()
		mons[i].Init(md)
		gen := trace.New(prof, ccfg.Seed, cfg.Instrs)
		app, monCore, fu, evq, err := build(prof, cfg, gen, mons[i], md)
		if err != nil {
			return nil, err
		}
		eng := fault.NewEngine(cfg.Faults, fault.FoldSeed(cfg.Faults, cfg.Seed, i), cfg.EventQueueCap, cfg.UnfilteredCap)
		if eng != nil && cfg.Faults.EventDrop != nil {
			evq.SetDropHook(eng.DropEvent)
		}
		groups[i] = &coreGroup{idx: i, seed: ccfg.Seed, baseline: baseline,
			app: app, monCore: monCore, fu: fu, evq: evq, md: md, eng: eng}
	}

	res := &Result{Benchmark: bench, Config: cfg, BaselineCycles: maxBaseline}

	// Tracing arms only when the context carries a spans.Trace; an untraced
	// run keeps nil hooks everywhere (docs/TRACING.md). Track allocation
	// order is fixed — scheduler first, then cores in index order — so
	// exports are deterministic.
	tr := spans.FromContext(ctx)
	var schedTrack int32
	var probe *traceProbe
	if tr != nil {
		schedTrack = tr.NewTrack("sim/sched")
		probe = newTraceProbe(tr, groups, single)
	}

	// Every run carries a metrics registry; components expose their
	// counters through obs.Collector and the end-of-run snapshot lands in
	// Result.Metrics. Collection is pull-based, so the simulation pays
	// nothing for it. Single-core keeps the historical un-indexed names;
	// multicore runs index every component name space by core
	// (docs/METRICS.md, "Per-core grammar").
	reg := obs.NewRegistry()
	for _, g := range groups {
		if single {
			reg.Register(g.app)
			reg.Register(g.monCore)
			reg.Register(g.evq.MetricsCollector("queue.meq"))
			if g.fu != nil {
				reg.Register(g.fu)
			}
			if g.eng != nil {
				// Registered only under fault injection so fault-free
				// metric dumps keep their historical shape.
				reg.Register(g.eng.Collector("fault"))
			}
		} else {
			idx := strconv.Itoa(g.idx)
			reg.Register(g.app.MetricsCollector("app." + idx))
			reg.Register(g.monCore.MetricsCollector("moncore." + idx))
			reg.Register(g.evq.MetricsCollector("queue.meq." + idx))
			if g.fu != nil {
				reg.Register(g.fu.MetricsCollector("fu."+idx, "fsq."+idx, "queue.ufq."+idx))
			}
			if g.eng != nil {
				reg.Register(g.eng.Collector("fault." + idx))
			}
		}
	}
	clock := sim.NewClock()
	reg.Register(obs.CollectorFunc(func(s obs.Sink) {
		s.Counter("sim.cycles", clock.Cycle())
		s.Counter("sim.baseline_cycles", maxBaseline)
	}))
	if tr != nil {
		// spans.* accounting appears only when tracing is armed, so
		// untraced metric dumps keep their historical shape (the same rule
		// as sim.ff.* below).
		reg.Register(tr.Collector())
	}
	var tl *obs.Timeline
	if cfg.TimelineEvery > 0 {
		tl = &obs.Timeline{Every: cfg.TimelineEvery}
	}

	// Clock wiring. Fault engines and their probes tick first, so each
	// cycle's fault decisions (stalls, throttles, corruptions) are frozen
	// before any component consults them. Dedicated monitor cores shared
	// between several application cores tick next (consumer before producer
	// across the whole CMP); each group's arbiter then ticks monitor thread
	// (when core-private), filtering unit, and application core in that
	// order.
	for _, g := range groups {
		if g.eng != nil {
			clock.Register(g.eng)
			clock.Register(&faultProbe{eng: g.eng, g: g})
		}
	}
	util := stats.NewUtilization("app-idle", "mon-idle", "both-busy", "other")
	utilBucket := func(appStalled, monBusy bool) int {
		switch {
		case appStalled && monBusy:
			return 0
		case !monBusy:
			return 1
		case !appStalled:
			return 2
		default:
			return 3
		}
	}
	observe := func(appStalled, monBusy bool) {
		util.Record(utilBucket(appStalled, monBusy))
	}
	observeN := func(appStalled, monBusy bool, n uint64) {
		util.RecordN(utilBucket(appStalled, monBusy), n)
	}
	shared := wireSharedMonCores(clock, topo, groups)
	for _, g := range groups {
		arb := &sim.Arbiter{App: g.app, FU: nil, SMT: topo.SMT,
			Observe: observe, ObserveN: observeN}
		if g.fu != nil {
			arb.FU = g.fu
		}
		switch {
		case shared[g.idx]:
			arb.Mon = monBusyView{g.monCore}
		case g.eng != nil:
			arb.Mon = stallGate{mc: g.monCore, eng: g.eng}
		default:
			arb.Mon = g.monCore
		}
		clock.Register(arb)
	}
	if probe != nil {
		// Registered last so it observes each cycle's post-tick state.
		clock.Register(probe)
	}

	sched := &sim.Scheduler{
		Clock:      clock,
		MaxCycles:  cfg.MaxCycles,
		Trace:      tr,
		TraceTrack: schedTrack,
		Done: func(cycle uint64) bool {
			all := true
			for _, g := range groups {
				if g.finished {
					continue
				}
				if g.drained() {
					g.finished = true
					g.doneAt = cycle
				} else {
					all = false
				}
			}
			return all
		},
		Sample: func(uint64) {
			for _, g := range groups {
				g.evq.SampleOccupancy()
			}
		},
		FastForward: cfg.FastForward,
		BulkSample: func(n uint64) {
			// Queue occupancies are frozen across a quiescent span, so n
			// per-cycle samples collapse to one constant-value bulk add.
			for _, g := range groups {
				g.evq.SampleOccupancyN(n)
			}
		},
		Timeline: tl,
		Registry: reg,
	}
	if cfg.FastForward {
		// Fast-forward accounting is observability of the simulator, not of
		// the simulated hardware, and is registered only when the mode is
		// requested so default metric dumps keep their historical shape.
		reg.Register(obs.CollectorFunc(func(s obs.Sink) {
			ff := &sched.FF
			active := 0.0
			if ff.Enabled && ff.Pinned == "" {
				active = 1
			}
			s.Gauge("sim.ff.active", active)
			s.Counter("sim.ff.jumps", ff.Jumps)
			s.Counter("sim.ff.skipped_cycles", ff.SkippedCycles)
			s.Counter("sim.ff.stop.awake", ff.WakeStops)
			s.Counter("sim.ff.stop.warmup", ff.WarmupStops)
			for _, reason := range []string{"check", "sample", "component"} {
				v := 0.0
				if ff.Pinned == reason {
					v = 1
				}
				s.Gauge("sim.ff.pinned."+reason, v)
			}
		}))
	}
	if single && cfg.WarmupInstrs > 0 {
		sched.Warmed = func() bool { return groups[0].app.Instrs() >= cfg.WarmupInstrs }
	}
	if ctx != nil && ctx != context.Background() {
		sched.Ctx = ctx
	}
	sched.Deadline = deadline
	if cfg.CheckInvariants {
		sched.Check = newInvariantChecker(groups).check
	}
	out := sched.Run()
	probe.flush(out.Cycles)
	if !out.Completed {
		// Abort: flush the partial state into the result so callers can
		// persist whatever the run had counted, and surface the structured
		// reason (sim.ErrCanceled, sim.ErrCycleCapExceeded, or a named
		// *sim.InvariantError) alongside it.
		res.Cycles = out.Cycles
		reg.Gauge("run.aborted").Set(1)
		res.Metrics = reg.Snapshot()
		if tl != nil {
			res.Timeline = tl.Points
		}
		return res, fmt.Errorf("system: %s/%s/%s aborted after %d cycles: %w",
			bench, cfg.Monitor, cfg.Accel, out.Cycles, out.Err)
	}
	for _, g := range groups {
		if g.fu != nil {
			g.fu.FlushBurst()
		}
	}

	cycles := out.Cycles
	res.Cycles = cycles
	res.Slowdown = float64(cycles) / float64(maxBaseline)
	if single && cfg.WarmupInstrs > 0 && out.WarmBoundary > 0 && groups[0].baseline.boundary > 0 &&
		cycles > out.WarmBoundary && maxBaseline > groups[0].baseline.boundary {
		// Measured-window slowdown: exclude the warm-up region from both
		// the monitored and baseline runs.
		res.Slowdown = float64(cycles-out.WarmBoundary) / float64(maxBaseline-groups[0].baseline.boundary)
	}

	for _, g := range groups {
		cr := CoreResult{
			Core: g.idx, Seed: g.seed,
			Cycles: g.doneAt, BaselineCycles: g.baseline.cycles,
			Slowdown:        float64(g.doneAt) / float64(g.baseline.cycles),
			Instrs:          g.app.Instrs(),
			MonitoredEvents: g.app.MonitoredEvents(),
			AppIPC:          stats.Ratio(g.app.Instrs(), g.doneAt),
			EvqMax:          g.evq.MaxLen(),
			AppStallCycles:  g.app.BackpressureCycles(),
			HandlersRun:     g.monCore.Handled(),
			Reports:         append(g.monCore.Reports(), g.monCore.Finalize()...),
		}
		if g.fu != nil {
			cr.FilterRatio = g.fu.Stats().FilterRatio()
		}
		res.Cores = append(res.Cores, cr)

		res.Instrs += cr.Instrs
		res.MonitoredEvents += cr.MonitoredEvents
		res.AppStallCycles += cr.AppStallCycles
		res.HandlersRun += cr.HandlersRun
		res.Reports = append(res.Reports, cr.Reports...)
		if cr.EvqMax > res.EvqMax {
			res.EvqMax = cr.EvqMax
		}
	}
	res.AppIPC = stats.Ratio(res.Instrs, cycles)
	res.BaselineIPC = stats.Ratio(res.Instrs, maxBaseline)
	res.MonitoredIPC = stats.Ratio(res.MonitoredEvents, maxBaseline)
	res.EvqOccupancy = groups[0].evq.Occupancy()
	if single {
		res.ClassInstr = groups[0].monCore.ClassInstr()
	} else {
		res.ClassInstr = make(map[monitor.Class]float64)
		for _, g := range groups {
			for class, v := range g.monCore.ClassInstr() {
				res.ClassInstr[class] += v
			}
		}
	}
	if fu := groups[0].fu; fu != nil {
		res.Filter = fu.Stats()
		res.MDCacheMissRate = fu.MDCache().MissRate()
		res.MTLBMissRate = fu.MTLB().MissRate()
	}
	total := util.Total()
	if total > 0 {
		res.AppIdleFrac = util.Fraction(0)
		res.MonIdleFrac = util.Fraction(1)
		res.BothBusyFrac = util.Fraction(2)
	}

	// End-of-run derived gauges, then the final snapshot. These gauges are
	// only meaningful once the run has completed, so timeline points do not
	// carry them.
	reg.Gauge("sim.slowdown").Set(res.Slowdown)
	reg.Gauge("sim.app_ipc").Set(res.AppIPC)
	reg.Gauge("sim.baseline_ipc").Set(res.BaselineIPC)
	reg.Gauge("sim.monitored_ipc").Set(res.MonitoredIPC)
	reg.Gauge("sim.util.app_idle").Set(res.AppIdleFrac)
	reg.Gauge("sim.util.mon_idle").Set(res.MonIdleFrac)
	reg.Gauge("sim.util.both_busy").Set(res.BothBusyFrac)
	if !single {
		for _, cr := range res.Cores {
			p := "sim.core." + strconv.Itoa(cr.Core)
			reg.Gauge(p + ".cycles").Set(float64(cr.Cycles))
			reg.Gauge(p + ".slowdown").Set(cr.Slowdown)
			reg.Gauge(p + ".baseline_cycles").Set(float64(cr.BaselineCycles))
		}
	}
	res.Metrics = reg.Snapshot()
	if tl != nil {
		res.Timeline = tl.Points
	}
	return res, nil
}

// wireSharedMonCores registers a sharedMonCore component for every
// dedicated monitor core assigned more than one application core, and
// reports which groups' monitor threads are ticked by one (their arbiters
// then observe the thread without ticking it). Groups whose monitor core is
// private — and every SMT group — tick their thread in their own arbiter.
func wireSharedMonCores(clock *sim.Clock, topo Topology, groups []*coreGroup) map[int]bool {
	shared := make(map[int]bool)
	if topo.SMT {
		return shared
	}
	byMon := make([][]*coreGroup, topo.MonCores)
	for _, g := range groups {
		m := topo.monCoreOf(g.idx)
		byMon[m] = append(byMon[m], g)
	}
	for _, gs := range byMon {
		if len(gs) <= 1 {
			continue
		}
		mc := &sharedMonCore{}
		for _, g := range gs {
			var th monThread = g.monCore
			if g.eng != nil {
				th = stallGate{mc: g.monCore, eng: g.eng}
			}
			mc.threads = append(mc.threads, th)
			shared[g.idx] = true
		}
		clock.Register(mc)
	}
	return shared
}

// monThread is the view a shared monitor core needs of each thread it
// schedules; it matches sim.MonThread, so a fault-injected thread can be
// wrapped in a stallGate here exactly as in a private arbiter.
type monThread interface {
	TickShare(share float64)
	Busy() bool
}

// sharedMonCore fine-grained-multithreads one dedicated monitor core among
// the monitor threads of several application cores: each cycle the core
// runs the next busy thread in round-robin order. Idle cycles are charged
// to the thread at the rotation head so per-thread cycle accounting stays
// exhaustive.
type sharedMonCore struct {
	threads []monThread
	next    int
}

// Tick implements sim.Component.
func (s *sharedMonCore) Tick(uint64) {
	n := len(s.threads)
	for k := 0; k < n; k++ {
		i := (s.next + k) % n
		if s.threads[i].Busy() {
			s.threads[i].TickShare(1)
			s.next = (i + 1) % n
			return
		}
	}
	s.threads[s.next].TickShare(1)
	s.next = (s.next + 1) % n
}

// NextWake implements sim.Sleeper. The shared core sleeps only when every
// thread is idle (any busy thread may complete a handler or dispatch an
// event on its very next turn, and the rotation makes per-thread crunch
// spans non-uniform, so busy cores run cycle-exactly).
func (s *sharedMonCore) NextWake(now uint64) uint64 {
	for _, th := range s.threads {
		if th.Busy() {
			return now
		}
		if _, ok := th.(sim.ThreadSleeper); !ok {
			return now
		}
	}
	return sim.NeverWake
}

// FastForward implements sim.Sleeper, replaying n all-idle ticks: Tick
// charges each idle cycle to the thread at the rotation head and advances
// the rotation, so the bulk path deals each thread its round-robin share of
// the span and leaves the rotation where n exact ticks would have.
func (s *sharedMonCore) FastForward(now, n uint64) {
	t := uint64(len(s.threads))
	base, extra := n/t, n%t
	for k := uint64(0); k < t; k++ {
		cnt := base
		if k < extra {
			cnt++
		}
		if cnt > 0 {
			s.threads[(uint64(s.next)+k)%t].(sim.ThreadSleeper).SkipTicks(cnt, 1)
		}
	}
	s.next = int((uint64(s.next) + n) % t)
}

// monBusyView exposes a monitor thread's busy state to its group's arbiter
// while the thread itself is ticked by a sharedMonCore.
type monBusyView struct{ mc *cpu.MonitorCore }

func (v monBusyView) TickShare(float64) {}
func (v monBusyView) Busy() bool        { return v.mc.Busy() }

// QuietTicks and SkipTicks implement sim.ThreadSleeper trivially: the view
// never ticks the thread (the sharedMonCore owning it reports its wake), so
// it is quiet forever and skipping is a no-op.
func (v monBusyView) QuietTicks(float64) uint64 { return sim.QuietForever }
func (v monBusyView) SkipTicks(uint64, float64) {}

// build wires one core group's components.
func build(prof *trace.Profile, cfg Config, gen *trace.Generator, mon monitor.Monitor, md *metadata.State) (*cpu.AppCore, *cpu.MonitorCore, *core.FilteringUnit, *queue.Bounded[isa.Event], error) {
	evq := queue.NewBounded[isa.Event](cfg.EventQueueCap)
	app := cpu.NewAppCore(cfg.Core, prof, gen, mon, evq)

	if cfg.Accel == Unaccelerated {
		monCore := cpu.NewMonitorCoreDirect(cfg.Core, mon, md, evq)
		return app, monCore, nil, evq, nil
	}

	mode := core.NonBlocking
	if cfg.Accel == FADEBlocking {
		mode = core.Blocking
	}
	ufq := queue.NewBounded[core.Unfiltered](cfg.UnfilteredCap)
	coreCfg := core.DefaultConfig(mode)
	if cfg.MDCacheBytes > 0 {
		coreCfg.MDCache.SizeBytes = cfg.MDCacheBytes
	}
	switch {
	case cfg.BlockingSignalCycles > 0:
		coreCfg.BlockingSignalLatency = cfg.BlockingSignalCycles
	case cfg.BlockingSignalCycles == -1:
		coreCfg.BlockingSignalLatency = 0
	}
	fu := core.New(coreCfg, md, evq, ufq, nil)
	// Monitors program the accelerator through its memory-mapped window,
	// as their real setup code would (Section 4.1).
	if err := mon.Program(core.MMIOProgrammer(fu)); err != nil {
		return nil, nil, nil, nil, err
	}
	critRegs := mode == core.Blocking
	monCore := cpu.NewMonitorCoreFADE(cfg.Core, mon, md, ufq, fu, critRegs)
	return app, monCore, fu, evq, nil
}
