package system

import (
	"context"
	"encoding/json"
	"fmt"

	"fade/internal/obs"
	"fade/internal/rcache"
	"fade/internal/runspec"
)

// codecVersion versions the cached-outcome encoding. rcache's disk format
// carries its own framing version; this one covers the payload schema, so
// a Result shape change invalidates cached entries loudly (decode error →
// recompute) instead of silently misreading them.
const codecVersion = 1

// snapWire is the lossless wire form of obs.Snapshot. Snapshot's own
// MarshalJSON is the human-facing exposition ({"cycle":N,"metrics":{...}})
// and drops each value's kind and exact count, so the cache codec carries
// the raw values instead.
type snapWire struct {
	Cycle  uint64      `json:"cycle"`
	Values []obs.Value `json:"values"`
}

func snapToWire(s *obs.Snapshot) *snapWire {
	if s == nil {
		return nil
	}
	return &snapWire{Cycle: s.Cycle, Values: s.Values}
}

func snapFromWire(w *snapWire) *obs.Snapshot {
	if w == nil {
		return nil
	}
	return &obs.Snapshot{Cycle: w.Cycle, Values: w.Values}
}

// runWire carries a Result with its snapshots lifted out of the struct
// (the Result's Metrics/Timeline fields are nil'd for the trip) so they
// round-trip losslessly.
type runWire struct {
	Result   *Result     `json:"result"`
	Metrics  *snapWire   `json:"metrics,omitempty"`
	Timeline []*snapWire `json:"timeline,omitempty"`
}

type studyWire struct {
	Study   *QueueStudy `json:"study"`
	Metrics *snapWire   `json:"metrics,omitempty"`
}

type outcomeWire struct {
	V         int              `json:"v"`
	Run       *runWire         `json:"run,omitempty"`
	Study     *studyWire       `json:"study,omitempty"`
	CoreModel *CoreModelIPC    `json:"core_model,omitempty"`
	Baseline  *BaselineOutcome `json:"baseline,omitempty"`
}

// EncodeOutcome serializes an outcome for the result cache. The encoding
// is deterministic (struct fields in declaration order, map keys sorted,
// histograms via their canonical bucket form), so identical outcomes
// encode to identical bytes.
func EncodeOutcome(o *Outcome) ([]byte, error) {
	w := outcomeWire{V: codecVersion, CoreModel: o.CoreModel, Baseline: o.Baseline}
	if r := o.Result; r != nil {
		flat := *r
		flat.Metrics, flat.Timeline = nil, nil
		rw := &runWire{Result: &flat, Metrics: snapToWire(r.Metrics)}
		for _, s := range r.Timeline {
			rw.Timeline = append(rw.Timeline, snapToWire(s))
		}
		w.Run = rw
	}
	if qs := o.Study; qs != nil {
		flat := *qs
		flat.Metrics = nil
		w.Study = &studyWire{Study: &flat, Metrics: snapToWire(qs.Metrics)}
	}
	return json.Marshal(w)
}

// DecodeOutcome is the inverse of EncodeOutcome. A version mismatch or
// malformed payload is an error — the caller (the cache layer) treats it
// like a miss and recomputes.
func DecodeOutcome(b []byte) (*Outcome, error) {
	var w outcomeWire
	if err := json.Unmarshal(b, &w); err != nil {
		return nil, fmt.Errorf("system: outcome decode: %w", err)
	}
	if w.V != codecVersion {
		return nil, fmt.Errorf("system: outcome codec version %d, want %d", w.V, codecVersion)
	}
	o := &Outcome{CoreModel: w.CoreModel, Baseline: w.Baseline}
	if w.Run != nil {
		if w.Run.Result == nil {
			return nil, fmt.Errorf("system: outcome decode: run entry without result")
		}
		res := w.Run.Result
		res.Metrics = snapFromWire(w.Run.Metrics)
		for _, s := range w.Run.Timeline {
			res.Timeline = append(res.Timeline, snapFromWire(s))
		}
		o.Result = res
	}
	if w.Study != nil {
		if w.Study.Study == nil {
			return nil, fmt.Errorf("system: outcome decode: study entry without study")
		}
		qs := w.Study.Study
		qs.Metrics = snapFromWire(w.Study.Metrics)
		o.Study = qs
	}
	return o, nil
}

// ExecSpecCached executes a spec through a content-addressed result
// cache: a hit decodes the stored outcome instead of simulating, a miss
// simulates, stores, and — deliberately — decodes its own encoding, so
// the cached and uncached paths return byte-identical outcomes (a codec
// gap surfaces immediately rather than only on resume). A nil cache
// degrades to ExecSpec.
func ExecSpecCached(ctx context.Context, c *rcache.Cache, s runspec.Spec) (*Outcome, rcache.Source, error) {
	if c == nil {
		out, err := ExecSpec(ctx, s)
		return out, rcache.SourceMiss, err
	}
	b, src, err := c.Do(ctx, s.Hash(), func(ctx context.Context) ([]byte, error) {
		out, err := ExecSpec(ctx, s)
		if err != nil {
			return nil, err
		}
		return EncodeOutcome(out)
	})
	if err != nil {
		return nil, src, err
	}
	out, err := DecodeOutcome(b)
	if err != nil {
		return nil, src, err
	}
	return out, src, nil
}
