package system

import (
	"context"
	"sync"
	"testing"
	"time"

	"fade/internal/cpu"
	"fade/internal/trace"
)

// TestBaselineSingleFlight is the thundering-herd regression test: N
// concurrent runs sharing one (profile, core, seed, length) baseline key
// must simulate the unmonitored baseline exactly once — the other workers
// block on the entry's sync.Once instead of redundantly re-simulating.
func TestBaselineSingleFlight(t *testing.T) {
	prof, ok := trace.Lookup("astar")
	if !ok {
		t.Fatal("astar profile missing")
	}
	// A seed no other test uses, so the cache cannot already hold the key.
	cfg := Config{Core: cpu.OoO4, Seed: 0xB15E11FE, Instrs: 20_000, MaxCycles: 2_000_000}

	const workers = 8
	before := baselineSims.Load()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = runBaseline(context.Background(), prof, cfg, time.Time{})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if got := baselineSims.Load() - before; got != 1 {
		t.Fatalf("%d concurrent runBaseline calls performed %d simulations, want 1", workers, got)
	}

	// The cached value is served without further simulation.
	if _, err := runBaseline(context.Background(), prof, cfg, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if got := baselineSims.Load() - before; got != 1 {
		t.Fatalf("cache hit re-simulated the baseline (%d sims)", got)
	}
}

// TestConcurrentRunsRaceClean drives full monitored simulations (trace
// generation, filtering unit, monitor, stats) from many goroutines; under
// -race this verifies the per-run state is actually goroutine-local and the
// only shared path (the baseline cache) is synchronized.
func TestConcurrentRunsRaceClean(t *testing.T) {
	benches := []string{"astar", "mcf"}
	monitors := []string{"AddrCheck", "MemLeak"}
	var wg sync.WaitGroup
	errCh := make(chan error, len(benches)*len(monitors)*2)
	for _, bench := range benches {
		for _, mon := range monitors {
			for rep := 0; rep < 2; rep++ {
				bench, mon := bench, mon
				wg.Add(1)
				go func() {
					defer wg.Done()
					cfg := DefaultConfig(mon)
					cfg.Instrs = 15_000
					cfg.Seed = 7
					if _, err := Run(bench, cfg); err != nil {
						errCh <- err
					}
				}()
			}
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
