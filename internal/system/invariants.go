package system

import (
	"fmt"

	"fade/internal/sim"
)

// invariantChecker asserts the backpressure contract of every core group at
// the end of each cycle. It is pure observation — counters and occupancies
// only — so enabling it never perturbs simulated state, and it runs under
// fault injection unchanged: injected faults are accounted for explicitly
// (dropped events appear in the queue's drop counter, throttles in its
// effective capacity), so a checked run distinguishes "perturbed but
// coherent" from "silently corrupted".
//
// Invariants, per group:
//
//   - meq-capacity / ufq-capacity: a queue never holds more than its
//     configured capacity (the hard SRAM bound; a fault throttle below the
//     current occupancy legitimately leaves Len above the *effective*
//     capacity until the queue drains).
//   - event-conservation: every monitored event the application core
//     produced is accounted for — accepted into the MEQ, discarded by the
//     (fault-injected) drop probe, or still pending at the core's enqueue
//     stage. An unexplained loss is a violation, which is what makes the
//     drop probe a *detection* test rather than noise.
//   - outstanding-accounting: the filtering unit's outstanding-event count
//     equals the events sitting in the UFQ plus the one an in-flight
//     software handler holds.
//   - full-queue-retire: if the MEQ was full at two consecutive cycle
//     boundaries with no pops and no capacity change in between, the
//     application core cannot have retired a monitored op into it.
type invariantChecker struct {
	groups []*coreGroup
	prev   []meqWindow
}

// meqWindow is the previous cycle-boundary MEQ state used by the
// full-queue-retire invariant.
type meqWindow struct {
	init   bool
	full   bool
	pushes uint64
	drops  uint64
	pops   uint64
	effCap int
}

func newInvariantChecker(groups []*coreGroup) *invariantChecker {
	return &invariantChecker{groups: groups, prev: make([]meqWindow, len(groups))}
}

// check implements sim.Scheduler.Check.
func (c *invariantChecker) check(cycle uint64) error {
	for i, g := range c.groups {
		if err := c.checkGroup(cycle, i, g); err != nil {
			return err
		}
	}
	return nil
}

func (c *invariantChecker) checkGroup(cycle uint64, i int, g *coreGroup) error {
	evq := g.evq
	if evq.Len() > evq.Cap() {
		return &sim.InvariantError{Invariant: "meq-capacity", Cycle: cycle,
			Detail: fmt.Sprintf("core %d: MEQ holds %d entries, capacity %d", i, evq.Len(), evq.Cap())}
	}

	pending := uint64(0)
	if g.app.PendingEvent() {
		pending = 1
	}
	produced := g.app.MonitoredEvents()
	accounted := evq.Pushes() + evq.Drops() + pending
	if produced != accounted {
		return &sim.InvariantError{Invariant: "event-conservation", Cycle: cycle,
			Detail: fmt.Sprintf("core %d: %d monitored events produced but %d accounted (%d pushed + %d dropped + %d pending)",
				i, produced, accounted, evq.Pushes(), evq.Drops(), pending)}
	}

	p := c.prev[i]
	cur := meqWindow{init: true, full: evq.Full(), pushes: evq.Pushes(),
		drops: evq.Drops(), pops: evq.Pops(), effCap: evq.EffectiveCap()}
	if p.init && p.full && cur.full && cur.pops == p.pops && cur.effCap == p.effCap &&
		(cur.pushes != p.pushes || cur.drops != p.drops) {
		return &sim.InvariantError{Invariant: "full-queue-retire", Cycle: cycle,
			Detail: fmt.Sprintf("core %d: MEQ full but app core retired a monitored op (pushes %d->%d, drops %d->%d, no pops)",
				i, p.pushes, cur.pushes, p.drops, cur.drops)}
	}
	c.prev[i] = cur

	if g.fu == nil {
		return nil
	}
	ufq := g.fu.UFQ()
	if ufq.Len() > ufq.Cap() {
		return &sim.InvariantError{Invariant: "ufq-capacity", Cycle: cycle,
			Detail: fmt.Sprintf("core %d: UFQ holds %d entries, capacity %d", i, ufq.Len(), ufq.Cap())}
	}
	inFlight := 0
	if g.monCore.InFlight() {
		inFlight = 1
	}
	if want := ufq.Len() + inFlight; g.fu.Outstanding() != want {
		return &sim.InvariantError{Invariant: "outstanding-accounting", Cycle: cycle,
			Detail: fmt.Sprintf("core %d: filtering unit reports %d outstanding events, but UFQ holds %d and %d handler is in flight",
				i, g.fu.Outstanding(), ufq.Len(), inFlight)}
	}
	return nil
}
