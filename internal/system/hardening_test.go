package system

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fade/internal/cpu"
	"fade/internal/fault"
	"fade/internal/obs"
	"fade/internal/queue"
	"fade/internal/sim"
	"fade/internal/trace"
)

// fullPlan exercises every injector at once.
func fullPlan() *fault.Plan {
	return &fault.Plan{
		MonitorStall: &fault.Stall{MeanGap: 2048, MeanDuration: 256},
		MEQPressure:  &fault.Pressure{MeanGap: 4096, MeanDuration: 128, CapFactor: 0.25},
		UFQPressure:  &fault.Pressure{MeanGap: 4096, MeanDuration: 128, CapFactor: 0.5},
		EventDrop:    &fault.Drop{Rate: 0.0005},
		MDCorruption: &fault.Corrupt{MeanGap: 20_000},
	}
}

func promDump(t *testing.T, r *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, []obs.LabeledSnapshot{{Snap: r.Metrics}}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenMetricsUnderFaults pins the exact Prometheus dump of a
// fault-injected run: the same (config, seed, Plan) must reproduce the same
// perturbation schedule byte for byte, run after run and commit after
// commit. Regenerate with -update only when an intended change to the fault
// model or metric naming lands.
func TestGoldenMetricsUnderFaults(t *testing.T) {
	run := func() []byte {
		cfg := DefaultConfig("MemLeak")
		cfg.Instrs = 60_000
		cfg.Faults = fullPlan()
		r, err := Run("astar", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return promDump(t, r)
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("two identically-seeded fault-injected runs produced different metric dumps")
	}
	path := filepath.Join("testdata", "single-smt-fade-faults.prom")
	if *updateGolden {
		if err := os.WriteFile(path, a, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(a, want) {
		t.Fatalf("fault-injected metrics dump differs from %s (%d vs %d bytes)", path, len(a), len(want))
	}
}

// TestFaultFreeRunUnchangedByPlumbing: a run with a nil plan and a run with
// an empty plan produce identical dumps — the fault machinery is invisible
// until a fault is actually configured. (The pre-existing golden tests pin
// the absolute bytes; this pins the nil/empty equivalence.)
func TestFaultFreeRunUnchangedByPlumbing(t *testing.T) {
	run := func(plan *fault.Plan) []byte {
		cfg := DefaultConfig("MemLeak")
		cfg.Instrs = 40_000
		cfg.Faults = plan
		r, err := Run("astar", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return promDump(t, r)
	}
	if !bytes.Equal(run(nil), run(&fault.Plan{Seed: 99})) {
		t.Fatal("an empty fault plan changed the metrics dump")
	}
}

// TestCancelReturnsPartialMetrics: a context canceled before the monitored
// phase stops the run within one checkpoint interval, returns ErrCanceled,
// and still hands back the partial metrics snapshot with run.aborted set.
func TestCancelReturnsPartialMetrics(t *testing.T) {
	cfg := DefaultConfig("MemLeak")
	cfg.Instrs = 40_000
	cfg.Seed = 0xCA9CE1
	// Warm the baseline cache so the canceled run reaches the monitored
	// phase (the baseline key ignores the context).
	if _, err := Run("astar", cfg); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, "astar", cfg)
	if !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil || res.Metrics == nil {
		t.Fatal("canceled run returned no partial result")
	}
	if res.Cycles > sim.DefaultCheckpointInterval {
		t.Fatalf("canceled run executed %d cycles, want within one %d-cycle checkpoint", res.Cycles, sim.DefaultCheckpointInterval)
	}
	found := false
	for _, v := range res.Metrics.Values {
		if v.Name == "run.aborted" && v.Num == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("partial snapshot does not carry run.aborted = 1")
	}
}

// TestCycleCapReturnsStructuredError is the regression test for the silent
// cycle-cap truncation: a run that hits its cap must fail with
// ErrCycleCapExceeded (carrying partial state), never return a truncated
// result as success.
func TestCycleCapReturnsStructuredError(t *testing.T) {
	cfg := DefaultConfig("MemLeak")
	cfg.Instrs = 40_000
	cfg.Seed = 0xCA9CE2
	if _, err := Run("astar", cfg); err != nil { // warm the baseline cache
		t.Fatal(err)
	}
	cfg.Limits = RunLimits{MaxCycles: 2_000}
	res, err := RunContext(context.Background(), "astar", cfg)
	if !errors.Is(err, sim.ErrCycleCapExceeded) {
		t.Fatalf("err = %v, want ErrCycleCapExceeded", err)
	}
	if res == nil || res.Cycles != 2_000 {
		t.Fatalf("capped run result = %+v, want partial result at 2000 cycles", res)
	}
}

// TestInvariantCheckerCleanUnderFaults: the backpressure contract holds for
// every monitor with every injector active — stalls and pressure may slow
// the system arbitrarily, but no queue overflows, no event goes
// unaccounted, and no full queue retires a monitored op.
func TestInvariantCheckerCleanUnderFaults(t *testing.T) {
	benches := map[string]string{
		"AddrCheck": "astar", "MemCheck": "mcf", "MemLeak": "astar",
		"TaintCheck": trace.TaintNames()[0], "AtomCheck": "ocean",
	}
	for mon, bench := range benches {
		mon, bench := mon, bench
		t.Run(mon, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(mon)
			cfg.Instrs = 25_000
			cfg.Faults = fullPlan()
			cfg.CheckInvariants = true
			if _, err := Run(bench, cfg); err != nil {
				t.Fatalf("%s/%s under faults: %v", mon, bench, err)
			}
		})
	}
}

// TestInvariantCheckerCleanAcrossModes: the checker also passes on the
// fault-free configurations it will guard in CI (-check), in every
// acceleration mode and on a CMP.
func TestInvariantCheckerCleanAcrossModes(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"unaccelerated", func(c *Config) { c.Accel = Unaccelerated }},
		{"blocking", func(c *Config) { c.Accel = FADEBlocking }},
		{"nonblocking", func(c *Config) {}},
		{"two-core", func(c *Config) { c.Topology = TwoCore }},
		{"cmp4-faults", func(c *Config) { c.Topology = CMP(4); c.Faults = fullPlan() }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig("MemLeak")
			cfg.Instrs = 25_000
			cfg.CheckInvariants = true
			tc.mutate(&cfg)
			if _, err := Run("astar", cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestInvalidConfigsErrorNeverPanic fuzzes the public Run surface with the
// invalid configurations users actually produce; every one must come back
// as an error naming the problem — a panic fails the test harness.
func TestInvalidConfigsErrorNeverPanic(t *testing.T) {
	cases := []struct {
		name   string
		bench  string
		mutate func(*Config)
	}{
		{"negative-evq", "astar", func(c *Config) { c.EventQueueCap = -1 }},
		{"negative-ufq", "astar", func(c *Config) { c.UnfilteredCap = -4 }},
		{"negative-mdcache", "astar", func(c *Config) { c.MDCacheBytes = -8 }},
		{"non-power-of-two-mdcache", "astar", func(c *Config) { c.MDCacheBytes = 3000 }},
		{"tiny-mdcache", "astar", func(c *Config) { c.MDCacheBytes = 1 }},
		{"bad-signal-latency", "astar", func(c *Config) { c.BlockingSignalCycles = -2 }},
		{"negative-app-cores", "astar", func(c *Config) { c.Topology = Topology{AppCores: -1, MonCores: 1} }},
		{"zero-mon-cores", "astar", func(c *Config) { c.Topology = Topology{AppCores: 2, MonCores: 0} }},
		{"smt-multicore", "astar", func(c *Config) { c.Topology = Topology{AppCores: 2, MonCores: 2, SMT: true} }},
		{"unknown-monitor", "astar", func(c *Config) { c.Monitor = "Bogus" }},
		{"unknown-benchmark", "no-such-bench", func(c *Config) {}},
		{"bad-fault-capfactor", "astar", func(c *Config) {
			c.Faults = &fault.Plan{MEQPressure: &fault.Pressure{MeanGap: 10, MeanDuration: 10, CapFactor: 2}}
		}},
		{"bad-fault-drop-rate", "astar", func(c *Config) {
			c.Faults = &fault.Plan{EventDrop: &fault.Drop{Rate: -1}}
		}},
		{"bad-fault-stall-gap", "astar", func(c *Config) {
			c.Faults = &fault.Plan{MonitorStall: &fault.Stall{MeanGap: 0, MeanDuration: 5}}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig("MemLeak")
			cfg.Instrs = 5_000
			tc.mutate(&cfg)
			if _, err := Run(tc.bench, cfg); err == nil {
				t.Fatalf("invalid config %s accepted", tc.name)
			}
		})
	}
}

// TestAtomCheckThreadCapEnforced: AtomCheck's lockset tables are sized for
// MaxAtomThreads hardware threads; a wider workload must be rejected with an
// error, not a later index panic.
func TestAtomCheckThreadCapEnforced(t *testing.T) {
	if _, err := RunQueueStudy("ocean", "AtomCheck", cpu.OoO4, 32, 1, 5_000); err != nil {
		t.Fatalf("4-thread AtomCheck rejected: %v", err)
	}
	cfg := DefaultConfig("AtomCheck")
	cfg.Instrs = 5_000
	if _, err := Run("astar", cfg); err != nil {
		t.Fatalf("single-threaded AtomCheck rejected: %v", err)
	}
}

// TestQueueStudyRejectsBadCap is the regression test for the queue-study
// panic on non-positive capacities.
func TestQueueStudyRejectsBadCap(t *testing.T) {
	for _, cap := range []int{0, -3} {
		_, err := RunQueueStudy("astar", "MemLeak", cpu.OoO4, cap, 1, 5_000)
		if err == nil || !strings.Contains(err.Error(), "queue") {
			t.Fatalf("queueCap %d: err = %v, want queue capacity error", cap, err)
		}
	}
}

// TestQueueStudyCancel: the queue study honors its context too.
func TestQueueStudyCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunQueueStudyContext(ctx, "astar", "MemLeak", cpu.OoO4, 32, 0xCA9CE3, 50_000)
	if !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestValidateAcceptsDefaults: every monitor's default configuration — and
// the zero-cap convention (0 = paper default) — passes validation.
func TestValidateAcceptsDefaults(t *testing.T) {
	for _, mon := range []string{"AddrCheck", "MemCheck", "TaintCheck", "MemLeak", "AtomCheck"} {
		if err := DefaultConfig(mon).Validate(); err != nil {
			t.Errorf("DefaultConfig(%s) invalid: %v", mon, err)
		}
	}
	cfg := DefaultConfig("MemLeak")
	cfg.EventQueueCap, cfg.UnfilteredCap, cfg.MDCacheBytes = 0, 0, 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("zero-defaults config invalid: %v", err)
	}
	cfg.EventQueueCap = queue.Unbounded
	if err := cfg.Validate(); err != nil {
		t.Errorf("unbounded event queue invalid: %v", err)
	}
}

// TestFaultSweepSeverityMonotonic: heavier stall injection cannot speed the
// system up — slowdown is non-decreasing in severity for a fixed workload.
func TestFaultSweepSeverityMonotonic(t *testing.T) {
	var prev float64
	for _, level := range fault.StallSeverities() {
		plan, ok := fault.StallSeverity(level)
		if !ok {
			t.Fatalf("unknown severity %q", level)
		}
		cfg := DefaultConfig("MemLeak")
		cfg.Instrs = 40_000
		cfg.Faults = plan
		cfg.CheckInvariants = true
		r, err := Run("astar", cfg)
		if err != nil {
			t.Fatalf("%s: %v", level, err)
		}
		if r.Slowdown < prev*0.98 { // 2% tolerance for burst-schedule noise
			t.Fatalf("severity %s slowdown %.3f below previous level's %.3f", level, r.Slowdown, prev)
		}
		prev = r.Slowdown
	}
}

// TestDropProbeDetected: dropped events are invisible to the producer but
// must be fully accounted for — the MEQ drop counter and the engine agree,
// and the run completes (the loss is detected, not fatal).
func TestDropProbeDetected(t *testing.T) {
	cfg := DefaultConfig("MemLeak")
	cfg.Instrs = 40_000
	cfg.Faults = &fault.Plan{EventDrop: &fault.Drop{Rate: 0.01}}
	cfg.CheckInvariants = true
	r, err := Run("astar", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var engineDrops, queueDrops float64 = -1, -1
	for _, v := range r.Metrics.Values {
		switch v.Name {
		case "fault.events_dropped":
			engineDrops = v.Num
		case "queue.meq.drops":
			queueDrops = v.Num
		}
	}
	if engineDrops <= 0 {
		t.Fatalf("fault.events_dropped = %v, want > 0 at a 1%% drop rate", engineDrops)
	}
	if engineDrops != queueDrops {
		t.Fatalf("engine counted %v drops, queue counted %v; the loss must be fully accounted", engineDrops, queueDrops)
	}
}
