package serve

import (
	"sync"
	"time"
)

// buckets rate-limits submission per tenant with classic token buckets:
// each tenant accumulates Rate tokens per second up to Burst, and every
// submission spends one. An empty bucket yields a throttled rejection with
// the exact wait until the next token, which the HTTP layer surfaces as
// Retry-After.
//
// Buckets are created lazily on a tenant's first submission and never
// expire: a tenant entry is two floats and a timestamp, so even millions
// of distinct API keys stay cheap.
type buckets struct {
	mu sync.Mutex
	// rate is tokens per second; <= 0 disables rate limiting entirely.
	rate float64
	// burst is the bucket capacity (minimum 1 when rate limiting is on).
	burst float64
	now   func() time.Time
	m     map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newBuckets(rate, burst float64, now func() time.Time) *buckets {
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &buckets{rate: rate, burst: burst, now: now, m: make(map[string]*bucket)}
}

// take spends one token from tenant's bucket. When the bucket is empty it
// reports ok=false and the wait until one token will be available.
func (b *buckets) take(tenant string) (ok bool, wait time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	bk := b.m[tenant]
	if bk == nil {
		bk = &bucket{tokens: b.burst, last: now}
		b.m[tenant] = bk
	} else {
		bk.tokens += now.Sub(bk.last).Seconds() * b.rate
		if bk.tokens > b.burst {
			bk.tokens = b.burst
		}
		bk.last = now
	}
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	return false, time.Duration((1 - bk.tokens) / b.rate * float64(time.Second))
}

// tenants returns the number of tenants seen so far.
func (b *buckets) tenants() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}
