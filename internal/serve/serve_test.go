package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fade/internal/obs"
	"fade/internal/system"
)

// instantRunner completes immediately with a minimal result.
func instantRunner(_ context.Context, bench string, cfg system.Config) (*system.Result, error) {
	return &system.Result{Benchmark: bench, Config: cfg, Instrs: cfg.Instrs}, nil
}

// gateRunner blocks every run until release is closed (or its context is
// canceled); started receives one value per run that began executing.
type gateRunner struct {
	started chan string
	release chan struct{}
}

func newGateRunner() *gateRunner {
	return &gateRunner{started: make(chan string, 64), release: make(chan struct{})}
}

func (g *gateRunner) run(ctx context.Context, bench string, cfg system.Config) (*system.Result, error) {
	g.started <- bench
	select {
	case <-g.release:
		return &system.Result{Benchmark: bench, Config: cfg, Instrs: cfg.Instrs}, nil
	case <-ctx.Done():
		return &system.Result{Benchmark: bench, Config: cfg}, ctx.Err()
	}
}

type errEnvelope struct {
	Error APIError `json:"error"`
}

func do(t *testing.T, h http.Handler, method, target, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func decodeErr(t *testing.T, w *httptest.ResponseRecorder) APIError {
	t.Helper()
	var env errEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatalf("decoding error envelope from %q: %v", w.Body.String(), err)
	}
	return env.Error
}

func decodeInfo(t *testing.T, w *httptest.ResponseRecorder) RunInfo {
	t.Helper()
	var info RunInfo
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatalf("decoding run info from %q: %v", w.Body.String(), err)
	}
	return info
}

func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSubmitErrors walks every handler error path with a table of bad
// submissions and checks both the HTTP status and the error code.
func TestSubmitErrors(t *testing.T) {
	srv := New(Options{
		Workers:       1,
		QueueCap:      4,
		DefaultInstrs: 5_000,
		Limits: Limits{
			MaxInstrs:         10_000,
			MaxCycles:         1_000_000,
			MaxWallClock:      time.Minute,
			MaxAppCores:       4,
			MaxTimelinePoints: 1_000,
		},
		Runner: instantRunner,
	})
	defer srv.Close()
	h := srv.Handler()

	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"syntax error", `{`, http.StatusBadRequest, ErrCodeBadJSON},
		{"wrong type", `{"benchmark":7}`, http.StatusBadRequest, ErrCodeBadJSON},
		{"unknown field", `{"benchmark":"astar","monitor":"MemLeak","bogus":1}`, http.StatusBadRequest, ErrCodeBadJSON},
		{"missing benchmark", `{"monitor":"MemLeak"}`, http.StatusBadRequest, ErrCodeInvalidConfig},
		{"unknown benchmark", `{"benchmark":"nope","monitor":"MemLeak"}`, http.StatusBadRequest, ErrCodeInvalidConfig},
		{"missing monitor", `{"benchmark":"astar"}`, http.StatusBadRequest, ErrCodeInvalidConfig},
		{"unknown monitor", `{"benchmark":"astar","monitor":"NopeCheck"}`, http.StatusBadRequest, ErrCodeInvalidConfig},
		{"unknown accel", `{"benchmark":"astar","monitor":"MemLeak","accel":"warp"}`, http.StatusBadRequest, ErrCodeInvalidConfig},
		{"unknown core", `{"benchmark":"astar","monitor":"MemLeak","core":"8way"}`, http.StatusBadRequest, ErrCodeInvalidConfig},
		{"negative app_cores", `{"benchmark":"astar","monitor":"MemLeak","app_cores":-1}`, http.StatusBadRequest, ErrCodeInvalidConfig},
		{"mon_cores without cmp", `{"benchmark":"astar","monitor":"MemLeak","mon_cores":2}`, http.StatusBadRequest, ErrCodeInvalidConfig},
		{"negative wall clock", `{"benchmark":"astar","monitor":"MemLeak","limits":{"wall_clock_ms":-5}}`, http.StatusBadRequest, ErrCodeInvalidConfig},
		{"bad stall severity", `{"benchmark":"astar","monitor":"MemLeak","faults":{"stall":"apocalyptic"}}`, http.StatusBadRequest, ErrCodeInvalidConfig},
		{"over-limit instrs", `{"benchmark":"astar","monitor":"MemLeak","instrs":20000}`, http.StatusUnprocessableEntity, ErrCodeLimitsExceeded},
		{"over-limit app_cores", `{"benchmark":"astar","monitor":"MemLeak","app_cores":8}`, http.StatusUnprocessableEntity, ErrCodeLimitsExceeded},
		{"over-limit max_cycles", `{"benchmark":"astar","monitor":"MemLeak","limits":{"max_cycles":2000000}}`, http.StatusUnprocessableEntity, ErrCodeLimitsExceeded},
		{"over-limit wall clock", `{"benchmark":"astar","monitor":"MemLeak","limits":{"wall_clock_ms":120000}}`, http.StatusUnprocessableEntity, ErrCodeLimitsExceeded},
		{"over-limit timeline", `{"benchmark":"astar","monitor":"MemLeak","timeline_every":1}`, http.StatusUnprocessableEntity, ErrCodeLimitsExceeded},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, h, "POST", "/v1/runs", tc.body, nil)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", w.Code, tc.wantStatus, w.Body.String())
			}
			if e := decodeErr(t, w); e.Code != tc.wantCode {
				t.Fatalf("code = %q, want %q (message %q)", e.Code, tc.wantCode, e.Message)
			}
		})
	}

	// Control: a valid submission is accepted asynchronously with a
	// Location header.
	w := do(t, h, "POST", "/v1/runs", `{"benchmark":"astar","monitor":"MemLeak"}`, nil)
	if w.Code != http.StatusAccepted {
		t.Fatalf("valid submit status = %d, want 202 (body %s)", w.Code, w.Body.String())
	}
	info := decodeInfo(t, w)
	if got := w.Header().Get("Location"); got != "/v1/runs/"+info.ID {
		t.Fatalf("Location = %q, want %q", got, "/v1/runs/"+info.ID)
	}
}

// TestNotFoundPaths covers the 404 surfaces: unknown run ids on every
// run-scoped route and unmatched paths.
func TestNotFoundPaths(t *testing.T) {
	srv := New(Options{Workers: 1, Runner: instantRunner})
	defer srv.Close()
	h := srv.Handler()

	for _, tc := range []struct{ method, target string }{
		{"GET", "/v1/runs/r-999999"},
		{"DELETE", "/v1/runs/r-999999"},
		{"GET", "/v1/runs/r-999999/timeline"},
		{"GET", "/v1/nope"},
	} {
		w := do(t, h, tc.method, tc.target, "", nil)
		if w.Code != http.StatusNotFound {
			t.Fatalf("%s %s status = %d, want 404", tc.method, tc.target, w.Code)
		}
		if e := decodeErr(t, w); e.Code != ErrCodeNotFound {
			t.Fatalf("%s %s code = %q, want not_found", tc.method, tc.target, e.Code)
		}
	}
}

// TestQueueFull429 fills the admission queue behind a blocked worker and
// checks that the overflow submission gets 429 queue_full + Retry-After,
// while everything admitted still completes after release.
func TestQueueFull429(t *testing.T) {
	gate := newGateRunner()
	srv := New(Options{Workers: 1, QueueCap: 1, Runner: gate.run})
	defer srv.Close()
	h := srv.Handler()
	submit := func() *httptest.ResponseRecorder {
		return do(t, h, "POST", "/v1/runs", `{"benchmark":"astar","monitor":"MemLeak"}`, nil)
	}

	// A occupies the single worker.
	wa := submit()
	if wa.Code != http.StatusAccepted {
		t.Fatalf("A status = %d, want 202", wa.Code)
	}
	<-gate.started
	// B is popped by the dispatcher and parks waiting for a worker slot;
	// wait for the queue to empty so the fill below is deterministic.
	wb := submit()
	if wb.Code != http.StatusAccepted {
		t.Fatalf("B status = %d, want 202", wb.Code)
	}
	eventually(t, "dispatcher to park run B", func() bool { return srv.sched.q.depth() == 0 })
	// C fills the queue (capacity 1); D must be rejected.
	wc := submit()
	if wc.Code != http.StatusAccepted {
		t.Fatalf("C status = %d, want 202", wc.Code)
	}
	wd := submit()
	if wd.Code != http.StatusTooManyRequests {
		t.Fatalf("D status = %d, want 429 (body %s)", wd.Code, wd.Body.String())
	}
	if e := decodeErr(t, wd); e.Code != ErrCodeQueueFull {
		t.Fatalf("D code = %q, want queue_full", e.Code)
	}
	if wd.Header().Get("Retry-After") == "" {
		t.Fatal("429 queue_full response is missing Retry-After")
	}
	// The rejected run must not appear in the run table.
	if n := len(srv.sched.List("")); n != 3 {
		t.Fatalf("run table has %d entries after reject, want 3", n)
	}

	close(gate.release)
	for _, w := range []*httptest.ResponseRecorder{wa, wb, wc} {
		id := decodeInfo(t, w).ID
		eventually(t, id+" to finish", func() bool {
			return decodeInfo(t, do(t, h, "GET", "/v1/runs/"+id, "", nil)).State == StateDone
		})
	}
}

// TestTenantThrottling checks the per-tenant token buckets: an exhausted
// tenant gets 429 throttled with Retry-After while other tenants submit
// freely, and tokens refill over (fake) time.
func TestTenantThrottling(t *testing.T) {
	now := time.Unix(1_000, 0)
	srv := New(Options{
		Workers:     1,
		TenantRate:  1,
		TenantBurst: 1,
		Runner:      instantRunner,
		Now:         func() time.Time { return now },
	})
	defer srv.Close()
	h := srv.Handler()
	submit := func(key string) *httptest.ResponseRecorder {
		return do(t, h, "POST", "/v1/runs", `{"benchmark":"astar","monitor":"MemLeak"}`,
			map[string]string{"X-API-Key": key})
	}

	if w := submit("alice"); w.Code != http.StatusAccepted {
		t.Fatalf("alice #1 status = %d, want 202", w.Code)
	}
	w := submit("alice")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("alice #2 status = %d, want 429", w.Code)
	}
	if e := decodeErr(t, w); e.Code != ErrCodeThrottled {
		t.Fatalf("alice #2 code = %q, want throttled", e.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("throttled response is missing Retry-After")
	}
	// Another tenant is unaffected.
	if w := submit("bob"); w.Code != http.StatusAccepted {
		t.Fatalf("bob status = %d, want 202", w.Code)
	}
	// After a second of refill, alice can submit again.
	now = now.Add(time.Second)
	if w := submit("alice"); w.Code != http.StatusAccepted {
		t.Fatalf("alice #3 status = %d, want 202 after refill", w.Code)
	}
}

// TestFairQueueRoundRobin checks dequeue order: FIFO within a tenant,
// round-robin across tenants.
func TestFairQueueRoundRobin(t *testing.T) {
	q := newFairQueue(16)
	mk := func(tenant string, seq uint64) *Run {
		return &Run{ID: fmt.Sprintf("%s-%d", tenant, seq), Tenant: tenant, seq: seq}
	}
	for _, r := range []*Run{mk("a", 1), mk("a", 2), mk("a", 3), mk("b", 4), mk("c", 5)} {
		if got := q.push(r); got != pushOK {
			t.Fatalf("push(%s) = %v", r.ID, got)
		}
	}
	want := []string{"a-1", "b-4", "c-5", "a-2", "a-3"}
	for i, w := range want {
		r, ok := q.pop()
		if !ok {
			t.Fatalf("pop #%d: queue closed early", i)
		}
		if r.ID != w {
			t.Fatalf("pop #%d = %s, want %s", i, r.ID, w)
		}
	}
	if q.depth() != 0 {
		t.Fatalf("depth = %d after draining, want 0", q.depth())
	}
}

// TestFairQueueShedOldest checks oldest-first shedding across tenants and
// that canceled runs are skipped.
func TestFairQueueShedOldest(t *testing.T) {
	q := newFairQueue(16)
	a1 := &Run{ID: "a-1", Tenant: "a", seq: 1}
	b2 := &Run{ID: "b-2", Tenant: "b", seq: 2}
	a3 := &Run{ID: "a-3", Tenant: "a", seq: 3}
	for _, r := range []*Run{a1, b2, a3} {
		q.push(r)
	}
	a1.canceledWhileQueued.Store(true)
	if got := q.shedOldest(); got != b2 {
		t.Fatalf("shedOldest = %v, want b-2 (a-1 is canceled)", got)
	}
	if got := q.shedOldest(); got != a3 {
		t.Fatalf("shedOldest = %v, want a-3", got)
	}
	if got := q.shedOldest(); got != nil {
		t.Fatalf("shedOldest on empty = %v, want nil", got)
	}
}

// TestLoadShedding arms the memory-pressure hook and checks that a new
// submission evicts the oldest queued run, which lands in state shed.
func TestLoadShedding(t *testing.T) {
	var pressure atomic.Bool
	gate := newGateRunner()
	srv := New(Options{
		Workers:     1,
		QueueCap:    4,
		Runner:      gate.run,
		MemPressure: pressure.Load,
	})
	defer srv.Close()
	h := srv.Handler()
	submit := func() RunInfo {
		w := do(t, h, "POST", "/v1/runs", `{"benchmark":"astar","monitor":"MemLeak"}`, nil)
		if w.Code != http.StatusAccepted {
			t.Fatalf("status = %d, want 202 (body %s)", w.Code, w.Body.String())
		}
		return decodeInfo(t, w)
	}

	submit() // A: occupies the worker
	<-gate.started
	submit() // B: popped, parked on the pool
	eventually(t, "dispatcher to park run B", func() bool { return srv.sched.q.depth() == 0 })
	victim := submit() // C: genuinely queued
	eventually(t, "run C to queue", func() bool { return srv.sched.q.depth() == 1 })

	pressure.Store(true)
	d := submit() // D: admitted by shedding C

	w := do(t, h, "GET", "/v1/runs/"+victim.ID, "", nil)
	if got := decodeInfo(t, w).State; got != StateShed {
		t.Fatalf("victim state = %q, want shed", got)
	}
	pressure.Store(false)
	close(gate.release)
	eventually(t, "run D to finish", func() bool {
		return decodeInfo(t, do(t, h, "GET", "/v1/runs/"+d.ID, "", nil)).State == StateDone
	})
	// The shed counter moved.
	var shed float64
	for _, v := range srv.sched.reg.Snapshot().Values {
		if v.Name == "serve.runs.shed" {
			shed = v.Num
		}
	}
	if shed != 1 {
		t.Fatalf("serve.runs.shed = %v, want 1", shed)
	}
}

// TestCancel covers DELETE on queued and running runs.
func TestCancel(t *testing.T) {
	gate := newGateRunner()
	srv := New(Options{Workers: 1, QueueCap: 4, Runner: gate.run})
	defer srv.Close()
	h := srv.Handler()
	submit := func() RunInfo {
		w := do(t, h, "POST", "/v1/runs", `{"benchmark":"astar","monitor":"MemLeak"}`, nil)
		return decodeInfo(t, w)
	}

	a := submit()
	<-gate.started
	b := submit()
	eventually(t, "dispatcher to park run B", func() bool { return srv.sched.q.depth() == 0 })
	c := submit() // stays queued behind the parked B

	// Canceling a queued run is immediate.
	w := do(t, h, "DELETE", "/v1/runs/"+c.ID, "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("DELETE queued status = %d, want 200", w.Code)
	}
	if got := decodeInfo(t, w).State; got != StateCanceled {
		t.Fatalf("queued cancel state = %q, want canceled", got)
	}

	// Canceling a running run interrupts it via its context.
	w = do(t, h, "DELETE", "/v1/runs/"+a.ID, "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("DELETE running status = %d, want 200", w.Code)
	}
	eventually(t, "run A to cancel", func() bool {
		return decodeInfo(t, do(t, h, "GET", "/v1/runs/"+a.ID, "", nil)).State == StateCanceled
	})

	close(gate.release)
	eventually(t, "run B to finish", func() bool {
		return decodeInfo(t, do(t, h, "GET", "/v1/runs/"+b.ID, "", nil)).State == StateDone
	})
}

// TestWaitSynchronous checks wait=true returns the terminal record, and
// that a client disconnect mid-wait cancels the run with partial results
// flushed.
func TestWaitSynchronous(t *testing.T) {
	gate := newGateRunner()
	srv := New(Options{Workers: 1, Runner: gate.run})
	defer srv.Close()
	h := srv.Handler()

	// Disconnect path: issue the wait request with a cancelable context
	// (httptest's stand-in for the client hanging up).
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/runs?wait=true",
		strings.NewReader(`{"benchmark":"astar","monitor":"MemLeak"}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	handlerDone := make(chan struct{})
	go func() {
		h.ServeHTTP(w, req)
		close(handlerDone)
	}()
	<-gate.started
	cancel()
	<-handlerDone
	info := decodeInfo(t, w)
	if info.State != StateCanceled {
		t.Fatalf("disconnected wait state = %q, want canceled", info.State)
	}
	if info.Result == nil {
		t.Fatal("disconnected wait flushed no partial result")
	}

	// Happy path: release the gate, wait=1 returns done synchronously.
	close(gate.release)
	w2 := do(t, h, "POST", "/v1/runs?wait=1", `{"benchmark":"astar","monitor":"MemLeak"}`, nil)
	if w2.Code != http.StatusOK {
		t.Fatalf("wait=1 status = %d, want 200", w2.Code)
	}
	if got := decodeInfo(t, w2).State; got != StateDone {
		t.Fatalf("wait=1 state = %q, want done", got)
	}
}

// TestTimelineEndpoint checks the 409 not_ready path and the JSONL stream
// for a finished run with timeline sampling on.
func TestTimelineEndpoint(t *testing.T) {
	gate := newGateRunner()
	srv := New(Options{Workers: 1, Runner: gate.run})
	defer srv.Close()
	h := srv.Handler()

	w := do(t, h, "POST", "/v1/runs", `{"benchmark":"astar","monitor":"MemLeak"}`, nil)
	id := decodeInfo(t, w).ID
	<-gate.started

	// Still running: the timeline is not available yet.
	w = do(t, h, "GET", "/v1/runs/"+id+"/timeline", "", nil)
	if w.Code != http.StatusConflict {
		t.Fatalf("running timeline status = %d, want 409", w.Code)
	}
	if e := decodeErr(t, w); e.Code != ErrCodeNotReady {
		t.Fatalf("running timeline code = %q, want not_ready", e.Code)
	}
	close(gate.release)
	eventually(t, "run to finish", func() bool {
		return decodeInfo(t, do(t, h, "GET", "/v1/runs/"+id, "", nil)).State == StateDone
	})

	// A real run with sampling on streams one JSON object per line.
	real := New(Options{Workers: 1})
	defer real.Close()
	rh := real.Handler()
	w = do(t, rh, "POST", "/v1/runs?wait=1",
		`{"benchmark":"astar","monitor":"MemLeak","instrs":2000,"timeline_every":500}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("real run status = %d (body %s)", w.Code, w.Body.String())
	}
	info := decodeInfo(t, w)
	w = do(t, rh, "GET", "/v1/runs/"+info.ID+"/timeline", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("timeline status = %d, want 200", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("timeline Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("timeline stream is empty")
	}
	for i, line := range lines {
		var point struct {
			Cell  string `json:"cell"`
			Cycle uint64 `json:"cycle"`
		}
		if err := json.Unmarshal([]byte(line), &point); err != nil {
			t.Fatalf("timeline line %d is not JSON: %v (%q)", i, err, line)
		}
		if point.Cell != "astar/MemLeak" {
			t.Fatalf("timeline line %d cell = %q, want astar/MemLeak", i, point.Cell)
		}
	}
}

// TestDrain checks graceful shutdown: in-flight runs complete, new
// submissions get 503 draining, and readyz flips while healthz stays up.
func TestDrain(t *testing.T) {
	gate := newGateRunner()
	srv := New(Options{Workers: 1, Runner: gate.run})
	h := srv.Handler()

	w := do(t, h, "POST", "/v1/runs", `{"benchmark":"astar","monitor":"MemLeak"}`, nil)
	id := decodeInfo(t, w).ID
	<-gate.started

	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain(context.Background()) }()
	eventually(t, "draining flag", func() bool { return srv.sched.Draining() })

	if w := do(t, h, "POST", "/v1/runs", `{"benchmark":"astar","monitor":"MemLeak"}`, nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining status = %d, want 503", w.Code)
	} else if e := decodeErr(t, w); e.Code != ErrCodeDraining {
		t.Fatalf("submit while draining code = %q, want draining", e.Code)
	}
	if w := do(t, h, "GET", "/readyz", "", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining status = %d, want 503", w.Code)
	}
	if w := do(t, h, "GET", "/healthz", "", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz while draining status = %d, want 200", w.Code)
	}

	// The in-flight run completes and drain returns cleanly.
	close(gate.release)
	if err := <-drainErr; err != nil {
		t.Fatalf("drain returned %v, want nil", err)
	}
	if got := decodeInfo(t, do(t, h, "GET", "/v1/runs/"+id, "", nil)).State; got != StateDone {
		t.Fatalf("in-flight run state after drain = %q, want done", got)
	}
}

// TestDrainTimeout checks the expiry path: when the drain budget runs out,
// remaining runs are canceled and their partial results flushed.
func TestDrainTimeout(t *testing.T) {
	gate := newGateRunner() // never released: the run only stops via ctx
	srv := New(Options{Workers: 1, Runner: gate.run})
	h := srv.Handler()

	w := do(t, h, "POST", "/v1/runs", `{"benchmark":"astar","monitor":"MemLeak"}`, nil)
	id := decodeInfo(t, w).ID
	<-gate.started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("drain returned %v, want deadline exceeded", err)
	}
	info := decodeInfo(t, do(t, h, "GET", "/v1/runs/"+id, "", nil))
	if info.State != StateCanceled {
		t.Fatalf("state after expired drain = %q, want canceled", info.State)
	}
	if info.Result == nil {
		t.Fatal("expired drain flushed no partial result")
	}
}

// TestMetricsEndpoint checks /metrics serves the serve.* namespace plus
// hub-published per-run snapshots with labels.
func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("app.instrs").Add(42)
	snap := reg.Snapshot()
	srv := New(Options{
		Workers: 1,
		Runner: func(_ context.Context, bench string, cfg system.Config) (*system.Result, error) {
			return &system.Result{Benchmark: bench, Config: cfg, Metrics: snap}, nil
		},
	})
	defer srv.Close()
	h := srv.Handler()

	w := do(t, h, "POST", "/v1/runs?wait=1", `{"benchmark":"astar","monitor":"MemLeak"}`, map[string]string{"X-API-Key": "alice"})
	if w.Code != http.StatusOK {
		t.Fatalf("run status = %d", w.Code)
	}
	id := decodeInfo(t, w).ID

	w = do(t, h, "GET", "/metrics", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		"fade_serve_http_requests",
		"fade_serve_queue_depth",
		"fade_serve_runs_completed 1",
		"fade_serve_http_latency_us_submit_count",
		`run="` + id + `"`,
		`tenant="alice"`,
		`bench="astar"`,
		`monitor="MemLeak"`,
		"fade_app_instrs",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics output is missing %q", want)
		}
	}
}

// TestLatencyHistogram unit-tests the lock-free histogram's derived
// series.
func TestLatencyHistogram(t *testing.T) {
	var h latencyHist
	for i := 0; i < 99; i++ {
		h.observe(50 * time.Microsecond) // first bucket (<=100us)
	}
	h.observe(2 * time.Second) // overflow-adjacent tail

	total := h.count.Load()
	if total != 100 {
		t.Fatalf("count = %d, want 100", total)
	}
	if got := h.quantile(0.50, total); got != 100 {
		t.Fatalf("p50 = %v, want 100 (first bucket bound)", got)
	}
	if got := h.quantile(0.99, total); got != 100 {
		t.Fatalf("p99 = %v, want 100 (99 of 100 in the first bucket)", got)
	}
	if got := h.maxUS.Load(); got != 2_000_000 {
		t.Fatalf("max = %d, want 2000000", got)
	}
}
