package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fade/internal/rcache"
)

// TestSubmitCoalesces checks the serve-layer single-flight: two
// concurrent submissions of the same spec run the simulator exactly
// once — the second rides the first and settles with the identical
// result document marked "cached": true.
func TestSubmitCoalesces(t *testing.T) {
	gate := newGateRunner()
	srv := New(Options{Workers: 2, Cache: rcache.NewMem(16), Runner: gate.run})
	defer srv.Close()
	h := srv.Handler()

	submitWait := func() chan *httptest.ResponseRecorder {
		ch := make(chan *httptest.ResponseRecorder, 1)
		go func() {
			ch <- do(t, h, "POST", "/v1/runs?wait=true", `{"benchmark":"astar","monitor":"MemLeak"}`, nil)
		}()
		return ch
	}

	primary := submitWait()
	<-gate.started // the primary is mid-execution
	follower := submitWait()

	// The follower must coalesce rather than start a second simulation.
	eventually(t, "follower to coalesce", func() bool {
		return srv.sched.met.runsCoalesced.Value() == 1
	})
	select {
	case bench := <-gate.started:
		t.Fatalf("second simulation started (%q); submissions did not coalesce", bench)
	default:
	}

	close(gate.release)
	wp, wf := <-primary, <-follower
	for _, w := range []*httptest.ResponseRecorder{wp, wf} {
		if w.Code != http.StatusOK {
			t.Fatalf("wait=true status = %d, want 200 (body %s)", w.Code, w.Body.String())
		}
	}
	pi, fi := decodeInfo(t, wp), decodeInfo(t, wf)
	if pi.State != StateDone || fi.State != StateDone {
		t.Fatalf("states = %q/%q, want done/done", pi.State, fi.State)
	}
	if pi.Cached {
		t.Fatal("primary reported cached=true; it should have executed")
	}
	if !fi.Cached {
		t.Fatal("coalesced follower reported cached=false")
	}
	if len(pi.Result) == 0 || !bytes.Equal(pi.Result, fi.Result) {
		t.Fatalf("follower result differs from primary\nprimary:  %s\nfollower: %s", pi.Result, fi.Result)
	}
	if got := srv.sched.met.runsSubmitted.Value(); got != 2 {
		t.Fatalf("serve.runs.submitted = %d, want 2", got)
	}
}

// TestCoalescedFollowerSurvivesPrimaryCancel checks the promotion path:
// when the primary is canceled before producing a result, the coalesced
// follower is promoted into a real queued run and still completes.
func TestCoalescedFollowerSurvivesPrimaryCancel(t *testing.T) {
	gate := newGateRunner()
	srv := New(Options{Workers: 1, Cache: rcache.NewMem(16), Runner: gate.run})
	defer srv.Close()
	h := srv.Handler()

	wp := do(t, h, "POST", "/v1/runs", `{"benchmark":"astar","monitor":"MemLeak"}`, nil)
	if wp.Code != http.StatusAccepted {
		t.Fatalf("primary status = %d, want 202", wp.Code)
	}
	primaryID := decodeInfo(t, wp).ID
	<-gate.started

	followerCh := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		followerCh <- do(t, h, "POST", "/v1/runs?wait=true", `{"benchmark":"astar","monitor":"MemLeak"}`, nil)
	}()
	eventually(t, "follower to coalesce", func() bool {
		return srv.sched.met.runsCoalesced.Value() == 1
	})

	if w := do(t, h, "DELETE", "/v1/runs/"+primaryID, "", nil); w.Code != http.StatusOK {
		t.Fatalf("cancel status = %d, want 200 (body %s)", w.Code, w.Body.String())
	}
	// Promotion re-queues the follower; it must reach the runner itself.
	select {
	case <-gate.started:
	case <-time.After(5 * time.Second):
		t.Fatal("promoted follower never started executing")
	}
	close(gate.release)

	wf := <-followerCh
	fi := decodeInfo(t, wf)
	if fi.State != StateDone {
		t.Fatalf("promoted follower state = %q (error %q), want done", fi.State, fi.Error)
	}
	if fi.Cached {
		t.Fatal("promoted follower reported cached=true; it executed itself")
	}
}

// TestRetryAfterComputed checks that queue_full 429s carry a computed
// Retry-After: the per-run cost estimate (1s floor before any run has
// executed) scaled by backlog, plus the deterministic {0,1,2}s jitter
// rotation — so three consecutive rejects see 2s, 3s, 1s.
func TestRetryAfterComputed(t *testing.T) {
	gate := newGateRunner()
	srv := New(Options{Workers: 1, QueueCap: 1, Runner: gate.run})
	defer srv.Close()
	defer close(gate.release)
	h := srv.Handler()
	submit := func() *httptest.ResponseRecorder {
		return do(t, h, "POST", "/v1/runs", `{"benchmark":"astar","monitor":"MemLeak"}`, nil)
	}

	// A occupies the worker, B parks at the pool, C fills the queue.
	if w := submit(); w.Code != http.StatusAccepted {
		t.Fatalf("A status = %d, want 202", w.Code)
	}
	<-gate.started
	if w := submit(); w.Code != http.StatusAccepted {
		t.Fatalf("B status = %d, want 202", w.Code)
	}
	eventually(t, "dispatcher to park run B", func() bool { return srv.sched.q.depth() == 0 })
	if w := submit(); w.Code != http.StatusAccepted {
		t.Fatalf("C status = %d, want 202", w.Code)
	}

	want := []string{"2", "3", "1"}
	for i, exp := range want {
		w := submit()
		if w.Code != http.StatusTooManyRequests {
			t.Fatalf("reject #%d status = %d, want 429 (body %s)", i+1, w.Code, w.Body.String())
		}
		if got := w.Header().Get("Retry-After"); got != exp {
			t.Fatalf("reject #%d Retry-After = %q, want %q", i+1, got, exp)
		}
	}
}
