package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"fade/internal/spans"
)

// TestTraceEndpoint walks the trace route's state machine: 409 while the
// run executes, 404 for unknown ids, 200 with valid Chrome trace JSON (and
// JSONL under ?format=jsonl) once the run is terminal.
func TestTraceEndpoint(t *testing.T) {
	gate := newGateRunner()
	srv := New(Options{Workers: 1, Runner: gate.run})
	defer srv.Close()
	h := srv.Handler()

	w := do(t, h, "POST", "/v1/runs", `{"benchmark":"astar","monitor":"MemLeak"}`, nil)
	id := decodeInfo(t, w).ID
	<-gate.started

	w = do(t, h, "GET", "/v1/runs/"+id+"/trace", "", nil)
	if w.Code != http.StatusConflict {
		t.Fatalf("running trace status = %d, want 409", w.Code)
	}
	if e := decodeErr(t, w); e.Code != ErrCodeNotReady {
		t.Fatalf("running trace code = %q, want not_ready", e.Code)
	}

	w = do(t, h, "GET", "/v1/runs/nope/trace", "", nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown run trace status = %d, want 404", w.Code)
	}

	close(gate.release)
	eventually(t, "run to finish", func() bool {
		return decodeInfo(t, do(t, h, "GET", "/v1/runs/"+id, "", nil)).State == StateDone
	})

	w = do(t, h, "GET", "/v1/runs/"+id+"/trace", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("trace status = %d (body %s)", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("trace Content-Type = %q", ct)
	}
	if err := spans.ValidateChromeJSON(w.Body.Bytes()); err != nil {
		t.Fatalf("trace body failed the Chrome validator: %v", err)
	}
	var doc struct {
		OtherData struct {
			TraceID string `json:"traceId"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.OtherData.TraceID != id {
		t.Fatalf("trace id = %q, want the run id %q", doc.OtherData.TraceID, id)
	}

	w = do(t, h, "GET", "/v1/runs/"+id+"/trace?format=jsonl", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("jsonl trace status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("jsonl trace Content-Type = %q", ct)
	}
	for i, line := range strings.Split(strings.TrimSpace(w.Body.String()), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("jsonl line %d is not JSON: %q", i, line)
		}
	}
}

// TestTraceDisabled: a negative TraceCap turns tracing off server-wide and
// the route reports 404 even for terminal runs.
func TestTraceDisabled(t *testing.T) {
	srv := New(Options{Workers: 1, Runner: instantRunner, TraceCap: -1})
	defer srv.Close()
	h := srv.Handler()

	w := do(t, h, "POST", "/v1/runs?wait=1", `{"benchmark":"astar","monitor":"MemLeak"}`, nil)
	id := decodeInfo(t, w).ID
	w = do(t, h, "GET", "/v1/runs/"+id+"/trace", "", nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("disabled trace status = %d, want 404", w.Code)
	}
}

// TestTraceLinkedDomains runs a real simulation through the server and
// asserts the exported trace links both clock domains under the run's
// trace id: wall spans from the serving path (admit, queue wait, schedule,
// execute, encode) and cycle spans from inside the simulator.
func TestTraceLinkedDomains(t *testing.T) {
	srv := New(Options{Workers: 1})
	defer srv.Close()
	h := srv.Handler()

	w := do(t, h, "POST", "/v1/runs?wait=1", `{"benchmark":"astar","monitor":"MemLeak","instrs":5000}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("run status = %d (body %s)", w.Code, w.Body.String())
	}
	id := decodeInfo(t, w).ID

	w = do(t, h, "GET", "/v1/runs/"+id+"/trace?format=jsonl", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("trace status = %d", w.Code)
	}
	domains := map[string]bool{}
	wallNames := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(w.Body.String()), "\n") {
		var span struct {
			Trace  string `json:"trace"`
			Domain string `json:"domain"`
			Name   string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("bad jsonl line %q: %v", line, err)
		}
		if span.Trace != id {
			t.Fatalf("span trace id = %q, want %q", span.Trace, id)
		}
		domains[span.Domain] = true
		if span.Domain == "wall" {
			wallNames[span.Name] = true
		}
		if !spans.Known(span.Name) {
			t.Fatalf("span name %q is not registered", span.Name)
		}
	}
	if !domains["wall"] || !domains["cycle"] {
		t.Fatalf("trace domains = %v, want both wall and cycle", domains)
	}
	for _, want := range []string{
		spans.NameServeAdmit, spans.NameServeQueueWait, spans.NameServeSchedule,
		spans.NameServeExecute, spans.NameServeEncode,
	} {
		if !wallNames[want] {
			t.Fatalf("wall span %q missing from the serving path (got %v)", want, wallNames)
		}
	}
}

// TestTraceDirPersists: with TraceDir set, every finished run leaves
// <id>.trace.json on disk — including when the directory must be created.
func TestTraceDirPersists(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "traces")
	srv := New(Options{Workers: 1, Runner: instantRunner, TraceDir: dir})
	defer srv.Close()
	h := srv.Handler()

	w := do(t, h, "POST", "/v1/runs?wait=1", `{"benchmark":"astar","monitor":"MemLeak"}`, nil)
	id := decodeInfo(t, w).ID
	data, err := os.ReadFile(filepath.Join(dir, id+".trace.json"))
	if err != nil {
		t.Fatalf("persisted trace missing: %v", err)
	}
	if err := spans.ValidateChromeJSON(data); err != nil {
		t.Fatalf("persisted trace failed the validator: %v", err)
	}
}

// syncBuffer lets the slog handler write from scheduler goroutines while
// the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestStructuredLogging: run lifecycle events come out as JSON log lines
// carrying run, tenant, and trace_id attributes.
func TestStructuredLogging(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	srv := New(Options{Workers: 1, Runner: instantRunner, Logger: logger})
	defer srv.Close()
	h := srv.Handler()

	w := do(t, h, "POST", "/v1/runs?wait=1", `{"benchmark":"astar","monitor":"MemLeak"}`, map[string]string{"X-API-Key": "acme"})
	id := decodeInfo(t, w).ID

	var sawSubmitted, sawFinished bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec struct {
			Msg     string `json:"msg"`
			Run     string `json:"run"`
			Tenant  string `json:"tenant"`
			TraceID string `json:"trace_id"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q", line)
		}
		if rec.Run != id {
			continue
		}
		if rec.Tenant != "acme" || rec.TraceID != id {
			t.Fatalf("log line %q: tenant=%q trace_id=%q, want acme/%s", line, rec.Tenant, rec.TraceID, id)
		}
		switch rec.Msg {
		case "run submitted":
			sawSubmitted = true
		case "run finished":
			sawFinished = true
		}
	}
	if !sawSubmitted || !sawFinished {
		t.Fatalf("lifecycle log lines missing: submitted=%v finished=%v in %q", sawSubmitted, sawFinished, buf.String())
	}
}
