package serve

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"fade/internal/cpu"
	"fade/internal/fault"
	"fade/internal/runspec"
	"fade/internal/system"
	"fade/internal/trace"
)

// Error codes returned in the error envelope. They are part of the API:
// clients branch on the code, the message is for humans. docs/SERVING.md
// documents each one.
const (
	// ErrCodeBadJSON — the request body is not valid JSON for the schema
	// (syntax error, wrong type, unknown field). HTTP 400.
	ErrCodeBadJSON = "bad_json"
	// ErrCodeInvalidConfig — the submission is well-formed but does not
	// describe a runnable system (unknown benchmark/monitor/accel/core,
	// invalid topology or fault plan). HTTP 400.
	ErrCodeInvalidConfig = "invalid_config"
	// ErrCodeLimitsExceeded — the submission asks for more than the
	// server's admission limits allow (instructions, cycle cap,
	// wall-clock). HTTP 422.
	ErrCodeLimitsExceeded = "limits_exceeded"
	// ErrCodeThrottled — the tenant's token bucket is empty; retry after
	// the duration in the Retry-After header. HTTP 429.
	ErrCodeThrottled = "throttled"
	// ErrCodeQueueFull — the admission queue is at capacity; retry after
	// the duration in the Retry-After header. HTTP 429.
	ErrCodeQueueFull = "queue_full"
	// ErrCodeDraining — the server is shutting down and rejects new
	// submissions while in-flight runs complete. HTTP 503.
	ErrCodeDraining = "draining"
	// ErrCodeNotFound — no run with the requested id. HTTP 404.
	ErrCodeNotFound = "not_found"
	// ErrCodeNotReady — the requested artifact (timeline) is not
	// available yet because the run has not reached a terminal state.
	// HTTP 409.
	ErrCodeNotReady = "not_ready"
	// ErrCodeInternal — unexpected server-side failure. HTTP 500.
	ErrCodeInternal = "internal"
)

// APIError is the error envelope every non-2xx JSON response carries:
// {"error":{"code":"...","message":"..."}}.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Run states reported in RunInfo.State.
const (
	// StateQueued — admitted, waiting for a worker.
	StateQueued = "queued"
	// StateRunning — executing on a pool worker.
	StateRunning = "running"
	// StateDone — completed; RunInfo.Result holds the full result.
	StateDone = "done"
	// StateFailed — aborted with an error; a partial result (metrics
	// snapshot with run.aborted=1) is flushed when the simulator produced
	// one.
	StateFailed = "failed"
	// StateCanceled — canceled by the client (DELETE, disconnected wait
	// request) or by shutdown before completing; partial results are
	// flushed like StateFailed.
	StateCanceled = "canceled"
	// StateShed — evicted from the admission queue by load shedding
	// before it ever ran.
	StateShed = "shed"
)

// SubmitRequest is the body of POST /v1/runs. Zero fields select the
// documented defaults; unknown fields are rejected.
type SubmitRequest struct {
	// Benchmark is the workload profile name (fade.Benchmarks). Required.
	Benchmark string `json:"benchmark"`
	// Monitor is the monitoring tool: AddrCheck, MemCheck, TaintCheck,
	// MemLeak, or AtomCheck. Required.
	Monitor string `json:"monitor"`
	// Accel selects the acceleration mode: "none", "blocking", or "fade"
	// (default "fade").
	Accel string `json:"accel,omitempty"`
	// Core selects the core model: "inorder", "2way", or "4way"
	// (default "4way").
	Core string `json:"core,omitempty"`
	// AppCores > 1 selects a CMP topology with that many application
	// cores; 0 or 1 selects the paper's single dual-threaded SMT core.
	AppCores int `json:"app_cores,omitempty"`
	// MonCores is the number of dedicated monitor cores for a CMP
	// topology (default: one per application core).
	MonCores int `json:"mon_cores,omitempty"`
	// Seed seeds the workload and fault RNG streams (default 1). Results
	// are byte-deterministic per (seed, config) pair.
	Seed uint64 `json:"seed,omitempty"`
	// Instrs is the application instruction budget per core (default:
	// the server's -default-instrs, itself defaulting to 400000).
	Instrs uint64 `json:"instrs,omitempty"`
	// EventQueueCap and UnfilteredCap size the event queues (defaults 32
	// and 16).
	EventQueueCap int `json:"event_queue_cap,omitempty"`
	UnfilteredCap int `json:"unfiltered_cap,omitempty"`
	// TimelineEvery samples the run's metrics registry every N cycles
	// into the timeline served at GET /v1/runs/{id}/timeline. 0 disables
	// sampling.
	TimelineEvery uint64 `json:"timeline_every,omitempty"`
	// FastForward arms the scheduler's quiescence skip-ahead (default
	// true; results are byte-identical either way).
	FastForward *bool `json:"fast_forward,omitempty"`
	// CheckInvariants runs the per-cycle invariant checker (forces
	// cycle-exact execution).
	CheckInvariants bool `json:"check_invariants,omitempty"`
	// Limits bounds the run; both values are clamped against the
	// server's admission limits (a request over them is rejected with
	// limits_exceeded, never silently clamped).
	Limits *LimitsSpec `json:"limits,omitempty"`
	// Faults configures deterministic fault injection.
	Faults *FaultsSpec `json:"faults,omitempty"`
}

// LimitsSpec is the wire form of system.RunLimits.
type LimitsSpec struct {
	// MaxCycles caps simulated time; hitting it fails the run with a
	// structured error rather than truncating silently.
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// WallClockMS caps real time for the run in milliseconds. For wait
	// requests this is the per-request deadline: the run aborts (with
	// partial results flushed) when it elapses.
	WallClockMS int64 `json:"wall_clock_ms,omitempty"`
}

// FaultsSpec is the wire form of fault.Plan.
type FaultsSpec struct {
	// Seed seeds the injector RNG streams (0 borrows the run seed).
	Seed uint64 `json:"seed,omitempty"`
	// Stall is a monitor-stall severity name: "mild", "moderate", or
	// "severe" ("" or "none" injects no stalls).
	Stall string `json:"stall,omitempty"`
	// MEQPressure / UFQPressure shrink the effective queue capacity by
	// this factor in (0,1] during pressure bursts.
	MEQPressure float64 `json:"meq_pressure,omitempty"`
	UFQPressure float64 `json:"ufq_pressure,omitempty"`
	// DropRate silently drops monitored events with this probability.
	DropRate float64 `json:"drop_rate,omitempty"`
	// CorruptGap is the mean cycle gap between metadata bit flips (0
	// disables corruption).
	CorruptGap float64 `json:"corrupt_gap,omitempty"`
}

// Limits are the server-side admission bounds (flags on cmd/fadeserve).
// A submission exceeding any bound is rejected with limits_exceeded.
type Limits struct {
	// MaxInstrs caps the per-core instruction budget of one run.
	MaxInstrs uint64
	// MaxCycles caps a run's requested cycle cap (and is applied as the
	// default Limits.MaxCycles when the submission sets none... it is
	// only an admission bound; the simulator derives its own default).
	MaxCycles uint64
	// MaxWallClock caps (and, when the submission sets none, becomes)
	// the run's wall-clock budget.
	MaxWallClock time.Duration
	// MaxAppCores caps CMP width.
	MaxAppCores int
	// MaxTimelinePoints bounds timeline memory: instrs-derived cycle cap
	// divided by TimelineEvery must stay under it.
	MaxTimelinePoints uint64
}

// DefaultLimits are the daemon defaults: generous for interactive use,
// small enough that one tenant cannot wedge a worker for long.
var DefaultLimits = Limits{
	MaxInstrs:         5_000_000,
	MaxCycles:         1_000_000_000,
	MaxWallClock:      5 * time.Minute,
	MaxAppCores:       16,
	MaxTimelinePoints: 100_000,
}

// apiErr carries an error code + message through the validation helpers to
// the HTTP layer, which maps codes to status lines.
type apiErr struct {
	code string
	msg  string
}

func (e *apiErr) Error() string { return e.msg }

func errInvalid(format string, args ...any) error {
	return &apiErr{code: ErrCodeInvalidConfig, msg: fmt.Sprintf(format, args...)}
}

func errLimits(format string, args ...any) error {
	return &apiErr{code: ErrCodeLimitsExceeded, msg: fmt.Sprintf(format, args...)}
}

// Config maps the submission onto a runnable system.Config, applying the
// server defaults and enforcing the admission limits. The returned error,
// if any, is an *apiErr with code invalid_config or limits_exceeded.
func (r *SubmitRequest) Config(defaultInstrs uint64, lim Limits) (system.Config, error) {
	var zero system.Config
	if r.Benchmark == "" {
		return zero, errInvalid("missing required field %q", "benchmark")
	}
	if _, ok := trace.Lookup(r.Benchmark); !ok {
		return zero, errInvalid("unknown benchmark %q", r.Benchmark)
	}
	if r.Monitor == "" {
		return zero, errInvalid("missing required field %q", "monitor")
	}

	cfg := system.DefaultConfig(r.Monitor)
	switch r.Accel {
	case "", "fade":
		cfg.Accel = system.FADENonBlocking
	case "blocking":
		cfg.Accel = system.FADEBlocking
	case "none":
		cfg.Accel = system.Unaccelerated
	default:
		return zero, errInvalid("unknown accel %q (want none|blocking|fade)", r.Accel)
	}
	switch r.Core {
	case "", "4way":
		// DefaultConfig's OoO4.
	case "2way":
		cfg.Core = cpu.OoO2
	case "inorder":
		cfg.Core = cpu.InOrder
	default:
		return zero, errInvalid("unknown core %q (want inorder|2way|4way)", r.Core)
	}
	switch {
	case r.AppCores < 0:
		return zero, errInvalid("app_cores must be >= 0, got %d", r.AppCores)
	case r.AppCores > 1:
		if lim.MaxAppCores > 0 && r.AppCores > lim.MaxAppCores {
			return zero, errLimits("app_cores %d exceeds the server limit %d", r.AppCores, lim.MaxAppCores)
		}
		mc := r.MonCores
		if mc == 0 {
			mc = r.AppCores
		}
		cfg.Topology = system.Topology{AppCores: r.AppCores, MonCores: mc}
	case r.MonCores > 1:
		return zero, errInvalid("mon_cores without app_cores > 1")
	}

	if r.Seed != 0 {
		cfg.Seed = r.Seed
	}
	cfg.Instrs = r.Instrs
	if cfg.Instrs == 0 {
		cfg.Instrs = defaultInstrs
	}
	if lim.MaxInstrs > 0 && cfg.Instrs > lim.MaxInstrs {
		return zero, errLimits("instrs %d exceeds the server limit %d", cfg.Instrs, lim.MaxInstrs)
	}
	cfg.EventQueueCap = r.EventQueueCap
	cfg.UnfilteredCap = r.UnfilteredCap
	cfg.TimelineEvery = r.TimelineEvery
	if r.TimelineEvery > 0 && lim.MaxTimelinePoints > 0 {
		// The derived cycle cap bounds how many points can accumulate.
		cap := cfg.Instrs * 100
		if points := cap / r.TimelineEvery; points > lim.MaxTimelinePoints {
			return zero, errLimits("timeline_every %d could record %d points, over the server limit %d",
				r.TimelineEvery, points, lim.MaxTimelinePoints)
		}
	}
	cfg.FastForward = r.FastForward == nil || *r.FastForward
	cfg.CheckInvariants = r.CheckInvariants

	if l := r.Limits; l != nil {
		if lim.MaxCycles > 0 && l.MaxCycles > lim.MaxCycles {
			return zero, errLimits("limits.max_cycles %d exceeds the server limit %d", l.MaxCycles, lim.MaxCycles)
		}
		if l.WallClockMS < 0 {
			return zero, errInvalid("limits.wall_clock_ms must be >= 0, got %d", l.WallClockMS)
		}
		wall := time.Duration(l.WallClockMS) * time.Millisecond
		if lim.MaxWallClock > 0 && wall > lim.MaxWallClock {
			return zero, errLimits("limits.wall_clock_ms %d exceeds the server limit %dms",
				l.WallClockMS, lim.MaxWallClock.Milliseconds())
		}
		cfg.Limits = system.RunLimits{MaxCycles: l.MaxCycles, WallClock: wall}
	}
	if cfg.Limits.WallClock == 0 && lim.MaxWallClock > 0 {
		// Every admitted run gets the server's wall-clock ceiling so a
		// pathological configuration cannot hold a worker forever.
		cfg.Limits.WallClock = lim.MaxWallClock
	}

	if f := r.Faults; f != nil {
		plan := &fault.Plan{Seed: f.Seed}
		if f.Stall != "" && f.Stall != "none" {
			sp, ok := fault.StallSeverity(f.Stall)
			if !ok {
				return zero, errInvalid("unknown faults.stall severity %q", f.Stall)
			}
			plan.MonitorStall = sp.MonitorStall
		}
		if f.MEQPressure > 0 {
			plan.MEQPressure = &fault.Pressure{MeanGap: 2048, MeanDuration: 256, CapFactor: f.MEQPressure}
		}
		if f.UFQPressure > 0 {
			plan.UFQPressure = &fault.Pressure{MeanGap: 2048, MeanDuration: 256, CapFactor: f.UFQPressure}
		}
		if f.DropRate > 0 {
			plan.EventDrop = &fault.Drop{Rate: f.DropRate}
		}
		if f.CorruptGap > 0 {
			plan.MDCorruption = &fault.Corrupt{MeanGap: f.CorruptGap}
		}
		if !plan.Empty() || plan.Seed != 0 {
			cfg.Faults = plan
		}
	}

	if err := cfg.Validate(); err != nil {
		return zero, errInvalid("%v", err)
	}
	return cfg, nil
}

// Spec maps the submission onto its canonical run spec — the
// content-addressed identity the result cache is keyed by. It applies the
// same defaults and admission limits as Config (it is Config followed by
// canonicalization), so a submission that fails Config fails Spec with
// the identical error. Two submissions describing the same run produce
// specs with equal Hash() regardless of which defaults were spelled out.
func (r *SubmitRequest) Spec(defaultInstrs uint64, lim Limits) (runspec.Spec, error) {
	cfg, err := r.Config(defaultInstrs, lim)
	if err != nil {
		return runspec.Spec{}, err
	}
	return system.SpecFromConfig(r.Benchmark, cfg), nil
}

// RunInfo is the run envelope returned by POST /v1/runs, GET /v1/runs,
// GET /v1/runs/{id}, and DELETE /v1/runs/{id}.
type RunInfo struct {
	ID        string `json:"id"`
	Tenant    string `json:"tenant"`
	State     string `json:"state"`
	Benchmark string `json:"benchmark"`
	Monitor   string `json:"monitor"`

	SubmittedAt string `json:"submitted_at,omitempty"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`

	// Cached reports that the run's result was served from the server's
	// result cache (Options.Cache) instead of being simulated. The result
	// document is byte-identical either way.
	Cached bool `json:"cached,omitempty"`

	// Error is the failure/cancellation reason for terminal non-done
	// states.
	Error string `json:"error,omitempty"`
	// Result is the deterministic result document (ResultView) for
	// terminal runs that produced one — complete for done, partial
	// (aborted=true, run.aborted=1 in metrics) for failed/canceled runs
	// that got far enough to snapshot.
	Result json.RawMessage `json:"result,omitempty"`
}

// ResultView is the result document embedded in RunInfo.Result: the
// stable, deterministic subset of system.Result. For identical (seed,
// config) pairs the marshaled bytes are identical.
type ResultView struct {
	Benchmark string `json:"benchmark"`
	Monitor   string `json:"monitor"`
	Accel     string `json:"accel"`
	Topology  string `json:"topology"`
	Seed      uint64 `json:"seed"`
	Instrs    uint64 `json:"instrs"`

	Aborted bool `json:"aborted,omitempty"`

	Cycles          uint64  `json:"cycles"`
	BaselineCycles  uint64  `json:"baseline_cycles"`
	Slowdown        float64 `json:"slowdown"`
	MonitoredEvents uint64  `json:"monitored_events"`
	AppIPC          float64 `json:"app_ipc"`
	BaselineIPC     float64 `json:"baseline_ipc"`
	FilterRatio     float64 `json:"filter_ratio"`
	EvqMax          int     `json:"evq_max"`
	AppStallCycles  uint64  `json:"app_stall_cycles"`
	HandlersRun     uint64  `json:"handlers_run"`

	Reports []string `json:"reports,omitempty"`

	// Cores holds the per-cell (per application core) sub-results.
	Cores []CoreView `json:"cores"`

	// Metrics is the run's full end-of-run metrics snapshot:
	// {"cycle":N,"metrics":{"app.instrs":...}} (see docs/METRICS.md).
	Metrics json.RawMessage `json:"metrics,omitempty"`
	// TimelinePoints is the number of cycle-sampled snapshots available
	// at GET /v1/runs/{id}/timeline.
	TimelinePoints int `json:"timeline_points"`
}

// CoreView is one application core's slice of the result.
type CoreView struct {
	Core            int     `json:"core"`
	Seed            uint64  `json:"seed"`
	Cycles          uint64  `json:"cycles"`
	BaselineCycles  uint64  `json:"baseline_cycles"`
	Slowdown        float64 `json:"slowdown"`
	Instrs          uint64  `json:"instrs"`
	MonitoredEvents uint64  `json:"monitored_events"`
	EvqMax          int     `json:"evq_max"`
	AppStallCycles  uint64  `json:"app_stall_cycles"`
	HandlersRun     uint64  `json:"handlers_run"`
}

// resultView flattens a system.Result (possibly partial, from an aborted
// run) into its deterministic wire form.
func resultView(res *system.Result, aborted bool) (*ResultView, error) {
	v := &ResultView{
		Benchmark: res.Benchmark,
		Monitor:   res.Config.Monitor,
		Accel:     res.Config.Accel.String(),
		Topology:  res.Config.Topology.String(),
		Seed:      res.Config.Seed,
		Instrs:    res.Instrs,
		Aborted:   aborted,

		Cycles:          res.Cycles,
		BaselineCycles:  res.BaselineCycles,
		Slowdown:        res.Slowdown,
		MonitoredEvents: res.MonitoredEvents,
		AppIPC:          res.AppIPC,
		BaselineIPC:     res.BaselineIPC,
		EvqMax:          res.EvqMax,
		AppStallCycles:  res.AppStallCycles,
		HandlersRun:     res.HandlersRun,
		TimelinePoints:  len(res.Timeline),
	}
	if res.Filter != nil {
		v.FilterRatio = res.Filter.FilterRatio()
	}
	for _, rep := range res.Reports {
		v.Reports = append(v.Reports, rep.String())
	}
	for _, c := range res.Cores {
		v.Cores = append(v.Cores, CoreView{
			Core: c.Core, Seed: c.Seed,
			Cycles: c.Cycles, BaselineCycles: c.BaselineCycles, Slowdown: c.Slowdown,
			Instrs: c.Instrs, MonitoredEvents: c.MonitoredEvents,
			EvqMax: c.EvqMax, AppStallCycles: c.AppStallCycles, HandlersRun: c.HandlersRun,
		})
	}
	if res.Metrics != nil {
		m, err := res.Metrics.MarshalJSON()
		if err != nil {
			return nil, err
		}
		v.Metrics = m
	}
	return v, nil
}

// retryAfter renders a Retry-After header value: whole seconds, rounded
// up, at least 1.
func retryAfter(d time.Duration) string {
	s := int64((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return strconv.FormatInt(s, 10)
}
