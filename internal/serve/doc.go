// Package serve is the long-running HTTP monitoring service behind
// cmd/fadeserve: it accepts simulation-run submissions over HTTP+JSON,
// schedules them onto a bounded par.Pool with per-tenant fairness, and
// exposes results, cycle-sampled timelines, and live Prometheus telemetry.
//
// The package splits into four layers:
//
//   - api.go — the wire types (SubmitRequest, RunInfo, the error envelope
//     and its stable error codes) and their mapping onto system.Config,
//     including the server-side admission limits.
//   - queue.go / tenant.go — the bounded admission queue with round-robin
//     dequeue across tenants, oldest-first load shedding, and the
//     per-tenant token buckets that rate-limit submission.
//   - sched.go — the Scheduler: run lifecycle (queued → running →
//     done/failed/canceled/shed), the dispatcher feeding the par.Pool,
//     cancellation via the context plumbing of internal/system, and
//     graceful drain.
//   - server.go — the HTTP surface: routing, the serve.* metrics
//     (request latency histograms, queue depth, admission rejects), and
//     the /metrics exposition combining the server registry with the
//     obs.Hub of recent run snapshots.
//
// Every route, schema, error code, and serve.* metric is documented in
// docs/SERVING.md; a name-coverage test keeps the document exhaustive.
package serve
