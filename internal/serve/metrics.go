package serve

import (
	"sync/atomic"
	"time"

	"fade/internal/obs"
)

// serveMetrics bundles the registry-owned serve.* counters. All of them
// are created at construction so the /metrics shape is stable from the
// first scrape, traffic or not.
type serveMetrics struct {
	httpRequests  *obs.Counter
	http2xx       *obs.Counter
	http4xx       *obs.Counter
	http5xx       *obs.Counter
	runsSubmitted *obs.Counter
	runsCompleted *obs.Counter
	runsFailed    *obs.Counter
	runsCanceled  *obs.Counter
	runsShed      *obs.Counter
	runsCoalesced *obs.Counter
	queueRejects  *obs.Counter
	throttled     *obs.Counter

	latency map[string]*latencyHist
}

// routeKeys are the latency-histogram route labels, one per endpoint
// family. docs/SERVING.md documents each expanded series.
var routeKeys = []string{"submit", "list", "status", "cancel", "timeline", "trace", "metrics", "healthz", "readyz"}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	m := &serveMetrics{
		httpRequests:  reg.Counter("serve.http.requests"),
		http2xx:       reg.Counter("serve.http.responses.2xx"),
		http4xx:       reg.Counter("serve.http.responses.4xx"),
		http5xx:       reg.Counter("serve.http.responses.5xx"),
		runsSubmitted: reg.Counter("serve.runs.submitted"),
		runsCompleted: reg.Counter("serve.runs.completed"),
		runsFailed:    reg.Counter("serve.runs.failed"),
		runsCanceled:  reg.Counter("serve.runs.canceled"),
		runsShed:      reg.Counter("serve.runs.shed"),
		runsCoalesced: reg.Counter("serve.runs.coalesced"),
		queueRejects:  reg.Counter("serve.queue.rejects"),
		throttled:     reg.Counter("serve.tenant.throttled"),
		latency:       make(map[string]*latencyHist, len(routeKeys)),
	}
	for _, route := range routeKeys {
		h := &latencyHist{}
		m.latency[route] = h
		prefix := "serve.http.latency_us." + route
		reg.Register(obs.CollectorFunc(func(s obs.Sink) { h.collect(s, prefix) }))
	}
	return m
}

// observeHTTP counts one response by class. It runs at the outermost
// middleware so unmatched routes (404/405) are counted too.
func (m *serveMetrics) observeHTTP(status int) {
	m.httpRequests.Inc()
	switch {
	case status >= 500:
		m.http5xx.Inc()
	case status >= 400:
		m.http4xx.Inc()
	default:
		m.http2xx.Inc()
	}
}

// observeLatency records one matched request's latency under its route.
func (m *serveMetrics) observeLatency(route string, d time.Duration) {
	if h := m.latency[route]; h != nil {
		h.observe(d)
	}
}

// latencyBoundsUS are the histogram bucket upper bounds in microseconds;
// the final bucket is unbounded.
var latencyBoundsUS = [...]uint64{
	100, 250, 500,
	1_000, 2_500, 5_000,
	10_000, 25_000, 50_000,
	100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000,
	10_000_000,
}

// latencyHist is a fixed-bucket exponential histogram safe for concurrent
// observation without locks: every field is an atomic, so the request hot
// path costs a handful of atomic adds. Percentiles are reported as the
// upper bound of the covering bucket.
type latencyHist struct {
	buckets [len(latencyBoundsUS) + 1]atomic.Uint64
	count   atomic.Uint64
	sumUS   atomic.Uint64
	maxUS   atomic.Uint64
}

func (h *latencyHist) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	i := 0
	for i < len(latencyBoundsUS) && us > latencyBoundsUS[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
	for {
		old := h.maxUS.Load()
		if us <= old || h.maxUS.CompareAndSwap(old, us) {
			return
		}
	}
}

// quantile returns the upper bound of the bucket containing quantile q of
// the observations.
func (h *latencyHist) quantile(q float64, total uint64) float64 {
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= target {
			if i < len(latencyBoundsUS) {
				return float64(latencyBoundsUS[i])
			}
			return float64(h.maxUS.Load())
		}
	}
	return float64(h.maxUS.Load())
}

// collect emits the histogram's derived series under prefix, mirroring the
// obs histogram expansion grammar (.count/.mean/.max/.p50/.p99).
func (h *latencyHist) collect(s obs.Sink, prefix string) {
	total := h.count.Load()
	s.Counter(prefix+".count", total)
	mean := 0.0
	if total > 0 {
		mean = float64(h.sumUS.Load()) / float64(total)
	}
	s.Gauge(prefix+".mean", mean)
	s.Gauge(prefix+".max", float64(h.maxUS.Load()))
	s.Gauge(prefix+".p50", h.quantile(0.50, total))
	s.Gauge(prefix+".p99", h.quantile(0.99, total))
}
