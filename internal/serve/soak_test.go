package serve_test

// Soak test: hundreds of concurrent submissions against a live fadeserve
// HTTP endpoint, exercising admission backpressure, per-tenant fairness,
// result determinism, /metrics availability, and shutdown hygiene
// (goroutine leaks). CI runs this under -race.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fade/internal/serve"
)

const (
	soakSubmissions = 208
	soakTenants     = 8
)

// soakConfigs are the distinct (benchmark, monitor, seed) cells; the soak
// round-robins submissions over them so every cell runs several times and
// its results can be compared byte for byte.
var soakConfigs = func() []struct {
	Bench, Monitor string
	Seed           uint64
} {
	benches := []string{"astar", "bzip", "mcf", "omnet"}
	monitors := []string{"AddrCheck", "MemCheck", "MemLeak", "AtomCheck"}
	var out []struct {
		Bench, Monitor string
		Seed           uint64
	}
	for _, b := range benches {
		for _, m := range monitors {
			for _, seed := range []uint64{1, 7} {
				out = append(out, struct {
					Bench, Monitor string
					Seed           uint64
				}{b, m, seed})
			}
		}
	}
	return out
}()

func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}

	srv := serve.New(serve.Options{
		QueueCap: 32, // small enough that 208 concurrent submitters hit 429s
	})
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()

	// Background scraper: /metrics must stay available and well-formed for
	// the whole soak.
	scrapeStop := make(chan struct{})
	var scrapes, scrapeFails atomic.Int64
	var scraperWG sync.WaitGroup
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		for {
			select {
			case <-scrapeStop:
				return
			default:
			}
			resp, err := client.Get(ts.URL + "/metrics")
			if err != nil {
				scrapeFails.Add(1)
				continue
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("fade_serve_http_requests")) {
				scrapeFails.Add(1)
			}
			scrapes.Add(1)
			time.Sleep(5 * time.Millisecond)
		}
	}()

	type outcome struct {
		config int
		result string
		err    error
	}
	outcomes := make(chan outcome, soakSubmissions)
	var retried429 atomic.Int64

	var wg sync.WaitGroup
	for i := 0; i < soakSubmissions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := soakConfigs[i%len(soakConfigs)]
			body := fmt.Sprintf(`{"benchmark":%q,"monitor":%q,"seed":%d,"instrs":2000}`,
				c.Bench, c.Monitor, c.Seed)

			// Submit, honoring queue-full backpressure: a 429 means wait
			// and retry, never give up and never lose the run.
			var id string
			for {
				req, _ := http.NewRequest("POST", ts.URL+"/v1/runs", strings.NewReader(body))
				req.Header.Set("X-API-Key", fmt.Sprintf("tenant-%d", i%soakTenants))
				resp, err := client.Do(req)
				if err != nil {
					outcomes <- outcome{config: i % len(soakConfigs), err: err}
					return
				}
				respBody, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests {
					retried429.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						outcomes <- outcome{config: i % len(soakConfigs), err: fmt.Errorf("429 without Retry-After")}
						return
					}
					// The header rounds up to whole seconds; the soak backs
					// off for a fraction of that to keep wall time short
					// while still exercising the retry loop.
					time.Sleep(50 * time.Millisecond)
					continue
				}
				if resp.StatusCode != http.StatusAccepted {
					outcomes <- outcome{config: i % len(soakConfigs), err: fmt.Errorf("submit status %d: %s", resp.StatusCode, respBody)}
					return
				}
				var info serve.RunInfo
				if err := json.Unmarshal(respBody, &info); err != nil {
					outcomes <- outcome{config: i % len(soakConfigs), err: err}
					return
				}
				id = info.ID
				break
			}

			// Poll to a terminal state.
			deadline := time.Now().Add(2 * time.Minute)
			for {
				if time.Now().After(deadline) {
					outcomes <- outcome{config: i % len(soakConfigs), err: fmt.Errorf("run %s did not finish in time", id)}
					return
				}
				resp, err := client.Get(ts.URL + "/v1/runs/" + id)
				if err != nil {
					outcomes <- outcome{config: i % len(soakConfigs), err: err}
					return
				}
				respBody, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var info serve.RunInfo
				if err := json.Unmarshal(respBody, &info); err != nil {
					outcomes <- outcome{config: i % len(soakConfigs), err: err}
					return
				}
				switch info.State {
				case serve.StateDone:
					outcomes <- outcome{config: i % len(soakConfigs), result: string(info.Result)}
					return
				case serve.StateFailed, serve.StateCanceled, serve.StateShed:
					outcomes <- outcome{config: i % len(soakConfigs), err: fmt.Errorf("run %s ended %s: %s", id, info.State, info.Error)}
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	close(outcomes)
	close(scrapeStop)
	scraperWG.Wait()

	// Every submission completed; results are byte-deterministic per cell.
	perConfig := make(map[int]string)
	completed := 0
	for o := range outcomes {
		if o.err != nil {
			t.Errorf("config %d: %v", o.config, o.err)
			continue
		}
		completed++
		if o.result == "" {
			t.Errorf("config %d: done run carried no result document", o.config)
			continue
		}
		if prev, ok := perConfig[o.config]; !ok {
			perConfig[o.config] = o.result
		} else if prev != o.result {
			c := soakConfigs[o.config]
			t.Errorf("non-deterministic result for %s/%s seed %d:\n%s\nvs\n%s",
				c.Bench, c.Monitor, c.Seed, prev, o.result)
		}
	}
	if completed != soakSubmissions {
		t.Errorf("completed %d of %d submissions", completed, soakSubmissions)
	}
	if scrapes.Load() == 0 {
		t.Error("metrics scraper never ran")
	}
	if f := scrapeFails.Load(); f > 0 {
		t.Errorf("%d /metrics scrapes failed during the soak", f)
	}
	t.Logf("soak: %d submissions, %d cells, %d queue-full retries, %d metrics scrapes",
		soakSubmissions, len(perConfig), retried429.Load(), scrapes.Load())

	// Shutdown hygiene: after drain + server close, no scheduler or pool
	// goroutines may remain.
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()
	assertNoServeGoroutines(t)
}

// assertNoServeGoroutines fails if any internal/serve goroutine survives
// shutdown, retrying briefly to let exiting goroutines unwind.
func assertNoServeGoroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var stacks []byte
	for {
		buf := make([]byte, 1<<20)
		stacks = buf[:runtime.Stack(buf, true)]
		leaked := false
		for _, marker := range []string{
			"(*Scheduler).dispatch",
			"(*Scheduler).execute",
			"(*fairQueue).pop",
			"internal/par.(*Pool)",
		} {
			if bytes.Contains(stacks, []byte(marker)) {
				leaked = true
			}
		}
		if !leaked {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve goroutines leaked after shutdown:\n%s", stacks)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
