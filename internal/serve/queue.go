package serve

import "sync"

// fairQueue is the bounded admission queue between submission and the
// worker pool. Runs are FIFO within a tenant; dequeue round-robins across
// tenants with queued work, so one tenant flooding the queue cannot starve
// another: with tenants A (many queued) and B (one queued), B's run goes
// out on the very next rotation rather than behind all of A's.
//
// The queue supports oldest-first load shedding (shedOldest) for the
// memory-pressure path and lazy discard of canceled runs: cancellation
// marks the run (run.canceledWhileQueued) and pop skips it, so canceling
// never needs the queue lock.
type fairQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	capacity int
	size     int
	closed   bool

	// tenants holds each tenant's FIFO; ring is the round-robin rotation
	// over tenants that currently have queued work.
	tenants map[string][]*Run
	ring    []string
	next    int
}

func newFairQueue(capacity int) *fairQueue {
	q := &fairQueue{capacity: capacity, tenants: make(map[string][]*Run)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// errQueue distinguishes push failures.
type errQueue int

const (
	pushOK errQueue = iota
	pushFull
	pushClosed
)

// push enqueues r for its tenant.
func (q *fairQueue) push(r *Run) errQueue {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return pushClosed
	}
	if q.size >= q.capacity {
		return pushFull
	}
	fifo := q.tenants[r.Tenant]
	if len(fifo) == 0 {
		// Tenant (re)joins the rotation at the end: it waits at most one
		// full rotation before its first dequeue.
		q.ring = append(q.ring, r.Tenant)
	}
	q.tenants[r.Tenant] = append(fifo, r)
	q.size++
	q.cond.Signal()
	return pushOK
}

// pop blocks until a run is available or the queue is closed and drained,
// returning ok=false in the latter case. Canceled runs are discarded
// silently. Dequeue order is round-robin across tenants, FIFO within one.
func (q *fairQueue) pop() (*Run, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for q.size == 0 {
			if q.closed {
				return nil, false
			}
			q.cond.Wait()
		}
		r := q.popLocked()
		if r.canceledWhileQueued.Load() {
			continue
		}
		return r, true
	}
}

// popLocked removes and returns the next run in rotation order. The caller
// holds q.mu and has checked size > 0.
func (q *fairQueue) popLocked() *Run {
	if q.next >= len(q.ring) {
		q.next = 0
	}
	t := q.ring[q.next]
	fifo := q.tenants[t]
	r := fifo[0]
	fifo[0] = nil
	fifo = fifo[1:]
	if len(fifo) == 0 {
		delete(q.tenants, t)
		q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
		// q.next now points at the tenant after the removed one; no
		// advance needed.
	} else {
		q.tenants[t] = fifo
		q.next++
	}
	q.size--
	return r
}

// shedOldest removes and returns the oldest queued run across all tenants
// (by admission sequence number), or nil when the queue is empty. Used by
// the memory-pressure load shedder: the work that has waited longest is
// also the most likely to be stale to its submitter.
func (q *fairQueue) shedOldest() *Run {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size > 0 {
		// Per-tenant FIFOs mean each tenant's oldest is its head; the
		// global oldest is the minimum over heads.
		var bestT string
		var best *Run
		for t, fifo := range q.tenants {
			if best == nil || fifo[0].seq < best.seq {
				bestT, best = t, fifo[0]
			}
		}
		fifo := q.tenants[bestT][1:]
		if len(fifo) == 0 {
			delete(q.tenants, bestT)
			for i, t := range q.ring {
				if t == bestT {
					q.ring = append(q.ring[:i], q.ring[i+1:]...)
					if q.next > i {
						q.next--
					}
					break
				}
			}
		} else {
			q.tenants[bestT] = fifo
		}
		q.size--
		if best.canceledWhileQueued.Load() {
			continue // already canceled; shed the next-oldest instead
		}
		return best
	}
	return nil
}

// depth returns the current queue occupancy (canceled-but-unpopped runs
// included until their lazy discard).
func (q *fairQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// queuedTenants returns the number of tenants with queued work.
func (q *fairQueue) queuedTenants() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.ring)
}

// close stops admission; pop keeps draining what is queued and then
// reports ok=false.
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
