package serve

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"fade/internal/rcache"
	"fade/internal/system"
)

// TestCachedResubmit: with Options.Cache set, resubmitting an identical
// run serves the stored result — the runner executes once, the second
// envelope carries "cached": true, and the result documents are
// byte-identical.
func TestCachedResubmit(t *testing.T) {
	var calls atomic.Int64
	srv := New(Options{
		Workers: 1,
		Cache:   rcache.NewMem(16),
		Runner: func(ctx context.Context, bench string, cfg system.Config) (*system.Result, error) {
			calls.Add(1)
			return instantRunner(ctx, bench, cfg)
		},
	})
	defer srv.Close()
	h := srv.Handler()

	const body = `{"benchmark":"astar","monitor":"MemLeak","instrs":5000}`
	w1 := do(t, h, "POST", "/v1/runs?wait=true", body, nil)
	if w1.Code != http.StatusOK {
		t.Fatalf("first submit: status %d: %s", w1.Code, w1.Body)
	}
	first := decodeInfo(t, w1)
	if first.State != StateDone {
		t.Fatalf("first run state = %q, want done", first.State)
	}
	if first.Cached {
		t.Fatal("first run reported cached")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("runner calls after first submit = %d, want 1", got)
	}

	w2 := do(t, h, "POST", "/v1/runs?wait=true", body, nil)
	if w2.Code != http.StatusOK {
		t.Fatalf("second submit: status %d: %s", w2.Code, w2.Body)
	}
	second := decodeInfo(t, w2)
	if second.State != StateDone {
		t.Fatalf("second run state = %q, want done", second.State)
	}
	if !second.Cached {
		t.Fatal("second run not served from cache")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("runner calls after resubmit = %d, want 1 (cache hit)", got)
	}
	if !strings.Contains(w2.Body.String(), `"cached":true`) {
		t.Fatalf("second envelope lacks cached flag: %s", w2.Body)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("cached result differs:\n--- fresh\n%s\n--- cached\n%s", first.Result, second.Result)
	}

	// A different spec misses and simulates.
	w3 := do(t, h, "POST", "/v1/runs?wait=true",
		`{"benchmark":"bzip","monitor":"MemLeak","instrs":5000}`, nil)
	if w3.Code != http.StatusOK {
		t.Fatalf("third submit: status %d: %s", w3.Code, w3.Body)
	}
	if third := decodeInfo(t, w3); third.Cached {
		t.Fatal("distinct spec reported cached")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("runner calls after distinct spec = %d, want 2", got)
	}

	// The cache's metrics are folded into the scheduler registry.
	found := false
	for _, v := range srv.Scheduler().Registry().Snapshot().Values {
		if v.Name == "cache.hits" {
			found = true
			if v.Count != 1 {
				t.Fatalf("cache.hits = %d, want 1", v.Count)
			}
		}
	}
	if !found {
		t.Fatal("cache.hits missing from scheduler registry")
	}
}

// TestSubmitRequestSpecMatchesConfig: the request's canonical spec is
// exactly SpecFromConfig of its validated config, and invalid requests
// fail Spec with the same error as Config.
func TestSubmitRequestSpecMatchesConfig(t *testing.T) {
	req := SubmitRequest{Benchmark: "astar", Monitor: "MemLeak", Instrs: 5_000}
	cfg, err := req.Config(400_000, DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := req.Spec(400_000, DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	if want := system.SpecFromConfig(req.Benchmark, cfg); spec.Hash() != want.Hash() {
		t.Fatalf("Spec hash %x != SpecFromConfig hash %x", spec.Hash(), want.Hash())
	}

	bad := SubmitRequest{Benchmark: "astar"}
	_, cfgErr := bad.Config(400_000, DefaultLimits)
	_, specErr := bad.Spec(400_000, DefaultLimits)
	if cfgErr == nil || specErr == nil {
		t.Fatal("invalid request accepted")
	}
	if cfgErr.Error() != specErr.Error() {
		t.Fatalf("Spec error %q drifts from Config error %q", specErr, cfgErr)
	}
}
