package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"time"

	"fade/internal/obs"
	"fade/internal/spans"
)

// Server is the HTTP surface over a Scheduler. Build one with New, mount
// Handler on an http.Server, and call Drain on SIGTERM.
type Server struct {
	opts    Options
	sched   *Scheduler
	buckets *buckets
	handler http.Handler
}

// Routes lists every route pattern the server registers, in documentation
// order. The docs coverage test asserts each appears in docs/SERVING.md.
var Routes = []string{
	"POST /v1/runs",
	"GET /v1/runs",
	"GET /v1/runs/{id}",
	"DELETE /v1/runs/{id}",
	"GET /v1/runs/{id}/timeline",
	"GET /v1/runs/{id}/trace",
	"GET /metrics",
	"GET /healthz",
	"GET /readyz",
}

// New builds a server and starts its scheduler.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		sched:   NewScheduler(opts),
		buckets: newBuckets(opts.TenantRate, opts.TenantBurst, opts.Now),
	}
	s.sched.reg.Register(obs.CollectorFunc(func(sink obs.Sink) {
		sink.Gauge("serve.tenants", float64(s.buckets.tenants()))
	}))

	mux := http.NewServeMux()
	route := func(pattern, key string, h http.HandlerFunc) {
		mux.Handle(pattern, s.timed(key, h))
	}
	route("POST /v1/runs", "submit", s.handleSubmit)
	route("GET /v1/runs", "list", s.handleList)
	route("GET /v1/runs/{id}", "status", s.handleStatus)
	route("DELETE /v1/runs/{id}", "cancel", s.handleCancel)
	route("GET /v1/runs/{id}/timeline", "timeline", s.handleTimeline)
	route("GET /v1/runs/{id}/trace", "trace", s.handleTrace)
	route("GET /metrics", "metrics", s.handleMetrics)
	route("GET /healthz", "healthz", s.handleHealthz)
	route("GET /readyz", "readyz", s.handleReadyz)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.writeErr(w, http.StatusNotFound, ErrCodeNotFound, "no such route: "+r.URL.Path)
	})
	s.handler = s.counted(mux)
	return s
}

// Handler returns the root handler (routing + metrics middleware).
func (s *Server) Handler() http.Handler { return s.handler }

// Scheduler exposes the underlying scheduler (cancellation from the CLI,
// tests).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Drain gracefully shuts the scheduler down; see Scheduler.Drain. The
// HTTP listener itself is the caller's to close (http.Server.Shutdown).
func (s *Server) Drain(ctx context.Context) error { return s.sched.Drain(ctx) }

// Close shuts down immediately, canceling every queued and running run.
func (s *Server) Close() { s.sched.Close() }

// statusRecorder captures the response status for the metrics middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// counted wraps the whole mux: every request, matched or not, feeds the
// serve.http.requests / serve.http.responses.* counters.
func (s *Server) counted(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.sched.met.observeHTTP(rec.status)
	})
}

// timed wraps one route: request latency lands in that route's
// serve.http.latency_us.<route> histogram.
func (s *Server) timed(key string, next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next(w, r)
		s.sched.met.observeLatency(key, time.Since(start))
	})
}

// tenantOf extracts the tenant identity: X-API-Key, else a bearer token,
// else the shared "anonymous" tenant.
func tenantOf(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
		if k := strings.TrimSpace(strings.TrimPrefix(auth, "Bearer ")); k != "" {
			return k
		}
	}
	return "anonymous"
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.sched.Draining() {
		s.writeErr(w, http.StatusServiceUnavailable, ErrCodeDraining, "server is draining; submissions are rejected")
		return
	}
	tenant := tenantOf(r)
	if ok, wait := s.buckets.take(tenant); !ok {
		s.sched.met.throttled.Inc()
		w.Header().Set("Retry-After", retryAfter(wait+s.sched.retryJitter()))
		s.writeErr(w, http.StatusTooManyRequests, ErrCodeThrottled, "tenant rate limit exceeded")
		return
	}

	var req SubmitRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, ErrCodeBadJSON, "decoding submission: "+err.Error())
		return
	}
	cfg, err := req.Config(s.opts.DefaultInstrs, s.opts.Limits)
	if err != nil {
		s.writeAPIErr(w, err)
		return
	}

	run, err := s.sched.Submit(tenant, req.Benchmark, cfg)
	if err != nil {
		var ae *apiErr
		if errors.As(err, &ae) && ae.code == ErrCodeQueueFull {
			// Computed, not hard-coded: the hint scales with how long the
			// backlog will actually take to drain.
			w.Header().Set("Retry-After", retryAfter(s.sched.RetryAfterHint()))
		}
		s.writeAPIErr(w, err)
		return
	}
	// The admission span starts at the trace's own epoch (the trace is
	// born inside Submit) and covers validation plus enqueue.
	run.trace.Wall(spans.NameServeAdmit, run.trace.Epoch(), s.opts.Now(),
		spans.Str("tenant", tenant), spans.None)

	if v := r.URL.Query().Get("wait"); v == "1" || v == "true" {
		// Synchronous mode: the response is the terminal run record, the
		// connection is the lifetime — a disconnected client cancels the
		// run (it aborts at its next scheduler checkpoint and still
		// flushes partial results).
		select {
		case <-run.done:
		case <-r.Context().Done():
			s.sched.Cancel(run.ID)
			<-run.done
		}
		s.writeJSON(w, http.StatusOK, s.sched.Info(run))
		return
	}
	w.Header().Set("Location", "/v1/runs/"+run.ID)
	s.writeJSON(w, http.StatusAccepted, s.sched.Info(run))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	runs := s.sched.List(r.URL.Query().Get("state"))
	s.writeJSON(w, http.StatusOK, map[string]any{"runs": runs})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	run := s.sched.Get(r.PathValue("id"))
	if run == nil {
		s.writeErr(w, http.StatusNotFound, ErrCodeNotFound, "no run "+r.PathValue("id"))
		return
	}
	s.writeJSON(w, http.StatusOK, s.sched.Info(run))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sched.Cancel(id) {
		s.writeErr(w, http.StatusNotFound, ErrCodeNotFound, "no run "+id)
		return
	}
	s.writeJSON(w, http.StatusOK, s.sched.Info(s.sched.Get(id)))
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	run := s.sched.Get(id)
	if run == nil {
		s.writeErr(w, http.StatusNotFound, ErrCodeNotFound, "no run "+id)
		return
	}
	points, ok := s.sched.Timeline(run)
	if !ok {
		s.writeErr(w, http.StatusConflict, ErrCodeNotReady, "run "+id+" has not finished; its timeline is not available yet")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	// Stream line by line: each timeline point is flushed as written so a
	// consumer tailing a large timeline sees steady progress.
	fw := io.Writer(w)
	if f, ok := w.(http.Flusher); ok {
		fw = flushWriter{w: w, f: f}
	}
	_ = obs.WriteTimeline(fw, run.Bench+"/"+run.Cfg.Monitor, points)
}

// handleTrace serves a terminal run's span trace: Chrome trace-event JSON
// by default (load the body directly in Perfetto or chrome://tracing), or
// one-span-per-line JSONL with ?format=jsonl. See docs/TRACING.md.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	run := s.sched.Get(id)
	if run == nil {
		s.writeErr(w, http.StatusNotFound, ErrCodeNotFound, "no run "+id)
		return
	}
	tr, ok := s.sched.Trace(run)
	if !ok {
		s.writeErr(w, http.StatusConflict, ErrCodeNotReady, "run "+id+" has not finished; its trace is not available yet")
		return
	}
	if tr == nil {
		s.writeErr(w, http.StatusNotFound, ErrCodeNotFound, "tracing is disabled on this server")
		return
	}
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		_ = spans.WriteJSONL(w, tr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = spans.WriteChromeJSON(w, tr)
}

// flushWriter flushes after every write (obs.WriteTimeline writes one
// timeline point per call).
type flushWriter struct {
	w io.Writer
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	fw.f.Flush()
	return n, err
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// The exposition is the server registry (serve.* plus queue/pool
	// gauges) followed by the hub's recent run snapshots, labeled by
	// {run, tenant, bench, monitor} — the shared view across concurrent
	// runs.
	snaps := append([]obs.LabeledSnapshot{{Snap: s.sched.reg.Snapshot()}}, s.sched.hub.Snapshots()...)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePrometheus(w, snaps)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.sched.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ready\n")
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeAPIErr maps a validation/admission error onto its HTTP status.
func (s *Server) writeAPIErr(w http.ResponseWriter, err error) {
	var ae *apiErr
	if !errors.As(err, &ae) {
		s.writeErr(w, http.StatusInternalServerError, ErrCodeInternal, err.Error())
		return
	}
	status := http.StatusInternalServerError
	switch ae.code {
	case ErrCodeBadJSON, ErrCodeInvalidConfig:
		status = http.StatusBadRequest
	case ErrCodeLimitsExceeded:
		status = http.StatusUnprocessableEntity
	case ErrCodeThrottled, ErrCodeQueueFull:
		status = http.StatusTooManyRequests
	case ErrCodeDraining:
		status = http.StatusServiceUnavailable
	case ErrCodeNotFound:
		status = http.StatusNotFound
	case ErrCodeNotReady:
		status = http.StatusConflict
	}
	s.writeErr(w, status, ae.code, ae.msg)
}

func (s *Server) writeErr(w http.ResponseWriter, status int, code, msg string) {
	s.writeJSON(w, status, map[string]APIError{"error": {Code: code, Message: msg}})
}
