package serve

// Documentation coverage: docs/SERVING.md must document every route,
// every error code, and every serve.* metric the server emits, mirroring
// the METRICS.md coverage test in internal/obs.

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

func TestServingDocsCoverage(t *testing.T) {
	docBytes, err := os.ReadFile("../../docs/SERVING.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(docBytes)

	for _, route := range Routes {
		if !strings.Contains(doc, route) {
			t.Errorf("route %q is not documented in docs/SERVING.md", route)
		}
	}

	for _, code := range []string{
		ErrCodeBadJSON, ErrCodeInvalidConfig, ErrCodeLimitsExceeded,
		ErrCodeThrottled, ErrCodeQueueFull, ErrCodeDraining,
		ErrCodeNotFound, ErrCodeNotReady, ErrCodeInternal,
	} {
		if !strings.Contains(doc, "`"+code+"`") {
			t.Errorf("error code %q is not documented in docs/SERVING.md", code)
		}
	}

	for _, state := range []string{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled, StateShed} {
		if !strings.Contains(doc, "`"+state+"`") {
			t.Errorf("run state %q is not documented in docs/SERVING.md", state)
		}
	}

	// Boot a server and snapshot its registry: every emitted serve.* name
	// must appear, with the per-route latency series matched against their
	// documented `serve.http.latency_us.<route>.<suffix>` template.
	srv := New(Options{Workers: 1, TenantRate: 1, Runner: instantRunner})
	defer srv.Close()
	nameRE := regexp.MustCompile(`^[a-z0-9_.]+$`)
	latRE := regexp.MustCompile(`^serve\.http\.latency_us\.([a-z]+)\.([a-z0-9]+)$`)
	seen := 0
	for _, v := range srv.sched.reg.Snapshot().Values {
		if !strings.HasPrefix(v.Name, "serve.") {
			t.Errorf("server registry emits non-serve metric %q", v.Name)
			continue
		}
		seen++
		if !nameRE.MatchString(v.Name) {
			t.Errorf("metric name %q does not match %s", v.Name, nameRE)
		}
		if m := latRE.FindStringSubmatch(v.Name); m != nil {
			route, suffix := m[1], m[2]
			if !strings.Contains(doc, "serve.http.latency_us.<route>."+suffix) {
				t.Errorf("latency series suffix %q is not documented in docs/SERVING.md", suffix)
			}
			if !strings.Contains(doc, "`"+route+"`") {
				t.Errorf("latency route %q is not documented in docs/SERVING.md", route)
			}
			continue
		}
		if !strings.Contains(doc, "`"+v.Name+"`") {
			t.Errorf("metric %q is not documented in docs/SERVING.md", v.Name)
		}
	}
	if seen < 20 {
		t.Fatalf("only %d serve.* metrics emitted; expected the full namespace", seen)
	}
}
