package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fade/internal/obs"
	"fade/internal/par"
	"fade/internal/rcache"
	"fade/internal/runspec"
	"fade/internal/sim"
	"fade/internal/spans"
	"fade/internal/system"
)

// Options configures a Server/Scheduler. The zero value of every field
// selects a sensible daemon default.
type Options struct {
	// Workers is the simulation pool width (default GOMAXPROCS).
	Workers int
	// QueueCap bounds the admission queue (default 4 * workers).
	QueueCap int
	// TenantRate / TenantBurst parameterize the per-tenant token buckets
	// (tokens per second and bucket size). Rate <= 0 disables rate
	// limiting.
	TenantRate  float64
	TenantBurst float64
	// DefaultInstrs is the instruction budget applied when a submission
	// omits instrs (default 400000).
	DefaultInstrs uint64
	// Limits are the admission bounds; the zero value selects
	// DefaultLimits.
	Limits Limits
	// MetricsRuns bounds how many recent run snapshots /metrics retains
	// (default 32; negative disables run snapshots on /metrics).
	MetricsRuns int
	// MemSoftLimitBytes arms the load shedder: when the Go heap exceeds
	// it at submission time, the oldest queued run is shed to admit the
	// new one. 0 disables shedding.
	MemSoftLimitBytes uint64

	// Cache, when non-nil, memoizes completed runs by their canonical
	// spec hash: resubmitting an identical run returns the stored result
	// (byte-identical document, "cached": true in the envelope) without
	// simulating. The cache's metrics (cache.*) are folded into the
	// scheduler registry. Shareable with fadebench sweeps via a common
	// -cache-dir.
	Cache *rcache.Cache

	// TraceCap sizes each run's span ring: 0 selects spans.DefaultCapacity,
	// a negative value disables per-run tracing entirely (no ring is
	// allocated and GET /v1/runs/{id}/trace returns 404). Every admitted
	// run gets its own trace, identified by the run ID, carrying the
	// serving path's wall-clock spans and — because the trace rides the
	// run's context into the simulator — the cycle-domain spans of the
	// same run (docs/TRACING.md).
	TraceCap int
	// TraceDir, when non-empty, persists each executed run's trace as
	// <dir>/<run-id>.trace.json (Chrome trace-event JSON) at completion.
	TraceDir string

	// Logger receives structured run-lifecycle records (submitted,
	// started, finished, canceled, shed), each carrying run, tenant, and
	// trace_id attributes. nil disables logging (the library default —
	// cmd/fadeserve installs a JSON logger).
	Logger *slog.Logger

	// MemPressure overrides the heap check (tests). When set,
	// MemSoftLimitBytes is ignored.
	MemPressure func() bool
	// Runner overrides run execution (tests). Defaults to
	// system.RunContext.
	Runner func(ctx context.Context, bench string, cfg system.Config) (*system.Result, error)
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 4 * o.Workers
	}
	if o.TenantBurst <= 0 {
		o.TenantBurst = 8
	}
	if o.DefaultInstrs == 0 {
		o.DefaultInstrs = 400_000
	}
	if o.Limits == (Limits{}) {
		o.Limits = DefaultLimits
	}
	if o.MetricsRuns == 0 {
		o.MetricsRuns = 32
	}
	if o.Runner == nil {
		o.Runner = system.RunContext
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Logger == nil {
		o.Logger = slog.New(noopHandler{})
	}
	if o.MemPressure == nil {
		if limit := o.MemSoftLimitBytes; limit > 0 {
			o.MemPressure = func() bool {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				return ms.HeapAlloc > limit
			}
		} else {
			o.MemPressure = func() bool { return false }
		}
	}
	return o
}

// Run is one submitted simulation and its lifecycle record. Mutable state
// is guarded by the owning Scheduler's mutex; done is closed exactly once
// when the run reaches a terminal state.
type Run struct {
	ID     string
	Tenant string
	Bench  string
	Cfg    system.Config
	// Spec is the run's canonical content-addressed identity
	// (system.SpecFromConfig of Bench/Cfg); Spec.Hash() keys the result
	// cache.
	Spec runspec.Spec

	seq                 uint64
	done                chan struct{}
	canceledWhileQueued atomic.Bool

	// specHash is Spec.Hash(), computed once at admission; it keys the
	// single-flight table coalescing concurrent duplicate submissions.
	specHash rcache.Key

	// trace is the run's span timeline (nil when tracing is disabled).
	// The spans.Trace is internally synchronized, so emitters do not take
	// Scheduler.mu.
	trace *spans.Trace

	// Guarded by Scheduler.mu.
	// followers are coalesced duplicate submissions riding this primary
	// run; they settle when it reaches a terminal state.
	followers   []*Run
	state       string
	cached      bool
	errMsg      string
	resultJSON  json.RawMessage
	timeline    []*obs.Snapshot
	submittedAt time.Time
	poppedAt    time.Time
	startedAt   time.Time
	finishedAt  time.Time
	cancel      context.CancelFunc
}

// TraceID returns the run's trace identifier ("" when tracing is off).
func (r *Run) TraceID() string { return r.trace.ID() }

// Scheduler owns the admission queue, the worker pool, and the run table.
type Scheduler struct {
	opts Options

	q    *fairQueue
	pool *par.Pool

	reg *obs.Registry
	hub *obs.Hub
	met *serveMetrics

	baseCtx    context.Context
	baseCancel context.CancelFunc

	draining     atomic.Bool
	seq          atomic.Uint64
	dispatchDone chan struct{}

	// execMeanUS is an EWMA of executed (non-cached) run durations in
	// microseconds, stored as float64 bits; it feeds RetryAfterHint.
	execMeanUS atomic.Uint64
	// retrySeq drives the deterministic Retry-After jitter rotation.
	retrySeq atomic.Uint64

	mu       sync.Mutex
	runs     map[string]*Run
	order    []string
	inflight map[rcache.Key]string // spec hash → primary run ID
}

// NewScheduler builds and starts a scheduler (its dispatcher goroutine
// runs until Drain or Close).
func NewScheduler(opts Options) *Scheduler {
	opts = opts.withDefaults()
	s := &Scheduler{
		opts:         opts,
		q:            newFairQueue(opts.QueueCap),
		pool:         par.NewPool(opts.Workers),
		reg:          obs.NewRegistry(),
		hub:          obs.NewHub(opts.MetricsRuns),
		dispatchDone: make(chan struct{}),
		runs:         make(map[string]*Run),
		inflight:     make(map[rcache.Key]string),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.met = newServeMetrics(s.reg)
	if opts.Cache != nil {
		s.reg.Register(opts.Cache.Collector())
	}
	s.reg.Register(obs.CollectorFunc(func(sink obs.Sink) {
		sink.Gauge("serve.queue.depth", float64(s.q.depth()))
		sink.Gauge("serve.queue.capacity", float64(s.opts.QueueCap))
		sink.Gauge("serve.queue.tenants", float64(s.q.queuedTenants()))
		sink.Gauge("serve.runs.active", float64(s.pool.InFlight()))
		sink.Gauge("serve.pool.width", float64(s.pool.Width()))
		v := 0.0
		if s.draining.Load() {
			v = 1
		}
		sink.Gauge("serve.draining", v)
	}))
	s.reg.Register(obs.CollectorFunc(func(sink obs.Sink) {
		// Process-level runtime health, sampled at scrape time (collection
		// is pull-based, so the serving path pays nothing). serve.go.*
		// complements /debug/pprof: the gauges tell you *when* to go pull
		// a profile.
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		sink.Gauge("serve.go.goroutines", float64(runtime.NumGoroutine()))
		sink.Gauge("serve.go.heap_bytes", float64(ms.HeapAlloc))
		sink.Counter("serve.go.gc_pauses", uint64(ms.NumGC))
	}))
	go s.dispatch()
	return s
}

// Registry returns the scheduler's serve.* metrics registry.
func (s *Scheduler) Registry() *obs.Registry { return s.reg }

// Hub returns the bounded store of recent run snapshots rendered on
// /metrics.
func (s *Scheduler) Hub() *obs.Hub { return s.hub }

// Draining reports whether drain has begun (submissions are rejected).
func (s *Scheduler) Draining() bool { return s.draining.Load() }

// Submit admits one run: it maps the request through the admission limits
// (already validated by the caller into cfg), applies memory-pressure load
// shedding, and enqueues. The returned error is an *apiErr (queue_full or
// draining).
func (s *Scheduler) Submit(tenant, bench string, cfg system.Config) (*Run, error) {
	if s.draining.Load() {
		return nil, &apiErr{code: ErrCodeDraining, msg: "server is draining; submissions are rejected"}
	}
	now := s.opts.Now()
	seq := s.seq.Add(1)
	r := &Run{
		ID:          fmt.Sprintf("r-%06d", seq),
		Tenant:      tenant,
		Bench:       bench,
		Cfg:         cfg,
		Spec:        system.SpecFromConfig(bench, cfg),
		seq:         seq,
		done:        make(chan struct{}),
		state:       StateQueued,
		submittedAt: now,
	}
	r.specHash = r.Spec.Hash()
	if s.opts.TraceCap >= 0 {
		r.trace = spans.New(r.ID, s.opts.TraceCap)
	}

	// Load shedding: under memory pressure the oldest queued run is
	// evicted (terminally, visibly — state "shed") to keep admission
	// open for fresh work instead of letting the queue's tail grow the
	// heap further.
	if s.opts.MemPressure() {
		if old := s.q.shedOldest(); old != nil {
			s.finishShed(old)
		}
	}

	s.mu.Lock()
	s.runs[r.ID] = r
	s.order = append(s.order, r.ID)
	// Single-flight: a submission whose spec is already in flight rides
	// the existing run instead of simulating again. The follower never
	// consumes a queue slot or a pool worker; when the primary finishes
	// it inherits the result document with "cached": true (the bytes are
	// identical either way — that is the cache layer's contract).
	// Coalescing is the in-flight half of content-addressed caching, so
	// it is enabled exactly when the result cache is: without a cache,
	// identical submissions are expected to simulate independently.
	if s.opts.Cache != nil {
		if pid, ok := s.inflight[r.specHash]; ok {
			if p := s.runs[pid]; p != nil && !isTerminal(p.state) {
				p.followers = append(p.followers, r)
				s.met.runsSubmitted.Inc()
				s.met.runsCoalesced.Inc()
				s.mu.Unlock()
				s.logRun(r, "run coalesced", "primary", pid, "bench", bench, "monitor", cfg.Monitor)
				return r, nil
			}
		}
		s.inflight[r.specHash] = r.ID
	}
	s.mu.Unlock()

	switch s.q.push(r) {
	case pushOK:
	case pushFull:
		s.dropRecord(r)
		s.met.queueRejects.Inc()
		return nil, &apiErr{code: ErrCodeQueueFull, msg: fmt.Sprintf("admission queue full (%d queued)", s.q.depth())}
	case pushClosed:
		s.dropRecord(r)
		return nil, &apiErr{code: ErrCodeDraining, msg: "server is draining; submissions are rejected"}
	}
	s.met.runsSubmitted.Inc()
	s.logRun(r, "run submitted", "bench", bench, "monitor", cfg.Monitor)
	return r, nil
}

// logRun emits one structured run-lifecycle record with the run, tenant,
// and trace_id attributes every line carries.
func (s *Scheduler) logRun(r *Run, msg string, args ...any) {
	s.opts.Logger.Info(msg, append([]any{
		"run", r.ID, "tenant", r.Tenant, "trace_id", r.TraceID(),
	}, args...)...)
}

// dropRecord removes a run that was never admitted.
func (s *Scheduler) dropRecord(r *Run) {
	s.mu.Lock()
	delete(s.runs, r.ID)
	if id, ok := s.inflight[r.specHash]; ok && id == r.ID {
		delete(s.inflight, r.specHash)
	}
	if n := len(s.order); n > 0 && s.order[n-1] == r.ID {
		s.order = s.order[:n-1]
	}
	s.mu.Unlock()
}

// dispatch feeds queued runs to the worker pool. pool.Go blocks while all
// workers are busy, so at most one popped run waits for a slot; queue
// depth stays an honest backpressure signal.
func (s *Scheduler) dispatch() {
	defer close(s.dispatchDone)
	for {
		r, ok := s.q.pop()
		if !ok {
			return
		}
		s.mu.Lock()
		r.poppedAt = s.opts.Now()
		s.mu.Unlock()
		s.pool.Go(func() error {
			s.execute(r)
			return nil
		})
	}
}

// execute runs one admitted run to a terminal state.
func (s *Scheduler) execute(r *Run) {
	s.mu.Lock()
	if r.state != StateQueued {
		// Canceled between pop and execution.
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	r.state = StateRunning
	r.startedAt = s.opts.Now()
	r.cancel = cancel
	submittedAt, poppedAt, startedAt := r.submittedAt, r.poppedAt, r.startedAt
	s.mu.Unlock()
	defer cancel()

	// The serving path's wall-clock spans: queue wait (submission to
	// dequeue), scheduling (dequeue to worker-slot acquisition), then the
	// execution itself. All land on the same trace the simulator annotates
	// with cycle-domain spans, because the trace rides ctx into the run.
	r.trace.Wall(spans.NameServeQueueWait, submittedAt, poppedAt, spans.None, spans.None)
	r.trace.Wall(spans.NameServeSchedule, poppedAt, startedAt, spans.None, spans.None)
	s.logRun(r, "run started")

	if res, ok := s.cacheLookup(r); ok {
		r.trace.WallInstant(spans.NameServeCacheHit, s.opts.Now(), spans.None, spans.None)
		r.trace.Wall(spans.NameServeExecute, startedAt, s.opts.Now(), spans.Num("cached", 1), spans.None)
		s.finishWith(r, res, nil, true)
		return
	}
	res, err := s.opts.Runner(spans.NewContext(ctx, r.trace), r.Bench, r.Cfg)
	if err == nil && res != nil {
		s.cacheStore(r, res)
	}
	r.trace.Wall(spans.NameServeExecute, startedAt, s.opts.Now(), spans.Num("cached", 0), spans.None)
	s.finish(r, res, err)
}

// cacheLookup consults the result cache for the run's canonical spec.
// A stored outcome that fails to decode is treated as a miss (the run
// simulates and overwrites it).
func (s *Scheduler) cacheLookup(r *Run) (*system.Result, bool) {
	c := s.opts.Cache
	if c == nil {
		return nil, false
	}
	b, _, ok := c.Get(r.Spec.Hash())
	if !ok {
		return nil, false
	}
	out, err := system.DecodeOutcome(b)
	if err != nil || out.Result == nil {
		return nil, false
	}
	return out.Result, true
}

// cacheStore records a successful run's result under its spec hash.
// Failed or canceled runs are never cached.
func (s *Scheduler) cacheStore(r *Run, res *system.Result) {
	c := s.opts.Cache
	if c == nil {
		return
	}
	if b, err := system.EncodeOutcome(&system.Outcome{Result: res}); err == nil {
		c.Put(r.Spec.Hash(), b)
	}
}

// finish records a run's outcome, flushes its (possibly partial) result
// and timeline, publishes the metrics snapshot to the hub, and wakes
// waiters.
func (s *Scheduler) finish(r *Run, res *system.Result, err error) {
	s.finishWith(r, res, err, false)
}

func (s *Scheduler) finishWith(r *Run, res *system.Result, err error, cached bool) {
	var resultJSON json.RawMessage
	var timeline []*obs.Snapshot
	encodeStart := s.opts.Now()
	if res != nil {
		timeline = res.Timeline
		if view, verr := resultView(res, err != nil); verr == nil {
			if b, merr := json.Marshal(view); merr == nil {
				resultJSON = b
			}
		}
		if res.Metrics != nil && s.opts.MetricsRuns >= 0 {
			s.hub.Publish(r.ID, []obs.Label{
				{Key: "run", Value: r.ID},
				{Key: "tenant", Value: r.Tenant},
				{Key: "bench", Value: r.Bench},
				{Key: "monitor", Value: r.Cfg.Monitor},
			}, res.Metrics)
		}
	}
	r.trace.Wall(spans.NameServeEncode, encodeStart, s.opts.Now(), spans.None, spans.None)
	s.persistTrace(r)

	s.mu.Lock()
	defer s.mu.Unlock()
	if isTerminal(r.state) {
		return
	}
	r.resultJSON = resultJSON
	r.timeline = timeline
	r.cached = cached
	r.finishedAt = s.opts.Now()
	switch {
	case err == nil:
		r.state = StateDone
		s.met.runsCompleted.Inc()
	case errors.Is(err, sim.ErrCanceled) || errors.Is(err, context.Canceled):
		r.state = StateCanceled
		r.errMsg = err.Error()
		s.met.runsCanceled.Inc()
	default:
		r.state = StateFailed
		r.errMsg = err.Error()
		s.met.runsFailed.Inc()
	}
	if err == nil && !cached && !r.startedAt.IsZero() {
		s.recordExecDuration(r.finishedAt.Sub(r.startedAt))
	}
	close(r.done)
	args := []any{"state", r.state, "cached", cached}
	if r.errMsg != "" {
		args = append(args, "error", r.errMsg)
	}
	s.logRun(r, "run finished", args...)
	s.settleFollowersLocked(r)
}

// settleFollowersLocked resolves a terminal primary's coalesced
// followers and retires its single-flight claim. Called with s.mu held
// and r terminal. A successful primary hands every live follower its
// result document ("cached": true — the bytes are identical to what a
// cache hit would have served); a primary that failed, was canceled, or
// was shed promotes the first live follower into a real queued run so
// the duplicate submissions it absorbed are still honored.
func (s *Scheduler) settleFollowersLocked(r *Run) {
	if id, ok := s.inflight[r.specHash]; ok && id == r.ID {
		delete(s.inflight, r.specHash)
	}
	followers := r.followers
	r.followers = nil
	if len(followers) == 0 {
		return
	}
	if r.state == StateDone {
		for _, f := range followers {
			if isTerminal(f.state) {
				continue
			}
			f.resultJSON = r.resultJSON
			f.timeline = r.timeline
			f.cached = true
			f.state = StateDone
			f.finishedAt = s.opts.Now()
			s.met.runsCompleted.Inc()
			close(f.done)
			s.logRun(f, "run finished", "state", StateDone, "cached", true, "coalesced_with", r.ID)
		}
		return
	}
	var promoted *Run
	for _, f := range followers {
		if isTerminal(f.state) {
			continue
		}
		if promoted == nil {
			promoted = f
			continue
		}
		promoted.followers = append(promoted.followers, f)
	}
	if promoted == nil {
		return
	}
	s.inflight[r.specHash] = promoted.ID
	switch s.q.push(promoted) {
	case pushOK:
		s.logRun(promoted, "run promoted", "coalesced_with", r.ID)
	case pushFull:
		s.met.queueRejects.Inc()
		promoted.state = StateFailed
		promoted.errMsg = "admission queue full at promotion"
		promoted.finishedAt = s.opts.Now()
		s.met.runsFailed.Inc()
		close(promoted.done)
		s.logRun(promoted, "run finished", "state", StateFailed, "error", promoted.errMsg)
		s.settleFollowersLocked(promoted)
	case pushClosed:
		promoted.state = StateCanceled
		promoted.errMsg = "server is draining; submissions are rejected"
		promoted.finishedAt = s.opts.Now()
		s.met.runsCanceled.Inc()
		close(promoted.done)
		s.logRun(promoted, "run finished", "state", StateCanceled, "error", promoted.errMsg)
		s.settleFollowersLocked(promoted)
	}
}

// recordExecDuration folds one executed (non-cached) run's duration into
// the EWMA that feeds RetryAfterHint (α = 0.2). Lock-free: the mean is
// stored as float64 bits in an atomic and updated by CAS.
func (s *Scheduler) recordExecDuration(d time.Duration) {
	us := float64(d.Microseconds())
	if us < 0 {
		return
	}
	for {
		old := s.execMeanUS.Load()
		next := us
		if old != 0 {
			next = 0.8*math.Float64frombits(old) + 0.2*us
		}
		if s.execMeanUS.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// RetryAfterHint estimates how long a submitter rejected with queue_full
// should wait before retrying: the EWMA cost of one executed run times
// the queue backlog per pool worker (with 1s floor when no run has
// executed yet), clamped to [1s, 60s], plus a deterministic jitter so a
// herd of synchronized clients fans back in staggered.
func (s *Scheduler) RetryAfterHint() time.Duration {
	mean := math.Float64frombits(s.execMeanUS.Load())
	if mean <= 0 {
		mean = float64(time.Second / time.Microsecond)
	}
	depth := s.q.depth()
	if depth < 1 {
		depth = 1
	}
	est := time.Duration(mean*float64(depth)/float64(s.pool.Width())) * time.Microsecond
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est + s.retryJitter()
}

// retryJitter rotates deterministically through {0,1,2} seconds; unlike
// random jitter it keeps responses reproducible in tests and still
// spreads synchronized retry herds.
func (s *Scheduler) retryJitter() time.Duration {
	return time.Duration(s.retrySeq.Add(1)%3) * time.Second
}

// persistTrace writes the run's Chrome trace to Options.TraceDir. Failures
// are logged, never fatal: the trace stays queryable over the API.
func (s *Scheduler) persistTrace(r *Run) {
	if s.opts.TraceDir == "" || r.trace == nil {
		return
	}
	path := filepath.Join(s.opts.TraceDir, r.ID+".trace.json")
	err := os.MkdirAll(s.opts.TraceDir, 0o755)
	var f *os.File
	if err == nil {
		f, err = os.Create(path)
	}
	if err == nil {
		err = spans.WriteChromeJSON(f, r.trace)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		s.opts.Logger.Warn("trace persist failed", "run", r.ID, "path", path, "error", err.Error())
	}
}

// finishShed terminally marks a load-shed run.
func (s *Scheduler) finishShed(r *Run) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if isTerminal(r.state) {
		return
	}
	r.state = StateShed
	r.errMsg = "load shed: evicted from the admission queue under memory pressure"
	r.finishedAt = s.opts.Now()
	r.canceledWhileQueued.Store(true)
	s.met.runsShed.Inc()
	close(r.done)
	s.logRun(r, "run shed", "state", StateShed)
	s.settleFollowersLocked(r)
}

// Cancel cancels the identified run: a queued run terminates immediately,
// a running run is interrupted at its next scheduler checkpoint (its
// partial result is flushed when it lands), a terminal run is untouched.
// It reports whether the run exists.
func (s *Scheduler) Cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.runs[id]
	if r == nil {
		return false
	}
	switch r.state {
	case StateQueued:
		r.canceledWhileQueued.Store(true)
		r.state = StateCanceled
		r.errMsg = "canceled before execution"
		r.finishedAt = s.opts.Now()
		s.met.runsCanceled.Inc()
		close(r.done)
		s.logRun(r, "run canceled", "state", StateCanceled, "while", "queued")
		s.settleFollowersLocked(r)
	case StateRunning:
		if r.cancel != nil {
			r.cancel()
		}
	}
	return true
}

// Get returns the run record, nil when unknown.
func (s *Scheduler) Get(id string) *Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs[id]
}

// Info snapshots a run's public view.
func (s *Scheduler) Info(r *Run) RunInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.infoLocked(r)
}

func (s *Scheduler) infoLocked(r *Run) RunInfo {
	info := RunInfo{
		ID:        r.ID,
		Tenant:    r.Tenant,
		State:     r.state,
		Benchmark: r.Bench,
		Monitor:   r.Cfg.Monitor,
		Cached:    r.cached,
		Error:     r.errMsg,
		Result:    r.resultJSON,
	}
	info.SubmittedAt = stamp(r.submittedAt)
	info.StartedAt = stamp(r.startedAt)
	info.FinishedAt = stamp(r.finishedAt)
	return info
}

// List returns run views in submission order, optionally filtered by
// state ("" selects all), newest last.
func (s *Scheduler) List(state string) []RunInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RunInfo, 0, len(s.order))
	for _, id := range s.order {
		r := s.runs[id]
		if state != "" && r.state != state {
			continue
		}
		out = append(out, s.infoLocked(r))
	}
	return out
}

// Timeline returns a terminal run's cycle-sampled snapshots. ok=false
// means the run has not reached a terminal state yet.
func (s *Scheduler) Timeline(r *Run) (points []*obs.Snapshot, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !isTerminal(r.state) {
		return nil, false
	}
	return r.timeline, true
}

// Trace returns a terminal run's span trace. ok=false means the run has
// not reached a terminal state yet; a nil trace with ok=true means tracing
// is disabled (Options.TraceCap < 0).
func (s *Scheduler) Trace(r *Run) (tr *spans.Trace, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !isTerminal(r.state) {
		return nil, false
	}
	return r.trace, true
}

// Drain performs a graceful shutdown: admission closes (new submissions
// get 503 draining), queued and in-flight runs are allowed to finish, and
// when ctx expires before they do, every remaining run is canceled — each
// aborts at its next scheduler checkpoint and flushes its partial result.
// Drain returns once all workers have stopped.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.q.close()
	done := make(chan struct{})
	go func() {
		<-s.dispatchDone
		s.pool.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Close shuts down immediately: like Drain with an already-expired
// context.
func (s *Scheduler) Close() {
	s.draining.Store(true)
	s.q.close()
	s.baseCancel()
	<-s.dispatchDone
	s.pool.Wait()
}

func isTerminal(state string) bool {
	switch state {
	case StateDone, StateFailed, StateCanceled, StateShed:
		return true
	}
	return false
}

func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// noopHandler is the slog.Handler installed when Options.Logger is nil:
// disabled at every level, so the library is silent by default. (The
// stdlib gained slog.DiscardHandler after the Go version this module
// targets.)
type noopHandler struct{}

func (noopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (noopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h noopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h noopHandler) WithGroup(string) slog.Handler           { return h }
