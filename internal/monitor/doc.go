// Package monitor implements the five instruction-grain monitoring tools of
// the paper's evaluation (Section 6): AddrCheck, MemCheck, TaintCheck,
// MemLeak, and AtomCheck. Each monitor provides
//
//   - event selection: which retired instructions generate monitored events
//     (the "event producer" support of Section 3.1),
//   - functional software handlers that maintain both critical and
//     non-critical metadata and raise detection reports,
//   - a software cost model (handler lengths in instructions, converted to
//     cycles by the monitor core's timing model), and
//   - FADE programming: the event-table entries and INV RF contents that
//     implement the monitor's filtering rules (Section 4.1).
//
// The invariant tying these together — a hardware-filtered event's handler
// would not have changed critical metadata or raised a report — is enforced
// by the differential tests in this package and internal/system.
//
// Handler classes (Class) name the paper's handler taxonomy; their
// MetricName forms appear in the moncore.handler_instrs.* metric series
// (see docs/METRICS.md).
package monitor
