package monitor

import (
	"fmt"
	"sort"

	"fade/internal/core"
	"fade/internal/isa"
	"fade/internal/metadata"
	"fade/internal/trace"
)

// Kind is the monitoring-analysis category of Section 3.1.
type Kind int

const (
	// MemoryTracking monitors process only memory instructions
	// (AddrCheck, AtomCheck).
	MemoryTracking Kind = iota
	// PropagationTracking monitors may track any instruction type and
	// propagate metadata from sources to destination (MemCheck, MemLeak,
	// TaintCheck).
	PropagationTracking
)

func (k Kind) String() string {
	if k == PropagationTracking {
		return "propagation-tracking"
	}
	return "memory-tracking"
}

// Class categorizes the software path an event took, for the execution-time
// breakdown of Fig. 4(a).
type Class int

const (
	ClassCC    Class = iota // clean check fast path
	ClassRU                 // redundant update fast path
	ClassSlow               // complex (unfilterable) handler
	ClassStack              // stack-update handler
	ClassHigh               // high-level event handler
)

func (c Class) String() string {
	switch c {
	case ClassCC:
		return "CC"
	case ClassRU:
		return "RU"
	case ClassSlow:
		return "slow"
	case ClassStack:
		return "stack"
	case ClassHigh:
		return "high-level"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// MetricName returns the class's stable lowercase identifier used in
// metric names (e.g. "moncore.handler_instrs.clean_check"); see
// docs/METRICS.md.
func (c Class) MetricName() string {
	switch c {
	case ClassCC:
		return "clean_check"
	case ClassRU:
		return "redundant_update"
	case ClassSlow:
		return "complex"
	case ClassStack:
		return "stack"
	case ClassHigh:
		return "high_level"
	}
	return fmt.Sprintf("class_%d", int(c))
}

// Classes lists every handler class in declaration order, for reporting
// code that iterates the full breakdown deterministically.
func Classes() []Class {
	return []Class{ClassCC, ClassRU, ClassSlow, ClassStack, ClassHigh}
}

// Report is one detection raised by a monitor.
type Report struct {
	Tool   string
	Kind   string
	PC     uint32
	Addr   uint32
	Seq    uint64
	Thread uint8
	Detail string
}

func (r Report) String() string {
	return fmt.Sprintf("[%s] %s pc=%#x addr=%#x seq=%d: %s", r.Tool, r.Kind, r.PC, r.Addr, r.Seq, r.Detail)
}

// HandleCtx carries execution context into a software handler.
type HandleCtx struct {
	// CritRegs reports that software owns critical register metadata
	// (unaccelerated and blocking-FADE systems). Non-blocking FADE's MD
	// update logic owns the MD RF, so handlers must not write it
	// (Section 5.2).
	CritRegs bool
	// MDValid reports that S1/S2/D hold the operand metadata the
	// accelerator read in its Metadata Read stage. Handlers must base
	// decisions on this snapshot: by handler time, a non-blocking
	// accelerator may have applied critical updates for younger events.
	MDValid   bool
	S1, S2, D byte
}

// operands resolves an instruction event's operand metadata: the
// accelerator's snapshot when present, otherwise (software-only systems,
// which process events strictly in order) the current metadata state.
// s1Mem/dMem say which operands are memory-resident for this event kind.
func operands(hc HandleCtx, st *metadata.State, ev isa.Event, s1Mem, dMem bool) (s1, s2, d byte) {
	if hc.MDValid {
		return hc.S1, hc.S2, hc.D
	}
	if s1Mem {
		s1 = st.Mem.Load(ev.Addr)
	} else {
		s1 = st.Regs.Load(ev.Src1)
	}
	s2 = st.Regs.Load(ev.Src2)
	if dMem {
		d = st.Mem.Load(ev.Addr)
	} else {
		d = st.Regs.Load(ev.Dest)
	}
	return
}

// HandleResult is the outcome of one software handler execution.
type HandleResult struct {
	// Cost is the handler length in dynamic instructions.
	Cost int
	// ShortCost, when non-zero, is the handler length when the
	// accelerator's partial filtering already performed the check in
	// hardware and only the update body runs (Section 4.1: the check
	// itself, its control flow, and register spills/fills are elided).
	ShortCost int
	// Class is the path taken, for execution-time breakdowns.
	Class Class
	// Reports are detections raised by this handler.
	Reports []Report
}

// Monitor is one instruction-grain monitoring tool.
type Monitor interface {
	Name() string
	Kind() Kind

	// Monitored reports whether the retired instruction generates a
	// monitored event. Unmonitored instructions are eliminated at the
	// producer and never enter the event queue.
	Monitored(in isa.Instr) bool

	// EventOf converts a monitored instruction into its event record,
	// assigning the event-table id.
	EventOf(in isa.Instr, seq uint64) isa.Event

	// TracksStack reports whether function calls/returns generate
	// stack-update events for this monitor.
	TracksStack() bool

	// Init establishes metadata for statically allocated regions
	// (globals, the streaming arena, initial stacks) and registers.
	Init(st *metadata.State)

	// Program installs the monitor's filtering rules into an accelerator.
	Program(p core.Programmer) error

	// Handle executes the software handler for an event against st,
	// under the execution context hc (critical-register ownership and
	// the accelerator's operand-metadata snapshot).
	Handle(ev isa.Event, st *metadata.State, hc HandleCtx) HandleResult

	// Finalize runs end-of-execution analysis (e.g. MemLeak's final leak
	// scan) and returns any resulting reports.
	Finalize(st *metadata.State) []Report
}

// Registry of monitor constructors. AtomCheck takes the thread count of the
// monitored application.
var constructors = map[string]func(threads int) Monitor{
	"AddrCheck":  func(int) Monitor { return NewAddrCheck() },
	"MemCheck":   func(int) Monitor { return NewMemCheck() },
	"TaintCheck": func(int) Monitor { return NewTaintCheck() },
	"MemLeak":    func(int) Monitor { return NewMemLeak() },
	"AtomCheck":  func(threads int) Monitor { return NewAtomCheck(threads) },
}

// New constructs the named monitor. threads matters only for AtomCheck,
// whose hardware-bounded thread capacity is validated here so no construction
// panic escapes the public API.
func New(name string, threads int) (Monitor, error) {
	c, ok := constructors[name]
	if !ok {
		return nil, fmt.Errorf("monitor: unknown monitor %q", name)
	}
	if name == "AtomCheck" && threads > MaxAtomThreads {
		return nil, fmt.Errorf("monitor: AtomCheck supports at most %d threads, got %d", MaxAtomThreads, threads)
	}
	return c(threads), nil
}

// Names returns the monitor names in the paper's presentation order.
func Names() []string {
	return []string{"AddrCheck", "AtomCheck", "MemCheck", "MemLeak", "TaintCheck"}
}

// sortedNames is used by tests that iterate the registry.
func sortedNames() []string {
	var out []string
	for n := range constructors {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// initStatics marks the statically allocated regions of the synthetic
// address space with metadata value v: the globals region, the streaming
// arena, and the top 64 KB of each possible thread stack (the initial
// frames, which predate any call event). Monitors call this from Init.
func initStatics(st *metadata.State, v byte) {
	st.Mem.SetRange(trace.GlobalBase, trace.GlobalSize, v)
	st.Mem.SetRange(trace.StreamBase, trace.StreamSize, v)
	st.Mem.SetRange(trace.PtrTableBase, trace.PtrTableSize, v)
	const initialStack = 64 << 10
	for t := uint32(0); t < 8; t++ {
		top := trace.StackTop - t*trace.StackStride
		st.Mem.SetRange(top-initialStack, initialStack, v)
	}
}

// initRegs sets every register's metadata to v (e.g. "initialized" for
// MemCheck — architectural registers hold defined values at program start).
func initRegs(st *metadata.State, v byte) {
	for r := 0; r < isa.NumRegs; r++ {
		st.Regs.Store(isa.Reg(r), v)
	}
}
