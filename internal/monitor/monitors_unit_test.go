package monitor

import (
	"testing"

	"fade/internal/isa"
	"fade/internal/metadata"
)

func swCtx() HandleCtx { return HandleCtx{CritRegs: true} }

func mallocEv(base, size uint32, dest isa.Reg) isa.Event {
	return isa.Event{Kind: isa.EvHighLevel, Op: isa.OpMalloc, Addr: base, Size: size, Dest: dest}
}

func freeEv(base, size uint32) isa.Event {
	return isa.Event{Kind: isa.EvHighLevel, Op: isa.OpFree, Addr: base, Size: size}
}

func loadEv(addr uint32, dest isa.Reg, seq uint64) isa.Event {
	return isa.Event{Kind: isa.EvInstr, Op: isa.OpLoad, Addr: addr,
		Src1: isa.RegNone, Src2: isa.RegNone, Dest: dest, Seq: seq}
}

func storeEv(addr uint32, src isa.Reg, seq uint64) isa.Event {
	return isa.Event{Kind: isa.EvInstr, Op: isa.OpStore, Addr: addr,
		Src1: src, Src2: isa.RegNone, Dest: isa.RegNone, Seq: seq}
}

func aluEv(s1, s2, d isa.Reg, seq uint64) isa.Event {
	return isa.Event{Kind: isa.EvInstr, Op: isa.OpALU, Src1: s1, Src2: s2, Dest: d, Seq: seq}
}

// ---------- AddrCheck ----------

func TestAddrCheckDetectsUnallocatedAccess(t *testing.T) {
	m := NewAddrCheck()
	st := metadata.NewState()
	m.Init(st)

	// Access before allocation: report.
	res := m.Handle(loadEv(0x4000_0000, 1, 0), st, swCtx())
	if len(res.Reports) != 1 || res.Reports[0].Kind != "invalid-read" {
		t.Fatalf("reports = %v", res.Reports)
	}
	// Allocate, then access: clean.
	m.Handle(mallocEv(0x4000_0000, 64, 1), st, swCtx())
	res = m.Handle(loadEv(0x4000_0000, 1, 1), st, swCtx())
	if len(res.Reports) != 0 || res.Class != ClassCC {
		t.Fatalf("allocated access: %+v", res)
	}
	// Free, then write: report invalid-write.
	m.Handle(freeEv(0x4000_0000, 64), st, swCtx())
	res = m.Handle(storeEv(0x4000_0000, 2, 2), st, swCtx())
	if len(res.Reports) != 1 || res.Reports[0].Kind != "invalid-write" {
		t.Fatalf("use-after-free: %v", res.Reports)
	}
}

func TestAddrCheckStaticsAllocated(t *testing.T) {
	m := NewAddrCheck()
	st := metadata.NewState()
	m.Init(st)
	for _, a := range []uint32{0x1000_0000, 0x2000_0000, 0x8000_0000, 0xF000_0000 - 64} {
		res := m.Handle(loadEv(a, 1, 0), st, swCtx())
		if len(res.Reports) != 0 {
			t.Fatalf("static region %#x reported: %v", a, res.Reports)
		}
	}
}

// ---------- MemCheck ----------

func TestMemCheckStates(t *testing.T) {
	m := NewMemCheck()
	st := metadata.NewState()
	m.Init(st)
	base := uint32(0x4000_0000)

	// Unallocated read: invalid-read.
	res := m.Handle(loadEv(base, 1, 0), st, swCtx())
	if len(res.Reports) != 1 || res.Reports[0].Kind != "invalid-read" {
		t.Fatalf("unallocated read: %+v", res)
	}
	// malloc -> allocated-uninitialized.
	m.Handle(mallocEv(base, 64, 1), st, swCtx())
	if st.Mem.Load(base) != mcUninit {
		t.Fatalf("post-malloc state %d", st.Mem.Load(base))
	}
	// Uninitialized read: slow path, register becomes uninit, no report.
	res = m.Handle(loadEv(base, 5, 1), st, swCtx())
	if res.Class != ClassSlow || len(res.Reports) != 0 {
		t.Fatalf("uninit read: %+v", res)
	}
	if st.Regs.Load(5) != mcUninit {
		t.Fatalf("dest reg state %d", st.Regs.Load(5))
	}
	// Store an initialized value: word becomes initialized.
	st.Regs.Store(6, mcInit)
	m.Handle(storeEv(base, 6, 2), st, swCtx())
	if st.Mem.Load(base) != mcInit {
		t.Fatalf("post-store state %d", st.Mem.Load(base))
	}
	// Now reads are clean checks.
	st.Regs.Store(7, mcInit)
	res = m.Handle(loadEv(base, 7, 3), st, swCtx())
	if res.Class != ClassCC {
		t.Fatalf("initialized read class %v", res.Class)
	}
}

func TestMemCheckDefinednessAND(t *testing.T) {
	m := NewMemCheck()
	st := metadata.NewState()
	m.Init(st)
	st.Regs.Store(1, mcInit)
	st.Regs.Store(2, mcUninit)
	st.Regs.Store(3, mcInit)
	m.Handle(aluEv(1, 2, 3, 0), st, swCtx())
	if st.Regs.Load(3) != mcUninit {
		t.Fatalf("init AND uninit = %d", st.Regs.Load(3))
	}
}

func TestMemCheckSingleSourceIdentity(t *testing.T) {
	m := NewMemCheck()
	st := metadata.NewState()
	m.Init(st)
	st.Regs.Store(1, mcUninit)
	ev := aluEv(1, isa.RegNone, 4, 0)
	m.Handle(ev, st, swCtx())
	if st.Regs.Load(4) != mcUninit {
		t.Fatalf("1-src copy = %d, want uninit (AND identity)", st.Regs.Load(4))
	}
}

func TestMemCheckStoreToUnallocatedDoesNotAllocate(t *testing.T) {
	m := NewMemCheck()
	st := metadata.NewState()
	m.Init(st)
	st.Regs.Store(1, mcInit)
	res := m.Handle(storeEv(0x4000_0000, 1, 0), st, swCtx())
	if len(res.Reports) != 1 || res.Reports[0].Kind != "invalid-write" {
		t.Fatalf("store to unallocated: %+v", res)
	}
	if st.Mem.Load(0x4000_0000) != mcUnallocated {
		t.Fatal("store made unallocated memory addressable")
	}
}

func TestMemCheckStackLifecycle(t *testing.T) {
	m := NewMemCheck()
	st := metadata.NewState()
	m.Init(st)
	frame := uint32(0xE000_0000)
	m.Handle(isa.Event{Kind: isa.EvStackCall, Addr: frame, Size: 64}, st, swCtx())
	if st.Mem.Load(frame) != mcUninit {
		t.Fatalf("frame after call = %d", st.Mem.Load(frame))
	}
	m.Handle(isa.Event{Kind: isa.EvStackRet, Addr: frame, Size: 64}, st, swCtx())
	if st.Mem.Load(frame) != mcUnallocated {
		t.Fatalf("frame after ret = %d", st.Mem.Load(frame))
	}
}

// ---------- TaintCheck ----------

func TestTaintPropagationChain(t *testing.T) {
	m := NewTaintCheck()
	st := metadata.NewState()
	m.Init(st)
	buf := uint32(0x4000_0000)

	// External input taints a buffer.
	m.Handle(isa.Event{Kind: isa.EvHighLevel, Op: isa.OpTaintSrc, Addr: buf, Size: 16}, st, swCtx())
	if st.Mem.Load(buf) != tcTainted {
		t.Fatal("taint source did not mark buffer")
	}
	// load -> reg tainted; alu -> spreads; store -> memory tainted.
	m.Handle(loadEv(buf, 1, 0), st, swCtx())
	if st.Regs.Load(1) != tcTainted {
		t.Fatal("load did not propagate taint")
	}
	m.Handle(aluEv(1, 2, 3, 1), st, swCtx())
	if st.Regs.Load(3) != tcTainted {
		t.Fatal("alu did not propagate taint")
	}
	m.Handle(storeEv(0x1000_0000, 3, 2), st, swCtx())
	if st.Mem.Load(0x1000_0000) != tcTainted {
		t.Fatal("store did not propagate taint")
	}
	// Overwrite with untainted data clears.
	m.Handle(storeEv(0x1000_0000, 4, 3), st, swCtx())
	if st.Mem.Load(0x1000_0000) != tcUntainted {
		t.Fatal("untainted store did not clear taint")
	}
}

func TestTaintedJumpAlert(t *testing.T) {
	m := NewTaintCheck()
	st := metadata.NewState()
	m.Init(st)
	st.Regs.Store(9, tcTainted)
	res := m.Handle(isa.Event{Kind: isa.EvInstr, Op: isa.OpJmpReg, Src1: 9}, st, swCtx())
	if len(res.Reports) != 1 || res.Reports[0].Kind != "tainted-jump" {
		t.Fatalf("tainted jump: %+v", res)
	}
	st.Regs.Store(9, tcUntainted)
	res = m.Handle(isa.Event{Kind: isa.EvInstr, Op: isa.OpJmpReg, Src1: 9}, st, swCtx())
	if len(res.Reports) != 0 || res.Class != ClassCC {
		t.Fatalf("clean jump: %+v", res)
	}
}

func TestTaintStackClears(t *testing.T) {
	m := NewTaintCheck()
	st := metadata.NewState()
	m.Init(st)
	frame := uint32(0xE000_0000)
	st.Mem.Store(frame, tcTainted)
	m.Handle(isa.Event{Kind: isa.EvStackRet, Addr: frame, Size: 16}, st, swCtx())
	if st.Mem.Load(frame) != tcUntainted {
		t.Fatal("dead frame kept taint")
	}
}

// ---------- MemLeak ----------

func TestMemLeakRefCounting(t *testing.T) {
	m := NewMemLeak()
	st := metadata.NewState()
	m.Init(st)
	base := uint32(0x4000_0000)

	// malloc: dest register references the allocation.
	m.Handle(mallocEv(base, 64, 1), st, swCtx())
	if st.Regs.Load(1) != mlPointer {
		t.Fatal("malloc dest not a pointer")
	}
	// Store the pointer: memory binding, refs = 2.
	m.Handle(storeEv(0x1000_0000, 1, 1), st, swCtx())
	if st.Mem.Load(0x1000_0000) != mlPointer {
		t.Fatal("pointer store not recorded")
	}
	// Overwrite the register: refs = 1, no report.
	st.Regs.Store(2, mlNonPointer)
	res := m.Handle(aluEv(2, isa.RegNone, 1, 2), st, swCtx())
	if len(res.Reports) != 0 {
		t.Fatalf("premature leak report: %v", res.Reports)
	}
	// Overwrite the memory copy: refs = 0 -> the store's handler reports.
	res = m.Handle(storeEv(0x1000_0000, 2, 3), st, swCtx())
	found := false
	for _, r := range append(res.Reports, m.Finalize(st)...) {
		if r.Kind == "memory-leak" {
			found = true
		}
	}
	if !found {
		t.Fatal("lost last reference not reported")
	}
}

func TestMemLeakFreeSuppressesReport(t *testing.T) {
	m := NewMemLeak()
	st := metadata.NewState()
	m.Init(st)
	base := uint32(0x4000_0000)
	m.Handle(mallocEv(base, 64, 1), st, swCtx())
	m.Handle(freeEv(base, 64), st, swCtx())
	// Register overwrite after free: refcount drops but freed -> no leak.
	st.Regs.Store(2, mlNonPointer)
	m.Handle(aluEv(2, isa.RegNone, 1, 1), st, swCtx())
	if rs := m.Finalize(st); len(rs) != 0 {
		t.Fatalf("freed allocation reported: %v", rs)
	}
}

func TestMemLeakFinalizeReportsUnreferenced(t *testing.T) {
	m := NewMemLeak()
	st := metadata.NewState()
	m.Init(st)
	// Allocate into a register and never reference it again: the
	// overwrite reports in-line, and an allocation never touched after
	// malloc (refs 0 throughout) surfaces at Finalize.
	m.Handle(mallocEv(0x4000_0000, 32, 1), st, swCtx())
	st.Regs.Store(3, mlNonPointer)
	res := m.Handle(aluEv(3, isa.RegNone, 1, 1), st, swCtx())
	leaks := 0
	for _, r := range append(res.Reports, m.Finalize(st)...) {
		if r.Kind == "memory-leak" {
			leaks++
		}
	}
	if leaks != 1 {
		t.Fatalf("leaks = %d", leaks)
	}
}

func TestMemLeakPointerArithKeepsBinding(t *testing.T) {
	m := NewMemLeak()
	st := metadata.NewState()
	m.Init(st)
	m.Handle(mallocEv(0x4000_0000, 64, 1), st, swCtx())
	// r2 = r1 + r3 (pointer arithmetic): r2 references the allocation too.
	m.Handle(aluEv(1, 3, 2, 1), st, swCtx())
	if st.Regs.Load(2) != mlPointer {
		t.Fatal("pointer arithmetic lost pointerness")
	}
	// Drop r1; allocation still referenced by r2: no leak yet.
	st.Regs.Store(4, mlNonPointer)
	m.Handle(aluEv(4, isa.RegNone, 1, 2), st, swCtx())
	if len(m.reports) != 0 {
		t.Fatalf("leak reported while still referenced: %v", m.reports)
	}
}

// ---------- AtomCheck ----------

func TestAtomCheckOwnershipAndShortPath(t *testing.T) {
	m := NewAtomCheck(4)
	st := metadata.NewState()
	m.Init(st)
	addr := uint32(0x4000_0000)

	ev := loadEv(addr, 1, 0)
	ev.Thread = 2
	res := m.Handle(ev, st, swCtx())
	if res.Class != ClassSlow {
		t.Fatalf("first access class %v", res.Class)
	}
	if st.Mem.Load(addr) != atomMDByte(2) {
		t.Fatalf("owner byte %#x", st.Mem.Load(addr))
	}
	// Same thread again: short path with a partial-filter discount.
	res = m.Handle(ev, st, swCtx())
	if res.Class != ClassCC || res.ShortCost == 0 || res.ShortCost >= res.Cost {
		t.Fatalf("same-thread access: %+v", res)
	}
}

func TestAtomCheckViolationPatterns(t *testing.T) {
	mkEv := func(op isa.Op, thread uint8, seq uint64) isa.Event {
		ev := isa.Event{Kind: isa.EvInstr, Op: op, Addr: 0x4000_0000, Seq: seq,
			Src1: 1, Src2: isa.RegNone, Dest: 2, Thread: thread}
		return ev
	}
	cases := []struct {
		ops  [3]isa.Op // local, remote, local
		want bool
	}{
		{[3]isa.Op{isa.OpLoad, isa.OpStore, isa.OpLoad}, true},  // R-W-R
		{[3]isa.Op{isa.OpStore, isa.OpStore, isa.OpLoad}, true}, // W-W-R
		{[3]isa.Op{isa.OpLoad, isa.OpStore, isa.OpStore}, true}, // R-W-W
		{[3]isa.Op{isa.OpStore, isa.OpLoad, isa.OpStore}, true}, // W-R-W
		{[3]isa.Op{isa.OpLoad, isa.OpLoad, isa.OpLoad}, false},  // R-R-R serializable
		{[3]isa.Op{isa.OpStore, isa.OpLoad, isa.OpLoad}, false}, // W-R-R serializable
	}
	for i, c := range cases {
		m := NewAtomCheck(4)
		st := metadata.NewState()
		m.Init(st)
		m.Handle(mkEv(c.ops[0], 0, 0), st, swCtx())
		m.Handle(mkEv(c.ops[1], 1, 1), st, swCtx())
		res := m.Handle(mkEv(c.ops[2], 0, 2), st, swCtx())
		got := len(res.Reports) > 0
		if got != c.want {
			t.Errorf("case %d (%v): violation=%v want %v", i, c.ops, got, c.want)
		}
	}
}

func TestAtomCheckFreeResetsState(t *testing.T) {
	m := NewAtomCheck(4)
	st := metadata.NewState()
	m.Init(st)
	addr := uint32(0x4000_0000)
	ev := loadEv(addr, 1, 0)
	ev.Thread = 1
	m.Handle(ev, st, swCtx())
	m.Handle(freeEv(addr, 64), st, swCtx())
	if st.Mem.Load(addr) != 0 {
		t.Fatal("free did not reset interleaving state")
	}
}

func TestAtomCheckThreadLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("5 threads accepted")
		}
	}()
	NewAtomCheck(5)
}
