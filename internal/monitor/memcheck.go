package monitor

import (
	"fade/internal/core"
	"fade/internal/isa"
	"fade/internal/metadata"
)

// MemCheck extends AddrCheck to detect the use of uninitialized values
// (Section 6). It is a propagation-tracking monitor with three critical
// metadata states per word — unallocated, allocated-but-uninitialized, and
// initialized — encoded so that definedness composes with AND:
//
//	0b00 unallocated, 0b01 allocated-uninitialized, 0b11 initialized
//
// Register metadata uses the same encoding (0b11 defined). Non-critical
// metadata would include origin-tracking information; this implementation
// models its cost in the slow-path handler length. FADE performs clean
// checks for legitimate accesses and filters redundant updates when
// metadata remain unchanged.
type MemCheck struct{}

// MemCheck metadata states.
const (
	mcUnallocated byte = 0x0
	mcUninit      byte = 0x1
	mcInit        byte = 0x3
)

// MemCheck event-table ids. Entries 17-19 are the redundant-update chain
// targets reached through the MS bit.
const (
	mcEvLoad       = 1
	mcEvStore      = 2
	mcEvALU        = 3 // two register sources
	mcEvALU1       = 4 // single register source
	mcEvLoadChain  = 17
	mcEvStoreChain = 18
	mcEvALUChain   = 19
	mcEvALU1Chain  = 20
)

// Software handler costs in dynamic instructions.
const (
	mcCostFast     = 13
	mcCostSlow     = 30
	mcCostInvalid  = 80
	mcCostHighBase = 30
	mcCostStack    = 16
)

// NewMemCheck returns a fresh MemCheck monitor.
func NewMemCheck() *MemCheck { return &MemCheck{} }

// Name implements Monitor.
func (m *MemCheck) Name() string { return "MemCheck" }

// Kind implements Monitor.
func (m *MemCheck) Kind() Kind { return PropagationTracking }

// Monitored selects all loads, stores, and computation (MemCheck tracks
// definedness through every value-producing instruction), plus the heap
// events.
func (m *MemCheck) Monitored(in isa.Instr) bool {
	switch in.Op {
	case isa.OpLoad, isa.OpStore, isa.OpALU, isa.OpFPALU:
		return true
	case isa.OpMalloc, isa.OpFree, isa.OpCall, isa.OpRet:
		return true
	}
	return false
}

// TracksStack implements Monitor: frames become allocated-uninitialized on
// calls and unallocated on returns.
func (m *MemCheck) TracksStack() bool { return true }

// EventOf implements Monitor.
func (m *MemCheck) EventOf(in isa.Instr, seq uint64) isa.Event {
	ev := isa.Event{
		PC: in.PC, Addr: in.Addr, Src1: in.Src1, Src2: in.Src2, Dest: in.Dest,
		Op: in.Op, Size: in.Size, Thread: in.Thread, Seq: seq,
	}
	switch in.Op {
	case isa.OpLoad:
		ev.ID, ev.Kind = mcEvLoad, isa.EvInstr
	case isa.OpStore:
		ev.ID, ev.Kind = mcEvStore, isa.EvInstr
	case isa.OpALU, isa.OpFPALU:
		if in.Src2 == isa.RegNone {
			ev.ID, ev.Kind = mcEvALU1, isa.EvInstr
		} else {
			ev.ID, ev.Kind = mcEvALU, isa.EvInstr
		}
	case isa.OpCall:
		ev.Kind = isa.EvStackCall
	case isa.OpRet:
		ev.Kind = isa.EvStackRet
	default:
		ev.Kind = isa.EvHighLevel
	}
	return ev
}

// Init implements Monitor: statics are initialized; registers hold defined
// values at program start.
func (m *MemCheck) Init(st *metadata.State) {
	initStatics(st, mcInit)
	initRegs(st, mcInit)
}

// Program implements Monitor. Each instruction event is a two-shot chain:
// a clean check against "initialized" first, then a redundant-update check
// (Section 4.1's multi-shot filtering). Unfilterable events propagate
// definedness in the MD update logic: loads/stores propagate the source,
// computation ANDs the sources; stores additionally must not make an
// unallocated destination addressable (conditional rule 4).
func (m *MemCheck) Program(p core.Programmer) error {
	for id, v := range map[int]byte{0: mcUnallocated, 1: mcUninit, 2: mcInit} {
		if err := p.SetInvariant(id, v); err != nil {
			return err
		}
	}
	if err := p.SetStackInvariants(1, 0); err != nil {
		return err
	}

	memOp := core.OperandRule{Valid: true, Mem: true, MDBytes: 1, Mask: 0xFF, INVid: 2}
	regOp := core.OperandRule{Valid: true, Mem: false, MDBytes: 1, Mask: 0xFF, INVid: 2}

	entries := map[int]core.Entry{
		mcEvLoad: {
			S1: memOp, D: regOp, CC: true,
			MS: true, Next: mcEvLoadChain,
			NB: core.NBPropS1, HandlerPC: 0x2000,
		},
		mcEvLoadChain: {
			S1: memOp, D: regOp, RU: core.RUDirect,
			NB: core.NBPropS1, HandlerPC: 0x2000,
		},
		mcEvStore: {
			S1: regOp, D: memOp, CC: true,
			MS: true, Next: mcEvStoreChain,
			NB: core.NBCondDestProp, NBInv: 0, HandlerPC: 0x2010,
		},
		mcEvStoreChain: {
			S1: regOp, D: memOp, RU: core.RUDirect,
			NB: core.NBCondDestProp, NBInv: 0, HandlerPC: 0x2010,
		},
		mcEvALU: {
			S1: regOp, S2: regOp, D: regOp, CC: true,
			MS: true, Next: mcEvALUChain,
			NB: core.NBAnd, HandlerPC: 0x2020,
		},
		mcEvALUChain: {
			S1: regOp, S2: regOp, D: regOp, RU: core.RUAnd,
			NB: core.NBAnd, HandlerPC: 0x2020,
		},
		mcEvALU1: {
			S1: regOp, D: regOp, CC: true,
			MS: true, Next: mcEvALU1Chain,
			NB: core.NBPropS1, HandlerPC: 0x2020,
		},
		mcEvALU1Chain: {
			S1: regOp, D: regOp, RU: core.RUDirect,
			NB: core.NBPropS1, HandlerPC: 0x2020,
		},
	}
	for id, e := range entries {
		if err := p.SetEntry(id, e); err != nil {
			return err
		}
	}
	return nil
}

// Handle implements Monitor.
func (m *MemCheck) Handle(ev isa.Event, st *metadata.State, hc HandleCtx) HandleResult {
	switch ev.Kind {
	case isa.EvStackCall:
		st.Mem.SetRange(ev.Addr, ev.Size, mcUninit)
		return HandleResult{Cost: mcCostStack + int(ev.Size/64), Class: ClassStack}
	case isa.EvStackRet:
		st.Mem.SetRange(ev.Addr, ev.Size, mcUnallocated)
		return HandleResult{Cost: mcCostStack + int(ev.Size/64), Class: ClassStack}
	case isa.EvHighLevel:
		return m.handleHighLevel(ev, st)
	}

	switch ev.Op {
	case isa.OpLoad:
		s1, _, d := operands(hc, st, ev, true, false)
		if s1 == mcInit && d == mcInit {
			return HandleResult{Cost: mcCostFast, Class: ClassCC}
		}
		if s1 == d {
			return HandleResult{Cost: mcCostFast, Class: ClassRU}
		}
		res := HandleResult{Cost: mcCostSlow, Class: ClassSlow}
		if s1 == mcUnallocated {
			res.Cost = mcCostInvalid
			res.Reports = []Report{{
				Tool: m.Name(), Kind: "invalid-read", PC: ev.PC, Addr: ev.Addr,
				Seq: ev.Seq, Thread: ev.Thread, Detail: "read from unallocated memory",
			}}
		}
		if hc.CritRegs {
			st.Regs.Store(ev.Dest, s1)
		}
		return res
	case isa.OpStore:
		s1, _, d := operands(hc, st, ev, false, true)
		// A store's fast path is a redundant update: the new metadata
		// value equals the old one (Fig. 4a classification).
		if s1 == d {
			return HandleResult{Cost: mcCostFast, Class: ClassRU}
		}
		res := HandleResult{Cost: mcCostSlow, Class: ClassSlow}
		if d == mcUnallocated {
			res.Cost = mcCostInvalid
			res.Reports = []Report{{
				Tool: m.Name(), Kind: "invalid-write", PC: ev.PC, Addr: ev.Addr,
				Seq: ev.Seq, Thread: ev.Thread, Detail: "write to unallocated memory",
			}}
		} else {
			// Memory metadata is critical *memory* state: the handler
			// always owns it (the FSQ covers the interim in
			// non-blocking mode).
			st.Mem.Store(ev.Addr, s1)
		}
		return res
	default: // computation
		s1, s2, d := operands(hc, st, ev, false, false)
		if ev.Src2 == isa.RegNone {
			s2 = mcInit // AND identity for single-source (reg-imm) forms
		}
		if s1 == mcInit && s2 == mcInit && d == mcInit {
			return HandleResult{Cost: mcCostFast, Class: ClassCC}
		}
		if s1&s2 == d {
			return HandleResult{Cost: mcCostFast, Class: ClassRU}
		}
		if hc.CritRegs {
			st.Regs.Store(ev.Dest, s1&s2)
		}
		return HandleResult{Cost: mcCostSlow, Class: ClassSlow}
	}
}

func (m *MemCheck) handleHighLevel(ev isa.Event, st *metadata.State) HandleResult {
	words := int(ev.Size / metadata.WordBytes)
	cost := mcCostHighBase + words/16 + 1
	switch ev.Op {
	case isa.OpMalloc:
		st.Mem.SetRange(ev.Addr, ev.Size, mcUninit)
	case isa.OpFree:
		st.Mem.SetRange(ev.Addr, ev.Size, mcUnallocated)
	}
	return HandleResult{Cost: cost, Class: ClassHigh}
}

// Finalize implements Monitor.
func (m *MemCheck) Finalize(st *metadata.State) []Report { return nil }
