package monitor

import (
	"fade/internal/core"
	"fade/internal/isa"
	"fade/internal/metadata"
)

// TaintCheck detects overwrite-related security exploits through dynamic
// taint analysis (Newsome & Song; Section 6). Critical metadata encode two
// states per word and register: untainted (0) or tainted (1); taint
// composes with OR. Non-critical metadata (taint origins for reporting) are
// modeled in the slow-path handler cost. FADE filters clean (fully
// untainted) events and redundant updates along stable taint chains. The
// detection point is a register-indirect jump through tainted data.
type TaintCheck struct{}

// TaintCheck metadata states.
const (
	tcUntainted byte = 0
	tcTainted   byte = 1
)

// TaintCheck event-table ids; 17-19 are redundant-update chain targets.
const (
	tcEvLoad       = 1
	tcEvStore      = 2
	tcEvALU        = 3 // two register sources
	tcEvJmp        = 4
	tcEvALU1       = 5 // single register source
	tcEvLoadChain  = 17
	tcEvStoreChain = 18
	tcEvALUChain   = 19
	tcEvALU1Chain  = 20
)

// Software handler costs in dynamic instructions.
const (
	tcCostFast     = 14
	tcCostSlow     = 18
	tcCostAlert    = 200
	tcCostHighBase = 28
	tcCostStack    = 14
)

// NewTaintCheck returns a fresh TaintCheck monitor.
func NewTaintCheck() *TaintCheck { return &TaintCheck{} }

// Name implements Monitor.
func (m *TaintCheck) Name() string { return "TaintCheck" }

// Kind implements Monitor.
func (m *TaintCheck) Kind() Kind { return PropagationTracking }

// Monitored selects value-propagating instructions and indirect jumps,
// plus heap and taint-source events. Floating-point computation does not
// propagate taint in this tool (as in the original TaintCheck).
func (m *TaintCheck) Monitored(in isa.Instr) bool {
	switch in.Op {
	case isa.OpLoad, isa.OpStore, isa.OpALU, isa.OpJmpReg:
		return true
	case isa.OpMalloc, isa.OpFree, isa.OpTaintSrc, isa.OpCall, isa.OpRet:
		return true
	}
	return false
}

// TracksStack implements Monitor: new frames start untainted.
func (m *TaintCheck) TracksStack() bool { return true }

// EventOf implements Monitor.
func (m *TaintCheck) EventOf(in isa.Instr, seq uint64) isa.Event {
	ev := isa.Event{
		PC: in.PC, Addr: in.Addr, Src1: in.Src1, Src2: in.Src2, Dest: in.Dest,
		Op: in.Op, Size: in.Size, Thread: in.Thread, Seq: seq,
	}
	switch in.Op {
	case isa.OpLoad:
		ev.ID, ev.Kind = tcEvLoad, isa.EvInstr
	case isa.OpStore:
		ev.ID, ev.Kind = tcEvStore, isa.EvInstr
	case isa.OpALU:
		if in.Src2 == isa.RegNone {
			ev.ID, ev.Kind = tcEvALU1, isa.EvInstr
		} else {
			ev.ID, ev.Kind = tcEvALU, isa.EvInstr
		}
	case isa.OpJmpReg:
		ev.ID, ev.Kind = tcEvJmp, isa.EvInstr
	case isa.OpCall:
		ev.Kind = isa.EvStackCall
	case isa.OpRet:
		ev.Kind = isa.EvStackRet
	default:
		ev.Kind = isa.EvHighLevel
	}
	return ev
}

// Init implements Monitor: everything starts untainted (the zero state).
func (m *TaintCheck) Init(st *metadata.State) {}

// Program implements Monitor.
func (m *TaintCheck) Program(p core.Programmer) error {
	if err := p.SetInvariant(0, tcUntainted); err != nil {
		return err
	}
	if err := p.SetInvariant(1, tcTainted); err != nil {
		return err
	}
	// Frames start and end untainted.
	if err := p.SetStackInvariants(0, 0); err != nil {
		return err
	}

	memOp := core.OperandRule{Valid: true, Mem: true, MDBytes: 1, Mask: 0xFF, INVid: 0}
	regOp := core.OperandRule{Valid: true, Mem: false, MDBytes: 1, Mask: 0xFF, INVid: 0}

	entries := map[int]core.Entry{
		tcEvLoad: {
			S1: memOp, D: regOp, CC: true, MS: true, Next: tcEvLoadChain,
			NB: core.NBPropS1, HandlerPC: 0x3000,
		},
		tcEvLoadChain: {
			S1: memOp, D: regOp, RU: core.RUDirect,
			NB: core.NBPropS1, HandlerPC: 0x3000,
		},
		tcEvStore: {
			S1: regOp, D: memOp, CC: true, MS: true, Next: tcEvStoreChain,
			NB: core.NBPropS1, HandlerPC: 0x3010,
		},
		tcEvStoreChain: {
			S1: regOp, D: memOp, RU: core.RUDirect,
			NB: core.NBPropS1, HandlerPC: 0x3010,
		},
		tcEvALU: {
			S1: regOp, S2: regOp, D: regOp, CC: true, MS: true, Next: tcEvALUChain,
			NB: core.NBOr, HandlerPC: 0x3020,
		},
		tcEvALUChain: {
			S1: regOp, S2: regOp, D: regOp, RU: core.RUOr,
			NB: core.NBOr, HandlerPC: 0x3020,
		},
		tcEvALU1: {
			S1: regOp, D: regOp, CC: true, MS: true, Next: tcEvALU1Chain,
			NB: core.NBPropS1, HandlerPC: 0x3020,
		},
		tcEvALU1Chain: {
			S1: regOp, D: regOp, RU: core.RUDirect,
			NB: core.NBPropS1, HandlerPC: 0x3020,
		},
		// Indirect jump: filtered when the target register is untainted;
		// otherwise the alert handler runs. No metadata changes.
		tcEvJmp: {
			S1: regOp, CC: true, HandlerPC: 0x3030,
		},
	}
	for id, e := range entries {
		if err := p.SetEntry(id, e); err != nil {
			return err
		}
	}
	return nil
}

// Handle implements Monitor.
func (m *TaintCheck) Handle(ev isa.Event, st *metadata.State, hc HandleCtx) HandleResult {
	switch ev.Kind {
	case isa.EvStackCall:
		st.Mem.SetRange(ev.Addr, ev.Size, tcUntainted)
		return HandleResult{Cost: tcCostStack + int(ev.Size/64), Class: ClassStack}
	case isa.EvStackRet:
		st.Mem.SetRange(ev.Addr, ev.Size, tcUntainted)
		return HandleResult{Cost: tcCostStack + int(ev.Size/64), Class: ClassStack}
	case isa.EvHighLevel:
		return m.handleHighLevel(ev, st)
	}

	switch ev.Op {
	case isa.OpLoad:
		s1, _, d := operands(hc, st, ev, true, false)
		if s1 == tcUntainted && d == tcUntainted {
			return HandleResult{Cost: tcCostFast, Class: ClassCC}
		}
		if s1 == d {
			return HandleResult{Cost: tcCostFast, Class: ClassRU}
		}
		if hc.CritRegs {
			st.Regs.Store(ev.Dest, s1)
		}
		return HandleResult{Cost: tcCostSlow, Class: ClassSlow}
	case isa.OpStore:
		s1, _, d := operands(hc, st, ev, false, true)
		// A store's fast path is a redundant update (Fig. 4a).
		if s1 == d {
			return HandleResult{Cost: tcCostFast, Class: ClassRU}
		}
		st.Mem.Store(ev.Addr, s1)
		return HandleResult{Cost: tcCostSlow, Class: ClassSlow}
	case isa.OpJmpReg:
		s1, _, _ := operands(hc, st, ev, false, false)
		if s1 == tcUntainted {
			return HandleResult{Cost: tcCostFast, Class: ClassCC}
		}
		return HandleResult{
			Cost:  tcCostAlert,
			Class: ClassSlow,
			Reports: []Report{{
				Tool: m.Name(), Kind: "tainted-jump", PC: ev.PC, Seq: ev.Seq,
				Thread: ev.Thread, Detail: "indirect jump through tainted register",
			}},
		}
	default: // ALU
		s1, s2, d := operands(hc, st, ev, false, false)
		if s1 == tcUntainted && s2 == tcUntainted && d == tcUntainted {
			return HandleResult{Cost: tcCostFast, Class: ClassCC}
		}
		if s1|s2 == d {
			return HandleResult{Cost: tcCostFast, Class: ClassRU}
		}
		if hc.CritRegs {
			st.Regs.Store(ev.Dest, s1|s2)
		}
		return HandleResult{Cost: tcCostSlow, Class: ClassSlow}
	}
}

func (m *TaintCheck) handleHighLevel(ev isa.Event, st *metadata.State) HandleResult {
	words := int(ev.Size / metadata.WordBytes)
	cost := tcCostHighBase + words/16 + 1
	switch ev.Op {
	case isa.OpMalloc, isa.OpFree:
		st.Mem.SetRange(ev.Addr, ev.Size, tcUntainted)
	case isa.OpTaintSrc:
		st.Mem.SetRange(ev.Addr, ev.Size, tcTainted)
		cost = tcCostHighBase + words/4 + 1
	}
	return HandleResult{Cost: cost, Class: ClassHigh}
}

// Finalize implements Monitor.
func (m *TaintCheck) Finalize(st *metadata.State) []Report { return nil }
