package monitor

import (
	"testing"

	"fade/internal/core"
	"fade/internal/isa"
	"fade/internal/metadata"
	"fade/internal/queue"
	"fade/internal/trace"
)

// runSoftware executes the monitoring analysis entirely in software: every
// monitored event's handler runs, in order, owning all metadata.
func runSoftware(t *testing.T, monName, bench string, seed, instrs uint64) (*metadata.State, []Report) {
	t.Helper()
	prof, ok := trace.Lookup(bench)
	if !ok {
		t.Fatalf("unknown bench %s", bench)
	}
	threads := 1
	if prof.Parallel {
		threads = prof.Threads
	}
	mon, err := New(monName, threads)
	if err != nil {
		t.Fatal(err)
	}
	st := metadata.NewState()
	mon.Init(st)
	g := trace.New(prof, seed, instrs)
	var reports []Report
	var seq uint64
	for {
		in, ok := g.Next()
		if !ok {
			break
		}
		if !mon.Monitored(in) {
			continue
		}
		ev := mon.EventOf(in, seq)
		seq++
		res := mon.Handle(ev, st, HandleCtx{CritRegs: true})
		reports = append(reports, res.Reports...)
	}
	reports = append(reports, mon.Finalize(st)...)
	return st, reports
}

// runFADE executes the same analysis through a functional FADE pipeline:
// the accelerator filters, applies critical-metadata updates, and forwards
// unfiltered events to a software consumer.
func runFADE(t *testing.T, monName, bench string, seed, instrs uint64, mode core.Mode) (*metadata.State, []Report, *core.Stats) {
	t.Helper()
	prof, _ := trace.Lookup(bench)
	threads := 1
	if prof.Parallel {
		threads = prof.Threads
	}
	mon, err := New(monName, threads)
	if err != nil {
		t.Fatal(err)
	}
	st := metadata.NewState()
	mon.Init(st)

	evq := queue.NewBounded[isa.Event](32)
	ufq := queue.NewBounded[core.Unfiltered](16)
	cfg := core.DefaultConfig(mode)
	fu := core.New(cfg, st, evq, ufq, nil)
	if err := mon.Program(core.ProgrammerFor(fu)); err != nil {
		t.Fatal(err)
	}

	critRegs := mode == core.Blocking
	var reports []Report
	var seq, cycle uint64

	consume := func() {
		for {
			u, ok := ufq.Pop()
			if !ok {
				return
			}
			hc := HandleCtx{
				CritRegs: critRegs, MDValid: u.MDValid,
				S1: u.MD.S1, S2: u.MD.S2, D: u.MD.D,
			}
			res := mon.Handle(u.Ev, st, hc)
			reports = append(reports, res.Reports...)
			fu.Complete(u.Ev.Seq)
		}
	}

	g := trace.New(prof, seed, instrs)
	for {
		in, ok := g.Next()
		if !ok {
			break
		}
		if !mon.Monitored(in) {
			continue
		}
		ev := mon.EventOf(in, seq)
		seq++
		for !evq.Push(ev) {
			fu.Tick(cycle)
			cycle++
			consume()
		}
	}
	for !evq.Empty() || fu.Busy() {
		fu.Tick(cycle)
		cycle++
		consume()
		if cycle > instrs*200 {
			t.Fatal("functional FADE run did not drain")
		}
	}
	reports = append(reports, mon.Finalize(st)...)
	return st, reports, fu.Stats()
}

func reportCounts(rs []Report) map[string]int {
	out := map[string]int{}
	for _, r := range rs {
		out[r.Kind]++
	}
	return out
}

// TestDifferentialFADE is the central correctness property of the system:
// accelerating a monitor with FADE — blocking or non-blocking — must not
// change the final critical metadata state or the detections raised,
// because hardware filters exactly the events whose handlers would not
// have changed critical state, and the MD update logic applies exactly the
// handler's critical updates (Sections 4 and 5).
func TestDifferentialFADE(t *testing.T) {
	cases := []struct{ mon, bench string }{
		{"AddrCheck", "astar"},
		{"AddrCheck", "omnet"},
		{"MemCheck", "gcc"},
		{"MemCheck", "libq"},
		{"TaintCheck", "bzip"},
		{"TaintCheck", "astar"},
		{"MemLeak", "astar"},
		{"MemLeak", "omnet"},
		{"AtomCheck", "streamc"},
		{"AtomCheck", "water"},
	}
	const instrs = 60_000
	for _, c := range cases {
		c := c
		t.Run(c.mon+"/"+c.bench, func(t *testing.T) {
			swState, swReports := runSoftware(t, c.mon, c.bench, 1, instrs)
			for _, mode := range []core.Mode{core.NonBlocking, core.Blocking} {
				hwState, hwReports, st := runFADE(t, c.mon, c.bench, 1, instrs, mode)

				swMem := swState.Mem.Snapshot()
				hwMem := hwState.Mem.Snapshot()
				if len(swMem) != len(hwMem) {
					t.Fatalf("%v: metadata size differs: sw %d, hw %d", mode, len(swMem), len(hwMem))
				}
				for k, v := range swMem {
					if hwMem[k] != v {
						t.Fatalf("%v: metadata at md-addr %#x: sw %d, hw %d", mode, k, v, hwMem[k])
					}
				}
				if swState.Regs.Snapshot() != hwState.Regs.Snapshot() {
					t.Fatalf("%v: register metadata differs:\n  sw %v\n  hw %v",
						mode, swState.Regs.Snapshot(), hwState.Regs.Snapshot())
				}
				swC, hwC := reportCounts(swReports), reportCounts(hwReports)
				if len(swC) != len(hwC) {
					t.Fatalf("%v: report kinds differ: sw %v, hw %v", mode, swC, hwC)
				}
				for k, n := range swC {
					if hwC[k] != n {
						t.Fatalf("%v: %s reports: sw %d, hw %d", mode, k, n, hwC[k])
					}
				}
				if st.InstrEvents > 0 && st.Filtered()+st.PartialShort == 0 {
					t.Fatalf("%v: accelerator filtered nothing (%d events)", mode, st.InstrEvents)
				}
			}
		})
	}
}

// TestDifferentialAcrossSeeds repeats the core property on different RNG
// seeds — the pointer/taint density dynamics are seed-sensitive, and a
// divergence on any seed indicates a generator/monitor inconsistency (one
// such latent bug was found exactly this way during development).
func TestDifferentialAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed differential is slow")
	}
	cases := []struct{ mon, bench string }{
		{"MemLeak", "bzip"}, {"TaintCheck", "omnet"}, {"MemCheck", "astar"},
	}
	for _, seed := range []uint64{2, 11} {
		for _, c := range cases {
			swState, swReports := runSoftware(t, c.mon, c.bench, seed, 50_000)
			hwState, hwReports, _ := runFADE(t, c.mon, c.bench, seed, 50_000, core.NonBlocking)
			swMem, hwMem := swState.Mem.Snapshot(), hwState.Mem.Snapshot()
			if len(swMem) != len(hwMem) {
				t.Fatalf("%s/%s seed %d: metadata size sw %d hw %d", c.mon, c.bench, seed, len(swMem), len(hwMem))
			}
			for k, v := range swMem {
				if hwMem[k] != v {
					t.Fatalf("%s/%s seed %d: md[%#x] sw %d hw %d", c.mon, c.bench, seed, k, v, hwMem[k])
				}
			}
			if swState.Regs.Snapshot() != hwState.Regs.Snapshot() {
				t.Fatalf("%s/%s seed %d: register metadata differs", c.mon, c.bench, seed)
			}
			swC, hwC := reportCounts(swReports), reportCounts(hwReports)
			for k, n := range swC {
				if hwC[k] != n {
					t.Fatalf("%s/%s seed %d: %s reports sw %d hw %d", c.mon, c.bench, seed, k, n, hwC[k])
				}
			}
		}
	}
}

// TestDifferentialWithInjectedBugs repeats the property on buggy programs:
// acceleration must not mask detections.
func TestDifferentialWithInjectedBugs(t *testing.T) {
	base, _ := trace.Lookup("omnet")
	leaky := *base
	leaky.Name = "omnet-leaky-test"
	leaky.Inject.LeakFrac = 0.4

	// Run directly against the modified (unregistered) profile.
	mon1, _ := New("MemLeak", 1)
	st1 := metadata.NewState()
	mon1.Init(st1)
	g := trace.New(&leaky, 3, 80_000)
	var seq uint64
	var swReports []Report
	for {
		in, ok := g.Next()
		if !ok {
			break
		}
		if !mon1.Monitored(in) {
			continue
		}
		res := mon1.Handle(mon1.EventOf(in, seq), st1, HandleCtx{CritRegs: true})
		seq++
		swReports = append(swReports, res.Reports...)
	}
	swReports = append(swReports, mon1.Finalize(st1)...)
	swLeaks := reportCounts(swReports)["memory-leak"]
	if swLeaks == 0 {
		t.Fatal("no leaks detected in software run")
	}

	// FADE run over the same stream.
	mon2, _ := New("MemLeak", 1)
	st2 := metadata.NewState()
	mon2.Init(st2)
	evq := queue.NewBounded[isa.Event](32)
	ufq := queue.NewBounded[core.Unfiltered](16)
	fu := core.New(core.DefaultConfig(core.NonBlocking), st2, evq, ufq, nil)
	if err := mon2.Program(core.ProgrammerFor(fu)); err != nil {
		t.Fatal(err)
	}
	var hwReports []Report
	var cycle uint64
	consume := func() {
		for {
			u, ok := ufq.Pop()
			if !ok {
				return
			}
			res := mon2.Handle(u.Ev, st2, HandleCtx{MDValid: u.MDValid, S1: u.MD.S1, S2: u.MD.S2, D: u.MD.D})
			hwReports = append(hwReports, res.Reports...)
			fu.Complete(u.Ev.Seq)
		}
	}
	g = trace.New(&leaky, 3, 80_000)
	seq = 0
	for {
		in, ok := g.Next()
		if !ok {
			break
		}
		if !mon2.Monitored(in) {
			continue
		}
		ev := mon2.EventOf(in, seq)
		seq++
		for !evq.Push(ev) {
			fu.Tick(cycle)
			cycle++
			consume()
		}
	}
	for !evq.Empty() || fu.Busy() {
		fu.Tick(cycle)
		cycle++
		consume()
	}
	hwReports = append(hwReports, mon2.Finalize(st2)...)
	hwLeaks := reportCounts(hwReports)["memory-leak"]
	if hwLeaks != swLeaks {
		t.Fatalf("leak reports differ: sw %d, hw %d", swLeaks, hwLeaks)
	}
}
