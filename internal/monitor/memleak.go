package monitor

import (
	"fmt"
	"sort"

	"fade/internal/core"
	"fade/internal/isa"
	"fade/internal/metadata"
	"fade/internal/trace"
)

// MemLeak identifies memory leaks through reference counting (Maebe et al.;
// Section 6). Critical metadata consist of the pointer/non-pointer status
// of each register and memory word; non-critical metadata bind each
// pointer-holding location to the context of the corresponding malloc — a
// unique id, PC, and a reference counter (Section 5.1). FADE performs clean
// checks to filter events whose operands are all non-pointers; any event
// touching a pointer is unfilterable, because reference counts must be
// maintained in software.
type MemLeak struct {
	contexts map[uint32]*allocContext // keyed by allocation base
	regBind  [isa.NumRegs]uint32      // register -> allocation base (0 = none)
	memBind  map[uint32]uint32        // metadata addr -> allocation base
	nextID   uint32
	reports  []Report
}

// allocContext is the malloc context of Section 5.1.
type allocContext struct {
	id       uint32
	pc       uint32
	base     uint32
	size     uint32
	refs     int
	freed    bool
	reported bool
}

// MemLeak metadata states.
const (
	mlNonPointer byte = 0
	mlPointer    byte = 1
)

// MemLeak event-table ids.
const (
	mlEvLoad  = 1
	mlEvStore = 2
	mlEvALU   = 3 // two register sources
	mlEvALU1  = 4 // single register source (reg-imm forms)
)

// Software handler costs in dynamic instructions. The slow path updates
// two reference counts and the location->context binding.
const (
	mlCostFast    = 18
	mlCostSlow    = 24
	mlCostMalloc  = 44
	mlCostFree    = 40
	mlCostStack   = 12
	mlCostPerWord = 4 // per 16 words of bulk shadow work
)

// NewMemLeak returns a fresh MemLeak monitor.
func NewMemLeak() *MemLeak {
	return &MemLeak{
		contexts: make(map[uint32]*allocContext),
		memBind:  make(map[uint32]uint32),
		nextID:   1,
	}
}

// Name implements Monitor.
func (m *MemLeak) Name() string { return "MemLeak" }

// Kind implements Monitor.
func (m *MemLeak) Kind() Kind { return PropagationTracking }

// Monitored selects instructions that may propagate a pointer value —
// integer computation and loads/stores — and eliminates floating-point
// instructions (Section 3.1).
func (m *MemLeak) Monitored(in isa.Instr) bool {
	switch in.Op {
	case isa.OpLoad, isa.OpStore, isa.OpALU:
		return true
	case isa.OpMalloc, isa.OpFree, isa.OpCall, isa.OpRet:
		return true
	}
	return false
}

// TracksStack implements Monitor: dead frames' pointer status is cleared.
func (m *MemLeak) TracksStack() bool { return true }

// EventOf implements Monitor.
func (m *MemLeak) EventOf(in isa.Instr, seq uint64) isa.Event {
	ev := isa.Event{
		PC: in.PC, Addr: in.Addr, Src1: in.Src1, Src2: in.Src2, Dest: in.Dest,
		Op: in.Op, Size: in.Size, Thread: in.Thread, Seq: seq,
	}
	switch in.Op {
	case isa.OpLoad:
		ev.ID, ev.Kind = mlEvLoad, isa.EvInstr
	case isa.OpStore:
		ev.ID, ev.Kind = mlEvStore, isa.EvInstr
	case isa.OpALU:
		if in.Src2 == isa.RegNone {
			ev.ID, ev.Kind = mlEvALU1, isa.EvInstr
		} else {
			ev.ID, ev.Kind = mlEvALU, isa.EvInstr
		}
	case isa.OpCall:
		ev.Kind = isa.EvStackCall
	case isa.OpRet:
		ev.Kind = isa.EvStackRet
	default:
		ev.Kind = isa.EvHighLevel
	}
	return ev
}

// Init implements Monitor: nothing holds pointers at program start (the
// zero state).
func (m *MemLeak) Init(st *metadata.State) {}

// Program implements Monitor. All events are single-shot clean checks
// against the non-pointer invariant, exactly the Fig. 6(b) example. The MD
// update logic propagates pointerness for unfilterable events: loads and
// stores copy the source status, computation ORs the sources (pointer
// arithmetic keeps pointerness).
func (m *MemLeak) Program(p core.Programmer) error {
	if err := p.SetInvariant(0, mlNonPointer); err != nil {
		return err
	}
	if err := p.SetInvariant(1, mlPointer); err != nil {
		return err
	}
	if err := p.SetStackInvariants(0, 0); err != nil {
		return err
	}

	memOp := core.OperandRule{Valid: true, Mem: true, MDBytes: 1, Mask: 0xFF, INVid: 0}
	regOp := core.OperandRule{Valid: true, Mem: false, MDBytes: 1, Mask: 0xFF, INVid: 0}

	entries := map[int]core.Entry{
		mlEvLoad:  {S1: memOp, D: regOp, CC: true, NB: core.NBPropS1, HandlerPC: 0x4000},
		mlEvStore: {S1: regOp, D: memOp, CC: true, NB: core.NBPropS1, HandlerPC: 0x4010},
		mlEvALU:   {S1: regOp, S2: regOp, D: regOp, CC: true, NB: core.NBOr, HandlerPC: 0x4020},
		mlEvALU1:  {S1: regOp, D: regOp, CC: true, NB: core.NBPropS1, HandlerPC: 0x4020},
	}
	for id, e := range entries {
		if err := p.SetEntry(id, e); err != nil {
			return err
		}
	}
	return nil
}

// bind points a location (register or memory word) at an allocation,
// maintaining reference counts and reporting a leak when an allocation
// loses its last reference while still live.
func (m *MemLeak) unref(base uint32, ev isa.Event) {
	ctx, ok := m.contexts[base]
	if !ok {
		return
	}
	ctx.refs--
	if ctx.refs <= 0 && !ctx.freed && !ctx.reported {
		ctx.reported = true
		m.reports = append(m.reports, Report{
			Tool: m.Name(), Kind: "memory-leak", PC: ev.PC, Addr: ctx.base,
			Seq: ev.Seq, Thread: ev.Thread,
			Detail: fmt.Sprintf("allocation #%d (%d bytes, malloc pc=%#x) lost its last reference", ctx.id, ctx.size, ctx.pc),
		})
	}
}

func (m *MemLeak) ref(base uint32) {
	if ctx, ok := m.contexts[base]; ok {
		ctx.refs++
	}
}

func (m *MemLeak) setRegBind(r isa.Reg, base uint32, ev isa.Event) {
	if r >= isa.NumRegs {
		return
	}
	old := m.regBind[r]
	if old == base {
		return
	}
	if old != 0 {
		m.unref(old, ev)
	}
	m.regBind[r] = base
	if base != 0 {
		m.ref(base)
	}
}

func (m *MemLeak) setMemBind(addr uint32, base uint32, ev isa.Event) {
	key := metadata.MDAddr(addr)
	old := m.memBind[key]
	if old == base {
		return
	}
	if old != 0 {
		m.unref(old, ev)
	}
	if base == 0 {
		delete(m.memBind, key)
	} else {
		m.memBind[key] = base
		m.ref(base)
	}
}

// Handle implements Monitor.
func (m *MemLeak) Handle(ev isa.Event, st *metadata.State, hc HandleCtx) HandleResult {
	switch ev.Kind {
	case isa.EvStackCall, isa.EvStackRet:
		// Frame words lose pointer status in bulk. Bindings for stack
		// addresses are not tracked (see package tests), so only the
		// critical metadata range-set happens here.
		st.Mem.SetRange(ev.Addr, ev.Size, mlNonPointer)
		return HandleResult{Cost: mlCostStack + int(ev.Size/64)*mlCostPerWord, Class: ClassStack}
	case isa.EvHighLevel:
		return m.handleHighLevel(ev, st)
	}

	switch ev.Op {
	case isa.OpLoad:
		s1, _, d := operands(hc, st, ev, true, false)
		if s1 == mlNonPointer && d == mlNonPointer {
			return HandleResult{Cost: mlCostFast, Class: ClassCC}
		}
		if hc.CritRegs {
			st.Regs.Store(ev.Dest, s1)
		}
		m.setRegBind(ev.Dest, m.memBind[metadata.MDAddr(ev.Addr)], ev)
		return m.slowResult(ev)
	case isa.OpStore:
		s1, _, d := operands(hc, st, ev, false, true)
		if s1 == mlNonPointer && d == mlNonPointer {
			return HandleResult{Cost: mlCostFast, Class: ClassCC}
		}
		st.Mem.Store(ev.Addr, s1)
		if !isStackAddr(ev.Addr) {
			var base uint32
			if s1 == mlPointer && ev.Src1 < isa.NumRegs {
				base = m.regBind[ev.Src1]
			}
			m.setMemBind(ev.Addr, base, ev)
		}
		return m.slowResult(ev)
	default: // integer ALU
		s1, s2, d := operands(hc, st, ev, false, false)
		if s1 == mlNonPointer && s2 == mlNonPointer && d == mlNonPointer {
			return HandleResult{Cost: mlCostFast, Class: ClassCC}
		}
		if hc.CritRegs {
			st.Regs.Store(ev.Dest, s1|s2)
		}
		var base uint32
		if s1 == mlPointer && ev.Src1 < isa.NumRegs {
			base = m.regBind[ev.Src1]
		} else if s2 == mlPointer && ev.Src2 < isa.NumRegs {
			base = m.regBind[ev.Src2]
		}
		m.setRegBind(ev.Dest, base, ev)
		return m.slowResult(ev)
	}
}

func (m *MemLeak) slowResult(ev isa.Event) HandleResult {
	res := HandleResult{Cost: mlCostSlow, Class: ClassSlow}
	if n := len(m.reports); n > 0 {
		res.Reports = m.reports
		m.reports = nil
	}
	return res
}

func (m *MemLeak) handleHighLevel(ev isa.Event, st *metadata.State) HandleResult {
	words := int(ev.Size / metadata.WordBytes)
	switch ev.Op {
	case isa.OpMalloc:
		ctx := &allocContext{id: m.nextID, pc: ev.PC, base: ev.Addr, size: ev.Size, refs: 0}
		m.nextID++
		m.contexts[ev.Addr] = ctx
		st.Mem.SetRange(ev.Addr, ev.Size, mlNonPointer)
		// The returned pointer lands in the destination register.
		if ev.Dest != isa.RegNone {
			st.Regs.Store(ev.Dest, mlPointer)
			m.setRegBind(ev.Dest, ev.Addr, ev)
		}
		return HandleResult{Cost: mlCostMalloc + words/16*mlCostPerWord, Class: ClassHigh}
	case isa.OpFree:
		if ctx, ok := m.contexts[ev.Addr]; ok {
			ctx.freed = true
		}
		st.Mem.SetRange(ev.Addr, ev.Size, mlNonPointer)
		return HandleResult{Cost: mlCostFree + words/16*mlCostPerWord, Class: ClassHigh}
	}
	return HandleResult{Cost: mlCostFast, Class: ClassHigh}
}

// Finalize implements Monitor: report allocations that are unreferenced and
// unfreed at program exit (definite leaks not yet reported in-line).
func (m *MemLeak) Finalize(st *metadata.State) []Report {
	out := append([]Report(nil), m.reports...)
	m.reports = nil
	var bases []uint32
	for b := range m.contexts {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	for _, b := range bases {
		ctx := m.contexts[b]
		if !ctx.freed && !ctx.reported && ctx.refs <= 0 {
			ctx.reported = true
			out = append(out, Report{
				Tool: m.Name(), Kind: "memory-leak", Addr: ctx.base,
				Detail: fmt.Sprintf("allocation #%d (%d bytes, malloc pc=%#x) unreferenced at exit", ctx.id, ctx.size, ctx.pc),
			})
		}
	}
	return out
}

// Leaks returns the number of leak reports raised so far (for examples).
func (m *MemLeak) Leaks() int {
	n := 0
	for _, ctx := range m.contexts {
		if ctx.reported {
			n++
		}
	}
	return n
}

func isStackAddr(addr uint32) bool {
	return addr >= trace.StackTop-8*trace.StackStride
}
