package monitor

import (
	"testing"

	"fade/internal/core"
	"fade/internal/isa"
	"fade/internal/metadata"
	"fade/internal/queue"
	"fade/internal/trace"
)

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		m, err := New(name, 4)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if m.Name() != name {
			t.Fatalf("monitor %s reports name %s", name, m.Name())
		}
	}
	if _, err := New("Bogus", 1); err == nil {
		t.Fatal("unknown monitor constructed")
	}
}

func TestKinds(t *testing.T) {
	kinds := map[string]Kind{
		"AddrCheck": MemoryTracking, "AtomCheck": MemoryTracking,
		"MemCheck": PropagationTracking, "MemLeak": PropagationTracking,
		"TaintCheck": PropagationTracking,
	}
	for name, want := range kinds {
		m, _ := New(name, 4)
		if m.Kind() != want {
			t.Errorf("%s kind = %v, want %v", name, m.Kind(), want)
		}
	}
	if MemoryTracking.String() == "" || PropagationTracking.String() == "" {
		t.Fatal("kind names empty")
	}
}

func TestClassStrings(t *testing.T) {
	for c := ClassCC; c <= ClassHigh; c++ {
		if c.String() == "" {
			t.Errorf("class %d empty name", c)
		}
	}
}

func TestAllMonitorsProgramCleanly(t *testing.T) {
	for _, name := range Names() {
		m, _ := New(name, 4)
		fu := newFU(core.NonBlocking)
		if err := m.Program(core.ProgrammerFor(fu)); err != nil {
			t.Fatalf("%s.Program: %v", name, err)
		}
	}
}

// Every instruction event a monitor emits must reference a programmed
// event-table entry — otherwise FADE silently treats it as unfilterable.
func TestEventIDsAreProgrammed(t *testing.T) {
	for _, name := range Names() {
		bench := "gcc"
		threads := 1
		if name == "AtomCheck" {
			bench = "streamc"
			threads = 4
		}
		m, _ := New(name, threads)
		fu := newFU(core.NonBlocking)
		if err := m.Program(core.ProgrammerFor(fu)); err != nil {
			t.Fatal(err)
		}
		prof, _ := trace.Lookup(bench)
		g := trace.New(prof, 1, 30_000)
		for {
			in, ok := g.Next()
			if !ok {
				break
			}
			if !m.Monitored(in) {
				continue
			}
			ev := m.EventOf(in, 0)
			if ev.Kind != isa.EvInstr {
				continue
			}
			if _, programmed := fu.Table.Get(int(ev.ID)); !programmed {
				t.Fatalf("%s: event id %d for %v not programmed", name, ev.ID, in.Op)
			}
		}
	}
}

func newFU(mode core.Mode) *core.FilteringUnit {
	md := metadata.NewState()
	evq := queue.NewBounded[isa.Event](64)
	ufq := queue.NewBounded[core.Unfiltered](16)
	cfg := core.DefaultConfig(mode)
	return core.New(cfg, md, evq, ufq, nil)
}

func TestTracksStack(t *testing.T) {
	want := map[string]bool{
		"AddrCheck": false, "AtomCheck": false,
		"MemCheck": true, "MemLeak": true, "TaintCheck": true,
	}
	for name, w := range want {
		m, _ := New(name, 4)
		if m.TracksStack() != w {
			t.Errorf("%s TracksStack = %v", name, m.TracksStack())
		}
	}
}

func TestStackEventsOnlyFromTrackingMonitors(t *testing.T) {
	call := isa.Instr{Op: isa.OpCall, Addr: 0x100, Size: 64}
	for _, name := range Names() {
		m, _ := New(name, 4)
		if m.Monitored(call) != m.TracksStack() {
			t.Errorf("%s: Monitored(call)=%v but TracksStack=%v",
				name, m.Monitored(call), m.TracksStack())
		}
	}
}

func TestOperandsFallbackReadsState(t *testing.T) {
	st := metadata.NewState()
	st.Mem.Store(0x100, 7)
	st.Regs.Store(2, 3)
	st.Regs.Store(4, 5)
	ev := isa.Event{Addr: 0x100, Src1: 2, Src2: 4, Dest: 6}
	s1, s2, d := operands(HandleCtx{}, st, ev, true, false)
	if s1 != 7 || s2 != 5 || d != 0 {
		t.Fatalf("fallback operands = %d,%d,%d", s1, s2, d)
	}
	s1, _, d = operands(HandleCtx{}, st, ev, false, true)
	if s1 != 3 || d != 7 {
		t.Fatalf("store-shape operands = %d,%d", s1, d)
	}
}

func TestOperandsSnapshotWins(t *testing.T) {
	st := metadata.NewState()
	st.Mem.Store(0x100, 9)
	ev := isa.Event{Addr: 0x100, Src1: 2}
	hc := HandleCtx{MDValid: true, S1: 1, S2: 2, D: 3}
	s1, s2, d := operands(hc, st, ev, true, false)
	if s1 != 1 || s2 != 2 || d != 3 {
		t.Fatalf("snapshot ignored: %d,%d,%d", s1, s2, d)
	}
}

func TestReportString(t *testing.T) {
	r := Report{Tool: "X", Kind: "k", PC: 1, Addr: 2, Seq: 3, Detail: "d"}
	if r.String() == "" {
		t.Fatal("empty report string")
	}
}

// TestMMIOProgrammingEquivalence: programming a monitor through the
// memory-mapped window yields exactly the same accelerator configuration as
// direct programming, for every monitor.
func TestMMIOProgrammingEquivalence(t *testing.T) {
	for _, name := range Names() {
		direct := newFU(core.NonBlocking)
		viaMMIO := newFU(core.NonBlocking)

		m1, _ := New(name, 4)
		m2, _ := New(name, 4)
		if err := m1.Program(core.ProgrammerFor(direct)); err != nil {
			t.Fatal(err)
		}
		if err := m2.Program(core.MMIOProgrammer(viaMMIO)); err != nil {
			t.Fatalf("%s via MMIO: %v", name, err)
		}
		for id := 0; id < core.EventTableEntries; id++ {
			a, okA := direct.Table.Get(id)
			b, okB := viaMMIO.Table.Get(id)
			if okA != okB || a != b {
				t.Fatalf("%s: entry %d differs:\n  direct %v (%v)\n  mmio   %v (%v)", name, id, a, okA, b, okB)
			}
		}
		for i := uint8(0); i < core.InvRegs; i++ {
			if direct.Inv.Get(i) != viaMMIO.Inv.Get(i) {
				t.Fatalf("%s: INV[%d] differs", name, i)
			}
		}
		c1, r1, ok1 := direct.Inv.StackValues()
		c2, r2, ok2 := viaMMIO.Inv.StackValues()
		if c1 != c2 || r1 != r2 || ok1 != ok2 {
			t.Fatalf("%s: stack values differ", name)
		}
	}
}
