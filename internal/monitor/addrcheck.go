package monitor

import (
	"fade/internal/core"
	"fade/internal/isa"
	"fade/internal/metadata"
)

// AddrCheck checks whether memory accesses go to allocated memory
// (Nethercote & Seward's addrcheck; Section 6). It is a memory-tracking
// monitor that processes non-stack memory instructions only. Critical
// metadata encode two states per memory word: unallocated (0) or allocated
// (1). Non-critical metadata record the allocation's bounds for bug
// reporting. FADE filters accesses to allocated data through clean checks.
type AddrCheck struct {
	// allocs maps allocation base -> size, the non-critical bookkeeping
	// used to produce detailed reports.
	allocs map[uint32]uint32
}

// AddrCheck metadata states.
const (
	addrUnallocated byte = 0
	addrAllocated   byte = 1
)

// AddrCheck event-table ids.
const (
	addrEvLoad  = 1
	addrEvStore = 2
)

// Software handler costs in dynamic instructions. The fast path is an
// inlined shadow load + compare + predicted-taken branch; the slow path
// formats a diagnostic. High-level handlers walk the shadow range.
const (
	addrCostFast     = 5
	addrCostSlow     = 80
	addrCostHighBase = 26
	// addrCostPerWord is charged per 16 application words (one shadow
	// word-set instruction covers 16 metadata bytes via wide stores).
	addrCostPer16Words = 1
)

// NewAddrCheck returns a fresh AddrCheck monitor.
func NewAddrCheck() *AddrCheck {
	return &AddrCheck{allocs: make(map[uint32]uint32)}
}

// Name implements Monitor.
func (m *AddrCheck) Name() string { return "AddrCheck" }

// Kind implements Monitor.
func (m *AddrCheck) Kind() Kind { return MemoryTracking }

// Monitored selects non-stack loads and stores, plus the heap high-level
// events that maintain allocation state.
func (m *AddrCheck) Monitored(in isa.Instr) bool {
	switch in.Op {
	case isa.OpLoad, isa.OpStore:
		return !in.Stack
	case isa.OpMalloc, isa.OpFree:
		return true
	}
	return false
}

// TracksStack implements Monitor: AddrCheck ignores stack accesses, so it
// does not shadow stack updates (Section 7.2).
func (m *AddrCheck) TracksStack() bool { return false }

// EventOf implements Monitor.
func (m *AddrCheck) EventOf(in isa.Instr, seq uint64) isa.Event {
	ev := isa.Event{
		PC: in.PC, Addr: in.Addr, Src1: in.Src1, Src2: in.Src2, Dest: in.Dest,
		Op: in.Op, Size: in.Size, Thread: in.Thread, Seq: seq,
	}
	switch in.Op {
	case isa.OpLoad:
		ev.ID = addrEvLoad
		ev.Kind = isa.EvInstr
	case isa.OpStore:
		ev.ID = addrEvStore
		ev.Kind = isa.EvInstr
	default:
		ev.Kind = isa.EvHighLevel
	}
	return ev
}

// Init implements Monitor: statically allocated regions are allocated.
func (m *AddrCheck) Init(st *metadata.State) {
	initStatics(st, addrAllocated)
}

// Program implements Monitor. Loads check the source address's metadata
// against the "allocated" invariant; stores check the destination
// address's. Accesses to unallocated memory are unfilterable and dispatch
// the diagnostic handler. No metadata changes on instruction events, so no
// MD-update rule is needed.
func (m *AddrCheck) Program(p core.Programmer) error {
	if err := p.SetInvariant(0, addrUnallocated); err != nil {
		return err
	}
	if err := p.SetInvariant(1, addrAllocated); err != nil {
		return err
	}
	load := core.Entry{
		S1:        core.OperandRule{Valid: true, Mem: true, MDBytes: 1, Mask: 0xFF, INVid: 1},
		CC:        true,
		HandlerPC: 0x1000,
	}
	if err := p.SetEntry(addrEvLoad, load); err != nil {
		return err
	}
	store := core.Entry{
		D:         core.OperandRule{Valid: true, Mem: true, MDBytes: 1, Mask: 0xFF, INVid: 1},
		CC:        true,
		HandlerPC: 0x1010,
	}
	return p.SetEntry(addrEvStore, store)
}

// Handle implements Monitor.
func (m *AddrCheck) Handle(ev isa.Event, st *metadata.State, hc HandleCtx) HandleResult {
	switch ev.Kind {
	case isa.EvHighLevel:
		return m.handleHighLevel(ev, st)
	case isa.EvStackCall, isa.EvStackRet:
		// Not tracked; nothing to do.
		return HandleResult{Cost: 0, Class: ClassStack}
	}
	var md byte
	if ev.Op == isa.OpStore {
		_, _, md = operands(hc, st, ev, false, true)
	} else {
		md, _, _ = operands(hc, st, ev, true, false)
	}
	if md == addrAllocated {
		return HandleResult{Cost: addrCostFast, Class: ClassCC}
	}
	kind := "invalid-read"
	if ev.Op == isa.OpStore {
		kind = "invalid-write"
	}
	return HandleResult{
		Cost:  addrCostSlow,
		Class: ClassSlow,
		Reports: []Report{{
			Tool: m.Name(), Kind: kind, PC: ev.PC, Addr: ev.Addr, Seq: ev.Seq,
			Thread: ev.Thread, Detail: "access to unallocated memory",
		}},
	}
}

func (m *AddrCheck) handleHighLevel(ev isa.Event, st *metadata.State) HandleResult {
	words := int(ev.Size / metadata.WordBytes)
	cost := addrCostHighBase + (words/16+1)*addrCostPer16Words
	switch ev.Op {
	case isa.OpMalloc:
		m.allocs[ev.Addr] = ev.Size
		st.Mem.SetRange(ev.Addr, ev.Size, addrAllocated)
	case isa.OpFree:
		delete(m.allocs, ev.Addr)
		st.Mem.SetRange(ev.Addr, ev.Size, addrUnallocated)
	}
	return HandleResult{Cost: cost, Class: ClassHigh}
}

// Finalize implements Monitor.
func (m *AddrCheck) Finalize(st *metadata.State) []Report { return nil }
