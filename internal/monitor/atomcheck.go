package monitor

import (
	"fmt"

	"fade/internal/core"
	"fade/internal/isa"
	"fade/internal/metadata"
)

// AtomCheck detects atomicity violations by checking access interleavings
// (AVIO-style; Lu et al., Section 6). It keeps one byte of critical
// metadata per application word: an accessed bit plus the id of the last
// thread to touch the word. Non-critical metadata record the access types
// (read/write) of recent accesses per word, used to match unserializable
// interleaving patterns.
//
// AtomCheck is the partial-filtering client (Section 4.1): the hardware
// checks whether the word was last referenced by the same thread. When the
// check succeeds — the common case — a short handler merely updates the
// access-type table; otherwise a complex handler searches for an
// interleaving violation.
type AtomCheck struct {
	threads int
	// hist keeps the last two accesses per word for AVIO pattern
	// matching.
	hist map[uint32]*accessHist
}

type accessKind uint8

const (
	accRead accessKind = iota
	accWrite
)

type accessHist struct {
	prevThread uint8
	prevKind   accessKind
	lastThread uint8
	lastKind   accessKind
	n          int
}

// atomMDByte encodes the critical metadata for a word last accessed by
// thread t: the accessed bit (0x80) plus the thread id.
func atomMDByte(t uint8) byte { return 0x80 | t&0x07 }

// AtomCheck event-table layout: per-thread entries (the event id encodes
// the accessing thread, programmed per application as Section 4.1 allows).
// Short-handler entries are reached via the Next pointer on a successful
// partial check.
const (
	atomEvLoadBase  = 1  // ids 1..4: load by thread 0..3
	atomEvStoreBase = 5  // ids 5..8: store by thread 0..3
	atomEvShortBase = 16 // ids 16..23: short-handler descriptors
	// atomInvBase is the first INV register holding a thread's
	// "last accessed by me" byte.
	atomInvBase = 4
)

// Software handler costs in dynamic instructions. AtomCheck events are
// costly in software ("numerous monitoring actions", Section 7.2): the
// unaccelerated tool always walks the per-thread tables.
const (
	// atomCostSame is the full software cost of a same-thread access:
	// the interleaving check walks the per-thread access tables even
	// when it ultimately just updates them.
	atomCostSame = 20
	// atomCostShortBody is the cost of the update body alone, dispatched
	// when FADE's partial check already succeeded in hardware.
	atomCostShortBody = 3
	atomCostComplex   = 22
	atomCostHigh      = 24
)

// MaxAtomThreads is the number of hardware threads AtomCheck supports,
// bounded by the INV RF capacity.
const MaxAtomThreads = 4

// NewAtomCheck returns an AtomCheck instance for the given thread count
// (1..4; the paper's benchmarks run four threads).
func NewAtomCheck(threads int) *AtomCheck {
	if threads <= 0 {
		threads = MaxAtomThreads
	}
	if threads > MaxAtomThreads {
		panic(fmt.Sprintf("monitor: AtomCheck supports at most %d threads", MaxAtomThreads))
	}
	return &AtomCheck{threads: threads, hist: make(map[uint32]*accessHist)}
}

// Name implements Monitor.
func (m *AtomCheck) Name() string { return "AtomCheck" }

// Kind implements Monitor.
func (m *AtomCheck) Kind() Kind { return MemoryTracking }

// Monitored selects non-stack memory accesses (stacks are thread-private)
// and heap events (freed memory resets its interleaving state).
func (m *AtomCheck) Monitored(in isa.Instr) bool {
	switch in.Op {
	case isa.OpLoad, isa.OpStore:
		return !in.Stack
	case isa.OpMalloc, isa.OpFree:
		return true
	}
	return false
}

// TracksStack implements Monitor.
func (m *AtomCheck) TracksStack() bool { return false }

// EventOf implements Monitor: the event id encodes op and thread.
func (m *AtomCheck) EventOf(in isa.Instr, seq uint64) isa.Event {
	ev := isa.Event{
		PC: in.PC, Addr: in.Addr, Src1: in.Src1, Src2: in.Src2, Dest: in.Dest,
		Op: in.Op, Size: in.Size, Thread: in.Thread, Seq: seq,
	}
	switch in.Op {
	case isa.OpLoad:
		ev.ID, ev.Kind = uint8(atomEvLoadBase+int(in.Thread)), isa.EvInstr
	case isa.OpStore:
		ev.ID, ev.Kind = uint8(atomEvStoreBase+int(in.Thread)), isa.EvInstr
	default:
		ev.Kind = isa.EvHighLevel
	}
	return ev
}

// Init implements Monitor: no word has been accessed (the zero state).
func (m *AtomCheck) Init(st *metadata.State) {}

// Program implements Monitor: per-thread partial-filtering entries. The
// hardware check compares the accessed word's metadata to the
// "last-accessed-by-me" invariant of the event's thread; on failure the MD
// update logic installs the new owner byte (constant rule) while the
// complex handler runs.
func (m *AtomCheck) Program(p core.Programmer) error {
	for t := 0; t < m.threads; t++ {
		if err := p.SetInvariant(atomInvBase+t, atomMDByte(uint8(t))); err != nil {
			return err
		}
	}
	for t := 0; t < m.threads; t++ {
		short := core.Entry{HandlerPC: uint32(0x5100 + t*0x10)}
		if err := p.SetEntry(atomEvShortBase+t, short); err != nil {
			return err
		}
		// The accessed word is the D operand for loads and stores alike:
		// it is both the checked metadata and the target of the MD
		// update logic's constant rule (the new owner byte).
		memOp := core.OperandRule{Valid: true, Mem: true, MDBytes: 1, Mask: 0xFF, INVid: uint8(atomInvBase + t)}
		load := core.Entry{
			D: memOp, CC: true, Partial: true, Next: uint8(atomEvShortBase + t),
			NB: core.NBConst, NBInv: uint8(atomInvBase + t),
			HandlerPC: uint32(0x5000 + t*0x10),
		}
		if err := p.SetEntry(atomEvLoadBase+t, load); err != nil {
			return err
		}
		store := core.Entry{
			D: memOp, CC: true, Partial: true, Next: uint8(atomEvShortBase + t),
			NB: core.NBConst, NBInv: uint8(atomInvBase + t),
			HandlerPC: uint32(0x5000 + t*0x10 + 8),
		}
		if err := p.SetEntry(atomEvStoreBase+t, store); err != nil {
			return err
		}
	}
	return nil
}

// Handle implements Monitor.
func (m *AtomCheck) Handle(ev isa.Event, st *metadata.State, hc HandleCtx) HandleResult {
	if ev.Kind == isa.EvHighLevel {
		st.Mem.SetRange(ev.Addr, ev.Size, 0)
		first := metadata.MDAddr(ev.Addr)
		last := metadata.MDAddr(ev.Addr + ev.Size - 1)
		for a := first; a <= last && a >= first; a++ {
			delete(m.hist, a)
		}
		return HandleResult{Cost: atomCostHigh + int(ev.Size/64), Class: ClassHigh}
	}

	kind := accRead
	if ev.Op == isa.OpStore {
		kind = accWrite
	}
	me := atomMDByte(ev.Thread)
	// The accessed word's metadata rides in the D operand slot for both
	// loads and stores (matching the event-table operand rules).
	_, _, cur := operands(hc, st, ev, false, true)

	if cur == me {
		// Same-thread access: the partial check would have passed. In
		// software the check itself dominates; under FADE only the
		// short update body runs.
		m.recordAccess(ev, kind)
		return HandleResult{Cost: atomCostSame, ShortCost: atomCostShortBody, Class: ClassCC}
	}

	// Remote (or first) access: complex handler. Check for an
	// unserializable interleaving before taking ownership.
	var reports []Report
	if r, bad := m.checkViolation(ev, kind); bad {
		reports = append(reports, r)
	}
	m.recordAccess(ev, kind)
	st.Mem.Store(ev.Addr, me)
	return HandleResult{Cost: atomCostComplex, Class: ClassSlow, Reports: reports}
}

// recordAccess appends the access to the word's two-deep history.
func (m *AtomCheck) recordAccess(ev isa.Event, kind accessKind) {
	key := metadata.MDAddr(ev.Addr)
	h, ok := m.hist[key]
	if !ok {
		h = &accessHist{}
		m.hist[key] = h
	}
	h.prevThread, h.prevKind = h.lastThread, h.lastKind
	h.lastThread, h.lastKind = ev.Thread, kind
	if h.n < 2 {
		h.n++
	}
}

// checkViolation matches the four unserializable interleavings of AVIO:
// a remote access between two local accesses with an incompatible pattern.
func (m *AtomCheck) checkViolation(ev isa.Event, kind accessKind) (Report, bool) {
	h, ok := m.hist[metadata.MDAddr(ev.Addr)]
	if !ok || h.n < 2 {
		return Report{}, false
	}
	// Current access is by ev.Thread; h.last is the interleaved access;
	// h.prev must be the current thread's preceding access.
	if h.lastThread == ev.Thread || h.prevThread != ev.Thread {
		return Report{}, false
	}
	local1, remote, local2 := h.prevKind, h.lastKind, kind
	unserializable := (local1 == accRead && remote == accWrite && local2 == accRead) ||
		(local1 == accWrite && remote == accWrite && local2 == accRead) ||
		(local1 == accRead && remote == accWrite && local2 == accWrite) ||
		(local1 == accWrite && remote == accRead && local2 == accWrite)
	if !unserializable {
		return Report{}, false
	}
	return Report{
		Tool: m.Name(), Kind: "atomicity-violation", PC: ev.PC, Addr: ev.Addr,
		Seq: ev.Seq, Thread: ev.Thread,
		Detail: fmt.Sprintf("unserializable interleaving %v-%v-%v with thread %d",
			accName(local1), accName(remote), accName(local2), h.lastThread),
	}, true
}

func accName(k accessKind) string {
	if k == accWrite {
		return "W"
	}
	return "R"
}

// Finalize implements Monitor.
func (m *AtomCheck) Finalize(st *metadata.State) []Report { return nil }
