// Package fabric is the fault-tolerant distributed sweep layer: a
// coordinator that enumerates an experiment's cells (experiments.CellsFor),
// leases them to workers over HTTP, and assembles the final table
// byte-identically to a local run via the content-addressed result cache.
//
// The unit of distribution is the cell's canonical runspec hash — the
// same identity the cache and the -shard flag use — so every exchange is
// idempotent: a worker that executes a cell twice, a completion that
// arrives after its lease expired, or a retried upload all converge on
// the same cache entry. Robustness comes from the lease state machine
// (pending → leased → done, with expiry re-queueing a cell up to
// Options.MaxRetries times before it is marked exhausted) and from the
// degradation ladder: exhausted cells — and, after a no-worker grace
// window, all pending cells — are executed locally by the coordinator
// itself, so a sweep never stalls on a dead fleet. When even local
// execution fails, the sweep returns ErrIncomplete naming the failed
// cells; a partial table is flagged, never silently truncated.
//
// Workers (RunWorker, cmd/fadeworker) are thin loops over the
// internal/client retrying HTTP client: lease, heartbeat at a third of
// the TTL, execute through their own result cache, upload the encoded
// outcome, repeat until the coordinator reports the sweep done. The wire
// protocol is the fadeserve idiom — JSON bodies, the
// {"error":{"code","message"}} envelope, Retry-After backpressure — see
// docs/SERVING.md for the endpoint reference and DESIGN.md §4.8 for the
// architecture.
package fabric
