package fabric

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fade/internal/rcache"
)

// TestFabricMetricsDocumented pins the fabric.* namespace to
// docs/METRICS.md the same way the cache.* and serve.* namespaces are
// pinned: every emitted name must appear in the doc.
func TestFabricMetricsDocumented(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "METRICS.md"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator(Options{Cache: rcache.NewMem(8)})
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Registry().Snapshot()
	if len(snap.Values) == 0 {
		t.Fatal("coordinator registry emitted nothing")
	}
	for _, v := range snap.Values {
		if !strings.HasPrefix(v.Name, "fabric.") {
			t.Errorf("coordinator registry emits non-fabric metric %q", v.Name)
		}
		if !strings.Contains(string(doc), v.Name) {
			t.Errorf("metric %q not documented in docs/METRICS.md", v.Name)
		}
	}
}

// TestFabricRoutesDocumented pins every fabric route to docs/SERVING.md,
// mirroring internal/serve's coverage test.
func TestFabricRoutesDocumented(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "SERVING.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, route := range Routes {
		if !strings.Contains(string(doc), route) {
			t.Errorf("route %q is not documented in docs/SERVING.md", route)
		}
	}
	for _, code := range []string{ErrCodeLeaseLost, ErrCodeUnknownCell, ErrCodeBadOutcome} {
		if !strings.Contains(string(doc), "`"+code+"`") {
			t.Errorf("error code %q is not documented in docs/SERVING.md", code)
		}
	}
}
