package fabric

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"fade/internal/client"
	"fade/internal/experiments"
	"fade/internal/rcache"
	"fade/internal/runspec"
	"fade/internal/system"
)

// fakeClock is a manually-advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// testCell builds an addressable (hashable) cell without needing it to be
// executable — lifecycle tests never simulate.
func testCell(label string) experiments.Cell {
	return experiments.Cell{
		Label: label,
		Spec:  runspec.Spec{Kind: runspec.KindRun, Benchmark: label, Monitor: "MemLeak", Instrs: 1000, Seed: 1},
	}
}

// validOutcome returns bytes that pass the coordinator's decode check.
func validOutcome(t *testing.T) []byte {
	t.Helper()
	b, err := system.EncodeOutcome(&system.Outcome{Baseline: &system.BaselineOutcome{Cycles: 1, WarmBoundary: 1}})
	if err != nil {
		t.Fatalf("encoding outcome: %v", err)
	}
	return b
}

// TestLeaseLifecycle drives the full state machine under a fake clock:
// grant → heartbeat renewal → expiry → re-queue → retry-cap exhaustion →
// stale completion still accepted → duplicate flagged.
func TestLeaseLifecycle(t *testing.T) {
	clk := newFakeClock()
	coord, err := NewCoordinator(Options{
		Cache:      rcache.NewMem(8),
		LeaseTTL:   10 * time.Second,
		MaxRetries: 2,
		Now:        clk.now,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	cell := testCell("astar")
	hash := cell.Spec.Hash()
	coord.Add([]experiments.Cell{cell})
	coord.Seal()

	// Grant to worker A.
	g1, done, _ := coord.Lease("A")
	if g1 == nil || done {
		t.Fatalf("first lease: grant %v done %v, want a grant", g1, done)
	}
	if g1.Attempt != 1 || g1.Label != "astar" || g1.TTLMS != 10_000 {
		t.Fatalf("grant = %+v, want attempt 1, label astar, ttl 10000ms", g1)
	}

	// Heartbeats renew the full TTL: at t=6s and t=15s the lease is alive
	// only because the first renewal pushed the deadline to t=16s.
	clk.advance(6 * time.Second)
	if !coord.Heartbeat("A", g1.ID) {
		t.Fatal("heartbeat at t=6s failed on a live lease")
	}
	clk.advance(9 * time.Second)
	if !coord.Heartbeat("A", g1.ID) {
		t.Fatal("heartbeat at t=15s failed on a renewed lease")
	}

	// Let it expire (renewed deadline t=25s; jump past it). The next
	// lease call from worker B runs the expiry scan and gets the cell.
	clk.advance(11 * time.Second)
	g2, done, _ := coord.Lease("B")
	if g2 == nil || done {
		t.Fatalf("lease after expiry: grant %v done %v, want re-grant", g2, done)
	}
	if g2.Attempt != 2 {
		t.Fatalf("re-grant attempt = %d, want 2", g2.Attempt)
	}
	if coord.Heartbeat("A", g1.ID) {
		t.Fatal("heartbeat on the expired lease succeeded")
	}
	st := coord.Stats()
	if st.LeasesExpired != 1 || st.Retries != 1 || st.LeasesGranted != 2 {
		t.Fatalf("stats = %+v, want expired 1, retries 1, granted 2", st)
	}

	// Expire attempt 2, re-grant (attempt 3), expire again: attempts (3)
	// now exceed MaxRetries (2) → exhausted, not re-queued.
	clk.advance(11 * time.Second)
	coord.Expire()
	g3, _, _ := coord.Lease("B")
	if g3 == nil || g3.Attempt != 3 {
		t.Fatalf("third grant = %+v, want attempt 3", g3)
	}
	clk.advance(11 * time.Second)
	coord.Expire()
	st = coord.Stats()
	if st.Exhausted != 1 || st.Retries != 2 || st.LeasesExpired != 3 {
		t.Fatalf("stats = %+v, want exhausted 1, retries 2, expired 3", st)
	}
	if g, done, _ := coord.Lease("B"); g != nil || done {
		t.Fatalf("lease on exhausted sweep: grant %v done %v, want neither (local executor owns it)", g, done)
	}

	// A stale completion — worker A's long-dead first lease — still lands
	// the result: the cell's identity is its content hash.
	payload := validOutcome(t)
	dup, err := coord.Complete("A", g1.ID, hash, payload)
	if err != nil || dup {
		t.Fatalf("stale complete: dup %v err %v, want accepted", dup, err)
	}
	if _, _, ok := coord.opts.Cache.Get(hash); !ok {
		t.Fatal("completed outcome is not in the coordinator cache")
	}
	// Upload again: duplicate, not an error, nothing re-cached.
	dup, err = coord.Complete("B", g3.ID, hash, payload)
	if err != nil || !dup {
		t.Fatalf("repeat complete: dup %v err %v, want duplicate", dup, err)
	}

	// All cells terminal → workers are released.
	if _, done, _ := coord.Lease("B"); !done {
		t.Fatal("lease after completion: want done=true")
	}
	st = coord.Stats()
	if st.Done != 1 || st.CompleteOK != 1 || st.CompleteDuplicate != 1 {
		t.Fatalf("final stats = %+v, want done 1, ok 1, duplicate 1", st)
	}
}

// TestCompleteValidation: garbage payloads and unknown cells are
// rejected, counted, and never cached.
func TestCompleteValidation(t *testing.T) {
	coord, err := NewCoordinator(Options{Cache: rcache.NewMem(8)})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	cell := testCell("astar")
	coord.Add([]experiments.Cell{cell})

	if _, err := coord.Complete("A", "l-000001", cell.Spec.Hash(), []byte("not json")); !errors.Is(err, errBadOutcome) {
		t.Fatalf("garbage payload error = %v, want errBadOutcome", err)
	}
	var other rcache.Key
	other[0] = 0xFF
	if _, err := coord.Complete("A", "l-000001", other, validOutcome(t)); !errors.Is(err, errUnknownCell) {
		t.Fatalf("unknown cell error = %v, want errUnknownCell", err)
	}
	st := coord.Stats()
	if st.CompleteRejected != 2 || st.Done != 0 {
		t.Fatalf("stats = %+v, want rejected 2, done 0", st)
	}
}

// TestAddDedupAndPrecache: duplicate specs collapse to one cell; cells
// already in the cache are born done and never distributed.
func TestAddDedupAndPrecache(t *testing.T) {
	cache := rcache.NewMem(8)
	warm := testCell("ocean")
	cache.Put(warm.Spec.Hash(), validOutcome(t))

	coord, err := NewCoordinator(Options{Cache: cache})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	coord.Add([]experiments.Cell{testCell("astar"), testCell("astar"), warm})
	coord.Seal()
	st := coord.Stats()
	if st.Total != 2 || st.Pending != 1 || st.Done != 1 || st.Precached != 1 {
		t.Fatalf("stats = %+v, want total 2, pending 1, done 1, precached 1", st)
	}
}

// TestDriveDegradesToLocal: with no workers and zero grace, Drive runs
// every cell on the coordinator itself and the sweep completes — real
// (small) simulations through the real cache.
func TestDriveDegradesToLocal(t *testing.T) {
	cells, err := experiments.CellsFor("fig2bc", experiments.Options{Instrs: 2_000})
	if err != nil {
		t.Fatalf("CellsFor: %v", err)
	}
	cells = cells[:4]
	cache := rcache.NewMem(64)
	coord, err := NewCoordinator(Options{Cache: cache})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	coord.Add(cells)
	coord.Seal()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := coord.Drive(ctx, 0, 2); err != nil {
		t.Fatalf("Drive: %v", err)
	}
	st := coord.Stats()
	if st.Done != 4 || st.LocalCells != 4 {
		t.Fatalf("stats = %+v, want 4 done, 4 local", st)
	}
	for _, c := range cells {
		if _, _, ok := cache.Get(c.Spec.Hash()); !ok {
			t.Fatalf("cell %s missing from the cache after local execution", c.Label)
		}
	}
}

// TestDriveReportsIncomplete: a cell that fails even locally surfaces as
// ErrIncomplete naming the cell — flagged, never silently dropped.
func TestDriveReportsIncomplete(t *testing.T) {
	coord, err := NewCoordinator(Options{Cache: rcache.NewMem(8)})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	// An unknown benchmark cannot execute anywhere.
	coord.Add([]experiments.Cell{{
		Label: "bogus",
		Spec:  runspec.Spec{Kind: runspec.KindRun, Benchmark: "no-such-bench", Monitor: "MemLeak", Instrs: 1000, Seed: 1},
	}})
	coord.Seal()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	err = coord.Drive(ctx, 0, 1)
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("Drive error = %v, want ErrIncomplete", err)
	}
	if st := coord.Stats(); st.Failed != 1 {
		t.Fatalf("stats = %+v, want failed 1", st)
	}
}

// TestWorkerOverHTTP runs the real worker loop against the real HTTP
// surface through the real retrying client: lease, heartbeat, complete,
// done.
func TestWorkerOverHTTP(t *testing.T) {
	cache := rcache.NewMem(16)
	coord, err := NewCoordinator(Options{Cache: cache, LeaseTTL: time.Second})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	cells := []experiments.Cell{testCell("astar"), testCell("ocean")}
	coord.Add(cells)
	coord.Seal()
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	payload := validOutcome(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err = RunWorker(ctx, WorkerOptions{
		Coordinator: client.New(client.Options{BaseURL: ts.URL}),
		ID:          "w-test",
		Parallel:    2,
		Exec: func(ctx context.Context, spec runspec.Spec) ([]byte, error) {
			return payload, nil
		},
	})
	if err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	st := coord.Stats()
	if st.Done != 2 || st.CompleteOK != 2 || st.WorkersRegistered != 1 {
		t.Fatalf("stats = %+v, want 2 done, 2 complete_ok, 1 worker", st)
	}
	for _, c := range cells {
		if _, _, ok := cache.Get(c.Spec.Hash()); !ok {
			t.Fatalf("cell %s missing from the coordinator cache", c.Label)
		}
	}
}

// TestStatusEndpoint: the status document round-trips the stats snapshot.
func TestStatusEndpoint(t *testing.T) {
	coord, err := NewCoordinator(Options{Cache: rcache.NewMem(8)})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	coord.Add([]experiments.Cell{testCell("astar")})
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	var st Stats
	cl := client.New(client.Options{BaseURL: ts.URL})
	if err := cl.Call(context.Background(), "GET", "/v1/fabric/status", nil, &st); err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Total != 1 || st.Pending != 1 || st.Sealed {
		t.Fatalf("status = %+v, want total 1, pending 1, unsealed", st)
	}
}

// TestGrantSpecRoundTrips: the spec a worker receives hashes identically
// to the coordinator's cell — the property every idempotency claim rests
// on.
func TestGrantSpecRoundTrips(t *testing.T) {
	coord, err := NewCoordinator(Options{Cache: rcache.NewMem(8)})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	cell := testCell("astar")
	coord.Add([]experiments.Cell{cell})
	g, _, _ := coord.Lease("A")
	if g == nil {
		t.Fatal("no grant")
	}
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("marshal grant: %v", err)
	}
	var back Grant
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal grant: %v", err)
	}
	if back.Spec.Hash() != cell.Spec.Hash() {
		t.Fatalf("spec hash changed over the wire: %s vs %s",
			hex.EncodeToString(func() []byte { h := back.Spec.Hash(); return h[:] }()),
			hex.EncodeToString(func() []byte { h := cell.Spec.Hash(); return h[:] }()))
	}
}
