package fabric

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strings"
	"sync"
	"time"

	"fade/internal/experiments"
	"fade/internal/obs"
	"fade/internal/par"
	"fade/internal/rcache"
	"fade/internal/runspec"
	"fade/internal/system"
)

// ErrIncomplete is the sentinel wrapped by Drive when the sweep could not
// complete every cell even after local degradation: some cells failed in
// local execution too. Callers detect it with errors.Is and must treat
// the assembled table as partial — it is flagged, never silently
// truncated.
var ErrIncomplete = errors.New("fabric: sweep incomplete")

// errBadOutcome and errUnknownCell classify Complete failures for the
// HTTP layer (422 bad_outcome, 404 unknown_cell).
var (
	errBadOutcome  = errors.New("outcome payload does not decode")
	errUnknownCell = errors.New("unknown cell")
)

// Cell states. A cell is born pending, cycles between pending and leased
// as leases are granted and expire, and terminates as done or failed.
// Exhausted and local are the degradation rungs in between: out of lease
// retries, then claimed by the coordinator's own executor.
const (
	cellPending = iota
	cellLeased
	cellDone
	cellExhausted
	cellLocal
	cellFailed
)

// Options configures a Coordinator.
type Options struct {
	// Cache is the coordinator's content-addressed result store —
	// required: completed cells land here and the final table is
	// assembled from it.
	Cache *rcache.Cache
	// LeaseTTL is how long a worker holds a cell before the lease expires
	// without a heartbeat (default 30s). Heartbeats renew the full TTL.
	LeaseTTL time.Duration
	// MaxRetries caps how many times an expired or failed lease is
	// re-queued (default 3). A cell over the cap is exhausted and falls
	// to the local executor.
	MaxRetries int
	// Logger receives lease-lifecycle records; nil disables logging.
	Logger *slog.Logger
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 3
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Logger == nil {
		o.Logger = slog.New(noopHandler{})
	}
	return o
}

// cellState is one cell's slot in the state machine.
type cellState struct {
	label string
	spec  runspec.Spec
	hash  rcache.Key

	state    int
	attempts int    // lease grants so far
	leaseID  string // active lease, "" otherwise
	errMsg   string // terminal failure reason (cellFailed)
}

// lease is one outstanding grant.
type lease struct {
	id       string
	worker   string
	hash     rcache.Key
	deadline time.Time
}

// workerState tracks a registered worker for the status view.
type workerState struct {
	lastSeen time.Time
}

// Stats is a point-in-time snapshot of the coordinator: cell states,
// worker registry, and the lifetime counters that prove which paths ran.
type Stats struct {
	Total     int `json:"total"`
	Done      int `json:"done"`
	Pending   int `json:"pending"`
	Leased    int `json:"leased"`
	Exhausted int `json:"exhausted"`
	Local     int `json:"local"`
	Failed    int `json:"failed"`

	Workers int  `json:"workers"`
	Sealed  bool `json:"sealed"`

	Precached         uint64 `json:"precached"`
	LeasesGranted     uint64 `json:"leases_granted"`
	LeasesRenewed     uint64 `json:"leases_renewed"`
	LeasesExpired     uint64 `json:"leases_expired"`
	Retries           uint64 `json:"retries"`
	CompleteOK        uint64 `json:"complete_ok"`
	CompleteDuplicate uint64 `json:"complete_duplicate"`
	CompleteRejected  uint64 `json:"complete_rejected"`
	FailReported      uint64 `json:"fail_reported"`
	LocalCells        uint64 `json:"local_cells"`
	WorkersRegistered uint64 `json:"workers_registered"`
}

// Coordinator owns the cell state machine and the lease table. All
// methods are safe for concurrent use (the HTTP surface in http.go calls
// straight into them).
type Coordinator struct {
	opts Options
	reg  *obs.Registry
	met  *fabricMetrics

	mu           sync.Mutex
	sealed       bool
	cells        map[rcache.Key]*cellState
	order        []rcache.Key // Add order, for deterministic reporting
	queue        []rcache.Key // pending cells, FIFO
	leases       map[string]*lease
	workers      map[string]*workerState
	leaseSeq     uint64
	lastActivity time.Time // last worker interaction (or New/Seal)
}

// NewCoordinator builds a coordinator. Options.Cache is required: it is
// where completed cells land and where the table is assembled from.
func NewCoordinator(opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	if opts.Cache == nil {
		return nil, errors.New("fabric: Options.Cache is required")
	}
	c := &Coordinator{
		opts:    opts,
		reg:     obs.NewRegistry(),
		cells:   make(map[rcache.Key]*cellState),
		leases:  make(map[string]*lease),
		workers: make(map[string]*workerState),
	}
	c.lastActivity = opts.Now()
	c.met = newFabricMetrics(c.reg, c)
	return c, nil
}

// Registry returns the coordinator's fabric.* metrics registry (served on
// /metrics by the HTTP surface).
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

// Add registers an experiment's cells with the coordinator, de-duplicated
// by spec hash (overlapping experiments share cells, exactly like the
// cache they converge on). Cells whose outcome is already in the cache
// are born done — a warm sweep distributes nothing.
func (c *Coordinator) Add(cells []experiments.Cell) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cell := range cells {
		h := cell.Spec.Hash()
		if _, ok := c.cells[h]; ok {
			continue
		}
		cs := &cellState{label: cell.Label, spec: cell.Spec, hash: h, state: cellPending}
		if _, _, ok := c.opts.Cache.Get(h); ok {
			cs.state = cellDone
			c.met.precached.Inc()
		} else {
			c.queue = append(c.queue, h)
		}
		c.cells[h] = cs
		c.order = append(c.order, h)
	}
}

// Seal marks the cell set complete: once sealed, workers are told the
// sweep is done when every cell is terminal. Add after Seal panics.
func (c *Coordinator) Seal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sealed = true
	c.lastActivity = c.opts.Now()
}

// Register records a worker. Registration is idempotent and implicit in
// every other call; the explicit endpoint exists so a worker's arrival is
// visible (and logged) before its first lease.
func (c *Coordinator) Register(worker string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(worker)
	c.opts.Logger.Info("fabric: worker registered", "worker", worker)
}

func (c *Coordinator) touchWorkerLocked(worker string) {
	now := c.opts.Now()
	c.lastActivity = now
	if w, ok := c.workers[worker]; ok {
		w.lastSeen = now
		return
	}
	c.workers[worker] = &workerState{lastSeen: now}
	c.met.workersRegistered.Inc()
}

// Grant is one lease as handed to a worker.
type Grant struct {
	ID      string       `json:"id"`
	Label   string       `json:"label"`
	Spec    runspec.Spec `json:"spec"`
	TTLMS   int64        `json:"ttl_ms"`
	Attempt int          `json:"attempt"`
}

// Lease grants the next pending cell to the worker. done=true means the
// sweep is sealed and every cell is terminal — the worker should exit.
// A nil grant with done=false means no work right now; retry after the
// hinted delay.
func (c *Coordinator) Lease(worker string) (g *Grant, done bool, retryIn time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(worker)
	now := c.opts.Now()
	c.expireLocked(now)

	for len(c.queue) > 0 {
		h := c.queue[0]
		c.queue = c.queue[1:]
		cs := c.cells[h]
		if cs.state != cellPending {
			continue // completed or claimed while queued
		}
		c.leaseSeq++
		id := fmt.Sprintf("l-%06d", c.leaseSeq)
		cs.state = cellLeased
		cs.attempts++
		cs.leaseID = id
		c.leases[id] = &lease{id: id, worker: worker, hash: h, deadline: now.Add(c.opts.LeaseTTL)}
		c.met.leaseGranted.Inc()
		c.opts.Logger.Info("fabric: lease granted",
			"lease", id, "worker", worker, "cell", cs.label, "attempt", cs.attempts)
		return &Grant{
			ID:      id,
			Label:   cs.label,
			Spec:    cs.spec,
			TTLMS:   c.opts.LeaseTTL.Milliseconds(),
			Attempt: cs.attempts,
		}, false, 0
	}
	if c.sealed && c.allTerminalLocked() {
		return nil, true, 0
	}
	// Nothing leasable: outstanding leases may yet expire and re-queue,
	// or the local executor may be working the backlog. Poll again soon.
	return nil, false, c.opts.LeaseTTL / 4
}

// Heartbeat renews the lease's deadline. It returns false when the lease
// is no longer held (expired and re-queued, or the cell completed another
// way) — the worker should abandon the cell.
func (c *Coordinator) Heartbeat(worker, leaseID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(worker)
	now := c.opts.Now()
	c.expireLocked(now)
	l, ok := c.leases[leaseID]
	if !ok {
		return false
	}
	l.deadline = now.Add(c.opts.LeaseTTL)
	c.met.leaseRenewed.Inc()
	return true
}

// Complete records a cell's encoded outcome. The payload is validated
// (it must decode as a system.Outcome) before it is admitted to the
// cache; a payload that does not decode is rejected and the lease is
// treated as failed. Completion is idempotent: a stale lease — expired,
// superseded, even unknown — still lands the result, because the cell's
// identity is its content hash, not the lease. duplicate=true reports
// the cell was already done.
func (c *Coordinator) Complete(worker, leaseID string, hash rcache.Key, payload []byte) (duplicate bool, err error) {
	if _, derr := system.DecodeOutcome(payload); derr != nil {
		c.met.completeRejected.Inc()
		c.mu.Lock()
		c.touchWorkerLocked(worker)
		// A worker that uploads garbage has not completed the cell; its
		// lease stands (and will expire) rather than burning a retry here.
		c.mu.Unlock()
		return false, fmt.Errorf("fabric: cell %s: %w: %v", shortHash(hash), errBadOutcome, derr)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(worker)
	cs, ok := c.cells[hash]
	if !ok {
		c.met.completeRejected.Inc()
		return false, fmt.Errorf("fabric: completion for cell %s: %w", shortHash(hash), errUnknownCell)
	}
	if l, ok := c.leases[leaseID]; ok && l.hash == hash {
		delete(c.leases, leaseID)
	}
	if cs.state == cellDone {
		c.met.completeDuplicate.Inc()
		return true, nil
	}
	// The cell may be leased to someone else by now (our lease expired
	// and it was re-granted); the result is the result either way. Drop
	// the superseding lease so its worker is released at next heartbeat.
	if cs.leaseID != "" && cs.leaseID != leaseID {
		delete(c.leases, cs.leaseID)
	}
	cs.leaseID = ""
	cs.state = cellDone
	cs.errMsg = ""
	c.opts.Cache.Put(hash, payload)
	c.met.completeOK.Inc()
	c.opts.Logger.Info("fabric: cell complete", "lease", leaseID, "worker", worker, "cell", cs.label)
	return false, nil
}

// Fail reports a worker-side execution failure. The lease is released
// and the cell re-queued (or exhausted, past the retry cap) exactly as
// if the lease had expired — minus the wait.
func (c *Coordinator) Fail(worker, leaseID string, hash rcache.Key, reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(worker)
	c.met.failReported.Inc()
	l, ok := c.leases[leaseID]
	if !ok || l.hash != hash {
		return // stale report; the expiry path already handled the cell
	}
	delete(c.leases, leaseID)
	cs := c.cells[hash]
	if cs == nil || cs.state != cellLeased || cs.leaseID != leaseID {
		return
	}
	c.opts.Logger.Warn("fabric: cell failed on worker",
		"lease", leaseID, "worker", worker, "cell", cs.label, "reason", reason)
	c.requeueLocked(cs, reason)
}

// Expire force-runs the lease expiry scan (tests; Drive and every worker
// interaction do this on their own).
func (c *Coordinator) Expire() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.opts.Now())
}

// expireLocked releases every lease past its deadline and re-queues (or
// exhausts) the cells they held.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, l := range c.leases {
		if !l.deadline.After(now) {
			delete(c.leases, id)
			c.met.leaseExpired.Inc()
			cs := c.cells[l.hash]
			if cs == nil || cs.state != cellLeased || cs.leaseID != id {
				continue // completed or superseded before expiring
			}
			c.opts.Logger.Warn("fabric: lease expired",
				"lease", id, "worker", l.worker, "cell", cs.label, "attempt", cs.attempts)
			c.requeueLocked(cs, "lease expired")
		}
	}
}

// requeueLocked returns a cell to the pending queue, or exhausts it past
// the retry cap.
func (c *Coordinator) requeueLocked(cs *cellState, reason string) {
	cs.leaseID = ""
	if cs.attempts > c.opts.MaxRetries {
		cs.state = cellExhausted
		c.opts.Logger.Warn("fabric: cell exhausted lease retries",
			"cell", cs.label, "attempts", cs.attempts, "reason", reason)
		return
	}
	cs.state = cellPending
	c.queue = append(c.queue, cs.hash)
	c.met.retry.Inc()
}

func (c *Coordinator) allTerminalLocked() bool {
	for _, cs := range c.cells {
		switch cs.state {
		case cellDone, cellFailed:
		default:
			return false
		}
	}
	return true
}

// claimLocalLocked moves cells onto the coordinator's own executor:
// exhausted cells always (no worker will get them another lease), and —
// when there are no live leases and no worker has spoken for the grace
// window — the whole pending backlog, which covers both "no workers ever
// registered" and "the fleet died".
func (c *Coordinator) claimLocalLocked(grace time.Duration) []*cellState {
	var out []*cellState
	for _, h := range c.order {
		if cs := c.cells[h]; cs.state == cellExhausted {
			cs.state = cellLocal
			out = append(out, cs)
		}
	}
	now := c.opts.Now()
	if len(c.leases) == 0 && now.Sub(c.lastActivity) >= grace {
		for _, h := range c.queue {
			cs := c.cells[h]
			if cs.state != cellPending {
				continue
			}
			cs.state = cellLocal
			out = append(out, cs)
		}
		c.queue = nil
	}
	return out
}

// Drive is the coordinator's main loop: it expires stale leases, runs the
// degradation ladder (exhausted cells immediately, the pending backlog
// after grace with no worker activity), and returns when the sealed cell
// set is fully terminal. The returned error is nil for a complete sweep,
// ctx.Err() on cancellation, or wraps ErrIncomplete naming the cells that
// failed even locally.
func (c *Coordinator) Drive(ctx context.Context, grace time.Duration, parallel int) error {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.mu.Lock()
		c.expireLocked(c.opts.Now())
		batch := c.claimLocalLocked(grace)
		done := c.sealed && c.allTerminalLocked()
		c.mu.Unlock()

		if len(batch) > 0 {
			c.runLocal(ctx, batch, parallel)
			continue // re-evaluate immediately; more cells may have exhausted
		}
		if done {
			break
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	var failed []string
	for _, h := range c.order {
		if cs := c.cells[h]; cs.state == cellFailed {
			failed = append(failed, fmt.Sprintf("%s (%s)", cs.label, cs.errMsg))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("%w: %d of %d cells failed local execution: %s",
			ErrIncomplete, len(failed), len(c.order), strings.Join(failed, "; "))
	}
	return nil
}

// runLocal executes claimed cells on the coordinator itself, through the
// same cache the table is assembled from. Failures mark the cell failed
// (terminal) rather than aborting the batch: Drive reports them together
// via ErrIncomplete.
func (c *Coordinator) runLocal(ctx context.Context, batch []*cellState, parallel int) {
	_, _ = par.RunCells(ctx, parallel, batch, func(ctx context.Context, cs *cellState) (struct{}, error) {
		_, _, err := system.ExecSpecCached(ctx, c.opts.Cache, cs.spec)
		c.met.localCells.Inc()
		c.mu.Lock()
		if err != nil {
			cs.state = cellFailed
			cs.errMsg = err.Error()
			c.opts.Logger.Warn("fabric: local execution failed", "cell", cs.label, "error", err.Error())
		} else {
			cs.state = cellDone
			c.opts.Logger.Info("fabric: cell completed locally", "cell", cs.label)
		}
		c.mu.Unlock()
		return struct{}{}, nil
	})
}

// Stats snapshots the coordinator.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Total:   len(c.cells),
		Workers: len(c.workers),
		Sealed:  c.sealed,

		Precached:         c.met.precached.Value(),
		LeasesGranted:     c.met.leaseGranted.Value(),
		LeasesRenewed:     c.met.leaseRenewed.Value(),
		LeasesExpired:     c.met.leaseExpired.Value(),
		Retries:           c.met.retry.Value(),
		CompleteOK:        c.met.completeOK.Value(),
		CompleteDuplicate: c.met.completeDuplicate.Value(),
		CompleteRejected:  c.met.completeRejected.Value(),
		FailReported:      c.met.failReported.Value(),
		LocalCells:        c.met.localCells.Value(),
		WorkersRegistered: c.met.workersRegistered.Value(),
	}
	for _, cs := range c.cells {
		switch cs.state {
		case cellPending:
			st.Pending++
		case cellLeased:
			st.Leased++
		case cellDone:
			st.Done++
		case cellExhausted:
			st.Exhausted++
		case cellLocal:
			st.Local++
		case cellFailed:
			st.Failed++
		}
	}
	return st
}

func shortHash(h rcache.Key) string {
	return fmt.Sprintf("%x", h[:6])
}

// noopHandler mirrors serve's silent default logger (the stdlib's
// DiscardHandler postdates this module's Go version).
type noopHandler struct{}

func (noopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (noopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h noopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h noopHandler) WithGroup(string) slog.Handler           { return h }
