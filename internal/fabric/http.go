package fabric

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"fade/internal/obs"
	"fade/internal/rcache"
	"fade/internal/serve"
)

// Fabric error codes, carried in the same {"error":{"code","message"}}
// envelope the run API uses (serve.APIError). Documented in
// docs/SERVING.md.
const (
	// ErrCodeLeaseLost — the lease named by the request is no longer
	// held: it expired and the cell was re-queued, or the cell completed
	// another way. The worker should abandon the cell. HTTP 409.
	ErrCodeLeaseLost = "lease_lost"
	// ErrCodeUnknownCell — the spec hash names no cell of this sweep.
	// HTTP 404.
	ErrCodeUnknownCell = "unknown_cell"
	// ErrCodeBadOutcome — the uploaded outcome payload does not decode;
	// it was rejected, not cached. HTTP 422.
	ErrCodeBadOutcome = "bad_outcome"
)

// Routes lists every route the fabric coordinator serves, in
// documentation order; the docs coverage test asserts each appears in
// docs/SERVING.md.
var Routes = []string{
	"POST /v1/fabric/register",
	"POST /v1/fabric/lease",
	"POST /v1/fabric/heartbeat",
	"POST /v1/fabric/complete",
	"POST /v1/fabric/fail",
	"GET /v1/fabric/status",
	"GET /metrics",
	"GET /healthz",
}

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	Worker string `json:"worker"`
}

// RegisterResponse acknowledges registration.
type RegisterResponse struct {
	OK bool `json:"ok"`
}

// LeaseRequest asks for the next cell.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse is the coordinator's answer: exactly one of Done, Lease,
// or a bare retry hint. Done means the sweep is complete and the worker
// should exit.
type LeaseResponse struct {
	Done         bool   `json:"done,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	Lease        *Grant `json:"lease,omitempty"`
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"lease_id"`
}

// HeartbeatResponse acknowledges a renewal.
type HeartbeatResponse struct {
	OK bool `json:"ok"`
}

// CompleteRequest uploads a cell's encoded outcome (the
// system.EncodeOutcome JSON, exactly the bytes the result cache stores).
type CompleteRequest struct {
	Worker   string          `json:"worker"`
	LeaseID  string          `json:"lease_id"`
	SpecHash string          `json:"spec_hash"`
	Outcome  json.RawMessage `json:"outcome"`
}

// CompleteResponse acknowledges an upload; Duplicate reports the cell had
// already completed (the upload was a no-op).
type CompleteResponse struct {
	OK        bool `json:"ok"`
	Duplicate bool `json:"duplicate,omitempty"`
}

// FailRequest reports a worker-side execution failure for a leased cell.
type FailRequest struct {
	Worker   string `json:"worker"`
	LeaseID  string `json:"lease_id"`
	SpecHash string `json:"spec_hash"`
	Error    string `json:"error"`
}

// FailResponse acknowledges the report.
type FailResponse struct {
	OK bool `json:"ok"`
}

// Handler returns the coordinator's HTTP surface: the fabric endpoints
// plus /metrics (the fabric.* registry in Prometheus exposition) and
// /healthz. It speaks the fadeserve protocol idiom — JSON bodies and the
// shared error envelope — so internal/client drives it unchanged.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fabric/register", c.handleRegister)
	mux.HandleFunc("POST /v1/fabric/lease", c.handleLease)
	mux.HandleFunc("POST /v1/fabric/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/fabric/complete", c.handleComplete)
	mux.HandleFunc("POST /v1/fabric/fail", c.handleFail)
	mux.HandleFunc("GET /v1/fabric/status", c.handleStatus)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, serve.ErrCodeNotFound, "no such route: "+r.URL.Path)
	})
	return mux
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, serve.ErrCodeBadJSON, "decoding request: "+err.Error())
		return false
	}
	return true
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.Register(req.Worker)
	writeJSON(w, http.StatusOK, RegisterResponse{OK: true})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	g, done, retryIn := c.Lease(req.Worker)
	writeJSON(w, http.StatusOK, LeaseResponse{
		Done:         done,
		RetryAfterMS: retryIn.Milliseconds(),
		Lease:        g,
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !c.Heartbeat(req.Worker, req.LeaseID) {
		writeErr(w, http.StatusConflict, ErrCodeLeaseLost, "lease "+req.LeaseID+" is no longer held")
		return
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{OK: true})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeBody(w, r, &req) {
		return
	}
	hash, ok := parseHash(req.SpecHash)
	if !ok {
		writeErr(w, http.StatusBadRequest, serve.ErrCodeBadJSON, "spec_hash is not a 64-hex-digit SHA-256")
		return
	}
	dup, err := c.Complete(req.Worker, req.LeaseID, hash, req.Outcome)
	switch {
	case errors.Is(err, errBadOutcome):
		writeErr(w, http.StatusUnprocessableEntity, ErrCodeBadOutcome, err.Error())
	case errors.Is(err, errUnknownCell):
		writeErr(w, http.StatusNotFound, ErrCodeUnknownCell, err.Error())
	case err != nil:
		writeErr(w, http.StatusInternalServerError, serve.ErrCodeInternal, err.Error())
	default:
		writeJSON(w, http.StatusOK, CompleteResponse{OK: true, Duplicate: dup})
	}
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	var req FailRequest
	if !decodeBody(w, r, &req) {
		return
	}
	hash, ok := parseHash(req.SpecHash)
	if !ok {
		writeErr(w, http.StatusBadRequest, serve.ErrCodeBadJSON, "spec_hash is not a 64-hex-digit SHA-256")
		return
	}
	c.Fail(req.Worker, req.LeaseID, hash, req.Error)
	writeJSON(w, http.StatusOK, FailResponse{OK: true})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.Stats())
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePrometheus(w, []obs.LabeledSnapshot{{Snap: c.reg.Snapshot()}})
}

func parseHash(s string) (rcache.Key, bool) {
	var k rcache.Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return k, false
	}
	copy(k[:], b)
	return k, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, map[string]serve.APIError{"error": {Code: code, Message: msg}})
}
