package fabric

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"time"

	"fade/internal/client"
	"fade/internal/rcache"
	"fade/internal/runspec"
	"fade/internal/system"
)

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Coordinator is the fabric client (internal/client pointed at the
	// coordinator's base URL). Required.
	Coordinator *client.Client
	// ID identifies this worker in leases and logs (default
	// "w-<hostname>-<pid>").
	ID string
	// Parallel is how many leases the worker holds concurrently (default
	// 1; fadeworker defaults it to GOMAXPROCS).
	Parallel int
	// Cache is the worker-local result cache. Execution goes through it
	// (single-flight, disk persistence, corruption recovery); nil
	// executes uncached.
	Cache *rcache.Cache
	// Logger receives worker lifecycle records; nil disables logging.
	Logger *slog.Logger

	// Exec overrides cell execution (tests). It returns the encoded
	// outcome (system.EncodeOutcome bytes). The default executes through
	// Cache.
	Exec func(ctx context.Context, spec runspec.Spec) ([]byte, error)
	// HeartbeatEvery overrides the renewal cadence (default: a third of
	// the granted TTL).
	HeartbeatEvery time.Duration
	// PollMax clamps how long the worker sleeps between lease polls when
	// the coordinator has no work yet (default 2s).
	PollMax time.Duration
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "local"
		}
		o.ID = fmt.Sprintf("w-%s-%d", host, os.Getpid())
	}
	if o.Parallel <= 0 {
		o.Parallel = 1
	}
	if o.Logger == nil {
		o.Logger = slog.New(noopHandler{})
	}
	if o.Exec == nil {
		cache := o.Cache
		o.Exec = func(ctx context.Context, spec runspec.Spec) ([]byte, error) {
			return execEncoded(ctx, cache, spec)
		}
	}
	if o.PollMax <= 0 {
		o.PollMax = 2 * time.Second
	}
	return o
}

// execEncoded is the default cell executor: the spec runs through the
// worker's own cache (so a worker re-leased a cell it already computed
// serves bytes from disk), returning exactly the encoded outcome the
// cache stores — the bytes the coordinator admits to its cache, keeping
// the distributed path byte-identical to a local run.
func execEncoded(ctx context.Context, cache *rcache.Cache, spec runspec.Spec) ([]byte, error) {
	compute := func(ctx context.Context) ([]byte, error) {
		out, err := system.ExecSpec(ctx, spec)
		if err != nil {
			return nil, err
		}
		return system.EncodeOutcome(out)
	}
	if cache == nil {
		return compute(ctx)
	}
	b, _, err := cache.Do(ctx, spec.Hash(), compute)
	return b, err
}

// RunWorker runs lease loops against the coordinator until the sweep is
// done (nil), the context ends (ctx.Err()), or the coordinator becomes
// unreachable past the client's retry budget (the transport error).
func RunWorker(ctx context.Context, o WorkerOptions) error {
	o = o.withDefaults()
	w := &worker{o: o}
	if err := o.Coordinator.Call(ctx, http.MethodPost, "/v1/fabric/register",
		RegisterRequest{Worker: o.ID}, nil); err != nil {
		return fmt.Errorf("fabric: registering worker %s: %w", o.ID, err)
	}
	o.Logger.Info("fabric: worker running", "worker", o.ID, "parallel", o.Parallel)

	loopCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, o.Parallel)
	var wg sync.WaitGroup
	for i := 0; i < o.Parallel; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			if err := w.loop(loopCtx); err != nil {
				errs[slot] = err
				cancel() // one slot failing hard stops the others
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return ctx.Err()
}

// worker is the per-process state shared by the lease loops.
type worker struct {
	o WorkerOptions
}

// loop is one lease slot: poll, execute, upload, repeat until done.
func (w *worker) loop(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var resp LeaseResponse
		if err := w.o.Coordinator.Call(ctx, http.MethodPost, "/v1/fabric/lease",
			LeaseRequest{Worker: w.o.ID}, &resp); err != nil {
			return fmt.Errorf("fabric: leasing: %w", err)
		}
		if resp.Done {
			w.o.Logger.Info("fabric: sweep done", "worker", w.o.ID)
			return nil
		}
		if resp.Lease == nil {
			wait := time.Duration(resp.RetryAfterMS) * time.Millisecond
			if wait <= 0 || wait > w.o.PollMax {
				wait = w.o.PollMax
			}
			if err := sleepCtx(ctx, wait); err != nil {
				return err
			}
			continue
		}
		w.runLease(ctx, resp.Lease)
	}
}

// runLease executes one granted cell under heartbeat renewal. Losing the
// lease cancels execution; execution errors are reported via fail; a
// successful outcome is uploaded via complete. All terminal paths return
// to the lease loop — per-cell failures never kill the worker.
func (w *worker) runLease(ctx context.Context, g *Grant) {
	execCtx, cancelExec := context.WithCancel(ctx)
	defer cancelExec()

	every := w.o.HeartbeatEvery
	if every <= 0 {
		every = time.Duration(g.TTLMS) * time.Millisecond / 3
	}
	if every <= 0 {
		every = time.Second
	}
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-execCtx.Done():
				return
			case <-t.C:
			}
			err := w.o.Coordinator.Call(execCtx, http.MethodPost, "/v1/fabric/heartbeat",
				HeartbeatRequest{Worker: w.o.ID, LeaseID: g.ID}, nil)
			var ae *client.APIError
			if errors.As(err, &ae) && ae.Code == ErrCodeLeaseLost {
				// The coordinator re-queued the cell; stop burning cycles
				// on it. (Completion would still have been accepted — this
				// is an optimization, not a correctness requirement.)
				w.o.Logger.Warn("fabric: lease lost", "worker", w.o.ID, "lease", g.ID, "cell", g.Label)
				cancelExec()
				return
			}
			// Transport failures (a partition) are survivable: the client
			// already retried, the next tick tries again, and if the lease
			// expires meanwhile the eventual completion is still accepted.
			if err != nil && execCtx.Err() == nil {
				w.o.Logger.Warn("fabric: heartbeat failed", "worker", w.o.ID, "lease", g.ID, "error", err.Error())
			}
		}
	}()

	w.o.Logger.Info("fabric: executing cell", "worker", w.o.ID, "lease", g.ID, "cell", g.Label, "attempt", g.Attempt)
	payload, execErr := w.o.Exec(execCtx, g.Spec)
	close(hbStop)
	hbWG.Wait()

	hash := hex.EncodeToString(func() []byte { h := g.Spec.Hash(); return h[:] }())
	switch {
	case execErr == nil:
		var cr CompleteResponse
		err := w.o.Coordinator.Call(ctx, http.MethodPost, "/v1/fabric/complete",
			CompleteRequest{Worker: w.o.ID, LeaseID: g.ID, SpecHash: hash, Outcome: payload}, &cr)
		if err != nil {
			w.o.Logger.Warn("fabric: completion upload failed", "worker", w.o.ID, "cell", g.Label, "error", err.Error())
		} else if cr.Duplicate {
			w.o.Logger.Info("fabric: cell was already complete", "worker", w.o.ID, "cell", g.Label)
		}
	case execCtx.Err() != nil && ctx.Err() == nil:
		// Lease lost mid-execution; nothing to report, the cell is
		// already re-queued.
	case ctx.Err() != nil:
		// Shutting down; the lease will expire on its own.
	default:
		w.o.Logger.Warn("fabric: cell failed", "worker", w.o.ID, "cell", g.Label, "error", execErr.Error())
		_ = w.o.Coordinator.Call(ctx, http.MethodPost, "/v1/fabric/fail",
			FailRequest{Worker: w.o.ID, LeaseID: g.ID, SpecHash: hash, Error: execErr.Error()}, nil)
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
