package fabric

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"fade/internal/client"
	"fade/internal/experiments"
	"fade/internal/rcache"
	"fade/internal/runspec"
)

// TestFabricWorkerMain is not a test: it is the subprocess entry point
// the chaos suite re-execs the test binary into (env-gated, skipped in a
// normal run). It runs a real worker against the coordinator URL in the
// environment, slowing each cell down so the parent can kill it
// mid-execution.
func TestFabricWorkerMain(t *testing.T) {
	if os.Getenv("FADE_FABRIC_WORKER") != "1" {
		t.Skip("subprocess entry point; driven by TestChaosSweep")
	}
	sleepMS, _ := strconv.Atoi(os.Getenv("FADE_FABRIC_SLEEP_MS"))
	var cache *rcache.Cache
	if dir := os.Getenv("FADE_FABRIC_CACHE"); dir != "" {
		var err error
		cache, err = rcache.New(rcache.Options{Dir: dir})
		if err != nil {
			t.Fatalf("opening worker cache: %v", err)
		}
	}
	cl := client.New(client.Options{
		BaseURL:     os.Getenv("FADE_FABRIC_COORD"),
		MaxAttempts: 10,
		BackoffBase: 100 * time.Millisecond,
		BackoffCap:  time.Second,
	})
	err := RunWorker(context.Background(), WorkerOptions{
		Coordinator: cl,
		ID:          os.Getenv("FADE_FABRIC_ID"),
		Parallel:    2,
		Cache:       cache,
		Exec: func(ctx context.Context, spec runspec.Spec) ([]byte, error) {
			// Stretch each cell so SIGKILL reliably lands mid-execution.
			if sleepMS > 0 {
				if err := sleepCtx(ctx, time.Duration(sleepMS)*time.Millisecond); err != nil {
					return nil, err
				}
			}
			return execEncoded(ctx, cache, spec)
		},
	})
	if err != nil {
		t.Fatalf("worker exited with error: %v", err)
	}
}

// partitionGate simulates a network partition in front of the
// coordinator: while closed, every request gets a retryable 503.
type partitionGate struct {
	next   http.Handler
	closed atomic.Bool
}

func (g *partitionGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.closed.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":{"code":"draining","message":"partition injected by chaos test"}}`))
		return
	}
	g.next.ServeHTTP(w, r)
}

// TestChaosSweep is the acceptance-criteria test: a distributed sweep
// with one worker SIGKILLed mid-run, a coordinator partition, and a
// corrupted worker cache still produces a final table byte-identical to
// an uninterrupted local run, with the lease-expiry and retry counters
// proving the recovery path executed.
func TestChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep spawns subprocess workers; skipped in -short")
	}

	const expID = "fig2bc"
	opts := experiments.Options{Instrs: 10_000, Seed: 1, Parallel: 4}

	// Uninterrupted local reference, its own private cache.
	refOpts := opts
	refOpts.Cache = rcache.NewMem(256)
	refTable, err := experiments.ByID(expID, refOpts)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refJSON, err := json.Marshal(refTable)
	if err != nil {
		t.Fatalf("marshaling reference table: %v", err)
	}

	// The distributed side: coordinator with a disk cache, two
	// subprocess workers. Worker B's cache dir is pre-corrupted at every
	// cell's path — rcache must detect, evict, and recompute.
	cells, err := experiments.CellsFor(expID, opts)
	if err != nil {
		t.Fatalf("CellsFor: %v", err)
	}
	coordCache, err := rcache.New(rcache.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("opening coordinator cache: %v", err)
	}
	coord, err := NewCoordinator(Options{
		Cache:      coordCache,
		LeaseTTL:   700 * time.Millisecond,
		MaxRetries: 5,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	coord.Add(cells)
	coord.Seal()

	gate := &partitionGate{next: coord.Handler()}
	ts := httptest.NewServer(gate)
	defer ts.Close()

	cacheB := t.TempDir()
	for _, c := range cells {
		h := c.Spec.Hash()
		path := filepath.Join(cacheB, hex.EncodeToString(h[:])+".rc")
		if err := os.WriteFile(path, []byte("FRC1 garbage pretending to be a cache entry"), 0o644); err != nil {
			t.Fatalf("corrupting worker B cache: %v", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	startWorker := func(id, cacheDir string) (*exec.Cmd, *bytes.Buffer) {
		cmd := exec.Command(os.Args[0], "-test.run", "^TestFabricWorkerMain$", "-test.v")
		cmd.Env = append(os.Environ(),
			"FADE_FABRIC_WORKER=1",
			"FADE_FABRIC_COORD="+ts.URL,
			"FADE_FABRIC_ID="+id,
			"FADE_FABRIC_CACHE="+cacheDir,
			"FADE_FABRIC_SLEEP_MS=250",
		)
		var out bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting worker %s: %v", id, err)
		}
		return cmd, &out
	}
	workerA, outA := startWorker("chaos-a", t.TempDir())
	defer workerA.Process.Kill()
	workerB, outB := startWorker("chaos-b", cacheB)
	defer workerB.Process.Kill()

	driveDone := make(chan error, 1)
	go func() { driveDone <- coord.Drive(ctx, 8*time.Second, 2) }()

	// Wait until both workers hold leases (2 slots each; >= 3 leased
	// means both are mid-cell), then SIGKILL worker A — its heartbeats
	// stop and its leases must expire and re-queue.
	deadline := time.Now().Add(30 * time.Second)
	for coord.Stats().Leased < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("workers never reached 3 concurrent leases; stats %+v\nworker A:\n%s\nworker B:\n%s",
				coord.Stats(), outA.String(), outB.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := workerA.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL worker A: %v", err)
	}
	_ = workerA.Wait()

	// Partition the coordinator long enough for live leases to expire
	// (TTL 700ms): worker B's heartbeats and polls fail, retry, and
	// reconnect when the partition heals.
	gate.closed.Store(true)
	time.Sleep(1200 * time.Millisecond)
	gate.closed.Store(false)

	if err := <-driveDone; err != nil {
		t.Fatalf("Drive: %v\nworker A:\n%s\nworker B:\n%s", err, outA.String(), outB.String())
	}
	if err := workerB.Wait(); err != nil {
		t.Fatalf("worker B exited with error: %v\n%s", err, outB.String())
	}

	st := coord.Stats()
	if st.Done != st.Total || st.Failed != 0 {
		t.Fatalf("sweep incomplete: %+v", st)
	}
	if st.LeasesExpired == 0 {
		t.Fatalf("fabric.lease.expired = 0; the kill/partition never exercised expiry: %+v", st)
	}
	if st.Retries == 0 {
		t.Fatalf("fabric.retry = 0; no cell was ever re-queued: %+v", st)
	}

	// The assembled table must be byte-identical to the uninterrupted
	// local run.
	distOpts := opts
	distOpts.Cache = coordCache
	distTable, err := experiments.ByID(expID, distOpts)
	if err != nil {
		t.Fatalf("assembling distributed table: %v", err)
	}
	distJSON, err := json.Marshal(distTable)
	if err != nil {
		t.Fatalf("marshaling distributed table: %v", err)
	}
	if !bytes.Equal(refJSON, distJSON) {
		t.Fatalf("distributed table differs from the local reference\nlocal: %d bytes\ndistributed: %d bytes", len(refJSON), len(distJSON))
	}
}
