package fabric

import "fade/internal/obs"

// fabricMetrics is the fabric.* namespace (see docs/METRICS.md). The
// counters prove which lifecycle paths ran — the chaos suite asserts
// fabric.lease.expired and fabric.retry are nonzero after a mid-sweep
// worker kill — and the gauges mirror Stats at scrape time.
type fabricMetrics struct {
	precached         *obs.Counter
	leaseGranted      *obs.Counter
	leaseRenewed      *obs.Counter
	leaseExpired      *obs.Counter
	retry             *obs.Counter
	completeOK        *obs.Counter
	completeDuplicate *obs.Counter
	completeRejected  *obs.Counter
	failReported      *obs.Counter
	localCells        *obs.Counter
	workersRegistered *obs.Counter
}

func newFabricMetrics(reg *obs.Registry, c *Coordinator) *fabricMetrics {
	m := &fabricMetrics{
		precached:         reg.Counter("fabric.cells.precached"),
		leaseGranted:      reg.Counter("fabric.lease.granted"),
		leaseRenewed:      reg.Counter("fabric.lease.renewed"),
		leaseExpired:      reg.Counter("fabric.lease.expired"),
		retry:             reg.Counter("fabric.retry"),
		completeOK:        reg.Counter("fabric.complete.ok"),
		completeDuplicate: reg.Counter("fabric.complete.duplicate"),
		completeRejected:  reg.Counter("fabric.complete.rejected"),
		failReported:      reg.Counter("fabric.fail.reported"),
		localCells:        reg.Counter("fabric.local.cells"),
		workersRegistered: reg.Counter("fabric.workers.registered"),
	}
	reg.Register(obs.CollectorFunc(func(sink obs.Sink) {
		st := c.Stats()
		sink.Gauge("fabric.cells.total", float64(st.Total))
		sink.Gauge("fabric.cells.done", float64(st.Done))
		sink.Gauge("fabric.cells.pending", float64(st.Pending))
		sink.Gauge("fabric.cells.leased", float64(st.Leased))
		sink.Gauge("fabric.cells.exhausted", float64(st.Exhausted))
		sink.Gauge("fabric.cells.local", float64(st.Local))
		sink.Gauge("fabric.cells.failed", float64(st.Failed))
		sink.Gauge("fabric.workers.active", float64(st.Workers))
	}))
	return m
}
