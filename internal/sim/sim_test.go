package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGZeroSeedValid(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded RNG repeated values: %d unique of 100", len(seen))
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(11)
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 1} {
		hits := 0
		for i := 0; i < 10000; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / 10000
		if math.Abs(got-p) > 0.03 {
			t.Fatalf("Bool(%v) hit rate %v", p, got)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(5)
	for _, mean := range []float64{2, 8, 50} {
		sum := 0
		const n = 20000
		for i := 0; i < n; i++ {
			v := r.Geometric(mean)
			if v < 1 {
				t.Fatalf("Geometric(%v) = %d below 1", mean, v)
			}
			sum += v
		}
		got := float64(sum) / n
		if got < mean*0.9 || got > mean*1.1 {
			t.Fatalf("Geometric(%v) sample mean %v", mean, got)
		}
	}
}

func TestGeometricDegenerate(t *testing.T) {
	r := NewRNG(1)
	if v := r.Geometric(0.5); v != 1 {
		t.Fatalf("Geometric(0.5) = %d, want 1", v)
	}
	if v := r.Geometric(1); v != 1 {
		t.Fatalf("Geometric(1) = %d, want 1", v)
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewRNG(9)
	err := quick.Check(func(seed uint16) bool {
		lo, hi := 16.0, 4096.0
		v := r.Pareto(lo, hi, 1.3)
		return v >= lo && v <= hi
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParetoSkew(t *testing.T) {
	r := NewRNG(13)
	small := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Pareto(16, 4096, 1.3) < 128 {
			small++
		}
	}
	// A heavy-tailed size distribution is dominated by small values.
	if float64(small)/n < 0.5 {
		t.Fatalf("Pareto not skewed small: %d/%d below 128", small, n)
	}
}

func TestParetoDegenerate(t *testing.T) {
	r := NewRNG(1)
	if v := r.Pareto(64, 64, 1.5); v != 64 {
		t.Fatalf("Pareto(64,64) = %v", v)
	}
	if v := r.Pareto(64, 32, 1.5); v != 64 {
		t.Fatalf("Pareto with hi<lo should return lo, got %v", v)
	}
}

func TestClockRegistrationOrder(t *testing.T) {
	c := NewClock()
	var order []int
	c.Register(ComponentFunc(func(uint64) { order = append(order, 1) }))
	c.Register(ComponentFunc(func(uint64) { order = append(order, 2) }))
	c.Step()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("tick order %v", order)
	}
	if c.Cycle() != 1 {
		t.Fatalf("cycle = %d after one step", c.Cycle())
	}
}

func TestClockPassesCycleNumber(t *testing.T) {
	c := NewClock()
	var got []uint64
	c.Register(ComponentFunc(func(cycle uint64) { got = append(got, cycle) }))
	for i := 0; i < 3; i++ {
		c.Step()
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("cycle arg %v at step %d", v, i)
		}
	}
}

func TestSchedulerStopsOnDone(t *testing.T) {
	c := NewClock()
	ticks := 0
	c.Register(ComponentFunc(func(uint64) { ticks++ }))
	s := &Scheduler{Clock: c, MaxCycles: 1000,
		Done: func(uint64) bool { return ticks >= 10 }}
	out := s.Run()
	if !out.Completed || out.Cycles != 10 || ticks != 10 {
		t.Fatalf("out = %+v, ticks = %d", out, ticks)
	}
}

func TestSchedulerHitsCycleCap(t *testing.T) {
	c := NewClock()
	c.Register(ComponentFunc(func(uint64) {}))
	s := &Scheduler{Clock: c, MaxCycles: 100,
		Done: func(uint64) bool { return false }}
	out := s.Run()
	if out.Completed || out.Cycles != 100 {
		t.Fatalf("out = %+v", out)
	}
}

func TestSchedulerDoneCheckedBeforeTick(t *testing.T) {
	c := NewClock()
	ticks := 0
	c.Register(ComponentFunc(func(uint64) { ticks++ }))
	s := &Scheduler{Clock: c, MaxCycles: 100,
		Done: func(uint64) bool { return true }}
	out := s.Run()
	if !out.Completed || out.Cycles != 0 || ticks != 0 {
		t.Fatalf("drained system executed %d cycles, %d ticks", out.Cycles, ticks)
	}
}

func TestSchedulerWarmBoundary(t *testing.T) {
	c := NewClock()
	instrs := 0
	c.Register(ComponentFunc(func(uint64) { instrs += 2 }))
	s := &Scheduler{Clock: c, MaxCycles: 100,
		Done:   func(uint64) bool { return instrs >= 40 },
		Warmed: func() bool { return instrs >= 10 }}
	out := s.Run()
	// instrs reaches 10 after 5 ticks; the boundary is recorded at the top
	// of the following cycle.
	if out.WarmBoundary != 5 {
		t.Fatalf("warm boundary %d, want 5", out.WarmBoundary)
	}
	if !out.Completed || out.Cycles != 20 {
		t.Fatalf("out = %+v", out)
	}
}

func TestSchedulerSampleOrder(t *testing.T) {
	c := NewClock()
	var trace []string
	c.Register(ComponentFunc(func(uint64) { trace = append(trace, "tick") }))
	s := &Scheduler{Clock: c, MaxCycles: 10,
		Done:   func(cycle uint64) bool { return cycle == 2 },
		Sample: func(uint64) { trace = append(trace, "sample") }}
	s.Run()
	want := []string{"sample", "tick", "sample", "tick"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

// fakeThread implements both AppThread and MonThread with scripted state.
type fakeThread struct {
	done, stalled, busy bool
	shares              []float64
}

func (f *fakeThread) TickShare(s float64) { f.shares = append(f.shares, s) }
func (f *fakeThread) Done() bool          { return f.done }
func (f *fakeThread) Stalled() bool       { return f.stalled }
func (f *fakeThread) Busy() bool          { return f.busy }

// TestSMTShares pins the exact share pairs the system loop historically
// produced for every thread-state combination.
func TestSMTShares(t *testing.T) {
	cases := []struct {
		name                         string
		appDone, appStalled, monBusy bool
		app, mon                     float64
	}{
		{"both-busy", false, false, true, 0.5, 0.5},
		{"app-done-mon-busy", true, false, true, 0, 1},
		{"app-stalled-mon-busy", false, true, true, 0, 1},
		{"app-stalled-mon-idle", false, true, false, 0, 1},
		{"app-done-mon-idle", true, false, false, 0, 1},
		{"app-running-mon-idle", false, false, false, 1, 0},
	}
	for _, tc := range cases {
		app, mon := SMTShares(tc.appDone, tc.appStalled, tc.monBusy)
		if app != tc.app || mon != tc.mon {
			t.Errorf("%s: SMTShares = (%v, %v), want (%v, %v)",
				tc.name, app, mon, tc.app, tc.mon)
		}
	}
}

func TestArbiterSMTTickOrderAndShares(t *testing.T) {
	app := &fakeThread{busy: false}
	mon := &fakeThread{busy: true}
	var order []string
	a := &Arbiter{
		App: observeApp{app, &order}, Mon: observeMon{mon, &order},
		FU:  ComponentFunc(func(uint64) { order = append(order, "fu") }),
		SMT: true,
	}
	a.Tick(0)
	want := []string{"mon", "fu", "app"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tick order %v, want %v", order, want)
		}
	}
	if app.shares[0] != 0.5 || mon.shares[0] != 0.5 {
		t.Fatalf("shares app=%v mon=%v, want 0.5/0.5", app.shares, mon.shares)
	}
}

func TestArbiterNonSMTFullShares(t *testing.T) {
	app := &fakeThread{}
	mon := &fakeThread{busy: true}
	a := &Arbiter{App: app, Mon: mon}
	a.Tick(0)
	if app.shares[0] != 1 || mon.shares[0] != 1 {
		t.Fatalf("dedicated cores got shares app=%v mon=%v, want 1/1", app.shares, mon.shares)
	}
}

func TestArbiterObserveSkipsFinishedApp(t *testing.T) {
	app := &fakeThread{done: true}
	mon := &fakeThread{busy: true}
	called := false
	a := &Arbiter{App: app, Mon: mon, SMT: true,
		Observe: func(bool, bool) { called = true }}
	a.Tick(0)
	if called {
		t.Fatal("Observe ran for a finished application thread")
	}
	if app.shares[0] != 0 || mon.shares[0] != 1 {
		t.Fatalf("shares app=%v mon=%v, want 0/1", app.shares, mon.shares)
	}
}

type observeApp struct {
	*fakeThread
	order *[]string
}

func (o observeApp) TickShare(s float64) {
	*o.order = append(*o.order, "app")
	o.fakeThread.TickShare(s)
}

type observeMon struct {
	*fakeThread
	order *[]string
}

func (o observeMon) TickShare(s float64) {
	*o.order = append(*o.order, "mon")
	o.fakeThread.TickShare(s)
}
