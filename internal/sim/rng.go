package sim

import "math"

// RNG is a deterministic pseudo-random number generator based on splitmix64.
// Every source of randomness in the simulator flows through an RNG seeded
// from the experiment configuration, so a (profile, monitor, system, seed)
// tuple always reproduces identical cycle counts.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is valid.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed + 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *RNG) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with the given
// mean (number of failures before success, plus one). It is used to model
// burst lengths and inter-arrival gaps. The returned value is at least 1.
func (r *RNG) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for !r.Bool(p) && n < 1<<20 {
		n++
	}
	return n
}

// Pareto returns a bounded Pareto-ish heavy-tailed sample in [lo, hi] with
// shape alpha. It models allocation sizes and stack-frame sizes, whose
// distributions are long-tailed in real programs.
func (r *RNG) Pareto(lo, hi float64, alpha float64) float64 {
	if lo >= hi {
		return lo
	}
	u := r.Float64()
	// Inverse-CDF of a bounded Pareto distribution.
	la := pow(lo, alpha)
	ha := pow(hi, alpha)
	x := pow((-(u*ha-u*la)+ha)/(ha*la), -1/alpha)
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return x
}

func pow(base, exp float64) float64 {
	if base <= 0 {
		return 0
	}
	return math.Pow(base, exp)
}
