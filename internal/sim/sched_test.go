package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

// endless returns a scheduler over one no-op component that never finishes.
func endless(maxCycles uint64) *Scheduler {
	c := NewClock()
	c.Register(ComponentFunc(func(uint64) {}))
	return &Scheduler{Clock: c, MaxCycles: maxCycles,
		Done: func(uint64) bool { return false }}
}

func TestSchedulerCycleCapStructuredError(t *testing.T) {
	out := endless(100).Run()
	if out.Completed {
		t.Fatal("capped run reported Completed")
	}
	if !errors.Is(out.Err, ErrCycleCapExceeded) {
		t.Fatalf("Err = %v, want ErrCycleCapExceeded", out.Err)
	}
	if out.Cycles != 100 {
		t.Fatalf("Cycles = %d, want 100", out.Cycles)
	}
}

func TestSchedulerPreCanceledContextStopsImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := endless(1_000_000)
	s.Ctx = ctx
	out := s.Run()
	if out.Completed || !errors.Is(out.Err, ErrCanceled) {
		t.Fatalf("out = %+v, want ErrCanceled abort", out)
	}
	if out.Cycles != 0 {
		t.Fatalf("pre-canceled run executed %d cycles, want 0", out.Cycles)
	}
}

// TestSchedulerCancelWithinOneCheckpoint: a context canceled mid-run stops
// the scheduler within one checkpoint interval of the cancellation cycle.
func TestSchedulerCancelWithinOneCheckpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewClock()
	const cancelAt = 100
	c.Register(ComponentFunc(func(cycle uint64) {
		if cycle == cancelAt {
			cancel()
		}
	}))
	s := &Scheduler{Clock: c, MaxCycles: 1_000_000, Ctx: ctx, CheckEvery: 64,
		Done: func(uint64) bool { return false }}
	out := s.Run()
	if !errors.Is(out.Err, ErrCanceled) {
		t.Fatalf("Err = %v, want ErrCanceled", out.Err)
	}
	if out.Cycles < cancelAt || out.Cycles > cancelAt+64 {
		t.Fatalf("stopped at cycle %d; want within one 64-cycle checkpoint of %d", out.Cycles, cancelAt)
	}
}

func TestSchedulerWallClockDeadline(t *testing.T) {
	s := endless(1 << 40)
	s.Deadline = time.Now().Add(-time.Second)
	out := s.Run()
	if out.Completed || !errors.Is(out.Err, ErrCanceled) {
		t.Fatalf("out = %+v, want wall-clock ErrCanceled abort", out)
	}
}

func TestSchedulerCheckAbortsWithInvariantError(t *testing.T) {
	c := NewClock()
	c.Register(ComponentFunc(func(uint64) {}))
	s := &Scheduler{Clock: c, MaxCycles: 1000,
		Done: func(uint64) bool { return false },
		Check: func(cycle uint64) error {
			if cycle == 10 {
				return &InvariantError{Invariant: "meq-capacity", Cycle: cycle, Detail: "len 33 > cap 32"}
			}
			return nil
		}}
	out := s.Run()
	if out.Completed || !errors.Is(out.Err, ErrInvariantViolated) {
		t.Fatalf("out = %+v, want ErrInvariantViolated abort", out)
	}
	var ie *InvariantError
	if !errors.As(out.Err, &ie) || ie.Invariant != "meq-capacity" || ie.Cycle != 10 {
		t.Fatalf("Err = %v, want *InvariantError{meq-capacity, 10}", out.Err)
	}
	// Check runs post-tick: cycle 10's tick executed, so the clock reads 11.
	if out.Cycles != 11 {
		t.Fatalf("Cycles = %d, want 11", out.Cycles)
	}
}

// TestSchedulerContextDoesNotPerturbCompletedRuns: installing a live (never
// canceled) context must not change how many cycles a completing run takes —
// checkpoints only read.
func TestSchedulerContextDoesNotPerturbCompletedRuns(t *testing.T) {
	run := func(ctx context.Context) Outcome {
		c := NewClock()
		ticks := 0
		c.Register(ComponentFunc(func(uint64) { ticks++ }))
		s := &Scheduler{Clock: c, MaxCycles: 100_000, Ctx: ctx,
			Done: func(uint64) bool { return ticks >= 5000 }}
		return s.Run()
	}
	plain := run(nil)
	watched := run(context.Background())
	if !plain.Completed || !watched.Completed || plain.Cycles != watched.Cycles {
		t.Fatalf("plain = %+v, watched = %+v; cycle counts must match", plain, watched)
	}
}

func TestInvariantErrorMessageNamesInvariant(t *testing.T) {
	err := &InvariantError{Invariant: "ufq-capacity", Cycle: 42, Detail: "core 1: len 17 > cap 16"}
	for _, want := range []string{"ufq-capacity", "42", "core 1"} {
		if !containsStr(err.Error(), want) {
			t.Fatalf("error %q missing %q", err.Error(), want)
		}
	}
	if !errors.Is(err, ErrInvariantViolated) {
		t.Fatal("InvariantError does not unwrap to ErrInvariantViolated")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
