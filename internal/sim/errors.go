package sim

import (
	"errors"
	"fmt"
)

// The run-contract error taxonomy. Every abnormal termination of a
// scheduled simulation maps onto exactly one of these sentinels, so callers
// can dispatch with errors.Is regardless of how many layers of context have
// been wrapped around the original error.
var (
	// ErrCanceled reports that the run was stopped by its context (an
	// explicit cancel, a context deadline, or the wall-clock watchdog)
	// before the termination predicate held. Results accompanying it are
	// partial but internally consistent as of the last completed cycle.
	ErrCanceled = errors.New("sim: run canceled")

	// ErrCycleCapExceeded reports that the run hit its MaxCycles safety cap
	// without the termination predicate holding — the simulated system did
	// not converge. Results accompanying it are truncated, never silently
	// reported as complete.
	ErrCycleCapExceeded = errors.New("sim: cycle cap exceeded")

	// ErrInvariantViolated reports that the per-cycle invariant checker
	// rejected the system state. It is always wrapped in an InvariantError
	// naming the violated invariant.
	ErrInvariantViolated = errors.New("sim: invariant violated")
)

// InvariantError is the concrete error returned when an invariant checker
// trips: it names the violated invariant (a stable, grep-able identifier
// such as "event-conservation"), the cycle at which it failed, and a
// human-readable detail string. It unwraps to ErrInvariantViolated.
type InvariantError struct {
	// Invariant is the stable identifier of the violated invariant.
	Invariant string
	// Cycle is the simulation cycle at which the violation was observed.
	Cycle uint64
	// Detail describes the observed inconsistency.
	Detail string
}

// Error implements error.
func (e *InvariantError) Error() string {
	return fmt.Sprintf("sim: invariant %q violated at cycle %d: %s", e.Invariant, e.Cycle, e.Detail)
}

// Unwrap makes errors.Is(err, ErrInvariantViolated) hold.
func (e *InvariantError) Unwrap() error { return ErrInvariantViolated }
