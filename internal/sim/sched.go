package sim

import "fade/internal/obs"

// Outcome summarizes a scheduled run.
type Outcome struct {
	// Cycles is the number of cycles executed before the termination
	// predicate held (or the cap was hit).
	Cycles uint64
	// WarmBoundary is the first cycle at which the Warmed predicate held
	// (0 when it never did, or when no predicate was installed).
	WarmBoundary uint64
	// Completed reports that the run terminated through its Done predicate
	// rather than the MaxCycles safety net.
	Completed bool
}

// Scheduler owns a simulation's end-to-end loop: the cycle cap, the
// termination predicate, the warm-up boundary, per-cycle sampling hooks, and
// the timeline. Every simulated system in the repository — monitored runs,
// unmonitored baselines, queue studies, the detailed-core cross-validation —
// drives its components through one of these rather than a hand-rolled loop.
//
// Per-cycle order is fixed and documented (DESIGN.md "Tick order"):
//
//  1. Done — checked first, so a system that is already drained executes
//     zero cycles;
//  2. Warmed — the first cycle on which it reports true is recorded as the
//     warm-up boundary;
//  3. Sample — component occupancy sampling (queues sample *before* the
//     cycle's pops and pushes);
//  4. Timeline.MaybeSample — cycle-sampled registry snapshots;
//  5. Clock.Step — every registered component ticks in registration order.
type Scheduler struct {
	Clock *Clock
	// MaxCycles is the safety cap; a run that reaches it did not complete.
	MaxCycles uint64
	// Done is the termination predicate, evaluated at the top of each cycle.
	Done func(cycle uint64) bool
	// Warmed optionally marks the end of the warm-up region; nil disables
	// boundary tracking.
	Warmed func() bool
	// Sample optionally samples component state (queue occupancies) each
	// cycle before components tick.
	Sample func(cycle uint64)
	// Timeline, when non-nil together with Registry, captures a registry
	// snapshot every Timeline.Every cycles.
	Timeline *obs.Timeline
	// Registry is the run's metrics registry sampled by Timeline.
	Registry *obs.Registry
}

// Run executes cycles until Done holds or MaxCycles elapse.
func (s *Scheduler) Run() Outcome {
	var out Outcome
	for cycles := s.Clock.Cycle(); cycles < s.MaxCycles; cycles = s.Clock.Cycle() {
		if s.Done(cycles) {
			out.Completed = true
			break
		}
		if s.Warmed != nil && out.WarmBoundary == 0 && s.Warmed() {
			out.WarmBoundary = cycles
		}
		if s.Sample != nil {
			s.Sample(cycles)
		}
		s.Timeline.MaybeSample(cycles, s.Registry)
		s.Clock.Step()
	}
	out.Cycles = s.Clock.Cycle()
	return out
}
