package sim

import (
	"context"
	"fmt"
	"time"

	"fade/internal/obs"
)

// DefaultCheckpointInterval is the cancellation-checkpoint period used when
// Scheduler.CheckEvery is zero: every this-many cycles the scheduler polls
// its context and wall-clock deadline. Polling is cheap (one atomic load on
// most context implementations) but keeping it off the every-cycle path
// preserves the hot loop; a canceled run is guaranteed to stop within one
// checkpoint interval.
const DefaultCheckpointInterval = 1024

// Outcome summarizes a scheduled run.
type Outcome struct {
	// Cycles is the number of cycles executed before the termination
	// predicate held (or the run aborted).
	Cycles uint64
	// WarmBoundary is the first cycle at which the Warmed predicate held
	// (0 when it never did, or when no predicate was installed).
	WarmBoundary uint64
	// Completed reports that the run terminated through its Done predicate
	// rather than aborting (cycle cap, cancellation, invariant violation).
	Completed bool
	// Err is nil when Completed; otherwise it is the structured abort
	// reason: ErrCanceled (context or wall-clock watchdog),
	// ErrCycleCapExceeded, or an *InvariantError wrapping
	// ErrInvariantViolated.
	Err error
}

// Scheduler owns a simulation's end-to-end loop: the cycle cap, the
// termination predicate, the warm-up boundary, per-cycle sampling hooks,
// cancellation checkpoints, and the timeline. Every simulated system in the
// repository — monitored runs, unmonitored baselines, queue studies, the
// detailed-core cross-validation — drives its components through one of
// these rather than a hand-rolled loop.
//
// Per-cycle order is fixed and documented (DESIGN.md "Tick order"):
//
//  1. checkpoint — every CheckEvery cycles the context and wall-clock
//     deadline are polled; a canceled run aborts here with ErrCanceled;
//  2. Done — checked next, so a system that is already drained executes
//     zero cycles;
//  3. Warmed — the first cycle on which it reports true is recorded as the
//     warm-up boundary;
//  4. Sample — component occupancy sampling (queues sample *before* the
//     cycle's pops and pushes);
//  5. Timeline.MaybeSample — cycle-sampled registry snapshots;
//  6. Clock.Step — every registered component ticks in registration order;
//  7. Check — the invariant checker observes the post-tick state and may
//     abort the run with an *InvariantError.
//
// Cancellation and the wall-clock deadline never perturb the simulated
// state: a run that completes produces byte-identical metrics whether or
// not a context was installed, because checkpoints only read.
type Scheduler struct {
	Clock *Clock
	// MaxCycles is the safety cap; a run that reaches it did not complete
	// and reports ErrCycleCapExceeded.
	MaxCycles uint64
	// Done is the termination predicate, evaluated at the top of each cycle.
	Done func(cycle uint64) bool
	// Warmed optionally marks the end of the warm-up region; nil disables
	// boundary tracking.
	Warmed func() bool
	// Sample optionally samples component state (queue occupancies) each
	// cycle before components tick.
	Sample func(cycle uint64)
	// Check, when non-nil, validates system invariants after every cycle's
	// components have ticked. A non-nil return aborts the run with that
	// error (conventionally an *InvariantError).
	Check func(cycle uint64) error
	// Ctx, when non-nil, is polled at checkpoints; once it is done the run
	// aborts with ErrCanceled (wrapping the context's cause).
	Ctx context.Context
	// Deadline, when non-zero, is the wall-clock watchdog: a checkpoint
	// past it aborts the run with ErrCanceled. It bounds real time, not
	// simulated time (MaxCycles bounds the latter).
	Deadline time.Time
	// CheckEvery is the checkpoint interval in cycles; 0 selects
	// DefaultCheckpointInterval.
	CheckEvery uint64
	// Timeline, when non-nil together with Registry, captures a registry
	// snapshot every Timeline.Every cycles.
	Timeline *obs.Timeline
	// Registry is the run's metrics registry sampled by Timeline.
	Registry *obs.Registry
}

// Run executes cycles until Done holds, MaxCycles elapse, the context is
// canceled, the wall-clock deadline passes, or the invariant checker
// rejects a cycle. The abort reason, if any, is in Outcome.Err.
func (s *Scheduler) Run() Outcome {
	var out Outcome
	every := s.CheckEvery
	if every == 0 {
		every = DefaultCheckpointInterval
	}
	watch := s.Ctx != nil || !s.Deadline.IsZero()
	for cycles := s.Clock.Cycle(); ; cycles = s.Clock.Cycle() {
		if watch && cycles%every == 0 {
			if err := s.poll(); err != nil {
				out.Err = err
				break
			}
		}
		if cycles >= s.MaxCycles {
			out.Err = fmt.Errorf("%w (cap %d)", ErrCycleCapExceeded, s.MaxCycles)
			break
		}
		if s.Done(cycles) {
			out.Completed = true
			break
		}
		if s.Warmed != nil && out.WarmBoundary == 0 && s.Warmed() {
			out.WarmBoundary = cycles
		}
		if s.Sample != nil {
			s.Sample(cycles)
		}
		s.Timeline.MaybeSample(cycles, s.Registry)
		s.Clock.Step()
		if s.Check != nil {
			if err := s.Check(cycles); err != nil {
				out.Err = err
				break
			}
		}
	}
	out.Cycles = s.Clock.Cycle()
	return out
}

// poll reports the abort reason due at a checkpoint, if any.
func (s *Scheduler) poll() error {
	if s.Ctx != nil {
		if err := s.Ctx.Err(); err != nil {
			return fmt.Errorf("%w: %v", ErrCanceled, err)
		}
	}
	if !s.Deadline.IsZero() && time.Now().After(s.Deadline) {
		return fmt.Errorf("%w: wall-clock limit exceeded", ErrCanceled)
	}
	return nil
}
