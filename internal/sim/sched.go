package sim

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fade/internal/obs"
	"fade/internal/spans"
)

// DefaultCheckpointInterval is the cancellation-checkpoint period used when
// Scheduler.CheckEvery is zero: every this-many loop iterations the
// scheduler polls its context and wall-clock deadline. Polling is cheap
// (one atomic load on most context implementations) but keeping it off the
// every-iteration path preserves the hot loop; a canceled run is guaranteed
// to stop within one checkpoint interval.
//
// The interval counts loop iterations executed, not simulated cycles: a
// fast-forward jump advances the clock by an arbitrary number of cycles in
// one iteration, so a cycle-modulo checkpoint could be hopped over
// indefinitely, while an iteration count bounds real time regardless of
// step size.
const DefaultCheckpointInterval = 1024

// FFStats accounts the scheduler's event-driven fast-forward mode. The
// counters live outside the simulation's metric registry — fast-forward is
// observability of the simulator, not of the simulated hardware — and are
// surfaced by callers that enable the mode (system registers them under the
// sim.ff.* name space, see docs/METRICS.md).
type FFStats struct {
	// Enabled records that fast-forward was requested for the run.
	Enabled bool
	// Pinned is the empty string while skip-ahead is armed, or the reason
	// the whole run fell back to cycle-exact execution: "check" (per-cycle
	// invariant hook armed), "sample" (a per-cycle Sample hook without a
	// BulkSample counterpart), or "component" (a registered component does
	// not implement Sleeper — fault engines and probes deliberately do
	// not, so fault injection pins cycle-exact mode).
	Pinned string
	// Jumps is the number of skip-ahead jumps taken.
	Jumps uint64
	// SkippedCycles is the number of cycles covered by jumps (never
	// executed tick-by-tick).
	SkippedCycles uint64
	// WakeStops counts iterations where a component reported work at the
	// current or next cycle, forcing an exact step.
	WakeStops uint64
	// WarmupStops counts iterations pinned exact by the armed warm-up
	// predicate (skip-ahead resumes once the boundary is recorded).
	WarmupStops uint64
}

// Outcome summarizes a scheduled run.
type Outcome struct {
	// Cycles is the number of cycles executed before the termination
	// predicate held (or the run aborted).
	Cycles uint64
	// WarmBoundary is the first cycle at which the Warmed predicate held
	// (0 when it never did, or when no predicate was installed).
	WarmBoundary uint64
	// Completed reports that the run terminated through its Done predicate
	// rather than aborting (cycle cap, cancellation, invariant violation).
	Completed bool
	// Err is nil when Completed; otherwise it is the structured abort
	// reason: ErrCanceled (context or wall-clock watchdog),
	// ErrCycleCapExceeded, or an *InvariantError wrapping
	// ErrInvariantViolated.
	Err error
}

// Scheduler owns a simulation's end-to-end loop: the cycle cap, the
// termination predicate, the warm-up boundary, per-cycle sampling hooks,
// cancellation checkpoints, and the timeline. Every simulated system in the
// repository — monitored runs, unmonitored baselines, queue studies, the
// detailed-core cross-validation — drives its components through one of
// these rather than a hand-rolled loop.
//
// Per-cycle order is fixed and documented (DESIGN.md "Tick order"):
//
//  1. checkpoint — every CheckEvery loop iterations the context and
//     wall-clock deadline are polled; a canceled run aborts here with
//     ErrCanceled (iterations, not cycles: fast-forward jumps advance many
//     cycles per iteration, so cycle-modulo polling could be hopped over);
//  2. Done — checked next, so a system that is already drained executes
//     zero cycles;
//  3. Warmed — the first cycle on which it reports true is recorded as the
//     warm-up boundary;
//  4. Sample — component occupancy sampling (queues sample *before* the
//     cycle's pops and pushes);
//  5. Timeline.MaybeSample — cycle-sampled registry snapshots;
//  6. Clock.Step — every registered component ticks in registration order;
//  7. Check — the invariant checker observes the post-tick state and may
//     abort the run with an *InvariantError.
//
// Cancellation and the wall-clock deadline never perturb the simulated
// state: a run that completes produces byte-identical metrics whether or
// not a context was installed, because checkpoints only read.
type Scheduler struct {
	Clock *Clock
	// MaxCycles is the safety cap; a run that reaches it did not complete
	// and reports ErrCycleCapExceeded.
	MaxCycles uint64
	// Done is the termination predicate, evaluated at the top of each cycle.
	Done func(cycle uint64) bool
	// Warmed optionally marks the end of the warm-up region; nil disables
	// boundary tracking.
	Warmed func() bool
	// Sample optionally samples component state (queue occupancies) each
	// cycle before components tick.
	Sample func(cycle uint64)
	// Check, when non-nil, validates system invariants after every cycle's
	// components have ticked. A non-nil return aborts the run with that
	// error (conventionally an *InvariantError).
	Check func(cycle uint64) error
	// Ctx, when non-nil, is polled at checkpoints; once it is done the run
	// aborts with ErrCanceled (wrapping the context's cause).
	Ctx context.Context
	// Deadline, when non-zero, is the wall-clock watchdog: a checkpoint
	// past it aborts the run with ErrCanceled. It bounds real time, not
	// simulated time (MaxCycles bounds the latter).
	Deadline time.Time
	// CheckEvery is the checkpoint interval in loop iterations (exact
	// cycles or fast-forward jumps); 0 selects DefaultCheckpointInterval.
	CheckEvery uint64
	// FastForward arms event-driven skip-ahead: each iteration the
	// scheduler asks every component (which must implement Sleeper) for
	// its next-interesting cycle, and when all are quiescent it jumps the
	// clock to the earliest wake in one step, bulk-applying the skipped
	// ticks. Done (and Warmed, once it has held) must be functions of
	// component state, not of the raw cycle number: state is frozen across
	// a quiescent span, so a state-based predicate provably cannot flip
	// inside one, while a cycle-valued predicate would be evaluated only at
	// wake cycles. Every scheduler in this repository terminates on
	// drained-component state; bound a run by cycle count with MaxCycles,
	// which jumps clamp to exactly. The mode is pinned back to cycle-exact execution for the
	// whole run when any component is not a Sleeper, when Check is armed,
	// or when Sample is armed without BulkSample; it is held per-iteration
	// while the warm-up predicate is armed and unmet, and jumps are
	// clamped so MaxCycles and timeline sample points are still visited
	// exactly. A completed run is byte-identical with the flag on or off.
	FastForward bool
	// BulkSample is the bulk counterpart of Sample: BulkSample(n) must be
	// exactly equivalent to n Sample calls under frozen component state
	// (occupancies do not change inside a quiescent span, so constant-
	// value histogram bulk adds qualify). Required for skip-ahead when
	// Sample is set.
	BulkSample func(n uint64)
	// FF accumulates fast-forward accounting for the run.
	FF FFStats
	// Timeline, when non-nil together with Registry, captures a registry
	// snapshot every Timeline.Every cycles.
	Timeline *obs.Timeline
	// Registry is the run's metrics registry sampled by Timeline.
	Registry *obs.Registry
	// Trace, when non-nil, receives cycle-domain spans on TraceTrack: the
	// whole-run sim.run span, one sim.ff.jump span per skip-ahead jump
	// (with its wake reason), sim.checkpoint instants at cancellation
	// polls, the sim.warm_boundary instant, and a sim.abort instant on
	// abnormal termination. Emission happens only at those episode
	// boundaries — never per cycle — and a nil Trace costs one nil check
	// inside each spans call, so the traced-off hot path is unchanged (the
	// same discipline as the sim.ff.* counters; see docs/TRACING.md).
	Trace *spans.Trace
	// TraceTrack is the scheduler's swimlane in Trace (a Trace.NewTrack
	// index allocated by the caller).
	TraceTrack int32
}

// Run executes cycles until Done holds, MaxCycles elapse, the context is
// canceled, the wall-clock deadline passes, or the invariant checker
// rejects a cycle. The abort reason, if any, is in Outcome.Err.
func (s *Scheduler) Run() Outcome {
	var out Outcome
	every := s.CheckEvery
	if every == 0 {
		every = DefaultCheckpointInterval
	}
	watch := s.Ctx != nil || !s.Deadline.IsZero()
	sleepers := s.armFastForward()
	startCycle := s.Clock.Cycle()
	var iters uint64
	for cycles := s.Clock.Cycle(); ; cycles = s.Clock.Cycle() {
		// Checkpoints count loop iterations, not cycles: fast-forward
		// jumps (or any future non-unit stepping) would hop over a
		// cycle-modulo checkpoint, leaving a canceled run spinning.
		if watch && iters%every == 0 {
			s.Trace.CycleInstant(s.TraceTrack, spans.NameCheckpoint, cycles, spans.None, spans.None)
			if err := s.poll(); err != nil {
				out.Err = err
				break
			}
		}
		iters++
		if cycles >= s.MaxCycles {
			out.Err = fmt.Errorf("%w (cap %d)", ErrCycleCapExceeded, s.MaxCycles)
			break
		}
		if s.Done(cycles) {
			out.Completed = true
			break
		}
		warmArmed := s.Warmed != nil && out.WarmBoundary == 0
		if warmArmed && s.Warmed() {
			out.WarmBoundary = cycles
			warmArmed = false
			s.Trace.CycleInstant(s.TraceTrack, spans.NameWarmBoundary, cycles, spans.None, spans.None)
		}
		if s.Sample != nil {
			s.Sample(cycles)
		}
		s.Timeline.MaybeSample(cycles, s.Registry)
		if sleepers != nil {
			if warmArmed {
				// The warm-up predicate must be evaluated at every cycle
				// until it first holds; skip-ahead resumes afterwards.
				s.FF.WarmupStops++
			} else if s.tryJump(sleepers, cycles) {
				continue
			}
		}
		s.Clock.Step()
		if s.Check != nil {
			if err := s.Check(cycles); err != nil {
				out.Err = err
				break
			}
		}
	}
	out.Cycles = s.Clock.Cycle()
	if out.Err != nil {
		s.Trace.CycleInstant(s.TraceTrack, spans.NameAbort, out.Cycles,
			spans.Str("reason", abortReason(out.Err)), spans.None)
	}
	completed := uint64(0)
	if out.Completed {
		completed = 1
	}
	s.Trace.CycleSpan(s.TraceTrack, spans.NameRun, startCycle, out.Cycles,
		spans.Num("completed", completed), spans.None)
	return out
}

// abortReason maps an Outcome.Err onto the sim.abort span's reason label.
func abortReason(err error) string {
	switch {
	case errors.Is(err, ErrCanceled):
		return "canceled"
	case errors.Is(err, ErrCycleCapExceeded):
		return "cycle_cap"
	case errors.Is(err, ErrInvariantViolated):
		return "invariant"
	}
	return "error"
}

// armFastForward validates the fast-forward preconditions, records the
// fallback reason when they fail, and returns the clock's Sleeper view
// (nil when the run is pinned cycle-exact).
func (s *Scheduler) armFastForward() []Sleeper {
	if !s.FastForward {
		return nil
	}
	s.FF.Enabled = true
	if s.Check != nil {
		// The invariant hook observes every post-tick state; there is no
		// bulk equivalent of "checked n times".
		s.FF.Pinned = "check"
		return nil
	}
	if s.Sample != nil && s.BulkSample == nil {
		s.FF.Pinned = "sample"
		return nil
	}
	sleepers, ok := s.Clock.sleepers()
	if !ok {
		// Some component cannot promise quiescence (fault engines and
		// probes, hand-rolled test components): the whole run executes
		// cycle-exactly.
		s.FF.Pinned = "component"
		return nil
	}
	return sleepers
}

// tryJump asks every component for its next-interesting cycle and, when
// all are quiescent past the next cycle, bulk-applies the skipped span and
// jumps the clock. It reports whether a jump was taken; the caller then
// re-enters the loop at the wake cycle. Jumps are clamped so the cycle cap
// and the next timeline sample point are still reached exactly — bulk
// accounting is linear, so the state at the clamp cycle is bit-identical
// to having ticked there.
func (s *Scheduler) tryJump(sleepers []Sleeper, now uint64) bool {
	wake := uint64(NeverWake)
	waker := -1
	for i, sl := range sleepers {
		w := sl.NextWake(now)
		if w <= now+1 {
			// Work this cycle or the next: an exact step costs the same.
			s.FF.WakeStops++
			return false
		}
		if w < wake {
			wake = w
			waker = i
		}
	}
	reason := "wake"
	if wake > s.MaxCycles {
		wake = s.MaxCycles
		reason = "cap"
	}
	if s.Timeline != nil && s.Timeline.Every > 0 {
		if next := now - now%s.Timeline.Every + s.Timeline.Every; wake > next {
			wake = next
			reason = "timeline"
		}
	}
	n := wake - now
	if n < 2 {
		s.FF.WakeStops++
		return false
	}
	// The current iteration already ran Sample/Timeline for cycle now;
	// the skipped interior cycles now+1..wake-1 get their samples in bulk
	// (occupancies are frozen across a quiescent span), and the wake
	// cycle samples normally on the next iteration.
	if s.Sample != nil {
		s.BulkSample(n - 1)
	}
	s.Clock.fastForward(sleepers, n)
	s.FF.Jumps++
	s.FF.SkippedCycles += n
	s.Trace.CycleSpan(s.TraceTrack, spans.NameFFJump, now, wake,
		spans.Str("reason", reason), spans.Num("sleeper", uint64(waker)))
	return true
}

// poll reports the abort reason due at a checkpoint, if any.
func (s *Scheduler) poll() error {
	if s.Ctx != nil {
		if err := s.Ctx.Err(); err != nil {
			return fmt.Errorf("%w: %v", ErrCanceled, err)
		}
	}
	if !s.Deadline.IsZero() && time.Now().After(s.Deadline) {
		return fmt.Errorf("%w: wall-clock limit exceeded", ErrCanceled)
	}
	return nil
}
