package sim

// AppThread is the application-side view the arbiter needs: the thread
// retiring the instruction stream.
type AppThread interface {
	// TickShare advances the thread one cycle at the given resource share.
	TickShare(share float64)
	// Done reports end-of-stream (and drained pending work).
	Done() bool
	// Stalled reports that the thread is blocked on backpressure.
	Stalled() bool
}

// MonThread is the monitor-side view the arbiter needs: the thread running
// software handlers.
type MonThread interface {
	// TickShare advances the thread one cycle at the given resource share.
	TickShare(share float64)
	// Busy reports an in-flight handler or waiting events.
	Busy() bool
}

// ThreadSleeper is the quiescence contract for share-ticked threads
// (application and monitor threads). A thread implements it so the arbiter
// — and, for shared monitor cores, the system layer — can sleep it through
// spans of bulk-replayable TickShare calls. Both methods assume the share
// and every input (queue occupancies, producer/consumer state) stay frozen
// across the span; the scheduler guarantees that by only jumping when all
// components are quiescent.
type ThreadSleeper interface {
	// QuietTicks reports how many consecutive upcoming TickShare(share)
	// calls are quiescent: 0 means the very next tick does real work,
	// QuietForever means the thread only changes state when another
	// component acts.
	QuietTicks(share float64) uint64
	// SkipTicks applies the bulk effect of n quiescent TickShare(share)
	// calls; n must not exceed QuietTicks(share). Accumulator fields that
	// are not integer-valued (credit pools, remaining-work counters) must
	// be replayed addition-by-addition so the result is bit-exact.
	SkipTicks(n uint64, share float64)
}

// UnitSleeper is the quiescence contract for full-rate units ticked inside
// an arbiter (the filtering unit): QuietTicks/SkipTicks without a share.
type UnitSleeper interface {
	QuietTicks() uint64
	SkipTicks(n uint64)
}

// SMTShares computes the per-cycle resource split of a fine-grained
// dual-threaded core running the application in one hardware thread and the
// monitor in the other (Fig. 8b). The inputs are the threads' states at the
// top of the cycle:
//
//   - both threads have work: the core is shared evenly, (0.5, 0.5);
//   - the application is finished or stalled on backpressure: the monitor
//     thread owns the core, (0, 1);
//   - the monitor thread has nothing to do: the application owns the core,
//     (1, 0).
func SMTShares(appDone, appStalled, monBusy bool) (appShare, monShare float64) {
	switch {
	case monBusy && !appStalled && !appDone:
		return 0.5, 0.5
	case appDone || appStalled:
		return 0, 1
	default:
		return 1, 0
	}
}

// Arbiter ticks one core group — application thread, optional monitor
// thread, optional filtering unit — as a single Component, applying the SMT
// resource split when the two threads share a core. Intra-group order is
// consumer before accelerator before producer (monitor, FU, application): a
// value leaving a queue this cycle frees space visible next cycle, matching
// a clocked hardware boundary.
type Arbiter struct {
	App AppThread
	// Mon may be nil when the monitor thread is ticked elsewhere (a monitor
	// core shared between several application cores) or absent entirely (an
	// unmonitored baseline).
	Mon MonThread
	// FU is the group's filtering unit; nil when unaccelerated.
	FU Component
	// SMT selects the shared-core resource split; it requires Mon.
	SMT bool
	// Observe, when non-nil, receives the top-of-cycle thread states after
	// the group ticks, on cycles where the application has not finished —
	// the raw material of the Fig. 11(b) utilization breakdown.
	Observe func(appStalled, monBusy bool)
	// ObserveN is the bulk counterpart of Observe for fast-forwarded
	// spans, during which the observed states are frozen: ObserveN(a, m,
	// n) must equal n Observe(a, m) calls. Skip-ahead through this group
	// requires it whenever Observe is set.
	ObserveN func(appStalled, monBusy bool, n uint64)
}

// Tick implements Component.
func (a *Arbiter) Tick(cycle uint64) {
	appStalled := a.App.Stalled()
	monBusy := a.Mon != nil && a.Mon.Busy()
	appShare, monShare := 1.0, 1.0
	if a.SMT {
		// The accelerator is a dedicated block; only the monitor *thread*
		// competes with the application for core resources under SMT.
		appShare, monShare = SMTShares(a.App.Done(), appStalled, monBusy)
	}
	if a.Mon != nil {
		a.Mon.TickShare(monShare)
	}
	if a.FU != nil {
		a.FU.Tick(cycle)
	}
	a.App.TickShare(appShare)
	if a.Observe != nil && !a.App.Done() {
		a.Observe(appStalled, monBusy)
	}
}

// shares reproduces Tick's top-of-cycle state capture and SMT split.
func (a *Arbiter) shares() (appStalled, monBusy bool, appShare, monShare float64) {
	appStalled = a.App.Stalled()
	monBusy = a.Mon != nil && a.Mon.Busy()
	appShare, monShare = 1.0, 1.0
	if a.SMT {
		appShare, monShare = SMTShares(a.App.Done(), appStalled, monBusy)
	}
	return
}

// NextWake implements Sleeper: the group is quiescent for the shortest of
// its members' quiet spans. The thread states — and therefore the SMT
// shares — are frozen across any span the scheduler skips, so the shares
// captured here hold for every skipped tick.
func (a *Arbiter) NextWake(now uint64) uint64 {
	_, _, appShare, monShare := a.shares()
	if a.Observe != nil && a.ObserveN == nil && !a.App.Done() {
		return now // per-cycle observation without a bulk counterpart
	}
	quiet := uint64(QuietForever)
	app, ok := a.App.(ThreadSleeper)
	if !ok {
		return now
	}
	if q := app.QuietTicks(appShare); q < quiet {
		quiet = q
	}
	if a.Mon != nil {
		mon, ok := a.Mon.(ThreadSleeper)
		if !ok {
			return now
		}
		if q := mon.QuietTicks(monShare); q < quiet {
			quiet = q
		}
	}
	if a.FU != nil {
		fu, ok := a.FU.(UnitSleeper)
		if !ok {
			return now
		}
		if q := fu.QuietTicks(); q < quiet {
			quiet = q
		}
	}
	if quiet == QuietForever || now+quiet < now {
		return NeverWake
	}
	return now + quiet
}

// FastForward implements Sleeper, bulk-applying n skipped group ticks in
// Tick's member order (monitor, filtering unit, application, observation).
func (a *Arbiter) FastForward(now, n uint64) {
	appStalled, monBusy, appShare, monShare := a.shares()
	if a.Mon != nil {
		a.Mon.(ThreadSleeper).SkipTicks(n, monShare)
	}
	if a.FU != nil {
		a.FU.(UnitSleeper).SkipTicks(n)
	}
	a.App.(ThreadSleeper).SkipTicks(n, appShare)
	if a.Observe != nil && !a.App.Done() {
		a.ObserveN(appStalled, monBusy, n)
	}
}
