package sim

// AppThread is the application-side view the arbiter needs: the thread
// retiring the instruction stream.
type AppThread interface {
	// TickShare advances the thread one cycle at the given resource share.
	TickShare(share float64)
	// Done reports end-of-stream (and drained pending work).
	Done() bool
	// Stalled reports that the thread is blocked on backpressure.
	Stalled() bool
}

// MonThread is the monitor-side view the arbiter needs: the thread running
// software handlers.
type MonThread interface {
	// TickShare advances the thread one cycle at the given resource share.
	TickShare(share float64)
	// Busy reports an in-flight handler or waiting events.
	Busy() bool
}

// SMTShares computes the per-cycle resource split of a fine-grained
// dual-threaded core running the application in one hardware thread and the
// monitor in the other (Fig. 8b). The inputs are the threads' states at the
// top of the cycle:
//
//   - both threads have work: the core is shared evenly, (0.5, 0.5);
//   - the application is finished or stalled on backpressure: the monitor
//     thread owns the core, (0, 1);
//   - the monitor thread has nothing to do: the application owns the core,
//     (1, 0).
func SMTShares(appDone, appStalled, monBusy bool) (appShare, monShare float64) {
	switch {
	case monBusy && !appStalled && !appDone:
		return 0.5, 0.5
	case appDone || appStalled:
		return 0, 1
	default:
		return 1, 0
	}
}

// Arbiter ticks one core group — application thread, optional monitor
// thread, optional filtering unit — as a single Component, applying the SMT
// resource split when the two threads share a core. Intra-group order is
// consumer before accelerator before producer (monitor, FU, application): a
// value leaving a queue this cycle frees space visible next cycle, matching
// a clocked hardware boundary.
type Arbiter struct {
	App AppThread
	// Mon may be nil when the monitor thread is ticked elsewhere (a monitor
	// core shared between several application cores) or absent entirely (an
	// unmonitored baseline).
	Mon MonThread
	// FU is the group's filtering unit; nil when unaccelerated.
	FU Component
	// SMT selects the shared-core resource split; it requires Mon.
	SMT bool
	// Observe, when non-nil, receives the top-of-cycle thread states after
	// the group ticks, on cycles where the application has not finished —
	// the raw material of the Fig. 11(b) utilization breakdown.
	Observe func(appStalled, monBusy bool)
}

// Tick implements Component.
func (a *Arbiter) Tick(cycle uint64) {
	appStalled := a.App.Stalled()
	monBusy := a.Mon != nil && a.Mon.Busy()
	appShare, monShare := 1.0, 1.0
	if a.SMT {
		// The accelerator is a dedicated block; only the monitor *thread*
		// competes with the application for core resources under SMT.
		appShare, monShare = SMTShares(a.App.Done(), appStalled, monBusy)
	}
	if a.Mon != nil {
		a.Mon.TickShare(monShare)
	}
	if a.FU != nil {
		a.FU.Tick(cycle)
	}
	a.App.TickShare(appShare)
	if a.Observe != nil && !a.App.Done() {
		a.Observe(appStalled, monBusy)
	}
}
