// Package sim provides the deterministic cycle-level simulation kernel used
// by every timing model in this repository: a splitmix64-based random number
// generator, a component/clock abstraction, and run-loop helpers with warmup
// and measurement windows (mirroring the SMARTS-style sampling methodology of
// the paper at a much smaller scale).
//
// Determinism is the load-bearing property: every source of randomness is
// seeded through RNG, so identical (benchmark, config, seed) triples
// reproduce identical cycle counts, metric snapshots, and tables.
package sim
