package sim

import (
	"context"
	"errors"
	"testing"

	"fade/internal/obs"
)

// pulse is a synthetic Sleeper that does real work on every cycle divisible
// by its period and is quiescent in between: interior ticks only advance the
// linearly-accountable idle counter, exactly as the contract requires.
type pulse struct {
	period uint64
	work   uint64
	idle   uint64
	ticks  uint64
}

func (p *pulse) Tick(cycle uint64) {
	p.ticks++
	if cycle%p.period == 0 {
		p.work++
	} else {
		p.idle++
	}
}

func (p *pulse) NextWake(now uint64) uint64 {
	if now%p.period == 0 {
		return now
	}
	return now - now%p.period + p.period
}

func (p *pulse) FastForward(now, n uint64) {
	p.ticks += n
	p.idle += n
}

// runPulses drives a set of pulse periods until the first pulse has done
// work targetWork times — a state-based termination predicate, as the
// FastForward contract requires — and returns the components plus the
// scheduler (for FF accounting).
func runPulses(t *testing.T, periods []uint64, targetWork uint64, ff bool, mutate func(*Scheduler)) ([]*pulse, *Scheduler) {
	t.Helper()
	clock := NewClock()
	pulses := make([]*pulse, len(periods))
	for i, per := range periods {
		pulses[i] = &pulse{period: per}
		clock.Register(pulses[i])
	}
	s := &Scheduler{Clock: clock, MaxCycles: targetWork * periods[0] * 10, FastForward: ff,
		Done: func(uint64) bool { return pulses[0].work >= targetWork }}
	if mutate != nil {
		mutate(s)
	}
	out := s.Run()
	if !out.Completed {
		t.Fatalf("run (ff=%v) did not complete: %v", ff, out.Err)
	}
	// The first pulse works at cycle 0 and every period thereafter, and Done
	// is seen one cycle after the target-th work tick.
	if want := (targetWork-1)*periods[0] + 1; out.Cycles != want {
		t.Fatalf("run (ff=%v) stopped at %d, want %d", ff, out.Cycles, want)
	}
	return pulses, s
}

// TestFastForwardMatchesExact: the same component set must end a run in a
// bit-identical state with skip-ahead on or off, and the FF run must
// actually jump.
func TestFastForwardMatchesExact(t *testing.T) {
	periods := []uint64{7, 11, 13}
	exact, _ := runPulses(t, periods, 1_430, false, nil)
	fast, s := runPulses(t, periods, 1_430, true, nil)
	for i := range exact {
		if *exact[i] != *fast[i] {
			t.Fatalf("pulse %d diverged: exact %+v, ff %+v", i, *exact[i], *fast[i])
		}
	}
	if s.FF.Jumps == 0 || s.FF.SkippedCycles == 0 {
		t.Fatalf("fast-forward run took no jumps: %+v", s.FF)
	}
	if s.FF.Pinned != "" {
		t.Fatalf("fast-forward unexpectedly pinned: %q", s.FF.Pinned)
	}
}

// earlyWaker wraps a pulse and deliberately under-reports its quiet span by
// a pseudo-random amount (sometimes claiming no quiescence at all). The
// Sleeper contract makes too-early wakes legal: they cost jumps, never
// correctness.
type earlyWaker struct {
	*pulse
	rng *RNG
}

func (e *earlyWaker) NextWake(now uint64) uint64 {
	wake := e.pulse.NextWake(now)
	if wake <= now {
		return wake
	}
	span := wake - now
	return now + e.rng.Uint64()%(span+1)
}

// TestFastForwardPropertyEarlyWakesHarmless: random too-early NextWake
// hints must never change terminal component state, across many seeds.
func TestFastForwardPropertyEarlyWakesHarmless(t *testing.T) {
	const targetWork = 1_000
	periods := []uint64{5, 17, 29}
	exact, _ := runPulses(t, periods, targetWork, false, nil)
	for seed := uint64(0); seed < 25; seed++ {
		clock := NewClock()
		rng := NewRNG(seed)
		pulses := make([]*pulse, len(periods))
		for i, per := range periods {
			pulses[i] = &pulse{period: per}
			clock.Register(&earlyWaker{pulse: pulses[i], rng: rng})
		}
		s := &Scheduler{Clock: clock, MaxCycles: targetWork * periods[0] * 10, FastForward: true,
			Done: func(uint64) bool { return pulses[0].work >= targetWork }}
		if out := s.Run(); !out.Completed || out.Cycles != (targetWork-1)*periods[0]+1 {
			t.Fatalf("seed %d: out = %+v", seed, out)
		}
		for i := range pulses {
			if *pulses[i] != *exact[i] {
				t.Fatalf("seed %d pulse %d diverged: exact %+v, hinted %+v",
					seed, i, *exact[i], *pulses[i])
			}
		}
	}
}

// TestFastForwardClampsAtCycleCap: an indefinitely quiescent system must
// jump straight to the cap and abort there, not beyond it.
func TestFastForwardClampsAtCycleCap(t *testing.T) {
	clock := NewClock()
	p := &pulse{period: 1 << 62} // wakes once at cycle 0, then sleeps "forever"
	clock.Register(p)
	s := &Scheduler{Clock: clock, MaxCycles: 100_000, FastForward: true,
		Done: func(uint64) bool { return false }}
	out := s.Run()
	if !errors.Is(out.Err, ErrCycleCapExceeded) {
		t.Fatalf("Err = %v, want ErrCycleCapExceeded", out.Err)
	}
	if out.Cycles != 100_000 {
		t.Fatalf("Cycles = %d, want exactly the 100000 cap", out.Cycles)
	}
	if p.ticks != 100_000 {
		t.Fatalf("component accounted %d ticks, want 100000", p.ticks)
	}
	if s.FF.Jumps == 0 {
		t.Fatal("quiescent run to the cap took no jumps")
	}
}

// TestFastForwardVisitsTimelineSamples: jumps must clamp at timeline sample
// points so a sampled run records the same number of snapshots either way.
func TestFastForwardVisitsTimelineSamples(t *testing.T) {
	run := func(ff bool) ([]*pulse, *Scheduler, int) {
		reg := obs.NewRegistry()
		var tl obs.Timeline
		tl.Every = 100
		pulses, s := runPulses(t, []uint64{997}, 3, ff, func(s *Scheduler) {
			s.Timeline = &tl
			s.Registry = reg
		})
		return pulses, s, len(tl.Points)
	}
	exact, _, nExact := run(false)
	fast, s, nFast := run(true)
	if nExact != nFast {
		t.Fatalf("timeline points: exact %d, ff %d", nExact, nFast)
	}
	if *exact[0] != *fast[0] {
		t.Fatalf("state diverged under timeline sampling: %+v vs %+v", *exact[0], *fast[0])
	}
	if s.FF.Jumps == 0 {
		t.Fatal("timeline-sampled run took no jumps")
	}
}

// TestFastForwardHoldsForWarmup: the warm-up predicate must be evaluated
// cycle-exactly until it first holds, and the recorded boundary must match
// the exact run's.
func TestFastForwardHoldsForWarmup(t *testing.T) {
	run := func(ff bool) (Outcome, *pulse) {
		clock := NewClock()
		p := &pulse{period: 500}
		clock.Register(p)
		s := &Scheduler{Clock: clock, MaxCycles: 100_000, FastForward: ff,
			Done:   func(uint64) bool { return p.work >= 20 },
			Warmed: func() bool { return p.work >= 3 }}
		return s.Run(), p
	}
	exact, pe := run(false)
	fast, pf := run(true)
	if exact.WarmBoundary == 0 || exact.WarmBoundary != fast.WarmBoundary {
		t.Fatalf("warm boundary: exact %d, ff %d", exact.WarmBoundary, fast.WarmBoundary)
	}
	if *pe != *pf {
		t.Fatalf("state diverged across warm-up: %+v vs %+v", *pe, *pf)
	}
}

// TestFastForwardPinnedReasons: each precondition failure must fall back to
// cycle-exact execution and record why.
func TestFastForwardPinnedReasons(t *testing.T) {
	base := func() *Scheduler {
		clock := NewClock()
		p := &pulse{period: 64}
		clock.Register(p)
		return &Scheduler{Clock: clock, MaxCycles: 10_000, FastForward: true,
			Done: func(uint64) bool { return p.work >= 16 }}
	}
	t.Run("check", func(t *testing.T) {
		s := base()
		s.Check = func(uint64) error { return nil }
		s.Run()
		if s.FF.Pinned != "check" || s.FF.Jumps != 0 {
			t.Fatalf("FF = %+v, want pinned \"check\" with no jumps", s.FF)
		}
	})
	t.Run("sample-without-bulk", func(t *testing.T) {
		s := base()
		s.Sample = func(uint64) {}
		s.Run()
		if s.FF.Pinned != "sample" || s.FF.Jumps != 0 {
			t.Fatalf("FF = %+v, want pinned \"sample\" with no jumps", s.FF)
		}
	})
	t.Run("non-sleeper-component", func(t *testing.T) {
		s := base()
		s.Clock.Register(ComponentFunc(func(uint64) {}))
		s.Run()
		if s.FF.Pinned != "component" || s.FF.Jumps != 0 {
			t.Fatalf("FF = %+v, want pinned \"component\" with no jumps", s.FF)
		}
	})
	t.Run("sample-with-bulk-jumps", func(t *testing.T) {
		s := base()
		samples := uint64(0)
		s.Sample = func(uint64) { samples++ }
		s.BulkSample = func(n uint64) { samples += n }
		s.Run()
		if s.FF.Pinned != "" || s.FF.Jumps == 0 {
			t.Fatalf("FF = %+v, want armed skip-ahead", s.FF)
		}
		// One sample per simulated cycle, exact or bulk: the run stops one
		// cycle after the 16th work tick (cycle 15*64), having sampled every
		// cycle it executed.
		if samples != 15*64+1 {
			t.Fatalf("samples = %d, want %d", samples, 15*64+1)
		}
	})
}

// TestFastForwardPreCanceledContext: cancellation checkpoints run on loop
// iterations, so even a run that would jump to its cap in one step aborts
// before executing any cycles when the context is already done.
func TestFastForwardPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	clock := NewClock()
	clock.Register(&pulse{period: 1 << 62})
	s := &Scheduler{Clock: clock, MaxCycles: 1 << 40, FastForward: true, Ctx: ctx,
		Done: func(uint64) bool { return false }}
	out := s.Run()
	if !errors.Is(out.Err, ErrCanceled) || out.Cycles != 0 {
		t.Fatalf("out = %+v, want ErrCanceled at cycle 0", out)
	}
}
