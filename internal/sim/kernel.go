package sim

// Component is a hardware block advanced by the simulation clock. Tick is
// called exactly once per simulated cycle, in the registration order of the
// components. Registration order therefore defines intra-cycle evaluation
// order; systems register consumers before producers so that a value written
// into a queue in cycle N is visible to its consumer in cycle N+1, matching
// a clocked hardware boundary.
type Component interface {
	// Tick advances the component by one cycle.
	Tick(cycle uint64)
}

// ComponentFunc adapts a plain function to the Component interface.
type ComponentFunc func(cycle uint64)

// Tick implements Component.
func (f ComponentFunc) Tick(cycle uint64) { f(cycle) }

// Clock drives a set of components cycle by cycle and tracks simulated time.
type Clock struct {
	components []Component
	cycle      uint64
	stop       bool
}

// NewClock returns an empty clock at cycle zero.
func NewClock() *Clock {
	return &Clock{}
}

// Register appends a component to the tick order.
func (c *Clock) Register(comp Component) {
	c.components = append(c.components, comp)
}

// Cycle reports the number of cycles fully executed so far.
func (c *Clock) Cycle() uint64 { return c.cycle }

// Stop requests that Run return at the end of the current cycle. It is
// typically called by a component that has detected end-of-trace.
func (c *Clock) Stop() { c.stop = true }

// Stopped reports whether Stop has been called.
func (c *Clock) Stopped() bool { return c.stop }

// Step executes a single cycle.
func (c *Clock) Step() {
	for _, comp := range c.components {
		comp.Tick(c.cycle)
	}
	c.cycle++
}

// Run executes until Stop is called or maxCycles elapse, whichever comes
// first, and returns the total number of cycles executed.
func (c *Clock) Run(maxCycles uint64) uint64 {
	start := c.cycle
	for !c.stop && c.cycle-start < maxCycles {
		c.Step()
	}
	return c.cycle - start
}
