package sim

// Component is a hardware block advanced by the simulation clock. Tick is
// called exactly once per simulated cycle, in the registration order of the
// components. Registration order therefore defines intra-cycle evaluation
// order; systems register consumers before producers so that a value written
// into a queue in cycle N is visible to its consumer in cycle N+1, matching
// a clocked hardware boundary.
type Component interface {
	// Tick advances the component by one cycle.
	Tick(cycle uint64)
}

// NeverWake is the NextWake return value of a component with no
// self-scheduled work: it changes state only in response to another
// component's exact tick, so it can sleep until one occurs. Because the
// scheduler only skips ahead when every component is quiescent, no such
// tick can happen inside a skipped span.
const NeverWake = ^uint64(0)

// QuietForever is the QuietTicks return value of a thread or unit that is
// indefinitely quiescent (the span-valued analogue of NeverWake).
const QuietForever = ^uint64(0)

// Sleeper is the optional Component extension consulted by the scheduler's
// event-driven fast-forward mode. A component implements it to report
// quiescence: spans of upcoming cycles whose ticks are bulk-replayable —
// they mutate nothing except linearly-accountable counters (idle/stall
// cycles, frozen-occupancy samples) and can therefore be applied in one
// step with bit-exact results.
//
// The contract, assuming every other component is also quiescent over the
// same span (the scheduler guarantees this before jumping):
//
//   - NextWake(now) returns the earliest cycle >= now at which the
//     component's Tick must execute exactly. Returning now means "tick me
//     this cycle" (not quiescent); returning W > now promises that the
//     ticks at cycles now..W-1 are bulk-replayable; NeverWake means the
//     component changes state only when some other component acts.
//   - FastForward(now, n) applies the bulk effect of the n ticks at cycles
//     now..now+n-1. The scheduler only calls it with n <= NextWake(now)-now
//     (clamped by its own duties: cycle cap, timeline samples).
//
// A too-early wake (underestimating the quiescent span) costs performance
// but never correctness: the scheduler simply ticks exactly through cycles
// the component could have slept. A too-late wake is a contract violation —
// the differential and property tests in this repository exist to catch it.
type Sleeper interface {
	Component
	// NextWake reports the earliest cycle >= now needing an exact Tick.
	NextWake(now uint64) uint64
	// FastForward bulk-applies the n skipped ticks at cycles now..now+n-1.
	FastForward(now, n uint64)
}

// ComponentFunc adapts a plain function to the Component interface.
type ComponentFunc func(cycle uint64)

// Tick implements Component.
func (f ComponentFunc) Tick(cycle uint64) { f(cycle) }

// Clock drives a set of components cycle by cycle and tracks simulated time.
// Loop control — termination predicates, cycle caps, warm-up boundaries —
// lives in Scheduler; the clock only owns the tick order.
type Clock struct {
	components []Component
	cycle      uint64
}

// NewClock returns an empty clock at cycle zero.
func NewClock() *Clock {
	return &Clock{}
}

// Register appends a component to the tick order.
func (c *Clock) Register(comp Component) {
	c.components = append(c.components, comp)
}

// Cycle reports the number of cycles fully executed so far.
func (c *Clock) Cycle() uint64 { return c.cycle }

// Step executes a single cycle.
func (c *Clock) Step() {
	for _, comp := range c.components {
		comp.Tick(c.cycle)
	}
	c.cycle++
}

// sleepers returns every registered component as a Sleeper, or ok=false
// when any component does not implement the quiescence contract — in which
// case the scheduler runs the whole simulation cycle-exactly.
func (c *Clock) sleepers() ([]Sleeper, bool) {
	out := make([]Sleeper, len(c.components))
	for i, comp := range c.components {
		sl, ok := comp.(Sleeper)
		if !ok {
			return nil, false
		}
		out[i] = sl
	}
	return out, true
}

// fastForward bulk-applies n skipped cycles to every component (which must
// all be Sleepers, pre-validated by sleepers) and advances the clock. The
// per-component FastForward calls run in registration order, mirroring
// Step, though order cannot matter: a skipped span has, by construction, no
// cross-component interaction.
func (c *Clock) fastForward(sleepers []Sleeper, n uint64) {
	for _, sl := range sleepers {
		sl.FastForward(c.cycle, n)
	}
	c.cycle += n
}
