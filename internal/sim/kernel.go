package sim

// Component is a hardware block advanced by the simulation clock. Tick is
// called exactly once per simulated cycle, in the registration order of the
// components. Registration order therefore defines intra-cycle evaluation
// order; systems register consumers before producers so that a value written
// into a queue in cycle N is visible to its consumer in cycle N+1, matching
// a clocked hardware boundary.
type Component interface {
	// Tick advances the component by one cycle.
	Tick(cycle uint64)
}

// ComponentFunc adapts a plain function to the Component interface.
type ComponentFunc func(cycle uint64)

// Tick implements Component.
func (f ComponentFunc) Tick(cycle uint64) { f(cycle) }

// Clock drives a set of components cycle by cycle and tracks simulated time.
// Loop control — termination predicates, cycle caps, warm-up boundaries —
// lives in Scheduler; the clock only owns the tick order.
type Clock struct {
	components []Component
	cycle      uint64
}

// NewClock returns an empty clock at cycle zero.
func NewClock() *Clock {
	return &Clock{}
}

// Register appends a component to the tick order.
func (c *Clock) Register(comp Component) {
	c.components = append(c.components, comp)
}

// Cycle reports the number of cycles fully executed so far.
func (c *Clock) Cycle() uint64 { return c.cycle }

// Step executes a single cycle.
func (c *Clock) Step() {
	for _, comp := range c.components {
		comp.Tick(c.cycle)
	}
	c.cycle++
}
