package cpu

import "fmt"

// Kind selects the core microarchitecture.
type Kind int

const (
	// InOrder is the 1-way in-order core.
	InOrder Kind = iota
	// OoO2 is the lean 2-way out-of-order core (48-entry ROB).
	OoO2
	// OoO4 is the aggressive 4-way out-of-order core (96-entry ROB).
	OoO4
)

func (k Kind) String() string {
	switch k {
	case InOrder:
		return "in-order"
	case OoO2:
		return "2-way OoO"
	case OoO4:
		return "4-way OoO"
	}
	return fmt.Sprintf("core(%d)", int(k))
}

// Kinds lists the evaluated core types in Table 1 order.
func Kinds() []Kind { return []Kind{InOrder, OoO2, OoO4} }

// Width returns the issue/retire width.
func (k Kind) Width() float64 {
	switch k {
	case OoO2:
		return 2
	case OoO4:
		return 4
	default:
		return 1
	}
}

// HazardScale converts a benchmark's dependency-hazard CPI component
// (calibrated on the 4-way OoO core) to this core: narrower, in-order
// machines expose more of each dependency chain.
func (k Kind) HazardScale() float64 {
	switch k {
	case OoO2:
		return 1.15
	case OoO4:
		return 1.0
	default:
		return 1.35
	}
}

// MemOverlap is the fraction of a cache-miss latency exposed as a stall.
// OoO cores overlap misses with independent work and with each other
// (memory-level parallelism); the in-order core hides less, though its
// hardware prefetchers still help.
func (k Kind) MemOverlap() float64 {
	switch k {
	case OoO2:
		return 0.26
	case OoO4:
		return 0.14
	default:
		return 0.40
	}
}

// HandlerIPC is the throughput (instructions per cycle) the core sustains
// on monitoring handler code. Handlers are short, cache-resident sequences
// with high ILP, so they run up to ~3x faster on the 4-way OoO core than
// in-order (Section 7.3).
func (k Kind) HandlerIPC() float64 {
	switch k {
	case OoO2:
		return 1.6
	case OoO4:
		return 2.5
	default:
		return 0.80
	}
}
