package cpu

import (
	"fmt"

	"fade/internal/isa"
	"fade/internal/mem"
	"fade/internal/sim"
	"fade/internal/trace"
)

// DetailedCore is a dependency-driven out-of-order pipeline model: a real
// reorder buffer, per-register readiness tracking over the stream's actual
// source/destination operands, cache-modelled load latencies, and in-order
// retirement at the core's width. It exists to cross-validate the
// calibrated rate-based AppCore (see the coremodel ablation): the two
// models must agree on which benchmarks are fast and which are
// memory-bound, even though the rate model folds dependency behaviour into
// a per-profile CPI term while this model derives it from the operands.
//
// The scheduling approximation is standard for analytical OoO models:
// within the ROB window, an instruction issues as soon as its sources are
// ready (infinite issue bandwidth), and retirement is in-order and
// width-limited. In-order cores additionally serialize issue.
type DetailedCore struct {
	kind Kind
	src  trace.Source
	hier *mem.Hierarchy
	rng  *sim.RNG

	robSize int
	rob     []robEntry // FIFO window, index 0 = oldest

	regReady  [isa.NumRegs]uint64 // cycle at which a register's value is available
	lastIssue uint64              // in-order cores: previous instruction's issue cycle

	cycle   uint64
	retired uint64
	done    bool

	// Branch handling: a taken-branch misprediction flushes the front
	// end; modeled as a fetch bubble with a per-kind penalty.
	fetchStallUntil uint64
}

type robEntry struct {
	completeAt uint64
	dest       isa.Reg
}

// ROBSize returns the reorder-buffer capacity of the core kind (Table 1:
// 48 entries for the 2-way core, 96 for the 4-way; in-order cores expose a
// small in-flight window).
func (k Kind) ROBSize() int {
	switch k {
	case OoO2:
		return 48
	case OoO4:
		return 96
	default:
		return 8
	}
}

// branchMissPenalty is the fetch-redirect cost of a mispredicted branch.
const branchMissPenalty = 12

// mispredictRate is the fraction of branches that mispredict under a
// conventional predictor on irregular integer code.
const mispredictRate = 0.04

// NewDetailedCore builds a detailed core over the instruction source.
func NewDetailedCore(kind Kind, src trace.Source, seed uint64) *DetailedCore {
	return &DetailedCore{
		kind:    kind,
		src:     src,
		hier:    mem.NewHierarchy(),
		rng:     sim.NewRNG(seed ^ 0xdeadc0de),
		robSize: kind.ROBSize(),
	}
}

// Done reports whether the stream is exhausted and the window drained.
func (c *DetailedCore) Done() bool { return c.done && len(c.rob) == 0 }

// Retired returns the number of retired instructions.
func (c *DetailedCore) Retired() uint64 { return c.retired }

// Cycle returns the current cycle.
func (c *DetailedCore) Cycle() uint64 { return c.cycle }

// Tick advances the pipeline by one cycle: retire completed instructions
// in order, then fetch/dispatch/issue new ones into the window. It
// implements sim.Component (the core keeps its own cycle counter, which the
// driving clock mirrors).
func (c *DetailedCore) Tick(cycle uint64) {
	width := int(c.kind.Width())

	// Retire up to width completed instructions from the head.
	for n := 0; n < width && len(c.rob) > 0; n++ {
		if c.rob[0].completeAt > c.cycle {
			break
		}
		c.rob = c.rob[1:]
		c.retired++
	}

	// Fetch and schedule new instructions while the window has space.
	for n := 0; n < width && len(c.rob) < c.robSize && !c.done; n++ {
		if c.cycle < c.fetchStallUntil {
			break
		}
		in, ok := c.src.Next()
		if !ok {
			c.done = true
			break
		}
		c.schedule(in)
	}
	c.cycle++
}

// schedule computes the instruction's issue and completion cycles from its
// register dependencies and operation latency.
func (c *DetailedCore) schedule(in isa.Instr) {
	ready := c.cycle
	if in.Src1 < isa.NumRegs && c.regReady[in.Src1] > ready {
		ready = c.regReady[in.Src1]
	}
	if in.Src2 < isa.NumRegs && c.regReady[in.Src2] > ready {
		ready = c.regReady[in.Src2]
	}
	if c.kind == InOrder && c.lastIssue > ready {
		// In-order issue: cannot start before the previous instruction.
		ready = c.lastIssue
	}
	c.lastIssue = ready

	lat := c.latency(in)
	complete := ready + lat

	if in.Dest < isa.NumRegs {
		c.regReady[in.Dest] = complete
	}
	switch in.Op {
	case isa.OpBranch, isa.OpJmpReg:
		if c.rng.Bool(mispredictRate) {
			// Redirect fetch once the branch resolves.
			c.fetchStallUntil = complete + branchMissPenalty
		}
	case isa.OpCall, isa.OpRet:
		c.fetchStallUntil = ready + 2 // pipeline redirect
	}
	c.rob = append(c.rob, robEntry{completeAt: complete, dest: in.Dest})
}

// latency returns the execution latency of the instruction, with loads
// priced by the cache hierarchy.
func (c *DetailedCore) latency(in isa.Instr) uint64 {
	switch in.Op {
	case isa.OpLoad:
		return uint64(c.hier.AccessLatency(in.Addr))
	case isa.OpStore:
		c.hier.AccessLatency(in.Addr) // moves the line; store buffer hides latency
		return 1
	case isa.OpFPALU:
		return 3
	case isa.OpMalloc, isa.OpFree, isa.OpTaintSrc:
		return 30 // library-call overhead
	default:
		return 1
	}
}

// RunDetailed executes the whole stream on the sim kernel and returns
// (cycles, instructions). A stream that fails to drain within maxCycles
// returns the partial counts alongside an error wrapping
// sim.ErrCycleCapExceeded — truncation is never silent.
func RunDetailed(kind Kind, src trace.Source, seed uint64, maxCycles uint64) (uint64, uint64, error) {
	c := NewDetailedCore(kind, src, seed)
	clock := sim.NewClock()
	clock.Register(c)
	sched := &sim.Scheduler{Clock: clock, MaxCycles: maxCycles,
		Done: func(uint64) bool { return c.Done() }}
	out := sched.Run()
	if !out.Completed {
		return c.Cycle(), c.Retired(), fmt.Errorf("cpu: detailed core run aborted: %w", out.Err)
	}
	return c.Cycle(), c.Retired(), nil
}
