// Package cpu provides the core timing models of the evaluated systems
// (Table 1): an application core that retires the synthetic instruction
// stream and produces monitored events, and a monitor core that executes
// software handlers. Three microarchitectures are modeled — in-order
// 1-way, lean OoO 2-way/48-entry ROB, and aggressive OoO 4-way/96-entry
// ROB — plus the fine-grained dual-threaded (SMT) sharing used by the
// single-core monitoring system (Fig. 8b).
//
// The model is rate-based at cycle granularity: each instruction has a cost
// in cycles composed of an issue slot (1/width), an exposed
// dependency-hazard component (fully exposed in-order, largely hidden by
// out-of-order execution), and an exposed memory-stall component from the
// cache hierarchy (overlapped by OoO memory-level parallelism). A hardware
// thread receives a per-cycle share of the core; the SMT system splits
// shares between the application and monitor threads.
//
// A second, dependency-driven detailed model (detailed.go) with a real ROB
// and register dependencies cross-validates the rate model's calibration
// (see the ablation-coremodel experiment).
//
// # Observability
//
// AppCore and MonitorCore implement obs.Collector, exporting the app.* and
// moncore.* metric name spaces (instruction/event production, backpressure
// stalls, handler activity, memory hierarchy behaviour). See
// docs/METRICS.md.
package cpu
