package cpu

import (
	"testing"

	"fade/internal/core"
	"fade/internal/isa"
	"fade/internal/metadata"
	"fade/internal/monitor"
	"fade/internal/queue"
	"fade/internal/trace"
)

func TestKindAccessors(t *testing.T) {
	if len(Kinds()) != 3 {
		t.Fatalf("kinds = %v", Kinds())
	}
	if InOrder.Width() != 1 || OoO2.Width() != 2 || OoO4.Width() != 4 {
		t.Fatal("widths wrong")
	}
	for _, k := range Kinds() {
		if k.String() == "" {
			t.Errorf("kind %d empty name", k)
		}
		if k.HandlerIPC() <= 0 || k.MemOverlap() <= 0 || k.HazardScale() <= 0 {
			t.Errorf("kind %v has non-positive model constants", k)
		}
	}
	// Monotonicity: wider cores run handlers faster and hide more.
	if !(InOrder.HandlerIPC() < OoO2.HandlerIPC() && OoO2.HandlerIPC() < OoO4.HandlerIPC()) {
		t.Fatal("handler IPC not monotone")
	}
	if !(InOrder.MemOverlap() > OoO2.MemOverlap() && OoO2.MemOverlap() > OoO4.MemOverlap()) {
		t.Fatal("memory overlap not monotone")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind has empty name")
	}
}

func runAppCore(t *testing.T, kind Kind, bench string, instrs uint64) (*AppCore, uint64) {
	t.Helper()
	prof, ok := trace.Lookup(bench)
	if !ok {
		t.Fatalf("unknown bench %s", bench)
	}
	g := trace.New(prof, 1, instrs)
	app := NewAppCore(kind, prof, g, nil, nil)
	var cycles uint64
	for !app.Done() {
		app.TickShare(1.0)
		cycles++
		if cycles > instrs*100 {
			t.Fatal("app core did not finish")
		}
	}
	return app, cycles
}

func TestAppCoreBaselineIPCBands(t *testing.T) {
	// Calibration bands for the 4-way OoO core (DESIGN.md §5): the suite
	// spreads from memory-bound mcf (lowest) to bzip/hmmer (highest).
	bands := map[string][2]float64{
		"astar": {0.7, 1.4},
		"bzip":  {1.3, 2.2},
		"gcc":   {0.8, 1.5},
		"gobmk": {0.8, 1.6},
		"hmmer": {1.0, 1.8},
		"libq":  {0.6, 1.5},
		"mcf":   {0.2, 0.6},
		"omnet": {0.7, 1.4},
	}
	for bench, band := range bands {
		app, cycles := runAppCore(t, OoO4, bench, 100_000)
		ipc := float64(app.Instrs()) / float64(cycles)
		if ipc < band[0] || ipc > band[1] {
			t.Errorf("%s IPC %.2f outside [%v,%v]", bench, ipc, band[0], band[1])
		}
	}
}

func TestAppCoreKindOrdering(t *testing.T) {
	// Wider cores retire the same program faster.
	_, c1 := runAppCore(t, InOrder, "astar", 60_000)
	_, c2 := runAppCore(t, OoO2, "astar", 60_000)
	_, c4 := runAppCore(t, OoO4, "astar", 60_000)
	if !(c1 > c2 && c2 > c4) {
		t.Fatalf("cycle ordering violated: in-order %d, 2-way %d, 4-way %d", c1, c2, c4)
	}
	// The paper's observation: in-order produces up to ~2x fewer events
	// per cycle; allow 1.5x-4x.
	ratio := float64(c1) / float64(c4)
	if ratio < 1.5 || ratio > 4.5 {
		t.Fatalf("in-order/4-way cycle ratio %.2f out of band", ratio)
	}
}

func TestAppCoreDeterminism(t *testing.T) {
	_, a := runAppCore(t, OoO4, "gcc", 50_000)
	_, b := runAppCore(t, OoO4, "gcc", 50_000)
	if a != b {
		t.Fatalf("same config produced %d and %d cycles", a, b)
	}
}

func TestAppCoreSMTShareSlowsProgress(t *testing.T) {
	prof, _ := trace.Lookup("astar")
	full := NewAppCore(OoO4, prof, trace.New(prof, 1, 30_000), nil, nil)
	half := NewAppCore(OoO4, prof, trace.New(prof, 1, 30_000), nil, nil)
	var cf, ch uint64
	for !full.Done() {
		full.TickShare(1.0)
		cf++
	}
	for !half.Done() {
		half.TickShare(0.5)
		ch++
	}
	if ch < cf*3/2 {
		t.Fatalf("half share barely slower: full %d, half %d", cf, ch)
	}
}

func TestAppCoreBackpressure(t *testing.T) {
	prof, _ := trace.Lookup("bzip") // monitored IPC > 1 under MemLeak
	mon, _ := monitor.New("MemLeak", 1)
	evq := queue.NewBounded[isa.Event](8)
	app := NewAppCore(OoO4, prof, trace.New(prof, 1, 20_000), mon, evq)
	var cycles uint64
	for !app.Done() && cycles < 2_000_000 {
		app.TickShare(1.0)
		evq.SampleOccupancy()
		if cycles%2 == 0 {
			evq.Pop() // slow consumer: half an event per cycle
		}
		cycles++
	}
	if app.BackpressureCycles() == 0 {
		t.Fatal("no backpressure against a slow consumer")
	}
	if evq.MaxLen() > 8 {
		t.Fatalf("queue exceeded capacity: %d", evq.MaxLen())
	}
	if app.MonitoredEvents() == 0 {
		t.Fatal("no monitored events produced")
	}
}

func TestAppCoreEventSeqMonotonic(t *testing.T) {
	prof, _ := trace.Lookup("astar")
	mon, _ := monitor.New("AddrCheck", 1)
	evq := queue.NewBounded[isa.Event](queue.Unbounded)
	app := NewAppCore(OoO4, prof, trace.New(prof, 1, 20_000), mon, evq)
	for !app.Done() {
		app.TickShare(1.0)
	}
	var prev uint64
	first := true
	for {
		ev, ok := evq.Pop()
		if !ok {
			break
		}
		if !first && ev.Seq != prev+1 {
			t.Fatalf("sequence gap: %d after %d", ev.Seq, prev)
		}
		prev = ev.Seq
		first = false
	}
}

func TestMonitorCoreDirectProcessesEverything(t *testing.T) {
	mon, _ := monitor.New("AddrCheck", 1)
	md := metadata.NewState()
	mon.Init(md)
	evq := queue.NewBounded[isa.Event](64)
	mc := NewMonitorCoreDirect(OoO4, mon, md, evq)

	for i := 0; i < 10; i++ {
		evq.Push(isa.Event{Kind: isa.EvInstr, Op: isa.OpLoad, Addr: 0x1000_0000,
			Src1: isa.RegNone, Src2: isa.RegNone, Dest: 1, Seq: uint64(i)})
	}
	cycles := 0
	for mc.Busy() {
		mc.TickShare(1.0)
		cycles++
		if cycles > 10_000 {
			t.Fatal("monitor core did not drain")
		}
	}
	if mc.Handled() != 10 {
		t.Fatalf("handled = %d", mc.Handled())
	}
	if mc.BusyCycles() == 0 {
		t.Fatal("busy cycles not counted")
	}
	// AddrCheck fast path is 5 instructions at IPC 2.5: 2 cycles each.
	if cycles < 10 || cycles > 40 {
		t.Fatalf("drain took %d cycles", cycles)
	}
}

func TestMonitorCoreSignalsCompletion(t *testing.T) {
	mon, _ := monitor.New("AddrCheck", 1)
	md := metadata.NewState()
	mon.Init(md)
	evq := queue.NewBounded[isa.Event](4)
	ufq := queue.NewBounded[core.Unfiltered](16)
	fu := core.New(core.DefaultConfig(core.NonBlocking), md, evq, ufq, nil)
	mon.Program(core.ProgrammerFor(fu))
	mc := NewMonitorCoreFADE(OoO4, mon, md, ufq, fu, false)

	ufq.Push(core.Unfiltered{Ev: isa.Event{Kind: isa.EvHighLevel, Op: isa.OpMalloc,
		Addr: 0x4000_0000, Size: 64, Seq: 3}})
	// Mirror the accelerator-side bookkeeping for the forwarded event.
	// (In a full system the FU pushes and counts; here we emulate it.)
	for i := 0; i < 200 && mc.Busy(); i++ {
		mc.TickShare(1.0)
	}
	if mc.Handled() != 1 {
		t.Fatalf("handled = %d", mc.Handled())
	}
	if md.Mem.Load(0x4000_0000) == 0 {
		t.Fatal("handler effects not applied")
	}
}

func TestMonitorCoreClassAccounting(t *testing.T) {
	mon, _ := monitor.New("MemCheck", 1)
	md := metadata.NewState()
	mon.Init(md)
	evq := queue.NewBounded[isa.Event](16)
	mc := NewMonitorCoreDirect(OoO4, mon, md, evq)
	evq.Push(isa.Event{Kind: isa.EvStackCall, Addr: 0xE0000000, Size: 64, Seq: 0})
	for mc.Busy() {
		mc.TickShare(1.0)
	}
	if mc.ClassInstr()[monitor.ClassStack] == 0 {
		t.Fatal("stack class instructions not recorded")
	}
}

func TestMonitorCoreShareScalesDuration(t *testing.T) {
	mkRun := func(share float64) int {
		mon, _ := monitor.New("AtomCheck", 4)
		md := metadata.NewState()
		mon.Init(md)
		evq := queue.NewBounded[isa.Event](16)
		mc := NewMonitorCoreDirect(OoO4, mon, md, evq)
		evq.Push(isa.Event{Kind: isa.EvInstr, Op: isa.OpLoad, Addr: 0x4000_0000,
			Src1: isa.RegNone, Src2: isa.RegNone, Dest: 1, Thread: 1, Seq: 0})
		cycles := 0
		for mc.Busy() {
			mc.TickShare(share)
			cycles++
		}
		return cycles
	}
	full := mkRun(1.0)
	half := mkRun(0.5)
	if half < full*3/2 {
		t.Fatalf("half-share handler barely slower: %d vs %d", half, full)
	}
}
