package cpu

import (
	"fade/internal/isa"
	"fade/internal/mem"
	"fade/internal/monitor"
	"fade/internal/obs"
	"fade/internal/queue"
	"fade/internal/trace"
)

// hotter is implemented by generators that expose phase information; the
// core uses it to pick the hazard-CPI component for the current region.
type hotter interface{ Hot() bool }

// AppCore models the application core: it retires the instruction stream,
// runs memory references through its cache hierarchy, and enqueues
// monitored events. When the event queue is full the core stalls — the ROB
// fills and retirement stops (producer backpressure, Section 3.2).
type AppCore struct {
	kind Kind
	prof *trace.Profile
	src  trace.Source
	mon  monitor.Monitor // nil for the unmonitored baseline
	evq  *queue.Bounded[isa.Event]
	hier *mem.Hierarchy

	credit float64 // accumulated execution capacity, cycles
	// pending is held by value: a pointer field here would make every
	// monitored event escape to the heap (the hottest allocation site in
	// the whole simulator), even though only full-queue events are parked.
	pending    isa.Event
	hasPending bool
	seq        uint64
	done       bool
	instrs     uint64
	monitored  uint64

	backpressure uint64 // cycles fully stalled on a full event queue
	activeCycles uint64 // cycles with any forward progress
}

// NewAppCore builds an application core. mon may be nil (unmonitored
// baseline); evq may be nil only when mon is nil.
func NewAppCore(kind Kind, prof *trace.Profile, src trace.Source, mon monitor.Monitor, evq *queue.Bounded[isa.Event]) *AppCore {
	return &AppCore{
		kind: kind, prof: prof, src: src, mon: mon, evq: evq,
		hier: mem.NewHierarchy(),
	}
}

// Done reports whether the instruction stream is exhausted and all events
// have been enqueued.
func (c *AppCore) Done() bool { return c.done && !c.hasPending }

// Instrs returns retired instructions.
func (c *AppCore) Instrs() uint64 { return c.instrs }

// MonitoredEvents returns the number of monitored events produced.
func (c *AppCore) MonitoredEvents() uint64 { return c.monitored }

// BackpressureCycles returns cycles lost to a full event queue.
func (c *AppCore) BackpressureCycles() uint64 { return c.backpressure }

// Stalled reports whether the core is currently blocked on the event queue.
func (c *AppCore) Stalled() bool { return c.hasPending && c.evq != nil && c.evq.Full() }

// PendingEvent reports whether a retired monitored event is still waiting to
// enter the event queue. The invariant checker uses it to reconcile event
// conservation: a pending event is produced but not yet pushed.
func (c *AppCore) PendingEvent() bool { return c.hasPending }

// Hierarchy exposes the core's caches for reporting.
func (c *AppCore) Hierarchy() *mem.Hierarchy { return c.hier }

// CollectMetrics exposes the application core's counters under the "app."
// name space (see docs/METRICS.md). It implements obs.Collector.
func (c *AppCore) CollectMetrics(s obs.Sink) {
	c.MetricsCollector("app").CollectMetrics(s)
}

// MetricsCollector returns a collector emitting the core's counters under
// the given prefix ("app" for a single-core system, "app.3" for core 3 of a
// CMP; see docs/METRICS.md for the per-core grammar).
func (c *AppCore) MetricsCollector(prefix string) obs.Collector {
	return obs.CollectorFunc(func(s obs.Sink) {
		s.Counter(prefix+".instrs", c.instrs)
		s.Counter(prefix+".monitored_events", c.monitored)
		s.Counter(prefix+".stall.backpressure_cycles", c.backpressure)
		s.Counter(prefix+".cycles.active", c.activeCycles)
		c.hier.MetricsCollector(prefix + ".mem").CollectMetrics(s)
	})
}

// Tick implements sim.Component for contexts where the core owns its cycle
// outright (unmonitored baselines, the rate-model cross-validation).
func (c *AppCore) Tick(cycle uint64) { c.TickShare(1.0) }

// TickShare advances the core by one cycle with the given share of the
// core's resources (1.0 when it owns the core, 0.5 under SMT sharing).
func (c *AppCore) TickShare(share float64) {
	if c.Done() {
		return
	}
	// A blocked enqueue must drain before anything else retires.
	if c.hasPending {
		if !c.evq.Push(c.pending) {
			c.backpressure++
			return
		}
		c.hasPending = false
	}
	c.activeCycles++
	c.credit += share * c.kind.Width()
	// Cap banked capacity at one cycle's worth: idle slots don't bank up
	// beyond the pipeline's buffering.
	if max := 2 * c.kind.Width(); c.credit > max {
		c.credit = max
	}
	for c.credit > 0 && !c.done {
		in, ok := c.src.Next()
		if !ok {
			c.done = true
			break
		}
		c.credit -= c.instrCost(in)
		c.instrs++
		if c.mon != nil && c.mon.Monitored(in) {
			ev := c.mon.EventOf(in, c.seq)
			c.seq++
			c.monitored++
			if !c.evq.Push(ev) {
				c.pending = ev
				c.hasPending = true
				return
			}
		}
	}
}

// quietForever mirrors sim.QuietForever / sim.NeverWake without importing
// the kernel package: the cpu package implements sim's quiescence contracts
// structurally, exactly like sim.Component.
const quietForever = ^uint64(0)

// QuietTicks implements sim.ThreadSleeper. The core is quiescent in three
// states, all of which its TickShare handles before any instruction
// retires:
//
//   - drained: the stream is exhausted and the pending event (if any) was
//     enqueued — ticks are no-ops forever;
//   - backpressured: a retired event is parked on a full event queue —
//     each tick is one failed push plus one backpressure cycle, until the
//     consumer pops (an external act, so: quiet forever);
//   - credit recovery: a long-latency instruction (DRAM miss, allocator
//     call) drove the credit pool negative — each tick only banks
//     share x width capacity until the pool turns positive, which is the
//     wake tick that resumes retirement.
func (c *AppCore) QuietTicks(share float64) uint64 {
	if c.Done() {
		return quietForever
	}
	if c.hasPending {
		if c.evq.Full() {
			return quietForever
		}
		return 0 // the parked event drains next tick
	}
	inc := share * c.kind.Width()
	if inc <= 0 {
		// A zero share cannot reach this state through the SMT split
		// (stalled and drained cores are handled above), but claim only
		// what is provable: with no banked deficit nothing is quiet.
		if c.credit <= 0 {
			return quietForever
		}
		return 0
	}
	// Count the ticks that leave the pool non-positive, replaying the
	// float accumulation exactly as TickShare will.
	n := uint64(0)
	for cr := c.credit + inc; cr <= 0; cr += inc {
		n++
	}
	return n
}

// SkipTicks implements sim.ThreadSleeper, bulk-applying n quiescent ticks.
// The credit pool is replayed addition-by-addition: repeated float adds are
// not equivalent to one fused add, and slowdown measurements hang off every
// retirement cycle downstream of this pool.
func (c *AppCore) SkipTicks(n uint64, share float64) {
	if n == 0 || c.Done() {
		return
	}
	if c.hasPending {
		c.evq.StallN(n)
		c.backpressure += n
		return
	}
	inc := share * c.kind.Width()
	c.activeCycles += n
	for i := uint64(0); i < n; i++ {
		c.credit += inc
	}
}

// NextWake implements sim.Sleeper for contexts where the core is
// registered on the clock directly (unmonitored baselines): full share,
// no arbitration.
func (c *AppCore) NextWake(now uint64) uint64 {
	q := c.QuietTicks(1)
	if q == quietForever || now+q < now {
		return quietForever // sim.NeverWake
	}
	return now + q
}

// FastForward implements sim.Sleeper (full-share bulk advance).
func (c *AppCore) FastForward(now, n uint64) { c.SkipTicks(n, 1) }

// instrCost returns the instruction's cost in issue-width-normalized units
// (the credit pool is in slots, so a plain instruction costs 1 slot and
// stalls cost width×cycles).
func (c *AppCore) instrCost(in isa.Instr) float64 {
	cost := 1.0 // one issue slot
	w := c.kind.Width()

	hz := c.prof.HazardCPI
	if h, ok := c.src.(hotter); ok && h.Hot() && c.prof.PhaseLen > 0 {
		hz = c.prof.HotHazard
	}
	cost += hz * c.kind.HazardScale() * w

	if in.Op.IsMem() {
		lat := c.hier.AccessLatency(in.Addr)
		if l1 := mem.L1Config.HitLatency; lat > l1 {
			cost += float64(lat-l1) * c.kind.MemOverlap() * w
		}
	}
	switch in.Op {
	case isa.OpCall, isa.OpRet:
		cost += 1 * w // pipeline redirect
	case isa.OpMalloc, isa.OpFree, isa.OpTaintSrc:
		cost += 30 * w // library-call overhead in the application itself
	case isa.OpBranch, isa.OpJmpReg:
		cost += 0.10 * w // amortized misprediction cost
	}
	return cost
}
