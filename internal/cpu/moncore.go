package cpu

import (
	"fade/internal/core"
	"fade/internal/isa"
	"fade/internal/metadata"
	"fade/internal/monitor"
	"fade/internal/obs"
	"fade/internal/queue"
)

// MonitorCore models the hardware thread (or core) running the monitoring
// software. In a FADE-enabled system it consumes the unfiltered event queue
// and signals handler completion back to the accelerator; in an
// unaccelerated system it consumes the (single) event queue directly and
// executes a handler for every monitored event.
type MonitorCore struct {
	kind Kind
	mon  monitor.Monitor
	md   *metadata.State

	// Exactly one of the two queues is set.
	ufq *queue.Bounded[core.Unfiltered]
	evq *queue.Bounded[isa.Event]

	fu *core.FilteringUnit // non-nil in FADE systems

	// critRegs is true when software owns critical register metadata
	// (unaccelerated and blocking-FADE systems).
	critRegs bool

	busyLeft   float64 // remaining handler instructions
	curSeq     uint64
	inFlight   bool
	busyCycles uint64
	idleCycles uint64

	handled    uint64
	reported   uint64 // cumulative detections (reports is drained by Reports)
	reports    []monitor.Report
	classInstr map[monitor.Class]float64
}

// NewMonitorCoreFADE builds the unfiltered-event consumer of a FADE system.
func NewMonitorCoreFADE(kind Kind, mon monitor.Monitor, md *metadata.State, ufq *queue.Bounded[core.Unfiltered], fu *core.FilteringUnit, critRegs bool) *MonitorCore {
	return &MonitorCore{
		kind: kind, mon: mon, md: md, ufq: ufq, fu: fu, critRegs: critRegs,
		classInstr: make(map[monitor.Class]float64),
	}
}

// NewMonitorCoreDirect builds the consumer of an unaccelerated system: all
// monitored events arrive on a single queue and are handled in software.
func NewMonitorCoreDirect(kind Kind, mon monitor.Monitor, md *metadata.State, evq *queue.Bounded[isa.Event]) *MonitorCore {
	return &MonitorCore{
		kind: kind, mon: mon, md: md, evq: evq, critRegs: true,
		classInstr: make(map[monitor.Class]float64),
	}
}

// Busy reports whether a handler is executing or events are waiting.
func (c *MonitorCore) Busy() bool {
	if c.inFlight {
		return true
	}
	if c.ufq != nil {
		return !c.ufq.Empty()
	}
	return !c.evq.Empty()
}

// Handled returns the number of handlers executed.
func (c *MonitorCore) Handled() uint64 { return c.handled }

// BusyCycles and IdleCycles report utilization.
func (c *MonitorCore) BusyCycles() uint64 { return c.busyCycles }
func (c *MonitorCore) IdleCycles() uint64 { return c.idleCycles }

// InFlight reports whether a handler invocation is currently executing. The
// invariant checker uses it to reconcile outstanding-event accounting: an
// in-flight handler holds one event popped from the UFQ but not yet
// completed back to the filtering unit.
func (c *MonitorCore) InFlight() bool { return c.inFlight }

// Reports returns and clears the accumulated detections.
func (c *MonitorCore) Reports() []monitor.Report {
	r := c.reports
	c.reports = nil
	return r
}

// ReportCount returns the number of detections so far.
func (c *MonitorCore) ReportCount() int { return len(c.reports) }

// ClassInstr returns the handler instructions executed per class, the raw
// material of the Fig. 4(a) execution-time breakdown.
func (c *MonitorCore) ClassInstr() map[monitor.Class]float64 { return c.classInstr }

// CollectMetrics exposes the monitor thread's counters under the "moncore."
// name space (see docs/METRICS.md). It implements obs.Collector.
func (c *MonitorCore) CollectMetrics(s obs.Sink) {
	c.MetricsCollector("moncore").CollectMetrics(s)
}

// MetricsCollector returns a collector emitting the thread's counters under
// the given prefix ("moncore" for a single-core system, "moncore.3" for the
// monitor thread serving core 3 of a CMP).
func (c *MonitorCore) MetricsCollector(prefix string) obs.Collector {
	return obs.CollectorFunc(func(s obs.Sink) {
		s.Counter(prefix+".handlers_run", c.handled)
		s.Counter(prefix+".busy_cycles", c.busyCycles)
		s.Counter(prefix+".stall_cycles", c.idleCycles)
		s.Counter(prefix+".reports", c.reported)
		for _, class := range monitor.Classes() {
			s.Gauge(prefix+".handler_instrs."+class.MetricName(), c.classInstr[class])
		}
	})
}

// TickShare advances the monitor thread by one cycle at the given resource
// share. Handler progress is HandlerIPC x share instructions per cycle.
func (c *MonitorCore) TickShare(share float64) {
	if c.inFlight {
		c.busyCycles++
		c.busyLeft -= c.kind.HandlerIPC() * share
		if c.busyLeft <= 0 {
			c.inFlight = false
			if c.fu != nil {
				c.fu.Complete(c.curSeq)
			}
		}
		return
	}
	// Dispatch the next event, if any.
	if c.ufq != nil {
		u, ok := c.ufq.Pop()
		if !ok {
			c.idleCycles++
			return
		}
		hc := monitor.HandleCtx{
			CritRegs: c.critRegs,
			MDValid:  u.MDValid,
			S1:       u.MD.S1, S2: u.MD.S2, D: u.MD.D,
		}
		c.start(u.Ev, u.Short, share, hc)
		return
	}
	ev, ok := c.evq.Pop()
	if !ok {
		c.idleCycles++
		return
	}
	c.start(ev, false, share, monitor.HandleCtx{CritRegs: true})
}

// QuietTicks implements sim.ThreadSleeper. An idle thread (no in-flight
// handler, empty queue) is quiet until a producer enqueues work; a thread
// crunching a long handler is quiet until the tick on which the remaining
// work reaches zero — that tick completes the handler (and, in FADE
// systems, signals the accelerator), so it must execute exactly.
func (c *MonitorCore) QuietTicks(share float64) uint64 {
	if c.inFlight {
		dec := c.kind.HandlerIPC() * share
		if dec <= 0 {
			return quietForever // no progress at zero share
		}
		n := uint64(0)
		for left := c.busyLeft - dec; left > 0; left -= dec {
			n++
		}
		return n
	}
	if c.ufq != nil {
		if c.ufq.Empty() {
			return quietForever
		}
	} else if c.evq.Empty() {
		return quietForever
	}
	return 0 // an event is waiting: next tick dispatches it
}

// SkipTicks implements sim.ThreadSleeper. In-flight handler progress is
// replayed subtraction-by-subtraction for bit-exact remaining work; idle
// ticks are pure stall accounting.
func (c *MonitorCore) SkipTicks(n uint64, share float64) {
	if n == 0 {
		return
	}
	if c.inFlight {
		c.busyCycles += n
		dec := c.kind.HandlerIPC() * share
		for i := uint64(0); i < n; i++ {
			c.busyLeft -= dec
		}
		return
	}
	c.idleCycles += n
}

// start runs the handler functionally and arms the cost timer. The
// functional effects apply at dispatch; completion (and the FSQ discard) is
// signaled when the modeled handler duration elapses — any interim reader
// sees the same critical values through the FSQ, so the early application
// is unobservable (see internal/system differential tests).
func (c *MonitorCore) start(ev isa.Event, short bool, share float64, hc monitor.HandleCtx) {
	res := c.mon.Handle(ev, c.md, hc)
	cost := res.Cost
	if short && res.ShortCost > 0 {
		// Partially filtered event: the hardware already performed the
		// check; only the short handler body runs (Section 4.1).
		cost = res.ShortCost
	}
	c.classInstr[res.Class] += float64(res.Cost)
	c.reports = append(c.reports, res.Reports...)
	c.reported += uint64(len(res.Reports))
	c.handled++
	c.curSeq = ev.Seq
	c.inFlight = true
	c.busyCycles++
	c.busyLeft = float64(cost) - c.kind.HandlerIPC()*share
	if c.busyLeft <= 0 {
		c.inFlight = false
		if c.fu != nil {
			c.fu.Complete(c.curSeq)
		}
	}
}

// Finalize runs the monitor's end-of-run analysis.
func (c *MonitorCore) Finalize() []monitor.Report {
	final := c.mon.Finalize(c.md)
	c.reports = append(c.reports, final...)
	c.reported += uint64(len(final))
	return c.Reports()
}
