package cpu

import (
	"testing"

	"fade/internal/trace"
)

func detIPC(t *testing.T, kind Kind, bench string, instrs uint64) float64 {
	t.Helper()
	prof, ok := trace.Lookup(bench)
	if !ok {
		t.Fatalf("unknown bench %s", bench)
	}
	cycles, retired, err := RunDetailed(kind, trace.New(prof, 1, instrs), 1, instrs*200)
	if err != nil {
		t.Fatalf("%s: %v", bench, err)
	}
	if retired != instrs {
		t.Fatalf("%s: retired %d of %d", bench, retired, instrs)
	}
	return float64(retired) / float64(cycles)
}

func TestDetailedIPCBounded(t *testing.T) {
	for _, kind := range Kinds() {
		ipc := detIPC(t, kind, "hmmer", 60_000)
		if ipc <= 0 || ipc > kind.Width() {
			t.Fatalf("%v IPC %.2f outside (0, width]", kind, ipc)
		}
	}
}

func TestDetailedWidthOrdering(t *testing.T) {
	io := detIPC(t, InOrder, "astar", 60_000)
	w2 := detIPC(t, OoO2, "astar", 60_000)
	w4 := detIPC(t, OoO4, "astar", 60_000)
	if !(io < w2 && w2 < w4) {
		t.Fatalf("IPC not monotone in width: %.2f, %.2f, %.2f", io, w2, w4)
	}
}

// TestDetailedCrossValidatesRateModel: the dependency-driven model and the
// calibrated rate model must agree on the workload extremes — mcf is the
// memory-bound outlier, bzip/hmmer/gobmk are the fast regular codes — even
// though they derive timing completely differently.
func TestDetailedCrossValidatesRateModel(t *testing.T) {
	benches := []string{"astar", "bzip", "gobmk", "hmmer", "libq", "mcf", "omnet"}
	det := map[string]float64{}
	for _, b := range benches {
		det[b] = detIPC(t, OoO4, b, 80_000)
	}
	for _, b := range benches {
		if b != "mcf" && det[b] <= det["mcf"] {
			t.Errorf("detailed model: %s IPC %.2f <= mcf %.2f; mcf must be the memory-bound minimum", b, det[b], det["mcf"])
		}
	}
	if det["mcf"] > 1.0 {
		t.Errorf("detailed model: mcf IPC %.2f not memory-bound", det["mcf"])
	}
	if det["bzip"] < 1.1 && det["gobmk"] < 1.1 {
		t.Errorf("detailed model: fast codes too slow: bzip %.2f gobmk %.2f", det["bzip"], det["gobmk"])
	}
}

func TestDetailedDeterminism(t *testing.T) {
	a := detIPC(t, OoO4, "gcc", 40_000)
	b := detIPC(t, OoO4, "gcc", 40_000)
	if a != b {
		t.Fatalf("non-deterministic: %.6f vs %.6f", a, b)
	}
}

func TestDetailedROBSizes(t *testing.T) {
	if OoO2.ROBSize() != 48 || OoO4.ROBSize() != 96 {
		t.Fatal("ROB sizes do not match Table 1")
	}
	if InOrder.ROBSize() <= 0 {
		t.Fatal("in-order window not positive")
	}
}
