package experiments

import (
	"context"
	"fmt"
	"strings"

	"fade/internal/cpu"
	"fade/internal/monitor"
	"fade/internal/obs"
	"fade/internal/par"
	"fade/internal/queue"
	"fade/internal/rcache"
	"fade/internal/runspec"
	"fade/internal/spans"
	"fade/internal/stats"
	"fade/internal/synth"
	"fade/internal/system"
	"fade/internal/trace"
)

// Options control simulation scale. Zero values select defaults suitable
// for a full fadebench run.
type Options struct {
	// Instrs is the per-run application instruction budget.
	Instrs uint64
	// Seed is the base RNG seed.
	Seed uint64
	// Parallel bounds the number of simulation cells run concurrently:
	// 0 selects GOMAXPROCS, 1 forces sequential execution. Results are
	// identical at any width; per-cell RNGs are derived from
	// (Seed, benchmark) and rows are assembled in cell order.
	Parallel int
	// TimelineEvery enables cycle-sampled telemetry inside every
	// system.Run-backed cell: each cell's Timeline is attached to the
	// table alongside its metrics snapshot. 0 disables sampling.
	TimelineEvery uint64
	// AppCores, when non-zero, runs every cell on a CMP of that many
	// application cores with MonCores dedicated monitor cores (MonCores
	// defaults to AppCores). Experiments that pin their own topology
	// (fig9/fig10/fig11a/fig11b, the multicore sweep) override it.
	AppCores int
	// MonCores is the dedicated monitor core count for AppCores; ignored
	// when AppCores is 0.
	MonCores int
	// Ctx cancels in-flight experiments: once it is done, running cells
	// abort with an error wrapping sim.ErrCanceled and queued cells are
	// skipped. nil selects context.Background (no cancellation).
	Ctx context.Context
	// CheckInvariants runs every system.Run-backed cell with the per-cycle
	// invariant checker armed, so a sweep doubles as a correctness audit
	// (the fadesim/fadebench -check flag).
	CheckInvariants bool
	// FastForward runs every system.Run-backed cell with the scheduler's
	// event-driven skip-ahead armed (system.Config.FastForward): results
	// are byte-identical, only wall-clock time changes. CheckInvariants
	// pins cells back to cycle-exact execution even when this is set.
	FastForward bool
	// Cache, when non-nil, memoizes every cell through the
	// content-addressed result store: cells whose spec hash is already
	// present are decoded instead of simulated, which makes interrupted
	// sweeps resumable (fadebench -cache-dir). Tables are byte-identical
	// with or without it.
	Cache *rcache.Cache
}

func (o Options) withDefaults() Options {
	if o.Instrs == 0 {
		o.Instrs = 300_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
	return o
}

// Cell is one independent simulation of an experiment: a canonical run
// spec plus the label its telemetry is attached under. Cells are the unit
// of caching and sharding — Spec.Hash() is the cell's content address.
type Cell struct {
	Label string       `json:"label"`
	Spec  runspec.Spec `json:"spec"`
}

// experiment is one registered figure/table reproduction: cells
// enumerates its simulation cells in table order, build assembles the
// table from the outcomes (outs[i] is cells[i]'s). Telemetry attachment
// is generic — build never touches Table.Cells.
type experiment struct {
	id    string
	cells func(Options) ([]Cell, error)
	build func(Options, []Cell, []*system.Outcome) (*Table, error)
}

// runCells dispatches an experiment's independent simulation cells through
// the worker pool, returning results in cell order. Options.Ctx is passed
// to every cell; cells must thread it into their system.RunContext /
// RunQueueStudyContext calls so cancellation reaches the scheduler's
// checkpoints.
func runCells[C, R any](o Options, cells []C, fn func(context.Context, C) (R, error)) ([]R, error) {
	return par.RunCells(o.Ctx, o.Parallel, cells, fn)
}

// run executes one registered experiment: enumerate cells, execute each
// through the (optional) result cache, build the table, attach telemetry
// in cell order.
func run(e experiment, o Options) (*Table, error) {
	o = o.withDefaults()
	cells, err := e.cells(o)
	if err != nil {
		return nil, err
	}
	outs, err := runCells(o, cells, func(ctx context.Context, c Cell) (*system.Outcome, error) {
		// A sweep trace stays wall-domain: par.RunCells reads the trace from
		// Ctx for its par.cell spans, but the simulator must not — hundreds
		// of cells emitting cycle spans into one shared ring would bury the
		// sweep. Per-run cycle traces belong to fadesim/fadeserve.
		out, _, err := system.ExecSpecCached(spans.WithoutTrace(ctx), o.Cache, c.Spec)
		return out, err
	})
	if err != nil {
		return nil, err
	}
	t, err := e.build(o, cells, outs)
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.attachOutcome(c.Label, outs[i])
	}
	return t, nil
}

// config returns the paper's default configuration for mon with the
// option-controlled scale knobs (instruction budget, seed, telemetry
// sampling) applied — the starting point of every system.Run cell.
func (o Options) config(mon string) system.Config {
	cfg := system.DefaultConfig(mon)
	cfg.Instrs = o.Instrs
	cfg.Seed = o.Seed
	cfg.TimelineEvery = o.TimelineEvery
	cfg.CheckInvariants = o.CheckInvariants
	cfg.FastForward = o.FastForward
	if o.AppCores > 0 {
		mc := o.MonCores
		if mc == 0 {
			mc = o.AppCores
		}
		cfg.Topology = system.Topology{AppCores: o.AppCores, MonCores: mc}
	}
	return cfg
}

// spec is the canonical-spec form of o.config: the full-system cell of
// running bench under mon with the option knobs applied.
func (o Options) spec(bench, mon string) runspec.Spec {
	return system.SpecFromConfig(bench, o.config(mon))
}

// studySpec is one Section 3 queue-study cell (an ideal 1-event/cycle
// drain behind an event queue of the given capacity).
func (o Options) studySpec(bench, mon string, cap int) runspec.Spec {
	return runspec.Spec{
		Kind: runspec.KindStudy, Benchmark: bench, Monitor: mon,
		Core: runspec.Core4Way, EventQueueCap: cap,
		Seed: o.Seed, Instrs: o.Instrs,
	}
}

// studyGrid enumerates every (monitor, benchmark) queue-study cell of the
// given monitors in table order: monitors outer, each monitor's suite
// inner.
func (o Options) studyGrid(mons []string, cap int) []Cell {
	var cells []Cell
	for _, mon := range mons {
		for _, bench := range BenchesFor(mon) {
			cells = append(cells, Cell{Label: mon + "/" + bench, Spec: o.studySpec(bench, mon, cap)})
		}
	}
	return cells
}

// runGrid enumerates every (monitor, benchmark) full-system cell of the
// given monitors, with mutate (optional) applied to the paper-default
// config before canonicalization.
func (o Options) runGrid(mons []string, mutate func(*system.Config)) []Cell {
	var cells []Cell
	for _, mon := range mons {
		for _, bench := range BenchesFor(mon) {
			cfg := o.config(mon)
			if mutate != nil {
				mutate(&cfg)
			}
			cells = append(cells, Cell{Label: mon + "/" + bench, Spec: system.SpecFromConfig(bench, cfg)})
		}
	}
	return cells
}

// Table is one regenerated figure or table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string

	// Cells carries the full metrics-registry snapshot of every
	// simulation cell behind the table, in cell order, so a table's
	// summary numbers can always be re-derived (and cross-checked) from
	// raw counters. It is serialized by fadebench -json and the
	// -metrics/-timeline sinks, and omitted from the text rendering.
	Cells []CellMetrics
}

// CellMetrics is one simulation cell's telemetry: its end-of-run registry
// snapshot and, when Options.TimelineEvery is set, its cycle-sampled
// timeline.
type CellMetrics struct {
	// Cell identifies the cell ("monitor/benchmark", plus a config
	// discriminator where one table runs several per pair).
	Cell     string          `json:"cell"`
	Metrics  *obs.Snapshot   `json:"metrics"`
	Timeline []*obs.Snapshot `json:"timeline,omitempty"`
}

// attach records one system.Run cell's telemetry on the table.
func (t *Table) attach(label string, r *system.Result) {
	if r == nil || r.Metrics == nil {
		return
	}
	t.Cells = append(t.Cells, CellMetrics{Cell: label, Metrics: r.Metrics, Timeline: r.Timeline})
}

// attachStudy records one queue-study cell's telemetry on the table.
func (t *Table) attachStudy(label string, qs *system.QueueStudy) {
	if qs == nil || qs.Metrics == nil {
		return
	}
	t.Cells = append(t.Cells, CellMetrics{Cell: label, Metrics: qs.Metrics})
}

// attachOutcome records whatever telemetry a cell's outcome carries:
// full-system runs attach metrics+timeline, queue studies attach metrics,
// core-model and baseline outcomes carry none.
func (t *Table) attachOutcome(label string, out *system.Outcome) {
	if out == nil {
		return
	}
	t.attach(label, out.Result)
	t.attachStudy(label, out.Study)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// BenchesFor returns the benchmark suite a monitor is evaluated on
// (Section 6): SPEC integer for the serial monitors, the taint-propagating
// subset for TaintCheck, and the multithreaded suite for AtomCheck.
func BenchesFor(mon string) []string {
	switch mon {
	case "AtomCheck":
		return trace.ParallelNames()
	case "TaintCheck":
		return trace.TaintNames()
	default:
		return trace.SerialNames()
	}
}

// Monitors returns the evaluated monitors in the paper's order.
func Monitors() []string { return monitor.Names() }

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Fig2a reproduces Fig. 2(a): application IPC split into monitored and
// unmonitored instructions per cycle, averaged across each monitor's
// benchmarks, on the aggressive 4-way OoO core.
func Fig2a(o Options) (*Table, error) { return run(expFig2a, o) }

var expFig2a = experiment{
	id: "fig2a",
	cells: func(o Options) ([]Cell, error) {
		return o.studyGrid(Monitors(), queue.Unbounded), nil
	},
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		t := &Table{
			ID:     "fig2a",
			Title:  "App IPC breakdown per monitor (avg across benchmarks, 4-way OoO)",
			Header: []string{"monitor", "app IPC", "monitored IPC", "unmonitored IPC"},
		}
		i := 0
		for _, mon := range Monitors() {
			var app, monIPC []float64
			for range BenchesFor(mon) {
				qs := outs[i].Study
				i++
				app = append(app, qs.AppIPC)
				monIPC = append(monIPC, qs.MonitoredIPC)
			}
			a, m := stats.AMean(app), stats.AMean(monIPC)
			t.Rows = append(t.Rows, []string{mon, f2(a), f2(m), f2(a - m)})
		}
		t.Notes = append(t.Notes,
			"paper: monitored IPC up to 0.4 for memory-tracking, up to 0.68 for propagation-tracking monitors")
		return t, nil
	},
}

// Fig2bc reproduces Fig. 2(b,c): per-benchmark monitored IPC for AddrCheck
// (memory tracking) and MemLeak (propagation tracking).
func Fig2bc(o Options) (*Table, error) { return run(expFig2bc, o) }

var expFig2bc = experiment{
	id: "fig2bc",
	cells: func(o Options) ([]Cell, error) {
		var cells []Cell
		for _, bench := range trace.SerialNames() {
			for _, mon := range []string{"AddrCheck", "MemLeak"} {
				cells = append(cells, Cell{Label: mon + "/" + bench, Spec: o.studySpec(bench, mon, queue.Unbounded)})
			}
		}
		return cells, nil
	},
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		t := &Table{
			ID:     "fig2bc",
			Title:  "Per-benchmark IPC breakdown: AddrCheck vs MemLeak (4-way OoO)",
			Header: []string{"benchmark", "app IPC", "AddrCheck monitored", "MemLeak monitored"},
		}
		var acSum, mlSum []float64
		for i, bench := range trace.SerialNames() {
			ac, ml := outs[2*i].Study, outs[2*i+1].Study
			acSum = append(acSum, ac.MonitoredIPC)
			mlSum = append(mlSum, ml.MonitoredIPC)
			t.Rows = append(t.Rows, []string{bench, f2(ac.AppIPC), f2(ac.MonitoredIPC), f2(ml.MonitoredIPC)})
		}
		t.Rows = append(t.Rows, []string{"mean", "", f2(stats.AMean(acSum)), f2(stats.AMean(mlSum))})
		t.Notes = append(t.Notes, "paper: AddrCheck avg 0.24; MemLeak avg 0.68, bzip 1.2, mcf 0.2")
		return t, nil
	},
}

// occupancyProbes are the x-axis points of Fig. 3(a,b).
var occupancyProbes = []int{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}

// Fig3ab reproduces Fig. 3(a,b): the cumulative distribution of an infinite
// event queue's occupancy under a 1-event/cycle drain, for AddrCheck and
// MemLeak.
func Fig3ab(o Options) (*Table, error) { return run(expFig3ab, o) }

var expFig3ab = experiment{
	id: "fig3ab",
	cells: func(o Options) ([]Cell, error) {
		return o.studyGrid([]string{"AddrCheck", "MemLeak"}, queue.Unbounded), nil
	},
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		t := &Table{
			ID:     "fig3ab",
			Title:  "Infinite event-queue occupancy CDF (% of cycles <= N entries)",
			Header: append([]string{"monitor/bench"}, probeHeader()...),
		}
		for i, c := range cells {
			row := []string{c.Label}
			for _, pt := range outs[i].Study.Occupancy.CDFAtPoints(occupancyProbes) {
				row = append(row, fmt.Sprintf("%.0f", pt.Frac*100))
			}
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes,
			"paper: AddrCheck bursts fit in 8 entries; MemLeak needs 128 (mcf) to 8K (omnetpp); bzip grows unboundedly")
		return t, nil
	},
}

func probeHeader() []string {
	h := make([]string, len(occupancyProbes))
	for i, p := range occupancyProbes {
		h[i] = fmt.Sprintf("<=%d", p)
	}
	return h
}

// Fig3c reproduces Fig. 3(c): MemLeak slowdown versus event-queue size
// (32 entries vs 32K entries), with the 1-event/cycle drain.
func Fig3c(o Options) (*Table, error) { return run(expFig3c, o) }

var expFig3c = experiment{
	id: "fig3c",
	cells: func(o Options) ([]Cell, error) {
		var cells []Cell
		for _, bench := range trace.SerialNames() {
			for _, cap := range []int{32 * 1024, 32} {
				cells = append(cells, Cell{
					Label: fmt.Sprintf("MemLeak/%s/evq%d", bench, cap),
					Spec:  o.studySpec(bench, "MemLeak", cap),
				})
			}
		}
		return cells, nil
	},
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		t := &Table{
			ID:     "fig3c",
			Title:  "Effect of event queue size on performance (MemLeak, ideal 1-ev/cycle drain)",
			Header: []string{"benchmark", "32K entries", "32 entries"},
		}
		var s32k, s32 []float64
		for i, bench := range trace.SerialNames() {
			big, small := outs[2*i].Study, outs[2*i+1].Study
			s32k = append(s32k, big.Slowdown)
			s32 = append(s32, small.Slowdown)
			t.Rows = append(t.Rows, []string{bench, f2(big.Slowdown), f2(small.Slowdown)})
		}
		t.Rows = append(t.Rows, []string{"gmean", f2(stats.GMean(s32k)), f2(stats.GMean(s32))})
		t.Notes = append(t.Notes,
			"paper: 32-entry queue costs at most 1.17x (gobmk); bzip ~1.33-1.36x regardless (monitored IPC > 1)")
		return t, nil
	},
}

// Fig4a reproduces Fig. 4(a): the unaccelerated monitors' execution-time
// breakdown into clean-check, redundant-update, stack-update, and complex
// handler work.
func Fig4a(o Options) (*Table, error) { return run(expFig4a, o) }

var expFig4a = experiment{
	id: "fig4a",
	cells: func(o Options) ([]Cell, error) {
		return o.runGrid(Monitors(), func(c *system.Config) { c.Accel = system.Unaccelerated }), nil
	},
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		t := &Table{
			ID:     "fig4a",
			Title:  "Monitor execution-time breakdown (unaccelerated, % of handler instructions)",
			Header: []string{"monitor", "CC", "RU", "stack updates", "complex", "high-level"},
		}
		i := 0
		for _, mon := range Monitors() {
			agg := map[monitor.Class]float64{}
			for range BenchesFor(mon) {
				r := outs[i].Result
				i++
				total := 0.0
				for _, v := range r.ClassInstr {
					total += v
				}
				if total == 0 {
					continue
				}
				for k, v := range r.ClassInstr {
					agg[k] += v / total
				}
			}
			n := float64(len(BenchesFor(mon)))
			t.Rows = append(t.Rows, []string{
				mon,
				pct(agg[monitor.ClassCC] / n), pct(agg[monitor.ClassRU] / n),
				pct(agg[monitor.ClassStack] / n), pct(agg[monitor.ClassSlow] / n),
				pct(agg[monitor.ClassHigh] / n),
			})
		}
		t.Notes = append(t.Notes,
			"paper: instructions dominate; stack updates reach ~17% for two of five monitors")
		return t, nil
	},
}

// distanceProbes are the x-axis points of Fig. 4(b).
var distanceProbes = []int{0, 1, 2, 4, 8, 16, 32, 64, 128}

// Fig4b reproduces Fig. 4(b): the CDF of distances (in events) between
// consecutive unfiltered events under MemLeak.
func Fig4b(o Options) (*Table, error) { return run(expFig4b, o) }

var expFig4b = experiment{
	id: "fig4b",
	cells: func(o Options) ([]Cell, error) {
		var cells []Cell
		for _, bench := range trace.SerialNames() {
			cells = append(cells, Cell{Label: "MemLeak/" + bench, Spec: o.spec(bench, "MemLeak")})
		}
		return cells, nil
	},
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		t := &Table{
			ID:     "fig4b",
			Title:  "Distance between unfiltered events, CDF (MemLeak, % <= N events)",
			Header: append([]string{"benchmark"}, distHeader()...),
		}
		for i, bench := range trace.SerialNames() {
			row := []string{bench}
			for _, pt := range outs[i].Result.Filter.UnfilteredDistance.CDFAtPoints(distanceProbes) {
				row = append(row, fmt.Sprintf("%.0f", pt.Frac*100))
			}
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes, "paper: two unfiltered events are typically separated by up to 16 filterable events")
		return t, nil
	},
}

func distHeader() []string {
	h := make([]string, len(distanceProbes))
	for i, p := range distanceProbes {
		h[i] = fmt.Sprintf("<=%d", p)
	}
	return h
}

// Fig4c reproduces Fig. 4(c): the average unfiltered burst size per monitor
// and benchmark (a burst = unfiltered events separated by <=16 filterable
// events).
func Fig4c(o Options) (*Table, error) { return run(expFig4c, o) }

var expFig4c = experiment{
	id: "fig4c",
	cells: func(o Options) ([]Cell, error) {
		return o.runGrid(Monitors(), nil), nil
	},
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		t := &Table{
			ID:     "fig4c",
			Title:  "Unfiltered burst size (mean events per burst)",
			Header: []string{"monitor", "per-benchmark mean bursts", "avg"},
		}
		i := 0
		for _, mon := range Monitors() {
			var parts []string
			var means []float64
			for _, bench := range BenchesFor(mon) {
				m := outs[i].Result.Filter.BurstSizes.Mean()
				i++
				means = append(means, m)
				parts = append(parts, fmt.Sprintf("%s=%.1f", bench, m))
			}
			t.Rows = append(t.Rows, []string{mon, strings.Join(parts, " "), f2(stats.AMean(means))})
		}
		t.Notes = append(t.Notes, "paper: bursts average 16 or fewer unfiltered events for most pairs")
		return t, nil
	},
}

// Table2 reproduces Table 2: FADE's filtering efficiency per monitor.
func Table2(o Options) (*Table, error) { return run(expTable2, o) }

var expTable2 = experiment{
	id: "table2",
	cells: func(o Options) ([]Cell, error) {
		return o.runGrid(Monitors(), nil), nil
	},
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		t := &Table{
			ID:     "table2",
			Title:  "FADE filtering efficiency (instruction event handlers elided)",
			Header: []string{"monitor", "filter ratio", "paper"},
		}
		paper := map[string]string{
			"AddrCheck": "99.5%", "AtomCheck": "85.5%", "MemCheck": "98.0%",
			"MemLeak": "87.0%", "TaintCheck": "84.0%",
		}
		i := 0
		for _, mon := range Monitors() {
			var ratios []float64
			for range BenchesFor(mon) {
				ratios = append(ratios, outs[i].Result.Filter.FilterRatio())
				i++
			}
			t.Rows = append(t.Rows, []string{mon, pct(stats.AMean(ratios)), paper[mon]})
		}
		return t, nil
	},
}

// pairGrid enumerates two cells per (monitor, benchmark) — one per config
// variant, labels suffixed — in table order. The variants mutate the
// paper-default config (after pin, which every pair experiment uses to fix
// its topology/core).
func (o Options) pairGrid(mons []string, pin func(*system.Config),
	sufA string, mutA func(*system.Config),
	sufB string, mutB func(*system.Config)) []Cell {
	var cells []Cell
	for _, mon := range mons {
		for _, bench := range BenchesFor(mon) {
			base := o.config(mon)
			if pin != nil {
				pin(&base)
			}
			cfgA, cfgB := base, base
			mutA(&cfgA)
			mutB(&cfgB)
			label := mon + "/" + bench
			cells = append(cells,
				Cell{Label: label + sufA, Spec: system.SpecFromConfig(bench, cfgA)},
				Cell{Label: label + sufB, Spec: system.SpecFromConfig(bench, cfgB)})
		}
	}
	return cells
}

// Fig9 reproduces Fig. 9: per-benchmark slowdown of the unaccelerated and
// FADE systems (both single-core dual-threaded, 4-way OoO), for AddrCheck,
// MemLeak, and AtomCheck, plus suite averages for every monitor.
func Fig9(o Options) (*Table, error) { return run(expFig9, o) }

var expFig9 = experiment{
	id: "fig9",
	cells: func(o Options) ([]Cell, error) {
		return o.pairGrid(Monitors(),
			func(c *system.Config) { c.Topology = system.SingleCoreSMT; c.Core = cpu.OoO4 },
			"/unacc", func(c *system.Config) { c.Accel = system.Unaccelerated },
			"/fade", func(c *system.Config) { c.Accel = system.FADENonBlocking }), nil
	},
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		t := &Table{
			ID:     "fig9",
			Title:  "FADE vs unaccelerated slowdown (single-core dual-threaded, 4-way OoO)",
			Header: []string{"monitor", "benchmark", "unaccelerated", "FADE"},
		}
		var allUnacc, allFade []float64
		i := 0
		for _, mon := range Monitors() {
			detailed := mon == "AddrCheck" || mon == "MemLeak" || mon == "AtomCheck"
			var unacc, fade []float64
			for _, bench := range BenchesFor(mon) {
				u, f := outs[2*i].Result, outs[2*i+1].Result
				i++
				unacc = append(unacc, u.Slowdown)
				fade = append(fade, f.Slowdown)
				if detailed {
					t.Rows = append(t.Rows, []string{mon, bench, f2(u.Slowdown), f2(f.Slowdown)})
				}
			}
			allUnacc = append(allUnacc, unacc...)
			allFade = append(allFade, fade...)
			t.Rows = append(t.Rows, []string{mon, "mean", f2(stats.AMean(unacc)), f2(stats.AMean(fade))})
		}
		t.Rows = append(t.Rows, []string{"overall", "mean", f2(stats.AMean(allUnacc)), f2(stats.AMean(allFade))})
		t.Notes = append(t.Notes,
			"paper: unaccelerated avg 4.1x (AddrCheck 1.6, MemLeak 7.4, AtomCheck 3.9); FADE avg 1.5x (1.2/1.8/1.6; MemCheck 1.4, TaintCheck 1.6)")
		return t, nil
	},
}

// Fig10 reproduces Fig. 10: average slowdown per monitor for the three core
// types, unaccelerated and FADE-enabled (single-core dual-threaded).
func Fig10(o Options) (*Table, error) { return run(expFig10, o) }

var expFig10 = experiment{
	id: "fig10",
	cells: func(o Options) ([]Cell, error) {
		var cells []Cell
		for _, mon := range Monitors() {
			for _, kind := range cpu.Kinds() {
				for _, bench := range BenchesFor(mon) {
					base := o.config(mon)
					base.Topology = system.SingleCoreSMT
					base.Core = kind
					label := fmt.Sprintf("%s/%s/%s", mon, bench, kind)
					cfgU, cfgF := base, base
					cfgU.Accel = system.Unaccelerated
					cfgF.Accel = system.FADENonBlocking
					cells = append(cells,
						Cell{Label: label + "/unacc", Spec: system.SpecFromConfig(bench, cfgU)},
						Cell{Label: label + "/fade", Spec: system.SpecFromConfig(bench, cfgF)})
				}
			}
		}
		return cells, nil
	},
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		t := &Table{
			ID:    "fig10",
			Title: "Slowdown by core microarchitecture (single-core system, suite average)",
			Header: []string{"monitor",
				"unacc in-order", "unacc 2-way", "unacc 4-way",
				"FADE in-order", "FADE 2-way", "FADE 4-way"},
		}
		i := 0
		for _, mon := range Monitors() {
			row := []string{mon}
			var unaccCols, fadeCols []string
			for range cpu.Kinds() {
				var unacc, fade []float64
				for range BenchesFor(mon) {
					unacc = append(unacc, outs[2*i].Result.Slowdown)
					fade = append(fade, outs[2*i+1].Result.Slowdown)
					i++
				}
				unaccCols = append(unaccCols, f2(stats.AMean(unacc)))
				fadeCols = append(fadeCols, f2(stats.AMean(fade)))
			}
			row = append(row, unaccCols...)
			row = append(row, fadeCols...)
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes,
			"paper: unaccelerated monitors are core-sensitive (7-51% worse on simpler cores); FADE is much less so")
		return t, nil
	},
}

// Fig11a reproduces Fig. 11(a): single-core versus two-core FADE systems.
func Fig11a(o Options) (*Table, error) { return run(expFig11a, o) }

var expFig11a = experiment{
	id: "fig11a",
	cells: func(o Options) ([]Cell, error) {
		return o.pairGrid(Monitors(), nil,
			"/single", func(c *system.Config) {},
			"/two", func(c *system.Config) { c.Topology = system.TwoCore }), nil
	},
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		t := &Table{
			ID:     "fig11a",
			Title:  "Single-core vs two-core FADE systems (avg slowdown, 4-way OoO)",
			Header: []string{"monitor", "single-core", "two-core", "two-core benefit"},
		}
		i := 0
		for _, mon := range Monitors() {
			var single, double []float64
			for range BenchesFor(mon) {
				single = append(single, outs[2*i].Result.Slowdown)
				double = append(double, outs[2*i+1].Result.Slowdown)
				i++
			}
			s, d := stats.AMean(single), stats.AMean(double)
			t.Rows = append(t.Rows, []string{mon, f2(s), f2(d), pct(s/d - 1)})
		}
		t.Notes = append(t.Notes, "paper: two-core outperforms single-core by 15% on average (28% max)")
		return t, nil
	},
}

// Fig11b reproduces Fig. 11(b): the two-core system's utilization breakdown.
func Fig11b(o Options) (*Table, error) { return run(expFig11b, o) }

var expFig11b = experiment{
	id: "fig11b",
	cells: func(o Options) ([]Cell, error) {
		return o.runGrid(Monitors(), func(c *system.Config) { c.Topology = system.TwoCore }), nil
	},
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		t := &Table{
			ID:     "fig11b",
			Title:  "Two-core utilization breakdown (% of cycles)",
			Header: []string{"monitor", "app core idle", "monitor core idle", "both utilized"},
		}
		i := 0
		for _, mon := range Monitors() {
			var ai, mi, bb []float64
			for range BenchesFor(mon) {
				r := outs[i].Result
				i++
				ai = append(ai, r.AppIdleFrac)
				mi = append(mi, r.MonIdleFrac)
				bb = append(bb, r.BothBusyFrac)
			}
			t.Rows = append(t.Rows, []string{mon, pct(stats.AMean(ai)), pct(stats.AMean(mi)), pct(stats.AMean(bb))})
		}
		t.Notes = append(t.Notes, "paper: one core idle 48-97% of the time; both utilized only ~22% on average")
		return t, nil
	},
}

// Fig11c reproduces Fig. 11(c): blocking versus non-blocking FADE.
func Fig11c(o Options) (*Table, error) { return run(expFig11c, o) }

var expFig11c = experiment{
	id: "fig11c",
	cells: func(o Options) ([]Cell, error) {
		return o.pairGrid(Monitors(), nil,
			"/blocking", func(c *system.Config) { c.Accel = system.FADEBlocking },
			"/nonblocking", func(c *system.Config) { c.Accel = system.FADENonBlocking }), nil
	},
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		t := &Table{
			ID:     "fig11c",
			Title:  "Blocking vs Non-Blocking FADE (avg slowdown, single-core 4-way OoO)",
			Header: []string{"monitor", "blocking", "non-blocking", "NB benefit"},
		}
		i := 0
		for _, mon := range Monitors() {
			var blk, nb []float64
			for range BenchesFor(mon) {
				blk = append(blk, outs[2*i].Result.Slowdown)
				nb = append(nb, outs[2*i+1].Result.Slowdown)
				i++
			}
			b, n := stats.AMean(blk), stats.AMean(nb)
			t.Rows = append(t.Rows, []string{mon, f2(b), f2(n), fmt.Sprintf("%.2fx", b/n)})
		}
		t.Notes = append(t.Notes,
			"paper: ~2x for the low-filter-ratio monitors (AtomCheck, MemLeak, TaintCheck), ~1.1x for AddrCheck/MemCheck")
		return t, nil
	},
}

// Synth reproduces the Section 7.6 area/power estimates.
func Synth(o Options) (*Table, error) { return run(expSynth, o) }

var expSynth = experiment{
	id:    "synth",
	cells: func(o Options) ([]Cell, error) { return nil, nil },
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		blocks := synth.FADEBlocks()
		t := &Table{
			ID:     "synth",
			Title:  "Area and peak power, TSMC 40nm @ 2GHz (Section 7.6)",
			Header: []string{"block", "area mm2", "peak mW"},
		}
		for _, b := range blocks {
			t.Rows = append(t.Rows, []string{b.Name, fmt.Sprintf("%.4f", b.Area()), fmt.Sprintf("%.1f", b.Power())})
		}
		area, power := synth.Totals(blocks)
		t.Rows = append(t.Rows, []string{"FADE total", fmt.Sprintf("%.4f", area), fmt.Sprintf("%.1f", power)})
		md := synth.MDCacheEstimate()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("MD cache 4KB 2-way (%.2f ns access)", md.AccessNs),
			fmt.Sprintf("%.4f", md.AreaMM2), fmt.Sprintf("%.1f", md.PeakPowerMW),
		})
		t.Rows = append(t.Rows, []string{"grand total", fmt.Sprintf("%.4f", area+md.AreaMM2), fmt.Sprintf("%.1f", power+md.PeakPowerMW)})
		t.Notes = append(t.Notes, "paper: FADE 0.09 mm2 / 122 mW; MD cache 0.03 mm2 / 151 mW / 0.3 ns")
		return t, nil
	},
}

// registry lists every experiment in DESIGN.md order; aliases maps the
// extra ByID spellings onto canonical ids.
var registry = []experiment{
	expFig2a, expFig2bc, expFig3ab, expFig3c,
	expFig4a, expFig4b, expFig4c, expTable2,
	expFig9, expFig10, expFig11a, expFig11b, expFig11c,
	expMulticore, expSynth,
	expAblationMDCache, expAblationEvq, expAblationUfq, expAblationSignal,
	expAblationCoreModel, expFaultSweep,
}

var aliases = map[string]string{
	"fig2b": "fig2bc", "fig2c": "fig2bc",
	"fig3a": "fig3ab", "fig3b": "fig3ab",
	"fig8c": "multicore-scaling",
}

func lookup(id string) (experiment, bool) {
	if canon, ok := aliases[id]; ok {
		id = canon
	}
	for _, e := range registry {
		if e.id == id {
			return e, true
		}
	}
	return experiment{}, false
}

// All runs every experiment in DESIGN.md order.
func All(o Options) ([]*Table, error) {
	var out []*Table
	for _, e := range registry {
		tbl, err := run(e, o)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", e.id, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}

// ByID runs a single experiment by id.
func ByID(id string, o Options) (*Table, error) {
	e, ok := lookup(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return run(e, o)
}

// IDs lists the experiment identifiers accepted by ByID.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.id
	}
	return ids
}

// CellsFor enumerates an experiment's simulation cells — label plus
// canonical spec — without executing anything. It is the introspection
// half of the cache workflow: callers can hash, shard, or pre-execute the
// cells and then run the experiment against a warm cache.
func CellsFor(id string, o Options) ([]Cell, error) {
	e, ok := lookup(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return e.cells(o.withDefaults())
}

// Missing filters cells down to those whose results are not yet in the
// cache. A nil cache leaves every cell missing. The distributed fabric
// uses it to skip already-primed work before leasing cells out; the
// cache reads count as hits, mirroring what table assembly will see.
func Missing(cells []Cell, cache *rcache.Cache) []Cell {
	if cache == nil {
		return cells
	}
	var out []Cell
	for _, c := range cells {
		if _, _, ok := cache.Get(c.Spec.Hash()); !ok {
			out = append(out, c)
		}
	}
	return out
}

// Prime executes the shard-owned subset of an experiment's cells into the
// cache without building the table: every cell whose Spec.Shard(count) ==
// shard is run through o.Cache (which should be non-nil for the work to
// persist). It returns how many cells this shard owns and the
// experiment's total. N workers priming shards 0..N-1 of the same
// experiment cover every cell exactly once between them; a subsequent
// unsharded run against the shared cache directory then assembles tables
// without simulating.
func Prime(id string, o Options, shard, count int) (ran, total int, err error) {
	cells, err := CellsFor(id, o)
	if err != nil {
		return 0, 0, err
	}
	total = len(cells)
	var mine []Cell
	for _, c := range cells {
		if c.Spec.Shard(count) == shard {
			mine = append(mine, c)
		}
	}
	o = o.withDefaults()
	_, err = runCells(o, mine, func(ctx context.Context, c Cell) (struct{}, error) {
		_, _, err := system.ExecSpecCached(ctx, o.Cache, c.Spec)
		return struct{}{}, err
	})
	return len(mine), total, err
}
