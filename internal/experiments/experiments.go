package experiments

import (
	"context"
	"fmt"
	"strings"

	"fade/internal/cpu"
	"fade/internal/monitor"
	"fade/internal/obs"
	"fade/internal/par"
	"fade/internal/queue"
	"fade/internal/stats"
	"fade/internal/synth"
	"fade/internal/system"
	"fade/internal/trace"
)

// Options control simulation scale. Zero values select defaults suitable
// for a full fadebench run.
type Options struct {
	// Instrs is the per-run application instruction budget.
	Instrs uint64
	// Seed is the base RNG seed.
	Seed uint64
	// Parallel bounds the number of simulation cells run concurrently:
	// 0 selects GOMAXPROCS, 1 forces sequential execution. Results are
	// identical at any width; per-cell RNGs are derived from
	// (Seed, benchmark) and rows are assembled in cell order.
	Parallel int
	// TimelineEvery enables cycle-sampled telemetry inside every
	// system.Run-backed cell: each cell's Timeline is attached to the
	// table alongside its metrics snapshot. 0 disables sampling.
	TimelineEvery uint64
	// AppCores, when non-zero, runs every cell on a CMP of that many
	// application cores with MonCores dedicated monitor cores (MonCores
	// defaults to AppCores). Experiments that pin their own topology
	// (fig9/fig10/fig11a/fig11b, the multicore sweep) override it.
	AppCores int
	// MonCores is the dedicated monitor core count for AppCores; ignored
	// when AppCores is 0.
	MonCores int
	// Ctx cancels in-flight experiments: once it is done, running cells
	// abort with an error wrapping sim.ErrCanceled and queued cells are
	// skipped. nil selects context.Background (no cancellation).
	Ctx context.Context
	// CheckInvariants runs every system.Run-backed cell with the per-cycle
	// invariant checker armed, so a sweep doubles as a correctness audit
	// (the fadesim/fadebench -check flag).
	CheckInvariants bool
	// FastForward runs every system.Run-backed cell with the scheduler's
	// event-driven skip-ahead armed (system.Config.FastForward): results
	// are byte-identical, only wall-clock time changes. CheckInvariants
	// pins cells back to cycle-exact execution even when this is set.
	FastForward bool
}

func (o Options) withDefaults() Options {
	if o.Instrs == 0 {
		o.Instrs = 300_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
	return o
}

// runCells dispatches an experiment's independent simulation cells through
// the worker pool, returning results in cell order. Options.Ctx is passed
// to every cell; cells must thread it into their system.RunContext /
// RunQueueStudyContext calls so cancellation reaches the scheduler's
// checkpoints.
func runCells[C, R any](o Options, cells []C, fn func(context.Context, C) (R, error)) ([]R, error) {
	return par.RunCells(o.Ctx, o.Parallel, cells, fn)
}

// config returns the paper's default configuration for mon with the
// option-controlled scale knobs (instruction budget, seed, telemetry
// sampling) applied — the starting point of every system.Run cell.
func (o Options) config(mon string) system.Config {
	cfg := system.DefaultConfig(mon)
	cfg.Instrs = o.Instrs
	cfg.Seed = o.Seed
	cfg.TimelineEvery = o.TimelineEvery
	cfg.CheckInvariants = o.CheckInvariants
	cfg.FastForward = o.FastForward
	if o.AppCores > 0 {
		mc := o.MonCores
		if mc == 0 {
			mc = o.AppCores
		}
		cfg.Topology = system.Topology{AppCores: o.AppCores, MonCores: mc}
	}
	return cfg
}

// monBench is one (monitor, benchmark) simulation cell.
type monBench struct{ mon, bench string }

// monBenchCells enumerates every (monitor, benchmark) cell of the given
// monitors in table order: monitors outer, each monitor's suite inner.
func monBenchCells(mons []string) []monBench {
	var cells []monBench
	for _, mon := range mons {
		for _, bench := range BenchesFor(mon) {
			cells = append(cells, monBench{mon, bench})
		}
	}
	return cells
}

// Table is one regenerated figure or table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string

	// Cells carries the full metrics-registry snapshot of every
	// simulation cell behind the table, in cell order, so a table's
	// summary numbers can always be re-derived (and cross-checked) from
	// raw counters. It is serialized by fadebench -json and the
	// -metrics/-timeline sinks, and omitted from the text rendering.
	Cells []CellMetrics
}

// CellMetrics is one simulation cell's telemetry: its end-of-run registry
// snapshot and, when Options.TimelineEvery is set, its cycle-sampled
// timeline.
type CellMetrics struct {
	// Cell identifies the cell ("monitor/benchmark", plus a config
	// discriminator where one table runs several per pair).
	Cell     string          `json:"cell"`
	Metrics  *obs.Snapshot   `json:"metrics"`
	Timeline []*obs.Snapshot `json:"timeline,omitempty"`
}

// attach records one system.Run cell's telemetry on the table.
func (t *Table) attach(label string, r *system.Result) {
	if r == nil || r.Metrics == nil {
		return
	}
	t.Cells = append(t.Cells, CellMetrics{Cell: label, Metrics: r.Metrics, Timeline: r.Timeline})
}

// attachStudy records one queue-study cell's telemetry on the table.
func (t *Table) attachStudy(label string, qs *system.QueueStudy) {
	if qs == nil || qs.Metrics == nil {
		return
	}
	t.Cells = append(t.Cells, CellMetrics{Cell: label, Metrics: qs.Metrics})
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// BenchesFor returns the benchmark suite a monitor is evaluated on
// (Section 6): SPEC integer for the serial monitors, the taint-propagating
// subset for TaintCheck, and the multithreaded suite for AtomCheck.
func BenchesFor(mon string) []string {
	switch mon {
	case "AtomCheck":
		return trace.ParallelNames()
	case "TaintCheck":
		return trace.TaintNames()
	default:
		return trace.SerialNames()
	}
}

// Monitors returns the evaluated monitors in the paper's order.
func Monitors() []string { return monitor.Names() }

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Fig2a reproduces Fig. 2(a): application IPC split into monitored and
// unmonitored instructions per cycle, averaged across each monitor's
// benchmarks, on the aggressive 4-way OoO core.
func Fig2a(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig2a",
		Title:  "App IPC breakdown per monitor (avg across benchmarks, 4-way OoO)",
		Header: []string{"monitor", "app IPC", "monitored IPC", "unmonitored IPC"},
	}
	cells := monBenchCells(Monitors())
	res, err := runCells(o, cells, func(ctx context.Context, c monBench) (*system.QueueStudy, error) {
		return system.RunQueueStudyContext(ctx, c.bench, c.mon, cpu.OoO4, queue.Unbounded, o.Seed, o.Instrs)
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.attachStudy(c.mon+"/"+c.bench, res[i])
	}
	i := 0
	for _, mon := range Monitors() {
		var app, monIPC []float64
		for range BenchesFor(mon) {
			qs := res[i]
			i++
			app = append(app, qs.AppIPC)
			monIPC = append(monIPC, qs.MonitoredIPC)
		}
		a, m := stats.AMean(app), stats.AMean(monIPC)
		t.Rows = append(t.Rows, []string{mon, f2(a), f2(m), f2(a - m)})
	}
	t.Notes = append(t.Notes,
		"paper: monitored IPC up to 0.4 for memory-tracking, up to 0.68 for propagation-tracking monitors")
	return t, nil
}

// Fig2bc reproduces Fig. 2(b,c): per-benchmark monitored IPC for AddrCheck
// (memory tracking) and MemLeak (propagation tracking).
func Fig2bc(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig2bc",
		Title:  "Per-benchmark IPC breakdown: AddrCheck vs MemLeak (4-way OoO)",
		Header: []string{"benchmark", "app IPC", "AddrCheck monitored", "MemLeak monitored"},
	}
	benches := trace.SerialNames()
	var cells []monBench
	for _, bench := range benches {
		cells = append(cells, monBench{"AddrCheck", bench}, monBench{"MemLeak", bench})
	}
	res, err := runCells(o, cells, func(ctx context.Context, c monBench) (*system.QueueStudy, error) {
		return system.RunQueueStudyContext(ctx, c.bench, c.mon, cpu.OoO4, queue.Unbounded, o.Seed, o.Instrs)
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.attachStudy(c.mon+"/"+c.bench, res[i])
	}
	var acSum, mlSum []float64
	for i, bench := range benches {
		ac, ml := res[2*i], res[2*i+1]
		acSum = append(acSum, ac.MonitoredIPC)
		mlSum = append(mlSum, ml.MonitoredIPC)
		t.Rows = append(t.Rows, []string{bench, f2(ac.AppIPC), f2(ac.MonitoredIPC), f2(ml.MonitoredIPC)})
	}
	t.Rows = append(t.Rows, []string{"mean", "", f2(stats.AMean(acSum)), f2(stats.AMean(mlSum))})
	t.Notes = append(t.Notes, "paper: AddrCheck avg 0.24; MemLeak avg 0.68, bzip 1.2, mcf 0.2")
	return t, nil
}

// occupancyProbes are the x-axis points of Fig. 3(a,b).
var occupancyProbes = []int{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}

// Fig3ab reproduces Fig. 3(a,b): the cumulative distribution of an infinite
// event queue's occupancy under a 1-event/cycle drain, for AddrCheck and
// MemLeak.
func Fig3ab(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig3ab",
		Title:  "Infinite event-queue occupancy CDF (% of cycles <= N entries)",
		Header: append([]string{"monitor/bench"}, probeHeader()...),
	}
	cells := monBenchCells([]string{"AddrCheck", "MemLeak"})
	res, err := runCells(o, cells, func(ctx context.Context, c monBench) (*system.QueueStudy, error) {
		return system.RunQueueStudyContext(ctx, c.bench, c.mon, cpu.OoO4, queue.Unbounded, o.Seed, o.Instrs)
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.attachStudy(c.mon+"/"+c.bench, res[i])
	}
	for i, c := range cells {
		row := []string{c.mon + "/" + c.bench}
		for _, pt := range res[i].Occupancy.CDFAtPoints(occupancyProbes) {
			row = append(row, fmt.Sprintf("%.0f", pt.Frac*100))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: AddrCheck bursts fit in 8 entries; MemLeak needs 128 (mcf) to 8K (omnetpp); bzip grows unboundedly")
	return t, nil
}

func probeHeader() []string {
	h := make([]string, len(occupancyProbes))
	for i, p := range occupancyProbes {
		h[i] = fmt.Sprintf("<=%d", p)
	}
	return h
}

// Fig3c reproduces Fig. 3(c): MemLeak slowdown versus event-queue size
// (32 entries vs 32K entries), with the 1-event/cycle drain.
func Fig3c(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig3c",
		Title:  "Effect of event queue size on performance (MemLeak, ideal 1-ev/cycle drain)",
		Header: []string{"benchmark", "32K entries", "32 entries"},
	}
	benches := trace.SerialNames()
	type benchCap struct {
		bench string
		cap   int
	}
	var cells []benchCap
	for _, bench := range benches {
		cells = append(cells, benchCap{bench, 32 * 1024}, benchCap{bench, 32})
	}
	res, err := runCells(o, cells, func(ctx context.Context, c benchCap) (*system.QueueStudy, error) {
		return system.RunQueueStudyContext(ctx, c.bench, "MemLeak", cpu.OoO4, c.cap, o.Seed, o.Instrs)
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.attachStudy(fmt.Sprintf("MemLeak/%s/evq%d", c.bench, c.cap), res[i])
	}
	var s32k, s32 []float64
	for i, bench := range benches {
		big, small := res[2*i], res[2*i+1]
		s32k = append(s32k, big.Slowdown)
		s32 = append(s32, small.Slowdown)
		t.Rows = append(t.Rows, []string{bench, f2(big.Slowdown), f2(small.Slowdown)})
	}
	t.Rows = append(t.Rows, []string{"gmean", f2(stats.GMean(s32k)), f2(stats.GMean(s32))})
	t.Notes = append(t.Notes,
		"paper: 32-entry queue costs at most 1.17x (gobmk); bzip ~1.33-1.36x regardless (monitored IPC > 1)")
	return t, nil
}

// Fig4a reproduces Fig. 4(a): the unaccelerated monitors' execution-time
// breakdown into clean-check, redundant-update, stack-update, and complex
// handler work.
func Fig4a(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig4a",
		Title:  "Monitor execution-time breakdown (unaccelerated, % of handler instructions)",
		Header: []string{"monitor", "CC", "RU", "stack updates", "complex", "high-level"},
	}
	cells := monBenchCells(Monitors())
	res, err := runCells(o, cells, func(ctx context.Context, c monBench) (*system.Result, error) {
		cfg := o.config(c.mon)
		cfg.Accel = system.Unaccelerated
		return system.RunContext(ctx, c.bench, cfg)
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.attach(c.mon+"/"+c.bench, res[i])
	}
	i := 0
	for _, mon := range Monitors() {
		agg := map[monitor.Class]float64{}
		for range BenchesFor(mon) {
			r := res[i]
			i++
			total := 0.0
			for _, v := range r.ClassInstr {
				total += v
			}
			if total == 0 {
				continue
			}
			for k, v := range r.ClassInstr {
				agg[k] += v / total
			}
		}
		n := float64(len(BenchesFor(mon)))
		t.Rows = append(t.Rows, []string{
			mon,
			pct(agg[monitor.ClassCC] / n), pct(agg[monitor.ClassRU] / n),
			pct(agg[monitor.ClassStack] / n), pct(agg[monitor.ClassSlow] / n),
			pct(agg[monitor.ClassHigh] / n),
		})
	}
	t.Notes = append(t.Notes,
		"paper: instructions dominate; stack updates reach ~17% for two of five monitors")
	return t, nil
}

// distanceProbes are the x-axis points of Fig. 4(b).
var distanceProbes = []int{0, 1, 2, 4, 8, 16, 32, 64, 128}

// Fig4b reproduces Fig. 4(b): the CDF of distances (in events) between
// consecutive unfiltered events under MemLeak.
func Fig4b(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig4b",
		Title:  "Distance between unfiltered events, CDF (MemLeak, % <= N events)",
		Header: append([]string{"benchmark"}, distHeader()...),
	}
	benches := trace.SerialNames()
	res, err := runCells(o, benches, func(ctx context.Context, bench string) (*system.Result, error) {
		return system.RunContext(ctx, bench, o.config("MemLeak"))
	})
	if err != nil {
		return nil, err
	}
	for i, bench := range benches {
		t.attach("MemLeak/"+bench, res[i])
	}
	for i, bench := range benches {
		row := []string{bench}
		for _, pt := range res[i].Filter.UnfilteredDistance.CDFAtPoints(distanceProbes) {
			row = append(row, fmt.Sprintf("%.0f", pt.Frac*100))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: two unfiltered events are typically separated by up to 16 filterable events")
	return t, nil
}

func distHeader() []string {
	h := make([]string, len(distanceProbes))
	for i, p := range distanceProbes {
		h[i] = fmt.Sprintf("<=%d", p)
	}
	return h
}

// Fig4c reproduces Fig. 4(c): the average unfiltered burst size per monitor
// and benchmark (a burst = unfiltered events separated by <=16 filterable
// events).
func Fig4c(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig4c",
		Title:  "Unfiltered burst size (mean events per burst)",
		Header: []string{"monitor", "per-benchmark mean bursts", "avg"},
	}
	gridCells := monBenchCells(Monitors())
	res, err := runCells(o, gridCells, func(ctx context.Context, c monBench) (*system.Result, error) {
		return system.RunContext(ctx, c.bench, o.config(c.mon))
	})
	if err != nil {
		return nil, err
	}
	for i, c := range gridCells {
		t.attach(c.mon+"/"+c.bench, res[i])
	}
	i := 0
	for _, mon := range Monitors() {
		var cells []string
		var means []float64
		for _, bench := range BenchesFor(mon) {
			m := res[i].Filter.BurstSizes.Mean()
			i++
			means = append(means, m)
			cells = append(cells, fmt.Sprintf("%s=%.1f", bench, m))
		}
		t.Rows = append(t.Rows, []string{mon, strings.Join(cells, " "), f2(stats.AMean(means))})
	}
	t.Notes = append(t.Notes, "paper: bursts average 16 or fewer unfiltered events for most pairs")
	return t, nil
}

// Table2 reproduces Table 2: FADE's filtering efficiency per monitor.
func Table2(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "table2",
		Title:  "FADE filtering efficiency (instruction event handlers elided)",
		Header: []string{"monitor", "filter ratio", "paper"},
	}
	paper := map[string]string{
		"AddrCheck": "99.5%", "AtomCheck": "85.5%", "MemCheck": "98.0%",
		"MemLeak": "87.0%", "TaintCheck": "84.0%",
	}
	cells := monBenchCells(Monitors())
	res, err := runCells(o, cells, func(ctx context.Context, c monBench) (*system.Result, error) {
		return system.RunContext(ctx, c.bench, o.config(c.mon))
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.attach(c.mon+"/"+c.bench, res[i])
	}
	i := 0
	for _, mon := range Monitors() {
		var ratios []float64
		for range BenchesFor(mon) {
			ratios = append(ratios, res[i].Filter.FilterRatio())
			i++
		}
		t.Rows = append(t.Rows, []string{mon, pct(stats.AMean(ratios)), paper[mon]})
	}
	return t, nil
}

// resultPair is the (unaccelerated, FADE) outcome of one cell.
type resultPair struct{ unacc, fade *system.Result }

// attachPair records both halves of a pair cell on the table.
func (t *Table) attachPair(label string, p resultPair) {
	t.attach(label+"/unacc", p.unacc)
	t.attach(label+"/fade", p.fade)
}

// Fig9 reproduces Fig. 9: per-benchmark slowdown of the unaccelerated and
// FADE systems (both single-core dual-threaded, 4-way OoO), for AddrCheck,
// MemLeak, and AtomCheck, plus suite averages for every monitor.
func Fig9(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig9",
		Title:  "FADE vs unaccelerated slowdown (single-core dual-threaded, 4-way OoO)",
		Header: []string{"monitor", "benchmark", "unaccelerated", "FADE"},
	}
	cells := monBenchCells(Monitors())
	res, err := runCells(o, cells, func(ctx context.Context, c monBench) (resultPair, error) {
		u, f, err := runPair(ctx, c.bench, c.mon, o, system.SingleCoreSMT, cpu.OoO4)
		return resultPair{u, f}, err
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.attachPair(c.mon+"/"+c.bench, res[i])
	}
	var allUnacc, allFade []float64
	i := 0
	for _, mon := range Monitors() {
		detailed := mon == "AddrCheck" || mon == "MemLeak" || mon == "AtomCheck"
		var unacc, fade []float64
		for _, bench := range BenchesFor(mon) {
			p := res[i]
			i++
			unacc = append(unacc, p.unacc.Slowdown)
			fade = append(fade, p.fade.Slowdown)
			if detailed {
				t.Rows = append(t.Rows, []string{mon, bench, f2(p.unacc.Slowdown), f2(p.fade.Slowdown)})
			}
		}
		allUnacc = append(allUnacc, unacc...)
		allFade = append(allFade, fade...)
		t.Rows = append(t.Rows, []string{mon, "mean", f2(stats.AMean(unacc)), f2(stats.AMean(fade))})
	}
	t.Rows = append(t.Rows, []string{"overall", "mean", f2(stats.AMean(allUnacc)), f2(stats.AMean(allFade))})
	t.Notes = append(t.Notes,
		"paper: unaccelerated avg 4.1x (AddrCheck 1.6, MemLeak 7.4, AtomCheck 3.9); FADE avg 1.5x (1.2/1.8/1.6; MemCheck 1.4, TaintCheck 1.6)")
	return t, nil
}

// runPair runs the unaccelerated and FADE versions of one configuration.
func runPair(ctx context.Context, bench, mon string, o Options, topo system.Topology, kind cpu.Kind) (unacc, fade *system.Result, err error) {
	cfg := o.config(mon)
	cfg.Topology = topo
	cfg.Core = kind

	cfg.Accel = system.Unaccelerated
	ru, err := system.RunContext(ctx, bench, cfg)
	if err != nil {
		return nil, nil, err
	}
	cfg.Accel = system.FADENonBlocking
	rf, err := system.RunContext(ctx, bench, cfg)
	if err != nil {
		return nil, nil, err
	}
	return ru, rf, nil
}

// Fig10 reproduces Fig. 10: average slowdown per monitor for the three core
// types, unaccelerated and FADE-enabled (single-core dual-threaded).
func Fig10(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:    "fig10",
		Title: "Slowdown by core microarchitecture (single-core system, suite average)",
		Header: []string{"monitor",
			"unacc in-order", "unacc 2-way", "unacc 4-way",
			"FADE in-order", "FADE 2-way", "FADE 4-way"},
	}
	type monKindBench struct {
		mon   string
		kind  cpu.Kind
		bench string
	}
	var cells []monKindBench
	for _, mon := range Monitors() {
		for _, kind := range cpu.Kinds() {
			for _, bench := range BenchesFor(mon) {
				cells = append(cells, monKindBench{mon, kind, bench})
			}
		}
	}
	res, err := runCells(o, cells, func(ctx context.Context, c monKindBench) (resultPair, error) {
		u, f, err := runPair(ctx, c.bench, c.mon, o, system.SingleCoreSMT, c.kind)
		return resultPair{u, f}, err
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.attachPair(fmt.Sprintf("%s/%s/%s", c.mon, c.bench, c.kind), res[i])
	}
	i := 0
	for _, mon := range Monitors() {
		row := []string{mon}
		var unaccCols, fadeCols []string
		for range cpu.Kinds() {
			var unacc, fade []float64
			for range BenchesFor(mon) {
				p := res[i]
				i++
				unacc = append(unacc, p.unacc.Slowdown)
				fade = append(fade, p.fade.Slowdown)
			}
			unaccCols = append(unaccCols, f2(stats.AMean(unacc)))
			fadeCols = append(fadeCols, f2(stats.AMean(fade)))
		}
		row = append(row, unaccCols...)
		row = append(row, fadeCols...)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: unaccelerated monitors are core-sensitive (7-51% worse on simpler cores); FADE is much less so")
	return t, nil
}

// Fig11a reproduces Fig. 11(a): single-core versus two-core FADE systems.
func Fig11a(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig11a",
		Title:  "Single-core vs two-core FADE systems (avg slowdown, 4-way OoO)",
		Header: []string{"monitor", "single-core", "two-core", "two-core benefit"},
	}
	type topoPair struct{ single, double *system.Result }
	cells := monBenchCells(Monitors())
	res, err := runCells(o, cells, func(ctx context.Context, c monBench) (topoPair, error) {
		cfg := o.config(c.mon)
		rs, err := system.RunContext(ctx, c.bench, cfg)
		if err != nil {
			return topoPair{}, err
		}
		cfg.Topology = system.TwoCore
		rt, err := system.RunContext(ctx, c.bench, cfg)
		if err != nil {
			return topoPair{}, err
		}
		return topoPair{rs, rt}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.attach(c.mon+"/"+c.bench+"/single", res[i].single)
		t.attach(c.mon+"/"+c.bench+"/two", res[i].double)
	}
	i := 0
	for _, mon := range Monitors() {
		var single, double []float64
		for range BenchesFor(mon) {
			single = append(single, res[i].single.Slowdown)
			double = append(double, res[i].double.Slowdown)
			i++
		}
		s, d := stats.AMean(single), stats.AMean(double)
		t.Rows = append(t.Rows, []string{mon, f2(s), f2(d), pct(s/d - 1)})
	}
	t.Notes = append(t.Notes, "paper: two-core outperforms single-core by 15% on average (28% max)")
	return t, nil
}

// Fig11b reproduces Fig. 11(b): the two-core system's utilization breakdown.
func Fig11b(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig11b",
		Title:  "Two-core utilization breakdown (% of cycles)",
		Header: []string{"monitor", "app core idle", "monitor core idle", "both utilized"},
	}
	cells := monBenchCells(Monitors())
	res, err := runCells(o, cells, func(ctx context.Context, c monBench) (*system.Result, error) {
		cfg := o.config(c.mon)
		cfg.Topology = system.TwoCore
		return system.RunContext(ctx, c.bench, cfg)
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.attach(c.mon+"/"+c.bench, res[i])
	}
	i := 0
	for _, mon := range Monitors() {
		var ai, mi, bb []float64
		for range BenchesFor(mon) {
			r := res[i]
			i++
			ai = append(ai, r.AppIdleFrac)
			mi = append(mi, r.MonIdleFrac)
			bb = append(bb, r.BothBusyFrac)
		}
		t.Rows = append(t.Rows, []string{mon, pct(stats.AMean(ai)), pct(stats.AMean(mi)), pct(stats.AMean(bb))})
	}
	t.Notes = append(t.Notes, "paper: one core idle 48-97% of the time; both utilized only ~22% on average")
	return t, nil
}

// Fig11c reproduces Fig. 11(c): blocking versus non-blocking FADE.
func Fig11c(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig11c",
		Title:  "Blocking vs Non-Blocking FADE (avg slowdown, single-core 4-way OoO)",
		Header: []string{"monitor", "blocking", "non-blocking", "NB benefit"},
	}
	type modePair struct{ blk, nb *system.Result }
	cells := monBenchCells(Monitors())
	res, err := runCells(o, cells, func(ctx context.Context, c monBench) (modePair, error) {
		cfg := o.config(c.mon)
		cfg.Accel = system.FADEBlocking
		rb, err := system.RunContext(ctx, c.bench, cfg)
		if err != nil {
			return modePair{}, err
		}
		cfg.Accel = system.FADENonBlocking
		rn, err := system.RunContext(ctx, c.bench, cfg)
		if err != nil {
			return modePair{}, err
		}
		return modePair{rb, rn}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.attach(c.mon+"/"+c.bench+"/blocking", res[i].blk)
		t.attach(c.mon+"/"+c.bench+"/nonblocking", res[i].nb)
	}
	i := 0
	for _, mon := range Monitors() {
		var blk, nb []float64
		for range BenchesFor(mon) {
			blk = append(blk, res[i].blk.Slowdown)
			nb = append(nb, res[i].nb.Slowdown)
			i++
		}
		b, n := stats.AMean(blk), stats.AMean(nb)
		t.Rows = append(t.Rows, []string{mon, f2(b), f2(n), fmt.Sprintf("%.2fx", b/n)})
	}
	t.Notes = append(t.Notes,
		"paper: ~2x for the low-filter-ratio monitors (AtomCheck, MemLeak, TaintCheck), ~1.1x for AddrCheck/MemCheck")
	return t, nil
}

// Synth reproduces the Section 7.6 area/power estimates.
func Synth(o Options) (*Table, error) {
	blocks := synth.FADEBlocks()
	t := &Table{
		ID:     "synth",
		Title:  "Area and peak power, TSMC 40nm @ 2GHz (Section 7.6)",
		Header: []string{"block", "area mm2", "peak mW"},
	}
	for _, b := range blocks {
		t.Rows = append(t.Rows, []string{b.Name, fmt.Sprintf("%.4f", b.Area()), fmt.Sprintf("%.1f", b.Power())})
	}
	area, power := synth.Totals(blocks)
	t.Rows = append(t.Rows, []string{"FADE total", fmt.Sprintf("%.4f", area), fmt.Sprintf("%.1f", power)})
	md := synth.MDCacheEstimate()
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("MD cache 4KB 2-way (%.2f ns access)", md.AccessNs),
		fmt.Sprintf("%.4f", md.AreaMM2), fmt.Sprintf("%.1f", md.PeakPowerMW),
	})
	t.Rows = append(t.Rows, []string{"grand total", fmt.Sprintf("%.4f", area+md.AreaMM2), fmt.Sprintf("%.1f", power+md.PeakPowerMW)})
	t.Notes = append(t.Notes, "paper: FADE 0.09 mm2 / 122 mW; MD cache 0.03 mm2 / 151 mW / 0.3 ns")
	return t, nil
}

// All runs every experiment in DESIGN.md order.
func All(o Options) ([]*Table, error) {
	funcs := []struct {
		name string
		fn   func(Options) (*Table, error)
	}{
		{"fig2a", Fig2a}, {"fig2bc", Fig2bc}, {"fig3ab", Fig3ab}, {"fig3c", Fig3c},
		{"fig4a", Fig4a}, {"fig4b", Fig4b}, {"fig4c", Fig4c}, {"table2", Table2},
		{"fig9", Fig9}, {"fig10", Fig10}, {"fig11a", Fig11a}, {"fig11b", Fig11b},
		{"fig11c", Fig11c}, {"multicore-scaling", MulticoreScaling}, {"synth", Synth},
		{"ablation-mdcache", AblationMDCache}, {"ablation-evq", AblationEventQueue},
		{"ablation-ufq", AblationUnfilteredQueue}, {"ablation-signal", AblationSignalLatency},
		{"ablation-coremodel", AblationCoreModel}, {"fault-sweep", FaultSweep},
	}
	var out []*Table
	for _, f := range funcs {
		tbl, err := f.fn(o)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", f.name, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}

// ByID runs a single experiment by id.
func ByID(id string, o Options) (*Table, error) {
	switch id {
	case "fig2a":
		return Fig2a(o)
	case "fig2bc", "fig2b", "fig2c":
		return Fig2bc(o)
	case "fig3ab", "fig3a", "fig3b":
		return Fig3ab(o)
	case "fig3c":
		return Fig3c(o)
	case "fig4a":
		return Fig4a(o)
	case "fig4b":
		return Fig4b(o)
	case "fig4c":
		return Fig4c(o)
	case "table2":
		return Table2(o)
	case "fig9":
		return Fig9(o)
	case "fig10":
		return Fig10(o)
	case "fig11a":
		return Fig11a(o)
	case "fig11b":
		return Fig11b(o)
	case "fig11c":
		return Fig11c(o)
	case "multicore-scaling", "fig8c":
		return MulticoreScaling(o)
	case "synth":
		return Synth(o)
	case "ablation-mdcache":
		return AblationMDCache(o)
	case "ablation-evq":
		return AblationEventQueue(o)
	case "ablation-ufq":
		return AblationUnfilteredQueue(o)
	case "ablation-signal":
		return AblationSignalLatency(o)
	case "ablation-coremodel":
		return AblationCoreModel(o)
	case "fault-sweep":
		return FaultSweep(o)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
}

// IDs lists the experiment identifiers accepted by ByID.
func IDs() []string {
	return []string{"fig2a", "fig2bc", "fig3ab", "fig3c", "fig4a", "fig4b", "fig4c",
		"table2", "fig9", "fig10", "fig11a", "fig11b", "fig11c",
		"multicore-scaling", "synth",
		"ablation-mdcache", "ablation-evq", "ablation-ufq", "ablation-signal",
		"ablation-coremodel", "fault-sweep"}
}
