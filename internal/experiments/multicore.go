package experiments

// Multicore scaling. Section 7 argues FADE scales to CMPs because the
// accelerator is a per-core block: every application core gets a private
// filtering unit and queues, and monitor cores are added alongside
// (Fig. 8c). This experiment scales that organization out — N application
// cores, each with a dedicated monitor core — and reports the aggregate
// slowdown, which should stay flat with N since the groups share nothing.

import (
	"fmt"

	"fade/internal/system"
)

// multicoreCounts is the app-core sweep of the scaling experiment.
var multicoreCounts = []int{1, 2, 4, 8}

// multicoreAccels orders the acceleration modes of the scaling experiment.
var multicoreAccels = []system.Accel{system.Unaccelerated, system.FADEBlocking, system.FADENonBlocking}

// MulticoreScaling sweeps 1/2/4/8 application cores for every monitor and
// acceleration mode on the CMP topology (N app cores, N dedicated monitor
// cores). Each cell's aggregate slowdown normalizes the CMP's completion
// time to its slowest per-core baseline; the 1-core cell is exactly the
// TwoCore system of Fig. 11(a).
func MulticoreScaling(o Options) (*Table, error) { return run(expMulticore, o) }

var expMulticore = experiment{
	id: "multicore-scaling",
	cells: func(o Options) ([]Cell, error) {
		var cells []Cell
		for _, mon := range Monitors() {
			for _, accel := range multicoreAccels {
				for _, n := range multicoreCounts {
					// One representative benchmark per monitor keeps the sweep
					// at (1+2+4+8) core-simulations per (monitor, mode) row.
					bench := BenchesFor(mon)[0]
					cfg := o.config(mon)
					cfg.Accel = accel
					cfg.Topology = system.CMP(n)
					cells = append(cells, Cell{
						Label: fmt.Sprintf("%s/%s/%dcore/%s", mon, accel, n, bench),
						Spec:  system.SpecFromConfig(bench, cfg),
					})
				}
			}
		}
		return cells, nil
	},
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		t := &Table{
			ID:     "multicore-scaling",
			Title:  "CMP scaling: aggregate slowdown vs application cores (Fig. 8c organization)",
			Header: []string{"monitor", "mode", "1 core", "2 cores", "4 cores", "8 cores"},
		}
		i := 0
		for _, mon := range Monitors() {
			for _, accel := range multicoreAccels {
				row := []string{mon, accel.String()}
				for range multicoreCounts {
					row = append(row, f2(outs[i].Result.Slowdown))
					i++
				}
				t.Rows = append(t.Rows, row)
			}
		}
		t.Notes = append(t.Notes,
			"per-core filtering units and private queues share nothing: slowdown stays flat as cores scale (Section 7, Fig. 8c)",
			"1-core cells are the two-core system of Fig. 11(a); each core runs a decorrelated copy of the benchmark")
		return t, nil
	},
}
