package experiments

// Multicore scaling. Section 7 argues FADE scales to CMPs because the
// accelerator is a per-core block: every application core gets a private
// filtering unit and queues, and monitor cores are added alongside
// (Fig. 8c). This experiment scales that organization out — N application
// cores, each with a dedicated monitor core — and reports the aggregate
// slowdown, which should stay flat with N since the groups share nothing.

import (
	"context"
	"fmt"

	"fade/internal/system"
)

// multicoreCounts is the app-core sweep of the scaling experiment.
var multicoreCounts = []int{1, 2, 4, 8}

// multicoreAccels orders the acceleration modes of the scaling experiment.
var multicoreAccels = []system.Accel{system.Unaccelerated, system.FADEBlocking, system.FADENonBlocking}

// MulticoreScaling sweeps 1/2/4/8 application cores for every monitor and
// acceleration mode on the CMP topology (N app cores, N dedicated monitor
// cores). Each cell's aggregate slowdown normalizes the CMP's completion
// time to its slowest per-core baseline; the 1-core cell is exactly the
// TwoCore system of Fig. 11(a).
func MulticoreScaling(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "multicore-scaling",
		Title:  "CMP scaling: aggregate slowdown vs application cores (Fig. 8c organization)",
		Header: []string{"monitor", "mode", "1 core", "2 cores", "4 cores", "8 cores"},
	}
	type cell struct {
		mon   string
		accel system.Accel
		cores int
	}
	var cells []cell
	for _, mon := range Monitors() {
		for _, accel := range multicoreAccels {
			for _, n := range multicoreCounts {
				cells = append(cells, cell{mon, accel, n})
			}
		}
	}
	res, err := runCells(o, cells, func(ctx context.Context, c cell) (*system.Result, error) {
		// One representative benchmark per monitor keeps the sweep at
		// (1+2+4+8) core-simulations per (monitor, mode) cell row.
		bench := BenchesFor(c.mon)[0]
		cfg := o.config(c.mon)
		cfg.Accel = c.accel
		cfg.Topology = system.CMP(c.cores)
		return system.RunContext(ctx, bench, cfg)
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.attach(fmt.Sprintf("%s/%s/%dcore/%s", c.mon, c.accel, c.cores, BenchesFor(c.mon)[0]), res[i])
	}
	i := 0
	for _, mon := range Monitors() {
		for _, accel := range multicoreAccels {
			row := []string{mon, accel.String()}
			for range multicoreCounts {
				row = append(row, f2(res[i].Slowdown))
				i++
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"per-core filtering units and private queues share nothing: slowdown stays flat as cores scale (Section 7, Fig. 8c)",
		"1-core cells are the two-core system of Fig. 11(a); each core runs a decorrelated copy of the benchmark")
	return t, nil
}
