package experiments

import (
	"context"
	"testing"

	"fade/internal/rcache"
	"fade/internal/system"
)

// TestCacheResume is the resume acceptance check: a sweep executed against
// a disk cache, then re-run through a fresh cache over the same directory,
// must rebuild the identical table with zero simulations (every cell a
// cache hit).
func TestCacheResume(t *testing.T) {
	dir := t.TempDir()
	o := tiny()

	plain, err := Fig2bc(o)
	if err != nil {
		t.Fatal(err)
	}

	cold, err := rcache.New(rcache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	oc := o
	oc.Cache = cold
	ct, err := Fig2bc(oc)
	if err != nil {
		t.Fatal(err)
	}
	if ct.String() != plain.String() {
		t.Fatalf("cache-on table differs from cache-off:\n--- off\n%s\n--- on\n%s", plain, ct)
	}
	cells, err := CellsFor("fig2bc", o)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.Misses != uint64(len(cells)) {
		t.Fatalf("cold run: %d misses, want %d (one per cell)", st.Misses, len(cells))
	}

	// A fresh cache over the same directory simulates nothing.
	warm, err := rcache.New(rcache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ow := o
	ow.Cache = warm
	wt, err := Fig2bc(ow)
	if err != nil {
		t.Fatal(err)
	}
	st := warm.Stats()
	if st.Misses != 0 {
		t.Fatalf("warm run simulated %d cells, want 0", st.Misses)
	}
	if st.Hits != uint64(len(cells)) {
		t.Fatalf("warm run: %d hits, want %d (one per cell)", st.Hits, len(cells))
	}
	if wt.String() != plain.String() {
		t.Fatalf("resumed table differs:\n--- fresh\n%s\n--- resumed\n%s", plain, wt)
	}
}

// TestCachedFullSystemExperiment covers the system.Run path (Result with
// metrics attached) through the cache, including the Cells telemetry.
func TestCachedFullSystemExperiment(t *testing.T) {
	o := tiny()
	plain, err := Fig11c(o)
	if err != nil {
		t.Fatal(err)
	}
	c := rcache.NewMem(256)
	oc := o
	oc.Cache = c
	if _, err := Fig11c(oc); err != nil { // cold fill
		t.Fatal(err)
	}
	warmTbl, err := Fig11c(oc) // all hits
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits == 0 {
		t.Fatal("second run hit nothing")
	}
	if warmTbl.String() != plain.String() {
		t.Fatal("cached table text differs from uncached")
	}
	if len(warmTbl.Cells) != len(plain.Cells) {
		t.Fatalf("cached table attaches %d cells, uncached %d", len(warmTbl.Cells), len(plain.Cells))
	}
	for i := range warmTbl.Cells {
		if warmTbl.Cells[i].Cell != plain.Cells[i].Cell {
			t.Fatalf("cell %d label %q != %q", i, warmTbl.Cells[i].Cell, plain.Cells[i].Cell)
		}
	}
}

// TestShardPartition: shards 0..n-1 of an experiment are disjoint and
// their union is the full cell set, so N workers priming one shard each
// cover every cell exactly once.
func TestShardPartition(t *testing.T) {
	o := tiny()
	cells, err := CellsFor("fig9", o)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	seen := map[string]int{}
	for shard := 0; shard < n; shard++ {
		for _, c := range cells {
			if c.Spec.Shard(n) == shard {
				seen[c.Label]++
			}
		}
	}
	if len(seen) != len(cells) {
		t.Fatalf("shards cover %d of %d cells", len(seen), len(cells))
	}
	for label, count := range seen {
		if count != 1 {
			t.Fatalf("cell %s owned by %d shards", label, count)
		}
	}
}

// TestPrimeThenRun: priming every shard into a shared cache makes the
// subsequent unsharded run a pure cache read.
func TestPrimeThenRun(t *testing.T) {
	o := tiny()
	c := rcache.NewMem(256)
	op := o
	op.Cache = c
	const n = 2
	ran := 0
	for shard := 0; shard < n; shard++ {
		r, total, err := Prime("fig3c", op, shard, n)
		if err != nil {
			t.Fatal(err)
		}
		cells, _ := CellsFor("fig3c", o)
		if total != len(cells) {
			t.Fatalf("Prime total = %d, want %d", total, len(cells))
		}
		ran += r
	}
	cells, _ := CellsFor("fig3c", o)
	if ran != len(cells) {
		t.Fatalf("shards primed %d cells, want %d", ran, len(cells))
	}
	misses := c.Stats().Misses
	tbl, err := ByID("fig3c", op)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Misses; got != misses {
		t.Fatalf("post-prime run simulated %d cells, want 0", got-misses)
	}
	plain, err := Fig3c(o)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.String() != plain.String() {
		t.Fatal("primed table differs from direct run")
	}
}

// TestMissing: a primed cell drops out of the missing set, a nil cache
// leaves every cell missing.
func TestMissing(t *testing.T) {
	o := tiny()
	cells, err := CellsFor("fig3c", o)
	if err != nil {
		t.Fatal(err)
	}
	if got := Missing(cells, nil); len(got) != len(cells) {
		t.Fatalf("Missing(nil cache) = %d cells, want all %d", len(got), len(cells))
	}
	c := rcache.NewMem(256)
	if got := Missing(cells, c); len(got) != len(cells) {
		t.Fatalf("Missing(empty cache) = %d cells, want all %d", len(got), len(cells))
	}
	// Prime exactly one cell: only it should drop out.
	op := o
	op.Cache = c
	if _, _, err := system.ExecSpecCached(context.Background(), c, cells[0].Spec); err != nil {
		t.Fatal(err)
	}
	got := Missing(cells, c)
	if len(got) != len(cells)-1 {
		t.Fatalf("Missing after priming one cell = %d, want %d", len(got), len(cells)-1)
	}
	for _, m := range got {
		if m.Label == cells[0].Label {
			t.Fatalf("primed cell %s still reported missing", m.Label)
		}
	}
}

// TestCellsForUnknown rejects unknown ids like ByID does.
func TestCellsForUnknown(t *testing.T) {
	if _, err := CellsFor("nope", tiny()); err == nil {
		t.Fatal("unknown id accepted")
	}
	if cells, err := CellsFor("synth", tiny()); err != nil || len(cells) != 0 {
		t.Fatalf("synth cells = %v, %v (want none)", cells, err)
	}
}
