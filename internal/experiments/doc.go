// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 3 and 7). Each Fig*/Table* function runs the
// required simulations and returns a Table whose rows mirror the series the
// paper plots; cmd/fadebench prints them and EXPERIMENTS.md records the
// paper-vs-measured comparison. DESIGN.md §3 maps experiment ids to these
// functions.
//
// Every experiment is a grid of independent, deterministic, seeded
// simulations. The functions below enumerate the grid as a flat cell list,
// fan the cells out across cores through par.RunCells, and assemble rows
// from the results in cell order — so the tables are byte-identical to a
// sequential run (Options.Parallel = 1) regardless of scheduling.
//
// # Observability
//
// Beyond its formatted rows, every Table carries Cells: one CellMetrics per
// simulation cell holding the run's full registry snapshot (and, when
// Options.TimelineEvery is set, its cycle-sampled timeline). Cell labels
// follow "<monitor>/<benchmark>[/<variant>]". EXPERIMENTS.md maps each
// experiment to the registry metrics its table derives from, and
// docs/METRICS.md documents the metric name space itself.
package experiments
