package experiments

import (
	"strings"
	"testing"

	"fade/internal/system"
)

// tiny returns options scaled down for test speed; the calibration tests in
// internal/system check the numbers at full scale.
func tiny() Options { return Options{Instrs: 25_000, Seed: 1} }

func TestByIDUnknownRejected(t *testing.T) {
	if _, err := ByID("nope", tiny()); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
	if len(IDs()) != 21 {
		t.Fatalf("experiment count = %d", len(IDs()))
	}
	// The cheap experiments are runnable through ByID.
	tbl, err := ByID("synth", tiny())
	if err != nil || tbl.ID != "synth" {
		t.Fatalf("ByID(synth) = %v, %v", tbl, err)
	}
}

func TestBenchesFor(t *testing.T) {
	if len(BenchesFor("AddrCheck")) != 8 {
		t.Fatal("AddrCheck suite size")
	}
	if len(BenchesFor("AtomCheck")) != 5 {
		t.Fatal("AtomCheck suite size")
	}
	if len(BenchesFor("TaintCheck")) != 4 {
		t.Fatal("TaintCheck suite size")
	}
	if len(Monitors()) != 5 {
		t.Fatal("monitor list size")
	}
}

func expectTable(t *testing.T, tbl *Table, err error, minRows int) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < minRows {
		t.Fatalf("%s: %d rows, want >= %d", tbl.ID, len(tbl.Rows), minRows)
	}
	for i, row := range tbl.Rows {
		if len(row) != len(tbl.Header) && tbl.ID != "fig4c" {
			t.Fatalf("%s row %d has %d cells, header has %d", tbl.ID, i, len(row), len(tbl.Header))
		}
	}
	if s := tbl.String(); !strings.Contains(s, tbl.ID) {
		t.Fatalf("%s: String() missing id", tbl.ID)
	}
}

func TestFig2a(t *testing.T) {
	tbl, err := Fig2a(tiny())
	expectTable(t, tbl, err, 5)
}

func TestFig2bc(t *testing.T) {
	tbl, err := Fig2bc(tiny())
	expectTable(t, tbl, err, 9) // 8 benchmarks + mean
}

func TestFig3ab(t *testing.T) {
	tbl, err := Fig3ab(tiny())
	expectTable(t, tbl, err, 16) // 2 monitors x 8 benchmarks
}

func TestFig3c(t *testing.T) {
	tbl, err := Fig3c(tiny())
	expectTable(t, tbl, err, 9)
}

func TestFig4a(t *testing.T) {
	tbl, err := Fig4a(tiny())
	expectTable(t, tbl, err, 5)
}

func TestFig4b(t *testing.T) {
	tbl, err := Fig4b(tiny())
	expectTable(t, tbl, err, 8)
}

func TestFig4c(t *testing.T) {
	tbl, err := Fig4c(tiny())
	expectTable(t, tbl, err, 5)
}

func TestTable2(t *testing.T) {
	tbl, err := Table2(tiny())
	expectTable(t, tbl, err, 5)
	// Every monitor's measured ratio should parse as a percentage > 50%.
	for _, row := range tbl.Rows {
		if !strings.HasSuffix(row[1], "%") {
			t.Fatalf("ratio cell %q not a percentage", row[1])
		}
	}
}

func TestFig9(t *testing.T) {
	tbl, err := Fig9(tiny())
	// 8+8+5 detailed rows + 5 means + overall.
	expectTable(t, tbl, err, 25)
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "overall" {
		t.Fatalf("last row %v", last)
	}
}

func TestFig11a(t *testing.T) {
	tbl, err := Fig11a(tiny())
	expectTable(t, tbl, err, 5)
}

func TestFig11b(t *testing.T) {
	tbl, err := Fig11b(tiny())
	expectTable(t, tbl, err, 5)
}

func TestFig11c(t *testing.T) {
	tbl, err := Fig11c(tiny())
	expectTable(t, tbl, err, 5)
}

func TestSynthTable(t *testing.T) {
	tbl, err := Synth(Options{})
	expectTable(t, tbl, err, 10)
}

// Fig10 runs 5 monitors x suites x 3 cores x 2 systems: the heaviest
// experiment; smoke-test it at reduced scale but skip in -short.
func TestFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("fig10 is the heaviest experiment")
	}
	tbl, err := Fig10(Options{Instrs: 12_000, Seed: 1})
	expectTable(t, tbl, err, 5)
}

func TestAblationExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweeps are slow")
	}
	for _, fn := range []func(Options) (*Table, error){
		AblationMDCache, AblationEventQueue, AblationUnfilteredQueue, AblationSignalLatency,
		AblationCoreModel,
	} {
		tbl, err := fn(Options{Instrs: 15_000, Seed: 1})
		expectTable(t, tbl, err, 2)
	}
}

// TestMulticoreScaling smoke-tests the CMP sweep and checks the acceptance
// anchor: the 1-core cell of the FADE row equals a direct TwoCore run.
func TestMulticoreScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("multicore sweep is heavy")
	}
	o := Options{Instrs: 12_000, Seed: 1}
	tbl, err := MulticoreScaling(o)
	expectTable(t, tbl, err, 15) // 5 monitors x 3 modes
	cfg := o.config("MemLeak")
	cfg.Topology = system.TwoCore
	ref, err := system.Run(BenchesFor("MemLeak")[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range tbl.Rows {
		if row[0] == "MemLeak" && row[1] == "FADE" {
			found = true
			if row[2] != f2(ref.Slowdown) {
				t.Fatalf("1-core cell %s != TwoCore slowdown %s", row[2], f2(ref.Slowdown))
			}
		}
	}
	if !found {
		t.Fatal("MemLeak/FADE row missing")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Instrs == 0 || o.Seed == 0 {
		t.Fatal("defaults not applied")
	}
	if o.Parallel != 0 {
		t.Fatal("Parallel should default to 0 (GOMAXPROCS)")
	}
}

// TestParallelMatchesSequential is the determinism guarantee of the parallel
// runner: the same experiment run sequentially (Parallel=1) and wide
// (Parallel=8) must render byte-identical tables — per-cell RNGs derive only
// from (seed, benchmark, config) and rows are assembled in cell order.
func TestParallelMatchesSequential(t *testing.T) {
	for _, fn := range []struct {
		name string
		run  func(Options) (*Table, error)
	}{
		{"fig2bc", Fig2bc}, // queue-study path
		{"fig11c", Fig11c}, // full-system path, two runs per cell
	} {
		seq := tiny()
		seq.Parallel = 1
		st, err := fn.run(seq)
		if err != nil {
			t.Fatalf("%s sequential: %v", fn.name, err)
		}
		wide := tiny()
		wide.Parallel = 8
		wt, err := fn.run(wide)
		if err != nil {
			t.Fatalf("%s parallel: %v", fn.name, err)
		}
		if st.String() != wt.String() {
			t.Errorf("%s: parallel output differs from sequential:\n--- sequential\n%s\n--- parallel\n%s",
				fn.name, st.String(), wt.String())
		}
	}
}
