package experiments

// Ablation studies. Section 6 mentions a sensitivity analysis for the MD
// cache and M-TLB "excluded due to space limitations" that found the 4 KB /
// 16-entry design point to offer the best cost-performance ratio; these
// experiments reconstruct that analysis, plus queue-depth sweeps for the
// two decoupling queues (extending the Section 3.2/3.4 sizing arguments to
// the full FADE system rather than the idealized drain).

import (
	"context"
	"fmt"

	"fade/internal/cpu"
	"fade/internal/sim"
	"fade/internal/stats"
	"fade/internal/synth"
	"fade/internal/system"
	"fade/internal/trace"
)

// ablationBenches is a representative subset spanning low and high
// monitoring load, used to keep sweep cost manageable.
var ablationBenches = []string{"astar", "bzip", "mcf", "omnet"}

// sweepSlowdowns runs one full sweep: every (sweep point, benchmark) pair is
// an independent simulation cell, fanned out together so the whole sweep —
// not just one point — fills the worker pool. Each cell's metrics snapshot
// is attached to t under "<monitor>/<point>/<benchmark>" (points names the
// sweep points in mutator order). It returns the per-point mean slowdowns
// in mutator order.
func sweepSlowdowns(o Options, t *Table, mon string, points []string, mutators []func(*system.Config)) ([]float64, error) {
	type pointBench struct {
		point int
		bench string
	}
	var cells []pointBench
	for p := range mutators {
		for _, bench := range ablationBenches {
			cells = append(cells, pointBench{p, bench})
		}
	}
	res, err := runCells(o, cells, func(ctx context.Context, c pointBench) (*system.Result, error) {
		cfg := o.config(mon)
		mutators[c.point](&cfg)
		return system.RunContext(ctx, c.bench, cfg)
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.attach(fmt.Sprintf("%s/%s/%s", mon, points[c.point], c.bench), res[i])
	}
	out := make([]float64, len(mutators))
	for p := range mutators {
		var slows []float64
		for _, r := range res[p*len(ablationBenches) : (p+1)*len(ablationBenches)] {
			slows = append(slows, r.Slowdown)
		}
		out[p] = stats.AMean(slows)
	}
	return out, nil
}

// AblationMDCache sweeps the metadata cache size and reports slowdown
// against silicon cost — the cost-performance trade the paper's excluded
// sensitivity analysis settles at 4 KB.
func AblationMDCache(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "ablation-mdcache",
		Title:  "MD cache size sensitivity (MemLeak, avg slowdown vs silicon cost)",
		Header: []string{"MD cache", "slowdown", "area mm2", "peak mW"},
	}
	kbs := []int{1, 2, 4, 8, 16}
	var mutators []func(*system.Config)
	var points []string
	for _, kb := range kbs {
		size := kb << 10
		mutators = append(mutators, func(c *system.Config) { c.MDCacheBytes = size })
		points = append(points, fmt.Sprintf("mdcache%dkb", kb))
	}
	slows, err := sweepSlowdowns(o, t, "MemLeak", points, mutators)
	if err != nil {
		return nil, err
	}
	for i, kb := range kbs {
		est := synth.EstimateCache(kb<<10, 2, 64)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dKB", kb), f2(slows[i]),
			fmt.Sprintf("%.4f", est.AreaMM2), fmt.Sprintf("%.1f", est.PeakPowerMW),
		})
	}
	t.Notes = append(t.Notes,
		"paper (Section 6): the excluded sensitivity analysis found 4KB/two-way the best cost-performance point")
	return t, nil
}

// AblationEventQueue sweeps the event queue depth on the full FADE system.
func AblationEventQueue(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "ablation-evq",
		Title:  "Event queue depth sensitivity (MemLeak, avg slowdown)",
		Header: []string{"entries", "slowdown"},
	}
	depths := []int{4, 8, 16, 32, 64, 128}
	var mutators []func(*system.Config)
	var points []string
	for _, n := range depths {
		n := n
		mutators = append(mutators, func(c *system.Config) { c.EventQueueCap = n })
		points = append(points, fmt.Sprintf("evq%d", n))
	}
	slows, err := sweepSlowdowns(o, t, "MemLeak", points, mutators)
	if err != nil {
		return nil, err
	}
	for i, n := range depths {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), f2(slows[i])})
	}
	t.Notes = append(t.Notes, "paper (Section 3.2): a 32-entry queue suffices; deeper queues buy little")
	return t, nil
}

// AblationUnfilteredQueue sweeps the unfiltered event queue depth.
func AblationUnfilteredQueue(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "ablation-ufq",
		Title:  "Unfiltered event queue depth sensitivity (MemLeak, avg slowdown)",
		Header: []string{"entries", "slowdown"},
	}
	depths := []int{2, 4, 8, 16, 32}
	var mutators []func(*system.Config)
	var points []string
	for _, n := range depths {
		n := n
		mutators = append(mutators, func(c *system.Config) { c.UnfilteredCap = n })
		points = append(points, fmt.Sprintf("ufq%d", n))
	}
	slows, err := sweepSlowdowns(o, t, "MemLeak", points, mutators)
	if err != nil {
		return nil, err
	}
	for i, n := range depths {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), f2(slows[i])})
	}
	t.Notes = append(t.Notes, "paper (Section 3.4): 16 entries accommodate the unfiltered bursts")
	return t, nil
}

// AblationSignalLatency quantifies what the Non-Blocking design saves as a
// function of the blocking design's completion-notification latency.
func AblationSignalLatency(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "ablation-signal",
		Title:  "Blocking FADE vs completion-signal latency (MemLeak, avg slowdown)",
		Header: []string{"signal cycles", "blocking slowdown", "non-blocking slowdown"},
	}
	latencies := []int{-1, 7, 14, 28}
	// Point 0 is the non-blocking reference; the rest sweep the blocking
	// design's signal latency.
	mutators := []func(*system.Config){
		func(c *system.Config) { c.Accel = system.FADENonBlocking },
	}
	points := []string{"nonblocking"}
	for _, lat := range latencies {
		lat := lat
		mutators = append(mutators, func(c *system.Config) {
			c.Accel = system.FADEBlocking
			c.BlockingSignalCycles = lat
		})
		points = append(points, fmt.Sprintf("signal%d", lat))
	}
	slows, err := sweepSlowdowns(o, t, "MemLeak", points, mutators)
	if err != nil {
		return nil, err
	}
	nb := slows[0]
	for i, lat := range latencies {
		label := fmt.Sprintf("%d", lat)
		if lat == -1 {
			label = "0 (ideal)"
		}
		t.Rows = append(t.Rows, []string{label, f2(slows[i+1]), f2(nb)})
	}
	t.Notes = append(t.Notes,
		"non-blocking filtering hides both the handler and the notification round trip (Section 5)")
	return t, nil
}

// AblationCoreModel cross-validates the two application-core timing models:
// the calibrated rate-based model (used by every experiment above) and the
// dependency-driven detailed model (real ROB, register dependencies, cache
// latencies). Agreement on the workload extremes — which benchmarks are
// memory-bound, which are fast — grounds the rate model's per-profile
// calibration in instruction-level behaviour.
func AblationCoreModel(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "ablation-coremodel",
		Title:  "Baseline IPC: rate-based vs dependency-driven core models (4-way OoO)",
		Header: []string{"benchmark", "rate model", "detailed model", "in-order detailed"},
	}
	type modelIPC struct{ rate, detailed, inorder float64 }
	benches := trace.SerialNames()
	res, err := runCells(o, benches, func(ctx context.Context, bench string) (modelIPC, error) {
		prof, _ := trace.Lookup(bench)
		// Rate model baseline, driven on the sim kernel like every other
		// simulation in the repository.
		gen := trace.New(prof, o.Seed, o.Instrs)
		app := cpu.NewAppCore(cpu.OoO4, prof, gen, nil, nil)
		clock := sim.NewClock()
		clock.Register(app)
		sched := &sim.Scheduler{Clock: clock, MaxCycles: o.Instrs * 200,
			Done: func(uint64) bool { return app.Done() }}
		out := sched.Run()
		if !out.Completed {
			return modelIPC{}, fmt.Errorf("rate model for %s: %w", bench, out.Err)
		}
		rate := stats.Ratio(app.Instrs(), out.Cycles)
		// Detailed model, 4-way and in-order.
		c4, r4, err := cpu.RunDetailed(cpu.OoO4, trace.New(prof, o.Seed, o.Instrs), o.Seed, o.Instrs*200)
		if err != nil {
			return modelIPC{}, fmt.Errorf("detailed model for %s: %w", bench, err)
		}
		ci, ri, err := cpu.RunDetailed(cpu.InOrder, trace.New(prof, o.Seed, o.Instrs), o.Seed, o.Instrs*200)
		if err != nil {
			return modelIPC{}, fmt.Errorf("in-order detailed model for %s: %w", bench, err)
		}
		return modelIPC{rate, stats.Ratio(r4, c4), stats.Ratio(ri, ci)}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, bench := range benches {
		t.Rows = append(t.Rows, []string{bench, f2(res[i].rate), f2(res[i].detailed), f2(res[i].inorder)})
	}
	t.Notes = append(t.Notes,
		"the models derive timing independently; both mark mcf memory-bound and bzip/hmmer fast",
		"the detailed model compresses the IPC range: the generator's uniform operand selection yields uniform ILP, whereas the rate model carries per-benchmark calibrated dependency behaviour")
	return t, nil
}
