package experiments

// Ablation studies. Section 6 mentions a sensitivity analysis for the MD
// cache and M-TLB "excluded due to space limitations" that found the 4 KB /
// 16-entry design point to offer the best cost-performance ratio; these
// experiments reconstruct that analysis, plus queue-depth sweeps for the
// two decoupling queues (extending the Section 3.2/3.4 sizing arguments to
// the full FADE system rather than the idealized drain).

import (
	"fmt"

	"fade/internal/cpu"
	"fade/internal/stats"
	"fade/internal/synth"
	"fade/internal/system"
	"fade/internal/trace"
)

// ablationBenches is a representative subset spanning low and high
// monitoring load, used to keep sweep cost manageable.
var ablationBenches = []string{"astar", "bzip", "mcf", "omnet"}

func sweepSlowdown(o Options, mon string, mutate func(*system.Config)) (float64, error) {
	var slows []float64
	for _, bench := range ablationBenches {
		cfg := system.DefaultConfig(mon)
		cfg.Instrs = o.Instrs
		cfg.Seed = o.Seed
		mutate(&cfg)
		r, err := system.Run(bench, cfg)
		if err != nil {
			return 0, err
		}
		slows = append(slows, r.Slowdown)
	}
	return stats.AMean(slows), nil
}

// AblationMDCache sweeps the metadata cache size and reports slowdown
// against silicon cost — the cost-performance trade the paper's excluded
// sensitivity analysis settles at 4 KB.
func AblationMDCache(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "ablation-mdcache",
		Title:  "MD cache size sensitivity (MemLeak, avg slowdown vs silicon cost)",
		Header: []string{"MD cache", "slowdown", "area mm2", "peak mW"},
	}
	for _, kb := range []int{1, 2, 4, 8, 16} {
		size := kb << 10
		slow, err := sweepSlowdown(o, "MemLeak", func(c *system.Config) { c.MDCacheBytes = size })
		if err != nil {
			return nil, err
		}
		est := synth.EstimateCache(size, 2, 64)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dKB", kb), f2(slow),
			fmt.Sprintf("%.4f", est.AreaMM2), fmt.Sprintf("%.1f", est.PeakPowerMW),
		})
	}
	t.Notes = append(t.Notes,
		"paper (Section 6): the excluded sensitivity analysis found 4KB/two-way the best cost-performance point")
	return t, nil
}

// AblationEventQueue sweeps the event queue depth on the full FADE system.
func AblationEventQueue(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "ablation-evq",
		Title:  "Event queue depth sensitivity (MemLeak, avg slowdown)",
		Header: []string{"entries", "slowdown"},
	}
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		slow, err := sweepSlowdown(o, "MemLeak", func(c *system.Config) { c.EventQueueCap = n })
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), f2(slow)})
	}
	t.Notes = append(t.Notes, "paper (Section 3.2): a 32-entry queue suffices; deeper queues buy little")
	return t, nil
}

// AblationUnfilteredQueue sweeps the unfiltered event queue depth.
func AblationUnfilteredQueue(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "ablation-ufq",
		Title:  "Unfiltered event queue depth sensitivity (MemLeak, avg slowdown)",
		Header: []string{"entries", "slowdown"},
	}
	for _, n := range []int{2, 4, 8, 16, 32} {
		slow, err := sweepSlowdown(o, "MemLeak", func(c *system.Config) { c.UnfilteredCap = n })
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), f2(slow)})
	}
	t.Notes = append(t.Notes, "paper (Section 3.4): 16 entries accommodate the unfiltered bursts")
	return t, nil
}

// AblationSignalLatency quantifies what the Non-Blocking design saves as a
// function of the blocking design's completion-notification latency.
func AblationSignalLatency(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "ablation-signal",
		Title:  "Blocking FADE vs completion-signal latency (MemLeak, avg slowdown)",
		Header: []string{"signal cycles", "blocking slowdown", "non-blocking slowdown"},
	}
	nb, err := sweepSlowdown(o, "MemLeak", func(c *system.Config) { c.Accel = system.FADENonBlocking })
	if err != nil {
		return nil, err
	}
	for _, lat := range []int{-1, 7, 14, 28} {
		lat := lat
		blk, err := sweepSlowdown(o, "MemLeak", func(c *system.Config) {
			c.Accel = system.FADEBlocking
			c.BlockingSignalCycles = lat
		})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d", lat)
		if lat == -1 {
			label = "0 (ideal)"
		}
		t.Rows = append(t.Rows, []string{label, f2(blk), f2(nb)})
	}
	t.Notes = append(t.Notes,
		"non-blocking filtering hides both the handler and the notification round trip (Section 5)")
	return t, nil
}

// AblationCoreModel cross-validates the two application-core timing models:
// the calibrated rate-based model (used by every experiment above) and the
// dependency-driven detailed model (real ROB, register dependencies, cache
// latencies). Agreement on the workload extremes — which benchmarks are
// memory-bound, which are fast — grounds the rate model's per-profile
// calibration in instruction-level behaviour.
func AblationCoreModel(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "ablation-coremodel",
		Title:  "Baseline IPC: rate-based vs dependency-driven core models (4-way OoO)",
		Header: []string{"benchmark", "rate model", "detailed model", "in-order detailed"},
	}
	for _, bench := range trace.SerialNames() {
		prof, _ := trace.Lookup(bench)
		// Rate model baseline.
		gen := trace.New(prof, o.Seed, o.Instrs)
		app := cpu.NewAppCore(cpu.OoO4, prof, gen, nil, nil)
		var cycles uint64
		for ; !app.Done() && cycles < o.Instrs*200; cycles++ {
			app.TickShare(1.0)
		}
		rate := stats.Ratio(app.Instrs(), cycles)
		// Detailed model, 4-way and in-order.
		c4, r4 := cpu.RunDetailed(cpu.OoO4, trace.New(prof, o.Seed, o.Instrs), o.Seed, o.Instrs*200)
		ci, ri := cpu.RunDetailed(cpu.InOrder, trace.New(prof, o.Seed, o.Instrs), o.Seed, o.Instrs*200)
		t.Rows = append(t.Rows, []string{bench, f2(rate),
			f2(stats.Ratio(r4, c4)), f2(stats.Ratio(ri, ci))})
	}
	t.Notes = append(t.Notes,
		"the models derive timing independently; both mark mcf memory-bound and bzip/hmmer fast",
		"the detailed model compresses the IPC range: the generator's uniform operand selection yields uniform ILP, whereas the rate model carries per-benchmark calibrated dependency behaviour")
	return t, nil
}
