package experiments

// Ablation studies. Section 6 mentions a sensitivity analysis for the MD
// cache and M-TLB "excluded due to space limitations" that found the 4 KB /
// 16-entry design point to offer the best cost-performance ratio; these
// experiments reconstruct that analysis, plus queue-depth sweeps for the
// two decoupling queues (extending the Section 3.2/3.4 sizing arguments to
// the full FADE system rather than the idealized drain).

import (
	"fmt"

	"fade/internal/runspec"
	"fade/internal/stats"
	"fade/internal/synth"
	"fade/internal/system"
	"fade/internal/trace"
)

// ablationBenches is a representative subset spanning low and high
// monitoring load, used to keep sweep cost manageable.
var ablationBenches = []string{"astar", "bzip", "mcf", "omnet"}

// sweepCells enumerates one full sweep: every (sweep point, benchmark)
// pair is an independent cell labelled "<monitor>/<point>/<benchmark>"
// (points names the sweep points in mutator order).
func sweepCells(o Options, mon string, points []string, mutators []func(*system.Config)) []Cell {
	var cells []Cell
	for p := range mutators {
		for _, bench := range ablationBenches {
			cfg := o.config(mon)
			mutators[p](&cfg)
			cells = append(cells, Cell{
				Label: fmt.Sprintf("%s/%s/%s", mon, points[p], bench),
				Spec:  system.SpecFromConfig(bench, cfg),
			})
		}
	}
	return cells
}

// sweepMeans reduces a sweep's outcomes (in sweepCells order) to the
// per-point mean slowdowns.
func sweepMeans(outs []*system.Outcome, npoints int) []float64 {
	means := make([]float64, npoints)
	for p := 0; p < npoints; p++ {
		var slows []float64
		for _, out := range outs[p*len(ablationBenches) : (p+1)*len(ablationBenches)] {
			slows = append(slows, out.Result.Slowdown)
		}
		means[p] = stats.AMean(slows)
	}
	return means
}

// mdcacheKBs is the MD-cache sweep's x-axis (cache size in KB).
var mdcacheKBs = []int{1, 2, 4, 8, 16}

func mdcacheSweep() (points []string, mutators []func(*system.Config)) {
	for _, kb := range mdcacheKBs {
		size := kb << 10
		mutators = append(mutators, func(c *system.Config) { c.MDCacheBytes = size })
		points = append(points, fmt.Sprintf("mdcache%dkb", kb))
	}
	return points, mutators
}

// AblationMDCache sweeps the metadata cache size and reports slowdown
// against silicon cost — the cost-performance trade the paper's excluded
// sensitivity analysis settles at 4 KB.
func AblationMDCache(o Options) (*Table, error) { return run(expAblationMDCache, o) }

var expAblationMDCache = experiment{
	id: "ablation-mdcache",
	cells: func(o Options) ([]Cell, error) {
		points, mutators := mdcacheSweep()
		return sweepCells(o, "MemLeak", points, mutators), nil
	},
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		t := &Table{
			ID:     "ablation-mdcache",
			Title:  "MD cache size sensitivity (MemLeak, avg slowdown vs silicon cost)",
			Header: []string{"MD cache", "slowdown", "area mm2", "peak mW"},
		}
		slows := sweepMeans(outs, len(mdcacheKBs))
		for i, kb := range mdcacheKBs {
			est := synth.EstimateCache(kb<<10, 2, 64)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%dKB", kb), f2(slows[i]),
				fmt.Sprintf("%.4f", est.AreaMM2), fmt.Sprintf("%.1f", est.PeakPowerMW),
			})
		}
		t.Notes = append(t.Notes,
			"paper (Section 6): the excluded sensitivity analysis found 4KB/two-way the best cost-performance point")
		return t, nil
	},
}

// evqDepths is the event-queue sweep's x-axis.
var evqDepths = []int{4, 8, 16, 32, 64, 128}

func evqSweep() (points []string, mutators []func(*system.Config)) {
	for _, n := range evqDepths {
		n := n
		mutators = append(mutators, func(c *system.Config) { c.EventQueueCap = n })
		points = append(points, fmt.Sprintf("evq%d", n))
	}
	return points, mutators
}

// AblationEventQueue sweeps the event queue depth on the full FADE system.
func AblationEventQueue(o Options) (*Table, error) { return run(expAblationEvq, o) }

var expAblationEvq = experiment{
	id: "ablation-evq",
	cells: func(o Options) ([]Cell, error) {
		points, mutators := evqSweep()
		return sweepCells(o, "MemLeak", points, mutators), nil
	},
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		t := &Table{
			ID:     "ablation-evq",
			Title:  "Event queue depth sensitivity (MemLeak, avg slowdown)",
			Header: []string{"entries", "slowdown"},
		}
		slows := sweepMeans(outs, len(evqDepths))
		for i, n := range evqDepths {
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), f2(slows[i])})
		}
		t.Notes = append(t.Notes, "paper (Section 3.2): a 32-entry queue suffices; deeper queues buy little")
		return t, nil
	},
}

// ufqDepths is the unfiltered-queue sweep's x-axis.
var ufqDepths = []int{2, 4, 8, 16, 32}

func ufqSweep() (points []string, mutators []func(*system.Config)) {
	for _, n := range ufqDepths {
		n := n
		mutators = append(mutators, func(c *system.Config) { c.UnfilteredCap = n })
		points = append(points, fmt.Sprintf("ufq%d", n))
	}
	return points, mutators
}

// AblationUnfilteredQueue sweeps the unfiltered event queue depth.
func AblationUnfilteredQueue(o Options) (*Table, error) { return run(expAblationUfq, o) }

var expAblationUfq = experiment{
	id: "ablation-ufq",
	cells: func(o Options) ([]Cell, error) {
		points, mutators := ufqSweep()
		return sweepCells(o, "MemLeak", points, mutators), nil
	},
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		t := &Table{
			ID:     "ablation-ufq",
			Title:  "Unfiltered event queue depth sensitivity (MemLeak, avg slowdown)",
			Header: []string{"entries", "slowdown"},
		}
		slows := sweepMeans(outs, len(ufqDepths))
		for i, n := range ufqDepths {
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), f2(slows[i])})
		}
		t.Notes = append(t.Notes, "paper (Section 3.4): 16 entries accommodate the unfiltered bursts")
		return t, nil
	},
}

// signalLatencies is the blocking-signal sweep's x-axis (-1 = ideal
// doorbell).
var signalLatencies = []int{-1, 7, 14, 28}

func signalSweep() (points []string, mutators []func(*system.Config)) {
	// Point 0 is the non-blocking reference; the rest sweep the blocking
	// design's signal latency.
	mutators = []func(*system.Config){
		func(c *system.Config) { c.Accel = system.FADENonBlocking },
	}
	points = []string{"nonblocking"}
	for _, lat := range signalLatencies {
		lat := lat
		mutators = append(mutators, func(c *system.Config) {
			c.Accel = system.FADEBlocking
			c.BlockingSignalCycles = lat
		})
		points = append(points, fmt.Sprintf("signal%d", lat))
	}
	return points, mutators
}

// AblationSignalLatency quantifies what the Non-Blocking design saves as a
// function of the blocking design's completion-notification latency.
func AblationSignalLatency(o Options) (*Table, error) { return run(expAblationSignal, o) }

var expAblationSignal = experiment{
	id: "ablation-signal",
	cells: func(o Options) ([]Cell, error) {
		points, mutators := signalSweep()
		return sweepCells(o, "MemLeak", points, mutators), nil
	},
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		t := &Table{
			ID:     "ablation-signal",
			Title:  "Blocking FADE vs completion-signal latency (MemLeak, avg slowdown)",
			Header: []string{"signal cycles", "blocking slowdown", "non-blocking slowdown"},
		}
		slows := sweepMeans(outs, len(signalLatencies)+1)
		nb := slows[0]
		for i, lat := range signalLatencies {
			label := fmt.Sprintf("%d", lat)
			if lat == -1 {
				label = "0 (ideal)"
			}
			t.Rows = append(t.Rows, []string{label, f2(slows[i+1]), f2(nb)})
		}
		t.Notes = append(t.Notes,
			"non-blocking filtering hides both the handler and the notification round trip (Section 5)")
		return t, nil
	},
}

// AblationCoreModel cross-validates the two application-core timing models:
// the calibrated rate-based model (used by every experiment above) and the
// dependency-driven detailed model (real ROB, register dependencies, cache
// latencies). Agreement on the workload extremes — which benchmarks are
// memory-bound, which are fast — grounds the rate model's per-profile
// calibration in instruction-level behaviour.
func AblationCoreModel(o Options) (*Table, error) { return run(expAblationCoreModel, o) }

var expAblationCoreModel = experiment{
	id: "ablation-coremodel",
	cells: func(o Options) ([]Cell, error) {
		var cells []Cell
		for _, bench := range trace.SerialNames() {
			cells = append(cells, Cell{
				Label: "coremodel/" + bench,
				Spec: runspec.Spec{Kind: runspec.KindCoreModel, Benchmark: bench,
					Seed: o.Seed, Instrs: o.Instrs},
			})
		}
		return cells, nil
	},
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		t := &Table{
			ID:     "ablation-coremodel",
			Title:  "Baseline IPC: rate-based vs dependency-driven core models (4-way OoO)",
			Header: []string{"benchmark", "rate model", "detailed model", "in-order detailed"},
		}
		for i, bench := range trace.SerialNames() {
			cm := outs[i].CoreModel
			t.Rows = append(t.Rows, []string{bench, f2(cm.Rate), f2(cm.Detailed), f2(cm.InOrder)})
		}
		t.Notes = append(t.Notes,
			"the models derive timing independently; both mark mcf memory-bound and bzip/hmmer fast",
			"the detailed model compresses the IPC range: the generator's uniform operand selection yields uniform ILP, whereas the rate model carries per-benchmark calibrated dependency behaviour")
		return t, nil
	},
}
