package experiments

// Fault sweep. The robustness counterpart of the performance figures: it
// re-runs the Fig. 9 FADE configuration under increasingly severe
// monitor-stall injection (internal/fault) and quantifies how gracefully
// slowdown degrades as the software monitor loses cycles. Every cell runs
// with the per-cycle invariant checker armed, so the sweep simultaneously
// audits the backpressure contract under fault pressure — a cell that
// violates it fails the experiment rather than contributing a bogus row.

import (
	"context"
	"fmt"

	"fade/internal/fault"
	"fade/internal/stats"
	"fade/internal/system"
)

// FaultSweep sweeps monitor-stall severity ("none" through "severe") across
// all five monitors on the default single-core FADE system, reporting the
// suite-average slowdown per severity and the degradation factor of the
// severest level over the fault-free run.
func FaultSweep(o Options) (*Table, error) {
	o = o.withDefaults()
	levels := fault.StallSeverities()
	t := &Table{
		ID:     "fault-sweep",
		Title:  "Slowdown vs injected monitor-stall severity (FADE, invariant-checked)",
		Header: append(append([]string{"monitor"}, levels...), "severe/none"),
	}
	type monBenchLevel struct {
		mon, bench string
		level      int
	}
	var cells []monBenchLevel
	for _, mon := range Monitors() {
		for _, bench := range BenchesFor(mon) {
			for l := range levels {
				cells = append(cells, monBenchLevel{mon, bench, l})
			}
		}
	}
	res, err := runCells(o, cells, func(ctx context.Context, c monBenchLevel) (*system.Result, error) {
		plan, ok := fault.StallSeverity(levels[c.level])
		if !ok {
			return nil, fmt.Errorf("experiments: unknown stall severity %q", levels[c.level])
		}
		cfg := o.config(c.mon)
		cfg.Faults = plan
		cfg.CheckInvariants = true
		return system.RunContext(ctx, c.bench, cfg)
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.attach(fmt.Sprintf("%s/%s/%s", c.mon, c.bench, levels[c.level]), res[i])
	}
	i := 0
	for _, mon := range Monitors() {
		perLevel := make([][]float64, len(levels))
		for range BenchesFor(mon) {
			for l := range levels {
				perLevel[l] = append(perLevel[l], res[i].Slowdown)
				i++
			}
		}
		row := []string{mon}
		means := make([]float64, len(levels))
		for l := range levels {
			means[l] = stats.AMean(perLevel[l])
			row = append(row, f2(means[l]))
		}
		row = append(row, fmt.Sprintf("%.2fx", means[len(levels)-1]/means[0]))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"stall bursts freeze the monitor thread; backpressure propagates UFQ -> accelerator -> MEQ -> app core, so slowdown degrades smoothly rather than events being lost",
		"every cell runs with the per-cycle invariant checker armed; a backpressure-contract breach fails the sweep")
	return t, nil
}
