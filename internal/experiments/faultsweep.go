package experiments

// Fault sweep. The robustness counterpart of the performance figures: it
// re-runs the Fig. 9 FADE configuration under increasingly severe
// monitor-stall injection (internal/fault) and quantifies how gracefully
// slowdown degrades as the software monitor loses cycles. Every cell runs
// with the per-cycle invariant checker armed, so the sweep simultaneously
// audits the backpressure contract under fault pressure — a cell that
// violates it fails the experiment rather than contributing a bogus row.

import (
	"fmt"

	"fade/internal/fault"
	"fade/internal/stats"
	"fade/internal/system"
)

// FaultSweep sweeps monitor-stall severity ("none" through "severe") across
// all five monitors on the default single-core FADE system, reporting the
// suite-average slowdown per severity and the degradation factor of the
// severest level over the fault-free run.
func FaultSweep(o Options) (*Table, error) { return run(expFaultSweep, o) }

var expFaultSweep = experiment{
	id: "fault-sweep",
	cells: func(o Options) ([]Cell, error) {
		levels := fault.StallSeverities()
		var cells []Cell
		for _, mon := range Monitors() {
			for _, bench := range BenchesFor(mon) {
				for _, level := range levels {
					plan, ok := fault.StallSeverity(level)
					if !ok {
						return nil, fmt.Errorf("experiments: unknown stall severity %q", level)
					}
					cfg := o.config(mon)
					cfg.Faults = plan
					cfg.CheckInvariants = true
					cells = append(cells, Cell{
						Label: fmt.Sprintf("%s/%s/%s", mon, bench, level),
						Spec:  system.SpecFromConfig(bench, cfg),
					})
				}
			}
		}
		return cells, nil
	},
	build: func(o Options, cells []Cell, outs []*system.Outcome) (*Table, error) {
		levels := fault.StallSeverities()
		t := &Table{
			ID:     "fault-sweep",
			Title:  "Slowdown vs injected monitor-stall severity (FADE, invariant-checked)",
			Header: append(append([]string{"monitor"}, levels...), "severe/none"),
		}
		i := 0
		for _, mon := range Monitors() {
			perLevel := make([][]float64, len(levels))
			for range BenchesFor(mon) {
				for l := range levels {
					perLevel[l] = append(perLevel[l], outs[i].Result.Slowdown)
					i++
				}
			}
			row := []string{mon}
			means := make([]float64, len(levels))
			for l := range levels {
				means[l] = stats.AMean(perLevel[l])
				row = append(row, f2(means[l]))
			}
			row = append(row, fmt.Sprintf("%.2fx", means[len(levels)-1]/means[0]))
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes,
			"stall bursts freeze the monitor thread; backpressure propagates UFQ -> accelerator -> MEQ -> app core, so slowdown degrades smoothly rather than events being lost",
			"every cell runs with the per-cycle invariant checker armed; a backpressure-contract breach fails the sweep")
		return t, nil
	},
}
