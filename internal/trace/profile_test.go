package trace

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	if len(SerialNames()) != 8 {
		t.Fatalf("serial suite has %d benchmarks", len(SerialNames()))
	}
	if len(ParallelNames()) != 5 {
		t.Fatalf("parallel suite has %d benchmarks", len(ParallelNames()))
	}
	for _, n := range append(SerialNames(), ParallelNames()...) {
		p, ok := Lookup(n)
		if !ok {
			t.Fatalf("benchmark %q not registered", n)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
	for _, n := range TaintNames() {
		p, ok := Lookup(n)
		if !ok || p.TaintPer1K <= 0 {
			t.Fatalf("taint benchmark %q has no taint sources", n)
		}
	}
}

func TestAllNamesSorted(t *testing.T) {
	names := AllNames()
	if len(names) != 13 {
		t.Fatalf("AllNames returned %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("AllNames not sorted")
		}
	}
}

func TestNamesFilter(t *testing.T) {
	for _, n := range Names(true) {
		p, _ := Lookup(n)
		if !p.Parallel {
			t.Fatalf("%s in parallel list but not parallel", n)
		}
	}
	for _, n := range Names(false) {
		p, _ := Lookup(n)
		if p.Parallel {
			t.Fatalf("%s in serial list but parallel", n)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown profile resolved")
	}
}

func TestValidateRejections(t *testing.T) {
	good := Profile{
		Name: "x", LoadFrac: 0.2, StoreFrac: 0.1, BranchFrac: 0.2,
		FrameMin: 32, FrameMax: 256, HazardCPI: 0.3,
	}
	cases := []struct {
		mutate func(*Profile)
		want   string
	}{
		{func(p *Profile) { p.Name = "" }, "no name"},
		{func(p *Profile) { p.LoadFrac = 0.9 }, "exceeds 1"},
		{func(p *Profile) { p.LoadFrac = -0.1 }, "outside [0,1]"},
		{func(p *Profile) { p.FrameMin = 0 }, "frame size"},
		{func(p *Profile) { p.FrameMax = 16 }, "frame size"},
		{func(p *Profile) { p.MallocPer1K = 1; p.AllocMin = 0 }, "alloc size"},
		{func(p *Profile) { p.Parallel = true; p.Threads = 1; p.QuantumInstrs = 100 }, "parallel"},
		{func(p *Profile) { p.Parallel = true; p.Threads = 4 }, "quantum"},
		{func(p *Profile) { p.HazardCPI = -1 }, "negative"},
	}
	for i, c := range cases {
		p := good
		c.mutate(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: error %q does not mention %q", i, err, c.want)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good profile rejected: %v", err)
	}
}

func TestIntALUFrac(t *testing.T) {
	p := Profile{LoadFrac: 0.25, StoreFrac: 0.1, FPALUFrac: 0.05, BranchFrac: 0.3, JmpRegFrac: 0.01}
	want := 1 - 0.25 - 0.1 - 0.05 - 0.3 - 0.01
	if got := p.IntALUFrac(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("IntALUFrac = %v, want %v", got, want)
	}
}

func TestAllocDefaults(t *testing.T) {
	var p Profile
	if p.AllocMinOr(16) != 16 || p.AllocMaxOr(4096) != 4096 {
		t.Fatal("alloc defaults not applied")
	}
	p.AllocMin, p.AllocMax = 32, 64
	if p.AllocMinOr(16) != 32 || p.AllocMaxOr(4096) != 64 {
		t.Fatal("explicit alloc sizes not honoured")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	register(&Profile{Name: "astar", LoadFrac: 0.2, FrameMin: 32, FrameMax: 64})
}

// Instruction-mix sanity: generated streams match the profile fractions.
func TestMixMatchesProfile(t *testing.T) {
	prof, _ := Lookup("hmmer")
	g := New(prof, 1, 200_000)
	counts := map[string]float64{}
	total := 0.0
	for {
		in, ok := g.Next()
		if !ok {
			break
		}
		total++
		counts[in.Op.String()]++
	}
	// Phases shift the mix, so allow generous bands.
	loadFrac := counts["load"] / total
	if loadFrac < prof.LoadFrac*0.7 || loadFrac > prof.LoadFrac*1.4 {
		t.Fatalf("load fraction %v vs profile %v", loadFrac, prof.LoadFrac)
	}
	storeFrac := counts["store"] / total
	if storeFrac < prof.StoreFrac*0.6 || storeFrac > prof.StoreFrac*1.6 {
		t.Fatalf("store fraction %v vs profile %v", storeFrac, prof.StoreFrac)
	}
}
