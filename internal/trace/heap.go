package trace

import "fade/internal/sim"

// Address-space layout of the synthetic 32-bit program (the paper's
// benchmarks are 32-bit binaries, Section 6).
const (
	CodeBase   uint32 = 0x0001_0000
	GlobalBase uint32 = 0x1000_0000
	GlobalSize uint32 = 1 << 20 // 1 MB of globals
	HeapBase   uint32 = 0x4000_0000
	StackTop   uint32 = 0xF000_0000 // stacks grow down from here
	// StackStride separates per-thread stacks in parallel benchmarks.
	StackStride uint32 = 1 << 24
)

// PtrTable is a dedicated statically allocated region where the synthetic
// program stores one long-lived pointer per heap allocation (real programs
// anchor allocations in data structures; without an anchor every allocation
// would spuriously lose its last reference as registers rotate).
const (
	PtrTableBase uint32 = 0x2000_0000
	PtrTableSize uint32 = 1 << 20
)

// allocation is one live heap object.
type allocation struct {
	id      uint32
	base    uint32
	size    uint32
	slot    uint32 // pointer-table anchor address
	tainted bool   // whole-buffer taint mark set by taint-source events
}

// slotFor returns the pointer-table anchor for allocation id.
func slotFor(id uint32) uint32 {
	return PtrTableBase + (id*4)%PtrTableSize
}

// heap is a simple bump allocator with address reuse through a free list,
// enough to give the monitors realistic allocate/access/free lifecycles.
type heap struct {
	next   uint32
	nextID uint32
	live   []allocation // index by position; order is insertion order
	free   []allocation // recycled address ranges
	leaked int          // allocations dropped without free (bug injection)
}

func newHeap() *heap {
	return &heap{next: HeapBase, nextID: 1}
}

// alloc returns a new allocation of the given size (rounded up to 8 bytes).
func (h *heap) alloc(size uint32) allocation {
	if size == 0 {
		size = 8
	}
	size = (size + 7) &^ 7
	var a allocation
	// Reuse a freed range when one fits; this creates the
	// allocated→freed→reallocated metadata churn monitors care about.
	for i, f := range h.free {
		if f.size >= size {
			a = allocation{id: h.nextID, base: f.base, size: size}
			h.free = append(h.free[:i], h.free[i+1:]...)
			break
		}
	}
	if a.base == 0 {
		a = allocation{id: h.nextID, base: h.next, size: size}
		h.next += size + 8 // red-zone gap between objects
	}
	a.slot = slotFor(a.id)
	h.nextID++
	h.live = append(h.live, a)
	return a
}

// freeAt releases the live allocation at position i.
func (h *heap) freeAt(i int) allocation {
	a := h.live[i]
	h.live = append(h.live[:i], h.live[i+1:]...)
	if len(h.free) < 256 {
		h.free = append(h.free, a)
	}
	return a
}

// dropAt removes the allocation from the live set without freeing it — a
// memory leak (used by bug injection).
func (h *heap) dropAt(i int) allocation {
	a := h.live[i]
	h.live = append(h.live[:i], h.live[i+1:]...)
	h.leaked++
	return a
}

// pick returns a live allocation index biased toward the hot set (the most
// recently allocated hotAllocs objects) to model temporal locality.
func (h *heap) pick(rng *sim.RNG, hotAllocs int, hotProb float64) (int, bool) {
	n := len(h.live)
	if n == 0 {
		return 0, false
	}
	if hotAllocs > 0 && hotAllocs < n && rng.Bool(hotProb) {
		return n - 1 - rng.Intn(hotAllocs), true
	}
	return rng.Intn(n), true
}
