package trace

// Binary trace files: a compact record/replay format so workloads can be
// generated once, archived, and replayed byte-identically — the moral
// equivalent of the trace snapshots a full-system simulator checkpoints.
//
// Layout: a fixed header ("FTRC", version, profile-name, record count hint)
// followed by one variable-length record per instruction. Records use
// delta-encoded PCs and uvarints for addresses/sizes; a typical SPEC-like
// stream costs ~6 bytes per instruction.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"fade/internal/isa"
)

// Magic identifies trace files; Version gates format changes.
const (
	Magic   = "FTRC"
	Version = 1
)

// record flag bits.
const (
	flagStack   = 1 << 0
	flagHasAddr = 1 << 1
	flagHasSize = 1 << 2
)

// Writer serializes an instruction stream.
type Writer struct {
	w      *bufio.Writer
	buf    []byte
	count  uint64
	prevPC uint32
}

// NewWriter writes a trace header for the named profile and returns a
// Writer for the records.
func NewWriter(w io.Writer, profile string) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	hdr := make([]byte, 2)
	hdr[0] = Version
	hdr[1] = byte(len(profile))
	if len(profile) > 255 {
		return nil, fmt.Errorf("trace: profile name too long")
	}
	if _, err := bw.Write(hdr); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(profile); err != nil {
		return nil, err
	}
	return &Writer{w: bw, buf: make([]byte, 0, 32)}, nil
}

// Write appends one instruction record.
func (t *Writer) Write(in isa.Instr) error {
	b := t.buf[:0]
	b = append(b, byte(in.Op))

	var flags byte
	if in.Stack {
		flags |= flagStack
	}
	hasAddr := in.Op.IsMem() || in.Op.IsStackUpdate() || in.Op.IsHighLevel()
	if hasAddr {
		flags |= flagHasAddr
	}
	hasSize := in.Op.IsStackUpdate() || in.Op.IsHighLevel()
	if hasSize {
		flags |= flagHasSize
	}
	b = append(b, flags, in.Thread, in.Src1, in.Src2, in.Dest)
	// PC as a zig-zag delta from the previous record's PC.
	delta := int64(in.PC) - int64(t.prevPC)
	b = binary.AppendVarint(b, delta)
	t.prevPC = in.PC
	if hasAddr {
		b = binary.AppendUvarint(b, uint64(in.Addr))
	}
	if hasSize {
		b = binary.AppendUvarint(b, uint64(in.Size))
	}
	if _, err := t.w.Write(b); err != nil {
		return err
	}
	t.count++
	return nil
}

// Count returns the number of records written.
func (t *Writer) Count() uint64 { return t.count }

// Flush flushes buffered records to the underlying writer.
func (t *Writer) Flush() error { return t.w.Flush() }

// Record generates limit instructions from src and writes them all.
func Record(w io.Writer, profile string, src Source, limit uint64) (uint64, error) {
	tw, err := NewWriter(w, profile)
	if err != nil {
		return 0, err
	}
	var n uint64
	for n = 0; limit == 0 || n < limit; n++ {
		in, ok := src.Next()
		if !ok {
			break
		}
		if err := tw.Write(in); err != nil {
			return n, err
		}
	}
	return n, tw.Flush()
}

// Reader replays a trace file as a Source.
type Reader struct {
	r       *bufio.Reader
	profile string
	prevPC  uint32
	err     error
}

// NewReader parses the header and returns a replay Source.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, errors.New("trace: not a trace file")
	}
	hdr := make([]byte, 2)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr[0] != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr[0])
	}
	name := make([]byte, hdr[1])
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading profile name: %w", err)
	}
	return &Reader{r: br, profile: string(name)}, nil
}

// Profile returns the profile name recorded in the header.
func (t *Reader) Profile() string { return t.profile }

// Err returns the first decode error encountered (io.EOF excluded).
func (t *Reader) Err() error { return t.err }

// Next implements Source.
func (t *Reader) Next() (isa.Instr, bool) {
	var in isa.Instr
	op, err := t.r.ReadByte()
	if err != nil {
		if err != io.EOF {
			t.err = err
		}
		return in, false
	}
	fixed := make([]byte, 5)
	if _, err := io.ReadFull(t.r, fixed); err != nil {
		t.err = fmt.Errorf("trace: truncated record: %w", err)
		return in, false
	}
	in.Op = isa.Op(op)
	flags := fixed[0]
	in.Thread = fixed[1]
	in.Src1, in.Src2, in.Dest = fixed[2], fixed[3], fixed[4]
	in.Stack = flags&flagStack != 0

	delta, err := binary.ReadVarint(t.r)
	if err != nil {
		t.err = fmt.Errorf("trace: reading PC: %w", err)
		return in, false
	}
	in.PC = uint32(int64(t.prevPC) + delta)
	t.prevPC = in.PC

	if flags&flagHasAddr != 0 {
		v, err := binary.ReadUvarint(t.r)
		if err != nil {
			t.err = fmt.Errorf("trace: reading addr: %w", err)
			return in, false
		}
		in.Addr = uint32(v)
	}
	if flags&flagHasSize != 0 {
		v, err := binary.ReadUvarint(t.r)
		if err != nil {
			t.err = fmt.Errorf("trace: reading size: %w", err)
			return in, false
		}
		in.Size = uint32(v)
	} else if in.Op.IsMem() {
		in.Size = 4
	}
	return in, true
}
