package trace

import (
	"fade/internal/isa"
	"fade/internal/sim"
)

// Source yields a dynamic instruction stream. Next returns false when the
// stream is exhausted.
type Source interface {
	Next() (isa.Instr, bool)
}

// regTag is the generator's ground-truth value tag for a register: whether
// it currently holds a heap pointer and whether it is tainted. The monitors
// never see these tags — they reconstruct equivalent metadata purely from
// the event stream — but the generator needs them to synthesize a
// semantically consistent program (pointer arithmetic produces pointers,
// loads of tainted words produce tainted registers, and so on).
type regTag struct {
	ptr     bool
	tainted bool
	undef   bool // value derived from uninitialized memory
}

// memTagEntry tags a stored application word.
type memTagEntry struct {
	ptr     bool
	tainted bool
	init    bool // the word has been stored since its (re)allocation
	undef   bool // the stored value itself derived from uninitialized data
}

// frame is one live stack frame.
type frame struct {
	base      uint32 // lowest address of the frame
	size      uint32
	remaining int       // instructions left in this function body
	stored    [8]uint32 // ring of recently stored in-frame offsets
	nstored   int
}

// context is the per-thread execution state.
type context struct {
	thread  uint8
	pc      uint32
	frames  []frame
	regs    [isa.NumRegs]regTag
	ptrRegs int // registers currently holding pointers (density control)
	// storedRing remembers recently stored heap addresses so loads can
	// target initialized data with high probability (real programs read
	// what they wrote).
	storedRing [32]uint32
	nstored    int
	retPCs     []uint32
	stream     uint32 // private streaming cursor (per-thread arrays)
}

func (c *context) top() *frame { return &c.frames[len(c.frames)-1] }

// setReg writes a register tag, maintaining the pointer-density count.
func (c *context) setReg(r isa.Reg, t regTag) {
	if r >= isa.NumRegs {
		return
	}
	if c.regs[r].ptr != t.ptr {
		if t.ptr {
			c.ptrRegs++
		} else {
			c.ptrRegs--
		}
	}
	c.regs[r] = t
}

// world is the state shared by all threads of one synthetic program.
type world struct {
	prof     *Profile
	rng      *sim.RNG
	heap     *heap
	memTag   map[uint32]memTagEntry // keyed by appAddr >> 2
	globals  []uint32               // hot global addresses
	shared   []allocation           // parallel: shared hot allocations
	anyTaint bool

	// Phase state: hot phases model the loop nests where retirement and
	// monitored-event density spike, producing the queue bursts of
	// Fig. 3. Cold phases model pointer-chasing/branchy regions.
	hot       bool
	phaseLeft int
}

// StreamBase/StreamSize define the statically allocated streaming arena that
// models the large flat arrays of memory-bound benchmarks (mcf, libquantum).
const (
	StreamBase uint32 = 0x8000_0000
	StreamSize uint32 = 8 << 20
)

// Generator synthesizes the dynamic instruction stream for one benchmark.
// It implements Source. For parallel profiles it round-robins between
// per-thread contexts every QuantumInstrs instructions, modeling the paper's
// four threads time-sliced on one core (Section 6).
type Generator struct {
	w           *world
	ctxs        []*context
	cur         int
	quantumLeft int
	limit       uint64
	emitted     uint64
	pending     []isa.Instr

	// Bug-injection bookkeeping for example applications.
	taintJumpArmed bool

	mallocs uint64
	frees   uint64
	calls   uint64
	rets    uint64
	taints  uint64
}

// New returns a generator for prof that emits at most limit instructions
// (0 means unbounded), seeded deterministically.
func New(prof *Profile, seed uint64, limit uint64) *Generator {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	w := &world{
		prof:   prof,
		rng:    sim.NewRNG(seed ^ hashName(prof.Name)),
		heap:   newHeap(),
		memTag: make(map[uint32]memTagEntry),
	}
	// A small hot set of global addresses plus the tail of the region for
	// cold accesses.
	for i := 0; i < 64; i++ {
		w.globals = append(w.globals, GlobalBase+uint32(i)*64+uint32(w.rng.Intn(16))*4)
	}
	threads := 1
	if prof.Parallel {
		threads = prof.Threads
	}
	g := &Generator{w: w, limit: limit, quantumLeft: prof.QuantumInstrs}
	for t := 0; t < threads; t++ {
		sp := StackTop - uint32(t)*StackStride
		c := &context{
			thread: uint8(t),
			pc:     CodeBase + uint32(t)*0x1000,
			frames: []frame{{base: sp - 4096, size: 4096, remaining: 1 << 30}},
		}
		g.ctxs = append(g.ctxs, c)
	}
	// Pre-populate the heap so the first accesses have targets, and build
	// the shared set for parallel benchmarks. Each warm allocation is
	// announced through a pending malloc event (plus an anchoring pointer
	// store) so monitors see a well-formed allocation history.
	// Warm up to the steady-state live-allocation count so malloc and
	// free activity balances from the start.
	warm := prof.LiveTarget
	if warm < 8 {
		warm = 8
	}
	c0 := g.ctxs[0]
	for i := 0; i < warm; i++ {
		a := w.heap.alloc(uint32(w.rng.Pareto(prof.AllocMinOr(16), prof.AllocMaxOr(4096), 1.3)))
		if prof.Parallel && i < 32 {
			w.shared = append(w.shared, a)
		}
		d := isa.Reg(1 + i%8)
		c0.setReg(d, regTag{ptr: true})
		g.pending = append(g.pending,
			isa.Instr{PC: c0.pc, Op: isa.OpMalloc, Dest: d, Addr: a.base, Size: a.size},
			g.anchorStore(c0, d, a.slot))
	}
	// Taint-propagating programs read external input during startup; an
	// initial taint source keeps TaintCheck's filtering statistics stable
	// across simulation lengths.
	if prof.TaintPer1K > 0 {
		g.pending = append(g.pending, g.buildTaintSrc(c0))
	}
	return g
}

// anchorStore builds the store that parks an allocation's pointer in the
// pointer table, keeping the allocation referenced for its lifetime.
func (g *Generator) anchorStore(c *context, src isa.Reg, slot uint32) isa.Instr {
	g.w.memTag[slot>>2] = memTagEntry{ptr: true, init: true}
	return isa.Instr{
		PC: c.pc, Op: isa.OpStore, Src1: src, Src2: isa.RegNone,
		Dest: isa.RegNone, Addr: slot, Size: 4, Thread: c.thread,
	}
}

// AllocMinOr returns AllocMin or def when unset; likewise AllocMaxOr.
func (p *Profile) AllocMinOr(def float64) float64 {
	if p.AllocMin > 0 {
		return p.AllocMin
	}
	return def
}

// AllocMaxOr returns AllocMax or def when unset.
func (p *Profile) AllocMaxOr(def float64) float64 {
	if p.AllocMax > 0 {
		return p.AllocMax
	}
	return def
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Emitted returns the number of instructions produced so far.
func (g *Generator) Emitted() uint64 { return g.emitted }

// Mallocs, Frees, Calls, Rets, Taints report high-level event counts.
func (g *Generator) Mallocs() uint64 { return g.mallocs }
func (g *Generator) Frees() uint64   { return g.frees }
func (g *Generator) Calls() uint64   { return g.calls }
func (g *Generator) Rets() uint64    { return g.rets }
func (g *Generator) Taints() uint64  { return g.taints }

// Leaked returns the number of allocations dropped without free.
func (g *Generator) Leaked() int { return g.w.heap.leaked }

// Next implements Source.
func (g *Generator) Next() (isa.Instr, bool) {
	if g.limit > 0 && g.emitted >= g.limit {
		return isa.Instr{}, false
	}
	if len(g.pending) > 0 {
		in := g.pending[0]
		g.pending = g.pending[1:]
		g.emitted++
		return in, true
	}
	if g.w.prof.Parallel {
		g.quantumLeft--
		if g.quantumLeft <= 0 {
			g.cur = (g.cur + 1) % len(g.ctxs)
			g.quantumLeft = g.w.prof.QuantumInstrs
		}
	}
	in := g.step(g.ctxs[g.cur])
	g.emitted++
	return in, true
}

// Hot reports whether the generator is currently in a hot phase. The core
// timing model uses this to scale its dependency-hazard component, so hot
// phases run at a higher IPC (denser monitored-event production).
func (g *Generator) Hot() bool { return g.w.hot }

// stepPhase advances the hot/cold phase state machine.
func (w *world) stepPhase() {
	p := w.prof
	if p.PhaseLen <= 0 {
		return
	}
	w.phaseLeft--
	if w.phaseLeft > 0 {
		return
	}
	if w.hot {
		w.hot = false
		frac := p.PhaseHotFrac
		if frac <= 0 || frac >= 1 {
			frac = 0.5
		}
		w.phaseLeft = int(float64(p.PhaseLen) * (1 - frac) / frac)
	} else {
		w.hot = true
		w.phaseLeft = p.PhaseLen
	}
}

// step produces the next instruction for context c.
func (g *Generator) step(c *context) isa.Instr {
	p := g.w.prof
	rng := g.w.rng
	g.w.stepPhase()

	// Function return when the current body is exhausted.
	if c.top().remaining <= 0 && len(c.frames) > 1 {
		return g.emitRet(c)
	}
	c.top().remaining--

	// High-level and stack events by rate.
	switch {
	case rng.Bool(p.CallPer1K/1000) && len(c.frames) < 64:
		return g.emitCall(c)
	case rng.Bool(p.MallocPer1K / 1000):
		if len(g.w.heap.live) > p.LiveTarget {
			return g.emitFree(c)
		}
		return g.emitMalloc(c)
	case p.TaintPer1K > 0 && rng.Bool(p.TaintPer1K/1000):
		return g.emitTaintSrc(c)
	}

	// Regular instruction by mix. Hot phases suppress FP and halve
	// branches, shifting the remainder to (monitored) integer work.
	loadF, storeF, fpF, brF, jmpF := p.LoadFrac, p.StoreFrac, p.FPALUFrac, p.BranchFrac, p.JmpRegFrac
	if g.w.hot {
		fpF = 0
		brF /= 2
	}
	roll := rng.Float64()
	switch {
	case roll < loadF:
		return g.emitLoad(c)
	case roll < loadF+storeF:
		return g.emitStore(c)
	case roll < loadF+storeF+fpF:
		return g.emitFPALU(c)
	case roll < loadF+storeF+fpF+brF:
		return g.emitBranch(c)
	case roll < loadF+storeF+fpF+brF+jmpF:
		return g.emitJmpReg(c)
	default:
		return g.emitALU(c)
	}
}

func (g *Generator) advancePC(c *context) uint32 {
	pc := c.pc
	c.pc += 4
	// Stay inside a 64 KB function region; taken branches wrap.
	if c.pc&0xFFFF == 0 {
		c.pc -= 0x8000
	}
	return pc
}

// pickReg selects a register, optionally preferring one whose tag satisfies
// want. Registers 1-31 are eligible (r0 is hardwired zero, SPARC-style).
func (g *Generator) pickReg(c *context, want func(regTag) bool, prob float64) isa.Reg {
	rng := g.w.rng
	if want != nil && rng.Bool(prob) {
		// Scan from a random start for a matching register.
		start := 1 + rng.Intn(isa.NumRegs-1)
		for i := 0; i < isa.NumRegs-1; i++ {
			r := 1 + (start-1+i)%(isa.NumRegs-1)
			if want(c.regs[r]) {
				return isa.Reg(r)
			}
		}
	}
	return isa.Reg(1 + rng.Intn(isa.NumRegs-1))
}

func isPtr(t regTag) bool     { return t.ptr }
func isTainted(t regTag) bool { return t.tainted }

// pickValueReg selects a source register that holds a pointer with
// probability ~ptrProb and a data (non-pointer) value otherwise, with a
// weak mean-reverting controller keeping register pointer density near the
// profile's target. Pointer density in real programs is a stable property
// of the working set; the raw stochastic dynamics here have a sharp phase
// transition (OR-composition amplifies, single-source moves decay), so the
// controller pins the equilibrium the profile asks for instead of leaving
// it to knife-edge parameter tuning.
func (g *Generator) pickValueReg(c *context, ptrProb float64) isa.Reg {
	target := g.w.prof.PtrALUFrac
	density := float64(c.ptrRegs) / float64(isa.NumRegs-1)
	switch {
	case target <= 0:
		ptrProb = 0
	case density > 1.25*target:
		ptrProb *= 0.1
	case density < 0.8*target && ptrProb > 0:
		if boosted := ptrProb*2 + 0.15; boosted > ptrProb {
			ptrProb = boosted
		}
	}
	if g.w.rng.Bool(ptrProb) {
		return g.pickReg(c, isPtr, 1.0)
	}
	return g.pickReg(c, func(t regTag) bool { return !t.ptr && !t.undef }, 0.9)
}

// emitALU produces integer computation. Most dynamic ALU instructions have
// one register source (the other operand is an immediate), which is what
// keeps pointer/taint density in equilibrium: single-source moves overwrite
// destinations with their source's status, while two-source ops combine
// statuses with OR (pointer arithmetic, taint mixing).
func (g *Generator) emitALU(c *context) isa.Instr {
	p, rng := g.w.prof, g.w.rng
	d := isa.Reg(1 + rng.Intn(isa.NumRegs-1))
	if rng.Bool(0.72) {
		// Single-source (reg op imm) form: mostly immediate arithmetic
		// on data values, so it strongly prefers non-pointer sources.
		// This is the sink that keeps pointer density in equilibrium
		// against the OR-composition of two-source ops.
		s1 := g.pickReg(c, func(t regTag) bool { return !t.ptr && !t.undef }, 0.9)
		c.setReg(d, c.regs[s1])
		return isa.Instr{PC: g.advancePC(c), Op: isa.OpALU, Src1: s1, Src2: isa.RegNone, Dest: d, Thread: c.thread}
	}
	// Two-source form: address computation (base + offset) selects a
	// pointer first source with the profile's bias; the second source is
	// almost always a data value (index, length, constant).
	s1 := g.pickValueReg(c, p.PtrALUFrac)
	s2 := g.pickValueReg(c, 0.05*p.PtrALUFrac)
	t1, t2 := c.regs[s1], c.regs[s2]
	c.setReg(d, regTag{ptr: t1.ptr || t2.ptr, tainted: t1.tainted || t2.tainted, undef: t1.undef || t2.undef})
	return isa.Instr{PC: g.advancePC(c), Op: isa.OpALU, Src1: s1, Src2: s2, Dest: d, Thread: c.thread}
}

// emitFPALU produces floating-point computation. FP operands live in the
// architecturally separate FP register file (SPARC), so integer register
// tags are untouched; monitors that elide FP instructions (MemLeak) stay
// consistent with the ones that track them (MemCheck).
func (g *Generator) emitFPALU(c *context) isa.Instr {
	rng := g.w.rng
	s1 := isa.Reg(1 + rng.Intn(isa.NumRegs-1))
	s2 := isa.Reg(1 + rng.Intn(isa.NumRegs-1))
	d := isa.Reg(1 + rng.Intn(isa.NumRegs-1))
	return isa.Instr{PC: g.advancePC(c), Op: isa.OpFPALU, Src1: s1, Src2: s2, Dest: d, Thread: c.thread}
}

func (g *Generator) emitBranch(c *context) isa.Instr {
	rng := g.w.rng
	s1 := isa.Reg(1 + rng.Intn(isa.NumRegs-1))
	s2 := isa.Reg(1 + rng.Intn(isa.NumRegs-1))
	return isa.Instr{PC: g.advancePC(c), Op: isa.OpBranch, Src1: s1, Src2: s2, Dest: isa.RegNone, Thread: c.thread}
}

func (g *Generator) emitJmpReg(c *context) isa.Instr {
	p := g.w.prof
	var s1 isa.Reg
	if p.Inject.TaintedJump && g.w.anyTaint && g.taintJumpArmed {
		s1 = g.pickReg(c, isTainted, 1.0)
	} else {
		s1 = g.pickReg(c, nil, 0)
	}
	return isa.Instr{PC: g.advancePC(c), Op: isa.OpJmpReg, Src1: s1, Dest: isa.RegNone, Thread: c.thread}
}

// chooseAddr picks a load/store target address and reports whether it is a
// stack access.
func (g *Generator) chooseAddr(c *context, forLoad bool) (addr uint32, stack bool) {
	p, rng, w := g.w.prof, g.w.rng, g.w

	// Injected wild access (example applications only).
	if p.Inject.WildAccessPer1K > 0 && rng.Bool(p.Inject.WildAccessPer1K/1000) {
		return w.heap.next + 1<<20 + uint32(rng.Intn(4096))*4, false
	}

	if rng.Bool(p.StackMemFrac) {
		f := c.top()
		off := uint32(rng.Intn(int(f.size/4))) * 4
		// Both loads and stores strongly favour already-touched slots:
		// locals are read-modify-written many times per activation. The
		// residual fresh-offset stores are the first-writes that
		// MemCheck's redundant-update filtering cannot elide.
		if f.nstored > 0 && rng.Bool(0.95) {
			off = f.stored[rng.Intn(min(f.nstored, len(f.stored)))]
		}
		if !forLoad {
			f.stored[f.nstored%len(f.stored)] = off
			f.nstored++
		}
		return f.base + off, true
	}
	if rng.Bool(p.GlobalMemFrac) {
		if rng.Bool(0.9) {
			// Hot globals are partitioned per thread (parallel codes
			// keep per-thread state; true sharing flows through the
			// shared allocation set instead).
			n := len(w.globals) / len(g.ctxs)
			base := int(c.thread) * n
			return w.globals[base+rng.Intn(n)], false
		}
		return GlobalBase + uint32(rng.Intn(int(GlobalSize/4)))*4, false
	}
	// Heap access. Streaming walks are sequential (and prefetchable);
	// random-arena accesses model pointer chasing over a huge working set
	// (mcf) and defeat both caches and prefetchers.
	if rng.Bool(p.StreamFrac) {
		// Each thread streams through its own stripe of the arena
		// (parallel codes partition their grids; serial codes have one
		// stripe).
		stripe := StreamSize / uint32(len(g.ctxs))
		c.stream += 64
		if c.stream >= stripe {
			c.stream = 0
		}
		return StreamBase + uint32(c.thread)*stripe + c.stream, false
	}
	if rng.Bool(p.RandomMemFrac) {
		stripe := StreamSize / uint32(len(g.ctxs))
		return StreamBase + uint32(c.thread)*stripe + uint32(rng.Intn(int(stripe/4)))*4, false
	}
	// Parallel benchmarks hit the shared set with SharedFrac.
	if p.Parallel && len(w.shared) > 0 && rng.Bool(p.SharedFrac) {
		a := w.shared[rng.Intn(len(w.shared))]
		return a.base + uint32(rng.Intn(int(a.size/4)))*4, false
	}
	if forLoad {
		// Pointer-chasing: reload a live allocation's pointer from the
		// pointer table (a pointer field of a data structure). This is
		// the steady pointer-injection path of linked-structure codes.
		if p.PtrLoadFrac > 0 && rng.Bool(p.PtrLoadFrac) {
			if i, ok := w.heap.pick(rng, p.HotAllocs, 0.9); ok {
				return w.heap.live[i].slot, false
			}
		}
		// Prefer tainted buffers when taint is live (taint benchmarks).
		if w.anyTaint && rng.Bool(p.TaintFrac) {
			for i := len(w.heap.live) - 1; i >= 0 && i >= len(w.heap.live)-16; i-- {
				if w.heap.live[i].tainted {
					a := w.heap.live[i]
					return a.base + uint32(rng.Intn(int(a.size/4)))*4, false
				}
			}
		}
		// Read recently written data most of the time.
		if c.nstored > 0 && rng.Bool(0.85) {
			return c.storedRing[rng.Intn(min(c.nstored, len(c.storedRing)))], false
		}
	}
	// Stores also mostly overwrite recently written heap words
	// (read-modify-write); fresh words are first-writes. A ring entry
	// whose word has been freed since (no longer initialized) is stale
	// and must not be written — programs do not store to freed memory.
	if !forLoad && c.nstored > 0 && rng.Bool(0.92) {
		cand := c.storedRing[rng.Intn(min(c.nstored, len(c.storedRing)))]
		if g.initialized(cand) {
			return cand, false
		}
	}
	if i, ok := w.heap.pick(rng, p.HotAllocs, 0.9); ok {
		a := w.heap.live[i]
		addr = a.base + uint32(rng.Intn(int(a.size/4)))*4
		if !forLoad {
			c.storedRing[c.nstored%len(c.storedRing)] = addr
			c.nstored++
		}
		return addr, false
	}
	return w.globals[rng.Intn(len(w.globals))], false
}

// initialized reports whether a load from addr observes initialized data:
// statically initialized regions, or words stored since their allocation.
func (g *Generator) initialized(addr uint32) bool {
	switch {
	case addr >= GlobalBase && addr < GlobalBase+GlobalSize:
		return true
	case addr >= StreamBase && addr < StreamBase+StreamSize:
		return true
	case addr >= PtrTableBase && addr < PtrTableBase+PtrTableSize:
		return true
	}
	e := g.w.memTag[addr>>2]
	return e.init && !e.undef
}

func (g *Generator) emitLoad(c *context) isa.Instr {
	addr, stack := g.chooseAddr(c, true)
	// Real programs almost never read uninitialized memory; redirect
	// would-be-uninitialized reads to recently written data. The small
	// residue is the background uninitialized-read rate that MemCheck's
	// filtering cannot elide (its ~2% unfiltered share, Table 2).
	if !g.initialized(addr) && g.w.rng.Bool(0.996) {
		if c.nstored > 0 {
			addr = c.storedRing[g.w.rng.Intn(min(c.nstored, len(c.storedRing)))]
			stack = false
		}
		if !g.initialized(addr) {
			addr = g.w.globals[g.w.rng.Intn(len(g.w.globals))]
			stack = false
		}
	}
	d := isa.Reg(1 + g.w.rng.Intn(isa.NumRegs-1))
	tag := g.w.memTag[addr>>2]
	c.setReg(d, regTag{ptr: tag.ptr, tainted: tag.tainted, undef: tag.undef || !g.initialized(addr)})
	if c.regs[d].tainted {
		g.taintJumpArmed = true
	}
	return isa.Instr{PC: g.advancePC(c), Op: isa.OpLoad, Src1: isa.RegNone, Src2: isa.RegNone,
		Dest: d, Addr: addr, Size: 4, Thread: c.thread, Stack: stack}
}

func (g *Generator) emitStore(c *context) isa.Instr {
	p := g.w.prof
	addr, stack := g.chooseAddr(c, false)
	s := g.pickValueReg(c, p.PtrStoreFrac)
	t := c.regs[s]
	g.w.memTag[addr>>2] = memTagEntry{ptr: t.ptr, tainted: t.tainted, init: true, undef: t.undef}
	return isa.Instr{PC: g.advancePC(c), Op: isa.OpStore, Src1: s, Src2: isa.RegNone,
		Dest: isa.RegNone, Addr: addr, Size: 4, Thread: c.thread, Stack: stack}
}

func (g *Generator) emitCall(c *context) isa.Instr {
	p, rng := g.w.prof, g.w.rng
	size := uint32(rng.Pareto(p.FrameMin, p.FrameMax, 1.5))
	size = (size + 15) &^ 15
	base := c.top().base - size
	body := rng.Geometric(1000 / maxf(p.CallPer1K, 0.1))
	for wi := uint32(0); wi < size/4 && wi < 512; wi++ {
		delete(g.w.memTag, (base>>2)+wi)
	}
	c.frames = append(c.frames, frame{base: base, size: size, remaining: body})
	c.retPCs = append(c.retPCs, c.pc+4)
	pc := c.pc
	c.pc = CodeBase + uint32(rng.Intn(1024))*0x100 // jump to callee region
	g.calls++
	return isa.Instr{PC: pc, Op: isa.OpCall, Addr: base, Size: size, Thread: c.thread}
}

func (g *Generator) emitRet(c *context) isa.Instr {
	f := c.top()
	c.frames = c.frames[:len(c.frames)-1]
	pc := c.pc
	if n := len(c.retPCs); n > 0 {
		c.pc = c.retPCs[n-1]
		c.retPCs = c.retPCs[:n-1]
	}
	g.rets++
	return isa.Instr{PC: pc, Op: isa.OpRet, Addr: f.base, Size: f.size, Thread: c.thread}
}

func (g *Generator) emitMalloc(c *context) isa.Instr {
	p, rng, w := g.w.prof, g.w.rng, g.w
	a := w.heap.alloc(uint32(rng.Pareto(p.AllocMinOr(16), p.AllocMaxOr(4096), 1.3)))
	d := isa.Reg(1 + rng.Intn(isa.NumRegs-1))
	c.setReg(d, regTag{ptr: true})
	// Drop stale value tags from the (possibly recycled) address range:
	// fresh heap memory is uninitialized and holds no pointers.
	words := int(a.size / 4)
	for i := 0; i < words; i++ {
		delete(w.memTag, (a.base>>2)+uint32(i))
	}
	// Anchor the allocation in the pointer table, then initialize the
	// start of the buffer as real programs typically do (this keeps
	// MemCheck's uninitialized-read rate at a realistic level).
	g.pending = append(g.pending, g.anchorStore(c, d, a.slot))
	for i := 0; i < min(words, 4); i++ {
		addr := a.base + uint32(i)*4
		src := g.pickReg(c, func(t regTag) bool { return !t.ptr && !t.tainted && !t.undef }, 1.0)
		// The pick can fall back to an arbitrary register when every
		// register carries a tag; the scripted word's tag must reflect
		// whatever the store actually writes.
		st := c.regs[src]
		g.w.memTag[addr>>2] = memTagEntry{ptr: st.ptr, tainted: st.tainted, undef: st.undef, init: true}
		g.pending = append(g.pending, isa.Instr{
			PC: c.pc, Op: isa.OpStore, Src1: src,
			Src2: isa.RegNone, Dest: isa.RegNone, Addr: addr, Size: 4, Thread: c.thread,
		})
		c.storedRing[c.nstored%len(c.storedRing)] = addr
		c.nstored++
	}
	g.mallocs++
	return isa.Instr{PC: g.advancePC(c), Op: isa.OpMalloc, Dest: d, Addr: a.base, Size: a.size, Thread: c.thread}
}

func (g *Generator) emitFree(c *context) isa.Instr {
	p, rng, w := g.w.prof, g.w.rng, g.w
	i := rng.Intn(len(w.heap.live))
	if p.Inject.LeakFrac > 0 && rng.Bool(p.Inject.LeakFrac) {
		// A leak: the allocation leaves the live set without a free, and
		// its pointer-table anchor is overwritten with a non-pointer —
		// the allocation loses its last reference.
		a := w.heap.dropAt(i)
		src := g.pickReg(c, func(t regTag) bool { return !t.ptr }, 1.0)
		c.setReg(src, regTag{})
		w.memTag[a.slot>>2] = memTagEntry{init: true}
		return isa.Instr{
			PC: g.advancePC(c), Op: isa.OpStore, Src1: src, Src2: isa.RegNone,
			Dest: isa.RegNone, Addr: a.slot, Size: 4, Thread: c.thread,
		}
	}
	a := w.heap.freeAt(i)
	for wi := 0; wi < int(a.size/4); wi++ {
		delete(w.memTag, (a.base>>2)+uint32(wi))
	}
	g.frees++
	return isa.Instr{PC: g.advancePC(c), Op: isa.OpFree, Addr: a.base, Size: a.size, Thread: c.thread}
}

func (g *Generator) emitTaintSrc(c *context) isa.Instr {
	in := g.buildTaintSrc(c)
	in.PC = g.advancePC(c)
	return in
}

// buildTaintSrc marks a buffer as carrying external input and returns the
// corresponding high-level event.
func (g *Generator) buildTaintSrc(c *context) isa.Instr {
	rng, w := g.w.rng, g.w
	var a *allocation
	if i, ok := w.heap.pick(rng, w.prof.HotAllocs, 0.9); ok {
		a = &w.heap.live[i]
	} else {
		na := w.heap.alloc(256)
		a = &na
	}
	a.tainted = true
	w.anyTaint = true
	words := int(a.size / 4)
	if words > 64 {
		words = 64 // external inputs arrive in bounded chunks
	}
	for i := 0; i < words; i++ {
		k := (a.base + uint32(i)*4) >> 2
		e := w.memTag[k]
		e.tainted = true // taint marks the value; pointerness is preserved
		w.memTag[k] = e
	}
	g.taints++
	return isa.Instr{PC: c.pc, Op: isa.OpTaintSrc, Addr: a.base, Size: uint32(words) * 4, Thread: c.thread}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// DebugRegPtr reports the generator's ground-truth pointer tag for a
// register of thread t. Test-only introspection: differential tests use it
// to verify that monitor metadata tracks the generator's value tags.
func (g *Generator) DebugRegPtr(t int, r isa.Reg) bool {
	if t < 0 || t >= len(g.ctxs) || r >= isa.NumRegs {
		return false
	}
	return g.ctxs[t].regs[r].ptr
}

// DebugMemPtr reports the generator's ground-truth pointer tag for the
// word at addr (test-only introspection).
func (g *Generator) DebugMemPtr(addr uint32) bool {
	return g.w.memTag[addr>>2].ptr
}
