package trace

import (
	"testing"

	"fade/internal/isa"
)

func TestDeterminism(t *testing.T) {
	for _, name := range []string{"astar", "water"} {
		prof, _ := Lookup(name)
		a := New(prof, 7, 20_000)
		b := New(prof, 7, 20_000)
		for i := 0; ; i++ {
			ia, oka := a.Next()
			ib, okb := b.Next()
			if oka != okb {
				t.Fatalf("%s: streams ended at different lengths", name)
			}
			if !oka {
				break
			}
			if ia != ib {
				t.Fatalf("%s: instruction %d diverged:\n  %v\n  %v", name, i, ia, ib)
			}
		}
	}
}

func TestSeedsProduceDifferentStreams(t *testing.T) {
	prof, _ := Lookup("astar")
	a := New(prof, 1, 5_000)
	b := New(prof, 2, 5_000)
	same := 0
	for {
		ia, oka := a.Next()
		ib, okb := b.Next()
		if !oka || !okb {
			break
		}
		if ia == ib {
			same++
		}
	}
	if same > 4500 {
		t.Fatalf("different seeds nearly identical: %d/5000 matching", same)
	}
}

func TestLimitRespected(t *testing.T) {
	prof, _ := Lookup("bzip")
	g := New(prof, 1, 1234)
	n := 0
	for {
		if _, ok := g.Next(); !ok {
			break
		}
		n++
	}
	if n != 1234 {
		t.Fatalf("emitted %d, want 1234", n)
	}
	if g.Emitted() != 1234 {
		t.Fatalf("Emitted() = %d", g.Emitted())
	}
}

func TestCallRetBalance(t *testing.T) {
	prof, _ := Lookup("gcc") // highest call rate
	g := New(prof, 3, 100_000)
	depth := 0
	for {
		in, ok := g.Next()
		if !ok {
			break
		}
		switch in.Op {
		case isa.OpCall:
			depth++
		case isa.OpRet:
			depth--
		}
		if depth < 0 {
			t.Fatal("return without matching call")
		}
		if depth > 64 {
			t.Fatalf("call depth exploded: %d", depth)
		}
	}
	if g.Calls() < 100 {
		t.Fatalf("gcc produced only %d calls in 100K instructions", g.Calls())
	}
	if g.Rets() > g.Calls() {
		t.Fatalf("rets %d > calls %d", g.Rets(), g.Calls())
	}
}

func TestCallRetFramesMatch(t *testing.T) {
	prof, _ := Lookup("gobmk")
	g := New(prof, 5, 50_000)
	type fr struct{ base, size uint32 }
	var stack []fr
	for {
		in, ok := g.Next()
		if !ok {
			break
		}
		switch in.Op {
		case isa.OpCall:
			stack = append(stack, fr{in.Addr, in.Size})
		case isa.OpRet:
			if len(stack) == 0 {
				t.Fatal("ret with empty frame stack")
			}
			top := stack[len(stack)-1]
			if top.base != in.Addr || top.size != in.Size {
				t.Fatalf("ret frame %#x+%d does not match call %#x+%d",
					in.Addr, in.Size, top.base, top.size)
			}
			stack = stack[:len(stack)-1]
		}
	}
}

func TestMallocFreeConsistency(t *testing.T) {
	prof, _ := Lookup("omnet") // allocation heavy
	g := New(prof, 1, 150_000)
	live := map[uint32]uint32{}
	for {
		in, ok := g.Next()
		if !ok {
			break
		}
		switch in.Op {
		case isa.OpMalloc:
			if in.Size == 0 {
				t.Fatal("zero-size malloc")
			}
			for b, sz := range live {
				if in.Addr < b+sz && b < in.Addr+in.Size {
					t.Fatalf("overlapping allocations: %#x+%d and %#x+%d", in.Addr, in.Size, b, sz)
				}
			}
			live[in.Addr] = in.Size
		case isa.OpFree:
			if _, ok := live[in.Addr]; !ok {
				t.Fatalf("free of unallocated %#x", in.Addr)
			}
			delete(live, in.Addr)
		}
	}
	if g.Mallocs() == 0 || g.Frees() == 0 {
		t.Fatalf("omnet produced mallocs=%d frees=%d", g.Mallocs(), g.Frees())
	}
}

func TestMemoryAccessesLandInKnownRegions(t *testing.T) {
	for _, name := range []string{"astar", "mcf", "water"} {
		prof, _ := Lookup(name)
		g := New(prof, 1, 50_000)
		allocated := map[uint32]uint32{}
		for {
			in, ok := g.Next()
			if !ok {
				break
			}
			if in.Op == isa.OpMalloc {
				allocated[in.Addr] = in.Size
			}
			if !in.Op.IsMem() {
				continue
			}
			a := in.Addr
			okRegion := (a >= GlobalBase && a < GlobalBase+GlobalSize) ||
				(a >= StreamBase && a < StreamBase+StreamSize) ||
				(a >= PtrTableBase && a < PtrTableBase+PtrTableSize) ||
				a >= StackTop-8*StackStride
			if !okRegion {
				// Must be inside a live (or at least once-seen) heap object.
				found := false
				for b, sz := range allocated {
					if a >= b && a < b+sz {
						found = true
						break
					}
				}
				if !found && a >= HeapBase && a < StreamBase {
					// Tolerate heap addresses from recycled objects.
					found = true
				}
				if !found {
					t.Fatalf("%s: access to unknown region %#x", name, a)
				}
			}
		}
	}
}

func TestStackFlagMatchesAddress(t *testing.T) {
	prof, _ := Lookup("astar")
	g := New(prof, 1, 50_000)
	for {
		in, ok := g.Next()
		if !ok {
			break
		}
		if in.Op.IsMem() && in.Stack {
			if in.Addr < StackTop-8*StackStride {
				t.Fatalf("stack-flagged access at %#x outside stack region", in.Addr)
			}
		}
	}
}

func TestParallelThreadsInterleave(t *testing.T) {
	prof, _ := Lookup("water")
	g := New(prof, 1, 80_000)
	seen := map[uint8]int{}
	for {
		in, ok := g.Next()
		if !ok {
			break
		}
		seen[in.Thread]++
	}
	if len(seen) != 4 {
		t.Fatalf("threads seen: %v", seen)
	}
	for tid, n := range seen {
		if n < 5_000 {
			t.Fatalf("thread %d got only %d instructions", tid, n)
		}
	}
}

func TestSerialSingleThread(t *testing.T) {
	prof, _ := Lookup("bzip")
	g := New(prof, 1, 10_000)
	for {
		in, ok := g.Next()
		if !ok {
			break
		}
		if in.Thread != 0 {
			t.Fatalf("serial benchmark produced thread %d", in.Thread)
		}
	}
}

func TestHotPhasesToggle(t *testing.T) {
	prof, _ := Lookup("bzip") // has phases
	g := New(prof, 1, 200_000)
	hot, cold := 0, 0
	for {
		if _, ok := g.Next(); !ok {
			break
		}
		if g.Hot() {
			hot++
		} else {
			cold++
		}
	}
	if hot == 0 || cold == 0 {
		t.Fatalf("phases never toggled: hot=%d cold=%d", hot, cold)
	}
	frac := float64(hot) / float64(hot+cold)
	if frac < 0.4 || frac > 0.9 {
		t.Fatalf("hot fraction %v far from configured 0.70", frac)
	}
}

func TestLeakInjection(t *testing.T) {
	base, _ := Lookup("omnet")
	p := *base
	p.Inject.LeakFrac = 0.5
	g := New(&p, 1, 200_000)
	for {
		if _, ok := g.Next(); !ok {
			break
		}
	}
	if g.Leaked() == 0 {
		t.Fatal("leak injection produced no leaks")
	}
}

func TestTaintSourcesOnTaintBenchmarks(t *testing.T) {
	for _, name := range TaintNames() {
		prof, _ := Lookup(name)
		g := New(prof, 1, 300_000)
		for {
			if _, ok := g.Next(); !ok {
				break
			}
		}
		if g.Taints() == 0 {
			t.Errorf("%s produced no taint sources", name)
		}
	}
}
