package trace

import (
	"bytes"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the trace reader: it must never
// panic, and must either parse records or surface an error.
func FuzzReader(f *testing.F) {
	var seed bytes.Buffer
	prof, _ := Lookup("astar")
	Record(&seed, "astar", New(prof, 1, 50), 0)
	f.Add(seed.Bytes())
	f.Add([]byte("FTRC\x01\x00"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 10_000; i++ {
			if _, ok := rd.Next(); !ok {
				break
			}
		}
	})
}
