package trace

import (
	"fmt"
	"sort"
)

// Profile parameterizes the synthetic program model for one benchmark.
// Fields marked "calibration" exist to steer an emergent statistic toward
// the paper's reported value; the mapping is documented per profile in
// profiles.go.
type Profile struct {
	Name     string
	Parallel bool // SPLASH/PARSEC-style multithreaded benchmark
	Threads  int  // hardware threads for parallel benchmarks

	// Instruction mix: fractions of the dynamic stream. The remainder
	// after loads/stores/FP/branches/indirect jumps is integer ALU.
	LoadFrac   float64
	StoreFrac  float64
	FPALUFrac  float64
	BranchFrac float64
	JmpRegFrac float64

	// Memory-reference targeting.
	StackMemFrac  float64 // fraction of memory ops addressing the stack
	GlobalMemFrac float64 // fraction of non-stack memory ops to globals
	StreamFrac    float64 // fraction of heap accesses that stream sequentially (prefetchable) — calibration: cache behaviour
	RandomMemFrac float64 // fraction of heap accesses that chase pointers randomly over a huge set (unprefetchable) — calibration: app IPC of memory-bound benchmarks
	HotAllocs     int     // size of the hot allocation set — calibration: locality

	// Function-call behaviour (drives stack-update events).
	CallPer1K float64 // calls per 1000 instructions
	FrameMin  float64 // min stack-frame size, bytes
	FrameMax  float64 // max stack-frame size, bytes

	// Heap behaviour (drives high-level events and unfiltered bursts).
	MallocPer1K float64 // mallocs per 1000 instructions
	AllocMin    float64 // min allocation size, bytes
	AllocMax    float64 // max allocation size, bytes
	LiveTarget  int     // steady-state number of live allocations

	// Value-tag density (drives propagation-monitor filterability).
	PtrALUFrac   float64 // target pointer density among registers; also the 2-source ALU pointer-source bias — calibration: MemLeak filter ratio
	PtrStoreFrac float64 // fraction of stores preferring a pointer source — calibration: pointer density in memory
	PtrLoadFrac  float64 // fraction of loads that chase a pointer field (load from the pointer table) — calibration: MemLeak filter ratio (primary injection)

	// Taint behaviour (TaintCheck benchmarks only).
	TaintPer1K float64 // taint-source events per 1000 instructions
	TaintFrac  float64 // preference for loading from tainted buffers — calibration: TaintCheck filter ratio

	// Parallel-benchmark behaviour (AtomCheck).
	SharedFrac    float64 // fraction of heap accesses to the shared hot set — calibration: AtomCheck conflict rate
	QuantumInstrs int     // time-slice quantum, instructions

	// Core-timing calibration.
	HazardCPI float64 // dependency-chain CPI component, fully exposed in-order, hidden by OoO — calibration: per-benchmark app IPC

	// Phase behaviour: hot phases (tight loop nests) raise IPC and
	// monitored-event density, producing the sustained event bursts of
	// Fig. 3(b). PhaseLen == 0 disables phases.
	PhaseLen     int     // instructions per hot phase
	PhaseHotFrac float64 // fraction of execution spent in hot phases
	HotHazard    float64 // HazardCPI during hot phases (usually lower)

	// Bug injection for the example applications; all zero for the
	// benchmark profiles used in experiments.
	Inject Inject
}

// Inject configures deliberate bugs for the example applications.
type Inject struct {
	LeakFrac        float64 // fraction of allocations whose last pointer is dropped without free
	WildAccessPer1K float64 // accesses to unallocated memory per 1000 instructions
	TaintedJump     bool    // eventually use tainted data as an indirect-jump target
	AtomViolation   bool    // interleave a remote write between a local read-modify-write pair
}

// IntALUFrac returns the integer-ALU share of the mix.
func (p *Profile) IntALUFrac() float64 {
	return 1 - p.LoadFrac - p.StoreFrac - p.FPALUFrac - p.BranchFrac - p.JmpRegFrac
}

// Validate reports configuration errors.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("trace: profile has no name")
	}
	if f := p.IntALUFrac(); f < 0 {
		return fmt.Errorf("trace: profile %s instruction mix exceeds 1 (int ALU share %.3f)", p.Name, f)
	}
	for _, v := range []struct {
		name string
		f    float64
	}{
		{"LoadFrac", p.LoadFrac}, {"StoreFrac", p.StoreFrac},
		{"FPALUFrac", p.FPALUFrac}, {"BranchFrac", p.BranchFrac},
		{"JmpRegFrac", p.JmpRegFrac}, {"StackMemFrac", p.StackMemFrac},
		{"GlobalMemFrac", p.GlobalMemFrac}, {"StreamFrac", p.StreamFrac},
		{"RandomMemFrac", p.RandomMemFrac},
		{"PtrALUFrac", p.PtrALUFrac}, {"PtrStoreFrac", p.PtrStoreFrac},
		{"PtrLoadFrac", p.PtrLoadFrac},
		{"TaintFrac", p.TaintFrac}, {"SharedFrac", p.SharedFrac},
	} {
		if v.f < 0 || v.f > 1 {
			return fmt.Errorf("trace: profile %s: %s=%v outside [0,1]", p.Name, v.name, v.f)
		}
	}
	if p.FrameMin <= 0 || p.FrameMax < p.FrameMin {
		return fmt.Errorf("trace: profile %s: bad frame size range [%v,%v]", p.Name, p.FrameMin, p.FrameMax)
	}
	if p.MallocPer1K > 0 && (p.AllocMin <= 0 || p.AllocMax < p.AllocMin) {
		return fmt.Errorf("trace: profile %s: bad alloc size range [%v,%v]", p.Name, p.AllocMin, p.AllocMax)
	}
	if p.Parallel && p.Threads < 2 {
		return fmt.Errorf("trace: profile %s: parallel profile needs >=2 threads", p.Name)
	}
	if p.Parallel && p.QuantumInstrs <= 0 {
		return fmt.Errorf("trace: profile %s: parallel profile needs a positive quantum", p.Name)
	}
	if p.HazardCPI < 0 {
		return fmt.Errorf("trace: profile %s: negative HazardCPI", p.Name)
	}
	return nil
}

var registry = map[string]*Profile{}

func register(p *Profile) *Profile {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if _, dup := registry[p.Name]; dup {
		panic("trace: duplicate profile " + p.Name)
	}
	registry[p.Name] = p
	return p
}

// Lookup returns the registered profile with the given name.
func Lookup(name string) (*Profile, bool) {
	p, ok := registry[name]
	return p, ok
}

// Names returns all registered profile names, sorted, optionally filtered to
// serial or parallel benchmarks.
func Names(parallel bool) []string {
	var out []string
	for n, p := range registry {
		if p.Parallel == parallel {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// AllNames returns every registered profile name, sorted.
func AllNames() []string {
	var out []string
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
