package trace

// This file registers the calibrated per-benchmark profiles. The paper
// evaluates the SPEC CPU2006 integer benchmarks (reference inputs, 32-bit
// binaries) for the serial monitors and five multithreaded benchmarks from
// SPLASH-2 and PARSEC for AtomCheck (Section 6). Each profile below is the
// synthetic stand-in for one of those benchmarks; the parameters are chosen
// so the statistics the paper reports emerge from simulation:
//
//   - per-benchmark application IPC on the 4-way OoO core (Fig. 2),
//   - monitored IPC per monitor (Fig. 2b,c: AddrCheck avg ~0.24, MemLeak avg
//     ~0.68, bzip ~1.2, mcf ~0.2),
//   - event-queue burstiness (Fig. 3: mcf bursts fit in ~128 entries,
//     omnetpp needs thousands, bzip's monitored IPC exceeds 1.0 so no
//     finite queue suffices),
//   - pointer/taint involvement rates that produce Table 2's filtering
//     ratios (MemLeak 87% average but ~70% on astar/gcc; TaintCheck 84%),
//   - call/return and malloc/free rates that make stack updates up to ~17%
//     of monitor execution time (Fig. 4a) and produce the short unfiltered
//     bursts of Fig. 4(b,c).
//
// BranchFrac counts all value-consuming-but-not-propagating operations
// (branches, compares, immediate tests): the instructions every propagation
// monitor elides at the event producer.

// Serial SPEC CPU2006 integer stand-ins.
var (
	// Astar: pointer-chasing path-finding. Moderate IPC, high pointer
	// density (the paper singles out astar's low MemLeak filtering ratio
	// of ~70%, Section 7.2).
	Astar = register(&Profile{
		Name:     "astar",
		LoadFrac: 0.26, StoreFrac: 0.09, FPALUFrac: 0.03, BranchFrac: 0.34, JmpRegFrac: 0.01,
		StackMemFrac: 0.34, GlobalMemFrac: 0.15, RandomMemFrac: 0.08, HotAllocs: 24,
		CallPer1K: 7, FrameMin: 48, FrameMax: 768,
		MallocPer1K: 0.25, AllocMin: 32, AllocMax: 4096, LiveTarget: 256,
		PtrALUFrac: 0.13, PtrStoreFrac: 0.20, PtrLoadFrac: 0.22,
		TaintPer1K: 0.025, TaintFrac: 0.05,
		HazardCPI: 0.40,
	})

	// Bzip2: compression loops with very high sustained IPC; its monitored
	// IPC exceeds 1.0 (~1.2, Section 3.2), the one benchmark where no
	// event queue can absorb the load.
	Bzip = register(&Profile{
		Name:     "bzip",
		LoadFrac: 0.27, StoreFrac: 0.13, FPALUFrac: 0.01, BranchFrac: 0.27, JmpRegFrac: 0.01,
		StackMemFrac: 0.30, GlobalMemFrac: 0.35, StreamFrac: 0.04, HotAllocs: 8,
		CallPer1K: 2, FrameMin: 32, FrameMax: 256,
		MallocPer1K: 0.05, AllocMin: 1024, AllocMax: 65536, LiveTarget: 32,
		PtrALUFrac: 0.03, PtrStoreFrac: 0.04, PtrLoadFrac: 0.004,
		TaintPer1K: 0.03, TaintFrac: 0.10,
		HazardCPI: 0.20, PhaseLen: 30000, PhaseHotFrac: 0.70, HotHazard: 0.03,
	})

	// Gcc: large irregular footprint, pointer-heavy IR manipulation, the
	// other low-filter-ratio benchmark (~70% under MemLeak), frequent
	// calls (drains of the unfiltered queue hurt, Section 7.2).
	Gcc = register(&Profile{
		Name:     "gcc",
		LoadFrac: 0.25, StoreFrac: 0.11, FPALUFrac: 0.01, BranchFrac: 0.32, JmpRegFrac: 0.01,
		StackMemFrac: 0.36, GlobalMemFrac: 0.18, RandomMemFrac: 0.05, HotAllocs: 48,
		CallPer1K: 14, FrameMin: 64, FrameMax: 1536,
		MallocPer1K: 0.8, AllocMin: 16, AllocMax: 8192, LiveTarget: 512,
		PtrALUFrac: 0.13, PtrStoreFrac: 0.20, PtrLoadFrac: 0.20,
		HazardCPI: 0.50, PhaseLen: 12000, PhaseHotFrac: 0.35, HotHazard: 0.12,
	})

	// Gobmk: game-tree search, extremely branchy with deep call chains.
	Gobmk = register(&Profile{
		Name:     "gobmk",
		LoadFrac: 0.24, StoreFrac: 0.10, FPALUFrac: 0.02, BranchFrac: 0.40,
		StackMemFrac: 0.42, GlobalMemFrac: 0.22, StreamFrac: 0.03, HotAllocs: 16,
		CallPer1K: 11, FrameMin: 64, FrameMax: 2048,
		MallocPer1K: 0.1, AllocMin: 32, AllocMax: 2048, LiveTarget: 64,
		PtrALUFrac: 0.04, PtrStoreFrac: 0.06, PtrLoadFrac: 0.025,
		HazardCPI: 0.60, PhaseLen: 8000, PhaseHotFrac: 0.45, HotHazard: 0.15,
	})

	// Hmmer: profile HMM scoring — regular, high-IPC inner loops over
	// tables, almost no pointers.
	Hmmer = register(&Profile{
		Name:     "hmmer",
		LoadFrac: 0.29, StoreFrac: 0.11, FPALUFrac: 0.08, BranchFrac: 0.34,
		StackMemFrac: 0.25, GlobalMemFrac: 0.45, StreamFrac: 0.02, HotAllocs: 8,
		CallPer1K: 3, FrameMin: 48, FrameMax: 512,
		MallocPer1K: 0.05, AllocMin: 256, AllocMax: 16384, LiveTarget: 24,
		PtrALUFrac: 0.02, PtrStoreFrac: 0.03, PtrLoadFrac: 0.002,
		HazardCPI: 0.42, PhaseLen: 40000, PhaseHotFrac: 0.70, HotHazard: 0.18,
	})

	// Libquantum: quantum-register simulation — streams sequentially
	// through a large flat array; decent IPC despite misses thanks to
	// prefetch-friendly regularity.
	Libquantum = register(&Profile{
		Name:     "libq",
		LoadFrac: 0.26, StoreFrac: 0.12, FPALUFrac: 0.06, BranchFrac: 0.35,
		StackMemFrac: 0.18, GlobalMemFrac: 0.10, StreamFrac: 0.50, HotAllocs: 4,
		CallPer1K: 1.5, FrameMin: 32, FrameMax: 256,
		MallocPer1K: 0.02, AllocMin: 4096, AllocMax: 65536, LiveTarget: 8,
		PtrALUFrac: 0.02, PtrStoreFrac: 0.03, PtrLoadFrac: 0.002,
		HazardCPI: 0.20, PhaseLen: 50000, PhaseHotFrac: 0.60, HotHazard: 0.08,
	})

	// Mcf: network-simplex pointer chasing over a huge working set — the
	// canonical memory-bound benchmark, lowest IPC of the suite (its
	// MemLeak monitored IPC is ~0.2, Section 7.2).
	Mcf = register(&Profile{
		Name:     "mcf",
		LoadFrac: 0.30, StoreFrac: 0.09, FPALUFrac: 0.0, BranchFrac: 0.34, JmpRegFrac: 0.01,
		StackMemFrac: 0.12, GlobalMemFrac: 0.05, StreamFrac: 0.05, RandomMemFrac: 0.42, HotAllocs: 128,
		CallPer1K: 2, FrameMin: 32, FrameMax: 384,
		MallocPer1K: 0.05, AllocMin: 64, AllocMax: 16384, LiveTarget: 384,
		PtrALUFrac: 0.06, PtrStoreFrac: 0.10, PtrLoadFrac: 0.085,
		TaintPer1K: 0.02, TaintFrac: 0.05,
		HazardCPI: 0.35, PhaseLen: 15000, PhaseHotFrac: 0.25, HotHazard: 0.05,
	})

	// Omnetpp: discrete-event simulation — allocation-heavy, pointer-rich,
	// strongly phased (its event bursts need thousands of queue entries,
	// Fig. 3b).
	Omnetpp = register(&Profile{
		Name:     "omnet",
		LoadFrac: 0.27, StoreFrac: 0.12, FPALUFrac: 0.02, BranchFrac: 0.31, JmpRegFrac: 0.01,
		StackMemFrac: 0.33, GlobalMemFrac: 0.12, RandomMemFrac: 0.05, HotAllocs: 64,
		CallPer1K: 9, FrameMin: 48, FrameMax: 1024,
		MallocPer1K: 1.2, AllocMin: 24, AllocMax: 2048, LiveTarget: 768,
		PtrALUFrac: 0.05, PtrStoreFrac: 0.08, PtrLoadFrac: 0.06,
		TaintPer1K: 0.03, TaintFrac: 0.05,
		HazardCPI: 0.45, PhaseLen: 60000, PhaseHotFrac: 0.30, HotHazard: 0.04,
	})
)

// Parallel SPLASH-2 / PARSEC stand-ins for AtomCheck (four threads,
// time-sliced on one core, Section 6).
var (
	// Water (SPLASH-2): N-body molecular dynamics, FP heavy, modest
	// sharing.
	Water = register(&Profile{
		Name: "water", Parallel: true, Threads: 4, QuantumInstrs: 10000,
		LoadFrac: 0.24, StoreFrac: 0.09, FPALUFrac: 0.25, BranchFrac: 0.18,
		StackMemFrac: 0.40, GlobalMemFrac: 0.18, StreamFrac: 0.04, HotAllocs: 16,
		CallPer1K: 5, FrameMin: 64, FrameMax: 768,
		MallocPer1K: 0.02, AllocMin: 256, AllocMax: 8192, LiveTarget: 32,
		PtrALUFrac: 0.02, PtrStoreFrac: 0.03, SharedFrac: 0.11,
		HazardCPI: 0.35,
	})

	// Ocean (SPLASH-2): grid solver, streaming FP with boundary sharing.
	Ocean = register(&Profile{
		Name: "ocean", Parallel: true, Threads: 4, QuantumInstrs: 10000,
		LoadFrac: 0.28, StoreFrac: 0.12, FPALUFrac: 0.22, BranchFrac: 0.14,
		StackMemFrac: 0.26, GlobalMemFrac: 0.10, StreamFrac: 0.28, HotAllocs: 8,
		CallPer1K: 2, FrameMin: 48, FrameMax: 512,
		MallocPer1K: 0.02, AllocMin: 4096, AllocMax: 65536, LiveTarget: 16,
		PtrALUFrac: 0.01, PtrStoreFrac: 0.02, SharedFrac: 0.07,
		HazardCPI: 0.32,
	})

	// Blackscholes (PARSEC): embarrassingly parallel option pricing;
	// almost no sharing, high FP density.
	Blackscholes = register(&Profile{
		Name: "blacks", Parallel: true, Threads: 4, QuantumInstrs: 10000,
		LoadFrac: 0.25, StoreFrac: 0.08, FPALUFrac: 0.30, BranchFrac: 0.15,
		StackMemFrac: 0.44, GlobalMemFrac: 0.22, StreamFrac: 0.03, HotAllocs: 8,
		CallPer1K: 4, FrameMin: 48, FrameMax: 384,
		MallocPer1K: 0.01, AllocMin: 1024, AllocMax: 16384, LiveTarget: 12,
		PtrALUFrac: 0.01, PtrStoreFrac: 0.02, SharedFrac: 0.05,
		HazardCPI: 0.28,
	})

	// Streamcluster (PARSEC): online clustering — streaming with a shared
	// center table that all threads update (high conflict rate).
	Streamcluster = register(&Profile{
		Name: "streamc", Parallel: true, Threads: 4, QuantumInstrs: 10000,
		LoadFrac: 0.29, StoreFrac: 0.10, FPALUFrac: 0.16, BranchFrac: 0.18,
		StackMemFrac: 0.26, GlobalMemFrac: 0.12, StreamFrac: 0.24, HotAllocs: 12,
		CallPer1K: 3, FrameMin: 48, FrameMax: 512,
		MallocPer1K: 0.05, AllocMin: 512, AllocMax: 32768, LiveTarget: 24,
		PtrALUFrac: 0.02, PtrStoreFrac: 0.03, SharedFrac: 0.12,
		HazardCPI: 0.36,
	})

	// Fluidanimate (PARSEC): particle simulation over a shared grid with
	// fine-grained neighbour sharing.
	Fluidanimate = register(&Profile{
		Name: "fluid", Parallel: true, Threads: 4, QuantumInstrs: 10000,
		LoadFrac: 0.27, StoreFrac: 0.11, FPALUFrac: 0.24, BranchFrac: 0.15,
		StackMemFrac: 0.32, GlobalMemFrac: 0.14, StreamFrac: 0.08, HotAllocs: 24,
		CallPer1K: 6, FrameMin: 64, FrameMax: 768,
		PtrALUFrac: 0.02, PtrStoreFrac: 0.03, SharedFrac: 0.17,
		MallocPer1K: 0.03, AllocMin: 256, AllocMax: 8192, LiveTarget: 48,
		HazardCPI: 0.34,
	})
)

// SerialNames returns the SPEC-style serial benchmark names in the paper's
// presentation order.
func SerialNames() []string {
	return []string{"astar", "bzip", "gcc", "gobmk", "hmmer", "libq", "mcf", "omnet"}
}

// ParallelNames returns the multithreaded benchmark names used by AtomCheck.
func ParallelNames() []string {
	return []string{"water", "ocean", "blacks", "streamc", "fluid"}
}

// TaintNames returns the benchmarks with taint propagation, the subset the
// paper evaluates under TaintCheck (Section 6).
func TaintNames() []string {
	return []string{"astar", "bzip", "mcf", "omnet"}
}
