package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	prof, _ := Lookup("gcc")
	var buf bytes.Buffer
	n, err := Record(&buf, "gcc", New(prof, 9, 30_000), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 30_000 {
		t.Fatalf("recorded %d records", n)
	}

	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Profile() != "gcc" {
		t.Fatalf("profile = %q", rd.Profile())
	}
	ref := New(prof, 9, 30_000)
	for i := 0; ; i++ {
		want, okW := ref.Next()
		got, okG := rd.Next()
		if okW != okG {
			t.Fatalf("streams ended at different lengths (record %d)", i)
		}
		if !okW {
			break
		}
		if got != want {
			t.Fatalf("record %d:\n  want %+v\n  got  %+v", i, want, got)
		}
	}
	if rd.Err() != nil {
		t.Fatalf("reader error: %v", rd.Err())
	}
}

func TestTraceRoundTripParallel(t *testing.T) {
	prof, _ := Lookup("streamc")
	var buf bytes.Buffer
	if _, err := Record(&buf, "streamc", New(prof, 2, 25_000), 0); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ref := New(prof, 2, 25_000)
	for {
		want, okW := ref.Next()
		got, okG := rd.Next()
		if okW != okG {
			t.Fatal("length mismatch")
		}
		if !okW {
			break
		}
		if got != want {
			t.Fatalf("mismatch:\n  want %+v\n  got  %+v", want, got)
		}
	}
}

func TestTraceRecordLimit(t *testing.T) {
	prof, _ := Lookup("astar")
	var buf bytes.Buffer
	n, err := Record(&buf, "astar", New(prof, 1, 0), 500)
	if err != nil || n != 500 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestTraceCompactness(t *testing.T) {
	prof, _ := Lookup("hmmer")
	var buf bytes.Buffer
	Record(&buf, "hmmer", New(prof, 1, 50_000), 0)
	perInstr := float64(buf.Len()) / 50_000
	if perInstr > 12 {
		t.Fatalf("trace costs %.1f bytes/instr; expected compact encoding", perInstr)
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	if _, err := NewReader(strings.NewReader("not a trace")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := NewReader(strings.NewReader("FT")); err == nil {
		t.Fatal("short magic accepted")
	}
	if _, err := NewReader(strings.NewReader("FTRC\xFF\x00")); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestTraceTruncatedRecord(t *testing.T) {
	prof, _ := Lookup("astar")
	var buf bytes.Buffer
	Record(&buf, "astar", New(prof, 1, 100), 0)
	full := buf.Bytes()
	rd, err := NewReader(bytes.NewReader(full[:len(full)-3]))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := rd.Next(); !ok {
			break
		}
	}
	if rd.Err() == nil {
		t.Fatal("truncation not reported")
	}
}

func TestTraceEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "empty")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rd.Next(); ok {
		t.Fatal("empty trace yielded a record")
	}
	if rd.Err() != nil {
		t.Fatalf("EOF surfaced as error: %v", rd.Err())
	}
}

func TestTraceLongProfileNameRejected(t *testing.T) {
	if _, err := NewWriter(io.Discard, strings.Repeat("x", 300)); err == nil {
		t.Fatal("oversized profile name accepted")
	}
}
