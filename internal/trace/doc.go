// Package trace synthesizes the dynamic instruction streams that drive the
// monitoring systems. The paper evaluates SPEC CPU2006 integer benchmarks
// (and SPLASH-2/PARSEC for AtomCheck) under Flexus full-system simulation;
// neither the binaries nor the simulator are available here, so this package
// implements the closest synthetic equivalent: a program-execution model
// with a real call stack, heap allocator, and register/memory value tags,
// parameterized per benchmark so the *event stream* seen by the monitors
// matches the statistics the paper reports (instruction mix, monitored IPC,
// call/return and malloc/free rates, pointer and taint density, burstiness).
// DESIGN.md §1 records this substitution.
//
// Profiles are registered at init; Source yields instructions
// deterministically from (profile, seed, limit). Record/Reader serialize a
// stream to the compact binary trace format for replay.
package trace
