package queue

import "fade/internal/spans"

// episodeState is the EpisodeTracer state machine position.
type episodeState uint8

const (
	episodeIdle episodeState = iota
	// episodeFull: the queue is at effective capacity and rejecting pushes.
	episodeFull
	// episodeDraining: the queue has freed a slot after a full episode but
	// has not yet emptied — the producer's backlog is catching up.
	episodeDraining
)

// EpisodeTracer turns a bounded queue's occupancy extremes into
// cycle-domain trace spans: a "full" span covering each interval during
// which pushes were rejected, followed by a "drain" span from the first
// freed slot until the queue next empties. The system layer observes each
// traced queue once per executed cycle, after components tick.
//
// Fast-forward safety: the tracer deliberately does NOT observe skipped
// cycles. A quiescent span freezes all component state — queue occupancy
// included — so a full/drain transition can only happen on an executed
// cycle, which the observer always sees; the emitted episodes are
// therefore identical whether fast-forward is on or off (the same
// argument that makes bulk occupancy sampling exact).
type EpisodeTracer struct {
	full  func() bool
	empty func() bool
	len   func() int

	trace     *spans.Trace
	track     int32
	fullName  string
	drainName string

	st       episodeState
	since    uint64
	onsetOcc uint64
}

// NewEpisodeTracer traces q's full/drain episodes onto trace under the
// given span names (one of the queue.meq.* / queue.ufq.* pairs in
// docs/TRACING.md). A nil trace yields a nil tracer, which is valid and
// observes nothing.
func NewEpisodeTracer[T any](q *Bounded[T], trace *spans.Trace, track int32, fullName, drainName string) *EpisodeTracer {
	if trace == nil {
		return nil
	}
	return &EpisodeTracer{
		full:      q.Full,
		empty:     q.Empty,
		len:       q.Len,
		trace:     trace,
		track:     track,
		fullName:  fullName,
		drainName: drainName,
	}
}

// Observe advances the episode state machine against the queue's post-tick
// state at the given cycle, emitting spans at episode boundaries.
func (e *EpisodeTracer) Observe(cycle uint64) {
	if e == nil {
		return
	}
	switch e.st {
	case episodeIdle:
		if e.full() {
			e.st = episodeFull
			e.since = cycle
			e.onsetOcc = uint64(e.len())
		}
	case episodeFull:
		if !e.full() {
			e.trace.CycleSpan(e.track, e.fullName, e.since, cycle,
				spans.Num("occupancy", e.onsetOcc), spans.None)
			if e.empty() {
				// Drained in one step: no separate drain phase to trace.
				e.st = episodeIdle
				return
			}
			e.st = episodeDraining
			e.since = cycle
		}
	case episodeDraining:
		switch {
		case e.full():
			// Refilled before emptying: the drain phase ends and a new
			// full episode starts at this cycle.
			e.trace.CycleSpan(e.track, e.drainName, e.since, cycle, spans.None, spans.None)
			e.st = episodeFull
			e.since = cycle
			e.onsetOcc = uint64(e.len())
		case e.empty():
			e.trace.CycleSpan(e.track, e.drainName, e.since, cycle, spans.None, spans.None)
			e.st = episodeIdle
		}
	}
}

// Flush closes any episode still open when the run terminated at the given
// end cycle.
func (e *EpisodeTracer) Flush(end uint64) {
	if e == nil {
		return
	}
	switch e.st {
	case episodeFull:
		e.trace.CycleSpan(e.track, e.fullName, e.since, end,
			spans.Num("occupancy", e.onsetOcc), spans.None)
	case episodeDraining:
		e.trace.CycleSpan(e.track, e.drainName, e.since, end, spans.None, spans.None)
	}
	e.st = episodeIdle
}
