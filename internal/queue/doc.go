// Package queue implements the bounded FIFO queues that decouple the event
// producer (application core), the filtering accelerator, and the unfiltered
// event consumer (monitor core) — the "event queue" and "unfiltered event
// queue" of the paper (Fig. 1). Queues record occupancy statistics so the
// experiment harness can regenerate the occupancy CDFs of Fig. 3 and the
// backpressure analyses of Sections 3.2 and 3.4.
//
// # Observability
//
// Bounded.MetricsCollector(prefix) returns an obs.Collector exporting the
// queue's push/pop/stall counters and occupancy statistics under the
// caller's prefix (queue.meq.* for the event queue, queue.ufq.* for the
// unfiltered queue). See docs/METRICS.md.
package queue
