package queue

import (
	"testing"
	"testing/quick"
)

func TestPushPopFIFO(t *testing.T) {
	q := NewBounded[int](4)
	for i := 1; i <= 4; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d rejected", i)
		}
	}
	for i := 1; i <= 4; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestCapacityAndBackpressure(t *testing.T) {
	q := NewBounded[int](2)
	q.Push(1)
	q.Push(2)
	if q.Push(3) {
		t.Fatal("push beyond capacity accepted")
	}
	if q.FullStalls() != 1 {
		t.Fatalf("full stalls = %d", q.FullStalls())
	}
	if !q.Full() {
		t.Fatal("Full() false at capacity")
	}
	q.Pop()
	if !q.Push(3) {
		t.Fatal("push after pop rejected")
	}
}

func TestWrapAround(t *testing.T) {
	q := NewBounded[int](3)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if !q.Push(round*3 + i) {
				t.Fatal("push rejected")
			}
		}
		for i := 0; i < 3; i++ {
			v, _ := q.Pop()
			if v != round*3+i {
				t.Fatalf("round %d: pop %d want %d", round, v, round*3+i)
			}
		}
	}
}

func TestUnboundedGrowth(t *testing.T) {
	q := NewBounded[int](Unbounded)
	const n = 10_000
	for i := 0; i < n; i++ {
		if !q.Push(i) {
			t.Fatalf("unbounded push %d rejected", i)
		}
	}
	if q.Len() != n {
		t.Fatalf("len = %d", q.Len())
	}
	for i := 0; i < n; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d,%v", i, v, ok)
		}
	}
}

func TestUnboundedGrowthPreservesOrderAcrossWrap(t *testing.T) {
	q := NewBounded[int](Unbounded)
	// Force a wrap before growth: fill, drain half, fill past initial cap.
	for i := 0; i < 60; i++ {
		q.Push(i)
	}
	for i := 0; i < 30; i++ {
		q.Pop()
	}
	for i := 60; i < 200; i++ {
		q.Push(i)
	}
	for want := 30; want < 200; want++ {
		v, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("pop = %d,%v want %d", v, ok, want)
		}
	}
}

// TestUnboundedGrowTriggersExactlyAtFull pins the grow() trigger condition:
// the ring reallocates only when size == len(buf), and a push landing exactly
// on that boundary — with the head mid-ring so the occupied region wraps —
// relocates every element in FIFO order.
func TestUnboundedGrowTriggersExactlyAtFull(t *testing.T) {
	q := NewBounded[int](Unbounded)
	// The initial ring holds 64; wrap the head to 32 first.
	for i := 0; i < 32; i++ {
		q.Push(-1)
	}
	for i := 0; i < 32; i++ {
		q.Pop()
	}
	// Fill the ring exactly: elements occupy [32..63] then wrap to [0..31].
	for i := 0; i < 64; i++ {
		q.Push(i)
	}
	if q.Len() != 64 {
		t.Fatalf("len = %d before growth boundary", q.Len())
	}
	if q.At(0) != 0 || q.At(63) != 63 {
		t.Fatalf("At across wrap = %d,%d", q.At(0), q.At(63))
	}
	// The 65th push is the first that must grow the ring.
	if !q.Push(64) {
		t.Fatal("push at growth boundary rejected")
	}
	if q.Len() != 65 {
		t.Fatalf("len after growth = %d", q.Len())
	}
	for want := 0; want <= 64; want++ {
		v, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("post-growth pop = %d,%v want %d", v, ok, want)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue not empty after draining grown ring")
	}
}

// TestOccupancyStatsAcrossGrowth checks that occupancy sampling and the
// push/pop counters survive a ring reallocation: growth is a storage detail
// and must not perturb the Fig. 3 occupancy statistics.
func TestOccupancyStatsAcrossGrowth(t *testing.T) {
	q := NewBounded[int](Unbounded)
	const n = 200 // forces two doublings of the 64-slot initial ring
	for i := 0; i < n; i++ {
		q.Push(i)
		q.SampleOccupancy()
	}
	h := q.Occupancy()
	if h.Total() != n {
		t.Fatalf("samples = %d", h.Total())
	}
	if h.Maximum() != n {
		t.Fatalf("max occupancy = %d, want %d", h.Maximum(), n)
	}
	// Occupancy went 1..n exactly once each, so the mean is (n+1)/2.
	if want := float64(n+1) / 2; h.Mean() != want {
		t.Fatalf("mean occupancy = %v, want %v", h.Mean(), want)
	}
	if got := h.Percentile(0.5); got != n/2 {
		t.Fatalf("median occupancy = %d, want %d", got, n/2)
	}
	if q.Pushes() != n || q.MaxLen() != n {
		t.Fatalf("pushes=%d maxlen=%d", q.Pushes(), q.MaxLen())
	}
}

func TestPeekAndAt(t *testing.T) {
	q := NewBounded[string](4)
	q.Push("a")
	q.Push("b")
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("peek = %q,%v", v, ok)
	}
	if q.At(1) != "b" {
		t.Fatalf("At(1) = %q", q.At(1))
	}
	if q.Len() != 2 {
		t.Fatal("peek consumed elements")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	q := NewBounded[int](2)
	q.Push(1)
	q.At(1)
}

func TestOccupancySampling(t *testing.T) {
	q := NewBounded[int](8)
	q.SampleOccupancy() // 0
	q.Push(1)
	q.Push(2)
	q.SampleOccupancy() // 2
	h := q.Occupancy()
	if h.Total() != 2 {
		t.Fatalf("samples = %d", h.Total())
	}
	if h.Maximum() != 2 {
		t.Fatalf("max occupancy sample = %d", h.Maximum())
	}
}

func TestCounters(t *testing.T) {
	q := NewBounded[int](2)
	q.Push(1)
	q.Push(2)
	q.Pop()
	if q.Pushes() != 2 || q.Pops() != 1 {
		t.Fatalf("pushes=%d pops=%d", q.Pushes(), q.Pops())
	}
	if q.MaxLen() != 2 {
		t.Fatalf("maxlen = %d", q.MaxLen())
	}
}

func TestDrain(t *testing.T) {
	q := NewBounded[int](4)
	q.Push(1)
	q.Push(2)
	if n := q.Drain(); n != 2 {
		t.Fatalf("drain = %d", n)
	}
	if !q.Empty() {
		t.Fatal("queue not empty after drain")
	}
	if !q.Push(9) {
		t.Fatal("push after drain rejected")
	}
	if v, _ := q.Pop(); v != 9 {
		t.Fatalf("pop after drain = %d", v)
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 did not panic")
		}
	}()
	NewBounded[int](0)
}

// Property: any sequence of pushes/pops behaves like a reference slice queue.
func TestQueueModelEquivalence(t *testing.T) {
	err := quick.Check(func(ops []uint8, cap8 uint8) bool {
		capacity := int(cap8%16) + 1
		q := NewBounded[uint8](capacity)
		var ref []uint8
		for _, op := range ops {
			if op%3 == 0 && len(ref) > 0 {
				v, ok := q.Pop()
				if !ok || v != ref[0] {
					return false
				}
				ref = ref[1:]
			} else {
				pushed := q.Push(op)
				if pushed != (len(ref) < capacity) {
					return false
				}
				if pushed {
					ref = append(ref, op)
				}
			}
			if q.Len() != len(ref) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}
