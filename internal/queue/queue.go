package queue

import (
	"fade/internal/obs"
	"fade/internal/stats"
)

// Unbounded is the capacity value that makes a queue effectively infinite.
// Section 3.2 studies an infinite event queue to characterize burstiness.
const Unbounded = int(^uint(0) >> 1)

// Bounded is a bounded FIFO ring buffer with occupancy instrumentation.
type Bounded[T any] struct {
	buf      []T
	head     int
	size     int
	capacity int
	// throttle is the fault-injected effective capacity; 0 means
	// unthrottled (the configured capacity applies).
	throttle int
	// dropHook, when non-nil, is consulted on every accepting push; a true
	// return discards the element (counted in drops) while still reporting
	// the push as accepted to the producer — the fault model for an event
	// silently lost in flight, which the invariant checker must detect.
	dropHook func() bool

	occupancy  *stats.Histogram
	pushes     stats.Counter
	pops       stats.Counter
	fullStalls stats.Counter
	drops      stats.Counter
	maxSize    int
	sampleEach bool
}

// NewBounded returns a queue holding at most capacity elements. Use
// Unbounded for an effectively infinite queue (storage grows on demand).
// It panics on a non-positive capacity; construction paths reachable from
// the public API validate capacities first (system.Config.Validate) so the
// panic marks an internal bug, not a user error.
func NewBounded[T any](capacity int) *Bounded[T] {
	if capacity <= 0 {
		panic("queue: capacity must be positive")
	}
	initial := capacity
	if capacity == Unbounded {
		initial = 64
	}
	return &Bounded[T]{
		buf:       make([]T, initial),
		capacity:  capacity,
		occupancy: stats.NewHistogram(),
	}
}

// Cap returns the configured capacity.
func (q *Bounded[T]) Cap() int { return q.capacity }

// EffectiveCap returns the capacity currently enforced on pushes: the
// configured capacity, or the throttled capacity while queue-pressure fault
// injection is active.
func (q *Bounded[T]) EffectiveCap() int {
	if q.throttle > 0 && q.throttle < q.capacity {
		return q.throttle
	}
	return q.capacity
}

// Throttle sets the fault-injected effective capacity (clamped to at least
// one entry); 0 clears the throttle. Shrinking below the current occupancy
// does not evict elements — it only blocks pushes until the queue drains.
func (q *Bounded[T]) Throttle(cap int) {
	if cap < 0 {
		cap = 0
	}
	q.throttle = cap
}

// SetDropHook installs (or, with nil, removes) the fault-injection drop
// hook. See the field comment for the contract.
func (q *Bounded[T]) SetDropHook(fn func() bool) { q.dropHook = fn }

// Drops returns the number of elements discarded by the drop hook.
func (q *Bounded[T]) Drops() uint64 { return q.drops.Value() }

// Len returns the current number of queued elements.
func (q *Bounded[T]) Len() int { return q.size }

// Full reports whether a Push would fail.
func (q *Bounded[T]) Full() bool { return q.size >= q.EffectiveCap() }

// Empty reports whether the queue holds no elements.
func (q *Bounded[T]) Empty() bool { return q.size == 0 }

// Push appends v and reports whether it was accepted. A rejected push is
// counted as a full-queue stall (producer backpressure).
func (q *Bounded[T]) Push(v T) bool {
	if q.Full() {
		q.fullStalls.Inc()
		return false
	}
	if q.dropHook != nil && q.dropHook() {
		q.drops.Inc()
		return true
	}
	if q.size == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.size)%len(q.buf)] = v
	q.size++
	q.pushes.Inc()
	if q.size > q.maxSize {
		q.maxSize = q.size
	}
	return true
}

// Pop removes and returns the oldest element. ok is false when empty.
func (q *Bounded[T]) Pop() (v T, ok bool) {
	if q.size == 0 {
		return v, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	q.pops.Inc()
	return v, true
}

// Peek returns the oldest element without removing it.
func (q *Bounded[T]) Peek() (v T, ok bool) {
	if q.size == 0 {
		return v, false
	}
	return q.buf[q.head], true
}

// At returns the i-th element counted from the head (0 = oldest). It is used
// by associative searches such as the filter store queue lookup.
func (q *Bounded[T]) At(i int) T {
	if i < 0 || i >= q.size {
		panic("queue: index out of range")
	}
	return q.buf[(q.head+i)%len(q.buf)]
}

// SampleOccupancy records the current occupancy into the histogram. Systems
// call this once per cycle so the histogram is a per-cycle occupancy
// distribution, directly comparable to Fig. 3(a,b).
func (q *Bounded[T]) SampleOccupancy() {
	q.occupancy.Add(q.size)
}

// SampleOccupancyN records the current occupancy n times in one step — the
// bulk counterpart of SampleOccupancy for spans of quiescent cycles skipped
// by the fast-forward kernel, during which the occupancy is frozen. Exactly
// equivalent to n SampleOccupancy calls.
func (q *Bounded[T]) SampleOccupancyN(n uint64) {
	q.occupancy.AddN(q.size, n)
}

// StallN records n rejected pushes in one step without attempting them —
// the bulk counterpart of n failed Push calls against a full queue, used by
// the fast-forward kernel when a producer is known to stay blocked for a
// span of cycles.
func (q *Bounded[T]) StallN(n uint64) {
	q.fullStalls.Add(n)
}

// Occupancy returns the per-cycle occupancy histogram.
func (q *Bounded[T]) Occupancy() *stats.Histogram { return q.occupancy }

// Pushes returns the number of accepted pushes.
func (q *Bounded[T]) Pushes() uint64 { return q.pushes.Value() }

// Pops returns the number of pops.
func (q *Bounded[T]) Pops() uint64 { return q.pops.Value() }

// FullStalls returns the number of rejected pushes.
func (q *Bounded[T]) FullStalls() uint64 { return q.fullStalls.Value() }

// MaxLen returns the high-water mark of the queue.
func (q *Bounded[T]) MaxLen() int { return q.maxSize }

// MetricsCollector returns an obs.Collector exposing the queue's counters
// and occupancy distribution under the given dotted prefix (e.g.
// "queue.meq"). See docs/METRICS.md for the emitted names.
func (q *Bounded[T]) MetricsCollector(prefix string) obs.Collector {
	return obs.CollectorFunc(func(s obs.Sink) {
		s.Counter(prefix+".pushes", q.pushes.Value())
		s.Counter(prefix+".pops", q.pops.Value())
		s.Counter(prefix+".full_stalls", q.fullStalls.Value())
		if q.dropHook != nil {
			// Emitted only under fault injection so fault-free metric
			// dumps keep their historical shape (golden tests pin them).
			s.Counter(prefix+".drops", q.drops.Value())
		}
		s.Gauge(prefix+".occupancy", float64(q.size))
		s.Gauge(prefix+".max_occupancy", float64(q.maxSize))
		s.Histogram(prefix+".occupancy_dist", q.occupancy)
	})
}

// Drain removes all elements, returning how many were dropped.
func (q *Bounded[T]) Drain() int {
	n := q.size
	var zero T
	for i := 0; i < q.size; i++ {
		q.buf[(q.head+i)%len(q.buf)] = zero
	}
	q.head = 0
	q.size = 0
	return n
}

func (q *Bounded[T]) grow() {
	bigger := make([]T, len(q.buf)*2)
	for i := 0; i < q.size; i++ {
		bigger[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = bigger
	q.head = 0
}
