package queue

import (
	"testing"

	"fade/internal/obs"
)

func TestThrottleShrinksEffectiveCapacity(t *testing.T) {
	q := NewBounded[int](8)
	if q.EffectiveCap() != 8 {
		t.Fatalf("unthrottled effective cap = %d, want 8", q.EffectiveCap())
	}
	q.Throttle(3)
	if q.EffectiveCap() != 3 {
		t.Fatalf("throttled effective cap = %d, want 3", q.EffectiveCap())
	}
	for i := 0; i < 3; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d rejected below effective cap", i)
		}
	}
	if q.Push(99) {
		t.Fatal("push beyond throttled capacity accepted")
	}
	if !q.Full() {
		t.Fatal("Full() false at throttled capacity")
	}
	// Hard capacity is unchanged: lifting the throttle reopens the queue.
	if q.Cap() != 8 {
		t.Fatalf("Cap() = %d after throttling, want 8", q.Cap())
	}
	q.Throttle(0)
	if q.Full() || !q.Push(100) {
		t.Fatal("queue stayed full after the throttle lifted")
	}
}

func TestThrottleBelowOccupancyBlocksWithoutEvicting(t *testing.T) {
	q := NewBounded[int](8)
	for i := 0; i < 6; i++ {
		q.Push(i)
	}
	q.Throttle(2) // below current occupancy
	if q.Len() != 6 {
		t.Fatalf("throttle evicted entries: len = %d, want 6", q.Len())
	}
	if q.Push(7) {
		t.Fatal("push accepted while above throttled capacity")
	}
	if v, ok := q.Pop(); !ok || v != 0 {
		t.Fatalf("pop = %d,%v; draining must stay possible under throttle", v, ok)
	}
}

func TestThrottleAboveCapacityIsInert(t *testing.T) {
	q := NewBounded[int](4)
	q.Throttle(100)
	if q.EffectiveCap() != 4 {
		t.Fatalf("throttle above capacity changed effective cap to %d", q.EffectiveCap())
	}
	q.Throttle(-5) // negative clamps to "no throttle"
	if q.EffectiveCap() != 4 {
		t.Fatalf("negative throttle changed effective cap to %d", q.EffectiveCap())
	}
}

func TestDropHookCountsAndDiscards(t *testing.T) {
	q := NewBounded[int](8)
	drop := false
	q.SetDropHook(func() bool { return drop })
	q.Push(1)
	drop = true
	// The producer sees a successful push — a silent loss, by design: the
	// probe tests whether the system *detects* it, not whether it is absorbed.
	if !q.Push(2) {
		t.Fatal("dropped push did not report success to the producer")
	}
	drop = false
	q.Push(3)
	if q.Len() != 2 {
		t.Fatalf("len = %d, want 2 (dropped element stored)", q.Len())
	}
	if q.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", q.Drops())
	}
	if v, _ := q.Pop(); v != 1 {
		t.Fatalf("head = %d, want 1", v)
	}
	if v, _ := q.Pop(); v != 3 {
		t.Fatalf("second = %d, want 3 (2 was dropped)", v)
	}
}

func TestDropHookNotConsultedWhenFull(t *testing.T) {
	q := NewBounded[int](1)
	calls := 0
	q.SetDropHook(func() bool { calls++; return true })
	q.Push(1) // consults the hook (returns true: dropped)
	q.Push(2) // consults the hook again
	if calls != 2 {
		t.Fatalf("hook calls = %d, want 2", calls)
	}
	q.SetDropHook(func() bool { calls++; return false })
	q.Push(3) // stored; queue now full
	if q.Push(4) {
		t.Fatal("push into full queue accepted")
	}
	// The full check precedes the hook: a rejected push is backpressure, not
	// a drop, so the hook is not consulted for it.
	if calls != 3 {
		t.Fatalf("hook calls = %d, want 3 (full-queue rejection bypasses the hook)", calls)
	}
}

// TestDropsMetricConditional: the .drops counter appears in the metrics
// snapshot only when a drop hook is installed, keeping fault-free dumps
// byte-identical to the pre-fault-injection goldens.
func TestDropsMetricConditional(t *testing.T) {
	plain := NewBounded[int](4)
	s := snapshotOf(t, plain, "q")
	if _, ok := s["q.drops"]; ok {
		t.Fatal("fault-free queue exported q.drops")
	}
	hooked := NewBounded[int](4)
	hooked.SetDropHook(func() bool { return false })
	s = snapshotOf(t, hooked, "q")
	if _, ok := s["q.drops"]; !ok {
		t.Fatal("hooked queue did not export q.drops")
	}
}

func snapshotOf(t *testing.T, q *Bounded[int], prefix string) map[string]float64 {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Register(q.MetricsCollector(prefix))
	got := map[string]float64{}
	for _, v := range reg.Snapshot().Values {
		got[v.Name] = v.Num
	}
	return got
}
