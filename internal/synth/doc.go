// Package synth estimates FADE's silicon cost, reproducing the Section 7.6
// methodology in analytic form. The paper synthesizes a VHDL implementation
// with Synopsys Design Compiler in TSMC 45nm scaled to the 40nm half node
// at 2 GHz and reports 0.09 mm² / 122 mW for the accelerator, plus CACTI
// 6.5 estimates for the 4 KB MD cache of 0.03 mm² / 151 mW / 0.3 ns.
//
// Without the TSMC library or CACTI here, this package uses a standard
// analytic decomposition — per-bit SRAM/flop-array costs (periphery
// dominated at these sizes) and per-gate logic costs — with 40nm
// coefficients calibrated against the paper's reported totals. The value of
// the model is the *inventory*: every block of the microarchitecture is
// enumerated with its geometry, so design changes (deeper queues, a larger
// event table) reprice correctly relative to the calibrated baseline.
package synth
