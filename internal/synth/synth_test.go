package synth

import (
	"math"
	"strings"
	"testing"
)

func TestFADETotalsMatchPaper(t *testing.T) {
	area, power := Totals(FADEBlocks())
	// Section 7.6: 0.09 mm² and 122 mW at 40nm / 2 GHz.
	if math.Abs(area-0.09) > 0.01 {
		t.Errorf("FADE area %.4f mm², paper 0.09", area)
	}
	if math.Abs(power-122) > 12 {
		t.Errorf("FADE power %.1f mW, paper 122", power)
	}
}

func TestMDCacheMatchesPaper(t *testing.T) {
	md := MDCacheEstimate()
	if math.Abs(md.AreaMM2-0.03) > 0.005 {
		t.Errorf("MD cache area %.4f mm², paper 0.03", md.AreaMM2)
	}
	if math.Abs(md.PeakPowerMW-151) > 15 {
		t.Errorf("MD cache power %.1f mW, paper 151", md.PeakPowerMW)
	}
	if math.Abs(md.AccessNs-0.3) > 0.05 {
		t.Errorf("MD cache access %.2f ns, paper 0.3", md.AccessNs)
	}
}

func TestGrandTotalMatchesPaper(t *testing.T) {
	area, power := Totals(FADEBlocks())
	md := MDCacheEstimate()
	// Abstract: 0.12 mm² and 273 mW at peak.
	if total := area + md.AreaMM2; math.Abs(total-0.12) > 0.012 {
		t.Errorf("grand area %.4f mm², paper 0.12", total)
	}
	if total := power + md.PeakPowerMW; math.Abs(total-273) > 27 {
		t.Errorf("grand power %.1f mW, paper 273", total)
	}
}

func TestBlockInventoryCoversMicroarchitecture(t *testing.T) {
	blocks := FADEBlocks()
	wanted := []string{"event table", "event queue", "unfiltered", "INV RF",
		"MD RF", "filter store queue", "M-TLB", "filter logic", "MD update",
		"stack-update", "control"}
	joined := ""
	for _, b := range blocks {
		joined += b.Name + "\n"
		if b.Area() <= 0 || b.Power() <= 0 {
			t.Errorf("block %q has non-positive cost", b.Name)
		}
	}
	for _, w := range wanted {
		if !strings.Contains(joined, w) {
			t.Errorf("inventory missing %q", w)
		}
	}
}

func TestEventRecordBits(t *testing.T) {
	// Fig. 6(a): 6 + 32 + 32 + 3x5 = 85 bits.
	if EventRecordBits != 85 {
		t.Fatalf("event record = %d bits, want 85", EventRecordBits)
	}
}

func TestCacheEstimateScales(t *testing.T) {
	small := EstimateCache(4<<10, 2, 64)
	big := EstimateCache(16<<10, 2, 64)
	if big.AreaMM2 <= small.AreaMM2 {
		t.Error("larger cache not larger")
	}
	if big.AccessNs <= small.AccessNs {
		t.Error("larger cache not slower")
	}
	if big.PeakPowerMW <= small.PeakPowerMW {
		t.Error("larger cache not hungrier")
	}
}

func TestReportRenders(t *testing.T) {
	r := Report()
	for _, want := range []string{"FADE total", "MD cache", "grand total"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
