package synth

import (
	"fmt"
	"math"
	"strings"
)

// Technology coefficients for the TSMC 40nm half node at 2 GHz, 0.9 V.
// Small flop-based arrays are periphery/clock dominated, hence the high
// per-bit figures relative to commodity SRAM macros.
const (
	// FlopArrayAreaPerBit is mm² per storage bit for flop-based arrays
	// (queues, register files, the event table).
	FlopArrayAreaPerBit = 2.30e-6
	// LogicAreaPerGate is mm² per NAND2-equivalent gate, wiring included.
	LogicAreaPerGate = 1.45e-6
	// FlopArrayPowerPerBit is peak mW per bit at 2 GHz (read+write every
	// cycle, worst case).
	FlopArrayPowerPerBit = 3.4e-3
	// LogicPowerPerGate is peak mW per NAND2-equivalent gate at 2 GHz.
	LogicPowerPerGate = 1.35e-3
	// ClockOverheadFrac adds the clock tree on top of block power.
	ClockOverheadFrac = 0.12
)

// Block is one microarchitectural structure.
type Block struct {
	Name  string
	Bits  int // storage bits (flop arrays)
	Gates int // NAND2-equivalent combinational gates
}

// Area returns the block's area in mm².
func (b Block) Area() float64 {
	return float64(b.Bits)*FlopArrayAreaPerBit + float64(b.Gates)*LogicAreaPerGate
}

// Power returns the block's peak power in mW.
func (b Block) Power() float64 {
	p := float64(b.Bits)*FlopArrayPowerPerBit + float64(b.Gates)*LogicPowerPerGate
	return p * (1 + ClockOverheadFrac)
}

// EventRecordBits is the event-queue entry width (Fig. 6a): 6-bit event id,
// 32-bit address, 32-bit PC, three 5-bit register specifiers.
const EventRecordBits = 6 + 32 + 32 + 3*5

// FADEBlocks returns the accelerator's block inventory with the Section 6
// configuration: 128-entry event table (96-bit entries), 32-entry event
// queue, 16-entry unfiltered event queue, INV/MD register files, FSQ,
// M-TLB, and the pipeline/filter/SUU/control logic.
func FADEBlocks() []Block {
	return []Block{
		{Name: "event table (128 x 96b)", Bits: 128 * 96, Gates: 2200},
		{Name: "event queue (32 x 85b)", Bits: 32 * EventRecordBits, Gates: 900},
		{Name: "unfiltered event queue (16 x 118b)", Bits: 16 * (EventRecordBits + 32 + 1), Gates: 700},
		{Name: "INV RF (8 x 8b)", Bits: 8 * 8, Gates: 120},
		{Name: "MD RF (32 x 8b)", Bits: 32 * 8, Gates: 300},
		{Name: "filter store queue (16 x 64b)", Bits: 16 * 64, Gates: 1800}, // CAM search ports
		{Name: "M-TLB (16 x 52b)", Bits: 16 * 52, Gates: 1400},              // CAM tags
		{Name: "filter logic (3 comparator blocks)", Gates: 5200},
		{Name: "MD update logic", Gates: 3100},
		{Name: "stack-update unit FSM", Gates: 2600},
		{Name: "control / decode", Gates: 6400},
		{Name: "pipeline registers & bypass", Bits: 4 * 220, Gates: 3800},
		{Name: "MMIO programming interface", Gates: 1900},
	}
}

// Totals sums an inventory.
func Totals(blocks []Block) (areaMM2, powerMW float64) {
	for _, b := range blocks {
		areaMM2 += b.Area()
		powerMW += b.Power()
	}
	return areaMM2, powerMW
}

// CacheEstimate is a CACTI-style analytic estimate for a small SRAM cache.
type CacheEstimate struct {
	SizeBytes   int
	Assoc       int
	BlockBytes  int
	AreaMM2     float64
	PeakPowerMW float64
	AccessNs    float64
}

// EstimateCache prices a small set-associative SRAM cache at 40nm / 2 GHz.
// Coefficients are calibrated so the paper's 4 KB two-way MD cache lands at
// its reported 0.03 mm², 151 mW peak, 0.3 ns access (Section 7.6).
func EstimateCache(sizeBytes, assoc, blockBytes int) CacheEstimate {
	bits := float64(sizeBytes * 8)
	// Tag array: assume 32-bit addresses.
	sets := float64(sizeBytes / (assoc * blockBytes))
	tagBits := float64(assoc) * sets * 24
	totalBits := bits + tagBits
	// SRAM macro density at 40nm with periphery for a small array.
	area := totalBits * 0.875e-6
	// Peak dynamic power: full-array access every cycle at 2 GHz plus
	// decoder/sense overhead that grows with associativity.
	power := totalBits*4.0e-3 + float64(assoc)*6.5
	// Access time: wordline/bitline RC grows with sqrt of array size.
	access := 0.16 + 0.07*math.Sqrt(float64(sizeBytes)/(4<<10))*2
	return CacheEstimate{
		SizeBytes: sizeBytes, Assoc: assoc, BlockBytes: blockBytes,
		AreaMM2: area, PeakPowerMW: power, AccessNs: access,
	}
}

// MDCacheEstimate prices the Section 6 MD cache (4 KB, two-way, 64 B
// blocks).
func MDCacheEstimate() CacheEstimate {
	return EstimateCache(4<<10, 2, 64)
}

// Report renders the full cost table: per-block accelerator costs plus the
// MD cache estimate, with grand totals.
func Report() string {
	var b strings.Builder
	blocks := FADEBlocks()
	fmt.Fprintf(&b, "%-38s %10s %10s\n", "block", "area mm2", "peak mW")
	for _, blk := range blocks {
		fmt.Fprintf(&b, "%-38s %10.4f %10.1f\n", blk.Name, blk.Area(), blk.Power())
	}
	area, power := Totals(blocks)
	fmt.Fprintf(&b, "%-38s %10.4f %10.1f\n", "FADE total", area, power)
	md := MDCacheEstimate()
	fmt.Fprintf(&b, "%-38s %10.4f %10.1f   (%.2f ns)\n", "MD cache (4KB 2-way, CACTI-style)", md.AreaMM2, md.PeakPowerMW, md.AccessNs)
	fmt.Fprintf(&b, "%-38s %10.4f %10.1f\n", "grand total", area+md.AreaMM2, power+md.PeakPowerMW)
	return b.String()
}
