package client

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"fade/internal/rcache"
	"fade/internal/serve"
	"fade/internal/system"
)

// sleepRecorder is the Sleep hook for tests: it records every requested
// delay and returns immediately.
type sleepRecorder struct {
	slept []time.Duration
}

func (s *sleepRecorder) sleep(_ context.Context, d time.Duration) error {
	s.slept = append(s.slept, d)
	return nil
}

func fixedRand() float64 { return 0.5 }

// TestCallRetriesThenSucceeds walks the whole retry discipline in one
// scripted conversation: a retryable 503 (computed backoff), a 429 whose
// Retry-After overrides the backoff, then success.
func TestCallRetriesThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"error":{"code":"draining","message":"draining"}}`)
		case 2:
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			io.WriteString(w, `{"error":{"code":"queue_full","message":"admission queue full"}}`)
		default:
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, `{"value":42}`)
		}
	}))
	defer ts.Close()

	rec := &sleepRecorder{}
	c := New(Options{
		BaseURL:     ts.URL,
		BackoffBase: 100 * time.Millisecond,
		BackoffCap:  5 * time.Second,
		Rand:        fixedRand,
		Sleep:       rec.sleep,
	})
	var out struct {
		Value int `json:"value"`
	}
	if err := c.Call(context.Background(), http.MethodGet, "/x", nil, &out); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if out.Value != 42 {
		t.Fatalf("decoded value = %d, want 42", out.Value)
	}
	// Attempt 0 failed with no Retry-After: full jitter over
	// min(cap, base<<0) with Rand=0.5 gives exactly 50ms. Attempt 1's 429
	// carried Retry-After: 2 which overrides the computed backoff.
	want := []time.Duration{50 * time.Millisecond, 2 * time.Second}
	if len(rec.slept) != len(want) || rec.slept[0] != want[0] || rec.slept[1] != want[1] {
		t.Fatalf("slept %v, want %v", rec.slept, want)
	}
	st := c.Stats()
	if st.Attempts != 3 || st.Retries != 2 || st.Throttled != 1 {
		t.Fatalf("stats = %+v, want attempts 3, retries 2, throttled 1", st)
	}
}

// TestCallNonRetryableStopsImmediately: a 400 surfaces as *APIError on
// the first attempt, no sleeping.
func TestCallNonRetryableStopsImmediately(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		io.WriteString(w, `{"error":{"code":"bad_json","message":"decoding submission"}}`)
	}))
	defer ts.Close()

	rec := &sleepRecorder{}
	c := New(Options{BaseURL: ts.URL, Rand: fixedRand, Sleep: rec.sleep})
	err := c.Call(context.Background(), http.MethodPost, "/x", map[string]int{"a": 1}, nil)
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error = %v, want *APIError", err)
	}
	if ae.Status != http.StatusBadRequest || ae.Code != serve.ErrCodeBadJSON {
		t.Fatalf("APIError = %+v, want status 400 code bad_json", ae)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls, want 1", n)
	}
	if len(rec.slept) != 0 {
		t.Fatalf("slept %v, want no sleeps", rec.slept)
	}
}

// TestCallExhaustsAttempts: a persistently failing server consumes the
// whole attempt budget and the last error comes back.
func TestCallExhaustsAttempts(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, `{"error":{"code":"internal","message":"boom"}}`)
	}))
	defer ts.Close()

	rec := &sleepRecorder{}
	c := New(Options{BaseURL: ts.URL, MaxAttempts: 3, Rand: fixedRand, Sleep: rec.sleep})
	err := c.Call(context.Background(), http.MethodGet, "/x", nil, nil)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusInternalServerError {
		t.Fatalf("error = %v, want *APIError with status 500", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3", n)
	}
	if st := c.Stats(); st.Retries != 2 {
		t.Fatalf("retries = %d, want 2", st.Retries)
	}
}

// TestCallPerAttemptDeadline: a hung server trips the per-attempt
// timeout; the next attempt gets a fresh deadline rather than inheriting
// the dead one.
func TestCallPerAttemptDeadline(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer ts.Close()

	rec := &sleepRecorder{}
	c := New(Options{
		BaseURL:        ts.URL,
		RequestTimeout: 25 * time.Millisecond,
		MaxAttempts:    2,
		Rand:           fixedRand,
		Sleep:          rec.sleep,
	})
	if err := c.Call(context.Background(), http.MethodGet, "/x", nil, nil); err == nil {
		t.Fatal("Call succeeded against a hung server")
	}
	if st := c.Stats(); st.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (each under its own deadline)", st.Attempts)
	}
}

// TestCallStopsWhenCallerContextDies: the caller's context ending mid
// conversation beats the retry budget.
func TestCallStopsWhenCallerContextDies(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":{"code":"draining","message":"draining"}}`)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := New(Options{
		BaseURL: ts.URL,
		Rand:    fixedRand,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel()
			return ctx.Err()
		},
	})
	err := c.Call(ctx, http.MethodGet, "/x", nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if st := c.Stats(); st.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", st.Attempts)
	}
}

// TestSubmitRunIdempotentResubmission drives the real serving stack: the
// first submission simulates, the identical resubmission is served from
// the result cache with a byte-identical result document.
func TestSubmitRunIdempotentResubmission(t *testing.T) {
	var runs atomic.Int32
	srv := serve.New(serve.Options{
		Workers:       2,
		QueueCap:      8,
		DefaultInstrs: 1_000,
		Cache:         rcache.NewMem(16),
		Runner: func(_ context.Context, bench string, cfg system.Config) (*system.Result, error) {
			runs.Add(1)
			return &system.Result{Benchmark: bench, Config: cfg, Instrs: cfg.Instrs}, nil
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := New(Options{BaseURL: ts.URL, Tenant: "fabric-test"})
	req := serve.SubmitRequest{Benchmark: "astar", Monitor: "MemLeak", Instrs: 1_000}

	first, err := c.SubmitRun(context.Background(), req, true)
	if err != nil {
		t.Fatalf("first SubmitRun: %v", err)
	}
	if first.State != serve.StateDone || first.Cached {
		t.Fatalf("first run: state %q cached %v, want done/uncached", first.State, first.Cached)
	}
	second, err := c.SubmitRun(context.Background(), req, true)
	if err != nil {
		t.Fatalf("second SubmitRun: %v", err)
	}
	if second.State != serve.StateDone || !second.Cached {
		t.Fatalf("second run: state %q cached %v, want done/cached", second.State, second.Cached)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("cached result differs from simulated result:\n%s\nvs\n%s", first.Result, second.Result)
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("runner executed %d times, want 1 (resubmission must hit the cache)", n)
	}
	if tn := second.Tenant; tn != "fabric-test" {
		t.Fatalf("tenant = %q, want the X-API-Key identity", tn)
	}
}
