// Package client is the Go client for the fadeserve wire protocol: JSON
// request/response bodies, the {"error":{"code","message"}} envelope, and
// 429/503 backpressure with Retry-After.
//
// The client owns the retry discipline so callers do not reimplement it:
// transport errors and retryable statuses (429, 500, 502, 503, 504) are
// retried with exponential backoff and full jitter, a server-supplied
// Retry-After header overrides the computed delay, and every attempt runs
// under its own request deadline so one stuck connection cannot absorb
// the whole retry budget. Non-retryable API errors (bad JSON, invalid
// config, not found) surface immediately as *APIError.
//
// Resubmission is idempotent by construction: run submissions are keyed
// server-side by their canonical runspec hash, so retrying a submit that
// actually landed costs a cache hit, not a duplicate simulation. The same
// property holds for the fabric endpoints (internal/fabric), which speak
// this protocol and use the generic Call for every exchange.
package client
