package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"fade/internal/serve"
)

// APIError is a non-2xx response decoded from the fadeserve error
// envelope. Status is the HTTP status; Code is the machine-readable error
// code (serve.ErrCode*); Message is for humans.
type APIError struct {
	Status  int
	Code    string
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("%s (http %d): %s", e.Code, e.Status, e.Message)
}

// Options configures a Client. The zero value plus BaseURL is usable.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080". Required.
	BaseURL string
	// HTTP is the underlying transport (default http.DefaultClient).
	HTTP *http.Client
	// Tenant, when set, is sent as the X-API-Key identity header.
	Tenant string
	// RequestTimeout bounds each individual attempt (default 30s). The
	// caller's context still bounds the call as a whole.
	RequestTimeout time.Duration
	// MaxAttempts is the total attempt budget per Call, first try
	// included (default 5).
	MaxAttempts int
	// BackoffBase and BackoffCap shape the exponential backoff: attempt n
	// sleeps rand()*min(BackoffCap, BackoffBase<<n) — "full jitter", so a
	// fleet of clients rejected together does not retry together.
	// Defaults 100ms and 5s.
	BackoffBase time.Duration
	BackoffCap  time.Duration

	// Rand and Sleep are test hooks: the jitter source (default
	// math/rand/v2 Float64) and the interruptible sleep (default
	// time.Timer against the context).
	Rand  func() float64
	Sleep func(ctx context.Context, d time.Duration) error
}

func (o Options) withDefaults() Options {
	if o.HTTP == nil {
		o.HTTP = http.DefaultClient
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 5 * time.Second
	}
	if o.Rand == nil {
		o.Rand = rand.Float64
	}
	if o.Sleep == nil {
		o.Sleep = sleepCtx
	}
	return o
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats is a snapshot of the client's retry counters.
type Stats struct {
	// Attempts counts every HTTP attempt, first tries included.
	Attempts uint64
	// Retries counts attempts beyond the first (i.e. actual re-sends).
	Retries uint64
	// Throttled counts 429 responses observed (throttled or queue_full).
	Throttled uint64
}

// Client is a retrying fadeserve-protocol client. It is safe for
// concurrent use.
type Client struct {
	opts Options
	base string

	attempts  atomic.Uint64
	retries   atomic.Uint64
	throttled atomic.Uint64
}

// New builds a client; see Options.
func New(opts Options) *Client {
	return &Client{
		opts: opts.withDefaults(),
		base: strings.TrimRight(opts.BaseURL, "/"),
	}
}

// Stats returns a snapshot of the retry counters.
func (c *Client) Stats() Stats {
	return Stats{
		Attempts:  c.attempts.Load(),
		Retries:   c.retries.Load(),
		Throttled: c.throttled.Load(),
	}
}

// Call performs one JSON exchange: in (when non-nil) is marshaled as the
// request body, out (when non-nil) receives the decoded 2xx response.
// Transport errors and retryable statuses are retried per Options; the
// final error is either the last *APIError or the last transport error.
func (c *Client) Call(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: marshaling %s %s request: %w", method, path, err)
		}
		body = b
	}

	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
		}
		c.attempts.Add(1)

		retryable, serverDelay, err := c.attempt(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || attempt == c.opts.MaxAttempts-1 {
			break
		}
		delay := serverDelay
		if delay <= 0 {
			delay = c.backoff(attempt)
		}
		if serr := c.opts.Sleep(ctx, delay); serr != nil {
			return fmt.Errorf("client: %w (last error: %v)", serr, lastErr)
		}
	}
	return lastErr
}

// backoff is the full-jitter delay for the given zero-based attempt
// index: rand() * min(cap, base<<attempt).
func (c *Client) backoff(attempt int) time.Duration {
	ceil := c.opts.BackoffCap
	if attempt < 62 {
		if d := c.opts.BackoffBase << uint(attempt); d < ceil {
			ceil = d
		}
	}
	return time.Duration(c.opts.Rand() * float64(ceil))
}

// attempt is one HTTP exchange. It reports whether the failure is
// retryable and any server-requested delay (Retry-After).
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any) (retryable bool, serverDelay time.Duration, err error) {
	actx := ctx
	if c.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.opts.RequestTimeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return false, 0, fmt.Errorf("client: building %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.opts.Tenant != "" {
		req.Header.Set("X-API-Key", c.opts.Tenant)
	}

	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller's context died, not just this attempt's
			// deadline: stop retrying.
			return false, 0, ctx.Err()
		}
		return true, 0, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		if ctx.Err() != nil {
			return false, 0, ctx.Err()
		}
		return true, 0, fmt.Errorf("client: reading %s %s response: %w", method, path, err)
	}

	if resp.StatusCode/100 == 2 {
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return false, 0, fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
			}
		}
		return false, 0, nil
	}

	if resp.StatusCode == http.StatusTooManyRequests {
		c.throttled.Add(1)
	}
	serverDelay = parseRetryAfter(resp.Header.Get("Retry-After"))
	apiErr := &APIError{Status: resp.StatusCode, Code: "unknown", Message: strings.TrimSpace(string(data))}
	var env struct {
		Error serve.APIError `json:"error"`
	}
	if jsonErr := json.Unmarshal(data, &env); jsonErr == nil && env.Error.Code != "" {
		apiErr.Code = env.Error.Code
		apiErr.Message = env.Error.Message
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests,
		http.StatusInternalServerError,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true, serverDelay, apiErr
	}
	return false, 0, apiErr
}

// parseRetryAfter understands the delay-seconds form the server emits.
// Anything else (absent header, HTTP-date) yields 0, deferring to the
// computed backoff.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	s, err := strconv.ParseInt(v, 10, 64)
	if err != nil || s < 0 {
		return 0
	}
	return time.Duration(s) * time.Second
}

// SubmitRun submits one run to POST /v1/runs. With wait=true the server
// holds the request until the run is terminal and the returned RunInfo
// carries the result document; otherwise it returns the queued envelope.
// Retried submissions are idempotent: the server coalesces in-flight
// duplicates by spec hash and serves completed ones from its result
// cache.
func (c *Client) SubmitRun(ctx context.Context, req serve.SubmitRequest, wait bool) (*serve.RunInfo, error) {
	path := "/v1/runs"
	if wait {
		path += "?wait=true"
	}
	var info serve.RunInfo
	if err := c.Call(ctx, http.MethodPost, path, &req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}
