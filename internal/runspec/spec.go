package runspec

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"fade/internal/fault"
	"fade/internal/trace"
)

// Spec kinds. The zero value describes a full-system run; the other kinds
// name the repository's auxiliary simulation shapes so they share the same
// cache.
const (
	// KindRun is a full-system simulation (system.Run): application
	// core(s), filtering unit(s), software monitor, baselines.
	KindRun = ""
	// KindStudy is the Section 3 queue characterization
	// (system.RunQueueStudy): an ideal 1-event/cycle drain behind the
	// event queue. EventQueueCap holds the studied capacity (which may be
	// queue.Unbounded).
	KindStudy = "study"
	// KindCoreModel is the core-model cross-validation study
	// (system.RunCoreModelStudy): baseline IPC under the rate-based and
	// dependency-driven timing models. Only Benchmark, Seed, and Instrs
	// apply.
	KindCoreModel = "coremodel"
	// KindBaseline is an unmonitored application-only baseline run (the
	// denominator of every slowdown). Only Benchmark, Core, Seed, Instrs,
	// WarmupInstrs, and Inject apply.
	KindBaseline = "baseline"
)

// Acceleration mode names (the serving API's wire vocabulary).
const (
	AccelNone     = "none"
	AccelBlocking = "blocking"
	AccelFADE     = "fade"
)

// Core model names.
const (
	CoreInOrder = "inorder"
	Core2Way    = "2way"
	Core4Way    = "4way"
)

// Spec is the canonical description of one simulation run. The zero value
// of every field selects its documented default, and Normalize folds those
// defaults in explicitly, so two Specs describing the same run always
// canonicalize — and therefore hash — identically.
//
// Spec deliberately excludes execution knobs that cannot change a
// completed run's result: worker-pool width, output/telemetry sinks, and
// the wall-clock watchdog (WallClockMS rides along for executors but is
// not part of the canonical encoding).
type Spec struct {
	// Kind selects the simulation shape: KindRun (the zero value),
	// KindStudy, KindCoreModel, or KindBaseline.
	Kind string `json:"kind,omitempty"`

	// Benchmark is the workload profile name. Required for every kind.
	Benchmark string `json:"benchmark"`
	// Monitor is the monitoring tool (unused by KindCoreModel and
	// KindBaseline).
	Monitor string `json:"monitor,omitempty"`
	// Accel is the acceleration mode: AccelNone, AccelBlocking, or
	// AccelFADE ("" normalizes to AccelFADE for KindRun).
	Accel string `json:"accel,omitempty"`
	// Core is the core model: CoreInOrder, Core2Way, or Core4Way
	// ("" normalizes to Core4Way).
	Core string `json:"core,omitempty"`

	// AppCores/MonCores/SMT describe the topology (system.Topology's
	// shape). The zero topology normalizes to the paper's single
	// dual-threaded SMT core.
	AppCores int  `json:"app_cores,omitempty"`
	MonCores int  `json:"mon_cores,omitempty"`
	SMT      bool `json:"smt,omitempty"`

	// Seed seeds the workload (and, via fault.Plan.Seed 0, the injector).
	Seed uint64 `json:"seed,omitempty"`
	// Instrs is the application instruction budget per core (0 normalizes
	// to 400000, the simulator's default).
	Instrs uint64 `json:"instrs,omitempty"`
	// WarmupInstrs excludes the first N instructions from the slowdown
	// measurement.
	WarmupInstrs uint64 `json:"warmup_instrs,omitempty"`

	// EventQueueCap / UnfilteredCap size the decoupling queues. For
	// KindRun, 0 normalizes to the paper's 32/16; for KindStudy,
	// EventQueueCap is the studied capacity and is left as given.
	EventQueueCap int `json:"event_queue_cap,omitempty"`
	UnfilteredCap int `json:"unfiltered_cap,omitempty"`
	// MDCacheBytes overrides the metadata cache size (0 = the paper's
	// 4 KB).
	MDCacheBytes int `json:"md_cache_bytes,omitempty"`
	// BlockingSignalCycles overrides the blocking accelerator's
	// completion-signal latency (0 = default, -1 = ideal doorbell).
	BlockingSignalCycles int `json:"blocking_signal_cycles,omitempty"`

	// TimelineEvery samples the metrics registry every N cycles. It is
	// part of the hash: it changes the result document (the timeline).
	TimelineEvery uint64 `json:"timeline_every,omitempty"`
	// CheckInvariants arms the per-cycle invariant checker. Hashed: it
	// changes which runs complete (and pins fast-forward off).
	CheckInvariants bool `json:"check_invariants,omitempty"`
	// FastForward arms the scheduler's quiescence skip-ahead. Results are
	// byte-identical either way, but the sim.ff.* metric series appear
	// only when set, so the flag is part of the hash (the metrics dump is
	// part of the result).
	FastForward bool `json:"fast_forward,omitempty"`

	// MaxCycles caps simulated time (0 derives the simulator's default
	// from Instrs). Hashed: a run truncated by the cap is a different
	// result.
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// WallClockMS caps real time. NOT hashed: it is an execution budget —
	// a run that completed under any wall-clock budget produced the same
	// result it would have produced under any other.
	WallClockMS int64 `json:"wall_clock_ms,omitempty"`

	// Faults configures deterministic fault injection.
	Faults *fault.Plan `json:"faults,omitempty"`
	// Inject overrides the profile's bug injection (demonstration
	// programs; also carried by KindBaseline so baselines of injected
	// profiles stay distinct).
	Inject *trace.Inject `json:"inject,omitempty"`
}

// canonicalVersion versions the canonical encoding. Bumping it (or
// changing the canonical field set) invalidates every content hash — and
// therefore every disk cache — which is exactly why the golden-hash test
// exists: such a change must be deliberate.
const canonicalVersion = 1

// canonical is the hashed shadow of Spec: every hashed field explicit (no
// omitempty, so absent and zero are the same bytes), in frozen declaration
// order, WallClockMS excluded. encoding/json marshals struct fields in
// declaration order, making the encoding deterministic.
type canonical struct {
	V                    int           `json:"v"`
	Kind                 string        `json:"kind"`
	Benchmark            string        `json:"benchmark"`
	Monitor              string        `json:"monitor"`
	Accel                string        `json:"accel"`
	Core                 string        `json:"core"`
	AppCores             int           `json:"app_cores"`
	MonCores             int           `json:"mon_cores"`
	SMT                  bool          `json:"smt"`
	Seed                 uint64        `json:"seed"`
	Instrs               uint64        `json:"instrs"`
	WarmupInstrs         uint64        `json:"warmup_instrs"`
	EventQueueCap        int           `json:"event_queue_cap"`
	UnfilteredCap        int           `json:"unfiltered_cap"`
	MDCacheBytes         int           `json:"md_cache_bytes"`
	BlockingSignalCycles int           `json:"blocking_signal_cycles"`
	TimelineEvery        uint64        `json:"timeline_every"`
	CheckInvariants      bool          `json:"check_invariants"`
	FastForward          bool          `json:"fast_forward"`
	MaxCycles            uint64        `json:"max_cycles"`
	Faults               *fault.Plan   `json:"faults"`
	Inject               *trace.Inject `json:"inject"`
}

// Normalize returns the spec with documented defaults folded in, so that
// an explicitly-spelled default and an omitted field describe the same run
// and hash identically. It never clears a set field.
func (s Spec) Normalize() Spec {
	if s.Core == "" {
		s.Core = Core4Way
	}
	if s.Instrs == 0 {
		s.Instrs = 400_000
	}
	if s.Kind == KindRun {
		if s.Accel == "" {
			s.Accel = AccelFADE
		}
		if s.EventQueueCap == 0 {
			s.EventQueueCap = 32
		}
		if s.UnfilteredCap == 0 {
			s.UnfilteredCap = 16
		}
		// The zero topology is the paper's single dual-threaded SMT core
		// (system.Topology's historical default).
		if s.AppCores == 0 && s.MonCores == 0 && !s.SMT {
			s.AppCores, s.SMT = 1, true
		} else if s.AppCores == 0 {
			s.AppCores = 1
		}
	}
	if s.Faults != nil && s.Faults.Empty() && s.Faults.Seed == 0 {
		s.Faults = nil
	}
	if s.Inject != nil && *s.Inject == (trace.Inject{}) {
		s.Inject = nil
	}
	return s
}

// Validate rejects specs whose enumerated fields are outside the
// vocabulary. It does not check benchmark/monitor existence — that is the
// executing layer's concern (it owns the registries).
func (s Spec) Validate() error {
	switch s.Kind {
	case KindRun, KindStudy, KindCoreModel, KindBaseline:
	default:
		return fmt.Errorf("runspec: unknown kind %q", s.Kind)
	}
	if s.Benchmark == "" {
		return fmt.Errorf("runspec: missing benchmark")
	}
	switch s.Accel {
	case "", AccelNone, AccelBlocking, AccelFADE:
	default:
		return fmt.Errorf("runspec: unknown accel %q (want none|blocking|fade)", s.Accel)
	}
	switch s.Core {
	case "", CoreInOrder, Core2Way, Core4Way:
	default:
		return fmt.Errorf("runspec: unknown core %q (want inorder|2way|4way)", s.Core)
	}
	return nil
}

// CanonicalBytes returns the deterministic canonical encoding of the
// normalized spec: versioned, every hashed field explicit, WallClockMS
// excluded. Two specs describing the same run produce identical bytes.
func (s Spec) CanonicalBytes() []byte {
	n := s.Normalize()
	b, err := json.Marshal(canonical{
		V:                    canonicalVersion,
		Kind:                 n.Kind,
		Benchmark:            n.Benchmark,
		Monitor:              n.Monitor,
		Accel:                n.Accel,
		Core:                 n.Core,
		AppCores:             n.AppCores,
		MonCores:             n.MonCores,
		SMT:                  n.SMT,
		Seed:                 n.Seed,
		Instrs:               n.Instrs,
		WarmupInstrs:         n.WarmupInstrs,
		EventQueueCap:        n.EventQueueCap,
		UnfilteredCap:        n.UnfilteredCap,
		MDCacheBytes:         n.MDCacheBytes,
		BlockingSignalCycles: n.BlockingSignalCycles,
		TimelineEvery:        n.TimelineEvery,
		CheckInvariants:      n.CheckInvariants,
		FastForward:          n.FastForward,
		MaxCycles:            n.MaxCycles,
		Faults:               n.Faults,
		Inject:               n.Inject,
	})
	if err != nil {
		// canonical contains only marshalable field types; this cannot
		// fail for any constructible Spec.
		panic("runspec: canonical encoding failed: " + err.Error())
	}
	return b
}

// Hash returns the spec's content address: the SHA-256 of its canonical
// bytes. Equal runs hash equal; any field that can change the result (or
// its metrics dump) changes the hash.
func (s Spec) Hash() [32]byte {
	return sha256.Sum256(s.CanonicalBytes())
}

// HashString returns Hash as lowercase hex (the disk cache's file name).
func (s Spec) HashString() string {
	h := s.Hash()
	return hex.EncodeToString(h[:])
}

// Shard maps the spec onto one of count shards by its content hash,
// returning the owning shard index in [0, count). Hash-partitioning is
// stable across processes, so N fadebench invocations with -shard i/N
// cover every cell exactly once between them.
func (s Spec) Shard(count int) int {
	if count <= 1 {
		return 0
	}
	h := s.Hash()
	return int(binary.BigEndian.Uint64(h[:8]) % uint64(count))
}
