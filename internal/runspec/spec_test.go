package runspec

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"fade/internal/fault"
	"fade/internal/trace"
)

var update = flag.Bool("update", false, "rewrite testdata/hashes.golden from the current encoding")

// goldenMatrix is the representative spec matrix whose hashes are pinned in
// testdata/hashes.golden. Changing the canonical encoding (field set,
// ordering, defaults, version) must change these hashes, and the golden
// test turns that silent cache invalidation into a loud failure.
func goldenMatrix() []struct {
	name string
	spec Spec
} {
	return []struct {
		name string
		spec Spec
	}{
		{"zero-run", Spec{Benchmark: "astar", Monitor: "MemLeak"}},
		{"explicit-defaults", Spec{
			Benchmark: "astar", Monitor: "MemLeak", Accel: AccelFADE,
			Core: Core4Way, AppCores: 1, SMT: true,
			Instrs: 400_000, EventQueueCap: 32, UnfilteredCap: 16,
		}},
		{"unaccelerated", Spec{Benchmark: "bzip", Monitor: "AddrCheck", Accel: AccelNone, Seed: 7}},
		{"blocking-signal", Spec{
			Benchmark: "mcf", Monitor: "TaintCheck", Accel: AccelBlocking,
			BlockingSignalCycles: 14, Instrs: 250_000,
		}},
		{"cmp-4core", Spec{
			Benchmark: "ocean", Monitor: "AtomCheck", Accel: AccelFADE,
			AppCores: 4, MonCores: 4, Seed: 3, Instrs: 100_000,
		}},
		{"two-core-sep", Spec{Benchmark: "astar", Monitor: "MemLeak", AppCores: 1, MonCores: 1}},
		{"inorder-core", Spec{Benchmark: "omnet", Monitor: "LockCheck", Core: CoreInOrder}},
		{"timeline-ff", Spec{
			Benchmark: "astar", Monitor: "MemLeak", TimelineEvery: 5_000,
			FastForward: true, MaxCycles: 2_000_000,
		}},
		{"invariants", Spec{Benchmark: "ocean", Monitor: "AtomCheck", CheckInvariants: true}},
		{"mdcache-1kb", Spec{Benchmark: "mcf", Monitor: "TaintCheck", MDCacheBytes: 1024, WarmupInstrs: 10_000}},
		{"faulted", Spec{
			Benchmark: "astar", Monitor: "MemLeak", Seed: 11,
			Faults: &fault.Plan{
				Seed:         5,
				MonitorStall: &fault.Stall{MeanGap: 1024, MeanDuration: 1024},
				EventDrop:    &fault.Drop{Rate: 0.001, Start: 1000},
			},
		}},
		{"injected", Spec{
			Benchmark: "leaky", Monitor: "MemLeak",
			Inject: &trace.Inject{LeakFrac: 0.25, WildAccessPer1K: 0.5},
		}},
		{"study-unbounded", Spec{
			Kind: KindStudy, Benchmark: "astar", Monitor: "MemLeak",
			EventQueueCap: int(^uint(0) >> 1), Instrs: 200_000,
		}},
		{"study-32", Spec{Kind: KindStudy, Benchmark: "ocean", Monitor: "AtomCheck", EventQueueCap: 32}},
		{"coremodel", Spec{Kind: KindCoreModel, Benchmark: "bzip", Seed: 1, Instrs: 300_000}},
		{"baseline", Spec{Kind: KindBaseline, Benchmark: "astar", Core: Core4Way, Seed: 1, Instrs: 300_000}},
		{"baseline-injected", Spec{
			Kind: KindBaseline, Benchmark: "leaky", Seed: 2,
			Inject: &trace.Inject{LeakFrac: 0.1},
		}},
	}
}

func TestGoldenHashes(t *testing.T) {
	path := filepath.Join("testdata", "hashes.golden")
	var buf strings.Builder
	for _, c := range goldenMatrix() {
		fmt.Fprintf(&buf, "%s %s\n", c.name, c.spec.HashString())
	}
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("golden file missing (run go test ./internal/runspec -update): %v", err)
	}
	defer f.Close()
	want := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", sc.Text())
		}
		want[fields[0]] = fields[1]
	}
	if len(want) != len(goldenMatrix()) {
		t.Fatalf("golden file has %d entries, matrix has %d — rerun with -update", len(want), len(goldenMatrix()))
	}
	for _, c := range goldenMatrix() {
		got := c.spec.HashString()
		if want[c.name] == "" {
			t.Errorf("%s: no golden entry — rerun with -update", c.name)
		} else if got != want[c.name] {
			t.Errorf("%s: hash changed\n got %s\nwant %s\nThe canonical encoding changed; this silently invalidates every disk cache. If intentional, bump canonicalVersion and rerun with -update.", c.name, got, want[c.name])
		}
	}
}

func TestNormalizeDefaultsHashEqual(t *testing.T) {
	implicit := Spec{Benchmark: "astar", Monitor: "MemLeak"}
	explicit := Spec{
		Benchmark: "astar", Monitor: "MemLeak", Accel: AccelFADE,
		Core: Core4Way, AppCores: 1, SMT: true,
		Instrs: 400_000, EventQueueCap: 32, UnfilteredCap: 16,
	}
	if implicit.Hash() != explicit.Hash() {
		t.Fatalf("implicit defaults hash differently from explicit defaults:\n%s\n%s",
			implicit.CanonicalBytes(), explicit.CanonicalBytes())
	}
	// An empty fault plan and a nil one are the same run.
	a := Spec{Benchmark: "astar", Monitor: "MemLeak", Faults: &fault.Plan{}}
	b := Spec{Benchmark: "astar", Monitor: "MemLeak"}
	if a.Hash() != b.Hash() {
		t.Fatal("empty fault plan changed the hash")
	}
	// A seeded-but-otherwise-empty plan is NOT empty: the injector seed is
	// live state.
	c := Spec{Benchmark: "astar", Monitor: "MemLeak", Faults: &fault.Plan{Seed: 9}}
	if c.Hash() == b.Hash() {
		t.Fatal("seeded fault plan did not change the hash")
	}
	if z := (Spec{Benchmark: "x", Inject: &trace.Inject{}}).Normalize(); z.Inject != nil {
		t.Fatal("zero Inject not dropped by Normalize")
	}
}

func TestWallClockNotHashed(t *testing.T) {
	a := Spec{Benchmark: "astar", Monitor: "MemLeak"}
	b := a
	b.WallClockMS = 60_000
	if a.Hash() != b.Hash() {
		t.Fatal("WallClockMS leaked into the hash; it is an execution budget, not run identity")
	}
}

func TestHashSensitivity(t *testing.T) {
	base := Spec{Benchmark: "astar", Monitor: "MemLeak"}
	seen := map[[32]byte]string{base.Hash(): "base"}
	mutations := map[string]func(*Spec){
		"benchmark":  func(s *Spec) { s.Benchmark = "bzip" },
		"monitor":    func(s *Spec) { s.Monitor = "AddrCheck" },
		"accel":      func(s *Spec) { s.Accel = AccelNone },
		"core":       func(s *Spec) { s.Core = CoreInOrder },
		"topology":   func(s *Spec) { s.AppCores, s.MonCores, s.SMT = 2, 2, false },
		"seed":       func(s *Spec) { s.Seed = 42 },
		"instrs":     func(s *Spec) { s.Instrs = 100_000 },
		"warmup":     func(s *Spec) { s.WarmupInstrs = 1_000 },
		"evq":        func(s *Spec) { s.EventQueueCap = 64 },
		"ufq":        func(s *Spec) { s.UnfilteredCap = 8 },
		"mdcache":    func(s *Spec) { s.MDCacheBytes = 2048 },
		"signal":     func(s *Spec) { s.Accel, s.BlockingSignalCycles = AccelBlocking, 7 },
		"timeline":   func(s *Spec) { s.TimelineEvery = 10_000 },
		"invariants": func(s *Spec) { s.CheckInvariants = true },
		"ff":         func(s *Spec) { s.FastForward = true },
		"maxcycles":  func(s *Spec) { s.MaxCycles = 1 },
		"kind":       func(s *Spec) { s.Kind = KindStudy },
		"faults":     func(s *Spec) { s.Faults = &fault.Plan{EventDrop: &fault.Drop{Rate: 0.5}} },
		"inject":     func(s *Spec) { s.Inject = &trace.Inject{TaintedJump: true} },
	}
	names := make([]string, 0, len(mutations))
	for n := range mutations {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		s := base
		mutations[name](&s)
		h := s.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("mutation %q hashes identically to %q", name, prev)
		}
		seen[h] = name
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, c := range goldenMatrix() {
		b, err := json.Marshal(c.spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", c.name, err)
		}
		var got Spec
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("%s: unmarshal: %v", c.name, err)
		}
		if !reflect.DeepEqual(got, c.spec) {
			t.Errorf("%s: JSON round trip changed the spec:\n got %+v\nwant %+v", c.name, got, c.spec)
		}
		if got.Hash() != c.spec.Hash() {
			t.Errorf("%s: JSON round trip changed the hash", c.name)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := Spec{Benchmark: "astar", Monitor: "MemLeak"}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Benchmark: "astar", Kind: "nope"},
		{},
		{Benchmark: "astar", Accel: "turbo"},
		{Benchmark: "astar", Core: "8way"},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestShardPartition(t *testing.T) {
	const shards = 3
	counts := make([]int, shards)
	for _, c := range goldenMatrix() {
		i := c.spec.Shard(shards)
		if i < 0 || i >= shards {
			t.Fatalf("%s: shard index %d out of range", c.name, i)
		}
		counts[i]++
		// Stability: sharding is a pure function of the hash.
		if c.spec.Shard(shards) != i {
			t.Fatalf("%s: shard not stable", c.name)
		}
	}
	if c := (Spec{Benchmark: "x"}).Shard(0); c != 0 {
		t.Fatalf("Shard(0) = %d, want 0", c)
	}
	if c := (Spec{Benchmark: "x"}).Shard(1); c != 0 {
		t.Fatalf("Shard(1) = %d, want 0", c)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != len(goldenMatrix()) {
		t.Fatalf("sharding lost cells: %d != %d", total, len(goldenMatrix()))
	}
}
